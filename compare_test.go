package rankregret_test

import (
	"testing"

	"github.com/rankregret/rankregret"
)

func TestCompareValidation(t *testing.T) {
	ds := rankregret.GenerateIndependent(1, 50, 2)
	if _, err := rankregret.Compare(nil, 3, []rankregret.Algorithm{rankregret.AlgoHDRRM}, nil); err == nil {
		t.Error("nil dataset should fail")
	}
	if _, err := rankregret.Compare(ds, 0, []rankregret.Algorithm{rankregret.AlgoHDRRM}, nil); err == nil {
		t.Error("r=0 should fail")
	}
	if _, err := rankregret.Compare(ds, 3, nil, nil); err == nil {
		t.Error("no algorithms should fail")
	}
}

func TestCompare2DExactEvaluation(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(7, 400, 2)
	rows, err := rankregret.Compare(ds, 5,
		[]rankregret.Algorithm{rankregret.AlgoTwoDRRM, rankregret.AlgoTwoDRRR, rankregret.AlgoHDRRM},
		&rankregret.CompareOptions{Options: rankregret.Options{MaxSamples: 1500}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	var exact int
	for _, row := range rows {
		if row.Err != nil {
			t.Fatalf("%s: %v", row.Algorithm, row.Err)
		}
		if row.RankRegret < 1 {
			t.Errorf("%s: rank-regret %d", row.Algorithm, row.RankRegret)
		}
		if row.Algorithm == rankregret.AlgoTwoDRRM {
			exact = row.RankRegret
		}
	}
	// The exact DP is optimal: no other row may evaluate below it.
	for _, row := range rows {
		if row.RankRegret < exact {
			t.Errorf("%s evaluated at %d, below the optimum %d", row.Algorithm, row.RankRegret, exact)
		}
	}
}

func TestCompareRecordsPerRowFailures(t *testing.T) {
	ds := rankregret.GenerateIndependent(11, 100, 3)
	rows, err := rankregret.Compare(ds, 5,
		[]rankregret.Algorithm{rankregret.AlgoHDRRM, rankregret.AlgoTwoDRRM, "bogus"},
		&rankregret.CompareOptions{Options: rankregret.Options{MaxSamples: 500}, EvalSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Err != nil {
		t.Errorf("HDRRM failed: %v", rows[0].Err)
	}
	if rows[1].Err == nil {
		t.Error("2DRRM on d=3 should record an error row")
	}
	if rows[2].Err == nil {
		t.Error("bogus algorithm should record an error row")
	}
}

func TestCompareHDQualityOrdering(t *testing.T) {
	// The headline experimental shape: on anti-correlated data the MDRC
	// heuristic must not be the best of the compared set.
	ds := rankregret.GenerateAnticorrelated(19, 3000, 4)
	rows, err := rankregret.Compare(ds, 10,
		[]rankregret.Algorithm{rankregret.AlgoHDRRM, rankregret.AlgoMDRC},
		&rankregret.CompareOptions{Options: rankregret.Options{MaxSamples: 4000}, EvalSamples: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Err != nil || rows[1].Err != nil {
		t.Fatalf("solver errors: %v / %v", rows[0].Err, rows[1].Err)
	}
	if rows[1].RankRegret < rows[0].RankRegret {
		t.Errorf("MDRC (%d) beat HDRRM (%d) on anti-correlated data", rows[1].RankRegret, rows[0].RankRegret)
	}
}
