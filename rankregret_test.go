package rankregret_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/rankregret/rankregret"
)

func tableI(t testing.TB) *rankregret.Dataset {
	t.Helper()
	ds, err := rankregret.NewDataset([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSolveTableI(t *testing.T) {
	ds := tableI(t)
	sol, err := rankregret.Solve(ds, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.IDs) != 1 || sol.IDs[0] != 2 {
		t.Errorf("RRM r=1 on Table I chose %v, want [2] (t3)", sol.IDs)
	}
	if !sol.Exact || sol.Algorithm != rankregret.AlgoTwoDRRM {
		t.Errorf("expected exact 2D solve, got exact=%v algo=%q", sol.Exact, sol.Algorithm)
	}
	if sol.RankRegret != 3 {
		t.Errorf("rank-regret = %d, want 3 (t3's worst rank over L)", sol.RankRegret)
	}
}

func TestSolveAutoPicksHDRRMFor3D(t *testing.T) {
	ds := rankregret.GenerateIndependent(1, 300, 3)
	sol, err := rankregret.Solve(ds, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Algorithm != rankregret.AlgoHDRRM {
		t.Errorf("auto algorithm for d=3 = %q, want hdrrm", sol.Algorithm)
	}
	if len(sol.IDs) > 6 {
		t.Errorf("|S| = %d exceeds budget 6", len(sol.IDs))
	}
}

func TestSolveValidation(t *testing.T) {
	ds := tableI(t)
	if _, err := rankregret.Solve(nil, 1, nil); err == nil {
		t.Error("Solve(nil) should fail")
	}
	if _, err := rankregret.Solve(ds, 0, nil); err == nil {
		t.Error("Solve with r=0 should fail")
	}
	if _, err := rankregret.Solve(ds, 1, &rankregret.Options{Algorithm: "bogus"}); err == nil {
		t.Error("unknown algorithm should fail")
	}
	d3 := rankregret.GenerateIndependent(1, 50, 3)
	if _, err := rankregret.Solve(d3, 2, &rankregret.Options{Algorithm: rankregret.AlgoTwoDRRM}); err != rankregret.ErrDimension {
		t.Errorf("2drrm on d=3: err = %v, want ErrDimension", err)
	}
}

func TestSolveRRRExact2D(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(5, 400, 2)
	sol, err := rankregret.SolveRRR(ds, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact {
		t.Error("2D RRR should be exact")
	}
	got, err := rankregret.EvaluateRankRegret2D(ds, sol.IDs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got > 3 {
		t.Errorf("RRR(k=3) returned a set with exact rank-regret %d", got)
	}
	// Minimality: every strictly smaller set must exceed the threshold.
	if len(sol.IDs) > 1 {
		smaller, err := rankregret.Solve(ds, len(sol.IDs)-1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if smaller.RankRegret <= 3 {
			t.Errorf("a size-%d set achieves rank-regret %d <= 3, so RRR output (size %d) is not minimal",
				len(smaller.IDs), smaller.RankRegret, len(sol.IDs))
		}
	}
}

func TestSolveRRRValidation(t *testing.T) {
	ds := tableI(t)
	if _, err := rankregret.SolveRRR(ds, 0, nil); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := rankregret.SolveRRR(ds, 100, nil); err == nil {
		t.Error("k>n should fail")
	}
}

func TestSolveRRRHighDim(t *testing.T) {
	ds := rankregret.GenerateIndependent(3, 500, 3)
	sol, err := rankregret.SolveRRR(ds, 25, &rankregret.Options{MaxSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rankregret.EvaluateRankRegret(ds, sol.IDs, nil, 5000, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Theorem 9 guarantees <= k on the discretized space; the sampled
	// estimate over the full space may exceed it slightly.
	if got > 3*25 {
		t.Errorf("RRR(k=25) estimated rank-regret %d, far above the threshold", got)
	}
}

func TestRestrictedSolveImprovesRegret(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(9, 3000, 4)
	cone, err := rankregret.WeakRankingSpace(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := rankregret.Solve(ds, 8, &rankregret.Options{MaxSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := rankregret.Solve(ds, 8, &rankregret.Options{Space: cone, MaxSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	fullEst, err := rankregret.EvaluateRankRegret(ds, full.IDs, cone, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	restEst, err := rankregret.EvaluateRankRegret(ds, restricted.IDs, cone, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The RRRM solve targets exactly the cone, so it should do at least
	// as well there as the RRM solve does (generous slack for sampling).
	if restEst > 3*fullEst+10 {
		t.Errorf("restricted solve rank-regret %d on U vs %d for the full solve", restEst, fullEst)
	}
}

func TestAllBaselinesRun(t *testing.T) {
	ds := rankregret.GenerateIndependent(17, 400, 3)
	for _, algo := range []rankregret.Algorithm{
		rankregret.AlgoHDRRM, rankregret.AlgoMDRRRr, rankregret.AlgoMDRC,
		rankregret.AlgoMDRMS, rankregret.AlgoMDRRR, rankregret.AlgoRMSGreedy,
		rankregret.AlgoSkylineOnly,
	} {
		sol, err := rankregret.Solve(ds, 8, &rankregret.Options{Algorithm: algo, MaxSamples: 1000})
		if err != nil {
			t.Errorf("%s: %v", algo, err)
			continue
		}
		if len(sol.IDs) == 0 || len(sol.IDs) > 8 {
			t.Errorf("%s: |S| = %d, want in [1, 8]", algo, len(sol.IDs))
		}
		for _, id := range sol.IDs {
			if id < 0 || id >= ds.N() {
				t.Errorf("%s: id %d out of range", algo, id)
			}
		}
	}
}

func TestShiftInvariancePublicAPI(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(23, 500, 2)
	sol, err := rankregret.Solve(ds, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	shifted := ds.Clone()
	shifted.Shift([]float64{3.5, 0.25})
	sol2, err := rankregret.Solve(shifted, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.RankRegret != sol2.RankRegret {
		t.Errorf("rank-regret changed under shifting: %d -> %d (violates Theorem 1)",
			sol.RankRegret, sol2.RankRegret)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := tableI(t)
	var buf bytes.Buffer
	if err := rankregret.WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := rankregret.ReadCSV(&buf, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() {
		t.Fatalf("round trip changed shape: %dx%d -> %dx%d", ds.N(), ds.Dim(), back.N(), back.Dim())
	}
	for i := 0; i < ds.N(); i++ {
		for j := 0; j < ds.Dim(); j++ {
			if ds.Value(i, j) != back.Value(i, j) {
				t.Fatalf("value (%d,%d) changed: %v -> %v", i, j, ds.Value(i, j), back.Value(i, j))
			}
		}
	}
}

func TestReadCSVNegate(t *testing.T) {
	in := "price,quality\n10,0.5\n20,0.9\n"
	ds, err := rankregret.ReadCSV(strings.NewReader(in), true, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Value(0, 0) != -10 || ds.Value(1, 0) != -20 {
		t.Errorf("negate failed: col0 = %v, %v", ds.Value(0, 0), ds.Value(1, 0))
	}
	if _, err := rankregret.ReadCSV(strings.NewReader(in), true, []int{5}); err == nil {
		t.Error("out-of-range negate column should fail")
	}
}

func TestSkylineAndTopKHelpers(t *testing.T) {
	ds := tableI(t)
	sky := rankregret.Skyline(ds)
	want := map[int]bool{0: true, 1: true, 2: true, 3: true, 6: true}
	if len(sky) != len(want) {
		t.Fatalf("skyline = %v, want 5 tuples", sky)
	}
	for _, id := range sky {
		if !want[id] {
			t.Errorf("tuple %d should not be on the skyline", id)
		}
	}
	top := rankregret.TopK(ds, []float64{0.5, 0.5}, 2)
	if len(top) != 2 {
		t.Fatalf("TopK returned %v", top)
	}
	// u=(0.5,0.5): utilities are .5 .675 .66 .695 .35 .325 .5 -> best t4 (id 3), then t2 (id 1).
	if top[0] != 3 || top[1] != 1 {
		t.Errorf("TopK = %v, want [3 1]", top)
	}
	if r := rankregret.Rank(ds, []float64{0.5, 0.5}, 3); r != 1 {
		t.Errorf("Rank of id 3 = %d, want 1", r)
	}
}

func TestEvaluateHelpers(t *testing.T) {
	ds := rankregret.GenerateIndependent(5, 200, 2)
	sol, err := rankregret.Solve(ds, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := rankregret.EvaluateRankRegret2D(ds, sol.IDs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact != sol.RankRegret {
		t.Errorf("exact sweep = %d, DP reported %d", exact, sol.RankRegret)
	}
	est, err := rankregret.EvaluateRankRegret(ds, sol.IDs, nil, 20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if est > exact {
		t.Errorf("sampled estimate %d exceeds exact %d", est, exact)
	}
	rr, err := rankregret.EvaluateRegretRatio(ds, sol.IDs, nil, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rr < 0 || rr > 1 {
		t.Errorf("regret-ratio = %v, want within [0,1]", rr)
	}
	ratio, err := rankregret.RatK(ds, sol.IDs, nil, exact, 5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 1 {
		t.Errorf("Rat_k at the exact rank-regret = %v, want 1 (Lemma 1)", ratio)
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		ds   *rankregret.Dataset
		n, d int
	}{
		{"indep", rankregret.GenerateIndependent(1, 100, 3), 100, 3},
		{"corr", rankregret.GenerateCorrelated(1, 100, 3), 100, 3},
		{"anti", rankregret.GenerateAnticorrelated(1, 100, 3), 100, 3},
		{"quarter", rankregret.GenerateQuarterCircle(100, 2), 100, 2},
		{"island", rankregret.SimIsland(1, 500), 500, 2},
		{"nba", rankregret.SimNBA(1, 500), 500, 5},
		{"weather", rankregret.SimWeather(1, 500), 500, 4},
	}
	for _, tc := range cases {
		if tc.ds.N() != tc.n || tc.ds.Dim() != tc.d {
			t.Errorf("%s: got %dx%d, want %dx%d", tc.name, tc.ds.N(), tc.ds.Dim(), tc.n, tc.d)
		}
		for i := 0; i < tc.ds.N(); i++ {
			for j := 0; j < tc.ds.Dim(); j++ {
				v := tc.ds.Value(i, j)
				if v < 0 || v > 1 {
					t.Fatalf("%s: value (%d,%d) = %v outside [0,1]", tc.name, i, j, v)
				}
			}
		}
	}
}

func TestSpaceConstructors(t *testing.T) {
	if _, err := rankregret.WeakRankingSpace(4, 2); err != nil {
		t.Error(err)
	}
	if _, err := rankregret.WeakRankingSpace(2, 5); err == nil {
		t.Error("c >= d should fail")
	}
	if _, err := rankregret.BallSpace([]float64{0.5, 0.5}, 0.1); err != nil {
		t.Error(err)
	}
	if _, err := rankregret.BallSpace([]float64{0.05, 0.5}, 0.1); err == nil {
		t.Error("ball leaving the orthant should fail")
	}
	if _, err := rankregret.PolytopeSpace(2, [][]float64{{1, -1}}, []float64{0}); err != nil {
		t.Error(err)
	}
	if sp := rankregret.FullSpace(3); sp.Dim() != 3 {
		t.Errorf("FullSpace dim = %d", sp.Dim())
	}
}

func TestHDRRMBeatsBaselinesOnAnticorrelated(t *testing.T) {
	// The paper's headline experimental finding: HDRRM always has the
	// lowest output rank-regret; MDRC or MDRMS have the worst.
	ds := rankregret.GenerateAnticorrelated(31, 4000, 4)
	regret := func(algo rankregret.Algorithm) int {
		t.Helper()
		sol, err := rankregret.Solve(ds, 10, &rankregret.Options{Algorithm: algo, MaxSamples: 4000})
		if err != nil {
			t.Fatal(err)
		}
		est, err := rankregret.EvaluateRankRegret(ds, sol.IDs, nil, 20000, 13)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	hd := regret(rankregret.AlgoHDRRM)
	mdrc := regret(rankregret.AlgoMDRC)
	mdrms := regret(rankregret.AlgoMDRMS)
	if hd > mdrc && hd > mdrms {
		t.Errorf("HDRRM regret %d worse than both MDRC (%d) and MDRMS (%d)", hd, mdrc, mdrms)
	}
	worst := mdrc
	if mdrms > worst {
		worst = mdrms
	}
	if worst < hd {
		t.Errorf("expected MDRC/MDRMS to be the worst; HDRRM=%d MDRC=%d MDRMS=%d", hd, mdrc, mdrms)
	}
}

func TestTopKSets2DPublicAPI(t *testing.T) {
	ds := tableI(t)
	sets, err := rankregret.TopKSets2D(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) == 0 {
		t.Fatal("no top-1 sets")
	}
	// Hitting every 1-set is equivalent to rank-regret 1: the union of all
	// top-1 winners must therefore have rank-regret exactly 1.
	var union []int
	seen := map[int]bool{}
	for _, s := range sets {
		if len(s) != 1 {
			t.Fatalf("1-set with %d members", len(s))
		}
		if !seen[s[0]] {
			seen[s[0]] = true
			union = append(union, s[0])
		}
	}
	got, err := rankregret.EvaluateRankRegret2D(ds, union, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("union of top-1 winners has rank-regret %d, want 1", got)
	}
	if _, err := rankregret.TopKSets2D(ds, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestRankRegretPercent(t *testing.T) {
	if got := rankregret.RankRegretPercent(6, 600); got != 1 {
		t.Errorf("6/600 = %v%%, want 1", got)
	}
	if got := rankregret.RankRegretPercent(1, 0); got != 0 {
		t.Errorf("n=0 should give 0, got %v", got)
	}
}

func TestSolveRRRRestricted2D(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(33, 400, 2)
	cone, err := rankregret.WeakRankingSpace(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := rankregret.SolveRRR(ds, 3, &rankregret.Options{Space: cone})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Exact {
		t.Error("restricted 2D RRR should be exact")
	}
	got, err := rankregret.EvaluateRankRegret2D(ds, sol.IDs, cone)
	if err != nil {
		t.Fatal(err)
	}
	if got > 3 {
		t.Errorf("restricted RRR(k=3) has rank-regret %d on the cone", got)
	}
	// The restricted dual never needs more tuples than the full dual.
	full, err := rankregret.SolveRRR(ds, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.IDs) > len(full.IDs) {
		t.Errorf("restricted RRR uses %d tuples, full-space uses %d", len(sol.IDs), len(full.IDs))
	}
}

// TestSolveSweep checks the sweep entry point: each returned solution is
// identical to the corresponding single Solve call, sizes respect their
// budgets, and the achieved rank-regret never worsens as the budget grows.
func TestSolveSweep(t *testing.T) {
	ds := rankregret.GenerateAnticorrelated(9, 150, 3)
	opts := &rankregret.Options{Algorithm: rankregret.AlgoHDRRM, Samples: 300, Gamma: 3, Seed: 2}
	rs := []int{4, 5, 6, 7, 8}
	sols, err := rankregret.SolveSweep(ds, rs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(rs) {
		t.Fatalf("sweep returned %d solutions for %d budgets", len(sols), len(rs))
	}
	prev := ds.N() + 1
	for i, r := range rs {
		single, err := rankregret.Solve(ds, r, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sols[i], single) {
			t.Errorf("r=%d: sweep solution %+v != single solve %+v", r, sols[i], single)
		}
		if len(sols[i].IDs) > r {
			t.Errorf("r=%d: solution size %d exceeds budget", r, len(sols[i].IDs))
		}
		if sols[i].RankRegret > prev {
			t.Errorf("r=%d: rank-regret %d worse than smaller budget's %d", r, sols[i].RankRegret, prev)
		}
		prev = sols[i].RankRegret
	}

	if _, err := rankregret.SolveSweep(ds, nil, opts); err == nil {
		t.Error("empty sweep should error")
	}
	if _, err := rankregret.SolveSweep(ds, []int{4, 0}, opts); err == nil {
		t.Error("sweep with an invalid budget should error")
	}
}
