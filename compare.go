package rankregret

import (
	"errors"
	"fmt"
	"time"
)

// AlgoResult is one row of a Compare bake-off.
type AlgoResult struct {
	// Algorithm that produced this row.
	Algorithm Algorithm
	// Solution is the solver output (nil when Err is set).
	Solution *Solution
	// RankRegret is the independently evaluated rank-regret of the output
	// (exact for d = 2, sampled otherwise), so rows are comparable even
	// when a solver reports no bound of its own.
	RankRegret int
	// Elapsed is the solve wall time (evaluation excluded).
	Elapsed time.Duration
	// Err records a solver failure; the other fields are zero then.
	Err error
}

// CompareOptions configures Compare.
type CompareOptions struct {
	// Options is passed to every solver (Algorithm is overridden per row).
	Options
	// EvalSamples is the budget of the independent quality estimate for
	// d > 2 (0 = 20 000; 2D datasets are evaluated exactly).
	EvalSamples int
}

// Compare runs several algorithms on the same instance and evaluates each
// output with the same independent estimator, the shape of the paper's
// per-figure experiments. Failures are recorded per row rather than
// aborting, mirroring how the paper annotates solvers that "do not scale
// beyond" a setting.
func Compare(ds *Dataset, r int, algos []Algorithm, opts *CompareOptions) ([]AlgoResult, error) {
	if ds == nil || ds.N() == 0 {
		return nil, errors.New("rankregret: empty dataset")
	}
	if r < 1 {
		return nil, fmt.Errorf("rankregret: output size r = %d, need >= 1", r)
	}
	if len(algos) == 0 {
		return nil, errors.New("rankregret: no algorithms to compare")
	}
	var co CompareOptions
	if opts != nil {
		co = *opts
	}
	evalSamples := co.EvalSamples
	if evalSamples <= 0 {
		evalSamples = 20000
	}
	out := make([]AlgoResult, 0, len(algos))
	for _, algo := range algos {
		row := AlgoResult{Algorithm: algo}
		o := co.Options
		o.Algorithm = algo
		start := time.Now()
		sol, err := Solve(ds, r, &o)
		row.Elapsed = time.Since(start)
		if err != nil {
			row.Err = err
			out = append(out, row)
			continue
		}
		row.Solution = sol
		if ds.Dim() == 2 {
			row.RankRegret, err = EvaluateRankRegret2D(ds, sol.IDs, o.Space)
		} else {
			row.RankRegret, err = EvaluateRankRegret(ds, sol.IDs, o.Space, evalSamples, o.Seed+777)
		}
		if err != nil {
			row.Err = err
		}
		out = append(out, row)
	}
	return out, nil
}
