// Benchmarks mirroring every table and figure of the paper's evaluation
// (Section VI). Each BenchmarkFigNN target runs one representative point of
// the corresponding figure per iteration, so `go test -bench=.` touches the
// whole evaluation; `cmd/rrmbench -fig <id>` regenerates a figure's full
// series, and EXPERIMENTS.md records paper-vs-measured for each.
package rankregret_test

import (
	"fmt"
	"testing"

	"github.com/rankregret/rankregret"
	"github.com/rankregret/rankregret/internal/bench"
)

// benchPoint runs one (workload, algorithm) cell of a figure.
func benchPoint(b *testing.B, p bench.Point, algo rankregret.Algorithm) {
	b.Helper()
	ds, err := bench.MakeDataset(p, 1)
	if err != nil {
		b.Fatal(err)
	}
	opts := &rankregret.Options{Algorithm: algo, Seed: 1, MaxSamples: bench.CIScale.MaxM}
	if p.Delta > 0 {
		opts.Delta = p.Delta
	}
	if p.C > 0 {
		sp, err := rankregret.WeakRankingSpace(ds.Dim(), p.C)
		if err != nil {
			b.Fatal(err)
		}
		opts.Space = sp
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rankregret.Solve(ds, p.R, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// synthetic2D enumerates the three synthetic workloads for the 2D figures.
func synthetic2D(b *testing.B, n, r int, algo rankregret.Algorithm) {
	b.Helper()
	for _, wl := range []string{"indep", "corr", "anti"} {
		b.Run(wl, func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: wl, N: n, D: 2, R: r}, algo)
		})
	}
}

// syntheticHD enumerates the three synthetic workloads for the HD figures.
func syntheticHD(b *testing.B, n, d, r int, algo rankregret.Algorithm) {
	b.Helper()
	for _, wl := range []string{"indep", "corr", "anti"} {
		b.Run(wl, func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: wl, N: n, D: d, R: r}, algo)
		})
	}
}

// BenchmarkTableI solves the paper's 7-tuple running example (Table I,
// Figures 1-2) with the exact 2D DP.
func BenchmarkTableI(b *testing.B) {
	benchPoint(b, bench.Point{Workload: "table1", N: 7, D: 2, R: 1}, rankregret.AlgoTwoDRRM)
}

// BenchmarkFig09 — 2D, runtime vs dataset size, 2DRRM vs 2DRRR, three
// synthetic workloads (n = 10K representative point).
func BenchmarkFig09TwoDRRM(b *testing.B) { synthetic2D(b, 10000, 5, rankregret.AlgoTwoDRRM) }
func BenchmarkFig09TwoDRRR(b *testing.B) { synthetic2D(b, 10000, 5, rankregret.AlgoTwoDRRR) }

// BenchmarkFig10 — 2D, runtime vs output size r.
func BenchmarkFig10(b *testing.B) {
	for _, r := range []int{5, 10} {
		for _, algo := range []rankregret.Algorithm{rankregret.AlgoTwoDRRM, rankregret.AlgoTwoDRRR} {
			b.Run(fmt.Sprintf("r=%d/%s", r, algo), func(b *testing.B) {
				benchPoint(b, bench.Point{Workload: "anti", N: 10000, D: 2, R: r}, algo)
			})
		}
	}
}

// BenchmarkFig11 — 2D, the (simulated) Island dataset.
func BenchmarkFig11(b *testing.B) {
	for _, algo := range []rankregret.Algorithm{rankregret.AlgoTwoDRRM, rankregret.AlgoTwoDRRR} {
		b.Run(string(algo), func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: "island", N: 20000, D: 2, R: 5}, algo)
		})
	}
}

// BenchmarkFig12 — 2D, the (simulated) NBA dataset projected to 2 attributes.
func BenchmarkFig12(b *testing.B) {
	for _, algo := range []rankregret.Algorithm{rankregret.AlgoTwoDRRM, rankregret.AlgoTwoDRRR} {
		b.Run(string(algo), func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: "nba", N: 10000, D: 2, R: 5}, algo)
		})
	}
}

// hdAlgos are the four solvers the paper's HD figures compare.
var hdAlgos = []rankregret.Algorithm{
	rankregret.AlgoHDRRM, rankregret.AlgoMDRRRr, rankregret.AlgoMDRC, rankregret.AlgoMDRMS,
}

// BenchmarkFig13..15 — HD, runtime vs dataset size (representative point
// n = 10K, d = 4, r = 10), per workload and solver.
func BenchmarkFig13(b *testing.B) { hdFigure(b, "indep", 10000, 4, 10) }
func BenchmarkFig14(b *testing.B) { hdFigure(b, "corr", 10000, 4, 10) }
func BenchmarkFig15(b *testing.B) { hdFigure(b, "anti", 10000, 4, 10) }

func hdFigure(b *testing.B, wl string, n, d, r int) {
	b.Helper()
	for _, algo := range hdAlgos {
		b.Run(string(algo), func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: wl, N: n, D: d, R: r}, algo)
		})
	}
}

// BenchmarkFig16..18 — HD, impact of dimensionality (d = 5 point).
func BenchmarkFig16(b *testing.B) { hdFigure(b, "indep", 10000, 5, 10) }
func BenchmarkFig17(b *testing.B) { hdFigure(b, "corr", 10000, 5, 10) }
func BenchmarkFig18(b *testing.B) { hdFigure(b, "anti", 10000, 5, 10) }

// BenchmarkFig19..21 — HD, impact of output size (r = 15 point).
func BenchmarkFig19(b *testing.B) { hdFigure(b, "indep", 10000, 4, 15) }
func BenchmarkFig20(b *testing.B) { hdFigure(b, "corr", 10000, 4, 15) }
func BenchmarkFig21(b *testing.B) { hdFigure(b, "anti", 10000, 4, 15) }

// BenchmarkFig22..24 — HDRRM, impact of the error parameter delta.
func BenchmarkFig22(b *testing.B) { deltaFigure(b, "indep") }
func BenchmarkFig23(b *testing.B) { deltaFigure(b, "corr") }
func BenchmarkFig24(b *testing.B) { deltaFigure(b, "anti") }

func deltaFigure(b *testing.B, wl string) {
	b.Helper()
	for _, delta := range []float64{0.01, 0.03, 0.1} {
		b.Run(fmt.Sprintf("delta=%g", delta), func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: wl, N: 10000, D: 4, R: 10, Delta: delta},
				rankregret.AlgoHDRRM)
		})
	}
}

// BenchmarkFig25 — RRRM (weak-ranking cone c = 2), varied dataset size on
// the anti-correlated workload.
func BenchmarkFig25(b *testing.B) {
	for _, algo := range []rankregret.Algorithm{rankregret.AlgoHDRRM, rankregret.AlgoMDRRRr} {
		b.Run(string(algo), func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: "anti", N: 10000, D: 4, R: 10, C: 2}, algo)
		})
	}
}

// BenchmarkFig26 — RRRM, varied dimensionality (d = 5 point).
func BenchmarkFig26(b *testing.B) {
	for _, algo := range []rankregret.Algorithm{rankregret.AlgoHDRRM, rankregret.AlgoMDRRRr} {
		b.Run(string(algo), func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: "anti", N: 10000, D: 5, R: 10, C: 2}, algo)
		})
	}
}

// BenchmarkFig27 — HD, the (simulated) NBA dataset, 5 attributes.
func BenchmarkFig27(b *testing.B) {
	for _, algo := range hdAlgos {
		b.Run(string(algo), func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: "nba", N: 10000, D: 5, R: 10}, algo)
		})
	}
}

// BenchmarkFig28 — HD, the (simulated) Weather dataset, 4 attributes.
func BenchmarkFig28(b *testing.B) {
	for _, algo := range hdAlgos {
		b.Run(string(algo), func(b *testing.B) {
			benchPoint(b, bench.Point{Workload: "weather", N: 40000, D: 4, R: 10}, algo)
		})
	}
}

// BenchmarkAblation — HDRRM with one ingredient removed at a time (beyond
// the paper; see EXPERIMENTS.md "Ablations"). Regenerate the quality
// columns with `cmd/rrmbench -fig ablation`.
func BenchmarkAblation(b *testing.B) {
	ds := rankregret.GenerateAnticorrelated(1, 2000, 4)
	for _, v := range []rankregret.HDRRMVariant{
		{}, {NoBasis: true}, {NoGrid: true}, {NoSamples: true},
	} {
		b.Run(v.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rankregret.SolveVariant(ds, 10, &rankregret.Options{MaxSamples: bench.CIScale.MaxM}, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
