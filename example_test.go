package rankregret_test

import (
	"fmt"
	"log"

	"github.com/rankregret/rankregret"
)

// ExampleSolve runs RRM on the paper's Table I dataset: for a budget of
// one tuple, the optimum is t3 = (0.57, 0.75), whose rank never drops below
// 3 under any linear preference.
func ExampleSolve() {
	ds, err := rankregret.NewDataset([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := rankregret.Solve(ds, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chose t%d with rank-regret %d\n", sol.IDs[0]+1, sol.RankRegret)
	// Output: chose t3 with rank-regret 3
}

// ExampleSolveRRR solves the dual problem: the smallest set guaranteeing
// every user a top-3 tuple.
func ExampleSolveRRR() {
	ds, err := rankregret.NewDataset([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := rankregret.SolveRRR(ds, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tuple(s) suffice for rank-regret <= 3\n", len(sol.IDs))
	// Output: 1 tuple(s) suffice for rank-regret <= 3
}

// ExampleWeakRankingSpace solves RRRM: the user is known to weight the
// first attribute at least as much as the second, which shrinks the
// adversary and can only improve the achievable rank-regret.
func ExampleWeakRankingSpace() {
	ds := rankregret.GenerateAnticorrelated(1, 500, 2)
	cone, err := rankregret.WeakRankingSpace(2, 1)
	if err != nil {
		log.Fatal(err)
	}
	full, err := rankregret.Solve(ds, 3, nil)
	if err != nil {
		log.Fatal(err)
	}
	restricted, err := rankregret.Solve(ds, 3, &rankregret.Options{Space: cone})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restricted optimum (%d) <= full optimum (%d): %v\n",
		restricted.RankRegret, full.RankRegret, restricted.RankRegret <= full.RankRegret)
	// Output: restricted optimum (3) <= full optimum (8): true
}

// ExampleSkyline lists the candidate tuples for RRM (Theorem 3): solutions
// only ever need skyline members.
func ExampleSkyline() {
	ds, err := rankregret.NewDataset([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rankregret.Skyline(ds))
	// Output: [0 1 2 3 6]
}

// ExampleEvaluateRankRegret measures an arbitrary set's quality: how deep
// in the ranking a user might have to look, in the worst case over sampled
// preferences.
func ExampleEvaluateRankRegret() {
	ds, err := rankregret.NewDataset([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	// {t1, t7} covers both extremes but nothing in the middle.
	k, err := rankregret.EvaluateRankRegret(ds, []int{0, 6}, nil, 20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank-regret of {t1, t7} is %d\n", k)
	// Output: rank-regret of {t1, t7} is 4
}
