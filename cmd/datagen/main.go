// Command datagen writes benchmark workloads as CSV so they can be fed to
// the rrm CLI or external tools.
//
// Examples:
//
//	datagen -kind anti -n 10000 -d 4 -o anti.csv
//	datagen -kind nba -o nba.csv
//	datagen -kind quarter -n 1000 -d 2 -o adversarial.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rankregret/rankregret"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind = flag.String("kind", "indep", "indep|corr|anti|quarter|island|nba|weather")
		n    = flag.Int("n", 10000, "number of tuples (<=0 for a real dataset's native size)")
		d    = flag.Int("d", 4, "attributes (synthetic kinds only)")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	ds, err := buildDataset(*kind, *seed, *n, *d)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rankregret.WriteCSV(w, ds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d tuples x %d attributes (%s)\n", ds.N(), ds.Dim(), *kind)
	return nil
}

// buildDataset dispatches a workload kind to its generator.
func buildDataset(kind string, seed int64, n, d int) (*rankregret.Dataset, error) {
	switch kind {
	case "indep":
		return rankregret.GenerateIndependent(seed, n, d), nil
	case "corr":
		return rankregret.GenerateCorrelated(seed, n, d), nil
	case "anti":
		return rankregret.GenerateAnticorrelated(seed, n, d), nil
	case "quarter":
		return rankregret.GenerateQuarterCircle(n, d), nil
	case "island":
		return rankregret.SimIsland(seed, n), nil
	case "nba":
		return rankregret.SimNBA(seed, n), nil
	case "weather":
		return rankregret.SimWeather(seed, n), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
