package main

import "testing"

func TestBuildDataset(t *testing.T) {
	cases := []struct {
		kind         string
		n, d         int
		wantN, wantD int
	}{
		{"indep", 50, 3, 50, 3},
		{"corr", 50, 3, 50, 3},
		{"anti", 50, 3, 50, 3},
		{"quarter", 50, 2, 50, 2},
		{"island", 50, 0, 50, 2},
		{"nba", 50, 0, 50, 5},
		{"weather", 50, 0, 50, 4},
	}
	for _, tc := range cases {
		ds, err := buildDataset(tc.kind, 1, tc.n, tc.d)
		if err != nil {
			t.Errorf("%s: %v", tc.kind, err)
			continue
		}
		if ds.N() != tc.wantN || ds.Dim() != tc.wantD {
			t.Errorf("%s: got %dx%d, want %dx%d", tc.kind, ds.N(), ds.Dim(), tc.wantN, tc.wantD)
		}
	}
	if _, err := buildDataset("nope", 1, 10, 2); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	a, err := buildDataset("anti", 42, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildDataset("anti", 42, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.Dim(); j++ {
			if a.Value(i, j) != b.Value(i, j) {
				t.Fatalf("same seed differs at (%d,%d)", i, j)
			}
		}
	}
}
