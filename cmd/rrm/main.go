// Command rrm answers rank-regret minimization queries over a CSV file.
//
// Examples:
//
//	rrm -in cars.csv -header -r 5
//	rrm -in cars.csv -header -r 5 -algo hdrrm -space weak:2
//	rrm -in cars.csv -header -k 10            # dual (RRR): min set with regret <= 10
//	rrm -in cars.csv -header -r 5 -negate 2,4 # columns where smaller is better
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/rankregret/rankregret"
	"github.com/rankregret/rankregret/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rrm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "input CSV file (required; - for stdin)")
		header    = flag.Bool("header", false, "first CSV record is a header")
		r         = flag.Int("r", 0, "output size budget (RRM mode)")
		k         = flag.Int("k", 0, "rank-regret threshold (RRR dual mode; exclusive with -r)")
		algo      = flag.String("algo", "", "algorithm: 2drrm|hdrrm|2drrr|mdrrrr|mdrc|mdrms (default: auto)")
		spaceSpec = flag.String("space", "", "restricted space, e.g. weak:2 (first 3 attrs in importance order)")
		negate    = flag.String("negate", "", "comma-separated 0-based columns where smaller is better")
		normalize = flag.Bool("normalize", true, "min-max normalize attributes to [0,1]")
		seed      = flag.Int64("seed", 1, "random seed")
		samples   = flag.Int("eval-samples", 20000, "directions for the independent rank-regret estimate (0 = skip)")
		format    = flag.String("format", "text", "output format: text or json")
		timeout   = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
	)
	flag.Parse()
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}
	if (*r > 0) == (*k > 0) {
		return fmt.Errorf("exactly one of -r and -k must be positive")
	}

	neg, err := cliutil.ParseNegate(*negate)
	if err != nil {
		return err
	}
	ds, err := cliutil.LoadCSVFile(*in, *header, neg, *normalize)
	if err != nil {
		return err
	}

	opts := &rankregret.Options{Algorithm: rankregret.Algorithm(*algo), Seed: *seed}
	if *spaceSpec != "" {
		sp, err := cliutil.ParseSpace(*spaceSpec, ds.Dim())
		if err != nil {
			return err
		}
		opts.Space = sp
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var sol *rankregret.Solution
	if *r > 0 {
		sol, err = rankregret.SolveContext(ctx, ds, *r, opts)
	} else {
		sol, err = rankregret.SolveRRRContext(ctx, ds, *k, opts)
	}
	if err != nil {
		return err
	}

	estimated := -1
	if *samples > 0 {
		est, err := rankregret.EvaluateRankRegret(ds, sol.IDs, opts.Space, *samples, *seed+7)
		if err != nil {
			return err
		}
		estimated = est
	}

	if *format == "json" {
		return writeJSON(os.Stdout, ds, sol, estimated)
	}

	fmt.Printf("dataset: n=%d d=%d\n", ds.N(), ds.Dim())
	fmt.Printf("algorithm: %s\n", sol.Algorithm)
	if sol.Exact {
		fmt.Printf("rank-regret: %d (exact)\n", sol.RankRegret)
	} else if sol.RankRegret > 0 {
		fmt.Printf("rank-regret: <= %d on the discretized space\n", sol.RankRegret)
	}
	if estimated >= 0 {
		fmt.Printf("rank-regret (estimated, %d samples): %d  (%.3f%% of n)\n",
			*samples, estimated, rankregret.RankRegretPercent(estimated, ds.N()))
	}
	fmt.Printf("chosen %d tuples:\n", len(sol.IDs))
	attrs := ds.Attrs()
	fmt.Printf("  id")
	for _, a := range attrs {
		fmt.Printf("\t%s", a)
	}
	fmt.Println()
	for _, id := range sol.IDs {
		fmt.Printf("  %d", id)
		for _, v := range ds.Row(id) {
			fmt.Printf("\t%.4g", v)
		}
		fmt.Println()
	}
	return nil
}

// solutionJSON is the machine-readable output shape of -format json.
type solutionJSON struct {
	N          int         `json:"n"`
	D          int         `json:"d"`
	Algorithm  string      `json:"algorithm"`
	IDs        []int       `json:"ids"`
	RankRegret int         `json:"rank_regret"`
	Exact      bool        `json:"exact"`
	Estimated  *int        `json:"estimated_rank_regret,omitempty"`
	Percent    *float64    `json:"estimated_percent,omitempty"`
	Rows       [][]float64 `json:"rows"`
}

func writeJSON(w io.Writer, ds *rankregret.Dataset, sol *rankregret.Solution, estimated int) error {
	out := solutionJSON{
		N:          ds.N(),
		D:          ds.Dim(),
		Algorithm:  string(sol.Algorithm),
		IDs:        sol.IDs,
		RankRegret: sol.RankRegret,
		Exact:      sol.Exact,
	}
	if estimated >= 0 {
		out.Estimated = &estimated
		pct := rankregret.RankRegretPercent(estimated, ds.N())
		out.Percent = &pct
	}
	for _, id := range sol.IDs {
		row := make([]float64, ds.Dim())
		copy(row, ds.Row(id))
		out.Rows = append(out.Rows, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
