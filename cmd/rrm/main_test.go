package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/rankregret/rankregret"
)

func TestParseSpaceWeak(t *testing.T) {
	sp, err := parseSpace("weak:2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dim() != 4 {
		t.Errorf("dim = %d, want 4", sp.Dim())
	}
	// u[0] >= u[1] >= u[2] holds for this direction...
	if !sp.ContainsDirection([]float64{0.5, 0.4, 0.3, 0.9}) {
		t.Error("direction satisfying the weak ranking rejected")
	}
	// ...but not for this one.
	if sp.ContainsDirection([]float64{0.1, 0.5, 0.3, 0.9}) {
		t.Error("direction violating the weak ranking accepted")
	}
}

func TestParseSpaceBall(t *testing.T) {
	sp, err := parseSpace("ball:0.1,0.5,0.5", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dim() != 2 {
		t.Errorf("dim = %d, want 2", sp.Dim())
	}
	if !sp.ContainsDirection([]float64{0.5, 0.5}) {
		t.Error("center direction rejected")
	}
	if sp.ContainsDirection([]float64{1, 0}) {
		t.Error("far-away direction accepted")
	}
}

func TestParseSpaceErrors(t *testing.T) {
	cases := []struct {
		spec string
		d    int
	}{
		{"weak:x", 4},       // non-numeric c
		{"ball:0.1,0.5", 2}, // wrong coordinate count
		{"ball:0.1,a,b", 2}, // non-numeric fields
		{"sphere:1", 2},     // unknown kind
		{"", 2},             // empty
	}
	for _, tc := range cases {
		if _, err := parseSpace(tc.spec, tc.d); err == nil {
			t.Errorf("parseSpace(%q, %d) should fail", tc.spec, tc.d)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	ds, err := rankregret.NewDataset([][]float64{{0, 1}, {1, 0}, {0.6, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	sol := &rankregret.Solution{IDs: []int{2}, RankRegret: 1, Exact: true, Algorithm: rankregret.AlgoTwoDRRM}
	var buf bytes.Buffer
	if err := writeJSON(&buf, ds, sol, 1); err != nil {
		t.Fatal(err)
	}
	var got solutionJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.N != 3 || got.D != 2 || !got.Exact || got.Algorithm != "2drrm" {
		t.Errorf("bad fields: %+v", got)
	}
	if len(got.IDs) != 1 || got.IDs[0] != 2 {
		t.Errorf("ids = %v", got.IDs)
	}
	if got.Estimated == nil || *got.Estimated != 1 || got.Percent == nil {
		t.Errorf("estimate fields missing: %+v", got)
	}
	if len(got.Rows) != 1 || got.Rows[0][0] != 0.6 {
		t.Errorf("rows = %v", got.Rows)
	}
	// estimated < 0 omits the estimate fields.
	buf.Reset()
	if err := writeJSON(&buf, ds, sol, -1); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("estimated_rank_regret")) {
		t.Error("estimate fields should be omitted when skipped")
	}
}
