package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/rankregret/rankregret"
)

// Space-spec and negate-list parsing tests live in internal/cliutil, where
// the parsing moved.

func TestWriteJSON(t *testing.T) {
	ds, err := rankregret.NewDataset([][]float64{{0, 1}, {1, 0}, {0.6, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	sol := &rankregret.Solution{IDs: []int{2}, RankRegret: 1, Exact: true, Algorithm: rankregret.AlgoTwoDRRM}
	var buf bytes.Buffer
	if err := writeJSON(&buf, ds, sol, 1); err != nil {
		t.Fatal(err)
	}
	var got solutionJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.N != 3 || got.D != 2 || !got.Exact || got.Algorithm != "2drrm" {
		t.Errorf("bad fields: %+v", got)
	}
	if len(got.IDs) != 1 || got.IDs[0] != 2 {
		t.Errorf("ids = %v", got.IDs)
	}
	if got.Estimated == nil || *got.Estimated != 1 || got.Percent == nil {
		t.Errorf("estimate fields missing: %+v", got)
	}
	if len(got.Rows) != 1 || got.Rows[0][0] != 0.6 {
		t.Errorf("rows = %v", got.Rows)
	}
	// estimated < 0 omits the estimate fields.
	buf.Reset()
	if err := writeJSON(&buf, ds, sol, -1); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("estimated_rank_regret")) {
		t.Error("estimate fields should be omitted when skipped")
	}
}
