// Command rrmload is an open-loop load generator for rrmd. It expands a
// seeded scenario (steady Poisson or bursty arrivals; a configurable mix of
// solves, parameter sweeps, dataset mutations, and pinned-version solves
// over one or more datasets) into a deterministic trace, fires the trace at
// a live daemon without waiting for completions, and writes a serving
// report — latency percentiles, throughput, reject/error rates, and a
// queue-depth / cache-hit timeline — to BENCH_serving.json.
//
//	rrmload -url http://127.0.0.1:8080 -scenario steady -rate 50 -duration 20s
//	rrmload -url ... -scenario burst -rate 20 -burst-rate 200 -out BENCH_serving.json
//	rrmload -url ... -save-trace trace.json          # record the schedule
//	rrmload -url ... -trace trace.json               # replay it exactly
//
// Traces are deterministic in the seed: two runs with the same flags offer
// byte-identical request sequences, so A/B comparisons (e.g. -policy fifo
// vs affinity on the server) see the same workload.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/rankregret/rankregret/internal/loadgen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrmload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rrmload", flag.ContinueOnError)
	var (
		url       = fs.String("url", "http://127.0.0.1:8080", "rrmd base URL")
		scenario  = fs.String("scenario", loadgen.ScenarioSteady, "arrival scenario: steady (flat Poisson) or burst (calm/burst phases)")
		duration  = fs.Duration("duration", 20*time.Second, "offered-load window")
		rate      = fs.Float64("rate", 20, "mean request rate in req/s (burst: the calm-phase rate)")
		burstRate = fs.Float64("burst-rate", 0, "burst-phase rate in req/s (0 = 5x -rate)")
		burstPer  = fs.Duration("burst-period", 5*time.Second, "burst scenario phase period")
		burstLen  = fs.Duration("burst-len", time.Second, "burst length within each period")
		seed      = fs.Int64("seed", 1, "trace seed; same seed + flags = identical request sequence")
		datasets  = fs.String("datasets", "", "comma-separated dataset names to target (empty = every dataset the server lists)")
		mix       = fs.String("mix", "", "request mix as kind=weight pairs, e.g. solve=0.7,sweep=0.1,mutate=0.1,pinned=0.1 (empty = that default)")
		rMax      = fs.Int("r-max", 7, "solve budgets r are drawn from [2, r-max]")
		sweepW    = fs.Int("sweep-width", 4, "r values per sweep batch")
		mutRows   = fs.Int("mutate-rows", 8, "rows appended per mutation")
		timeout   = fs.Duration("timeout", 30*time.Second, "client-side per-request guard timeout")
		maxSamp   = fs.Int("max-samples", 0, "max_samples bound attached to every solve (0 = server default); size the per-solve cost to the machine")
		sampleEv  = fs.Duration("sample-every", 500*time.Millisecond, "metrics timeline sampling interval (negative = no timeline)")
		out       = fs.String("out", "BENCH_serving.json", "report output path (empty = stdout summary only)")
		traceIn   = fs.String("trace", "", "replay this trace file instead of generating one")
		traceOut  = fs.String("save-trace", "", "also save the (generated or replayed) trace here")
		dryRun    = fs.Bool("dry-run", false, "generate (and optionally save) the trace, print its shape, and exit without sending traffic")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var trace *loadgen.Trace
	var err error
	if *traceIn != "" {
		if trace, err = loadgen.LoadTrace(*traceIn); err != nil {
			return err
		}
	} else {
		cfg := loadgen.Config{
			Scenario:    *scenario,
			Seed:        *seed,
			Duration:    *duration,
			Rate:        *rate,
			BurstRate:   *burstRate,
			BurstPeriod: *burstPer,
			BurstLen:    *burstLen,
			RMax:        *rMax,
			SweepWidth:  *sweepW,
			MutateRows:  *mutRows,
		}
		if cfg.Mix, err = parseMix(*mix); err != nil {
			return err
		}
		if cfg.Datasets, cfg.RMin, err = targetDatasets(ctx, *url, *datasets); err != nil {
			return err
		}
		if trace, err = loadgen.Generate(cfg); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		if err := trace.Save(*traceOut); err != nil {
			return err
		}
		fmt.Printf("trace saved to %s\n", *traceOut)
	}
	fmt.Printf("trace: scenario=%s seed=%d events=%d datasets=%v window=%.1fs\n",
		trace.Scenario, trace.Seed, len(trace.Events), trace.Datasets, trace.DurationMS/1000)
	if *dryRun {
		return nil
	}

	rep, err := loadgen.Run(ctx, trace, loadgen.RunConfig{
		BaseURL:        strings.TrimRight(*url, "/"),
		RequestTimeout: *timeout,
		SampleEvery:    *sampleEv,
		MaxSamples:     *maxSamp,
	})
	if err != nil {
		return err
	}
	if *out != "" {
		if err := rep.Save(*out); err != nil {
			return err
		}
	}
	printSummary(rep, *out)
	printSLO(strings.TrimRight(*url, "/"))
	return nil
}

// printSLO fetches GET /v1/slo after the run and summarizes each objective:
// how the offered load landed against the declared budgets. Older daemons
// (or ones started without SetupObs) return 404; that is not a run failure.
func printSLO(baseURL string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/slo", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var body struct {
		Objectives []struct {
			Name          string  `json:"name"`
			Spec          string  `json:"spec"`
			Compliance    float64 `json:"compliance"`
			Budget        float64 `json:"error_budget_remaining"`
			BurnFast      float64 `json:"burn_rate_fast"`
			BurnSlow      float64 `json:"burn_rate_slow"`
			FastBurnAlarm bool    `json:"fast_burn_alarm"`
		} `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || len(body.Objectives) == 0 {
		return
	}
	fmt.Println("slo:")
	for _, o := range body.Objectives {
		alarm := ""
		if o.FastBurnAlarm {
			alarm = "   FAST-BURN ALARM"
		}
		fmt.Printf("  %-12s %-24s compliance=%.4f budget=%+.2f burn fast=%.1fx slow=%.1fx%s\n",
			o.Name, o.Spec, o.Compliance, o.Budget, o.BurnFast, o.BurnSlow, alarm)
	}
}

// parseMix parses "solve=0.7,sweep=0.1,..." into a Mix; empty means the
// package default.
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if s == "" {
		return m, nil // Generate substitutes DefaultMix for the zero value
	}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return m, fmt.Errorf("bad -mix weight %q: %w", part, err)
		}
		switch k {
		case "solve":
			m.Solve = w
		case "sweep":
			m.Sweep = w
		case "mutate":
			m.Mutate = w
		case "pinned":
			m.Pinned = w
		default:
			return m, fmt.Errorf("unknown -mix kind %q (want solve, sweep, mutate, or pinned)", k)
		}
	}
	return m, nil
}

// targetDatasets resolves -datasets (an explicit list, or everything the
// server has when the flag is empty) and returns the solve-budget floor the
// trace must respect: the HDRRM family needs r >= d, so rMin is the largest
// dimensionality among the targeted datasets.
func targetDatasets(ctx context.Context, baseURL, flagVal string) (names []string, rMin int, err error) {
	dims, err := loadgen.DiscoverDatasets(ctx, baseURL)
	if err != nil {
		return nil, 0, err
	}
	if flagVal != "" {
		for _, n := range strings.Split(flagVal, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	} else {
		for n := range dims {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	if len(names) == 0 {
		return nil, 0, fmt.Errorf("server %s has no datasets; load one or start rrmd -demo", baseURL)
	}
	for _, n := range names {
		d, ok := dims[n]
		if !ok {
			return nil, 0, fmt.Errorf("server %s has no dataset %q", baseURL, n)
		}
		if d > rMin {
			rMin = d
		}
	}
	return names, rMin, nil
}

func printSummary(rep *loadgen.Report, outPath string) {
	fmt.Printf("run: policy=%s wall=%.1fs offered=%d ok=%d rejected=%d errors=%d (unexpected 5xx: %d)\n",
		rep.Policy, rep.DurationMS/1000, rep.Offered, rep.OK, rep.Rejected, rep.Errors, rep.Unexpected5xx)
	fmt.Printf("throughput: %.1f req/s   reject rate: %.1f%%   error rate: %.1f%%\n",
		rep.ThroughputRPS, 100*rep.RejectRate, 100*rep.ErrorRate)
	fmt.Printf("latency (ok): p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms\n",
		rep.Latency.P50, rep.Latency.P95, rep.Latency.P99, rep.Latency.Max)
	if rep.Rejected > 0 {
		fmt.Printf("rejects by cause: queue(429)=%d degraded(503)=%d drain(503)=%d\n",
			rep.RejectedQueue, rep.RejectedDegraded, rep.RejectedDrain)
		fmt.Printf("latency (rejects): p50=%.1fms p99=%.1fms — sheds should be fast\n",
			rep.RejectLatency.P50, rep.RejectLatency.P99)
	}
	if rep.BatchItemsAccepted+rep.BatchItemsRejected > 0 {
		fmt.Printf("sweep items: %d accepted, %d rejected\n", rep.BatchItemsAccepted, rep.BatchItemsRejected)
	}
	for kind, kr := range rep.PerKind {
		fmt.Printf("  %-6s offered=%d ok=%d rejected=%d (q=%d deg=%d drain=%d) errors=%d p50=%.1fms p99=%.1fms\n",
			kind, kr.Offered, kr.OK, kr.Rejected, kr.RejectedQueue, kr.RejectedDegraded, kr.RejectedDrain,
			kr.Errors, kr.Latency.P50, kr.Latency.P99)
	}
	if outPath != "" {
		fmt.Printf("report written to %s\n", outPath)
	}
}
