package main

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/loadgen"
	"github.com/rankregret/rankregret/internal/obs"
	"github.com/rankregret/rankregret/internal/obs/slo"
)

// slowSolver is a registered solver with a fixed latency floor, so SLO tests
// can make every solve deterministically "bad" against a 1ms threshold.
type slowSolver struct{}

func (slowSolver) Name() string { return "test-slow" }

func (slowSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts engine.Options) (*engine.Solution, error) {
	select {
	case <-time.After(20 * time.Millisecond):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &engine.Solution{IDs: []int{0}, Algorithm: "test-slow"}, nil
}

func init() { engine.Register(slowSolver{}) }

// quietObs is the standard test SetupObs base: discard logging.
func quietObs() ObsOptions {
	return ObsOptions{Logger: slog.New(slog.DiscardHandler)}
}

// sloStatuses fetches and decodes GET /v1/slo.
func sloStatuses(t *testing.T, baseURL string) []slo.Status {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/slo status %d", resp.StatusCode)
	}
	var body struct {
		Objectives []slo.Status `json:"objectives"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Objectives
}

// TestSLOEndpointAgreesWithPrometheus pins the two SLO surfaces to one
// evaluation path: after traffic quiesces, the /v1/slo JSON and the
// rrmd_slo_* gauge series must agree value-for-value, because both reads run
// Eval over the same histograms.
func TestSLOEndpointAgreesWithPrometheus(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.SetupObs(quietObs()); err != nil {
		t.Fatal(err)
	}

	// Some solve traffic (repeats land in the cache) — then quiesce.
	for _, r := range []int{5, 6, 5, 6} {
		resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: r})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve r=%d: status %d: %s", r, resp.StatusCode, body)
		}
	}

	statuses := sloStatuses(t, ts.URL)
	if len(statuses) != 3 {
		t.Fatalf("default objectives = %d, want 3 (solve, mutate, scrape)", len(statuses))
	}
	exp := scrapeProm(t, ts.URL)
	for _, s := range statuses {
		series := func(fam string) float64 {
			v, ok := exp.Value(fam + `{objective="` + s.Name + `"}`)
			if !ok {
				t.Fatalf("scrape missing %s for objective %s", fam, s.Name)
			}
			return v
		}
		for fam, want := range map[string]float64{
			"rrmd_slo_target":                 s.Target,
			"rrmd_slo_compliance":             s.Compliance,
			"rrmd_slo_error_budget_remaining": s.ErrorBudgetRemaining,
			"rrmd_slo_burn_rate_fast":         s.BurnRateFast,
			"rrmd_slo_burn_rate_slow":         s.BurnRateSlow,
		} {
			if got := series(fam); math.Abs(got-want) > 1e-9 {
				t.Errorf("objective %s: %s = %v on /metrics, %v on /v1/slo", s.Name, fam, got, want)
			}
		}
		wantAlarm := 0.0
		if s.FastBurnAlarm {
			wantAlarm = 1
		}
		if got := series("rrmd_slo_fast_burn_alarm"); got != wantAlarm {
			t.Errorf("objective %s: alarm gauge %v, JSON %v", s.Name, got, s.FastBurnAlarm)
		}
	}
	// The solve objective actually saw the traffic.
	for _, s := range statuses {
		if s.Source == "solve" && s.Windows[0].Total == 0 {
			t.Errorf("solve objective saw no events: %+v", s)
		}
	}

	// /healthz carries the same engine's summary.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		SLO struct {
			OK         bool `json:"ok"`
			Objectives []struct {
				Name string `json:"name"`
			} `json:"objectives"`
		} `json:"slo"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.SLO.OK || len(hz.SLO.Objectives) != 3 {
		t.Errorf("healthz slo = %+v, want ok with 3 objectives", hz.SLO)
	}
}

// TestFastBurnTripsIncidentCapture is the end-to-end anomaly path: a burst of
// deterministically slow solves against a 1ms objective must raise the
// fast-burn alarm on the next evaluation, and the flight recorder must retain
// a retrievable bundle carrying a trace, a goroutine profile, and a metrics
// snapshot — plus the on-disk JSON dump.
func TestFastBurnTripsIncidentCapture(t *testing.T) {
	srv, ts := newTestServer(t)
	dir := t.TempDir()
	o := quietObs()
	o.IncidentDir = dir
	o.SLOSpecs = []string{"solve:p99<1ms@99"}
	o.SLO = slo.Config{MinEvents: 5}
	if err := srv.SetupObs(o); err != nil {
		t.Fatal(err)
	}

	// Ten 20ms solves: every event lands far past the 1ms threshold, so the
	// burn rate is 100x the budget — alarm territory in any window. MaxSamples
	// varies so no request short-circuits through the solution cache.
	for i := 0; i < 10; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/solve",
			solveRequest{Dataset: "island", R: 4, Algorithm: "test-slow", MaxSamples: 100 + i})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("slow solve %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	var solveStatus slo.Status
	for _, s := range sloStatuses(t, ts.URL) {
		if s.Source == "solve" {
			solveStatus = s
		}
	}
	if !solveStatus.FastBurnAlarm {
		t.Fatalf("fast-burn alarm not raised: %+v", solveStatus)
	}
	if exp := scrapeProm(t, ts.URL); true {
		if v, ok := exp.Value(`rrmd_slo_fast_burn_alarm{objective="solve_p99"}`); !ok || v != 1 {
			t.Fatalf("alarm gauge = %v %v, want 1", v, ok)
		}
	}

	// The alarm capture is retained and retrievable with its full payload.
	resp, err := http.Get(ts.URL + "/v1/incidents")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Incidents []struct {
			ID      string `json:"id"`
			Trigger string `json:"trigger"`
		} `json:"incidents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	var incID string
	for _, inc := range list.Incidents {
		if inc.Trigger == "slo_fast_burn" {
			incID = inc.ID
		}
	}
	if incID == "" {
		t.Fatalf("no slo_fast_burn incident retained: %+v", list.Incidents)
	}
	iResp, err := http.Get(ts.URL + "/v1/incidents/" + incID)
	if err != nil {
		t.Fatal(err)
	}
	defer iResp.Body.Close()
	var inc obs.Incident
	if err := json.NewDecoder(iResp.Body).Decode(&inc); err != nil {
		t.Fatal(err)
	}
	if inc.Trace == nil || inc.RequestID == "" {
		t.Errorf("incident carries no request trace: %+v", inc)
	}
	if !strings.Contains(inc.Goroutines, "goroutine profile:") {
		t.Errorf("incident carries no goroutine profile")
	}
	if !strings.Contains(inc.Metrics, "rrmd_slo_burn_rate_fast") {
		t.Errorf("incident metrics snapshot missing SLO gauges")
	}
	if _, err := os.Stat(dir + "/" + incID + ".json"); err != nil {
		t.Errorf("incident bundle not dumped to -incident-dir: %v", err)
	}
}

// syncBuf is a mutex-guarded buffer for log output written from handler
// goroutines.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowRequestLogsCarryRequestID is the regression test for the anomaly
// correlation bugfix: under a seeded loadgen burst with a zero slow-trace
// threshold, every "slow request" record in the structured JSON log stream
// must carry a non-empty request_id.
func TestSlowRequestLogsCarryRequestID(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.TraceSlow = time.Nanosecond // every traced request logs as slow

	var out syncBuf
	ring := obs.NewLogRing(512)
	o := ObsOptions{Logger: obs.NewLogger(&out, "json", slog.LevelInfo, ring), LogRing: ring}
	if err := srv.SetupObs(o); err != nil {
		t.Fatal(err)
	}

	tr := servingTrace(t, loadgen.Config{
		Scenario:  loadgen.ScenarioBurst,
		Seed:      7,
		Duration:  time.Second,
		Rate:      40,
		BurstRate: 120,
		Mix:       loadgen.Mix{Solve: 1},
	})
	rep, err := loadgen.Run(context.Background(), tr, loadgen.RunConfig{
		BaseURL:        ts.URL,
		RequestTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatalf("burst completed nothing: %+v", rep)
	}
	// Close blocks until in-flight handlers (and their middleware logging)
	// return, so reading the buffer below does not race the server.
	ts.Close()

	slow := 0
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec["msg"] != "rrmd: slow request" {
			continue
		}
		slow++
		if id, _ := rec["request_id"].(string); id == "" {
			t.Errorf("slow-request record without request_id: %s", line)
		}
	}
	if slow == 0 {
		t.Fatal("burst produced no slow-request records at a zero threshold")
	}
}
