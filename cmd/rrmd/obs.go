package main

import (
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"time"

	"github.com/rankregret/rankregret/internal/obs"
	"github.com/rankregret/rankregret/internal/obs/slo"
	"github.com/rankregret/rankregret/internal/store"
)

// DefaultTraceRing is how many recent traced requests the daemon retains for
// GET /v1/trace/{id} and GET /v1/traces (the -trace-ring flag overrides).
const DefaultTraceRing = 256

// instrument wires the server's one metrics registry: latency histograms
// recorded by the engine, scheduler, and store, plus scrape-time collectors
// over the exact same subsystem snapshots /v1/metrics serializes — one
// source of truth, two renderings. Called once by NewServerWith.
func (s *Server) instrument() {
	reg := obs.NewRegistry()
	s.obs = reg
	s.traces = obs.NewTraceRing(DefaultTraceRing)
	s.eng.Instrument(reg)
	s.sched.Instrument(reg)
	s.store.Instrument(reg)
	s.solveDur = reg.Histogram("rrmd_solve_duration_seconds",
		"End-to-end successful /v1/solve latency, cache hits included.", nil)
	s.mutateDur = reg.Histogram("rrmd_mutate_duration_seconds",
		"End-to-end successful mutation latency (upload, append, delete, drop), WAL fsync included.", nil)
	s.scrapeDur = reg.Histogram("rrmd_scrape_duration_seconds",
		"GET /metrics render latency.", nil)
	obs.RegisterRuntime(reg)

	// Engine cache tiers (engine.Metrics in the JSON surface).
	reg.CounterFunc("rrmd_cache_hits_total", "Solution-cache hits.",
		func() float64 { return float64(s.eng.CacheStats().Hits) })
	reg.CounterFunc("rrmd_cache_misses_total", "Solution-cache misses.",
		func() float64 { return float64(s.eng.CacheStats().Misses) })
	reg.GaugeFunc("rrmd_cache_entries", "Solution-cache occupancy.",
		func() float64 { return float64(s.eng.CacheStats().Len) })
	reg.GaugeFunc("rrmd_cache_capacity", "Solution-cache capacity.",
		func() float64 { return float64(s.eng.CacheStats().Cap) })
	reg.CounterFunc("rrmd_vecset_builds_total", "VecSet-tier cold builds.",
		func() float64 { return float64(s.eng.VecSetStats().Builds) })
	reg.CounterFunc("rrmd_vecset_extensions_total", "VecSet-tier sample-stream extensions.",
		func() float64 { return float64(s.eng.VecSetStats().Extensions) })
	reg.CounterFunc("rrmd_vecset_reuses_total", "VecSet-tier pure reuses.",
		func() float64 { return float64(s.eng.VecSetStats().Reuses) })
	reg.CounterFunc("rrmd_vecset_repairs_total", "VecSet-tier incremental delta repairs.",
		func() float64 { return float64(s.eng.VecSetStats().Repairs) })
	reg.GaugeFunc("rrmd_vecset_entries", "VecSet-tier occupancy.",
		func() float64 { return float64(s.eng.VecSetStats().Len) })

	// Scheduler (engine.SchedulerStats in the JSON surface).
	reg.CounterFunc("rrmd_jobs_submitted_total", "Jobs admitted to the scheduler.",
		func() float64 { return float64(s.sched.Stats().Submitted) })
	reg.CounterFunc("rrmd_jobs_done_total", "Jobs finished successfully.",
		func() float64 { return float64(s.sched.Stats().Done) })
	reg.CounterFunc("rrmd_jobs_failed_total", "Jobs finished with an error.",
		func() float64 { return float64(s.sched.Stats().Failed) })
	reg.CounterFunc("rrmd_jobs_rejected_total", "Jobs refused at admission (queue full or draining).",
		func() float64 { return float64(s.sched.Stats().Rejected) })
	reg.GaugeFunc("rrmd_queue_depth", "Jobs waiting in the scheduler queue.",
		func() float64 { return float64(s.sched.Stats().QueueDepth) })
	reg.GaugeFunc("rrmd_queue_capacity", "Scheduler queue capacity.",
		func() float64 { return float64(s.sched.Stats().QueueCap) })
	reg.GaugeFunc("rrmd_jobs_running", "Jobs currently running.",
		func() float64 { return float64(s.sched.Stats().Running) })
	reg.GaugeFunc("rrmd_workers", "Scheduler worker count.",
		func() float64 { return float64(s.sched.Stats().Workers) })
	reg.GaugeFunc("rrmd_scheduler_draining", "1 while the scheduler is draining for shutdown.",
		func() float64 { return b2f(s.sched.Stats().Draining) })

	// Registry and durability layer (store.Summary in the JSON surface).
	reg.GaugeFunc("rrmd_datasets", "Registered datasets.",
		func() float64 { return float64(s.store.Len()) })
	reg.CounterFunc("rrmd_store_records_total", "WAL records appended since open.",
		func() float64 { return float64(s.store.Summary().Records) })
	reg.CounterFunc("rrmd_store_syncs_total", "WAL fsyncs completed since open.",
		func() float64 { return float64(s.store.Summary().Syncs) })
	reg.CounterFunc("rrmd_store_snapshots_total", "Snapshots persisted since open.",
		func() float64 { return float64(s.store.Summary().Snapshots) })
	reg.CounterFunc("rrmd_store_heal_attempts_total", "Self-heal attempts since open.",
		func() float64 { return float64(s.store.Summary().HealAttempts) })
	reg.CounterFunc("rrmd_store_heal_successes_total", "Completed self-heals since open.",
		func() float64 { return float64(s.store.Summary().HealSuccesses) })
	reg.GaugeFunc("rrmd_store_wal_bytes", "On-disk WAL size in bytes.",
		func() float64 { return float64(s.store.Summary().WALBytes) })
	reg.GaugeFunc("rrmd_store_snapshot_lag", "WAL records since the last snapshot cut.",
		func() float64 { return float64(s.store.Summary().SnapshotLag) })
	reg.GaugeFunc("rrmd_store_degraded", "1 while the store is degraded (mutations rejected, healer active).",
		func() float64 { return b2f(s.store.Summary().State == store.HealthDegraded) })
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ObsOptions configures the daemon-level observability wired by SetupObs:
// the shared structured logger, the trace and incident rings, and the SLO
// burn-rate engine.
type ObsOptions struct {
	// Logger is the daemon's structured logger (nil = keep the current one).
	Logger *slog.Logger
	// LogRing is the ring Logger tees into (see obs.NewLogger); incident
	// bundles carry its tail. Optional.
	LogRing *obs.LogRing
	// TraceRing resizes the retained-trace ring (0 = keep DefaultTraceRing).
	TraceRing int
	// IncidentDir, when set, receives every incident bundle as JSON.
	IncidentDir string
	// IncidentCapacity bounds the incident ring (0 = recorder default).
	IncidentCapacity int
	// IncidentMinGap rate-limits captures per trigger (0 = recorder default).
	IncidentMinGap time.Duration
	// SLOSpecs declares the objectives ("solve:p99<250ms@99.9"); nil = the
	// stock defaults for solve, mutate, and scrape.
	SLOSpecs []string
	// SLO tunes the engine (windows, thresholds, clock) — Registry and
	// OnFastBurn are owned by the server and overwritten.
	SLO slo.Config
}

// SetupObs wires the flag-driven observability surface: structured logging
// with request correlation, the anomaly flight recorder (slow requests, SLO
// fast burns, store health transitions), and the SLO engine over the latency
// histograms instrument() registered. Call once, before the server serves
// traffic — the fields it sets are read without locks on request paths.
func (s *Server) SetupObs(o ObsOptions) error {
	if o.Logger != nil {
		s.logger = o.Logger
		s.sched.SetLogger(o.Logger)
	}
	s.logRing = o.LogRing
	if o.TraceRing > 0 {
		s.traces = obs.NewTraceRing(o.TraceRing)
	}
	if o.IncidentDir != "" {
		if err := os.MkdirAll(o.IncidentDir, 0o755); err != nil {
			return fmt.Errorf("rrmd: creating -incident-dir: %w", err)
		}
	}
	s.recorder = obs.NewRecorder(obs.RecorderConfig{
		Capacity: o.IncidentCapacity,
		Dir:      o.IncidentDir,
		MinGap:   o.IncidentMinGap,
		Registry: s.obs,
		LogRing:  o.LogRing,
		Logger:   s.logger,
	})
	s.store.OnHealthChange(func(h store.HealthState) {
		s.recorder.Capture("store_health", "store transitioned to "+string(h), nil)
	})

	cfg := o.SLO
	cfg.Registry = s.obs
	cfg.OnFastBurn = func(st slo.Status) {
		s.logger.Error("rrmd: SLO fast-burn alarm",
			"objective", st.Name, "burn_rate_fast", st.BurnRateFast,
			"burn_rate_slow", st.BurnRateSlow, "compliance", st.Compliance)
		// Attach the most recent retained trace: under a burn it is almost
		// certainly one of the offending requests.
		var tr *obs.Trace
		if recent := s.traces.Recent(1); len(recent) > 0 {
			tr = recent[0]
		}
		s.recorder.Capture("slo_fast_burn",
			fmt.Sprintf("objective %s burning at %.1fx budget", st.Name, st.BurnRateFast), tr)
	}
	eng := slo.New(cfg)
	eng.Register("solve", s.solveDur.Snapshot)
	eng.Register("mutate", s.mutateDur.Snapshot)
	eng.Register("scrape", s.scrapeDur.Snapshot)
	specs := o.SLOSpecs
	if len(specs) == 0 {
		for _, obj := range slo.DefaultObjectives() {
			if err := eng.Add(obj); err != nil {
				return err
			}
		}
	} else {
		for _, spec := range specs {
			obj, err := slo.ParseObjective(spec)
			if err != nil {
				return err
			}
			if err := eng.Add(obj); err != nil {
				return err
			}
		}
	}
	s.sloEng = eng
	return nil
}

// withObs is the edge middleware: it mints the request id (honoring an
// inbound X-Request-Id), opens the request trace, threads it down the stack
// via the request context, and on the way out retains the trace (when any
// stage recorded a span), logs the per-stage breakdown for requests slower
// than TraceSlow — every such anomaly record carries the request id and
// dataset — and hands slow requests to the flight recorder.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		total := tr.Finish()
		if tr.SpanCount() == 0 {
			// Untraced surface (metrics scrapes, listings): nothing to keep.
			return
		}
		s.traces.Put(tr)
		if s.TraceSlow > 0 && total >= s.TraceSlow {
			s.logger.Warn("rrmd: slow request",
				"method", r.Method, "path", r.URL.Path, "request_id", id,
				"dataset", tr.Annotation("dataset"),
				"total_ms", float64(total)/float64(time.Millisecond),
				"breakdown", tr.Breakdown())
			if s.recorder != nil {
				s.recorder.Capture("slow_request",
					fmt.Sprintf("%s %s took %.2fms (threshold %s)",
						r.Method, r.URL.Path, float64(total)/float64(time.Millisecond), s.TraceSlow), tr)
			}
		}
	})
}

// handlePrometheus serves the registry in Prometheus text exposition format:
//
//	GET /metrics
//
// The SLO engine is evaluated first, so the rrmd_slo_* gauges in every
// scrape reflect the histograms as of this scrape — and agree with a
// /v1/slo read once traffic quiesces.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.sloEng != nil {
		s.sloEng.Eval()
	}
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	if err := s.obs.WritePrometheus(w); err != nil {
		s.logger.Warn("rrmd: writing /metrics failed", "err", err)
		return
	}
	s.scrapeDur.ObserveSince(start)
}

// handleSLO reports every declared objective's evaluated state:
//
//	GET /v1/slo
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if s.sloEng == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("SLO engine not configured (start rrmd with -slo or defaults via SetupObs)"))
		return
	}
	writeOK(w, http.StatusOK, map[string]any{"objectives": s.sloEng.Eval()})
}

// incidentSummary is the list-view shape of one incident: the heavy payloads
// (trace, goroutine profile, metrics, logs) are served by the per-id get.
type incidentSummary struct {
	ID        string    `json:"id"`
	Time      time.Time `json:"time"`
	Trigger   string    `json:"trigger"`
	Detail    string    `json:"detail"`
	RequestID string    `json:"request_id,omitempty"`
}

// handleIncidents lists retained incidents, newest first:
//
//	GET /v1/incidents?n=20
func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("flight recorder not configured (SetupObs was not called)"))
		return
	}
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
		n = p
	}
	recent := s.recorder.Recent(n)
	out := make([]incidentSummary, len(recent))
	for i, inc := range recent {
		out[i] = incidentSummary{ID: inc.ID, Time: inc.Time, Trigger: inc.Trigger, Detail: inc.Detail, RequestID: inc.RequestID}
	}
	writeOK(w, http.StatusOK, map[string]any{"incidents": out})
}

// handleIncident serves one full incident bundle:
//
//	GET /v1/incidents/{id}
func (s *Server) handleIncident(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("flight recorder not configured (SetupObs was not called)"))
		return
	}
	id := r.PathValue("id")
	inc, ok := s.recorder.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no incident %q (the ring keeps the last %d incidents)", id, s.recorder.Len()))
		return
	}
	writeOK(w, http.StatusOK, inc)
}

// handleTrace serves one retained request trace:
//
//	GET /v1/trace/{id}
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.traces.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("no trace for request id %q (the ring keeps the last %d traced requests)", id, s.traces.Cap()))
		return
	}
	writeOK(w, http.StatusOK, tr.Snapshot())
}

// handleTraces lists the most recent retained traces, newest first:
//
//	GET /v1/traces?n=20
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
		n = p
	}
	recent := s.traces.Recent(n)
	out := make([]obs.TraceSnapshot, len(recent))
	for i, tr := range recent {
		out[i] = tr.Snapshot()
	}
	writeOK(w, http.StatusOK, map[string]any{"traces": out})
}
