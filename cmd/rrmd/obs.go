package main

import (
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"github.com/rankregret/rankregret/internal/obs"
	"github.com/rankregret/rankregret/internal/store"
)

// DefaultTraceRing is how many recent traced requests the daemon retains for
// GET /v1/trace/{id} and GET /v1/traces.
const DefaultTraceRing = 256

// instrument wires the server's one metrics registry: latency histograms
// recorded by the engine, scheduler, and store, plus scrape-time collectors
// over the exact same subsystem snapshots /v1/metrics serializes — one
// source of truth, two renderings. Called once by NewServerWith.
func (s *Server) instrument() {
	reg := obs.NewRegistry()
	s.obs = reg
	s.traces = obs.NewTraceRing(DefaultTraceRing)
	s.eng.Instrument(reg)
	s.sched.Instrument(reg)
	s.store.Instrument(reg)
	s.solveDur = reg.Histogram("rrmd_solve_duration_seconds",
		"End-to-end successful /v1/solve latency, cache hits included.", nil)

	// Engine cache tiers (engine.Metrics in the JSON surface).
	reg.CounterFunc("rrmd_cache_hits_total", "Solution-cache hits.",
		func() float64 { return float64(s.eng.CacheStats().Hits) })
	reg.CounterFunc("rrmd_cache_misses_total", "Solution-cache misses.",
		func() float64 { return float64(s.eng.CacheStats().Misses) })
	reg.GaugeFunc("rrmd_cache_entries", "Solution-cache occupancy.",
		func() float64 { return float64(s.eng.CacheStats().Len) })
	reg.GaugeFunc("rrmd_cache_capacity", "Solution-cache capacity.",
		func() float64 { return float64(s.eng.CacheStats().Cap) })
	reg.CounterFunc("rrmd_vecset_builds_total", "VecSet-tier cold builds.",
		func() float64 { return float64(s.eng.VecSetStats().Builds) })
	reg.CounterFunc("rrmd_vecset_extensions_total", "VecSet-tier sample-stream extensions.",
		func() float64 { return float64(s.eng.VecSetStats().Extensions) })
	reg.CounterFunc("rrmd_vecset_reuses_total", "VecSet-tier pure reuses.",
		func() float64 { return float64(s.eng.VecSetStats().Reuses) })
	reg.CounterFunc("rrmd_vecset_repairs_total", "VecSet-tier incremental delta repairs.",
		func() float64 { return float64(s.eng.VecSetStats().Repairs) })
	reg.GaugeFunc("rrmd_vecset_entries", "VecSet-tier occupancy.",
		func() float64 { return float64(s.eng.VecSetStats().Len) })

	// Scheduler (engine.SchedulerStats in the JSON surface).
	reg.CounterFunc("rrmd_jobs_submitted_total", "Jobs admitted to the scheduler.",
		func() float64 { return float64(s.sched.Stats().Submitted) })
	reg.CounterFunc("rrmd_jobs_done_total", "Jobs finished successfully.",
		func() float64 { return float64(s.sched.Stats().Done) })
	reg.CounterFunc("rrmd_jobs_failed_total", "Jobs finished with an error.",
		func() float64 { return float64(s.sched.Stats().Failed) })
	reg.CounterFunc("rrmd_jobs_rejected_total", "Jobs refused at admission (queue full or draining).",
		func() float64 { return float64(s.sched.Stats().Rejected) })
	reg.GaugeFunc("rrmd_queue_depth", "Jobs waiting in the scheduler queue.",
		func() float64 { return float64(s.sched.Stats().QueueDepth) })
	reg.GaugeFunc("rrmd_queue_capacity", "Scheduler queue capacity.",
		func() float64 { return float64(s.sched.Stats().QueueCap) })
	reg.GaugeFunc("rrmd_jobs_running", "Jobs currently running.",
		func() float64 { return float64(s.sched.Stats().Running) })
	reg.GaugeFunc("rrmd_workers", "Scheduler worker count.",
		func() float64 { return float64(s.sched.Stats().Workers) })
	reg.GaugeFunc("rrmd_scheduler_draining", "1 while the scheduler is draining for shutdown.",
		func() float64 { return b2f(s.sched.Stats().Draining) })

	// Registry and durability layer (store.Summary in the JSON surface).
	reg.GaugeFunc("rrmd_datasets", "Registered datasets.",
		func() float64 { return float64(s.store.Len()) })
	reg.CounterFunc("rrmd_store_records_total", "WAL records appended since open.",
		func() float64 { return float64(s.store.Summary().Records) })
	reg.CounterFunc("rrmd_store_syncs_total", "WAL fsyncs completed since open.",
		func() float64 { return float64(s.store.Summary().Syncs) })
	reg.CounterFunc("rrmd_store_snapshots_total", "Snapshots persisted since open.",
		func() float64 { return float64(s.store.Summary().Snapshots) })
	reg.CounterFunc("rrmd_store_heal_attempts_total", "Self-heal attempts since open.",
		func() float64 { return float64(s.store.Summary().HealAttempts) })
	reg.CounterFunc("rrmd_store_heal_successes_total", "Completed self-heals since open.",
		func() float64 { return float64(s.store.Summary().HealSuccesses) })
	reg.GaugeFunc("rrmd_store_wal_bytes", "On-disk WAL size in bytes.",
		func() float64 { return float64(s.store.Summary().WALBytes) })
	reg.GaugeFunc("rrmd_store_snapshot_lag", "WAL records since the last snapshot cut.",
		func() float64 { return float64(s.store.Summary().SnapshotLag) })
	reg.GaugeFunc("rrmd_store_degraded", "1 while the store is degraded (mutations rejected, healer active).",
		func() float64 { return b2f(s.store.Summary().State == store.HealthDegraded) })
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// withObs is the edge middleware: it mints the request id (honoring an
// inbound X-Request-Id), opens the request trace, threads it down the stack
// via the request context, and on the way out retains the trace (when any
// stage recorded a span) and logs the per-stage breakdown for requests
// slower than TraceSlow.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = obs.NewRequestID()
		}
		tr := obs.NewTrace(id)
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(obs.WithTrace(r.Context(), tr)))
		total := tr.Finish()
		if tr.SpanCount() == 0 {
			// Untraced surface (metrics scrapes, listings): nothing to keep.
			return
		}
		s.traces.Put(tr)
		if s.TraceSlow > 0 && total >= s.TraceSlow {
			log.Printf("rrmd: slow request %s %s id=%s total=%.2fms %s",
				r.Method, r.URL.Path, id, float64(total)/float64(time.Millisecond), tr.Breakdown())
		}
	})
}

// handlePrometheus serves the registry in Prometheus text exposition format:
//
//	GET /metrics
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	if err := s.obs.WritePrometheus(w); err != nil {
		log.Printf("rrmd: writing /metrics: %v", err)
	}
}

// handleTrace serves one retained request trace:
//
//	GET /v1/trace/{id}
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.traces.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("no trace for request id %q (the ring keeps the last %d traced requests)", id, DefaultTraceRing))
		return
	}
	writeOK(w, http.StatusOK, tr.Snapshot())
}

// handleTraces lists the most recent retained traces, newest first:
//
//	GET /v1/traces?n=20
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 1 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
			return
		}
		n = p
	}
	recent := s.traces.Recent(n)
	out := make([]obs.TraceSnapshot, len(recent))
	for i, tr := range recent {
		out[i] = tr.Snapshot()
	}
	writeOK(w, http.StatusOK, map[string]any{"traces": out})
}
