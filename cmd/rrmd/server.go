package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/rankregret/rankregret/internal/cliutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/eval"
	"github.com/rankregret/rankregret/internal/funcspace"
)

// DefaultRetainVersions is how many dataset versions (including the current
// one) the registry keeps solvable by default. Older versions age out;
// in-flight solves pinned to an aged-out version still finish — they hold
// the snapshot — but new requests for it are rejected.
const DefaultRetainVersions = 8

// namedDataset is one registry entry: the retained version history of a
// logical dataset, newest last. Mutations snapshot the newest version, apply
// the change, and publish the snapshot as the new current, so every retained
// version is immutable once listed and version-pinned solves stay
// consistent no matter what mutates afterwards.
type namedDataset struct {
	mu       sync.Mutex
	versions []*dataset.Dataset
}

func (nd *namedDataset) current() *dataset.Dataset {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.versions[len(nd.versions)-1]
}

// at resolves a pinned version (0 = current).
func (nd *namedDataset) at(version uint64) (*dataset.Dataset, bool) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if version == 0 {
		return nd.versions[len(nd.versions)-1], true
	}
	for _, ds := range nd.versions {
		if ds.Version() == version {
			return ds, true
		}
	}
	return nil, false
}

// list returns the retained versions, oldest first.
func (nd *namedDataset) list() []*dataset.Dataset {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return append([]*dataset.Dataset(nil), nd.versions...)
}

// mutate applies f to a snapshot of the current version and, on success,
// publishes the snapshot as the new current, trimming history past retain.
// On error nothing is published.
func (nd *namedDataset) mutate(retain int, f func(*dataset.Dataset) error) (*dataset.Dataset, error) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	next := nd.versions[len(nd.versions)-1].Snapshot()
	if err := f(next); err != nil {
		return nil, err
	}
	nd.versions = append(nd.versions, next)
	if retain < 1 {
		retain = 1
	}
	if len(nd.versions) > retain {
		nd.versions = append([]*dataset.Dataset(nil), nd.versions[len(nd.versions)-retain:]...)
	}
	return next, nil
}

// Server is the rrmd serving core: a named-dataset registry (with retained
// version history and a mutation API) in front of a solver engine and its
// job scheduler. It is safe for concurrent use; every handler may run on
// many goroutines at once.
type Server struct {
	eng        *engine.Engine
	sched      *engine.Scheduler
	maxTimeout time.Duration

	// MaxUploadBytes bounds the size of a POST /v1/datasets body.
	MaxUploadBytes int64

	// SolveParallelism is the default worker-goroutine bound for the
	// HDRRM top-K scoring passes of each solve (0 = GOMAXPROCS); requests
	// override it with the "parallelism" field, where an explicit 0 asks
	// for GOMAXPROCS. Results are bit-identical at every setting — the
	// knob keeps one cold solve from monopolizing every core of a busy
	// daemon.
	SolveParallelism int

	// RetainVersions caps each dataset's retained version history
	// (DefaultRetainVersions when 0 or negative at first use).
	RetainVersions int

	mu       sync.RWMutex
	datasets map[string]*namedDataset
}

// NewServer returns a Server with its own engine (cacheSize 0 = engine
// default), a per-request timeout ceiling (0 = 60s), and a job scheduler
// with the given worker count (0 = GOMAXPROCS) and queue capacity (0 =
// 256). Call Close when done with the server.
func NewServer(cacheSize int, maxTimeout time.Duration, workers, queueCap int) *Server {
	if maxTimeout <= 0 {
		maxTimeout = 60 * time.Second
	}
	eng := engine.New(cacheSize)
	return &Server{
		eng:            eng,
		sched:          engine.NewScheduler(eng, workers, queueCap),
		maxTimeout:     maxTimeout,
		MaxUploadBytes: 64 << 20, // 64 MiB
		RetainVersions: DefaultRetainVersions,
		datasets:       make(map[string]*namedDataset),
	}
}

// Close stops the job scheduler, cancelling running jobs and failing queued
// ones.
func (s *Server) Close() { s.sched.Close() }

// AddDataset registers ds under name, replacing any previous dataset (and
// its whole version history) with that name.
func (s *Server) AddDataset(name string, ds *dataset.Dataset) error {
	if name == "" {
		return errors.New("rrmd: dataset name must be non-empty")
	}
	if ds == nil || ds.N() == 0 {
		return errors.New("rrmd: dataset is empty")
	}
	if ds.Version() == 0 {
		// Derived datasets (Clone, Subset, Head, Project) arrive at version
		// 0, which is the wire sentinel for "current" and would make the
		// retained entry unpinnable. Re-materialize so every version number
		// the registry ever lists is non-zero; content and fingerprint are
		// unchanged.
		fresh := dataset.New(ds.Dim())
		if err := fresh.SetAttrs(ds.Attrs()); err != nil {
			return err
		}
		for i := 0; i < ds.N(); i++ {
			fresh.Append(ds.Row(i))
		}
		ds = fresh
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = &namedDataset{versions: []*dataset.Dataset{ds}}
	return nil
}

func (s *Server) entry(name string) (*namedDataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	nd, ok := s.datasets[name]
	return nd, ok
}

func (s *Server) dataset(name string) (*dataset.Dataset, bool) {
	nd, ok := s.entry(name)
	if !ok {
		return nil, false
	}
	return nd.current(), true
}

func (s *Server) retain() int {
	if s.RetainVersions < 1 {
		return DefaultRetainVersions
	}
	return s.RetainVersions
}

// Handler returns the daemon's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("POST /v1/datasets/{name}/rows", s.handleAppendRows)
	mux.HandleFunc("DELETE /v1/datasets/{name}/rows", s.handleDeleteRows)
	mux.HandleFunc("GET /v1/datasets/{name}/versions", s.handleVersions)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/solve/batch", s.handleSolveBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobsList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	return mux
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeOK(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeOK(w, http.StatusOK, map[string]any{"ok": true, "cache": s.eng.CacheStats()})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeOK(w, http.StatusOK, map[string]any{"algorithms": engine.Algorithms()})
}

// datasetInfo is the wire shape of one registry entry (one version of it).
type datasetInfo struct {
	Name        string   `json:"name"`
	N           int      `json:"n"`
	D           int      `json:"d"`
	Attrs       []string `json:"attrs"`
	Fingerprint string   `json:"fingerprint"`
	Version     uint64   `json:"version"`
}

func info(name string, ds *dataset.Dataset) datasetInfo {
	return datasetInfo{
		Name:        name,
		N:           ds.N(),
		D:           ds.Dim(),
		Attrs:       ds.Attrs(),
		Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
		Version:     ds.Version(),
	}
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	entries := make(map[string]*namedDataset, len(s.datasets))
	for name, nd := range s.datasets {
		names = append(names, name)
		entries[name] = nd
	}
	s.mu.RUnlock()
	sort.Strings(names)
	out := make([]datasetInfo, 0, len(names))
	for _, name := range names {
		out = append(out, info(name, entries[name].current()))
	}
	writeOK(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.dataset(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	writeOK(w, http.StatusOK, info(name, ds))
}

// handleUploadDataset registers a CSV posted as the request body:
//
//	POST /v1/datasets?name=cars&header=1&negate=0,2&normalize=1
func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing name query parameter"))
		return
	}
	neg, err := cliutil.ParseNegate(q.Get("negate"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	header := q.Get("header") == "1" || q.Get("header") == "true"
	normalize := true
	if v := q.Get("normalize"); v == "0" || v == "false" {
		normalize = false
	}
	ds, err := cliutil.LoadCSV(http.MaxBytesReader(w, r.Body, s.MaxUploadBytes), header, neg, normalize)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.AddDataset(name, ds); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeOK(w, http.StatusCreated, info(name, ds))
}

// mutateResponse is the wire shape of a successful mutation: the new current
// version's info plus what the mutation did.
type mutateResponse struct {
	datasetInfo
	Appended int `json:"appended,omitempty"`
	Deleted  int `json:"deleted,omitempty"`
}

// handleAppendRows appends rows to a dataset, publishing a new version:
//
//	POST /v1/datasets/{name}/rows {"rows": [[0.1, 0.9], [0.4, 0.4]]}
//
// Rows are taken as-is (no re-normalization — a rewrite would invalidate
// every cached artifact), so callers of normalized datasets must supply
// values in the normalized units. Solves already in flight keep the version
// they started with; new solves see the appended rows.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	nd, ok := s.entry(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	var req struct {
		Rows [][]float64 `json:"rows"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxUploadBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("rows must be non-empty"))
		return
	}
	// Validate before mutate: a snapshot copies the whole value matrix
	// under the entry lock, and malformed requests must not pay (or make
	// everyone else wait on) that. Dimension is immutable across versions,
	// so checking against the current one is exact. Finiteness needs no
	// check: encoding/json cannot decode NaN/Inf (or out-of-range numbers)
	// into a float64.
	dim := nd.current().Dim()
	for i, row := range req.Rows {
		if len(row) != dim {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("row %d has %d attributes, want %d", i, len(row), dim))
			return
		}
	}
	next, err := nd.mutate(s.retain(), func(ds *dataset.Dataset) error {
		for _, row := range req.Rows {
			ds.Append(row)
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeOK(w, http.StatusOK, mutateResponse{datasetInfo: info(name, next), Appended: len(req.Rows)})
}

// handleDeleteRows removes rows by id from a dataset, publishing a new
// version:
//
//	DELETE /v1/datasets/{name}/rows {"ids": [3, 17]}
//
// Ids refer to the current version's indexing; rows above a deleted id shift
// down, exactly as Dataset.Delete documents. Deleting every row is rejected
// (the registry never serves an empty dataset).
func (s *Server) handleDeleteRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	nd, ok := s.entry(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	var req struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxUploadBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("ids must be non-empty"))
		return
	}
	// Cheap pre-check before the snapshot-copying mutate; Delete
	// re-validates against the authoritative row count inside the lock.
	n := nd.current().N()
	for _, id := range req.IDs {
		if id < 0 || id >= n {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("delete index %d out of range [0, %d)", id, n))
			return
		}
	}
	before := 0
	next, err := nd.mutate(s.retain(), func(ds *dataset.Dataset) error {
		before = ds.N()
		if err := ds.Delete(req.IDs); err != nil {
			return err
		}
		if ds.N() == 0 {
			return errors.New("refusing to delete every row")
		}
		return nil
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeOK(w, http.StatusOK, mutateResponse{datasetInfo: info(name, next), Deleted: before - next.N()})
}

// versionInfo is one entry of GET /v1/datasets/{name}/versions.
type versionInfo struct {
	Version     uint64 `json:"version"`
	N           int    `json:"n"`
	Fingerprint string `json:"fingerprint"`
	Current     bool   `json:"current"`
}

// handleVersions lists the retained (solvable) versions, oldest first.
// Solves pin to one with the request's "version" field.
func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	nd, ok := s.entry(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	versions := nd.list()
	out := make([]versionInfo, len(versions))
	for i, ds := range versions {
		out[i] = versionInfo{
			Version:     ds.Version(),
			N:           ds.N(),
			Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
			Current:     i == len(versions)-1,
		}
	}
	writeOK(w, http.StatusOK, map[string]any{
		"dataset":  name,
		"retain":   s.retain(),
		"versions": out,
	})
}

// solveRequest is the wire shape of POST /v1/solve. Exactly one of R
// (primal RRM: at most r tuples, minimum rank-regret) and K (dual RRR:
// minimum tuples, rank-regret at most k) must be positive.
type solveRequest struct {
	Dataset string `json:"dataset"`
	// Version pins the solve to a retained dataset version (0 = current).
	// In-flight solves always keep the version they started with; the pin
	// lets sweeps and retries stay on one version across mutations.
	Version    uint64  `json:"version,omitempty"`
	R          int     `json:"r,omitempty"`
	K          int     `json:"k,omitempty"`
	Algorithm  string  `json:"algorithm,omitempty"`
	Space      string  `json:"space,omitempty"`
	Gamma      int     `json:"gamma,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Samples    int     `json:"samples,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	// Parallelism overrides the server's -solve-parallelism default when
	// present; an explicit 0 (or negative) asks for GOMAXPROCS. A pointer
	// distinguishes "absent" from that explicit 0.
	Parallelism *int  `json:"parallelism,omitempty"`
	EvalSamples int   `json:"eval_samples,omitempty"`
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
}

// solveResult is the stable core of every solve answer. The same shape is
// embedded in /v1/solve responses, /v1/solve/batch items, and finished
// /v1/jobs statuses, so results from the three paths are directly
// comparable.
type solveResult struct {
	Dataset    string `json:"dataset"`
	Algorithm  string `json:"algorithm"`
	IDs        []int  `json:"ids"`
	RankRegret int    `json:"rank_regret"`
	Exact      bool   `json:"exact"`
}

func resultOf(name string, sol *engine.Solution) solveResult {
	return solveResult{
		Dataset:    name,
		Algorithm:  sol.Algorithm,
		IDs:        sol.IDs,
		RankRegret: sol.RankRegret,
		Exact:      sol.Exact,
	}
}

// solveResponse is the wire shape of a successful solve.
type solveResponse struct {
	solveResult
	Estimated *int              `json:"estimated_rank_regret,omitempty"`
	Percent   *float64          `json:"estimated_percent,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Cache     engine.CacheStats `json:"cache"`
}

// resolve looks up the dataset (pinned to a retained version when version
// is non-zero), parses the space spec, and clamps the requested timeout to
// the server ceiling — the validation every dataset-touching endpoint
// shares. The returned int is the HTTP status to use when err is non-nil.
func (s *Server) resolve(name, spec string, timeoutMS int64, version uint64) (*dataset.Dataset, funcspace.Space, time.Duration, int, error) {
	nd, ok := s.entry(name)
	if !ok {
		return nil, nil, 0, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name)
	}
	ds, ok := nd.at(version)
	if !ok {
		return nil, nil, 0, http.StatusGone, fmt.Errorf("version %d of dataset %q is not retained (see GET /v1/datasets/%s/versions)", version, name, name)
	}
	var sp funcspace.Space
	if spec != "" {
		var err error
		sp, err = cliutil.ParseSpace(spec, ds.Dim())
		if err != nil {
			return nil, nil, 0, http.StatusBadRequest, err
		}
	}
	timeout := s.maxTimeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return ds, sp, timeout, 0, nil
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	er, status, err := s.engineRequest(req)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), er.Timeout)
	defer cancel()
	start := time.Now()
	type outcome struct {
		sol *engine.Solution
		est *int
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		o.sol, o.err = er.Run(ctx, s.eng)
		if o.err == nil && req.EvalSamples > 0 {
			space := er.Opts.Space
			if space == nil {
				space = funcspace.NewFull(er.Dataset.Dim())
			}
			est, err := eval.RankRegretCtx(ctx, er.Dataset, o.sol.IDs, space, clampSamples(req.EvalSamples), er.Opts.Seed+7)
			if err != nil {
				o.err = err
			} else {
				o.est = &est
			}
		}
		done <- o
	}()
	// Context-aware solvers abort from inside their hot loops; the select
	// additionally bounds the client's wait for solvers (and the sampling
	// estimator) that do not check ctx — the goroutine then finishes in the
	// background and is dropped.
	var o outcome
	select {
	case o = <-done:
	case <-ctx.Done():
		o.err = ctx.Err()
	}
	if o.err != nil {
		writeErr(w, statusOf(o.err), o.err)
		return
	}
	resp := solveResponse{
		solveResult: resultOf(req.Dataset, o.sol),
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		Cache:       s.eng.CacheStats(),
	}
	if o.est != nil {
		pct := 100 * float64(*o.est) / float64(er.Dataset.N())
		resp.Estimated = o.est
		resp.Percent = &pct
	}
	writeOK(w, http.StatusOK, resp)
}

// maxEvalSamples caps client-supplied sampling budgets so a single request
// cannot pin a CPU for hours.
const maxEvalSamples = 1_000_000

func clampSamples(n int) int {
	if n > maxEvalSamples {
		return maxEvalSamples
	}
	return n
}

// engineRequest validates a wire solveRequest and converts it into an
// engine request: the single conversion point shared by /v1/solve, the
// batch endpoint, and the jobs endpoint, so the three paths cannot drift.
// The returned int is the HTTP status to use when err is non-nil.
func (s *Server) engineRequest(req solveRequest) (engine.Request, int, error) {
	if (req.R > 0) == (req.K > 0) {
		return engine.Request{}, http.StatusBadRequest, errors.New("exactly one of r and k must be positive")
	}
	ds, sp, timeout, status, err := s.resolve(req.Dataset, req.Space, req.TimeoutMS, req.Version)
	if err != nil {
		return engine.Request{}, status, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	par := s.SolveParallelism
	if req.Parallelism != nil {
		if par = *req.Parallelism; par < 0 {
			par = 0
		}
	}
	er := engine.Request{
		Dataset:   ds,
		Label:     req.Dataset,
		Mode:      engine.ModeRRM,
		RK:        req.R,
		Algorithm: req.Algorithm,
		Timeout:   timeout,
		Opts: engine.Options{
			Space:       sp,
			SpaceKey:    req.Space,
			CacheSalt:   req.Dataset,
			Gamma:       req.Gamma,
			Delta:       req.Delta,
			Samples:     req.Samples,
			MaxSamples:  req.MaxSamples,
			Seed:        seed,
			Parallelism: par,
		},
	}
	if req.K > 0 {
		er.Mode = engine.ModeRRR
		er.RK = req.K
	}
	return er, 0, nil
}

// batchRequest is the wire shape of POST /v1/solve/batch: a list of solve
// requests fanned out over the scheduler's worker pool. TimeoutMS bounds
// the whole batch (capped by the server ceiling); per-item timeout_ms
// bounds individual solves once they start.
type batchRequest struct {
	Requests  []solveRequest `json:"requests"`
	TimeoutMS int64          `json:"timeout_ms,omitempty"`
}

// batchItem is one answer of a batch response, in request order. Exactly
// one of the embedded result and Error is present.
type batchItem struct {
	Index int `json:"index"`
	*solveResult
	Error string `json:"error,omitempty"`
}

// maxBatchSize bounds how many solves one batch request may carry.
const maxBatchSize = 256

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("requests must be non-empty"))
		return
	}
	if len(req.Requests) > maxBatchSize {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the limit of %d", len(req.Requests), maxBatchSize))
		return
	}
	timeout := s.maxTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Invalid items are answered inline; only the valid ones are scheduled,
	// so one bad request does not sink the batch.
	items := make([]batchItem, len(req.Requests))
	var engReqs []engine.Request
	var engIdx []int
	for i, sr := range req.Requests {
		items[i].Index = i
		er, _, err := scheduledRequest(s, sr)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		engReqs = append(engReqs, er)
		engIdx = append(engIdx, i)
	}
	start := time.Now()
	statuses, err := s.sched.Batch(ctx, engReqs)
	if err != nil {
		writeErr(w, statusOf(err), err)
		return
	}
	for bi, st := range statuses {
		i := engIdx[bi]
		if st.Error != "" {
			items[i].Error = st.Error
			continue
		}
		res := resultOf(st.Label, st.Solution)
		items[i].solveResult = &res
	}
	writeOK(w, http.StatusOK, map[string]any{
		"count":      len(items),
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
		"results":    items,
		"metrics":    s.eng.Metrics(),
	})
}

// scheduledRequest is engineRequest plus the scheduler-only restriction:
// the sampling estimator is a /v1/solve feature, asynchronous callers
// evaluate results via /v1/evaluate instead.
func scheduledRequest(s *Server, req solveRequest) (engine.Request, int, error) {
	if req.EvalSamples > 0 {
		return engine.Request{}, http.StatusBadRequest, errors.New("eval_samples is not supported for scheduled solves; call /v1/evaluate on the result")
	}
	return s.engineRequest(req)
}

// jobStatusResponse is the wire shape of one scheduled job.
type jobStatusResponse struct {
	ID         string          `json:"id"`
	State      engine.JobState `json:"state"`
	Dataset    string          `json:"dataset,omitempty"`
	Mode       engine.Mode     `json:"mode"`
	RK         int             `json:"rk"`
	Algorithm  string          `json:"algorithm,omitempty"`
	Result     *solveResult    `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
	EnqueuedAt time.Time       `json:"enqueued_at"`
	StartedAt  time.Time       `json:"started_at,omitzero"`
	FinishedAt time.Time       `json:"finished_at,omitzero"`
	ElapsedMS  float64         `json:"elapsed_ms,omitempty"`
}

func wireStatus(st engine.JobStatus) jobStatusResponse {
	out := jobStatusResponse{
		ID:         st.ID,
		State:      st.State,
		Dataset:    st.Label,
		Mode:       st.Mode,
		RK:         st.RK,
		Algorithm:  st.Algorithm,
		Error:      st.Error,
		EnqueuedAt: st.EnqueuedAt,
		StartedAt:  st.StartedAt,
		FinishedAt: st.FinishedAt,
		ElapsedMS:  st.ElapsedMS,
	}
	if st.Solution != nil {
		res := resultOf(st.Label, st.Solution)
		out.Result = &res
	}
	return out
}

// handleJobSubmit enqueues an asynchronous solve:
//
//	POST /v1/jobs {"dataset":"cars","r":5}  ->  202 {"id":"job-000001",...}
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	er, status, err := scheduledRequest(s, req)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	st, err := s.sched.Submit(er)
	if err != nil {
		if errors.Is(err, engine.ErrQueueFull) {
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeOK(w, http.StatusAccepted, wireStatus(st))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.sched.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeOK(w, http.StatusOK, wireStatus(st))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.sched.Cancel(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeOK(w, http.StatusOK, wireStatus(st))
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	statuses := s.sched.Jobs()
	out := make([]jobStatusResponse, len(statuses))
	for i, st := range statuses {
		out[i] = wireStatus(st)
	}
	writeOK(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleMetrics reports both engine cache tiers and the scheduler state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	nds := len(s.datasets)
	s.mu.RUnlock()
	writeOK(w, http.StatusOK, map[string]any{
		"engine":    s.eng.Metrics(),
		"scheduler": s.sched.Stats(),
		"datasets":  nds,
	})
}

// evaluateRequest is the wire shape of POST /v1/evaluate: an independent
// sampled rank-regret estimate for a caller-chosen tuple set.
type evaluateRequest struct {
	Dataset   string `json:"dataset"`
	Version   uint64 `json:"version,omitempty"`
	IDs       []int  `json:"ids"`
	Space     string `json:"space,omitempty"`
	Samples   int    `json:"samples,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("ids must be non-empty"))
		return
	}
	ds, sp, timeout, status, err := s.resolve(req.Dataset, req.Space, req.TimeoutMS, req.Version)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	for _, id := range req.IDs {
		if id < 0 || id >= ds.N() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("tuple id %d out of range [0, %d)", id, ds.N()))
			return
		}
	}
	samples := req.Samples
	if samples <= 0 {
		samples = 20000
	}
	samples = clampSamples(samples)
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	space := sp
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	type outcome struct {
		est int
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		est, err := eval.RankRegretCtx(ctx, ds, req.IDs, space, samples, seed)
		done <- outcome{est, err}
	}()
	// The estimator checks ctx, so a timed-out request's goroutine stops
	// shortly after the select returns instead of burning CPU to completion.
	var o outcome
	select {
	case o = <-done:
	case <-ctx.Done():
		o.err = ctx.Err()
	}
	if o.err != nil {
		writeErr(w, statusOf(o.err), o.err)
		return
	}
	writeOK(w, http.StatusOK, map[string]any{
		"dataset":     req.Dataset,
		"rank_regret": o.est,
		"percent":     100 * float64(o.est) / float64(ds.N()),
		"samples":     samples,
	})
}
