package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/rankregret/rankregret/internal/cliutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/eval"
	"github.com/rankregret/rankregret/internal/funcspace"
)

// Server is the rrmd serving core: a named-dataset registry in front of a
// solver engine. It is safe for concurrent use; every handler may run on
// many goroutines at once.
type Server struct {
	eng        *engine.Engine
	maxTimeout time.Duration

	// MaxUploadBytes bounds the size of a POST /v1/datasets body.
	MaxUploadBytes int64

	mu       sync.RWMutex
	datasets map[string]*dataset.Dataset
}

// NewServer returns a Server with its own engine (cacheSize 0 = engine
// default) and a per-request timeout ceiling (0 = 60s).
func NewServer(cacheSize int, maxTimeout time.Duration) *Server {
	if maxTimeout <= 0 {
		maxTimeout = 60 * time.Second
	}
	return &Server{
		eng:            engine.New(cacheSize),
		maxTimeout:     maxTimeout,
		MaxUploadBytes: 64 << 20, // 64 MiB
		datasets:       make(map[string]*dataset.Dataset),
	}
}

// AddDataset registers ds under name, replacing any previous dataset with
// that name.
func (s *Server) AddDataset(name string, ds *dataset.Dataset) error {
	if name == "" {
		return errors.New("rrmd: dataset name must be non-empty")
	}
	if ds == nil || ds.N() == 0 {
		return errors.New("rrmd: dataset is empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.datasets[name] = ds
	return nil
}

func (s *Server) dataset(name string) (*dataset.Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ds, ok := s.datasets[name]
	return ds, ok
}

// Handler returns the daemon's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	return mux
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeOK(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeOK(w, http.StatusOK, map[string]any{"ok": true, "cache": s.eng.CacheStats()})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeOK(w, http.StatusOK, map[string]any{"algorithms": engine.Algorithms()})
}

// datasetInfo is the wire shape of one registry entry.
type datasetInfo struct {
	Name        string   `json:"name"`
	N           int      `json:"n"`
	D           int      `json:"d"`
	Attrs       []string `json:"attrs"`
	Fingerprint string   `json:"fingerprint"`
}

func info(name string, ds *dataset.Dataset) datasetInfo {
	return datasetInfo{
		Name:        name,
		N:           ds.N(),
		D:           ds.Dim(),
		Attrs:       ds.Attrs(),
		Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
	}
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]datasetInfo, 0, len(names))
	for _, name := range names {
		out = append(out, info(name, s.datasets[name]))
	}
	s.mu.RUnlock()
	writeOK(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.dataset(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	writeOK(w, http.StatusOK, info(name, ds))
}

// handleUploadDataset registers a CSV posted as the request body:
//
//	POST /v1/datasets?name=cars&header=1&negate=0,2&normalize=1
func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing name query parameter"))
		return
	}
	neg, err := cliutil.ParseNegate(q.Get("negate"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	header := q.Get("header") == "1" || q.Get("header") == "true"
	normalize := true
	if v := q.Get("normalize"); v == "0" || v == "false" {
		normalize = false
	}
	ds, err := cliutil.LoadCSV(http.MaxBytesReader(w, r.Body, s.MaxUploadBytes), header, neg, normalize)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.AddDataset(name, ds); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeOK(w, http.StatusCreated, info(name, ds))
}

// solveRequest is the wire shape of POST /v1/solve. Exactly one of R
// (primal RRM: at most r tuples, minimum rank-regret) and K (dual RRR:
// minimum tuples, rank-regret at most k) must be positive.
type solveRequest struct {
	Dataset     string  `json:"dataset"`
	R           int     `json:"r,omitempty"`
	K           int     `json:"k,omitempty"`
	Algorithm   string  `json:"algorithm,omitempty"`
	Space       string  `json:"space,omitempty"`
	Gamma       int     `json:"gamma,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	Samples     int     `json:"samples,omitempty"`
	MaxSamples  int     `json:"max_samples,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	EvalSamples int     `json:"eval_samples,omitempty"`
	TimeoutMS   int64   `json:"timeout_ms,omitempty"`
}

// solveResponse is the wire shape of a successful solve.
type solveResponse struct {
	Dataset    string            `json:"dataset"`
	Algorithm  string            `json:"algorithm"`
	IDs        []int             `json:"ids"`
	RankRegret int               `json:"rank_regret"`
	Exact      bool              `json:"exact"`
	Estimated  *int              `json:"estimated_rank_regret,omitempty"`
	Percent    *float64          `json:"estimated_percent,omitempty"`
	ElapsedMS  float64           `json:"elapsed_ms"`
	Cache      engine.CacheStats `json:"cache"`
}

// reqSetup resolves the pieces a solve/evaluate request shares: the
// dataset, the parsed space, and the bounded request context.
func (s *Server) reqSetup(r *http.Request, name, spec string, timeoutMS int64) (*dataset.Dataset, funcspace.Space, context.Context, context.CancelFunc, int, error) {
	ds, ok := s.dataset(name)
	if !ok {
		return nil, nil, nil, nil, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name)
	}
	var sp funcspace.Space
	if spec != "" {
		var err error
		sp, err = cliutil.ParseSpace(spec, ds.Dim())
		if err != nil {
			return nil, nil, nil, nil, http.StatusBadRequest, err
		}
	}
	timeout := s.maxTimeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ds, sp, ctx, cancel, 0, nil
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if (req.R > 0) == (req.K > 0) {
		writeErr(w, http.StatusBadRequest, errors.New("exactly one of r and k must be positive"))
		return
	}
	ds, sp, ctx, cancel, status, err := s.reqSetup(r, req.Dataset, req.Space, req.TimeoutMS)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	defer cancel()
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	opts := engine.Options{
		Space:      sp,
		SpaceKey:   req.Space,
		CacheSalt:  req.Dataset,
		Gamma:      req.Gamma,
		Delta:      req.Delta,
		Samples:    req.Samples,
		MaxSamples: req.MaxSamples,
		Seed:       seed,
	}
	start := time.Now()
	type outcome struct {
		sol *engine.Solution
		est *int
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		if req.R > 0 {
			o.sol, o.err = s.eng.Solve(ctx, ds, req.R, req.Algorithm, opts)
		} else {
			o.sol, o.err = s.eng.SolveRRR(ctx, ds, req.K, req.Algorithm, opts)
		}
		if o.err == nil && req.EvalSamples > 0 {
			space := sp
			if space == nil {
				space = funcspace.NewFull(ds.Dim())
			}
			est, err := eval.RankRegretCtx(ctx, ds, o.sol.IDs, space, clampSamples(req.EvalSamples), seed+7)
			if err != nil {
				o.err = err
			} else {
				o.est = &est
			}
		}
		done <- o
	}()
	// Context-aware solvers abort from inside their hot loops; the select
	// additionally bounds the client's wait for solvers (and the sampling
	// estimator) that do not check ctx — the goroutine then finishes in the
	// background and is dropped.
	var o outcome
	select {
	case o = <-done:
	case <-ctx.Done():
		o.err = ctx.Err()
	}
	if o.err != nil {
		writeErr(w, statusOf(o.err), o.err)
		return
	}
	resp := solveResponse{
		Dataset:    req.Dataset,
		Algorithm:  o.sol.Algorithm,
		IDs:        o.sol.IDs,
		RankRegret: o.sol.RankRegret,
		Exact:      o.sol.Exact,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		Cache:      s.eng.CacheStats(),
	}
	if o.est != nil {
		pct := 100 * float64(*o.est) / float64(ds.N())
		resp.Estimated = o.est
		resp.Percent = &pct
	}
	writeOK(w, http.StatusOK, resp)
}

// maxEvalSamples caps client-supplied sampling budgets so a single request
// cannot pin a CPU for hours.
const maxEvalSamples = 1_000_000

func clampSamples(n int) int {
	if n > maxEvalSamples {
		return maxEvalSamples
	}
	return n
}

// evaluateRequest is the wire shape of POST /v1/evaluate: an independent
// sampled rank-regret estimate for a caller-chosen tuple set.
type evaluateRequest struct {
	Dataset   string `json:"dataset"`
	IDs       []int  `json:"ids"`
	Space     string `json:"space,omitempty"`
	Samples   int    `json:"samples,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("ids must be non-empty"))
		return
	}
	ds, sp, ctx, cancel, status, err := s.reqSetup(r, req.Dataset, req.Space, req.TimeoutMS)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	defer cancel()
	for _, id := range req.IDs {
		if id < 0 || id >= ds.N() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("tuple id %d out of range [0, %d)", id, ds.N()))
			return
		}
	}
	samples := req.Samples
	if samples <= 0 {
		samples = 20000
	}
	samples = clampSamples(samples)
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	space := sp
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	type outcome struct {
		est int
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		est, err := eval.RankRegretCtx(ctx, ds, req.IDs, space, samples, seed)
		done <- outcome{est, err}
	}()
	// The estimator checks ctx, so a timed-out request's goroutine stops
	// shortly after the select returns instead of burning CPU to completion.
	var o outcome
	select {
	case o = <-done:
	case <-ctx.Done():
		o.err = ctx.Err()
	}
	if o.err != nil {
		writeErr(w, statusOf(o.err), o.err)
		return
	}
	writeOK(w, http.StatusOK, map[string]any{
		"dataset":     req.Dataset,
		"rank_regret": o.est,
		"percent":     100 * float64(o.est) / float64(ds.N()),
		"samples":     samples,
	})
}
