package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/rankregret/rankregret/internal/cliutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/eval"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/obs"
	"github.com/rankregret/rankregret/internal/obs/slo"
	"github.com/rankregret/rankregret/internal/store"
)

// DefaultRetainVersions is how many dataset versions (including the current
// one) the registry keeps solvable by default. Older versions age out;
// in-flight solves pinned to an aged-out version still finish — they hold
// the snapshot — but new requests for it are rejected.
const DefaultRetainVersions = store.DefaultRetain

// Server is the rrmd serving core: a durable named-dataset registry (with
// retained version history and a mutation API, backed by internal/store's
// WAL + snapshots when a data directory is configured) in front of a solver
// engine and its job scheduler. It is safe for concurrent use; every
// handler may run on many goroutines at once.
type Server struct {
	eng        *engine.Engine
	sched      *engine.Scheduler
	store      *store.Store
	maxTimeout time.Duration

	// MaxUploadBytes bounds the size of a POST /v1/datasets body.
	MaxUploadBytes int64

	// SolveParallelism is the default worker-goroutine bound for the
	// HDRRM top-K scoring passes of each solve (0 = GOMAXPROCS); requests
	// override it with the "parallelism" field, where an explicit 0 asks
	// for GOMAXPROCS. Results are bit-identical at every setting — the
	// knob keeps one cold solve from monopolizing every core of a busy
	// daemon.
	SolveParallelism int

	// RetainVersions caps each dataset's retained version history
	// (DefaultRetainVersions when 0 or negative at first use). Keep it
	// equal to the store's replay retain, or recovery will rebuild a
	// differently-sized window.
	RetainVersions int

	// QueueWait is the queue-wait budget for synchronous solves: how long a
	// POST /v1/solve may sit in the scheduler queue before it is rejected
	// with 429 (0 = the server's timeout ceiling). The requested timeout_ms
	// is the run budget and is anchored at dequeue, so a solve that waited
	// in a saturated queue still gets its full budget once it starts.
	QueueWait time.Duration

	// RetryAfterSeconds is the Retry-After hint sent with 429 (overload)
	// and 503 (draining) rejections (0 = 1 second).
	RetryAfterSeconds int

	// TraceSlow, when positive, logs the per-stage span breakdown of every
	// request slower than it (the -trace-slow flag). Tracing itself is
	// always on; this only controls logging.
	TraceSlow time.Duration

	// obs is the server's one metrics registry: GET /metrics renders it as
	// Prometheus text, GET /v1/metrics serializes the same underlying
	// snapshots as JSON. traces retains recent request traces for
	// GET /v1/trace/{id}; solveDur/mutateDur/scrapeDur are the end-to-end
	// latency histograms the SLO engine evaluates.
	obs       *obs.Registry
	traces    *obs.TraceRing
	solveDur  *obs.Histogram
	mutateDur *obs.Histogram
	scrapeDur *obs.Histogram

	// logger is the daemon's structured logger; every request-path record
	// carries the request id. logRing, recorder, and sloEng are the flight
	// recorder surface, wired by SetupObs before the server serves traffic
	// (nil = disabled).
	logger   *slog.Logger
	logRing  *obs.LogRing
	recorder *obs.Recorder
	sloEng   *slo.Engine

	// warm tracks the background warm-start per dataset name; warmCtx is
	// cancelled by Close/Shutdown so an abandoned warm stops mid-solve.
	warmMu     sync.Mutex
	warm       map[string]string
	warmCtx    context.Context
	warmCancel context.CancelFunc
}

// NewServer returns a Server with an ephemeral (memory-only) registry. See
// NewServerWith for the durable variant; all other parameters are as there.
func NewServer(cacheSize int, maxTimeout time.Duration, workers, queueCap int) *Server {
	st, err := store.Open(store.Options{})
	if err != nil {
		// An ephemeral open touches no I/O; it cannot fail.
		panic(err)
	}
	return NewServerWith(st, cacheSize, maxTimeout, workers, queueCap)
}

// NewServerWith returns a Server over an opened store — the registry every
// dataset read and mutation goes through — with its own engine (cacheSize
// 0 = engine default), a per-request timeout ceiling (0 = 60s), and a job
// scheduler with the given worker count (0 = GOMAXPROCS) and queue capacity
// (0 = 256). Call Close (or Shutdown) when done with the server; both close
// the store.
func NewServerWith(st *store.Store, cacheSize int, maxTimeout time.Duration, workers, queueCap int) *Server {
	if maxTimeout <= 0 {
		maxTimeout = 60 * time.Second
	}
	eng := engine.New(cacheSize)
	warmCtx, warmCancel := context.WithCancel(context.Background())
	s := &Server{
		eng:            eng,
		sched:          engine.NewScheduler(eng, workers, queueCap),
		store:          st,
		maxTimeout:     maxTimeout,
		MaxUploadBytes: 64 << 20, // 64 MiB
		RetainVersions: DefaultRetainVersions,
		warm:           make(map[string]string),
		warmCtx:        warmCtx,
		warmCancel:     warmCancel,
		logger:         slog.Default(),
	}
	s.sched.SetLogger(s.logger)
	s.instrument()
	return s
}

// SetPolicy swaps the scheduler's queue-ordering policy: engine.FIFO (the
// default) or engine.Affinity, which runs warm-cache jobs first under
// pressure. Safe to call while serving.
func (s *Server) SetPolicy(p engine.Policy) {
	s.sched.SetPolicy(p)
}

func (s *Server) queueWait() time.Duration {
	if s.QueueWait > 0 {
		return s.QueueWait
	}
	return s.maxTimeout
}

func (s *Server) retryAfter() int {
	if s.RetryAfterSeconds > 0 {
		return s.RetryAfterSeconds
	}
	return 1
}

// Close stops the warm-start, the job scheduler (cancelling running jobs
// and failing queued ones), and the store. For the graceful variant that
// finishes in-flight work first, use Shutdown.
func (s *Server) Close() {
	s.warmCancel()
	s.sched.Close()
	if err := s.store.Close(); err != nil {
		s.logger.Error("rrmd: closing store failed", "err", err)
	}
}

// Shutdown drains the server gracefully: no new jobs are accepted, queued
// and running jobs finish (until ctx expires, after which they are
// cancelled), the WAL is flushed, and a final snapshot is written so the
// next start recovers replay-free. HTTP listener shutdown is the caller's
// concern (do it first, so no new requests arrive mid-drain).
func (s *Server) Shutdown(ctx context.Context) error {
	s.warmCancel()
	err := s.sched.Drain(ctx)
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// AddDataset registers ds under name, replacing any previous dataset (and
// its whole version history) with that name.
func (s *Server) AddDataset(name string, ds *dataset.Dataset) error {
	return s.addDataset(context.Background(), name, ds)
}

func (s *Server) addDataset(ctx context.Context, name string, ds *dataset.Dataset) error {
	if name == "" {
		return errors.New("rrmd: dataset name must be non-empty")
	}
	if ds == nil || ds.N() == 0 {
		return errors.New("rrmd: dataset is empty")
	}
	if ds.Version() == 0 {
		// Derived datasets (Clone, Subset, Head, Project) arrive at version
		// 0, which is the wire sentinel for "current" and would make the
		// retained entry unpinnable. Re-materialize so every version number
		// the registry ever lists is non-zero; content and fingerprint are
		// unchanged.
		fresh := dataset.New(ds.Dim())
		if err := fresh.SetAttrs(ds.Attrs()); err != nil {
			return err
		}
		for i := 0; i < ds.N(); i++ {
			fresh.Append(ds.Row(i))
		}
		ds = fresh
	}
	return s.store.RegisterCtx(ctx, name, ds, s.retain())
}

func (s *Server) entry(name string) (*store.Versions, bool) {
	return s.store.Get(name)
}

func (s *Server) dataset(name string) (*dataset.Dataset, bool) {
	nd, ok := s.entry(name)
	if !ok {
		return nil, false
	}
	return nd.Current(), true
}

func (s *Server) retain() int {
	if s.RetainVersions < 1 {
		return DefaultRetainVersions
	}
	return s.RetainVersions
}

// WarmStart primes the engine's cache tiers for the given datasets (every
// registered one when names is nil), sequentially, honoring the server's
// warm context: after a restart the caches are empty, so warming each
// recovered dataset in the background pays the cold-solve cliff proactively
// and the first client solve hits the VecSet reuse path. It blocks; run it
// in a goroutine for background warming. Per-dataset progress is surfaced
// in GET /v1/store/status.
func (s *Server) WarmStart(names []string) {
	if names == nil {
		names = s.store.Names()
	}
	for _, name := range names {
		s.setWarm(name, "pending")
	}
	for _, name := range names {
		if s.warmCtx.Err() != nil {
			s.setWarm(name, "cancelled")
			continue
		}
		nd, ok := s.entry(name)
		if !ok {
			s.setWarm(name, "dropped")
			continue
		}
		s.setWarm(name, "warming")
		start := time.Now()
		// Defaults mirror engineRequest: same salt, seed, and parallelism,
		// so the warmed entries are the ones default client solves look up.
		err := s.eng.Warm(s.warmCtx, nd.Current(), 0, engine.Options{
			CacheSalt:   name,
			Seed:        1,
			Parallelism: s.SolveParallelism,
		})
		switch {
		case err == nil:
			// Two decimals so a sub-millisecond warm (a tiny or
			// already-cached dataset) reads "warm (0.42ms)", not "warm (0ms)".
			s.setWarm(name, fmt.Sprintf("warm (%.2fms)", float64(time.Since(start).Microseconds())/1000))
		case s.warmCtx.Err() != nil:
			s.setWarm(name, "cancelled")
		default:
			s.setWarm(name, "failed: "+err.Error())
		}
	}
}

func (s *Server) setWarm(name, state string) {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	s.warm[name] = state
}

func (s *Server) warmStatus() map[string]string {
	s.warmMu.Lock()
	defer s.warmMu.Unlock()
	out := make(map[string]string, len(s.warm))
	for k, v := range s.warm {
		out[k] = v
	}
	return out
}

// Handler returns the daemon's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("POST /v1/datasets", s.handleUploadDataset)
	mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDropDataset)
	mux.HandleFunc("POST /v1/datasets/{name}/rows", s.handleAppendRows)
	mux.HandleFunc("DELETE /v1/datasets/{name}/rows", s.handleDeleteRows)
	mux.HandleFunc("GET /v1/datasets/{name}/versions", s.handleVersions)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/solve/batch", s.handleSolveBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobsList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics", s.handlePrometheus)
	mux.HandleFunc("GET /v1/slo", s.handleSLO)
	mux.HandleFunc("GET /v1/incidents", s.handleIncidents)
	mux.HandleFunc("GET /v1/incidents/{id}", s.handleIncident)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/store/status", s.handleStoreStatus)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	return s.withObs(mux)
}

// storeErrStatus maps store mutation failures to HTTP statuses: a degraded
// store, a wedged WAL, or a closed store is a server-side durability fault
// (503, so clients retry elsewhere and alerting keyed on 5xx fires), not a
// bad request.
func storeErrStatus(err error) int {
	switch {
	case errors.Is(err, store.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, store.ErrDegraded), errors.Is(err, store.ErrWALFailed), errors.Is(err, store.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// writeStoreErr answers a failed store mutation. Durability faults come back
// as 503 with a Retry-After hint and a machine-readable reason ("degraded"
// while the self-healing loop works the fault), so load generators and
// proxies can distinguish a degraded store from a draining scheduler without
// parsing prose.
func (s *Server) writeStoreErr(w http.ResponseWriter, err error) {
	status := storeErrStatus(err)
	if status != http.StatusServiceUnavailable {
		writeErr(w, status, err)
		return
	}
	// The mutation that trips the fault surfaces ErrWALFailed directly;
	// every later one gets ErrDegraded. Both are the same condition to a
	// client: the store is degraded and healing.
	reason := "store_unavailable"
	if errors.Is(err, store.ErrDegraded) || errors.Is(err, store.ErrWALFailed) {
		reason = "degraded"
	}
	s.hintRetry(w)
	writeErrReason(w, status, err, reason)
}

// hintRetry sets the Retry-After header every overload/unavailable rejection
// carries — the one place the hint is computed, so the 429 and the three
// flavors of 503 cannot drift apart.
func (s *Server) hintRetry(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
}

func writeErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeErrReason is writeErr plus a machine-readable reason field, used by
// the rejection paths (degraded store, draining scheduler) whose 503s load
// clients need to tell apart.
func writeErrReason(w http.ResponseWriter, status int, err error, reason string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "reason": reason})
}

func writeOK(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// handleHealth is the liveness/readiness probe. A healthy server answers
// 200; a degraded store or a draining scheduler answers 503 with a
// machine-readable state and reason, so orchestrators stop routing new
// traffic while reads keep being served on the open connections.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// One metrics snapshot serves the whole probe: the state decision, the
	// cache digest, and the metrics body all read it, so the probe never
	// reports a state that disagrees with the stats beside it (and the
	// scheduler/store locks are taken once, not twice).
	m := s.metrics()
	state, reason := "healthy", ""
	switch {
	case m.Store.State != store.HealthHealthy:
		state, reason = string(m.Store.State), m.Store.Reason
	case m.Scheduler.Draining:
		state, reason = "draining", "scheduler draining for shutdown"
	}
	body := map[string]any{
		"ok":      state == "healthy",
		"state":   state,
		"cache":   m.Engine.Solutions,
		"metrics": m,
	}
	if reason != "" {
		body["reason"] = reason
	}
	if s.sloEng != nil {
		// The probe's SLO section is the same Eval the /v1/slo endpoint and
		// the Prometheus gauges come from, so the three views cannot drift.
		statuses := s.sloEng.Eval()
		sloOK := true
		summary := make([]map[string]any, 0, len(statuses))
		for _, st := range statuses {
			if st.FastBurnAlarm {
				sloOK = false
			}
			summary = append(summary, map[string]any{
				"name":            st.Name,
				"compliance":      st.Compliance,
				"burn_rate_fast":  st.BurnRateFast,
				"fast_burn_alarm": st.FastBurnAlarm,
			})
		}
		body["slo"] = map[string]any{"ok": sloOK, "objectives": summary}
	}
	status := http.StatusOK
	if state != "healthy" {
		status = http.StatusServiceUnavailable
		s.hintRetry(w)
	}
	writeOK(w, status, body)
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeOK(w, http.StatusOK, map[string]any{"algorithms": engine.Algorithms()})
}

// datasetInfo is the wire shape of one registry entry (one version of it).
type datasetInfo struct {
	Name        string   `json:"name"`
	N           int      `json:"n"`
	D           int      `json:"d"`
	Attrs       []string `json:"attrs"`
	Fingerprint string   `json:"fingerprint"`
	Version     uint64   `json:"version"`
}

func info(name string, ds *dataset.Dataset) datasetInfo {
	return datasetInfo{
		Name:        name,
		N:           ds.N(),
		D:           ds.Dim(),
		Attrs:       ds.Attrs(),
		Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
		Version:     ds.Version(),
	}
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	names := s.store.Names()
	out := make([]datasetInfo, 0, len(names))
	for _, name := range names {
		if nd, ok := s.store.Get(name); ok {
			out = append(out, info(name, nd.Current()))
		}
	}
	writeOK(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.dataset(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	writeOK(w, http.StatusOK, info(name, ds))
}

// handleUploadDataset registers a CSV posted as the request body:
//
//	POST /v1/datasets?name=cars&header=1&negate=0,2&normalize=1
func (s *Server) handleUploadDataset(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing name query parameter"))
		return
	}
	neg, err := cliutil.ParseNegate(q.Get("negate"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	header := q.Get("header") == "1" || q.Get("header") == "true"
	normalize := true
	if v := q.Get("normalize"); v == "0" || v == "false" {
		normalize = false
	}
	ds, err := cliutil.LoadCSV(http.MaxBytesReader(w, r.Body, s.MaxUploadBytes), header, neg, normalize)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	obs.TraceFrom(r.Context()).Annotate("dataset", name)
	start := time.Now()
	if err := s.addDataset(r.Context(), name, ds); err != nil {
		s.writeStoreErr(w, err)
		return
	}
	s.mutateDur.ObserveSince(start)
	writeOK(w, http.StatusCreated, info(name, ds))
}

// mutateResponse is the wire shape of a successful mutation: the new current
// version's info plus what the mutation did.
type mutateResponse struct {
	datasetInfo
	Appended int `json:"appended,omitempty"`
	Deleted  int `json:"deleted,omitempty"`
}

// handleAppendRows appends rows to a dataset, publishing a new version:
//
//	POST /v1/datasets/{name}/rows {"rows": [[0.1, 0.9], [0.4, 0.4]]}
//
// Rows are taken as-is (no re-normalization — a rewrite would invalidate
// every cached artifact), so callers of normalized datasets must supply
// values in the normalized units. Solves already in flight keep the version
// they started with; new solves see the appended rows.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	nd, ok := s.entry(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	var req struct {
		Rows [][]float64 `json:"rows"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxUploadBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Rows) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("rows must be non-empty"))
		return
	}
	// Validate before mutate: a snapshot copies the whole value matrix
	// under the store lock, and malformed requests must not pay (or make
	// everyone else wait on) that. Dimension is immutable across versions,
	// so checking against the current one is exact. Finiteness needs no
	// check: encoding/json cannot decode NaN/Inf (or out-of-range numbers)
	// into a float64.
	dim := nd.Current().Dim()
	for i, row := range req.Rows {
		if len(row) != dim {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("row %d has %d attributes, want %d", i, len(row), dim))
			return
		}
	}
	// The append hits the WAL (per the fsync policy) before the new version
	// becomes visible; an error means nothing was published.
	obs.TraceFrom(r.Context()).Annotate("dataset", name)
	start := time.Now()
	next, err := s.store.AppendRowsCtx(r.Context(), name, req.Rows, s.retain())
	if err != nil {
		s.writeStoreErr(w, err)
		return
	}
	s.mutateDur.ObserveSince(start)
	writeOK(w, http.StatusOK, mutateResponse{datasetInfo: info(name, next), Appended: len(req.Rows)})
}

// handleDeleteRows removes rows by id from a dataset, publishing a new
// version:
//
//	DELETE /v1/datasets/{name}/rows {"ids": [3, 17]}
//
// Ids refer to the current version's indexing; rows above a deleted id shift
// down, exactly as Dataset.Delete documents. Deleting every row is rejected
// (the registry never serves an empty dataset).
func (s *Server) handleDeleteRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	nd, ok := s.entry(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	var req struct {
		IDs []int `json:"ids"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxUploadBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("ids must be non-empty"))
		return
	}
	// Cheap pre-check before the snapshot-copying mutate; the store
	// re-validates against the authoritative row count inside its lock.
	before := nd.Current().N()
	for _, id := range req.IDs {
		if id < 0 || id >= before {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("delete index %d out of range [0, %d)", id, before))
			return
		}
	}
	obs.TraceFrom(r.Context()).Annotate("dataset", name)
	start := time.Now()
	next, err := s.store.DeleteRowsCtx(r.Context(), name, req.IDs, s.retain())
	if err != nil {
		s.writeStoreErr(w, err)
		return
	}
	s.mutateDur.ObserveSince(start)
	// The deleted count is the number of unique ids: exact even if another
	// mutation raced in between the pre-check and the store call.
	uniq := make(map[int]struct{}, len(req.IDs))
	for _, id := range req.IDs {
		uniq[id] = struct{}{}
	}
	writeOK(w, http.StatusOK, mutateResponse{datasetInfo: info(name, next), Deleted: len(uniq)})
}

// versionInfo is one entry of GET /v1/datasets/{name}/versions.
type versionInfo struct {
	Version     uint64 `json:"version"`
	N           int    `json:"n"`
	Fingerprint string `json:"fingerprint"`
	Current     bool   `json:"current"`
}

// handleVersions lists the retained (solvable) versions, oldest first.
// Solves pin to one with the request's "version" field.
func (s *Server) handleVersions(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	nd, ok := s.entry(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	versions := nd.List()
	out := make([]versionInfo, len(versions))
	for i, ds := range versions {
		out[i] = versionInfo{
			Version:     ds.Version(),
			N:           ds.N(),
			Fingerprint: fmt.Sprintf("%016x", ds.Fingerprint()),
			Current:     i == len(versions)-1,
		}
	}
	writeOK(w, http.StatusOK, map[string]any{
		"dataset":  name,
		"retain":   s.retain(),
		"versions": out,
	})
}

// solveRequest is the wire shape of POST /v1/solve. Exactly one of R
// (primal RRM: at most r tuples, minimum rank-regret) and K (dual RRR:
// minimum tuples, rank-regret at most k) must be positive.
type solveRequest struct {
	Dataset string `json:"dataset"`
	// Version pins the solve to a retained dataset version (0 = current).
	// In-flight solves always keep the version they started with; the pin
	// lets sweeps and retries stay on one version across mutations.
	Version    uint64  `json:"version,omitempty"`
	R          int     `json:"r,omitempty"`
	K          int     `json:"k,omitempty"`
	Algorithm  string  `json:"algorithm,omitempty"`
	Space      string  `json:"space,omitempty"`
	Gamma      int     `json:"gamma,omitempty"`
	Delta      float64 `json:"delta,omitempty"`
	Samples    int     `json:"samples,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	// Parallelism overrides the server's -solve-parallelism default when
	// present; an explicit 0 (or negative) asks for GOMAXPROCS. A pointer
	// distinguishes "absent" from that explicit 0.
	Parallelism *int  `json:"parallelism,omitempty"`
	EvalSamples int   `json:"eval_samples,omitempty"`
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
}

// solveResult is the stable core of every solve answer. The same shape is
// embedded in /v1/solve responses, /v1/solve/batch items, and finished
// /v1/jobs statuses, so results from the three paths are directly
// comparable.
type solveResult struct {
	Dataset    string `json:"dataset"`
	Algorithm  string `json:"algorithm"`
	IDs        []int  `json:"ids"`
	RankRegret int    `json:"rank_regret"`
	Exact      bool   `json:"exact"`
}

func resultOf(name string, sol *engine.Solution) solveResult {
	return solveResult{
		Dataset:    name,
		Algorithm:  sol.Algorithm,
		IDs:        sol.IDs,
		RankRegret: sol.RankRegret,
		Exact:      sol.Exact,
	}
}

// solveResponse is the wire shape of a successful solve.
type solveResponse struct {
	solveResult
	Estimated *int              `json:"estimated_rank_regret,omitempty"`
	Percent   *float64          `json:"estimated_percent,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Cache     engine.CacheStats `json:"cache"`
}

// resolve looks up the dataset (pinned to a retained version when version
// is non-zero), parses the space spec, and clamps the requested timeout to
// the server ceiling — the validation every dataset-touching endpoint
// shares. The returned int is the HTTP status to use when err is non-nil.
func (s *Server) resolve(name, spec string, timeoutMS int64, version uint64) (*dataset.Dataset, funcspace.Space, time.Duration, int, error) {
	nd, ok := s.entry(name)
	if !ok {
		return nil, nil, 0, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name)
	}
	ds, ok := nd.At(version)
	if !ok {
		return nil, nil, 0, http.StatusGone, fmt.Errorf("version %d of dataset %q is not retained (see GET /v1/datasets/%s/versions)", version, name, name)
	}
	var sp funcspace.Space
	if spec != "" {
		var err error
		sp, err = cliutil.ParseSpace(spec, ds.Dim())
		if err != nil {
			return nil, nil, 0, http.StatusBadRequest, err
		}
	}
	timeout := s.maxTimeout
	if timeoutMS > 0 {
		if d := time.Duration(timeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	return ds, sp, timeout, 0, nil
}

func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusUnprocessableEntity
	}
}

// writeOverload maps scheduler admission failures to the unified overload
// statuses — 429 when the queue is full or the queue-wait budget expired,
// 503 when the scheduler is draining for shutdown — with a Retry-After hint,
// and reports whether it recognized (and answered) the error. Every
// endpoint that touches the scheduler routes rejections through here so the
// statuses cannot drift apart again.
func (s *Server) writeOverload(w http.ResponseWriter, err error) bool {
	var status int
	reason := "queue"
	switch {
	case errors.Is(err, engine.ErrQueueFull), errors.Is(err, engine.ErrQueueTimeout):
		status = http.StatusTooManyRequests
	case errors.Is(err, engine.ErrSchedulerClosed):
		status = http.StatusServiceUnavailable
		reason = "draining"
	default:
		return false
	}
	s.hintRetry(w)
	writeErrReason(w, status, err, reason)
	return true
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	er, status, err := s.engineRequest(req)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	obs.TraceFrom(r.Context()).Annotate("dataset", req.Dataset)
	start := time.Now()
	// Warm hits are answered inline: a cached solution costs microseconds,
	// so it never waits for (or gets shed by) scheduler admission. Everything
	// else goes through the scheduler — the one bounded worker pool — so
	// synchronous solves obey the same admission control, queue policy, and
	// overload semantics as batch and async jobs. The run budget (timeout_ms)
	// is anchored at dequeue inside the scheduler; the queue wait has its own
	// budget, so a solve that sat in a saturated queue is either rejected
	// promptly (429) or runs with its full budget intact.
	sol, ok := s.eng.SolveCached(r.Context(), er)
	if !ok {
		er.QueueTimeout = s.queueWait()
		ctx, cancel := context.WithTimeout(r.Context(), er.QueueTimeout+er.Timeout)
		defer cancel()
		sol, err = s.sched.Do(ctx, er)
		if err != nil {
			if !s.writeOverload(w, err) {
				writeErr(w, statusOf(err), err)
			}
			return
		}
	}
	s.solveDur.ObserveSince(start)
	var est *int
	if req.EvalSamples > 0 {
		// The estimator checks ctx, and gets the same budget the solve had.
		ectx, cancel := context.WithTimeout(r.Context(), er.Timeout)
		e, err := eval.RankRegretCtx(ectx, er.Dataset, sol.IDs, evalSpace(er), clampSamples(req.EvalSamples), er.Opts.Seed+7)
		cancel()
		if err != nil {
			writeErr(w, statusOf(err), err)
			return
		}
		est = &e
	}
	resp := solveResponse{
		solveResult: resultOf(req.Dataset, sol),
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		Cache:       s.eng.CacheStats(),
	}
	if est != nil {
		pct := 100 * float64(*est) / float64(er.Dataset.N())
		resp.Estimated = est
		resp.Percent = &pct
	}
	writeOK(w, http.StatusOK, resp)
}

// evalSpace is the utility space the sampling estimator evaluates in: the
// request's restricted space, or the full orthant.
func evalSpace(er engine.Request) funcspace.Space {
	if er.Opts.Space != nil {
		return er.Opts.Space
	}
	return funcspace.NewFull(er.Dataset.Dim())
}

// maxEvalSamples caps client-supplied sampling budgets so a single request
// cannot pin a CPU for hours.
const maxEvalSamples = 1_000_000

func clampSamples(n int) int {
	if n > maxEvalSamples {
		return maxEvalSamples
	}
	return n
}

// engineRequest validates a wire solveRequest and converts it into an
// engine request: the single conversion point shared by /v1/solve, the
// batch endpoint, and the jobs endpoint, so the three paths cannot drift.
// The returned int is the HTTP status to use when err is non-nil.
func (s *Server) engineRequest(req solveRequest) (engine.Request, int, error) {
	if (req.R > 0) == (req.K > 0) {
		return engine.Request{}, http.StatusBadRequest, errors.New("exactly one of r and k must be positive")
	}
	ds, sp, timeout, status, err := s.resolve(req.Dataset, req.Space, req.TimeoutMS, req.Version)
	if err != nil {
		return engine.Request{}, status, err
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	par := s.SolveParallelism
	if req.Parallelism != nil {
		if par = *req.Parallelism; par < 0 {
			par = 0
		}
	}
	er := engine.Request{
		Dataset:   ds,
		Label:     req.Dataset,
		Mode:      engine.ModeRRM,
		RK:        req.R,
		Algorithm: req.Algorithm,
		Timeout:   timeout,
		Opts: engine.Options{
			Space:       sp,
			SpaceKey:    req.Space,
			CacheSalt:   req.Dataset,
			Gamma:       req.Gamma,
			Delta:       req.Delta,
			Samples:     req.Samples,
			MaxSamples:  req.MaxSamples,
			Seed:        seed,
			Parallelism: par,
		},
	}
	if req.K > 0 {
		er.Mode = engine.ModeRRR
		er.RK = req.K
	}
	return er, 0, nil
}

// batchRequest is the wire shape of POST /v1/solve/batch: a list of solve
// requests fanned out over the scheduler's worker pool. TimeoutMS bounds
// the whole batch (capped by the server ceiling); per-item timeout_ms
// bounds individual solves once they start.
type batchRequest struct {
	Requests  []solveRequest `json:"requests"`
	TimeoutMS int64          `json:"timeout_ms,omitempty"`
}

// batchItem is one answer of a batch response, in request order. Exactly
// one of the embedded result and Error is present; Rejected marks items the
// scheduler never admitted (overload or drain), which are safe to retry
// as-is after the response's Retry-After hint.
type batchItem struct {
	Index int `json:"index"`
	*solveResult
	Error    string `json:"error,omitempty"`
	Rejected bool   `json:"rejected,omitempty"`
}

// maxBatchSize bounds how many solves one batch request may carry.
const maxBatchSize = 256

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.Requests) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("requests must be non-empty"))
		return
	}
	if len(req.Requests) > maxBatchSize {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the limit of %d", len(req.Requests), maxBatchSize))
		return
	}
	timeout := s.maxTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Invalid items are answered inline; only the valid ones are scheduled,
	// so one bad request does not sink the batch.
	items := make([]batchItem, len(req.Requests))
	var engReqs []engine.Request
	var engIdx []int
	for i, sr := range req.Requests {
		items[i].Index = i
		er, _, err := scheduledRequest(s, sr)
		if err != nil {
			items[i].Error = err.Error()
			continue
		}
		engReqs = append(engReqs, er)
		engIdx = append(engIdx, i)
	}
	start := time.Now()
	// BatchPartial never fails wholesale: items the scheduler could not
	// admit before the batch budget ran out (or because it is draining)
	// come back rejected, items cancelled mid-flight report their error,
	// and everything that finished keeps its result.
	statuses := s.sched.BatchPartial(ctx, engReqs)
	accepted, rejected, draining := 0, 0, 0
	for bi, st := range statuses {
		i := engIdx[bi]
		switch {
		case st.State == engine.JobRejected:
			items[i].Rejected = true
			items[i].Error = st.Error
			rejected++
			if st.Error == engine.ErrSchedulerClosed.Error() {
				draining++
			}
		case st.Error != "":
			items[i].Error = st.Error
			accepted++
		default:
			res := resultOf(st.Label, st.Solution)
			items[i].solveResult = &res
			accepted++
		}
	}
	// A batch the draining scheduler rejected in full is a server-level
	// condition, not a per-item one: answer 503 so clients retry elsewhere.
	if draining > 0 && draining == len(statuses) {
		s.writeOverload(w, engine.ErrSchedulerClosed)
		return
	}
	if rejected > 0 {
		// Partial rejection still hints backoff: some items were shed, so
		// the client's re-submit of them should wait like a full 429 would.
		s.hintRetry(w)
	}
	writeOK(w, http.StatusOK, map[string]any{
		"count":      len(items),
		"accepted":   accepted,
		"rejected":   rejected,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
		"results":    items,
		"metrics":    s.metrics(),
	})
}

// scheduledRequest is engineRequest plus the scheduler-only restriction:
// the sampling estimator is a /v1/solve feature, asynchronous callers
// evaluate results via /v1/evaluate instead.
func scheduledRequest(s *Server, req solveRequest) (engine.Request, int, error) {
	if req.EvalSamples > 0 {
		return engine.Request{}, http.StatusBadRequest, errors.New("eval_samples is not supported for scheduled solves; call /v1/evaluate on the result")
	}
	return s.engineRequest(req)
}

// jobStatusResponse is the wire shape of one scheduled job.
type jobStatusResponse struct {
	ID         string          `json:"id"`
	State      engine.JobState `json:"state"`
	Dataset    string          `json:"dataset,omitempty"`
	Mode       engine.Mode     `json:"mode"`
	RK         int             `json:"rk"`
	Algorithm  string          `json:"algorithm,omitempty"`
	Result     *solveResult    `json:"result,omitempty"`
	Error      string          `json:"error,omitempty"`
	EnqueuedAt time.Time       `json:"enqueued_at"`
	StartedAt  time.Time       `json:"started_at,omitzero"`
	FinishedAt time.Time       `json:"finished_at,omitzero"`
	ElapsedMS  float64         `json:"elapsed_ms,omitempty"`
}

func wireStatus(st engine.JobStatus) jobStatusResponse {
	out := jobStatusResponse{
		ID:         st.ID,
		State:      st.State,
		Dataset:    st.Label,
		Mode:       st.Mode,
		RK:         st.RK,
		Algorithm:  st.Algorithm,
		Error:      st.Error,
		EnqueuedAt: st.EnqueuedAt,
		StartedAt:  st.StartedAt,
		FinishedAt: st.FinishedAt,
		ElapsedMS:  st.ElapsedMS,
	}
	if st.Solution != nil {
		res := resultOf(st.Label, st.Solution)
		out.Result = &res
	}
	return out
}

// handleJobSubmit enqueues an asynchronous solve:
//
//	POST /v1/jobs {"dataset":"cars","r":5}  ->  202 {"id":"job-000001",...}
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	er, status, err := scheduledRequest(s, req)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	st, err := s.sched.Submit(er)
	if err != nil {
		// Queue full -> 429, draining -> 503, both with Retry-After: the
		// same overload statuses /v1/solve and /v1/solve/batch use.
		if !s.writeOverload(w, err) {
			writeErr(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeOK(w, http.StatusAccepted, wireStatus(st))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.sched.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeOK(w, http.StatusOK, wireStatus(st))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.sched.Cancel(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeOK(w, http.StatusOK, wireStatus(st))
}

func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	statuses := s.sched.Jobs()
	out := make([]jobStatusResponse, len(statuses))
	for i, st := range statuses {
		out[i] = wireStatus(st)
	}
	writeOK(w, http.StatusOK, map[string]any{"jobs": out})
}

// serverMetrics is the one metrics shape every surface reports: both engine
// cache tiers (including the VecSet repairs counter), the scheduler state
// (including queue depth), the registry size, and the store's durability
// summary. /v1/metrics, batch responses, and /healthz all serialize this
// struct, so no surface can drift into reporting partial stats again.
//
// Each block is an internally coherent snapshot — its subsystem reads every
// counter under one lock — so a scraper can never observe a torn state such
// as jobs done exceeding jobs submitted, no matter how hard the server is
// being driven. Blocks are taken in one pass but not atomically with respect
// to each other (cross-subsystem coherence would require stopping the
// world), so only compare counters within a block.
type serverMetrics struct {
	Engine    engine.Metrics        `json:"engine"`
	Scheduler engine.SchedulerStats `json:"scheduler"`
	Datasets  int                   `json:"datasets"`
	// Store is the in-memory durability digest (store.Summary); the full
	// per-segment picture lives at GET /v1/store/status.
	Store store.Summary `json:"store"`
}

func (s *Server) metrics() serverMetrics {
	// Summary, not Status: metrics runs on every health probe and batch
	// response and must not do filesystem walks under the store lock.
	return serverMetrics{
		Engine:    s.eng.Metrics(),
		Scheduler: s.sched.Stats(),
		Datasets:  s.store.Len(),
		Store:     s.store.Summary(),
	}
}

// handleMetrics reports the unified server metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeOK(w, http.StatusOK, s.metrics())
}

// handleDropDataset durably removes a dataset and its whole version
// history:
//
//	DELETE /v1/datasets/{name}
func (s *Server) handleDropDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	obs.TraceFrom(r.Context()).Annotate("dataset", name)
	start := time.Now()
	if err := s.store.DropCtx(r.Context(), name); err != nil {
		s.writeStoreErr(w, err)
		return
	}
	s.mutateDur.ObserveSince(start)
	writeOK(w, http.StatusOK, map[string]any{"dropped": name})
}

// handleStoreStatus reports the durability layer's health — segments,
// snapshot lag, recovery shape — plus the warm-start progress:
//
//	GET /v1/store/status
func (s *Server) handleStoreStatus(w http.ResponseWriter, r *http.Request) {
	writeOK(w, http.StatusOK, map[string]any{
		"store":      s.store.Status(),
		"warm_start": s.warmStatus(),
	})
}

// evaluateRequest is the wire shape of POST /v1/evaluate: an independent
// sampled rank-regret estimate for a caller-chosen tuple set.
type evaluateRequest struct {
	Dataset   string `json:"dataset"`
	Version   uint64 `json:"version,omitempty"`
	IDs       []int  `json:"ids"`
	Space     string `json:"space,omitempty"`
	Samples   int    `json:"samples,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(req.IDs) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("ids must be non-empty"))
		return
	}
	ds, sp, timeout, status, err := s.resolve(req.Dataset, req.Space, req.TimeoutMS, req.Version)
	if err != nil {
		writeErr(w, status, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	for _, id := range req.IDs {
		if id < 0 || id >= ds.N() {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("tuple id %d out of range [0, %d)", id, ds.N()))
			return
		}
	}
	samples := req.Samples
	if samples <= 0 {
		samples = 20000
	}
	samples = clampSamples(samples)
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	space := sp
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	type outcome struct {
		est int
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		est, err := eval.RankRegretCtx(ctx, ds, req.IDs, space, samples, seed)
		done <- outcome{est, err}
	}()
	// The estimator checks ctx, so a timed-out request's goroutine stops
	// shortly after the select returns instead of burning CPU to completion.
	var o outcome
	select {
	case o = <-done:
	case <-ctx.Done():
		o.err = ctx.Err()
	}
	if o.err != nil {
		writeErr(w, statusOf(o.err), o.err)
		return
	}
	writeOK(w, http.StatusOK, map[string]any{
		"dataset":     req.Dataset,
		"rank_regret": o.est,
		"percent":     100 * float64(o.est) / float64(ds.N()),
		"samples":     samples,
	})
}
