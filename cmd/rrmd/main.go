// Command rrmd serves rank-regret minimization queries over HTTP: a
// named-dataset registry, solver dispatch through the engine's algorithm
// registry, a shared LRU solution cache, and per-request timeouts.
//
// Datasets load from CSV at startup (-load, repeatable) or at runtime
// (POST /v1/datasets); -demo preloads the paper's simulated datasets.
//
//	rrmd -addr :8080 -load cars=cars.csv -header
//	rrmd -demo
//
//	curl localhost:8080/v1/datasets
//	curl -X POST localhost:8080/v1/solve -d '{"dataset":"cars","r":5}'
//
// Endpoints: GET /healthz, GET /v1/algorithms, GET /v1/datasets,
// POST /v1/datasets, GET /v1/datasets/{name},
// POST /v1/datasets/{name}/rows, DELETE /v1/datasets/{name}/rows,
// GET /v1/datasets/{name}/versions, POST /v1/solve, POST /v1/solve/batch,
// POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id},
// GET /v1/metrics, POST /v1/evaluate.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/rankregret/rankregret/internal/cliutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rrmd:", err)
		os.Exit(1)
	}
}

func run() error {
	var loads []string
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		header    = flag.Bool("header", false, "loaded CSVs have a header record")
		negate    = flag.String("negate", "", "comma-separated 0-based columns where smaller is better (applies to all -load files)")
		normalize = flag.Bool("normalize", true, "min-max normalize attributes to [0,1]")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-request solve timeout ceiling")
		maxUpload = flag.Int64("max-upload", 64<<20, "maximum POST /v1/datasets body size in bytes")
		cacheSize = flag.Int("cache", 0, "solution cache capacity (0 = default, negative = disabled)")
		workers   = flag.Int("workers", 0, "job scheduler worker count (0 = GOMAXPROCS)")
		queueCap  = flag.Int("queue", 0, "job scheduler queue capacity (0 = default 256)")
		solvePar  = flag.Int("solve-parallelism", 0, "default per-solve worker bound for HDRRM scoring passes (0 = GOMAXPROCS); requests override with the parallelism field")
		retainVer = flag.Int("retain-versions", DefaultRetainVersions, "dataset versions kept solvable per name (older versions age out)")
		demo      = flag.Bool("demo", false, "preload the simulated paper datasets (simisland, simnba, simweather)")
		seed      = flag.Int64("seed", 1, "seed for -demo dataset generation")
	)
	flag.Func("load", "name=path of a CSV dataset to load at startup (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	flag.Parse()

	neg, err := cliutil.ParseNegate(*negate)
	if err != nil {
		return err
	}

	srv := NewServer(*cacheSize, *timeout, *workers, *queueCap)
	defer srv.Close()
	srv.MaxUploadBytes = *maxUpload
	srv.SolveParallelism = *solvePar
	srv.RetainVersions = *retainVer
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load spec %q (want name=path)", spec)
		}
		ds, err := cliutil.LoadCSVFile(path, *header, neg, *normalize)
		if err != nil {
			return fmt.Errorf("loading %q: %w", spec, err)
		}
		if err := srv.AddDataset(name, ds); err != nil {
			return err
		}
		log.Printf("loaded dataset %q: n=%d d=%d", name, ds.N(), ds.Dim())
	}
	if *demo {
		for name, ds := range map[string]*dataset.Dataset{
			"simisland":  dataset.SimIsland(xrand.New(*seed), 0),
			"simnba":     dataset.SimNBA(xrand.New(*seed), 0),
			"simweather": dataset.SimWeather(xrand.New(*seed), 0),
		} {
			if err := srv.AddDataset(name, ds); err != nil {
				return err
			}
			log.Printf("loaded demo dataset %q: n=%d d=%d", name, ds.N(), ds.Dim())
		}
	}

	log.Printf("rrmd listening on %s (timeout=%s)", *addr, *timeout)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Solve responses can legitimately take up to the solve timeout, so
		// only the header read and idle keep-alives get tight bounds.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return hs.ListenAndServe()
}
