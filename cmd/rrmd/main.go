// Command rrmd serves rank-regret minimization queries over HTTP: a
// named-dataset registry with durable WAL + snapshot persistence, solver
// dispatch through the engine's algorithm registry, a shared LRU solution
// cache, and per-request timeouts.
//
// Datasets load from CSV at startup (-load, repeatable) or at runtime
// (POST /v1/datasets); -demo preloads the paper's simulated datasets. With
// -data-dir set, every registry mutation is written ahead to a checksummed
// WAL and periodically snapshotted, so a restart — graceful or kill -9 —
// recovers the registered datasets, their retained version histories, and
// re-warms the engine's VecSet cache in the background.
//
//	rrmd -addr :8080 -load cars=cars.csv -header
//	rrmd -demo -data-dir /var/lib/rrmd -fsync always
//	rrmd -compact -data-dir /var/lib/rrmd   # offline compaction
//
//	curl localhost:8080/v1/datasets
//	curl -X POST localhost:8080/v1/solve -d '{"dataset":"cars","r":5}'
//
// SIGTERM/SIGINT drain gracefully: in-flight jobs finish (bounded by
// -drain-timeout), the WAL is flushed, and a final snapshot is written so
// the next start recovers replay-free.
//
// Endpoints: GET /healthz, GET /v1/algorithms, GET /v1/datasets,
// POST /v1/datasets, GET /v1/datasets/{name}, DELETE /v1/datasets/{name},
// POST /v1/datasets/{name}/rows, DELETE /v1/datasets/{name}/rows,
// GET /v1/datasets/{name}/versions, POST /v1/solve, POST /v1/solve/batch,
// POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id},
// GET /v1/metrics, GET /v1/store/status, POST /v1/evaluate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/rankregret/rankregret/internal/cliutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/faultfs"
	"github.com/rankregret/rankregret/internal/store"
	"github.com/rankregret/rankregret/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrmd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, parameterized over its argument list so tests can
// exercise the full lifecycle (flags, recovery, signals) in a subprocess.
func run(args []string) error {
	fs := flag.NewFlagSet("rrmd", flag.ContinueOnError)
	var loads []string
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		header    = fs.Bool("header", false, "loaded CSVs have a header record")
		negate    = fs.String("negate", "", "comma-separated 0-based columns where smaller is better (applies to all -load files)")
		normalize = fs.Bool("normalize", true, "min-max normalize attributes to [0,1]")
		timeout   = fs.Duration("timeout", 60*time.Second, "per-request solve timeout ceiling")
		maxUpload = fs.Int64("max-upload", 64<<20, "maximum POST /v1/datasets body size in bytes")
		cacheSize = fs.Int("cache", 0, "solution cache capacity (0 = default, negative = disabled)")
		workers   = fs.Int("workers", 0, "job scheduler worker count (0 = GOMAXPROCS)")
		queueCap  = fs.Int("queue", 0, "job scheduler queue capacity (0 = default 256); a full queue rejects with 429 + Retry-After")
		policy    = fs.String("policy", "affinity", "queue scheduling policy: fifo (strict arrival order) or affinity (warm-cache jobs first under pressure; results identical, only latency ordering moves)")
		queueWait = fs.Duration("queue-wait", 0, "queue-wait budget for synchronous solves before a 429 (0 = same as -timeout); the solve's own timeout starts when it leaves the queue")
		solvePar  = fs.Int("solve-parallelism", 0, "default per-solve worker bound for HDRRM scoring passes (0 = GOMAXPROCS); requests override with the parallelism field")
		retainVer = fs.Int("retain-versions", DefaultRetainVersions, "dataset versions kept solvable per name (older versions age out)")
		traceSlow = fs.Duration("trace-slow", 0, "log the per-stage span breakdown (queue/cache/build/solve/store) of every request slower than this (0 = off); traces are always retrievable at /v1/trace/{id}")
		demo      = fs.Bool("demo", false, "preload the simulated paper datasets (simisland, simnba, simweather)")
		seed      = fs.Int64("seed", 1, "seed for -demo dataset generation")

		dataDir   = fs.String("data-dir", "", "durable store directory (empty = in-memory only: restarts lose all state)")
		fsyncPol  = fs.String("fsync", "always", "WAL durability: always (fsync per mutation), never, or a flush interval such as 100ms")
		snapEvery = fs.Int("snapshot-every", store.DefaultSnapshotEvery, "WAL records between automatic snapshots (negative = only on shutdown/compact)")
		segBytes  = fs.Int64("segment-bytes", store.DefaultSegmentBytes, "WAL segment rotation threshold in bytes")
		warmStart = fs.Bool("warm-start", true, "rebuild the VecSet cache tier for recovered datasets in the background after a restart")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs and the final snapshot")
		compact   = fs.Bool("compact", false, "offline mode: recover the store, write a verified snapshot, prune the WAL, print status, and exit")

		faultInject = fs.String("fault-inject", "", "chaos testing: scripted store write faults, e.g. 'op=sync,err=enospc,after=10,count=5' (see internal/faultfs; NEVER set in production)")
		faultSeed   = fs.Int64("fault-seed", 1, "seed for probabilistic -fault-inject rules")
		healBackoff = fs.Duration("heal-backoff", 0, "initial self-heal retry delay after a store fault (0 = 100ms default); doubles with jitter up to -heal-backoff-max")
		healMax     = fs.Duration("heal-backoff-max", 0, "self-heal retry delay ceiling (0 = 5s default)")
	)
	fs.Func("load", "name=path of a CSV dataset to load at startup (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0, as the global flag set did
		}
		return err
	}

	neg, err := cliutil.ParseNegate(*negate)
	if err != nil {
		return err
	}
	sync, syncIv, err := store.ParseSyncPolicy(*fsyncPol)
	if err != nil {
		return err
	}
	if *compact && *dataDir == "" {
		return fmt.Errorf("-compact requires -data-dir")
	}

	var storeFS faultfs.FS
	if *faultInject != "" {
		rules, err := faultfs.ParseScript(*faultInject)
		if err != nil {
			return err
		}
		inj := faultfs.New(faultfs.Disk, *faultSeed)
		inj.Arm(rules...)
		storeFS = inj
		log.Printf("store: FAULT INJECTION ARMED (%d rule(s), seed %d) — chaos testing only", len(rules), *faultSeed)
	}

	st, err := store.Open(store.Options{
		Dir:            *dataDir,
		Retain:         *retainVer,
		SegmentBytes:   *segBytes,
		SnapshotEvery:  *snapEvery,
		Sync:           sync,
		SyncInterval:   syncIv,
		FS:             storeFS,
		HealBackoff:    *healBackoff,
		HealMaxBackoff: *healMax,
		Logf:           log.Printf,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		rec := st.Recovery()
		log.Printf("store: recovered %d datasets from %s (snapshot %d + %d WAL records; torn tail: %v)",
			rec.Datasets, *dataDir, rec.SnapshotSeq, rec.RecordsReplayed, rec.TornTail)
	}

	if *compact {
		err := st.Compact()
		status, _ := json.MarshalIndent(st.Status(), "", "  ")
		fmt.Println(string(status))
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		return err
	}

	pol, ok := engine.PolicyByName(*policy)
	if !ok {
		if cerr := st.Close(); cerr != nil {
			log.Printf("rrmd: closing store: %v", cerr)
		}
		return fmt.Errorf("unknown -policy %q (want fifo or affinity)", *policy)
	}

	srv := NewServerWith(st, *cacheSize, *timeout, *workers, *queueCap)
	defer srv.Close()
	srv.MaxUploadBytes = *maxUpload
	srv.SolveParallelism = *solvePar
	srv.RetainVersions = *retainVer
	srv.QueueWait = *queueWait
	srv.TraceSlow = *traceSlow
	srv.SetPolicy(pol)
	// Startup loads must not clobber what recovery just rebuilt: a daemon
	// restarted with its usual -load/-demo flags keeps the recovered
	// version history (with every durably-acked mutation) rather than
	// durably replacing it with a fresh copy of the seed data. Replacing a
	// recovered dataset is an explicit act: DELETE it, then re-upload.
	recovered := make(map[string]bool)
	for _, name := range st.RecoveredNames() {
		recovered[name] = true
	}
	skipRecovered := func(name string) bool {
		if recovered[name] {
			log.Printf("dataset %q recovered from %s; skipping startup load (drop it to replace)", name, *dataDir)
			return true
		}
		return false
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load spec %q (want name=path)", spec)
		}
		if skipRecovered(name) {
			continue
		}
		ds, err := cliutil.LoadCSVFile(path, *header, neg, *normalize)
		if err != nil {
			return fmt.Errorf("loading %q: %w", spec, err)
		}
		if err := srv.AddDataset(name, ds); err != nil {
			return err
		}
		log.Printf("loaded dataset %q: n=%d d=%d", name, ds.N(), ds.Dim())
	}
	if *demo {
		for name, gen := range map[string]func(*xrand.Rand, int) *dataset.Dataset{
			"simisland":  dataset.SimIsland,
			"simnba":     dataset.SimNBA,
			"simweather": dataset.SimWeather,
		} {
			if skipRecovered(name) {
				continue
			}
			ds := gen(xrand.New(*seed), 0)
			if err := srv.AddDataset(name, ds); err != nil {
				return err
			}
			log.Printf("loaded demo dataset %q: n=%d d=%d", name, ds.N(), ds.Dim())
		}
	}
	if recovered := st.RecoveredNames(); *warmStart && len(recovered) > 0 {
		log.Printf("warm-start: priming caches for %d recovered datasets in the background", len(recovered))
		go srv.WarmStart(recovered)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("rrmd listening on %s (timeout=%s)", *addr, *timeout)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Solve responses can legitimately take up to the solve timeout, so
		// only the header read and idle keep-alives get tight bounds.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("rrmd: draining (budget %s): waiting for in-flight work, then flushing the store", *drainTO)
	sctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Stop accepting requests and wait for in-flight handlers first, so the
	// scheduler drain below sees every job that will ever be submitted.
	if err := hs.Shutdown(sctx); err != nil {
		log.Printf("rrmd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("rrmd: drain: %v", err)
	}
	log.Printf("rrmd: shutdown complete")
	return nil
}
