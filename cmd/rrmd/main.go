// Command rrmd serves rank-regret minimization queries over HTTP: a
// named-dataset registry with durable WAL + snapshot persistence, solver
// dispatch through the engine's algorithm registry, a shared LRU solution
// cache, and per-request timeouts.
//
// Datasets load from CSV at startup (-load, repeatable) or at runtime
// (POST /v1/datasets); -demo preloads the paper's simulated datasets. With
// -data-dir set, every registry mutation is written ahead to a checksummed
// WAL and periodically snapshotted, so a restart — graceful or kill -9 —
// recovers the registered datasets, their retained version histories, and
// re-warms the engine's VecSet cache in the background.
//
//	rrmd -addr :8080 -load cars=cars.csv -header
//	rrmd -demo -data-dir /var/lib/rrmd -fsync always
//	rrmd -compact -data-dir /var/lib/rrmd   # offline compaction
//
//	curl localhost:8080/v1/datasets
//	curl -X POST localhost:8080/v1/solve -d '{"dataset":"cars","r":5}'
//
// SIGTERM/SIGINT drain gracefully: in-flight jobs finish (bounded by
// -drain-timeout), the WAL is flushed, and a final snapshot is written so
// the next start recovers replay-free.
//
// Endpoints: GET /healthz, GET /v1/algorithms, GET /v1/datasets,
// POST /v1/datasets, GET /v1/datasets/{name}, DELETE /v1/datasets/{name},
// POST /v1/datasets/{name}/rows, DELETE /v1/datasets/{name}/rows,
// GET /v1/datasets/{name}/versions, POST /v1/solve, POST /v1/solve/batch,
// POST /v1/jobs, GET /v1/jobs, GET /v1/jobs/{id}, DELETE /v1/jobs/{id},
// GET /v1/metrics, GET /metrics, GET /v1/trace/{id}, GET /v1/traces,
// GET /v1/slo, GET /v1/incidents, GET /v1/incidents/{id},
// GET /v1/store/status, POST /v1/evaluate. With -pprof-addr set,
// net/http/pprof is served on that separate listener.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/rankregret/rankregret/internal/cliutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/faultfs"
	"github.com/rankregret/rankregret/internal/obs"
	"github.com/rankregret/rankregret/internal/store"
	"github.com/rankregret/rankregret/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rrmd:", err)
		os.Exit(1)
	}
}

// run is the daemon body, parameterized over its argument list so tests can
// exercise the full lifecycle (flags, recovery, signals) in a subprocess.
func run(args []string) error {
	fs := flag.NewFlagSet("rrmd", flag.ContinueOnError)
	var loads []string
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		header    = fs.Bool("header", false, "loaded CSVs have a header record")
		negate    = fs.String("negate", "", "comma-separated 0-based columns where smaller is better (applies to all -load files)")
		normalize = fs.Bool("normalize", true, "min-max normalize attributes to [0,1]")
		timeout   = fs.Duration("timeout", 60*time.Second, "per-request solve timeout ceiling")
		maxUpload = fs.Int64("max-upload", 64<<20, "maximum POST /v1/datasets body size in bytes")
		cacheSize = fs.Int("cache", 0, "solution cache capacity (0 = default, negative = disabled)")
		workers   = fs.Int("workers", 0, "job scheduler worker count (0 = GOMAXPROCS)")
		queueCap  = fs.Int("queue", 0, "job scheduler queue capacity (0 = default 256); a full queue rejects with 429 + Retry-After")
		policy    = fs.String("policy", "affinity", "queue scheduling policy: fifo (strict arrival order) or affinity (warm-cache jobs first under pressure; results identical, only latency ordering moves)")
		queueWait = fs.Duration("queue-wait", 0, "queue-wait budget for synchronous solves before a 429 (0 = same as -timeout); the solve's own timeout starts when it leaves the queue")
		solvePar  = fs.Int("solve-parallelism", 0, "default per-solve worker bound for HDRRM scoring passes (0 = GOMAXPROCS); requests override with the parallelism field")
		retainVer = fs.Int("retain-versions", DefaultRetainVersions, "dataset versions kept solvable per name (older versions age out)")
		traceSlow = fs.Duration("trace-slow", 0, "log the per-stage span breakdown (queue/cache/build/solve/store) of every request slower than this (0 = off); traces are always retrievable at /v1/trace/{id}")
		demo      = fs.Bool("demo", false, "preload the simulated paper datasets (simisland, simnba, simweather)")
		seed      = fs.Int64("seed", 1, "seed for -demo dataset generation")

		dataDir   = fs.String("data-dir", "", "durable store directory (empty = in-memory only: restarts lose all state)")
		fsyncPol  = fs.String("fsync", "always", "WAL durability: always (fsync per mutation), never, or a flush interval such as 100ms")
		snapEvery = fs.Int("snapshot-every", store.DefaultSnapshotEvery, "WAL records between automatic snapshots (negative = only on shutdown/compact)")
		segBytes  = fs.Int64("segment-bytes", store.DefaultSegmentBytes, "WAL segment rotation threshold in bytes")
		warmStart = fs.Bool("warm-start", true, "rebuild the VecSet cache tier for recovered datasets in the background after a restart")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs and the final snapshot")
		compact   = fs.Bool("compact", false, "offline mode: recover the store, write a verified snapshot, prune the WAL, print status, and exit")

		faultInject = fs.String("fault-inject", "", "chaos testing: scripted store write faults, e.g. 'op=sync,err=enospc,after=10,count=5' (see internal/faultfs; NEVER set in production)")
		faultSeed   = fs.Int64("fault-seed", 1, "seed for probabilistic -fault-inject rules")
		healBackoff = fs.Duration("heal-backoff", 0, "initial self-heal retry delay after a store fault (0 = 100ms default); doubles with jitter up to -heal-backoff-max")
		healMax     = fs.Duration("heal-backoff-max", 0, "self-heal retry delay ceiling (0 = 5s default)")

		logFormat   = fs.String("log-format", "text", "log output format: text (human-readable) or json (one object per line, machine-parseable)")
		traceRing   = fs.Int("trace-ring", DefaultTraceRing, "recent traced requests retained for GET /v1/trace/{id} and GET /v1/traces")
		incidentDir = fs.String("incident-dir", "", "directory incident bundles are dumped to as JSON (empty = in-memory ring only, served at GET /v1/incidents)")
		pprofAddr   = fs.String("pprof-addr", "", "listen address for the net/http/pprof debug server (empty = disabled); keep it off the service port and firewalled")
	)
	fs.Func("load", "name=path of a CSV dataset to load at startup (repeatable)", func(v string) error {
		loads = append(loads, v)
		return nil
	})
	var sloSpecs []string
	fs.Func("slo", "latency objective as source:pQQ<DUR@TT, e.g. 'solve:p99<250ms@99.9' (repeatable; sources: solve, mutate, scrape; default = stock objectives for all three)", func(v string) error {
		sloSpecs = append(sloSpecs, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h prints usage and exits 0, as the global flag set did
		}
		return err
	}

	neg, err := cliutil.ParseNegate(*negate)
	if err != nil {
		return err
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("unknown -log-format %q (want text or json)", *logFormat)
	}
	// The shared structured logger: every subsystem (store, scheduler,
	// serving edge) logs through it, and the ring it tees into supplies the
	// log tail of incident bundles.
	logRing := obs.NewLogRing(512)
	logger := obs.NewLogger(os.Stderr, *logFormat, slog.LevelInfo, logRing)
	slog.SetDefault(logger)
	sync, syncIv, err := store.ParseSyncPolicy(*fsyncPol)
	if err != nil {
		return err
	}
	if *compact && *dataDir == "" {
		return fmt.Errorf("-compact requires -data-dir")
	}

	var storeFS faultfs.FS
	if *faultInject != "" {
		rules, err := faultfs.ParseScript(*faultInject)
		if err != nil {
			return err
		}
		inj := faultfs.New(faultfs.Disk, *faultSeed)
		inj.Arm(rules...)
		storeFS = inj
		logger.Warn("store: FAULT INJECTION ARMED — chaos testing only",
			"rules", len(rules), "seed", *faultSeed)
	}

	st, err := store.Open(store.Options{
		Dir:            *dataDir,
		Retain:         *retainVer,
		SegmentBytes:   *segBytes,
		SnapshotEvery:  *snapEvery,
		Sync:           sync,
		SyncInterval:   syncIv,
		FS:             storeFS,
		HealBackoff:    *healBackoff,
		HealMaxBackoff: *healMax,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		rec := st.Recovery()
		logger.Info("store: recovered",
			"datasets", rec.Datasets, "dir", *dataDir, "snapshot", rec.SnapshotSeq,
			"wal_records", rec.RecordsReplayed, "torn_tail", rec.TornTail)
	}

	if *compact {
		err := st.Compact()
		status, _ := json.MarshalIndent(st.Status(), "", "  ")
		fmt.Println(string(status))
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		return err
	}

	pol, ok := engine.PolicyByName(*policy)
	if !ok {
		if cerr := st.Close(); cerr != nil {
			logger.Error("rrmd: closing store failed", "err", cerr)
		}
		return fmt.Errorf("unknown -policy %q (want fifo or affinity)", *policy)
	}

	srv := NewServerWith(st, *cacheSize, *timeout, *workers, *queueCap)
	defer srv.Close()
	srv.MaxUploadBytes = *maxUpload
	srv.SolveParallelism = *solvePar
	srv.RetainVersions = *retainVer
	srv.QueueWait = *queueWait
	srv.TraceSlow = *traceSlow
	srv.SetPolicy(pol)
	if err := srv.SetupObs(ObsOptions{
		Logger:      logger,
		LogRing:     logRing,
		TraceRing:   *traceRing,
		IncidentDir: *incidentDir,
		SLOSpecs:    sloSpecs,
	}); err != nil {
		return err
	}
	// Startup loads must not clobber what recovery just rebuilt: a daemon
	// restarted with its usual -load/-demo flags keeps the recovered
	// version history (with every durably-acked mutation) rather than
	// durably replacing it with a fresh copy of the seed data. Replacing a
	// recovered dataset is an explicit act: DELETE it, then re-upload.
	recovered := make(map[string]bool)
	for _, name := range st.RecoveredNames() {
		recovered[name] = true
	}
	skipRecovered := func(name string) bool {
		if recovered[name] {
			logger.Info("rrmd: dataset recovered; skipping startup load (drop it to replace)",
				"dataset", name, "dir", *dataDir)
			return true
		}
		return false
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("bad -load spec %q (want name=path)", spec)
		}
		if skipRecovered(name) {
			continue
		}
		ds, err := cliutil.LoadCSVFile(path, *header, neg, *normalize)
		if err != nil {
			return fmt.Errorf("loading %q: %w", spec, err)
		}
		if err := srv.AddDataset(name, ds); err != nil {
			return err
		}
		logger.Info("rrmd: loaded dataset", "dataset", name, "n", ds.N(), "d", ds.Dim())
	}
	if *demo {
		for name, gen := range map[string]func(*xrand.Rand, int) *dataset.Dataset{
			"simisland":  dataset.SimIsland,
			"simnba":     dataset.SimNBA,
			"simweather": dataset.SimWeather,
		} {
			if skipRecovered(name) {
				continue
			}
			ds := gen(xrand.New(*seed), 0)
			if err := srv.AddDataset(name, ds); err != nil {
				return err
			}
			logger.Info("rrmd: loaded demo dataset", "dataset", name, "n", ds.N(), "d", ds.Dim())
		}
	}
	if recovered := st.RecoveredNames(); *warmStart && len(recovered) > 0 {
		logger.Info("rrmd: warm-start priming caches in the background", "datasets", len(recovered))
		go srv.WarmStart(recovered)
	}

	if *pprofAddr != "" {
		// The pprof surface gets its own mux on its own listener: profiling
		// must never ride the service port (it is unauthenticated and can
		// stall), and registering on a private mux keeps the service handler
		// free of DefaultServeMux side effects.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		defer ps.Close()
		go func() {
			logger.Info("rrmd: pprof debug server listening", "addr", *pprofAddr)
			if err := ps.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("rrmd: pprof server failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logger.Info("rrmd: listening", "addr", *addr, "timeout", *timeout, "log_format", *logFormat)
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Solve responses can legitimately take up to the solve timeout, so
		// only the header read and idle keep-alives get tight bounds.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	logger.Info("rrmd: draining: waiting for in-flight work, then flushing the store", "budget", *drainTO)
	sctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	// Stop accepting requests and wait for in-flight handlers first, so the
	// scheduler drain below sees every job that will ever be submitted.
	if err := hs.Shutdown(sctx); err != nil {
		logger.Warn("rrmd: http shutdown failed", "err", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		logger.Warn("rrmd: drain failed", "err", err)
	}
	logger.Info("rrmd: shutdown complete")
	return nil
}
