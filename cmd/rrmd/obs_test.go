package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/obs"
	"github.com/rankregret/rankregret/internal/xrand"
)

// scrapeProm fetches GET /metrics and runs it through the strict exposition
// parser, which itself enforces the histogram invariants (cumulative
// non-decreasing buckets, +Inf bucket == _count, _sum/_count present, no
// duplicates, no negative counters). Any violation fails the test.
func scrapeProm(t *testing.T, baseURL string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("GET /metrics content type %q, want %q", ct, obs.ExpositionContentType)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("scrape failed validation: %v", err)
	}
	return exp
}

// TestPrometheusScrapeCoherentUnderLoad hammers the daemon with concurrent
// solves while scraping /metrics in parallel: every scrape must parse
// cleanly, carry the core families, and show monotone counters — no torn
// histogram triples, no counter regressions. Run under -race this also
// exercises every instrument's concurrency story.
func TestPrometheusScrapeCoherentUnderLoad(t *testing.T) {
	_, ts := newTestServer(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Goroutines must not touch t; failures surface through this channel
	// (capacity for one of each kind, later ones dropped).
	errc := make(chan error, 8)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Cycling r keeps the VecSet tier busy (one build, then
				// reuses) while the solution cache sees hits and misses.
				body, _ := json.Marshal(solveRequest{
					Dataset: "nba", R: 5 + (g+i)%4, Algorithm: "hdrrm", MaxSamples: 400,
				})
				resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
				if err != nil {
					report(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	// A second scraper so scrapes themselves race each other, not just the
	// solvers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				report(err)
				return
			}
			_, perr := obs.ParseExposition(resp.Body)
			resp.Body.Close()
			if perr != nil {
				report(fmt.Errorf("concurrent scrape failed validation: %w", perr))
				return
			}
		}
	}()

	required := []string{
		"rrmd_solve_duration_seconds",
		"rrmd_solve_stage_duration_seconds",
		"rrmd_queue_wait_seconds",
		"rrmd_run_duration_seconds",
		"rrmd_cache_hits_total",
		"rrmd_cache_misses_total",
		"rrmd_vecset_builds_total",
		"rrmd_jobs_done_total",
		"rrmd_queue_depth",
		"rrmd_wal_fsync_seconds",
		"rrmd_snapshot_cut_seconds",
		"rrmd_store_degraded",
	}
	monotone := []string{
		"rrmd_solve_duration_seconds_count",
		"rrmd_jobs_submitted_total",
		"rrmd_jobs_done_total",
		"rrmd_cache_hits_total",
		"rrmd_cache_misses_total",
	}
	last := map[string]float64{}
	for i := 0; i < 15; i++ {
		exp := scrapeProm(t, ts.URL)
		for _, fam := range required {
			if _, ok := exp.Families[fam]; !ok {
				t.Fatalf("scrape %d: family %q missing", i, fam)
			}
		}
		for _, key := range monotone {
			v, _ := exp.Value(key)
			if v < last[key] {
				t.Fatalf("scrape %d: counter %s went backwards: %v -> %v", i, key, last[key], v)
			}
			last[key] = v
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	final := scrapeProm(t, ts.URL)
	if v, _ := final.Value("rrmd_solve_duration_seconds_count"); v == 0 {
		t.Error("no end-to-end solve latency was recorded under load")
	}
	if v, _ := final.Value(`rrmd_queue_wait_seconds_count{policy="fifo"}`); v == 0 {
		t.Error("no queue-wait latency was recorded for the fifo policy")
	}
	if v, _ := final.Value(`rrmd_solve_stage_duration_seconds_count{stage="solve"}`); v == 0 {
		t.Error("no per-stage solve latency was recorded")
	}
}

// TestJSONMetricsMatchesPrometheus checks the two metrics surfaces render
// the same underlying registry: after the workload quiesces, every counter
// the JSON body reports must equal its Prometheus twin exactly.
func TestJSONMetricsMatchesPrometheus(t *testing.T) {
	_, ts := newTestServer(t)
	for _, r := range []int{6, 7, 6, 7} { // repeats land in the solution cache
		resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "nba", R: r, Algorithm: "hdrrm", MaxSamples: 400})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve r=%d: status %d: %s", r, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m serverMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	exp := scrapeProm(t, ts.URL)

	for key, want := range map[string]float64{
		"rrmd_cache_hits_total":     float64(m.Engine.Solutions.Hits),
		"rrmd_cache_misses_total":   float64(m.Engine.Solutions.Misses),
		"rrmd_vecset_builds_total":  float64(m.Engine.VecSets.Builds),
		"rrmd_vecset_reuses_total":  float64(m.Engine.VecSets.Reuses),
		"rrmd_jobs_submitted_total": float64(m.Scheduler.Submitted),
		"rrmd_jobs_done_total":      float64(m.Scheduler.Done),
		"rrmd_datasets":             float64(m.Datasets),
		"rrmd_queue_capacity":       float64(m.Scheduler.QueueCap),
		"rrmd_store_records_total":  float64(m.Store.Records),
	} {
		got, ok := exp.Value(key)
		if !ok {
			t.Errorf("prometheus sample %s missing", key)
			continue
		}
		if got != want {
			t.Errorf("%s = %v on /metrics, %v on /v1/metrics", key, got, want)
		}
	}
}

// TestTraceBreakdown drives a cold HDRRM solve with a caller-chosen request
// id and checks the retained trace: the id round-trips through the response
// header, the span timeline covers queue/cache/build/solve, and the span
// self-times account for the request's end-to-end time (nothing large is
// unattributed).
func TestTraceBreakdown(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.AddDataset("weather", dataset.SimWeather(xrand.New(1), 4000)); err != nil {
		t.Fatal(err)
	}

	const reqID = "trace-breakdown-test"
	body, err := json.Marshal(solveRequest{Dataset: "weather", R: 8, Algorithm: "hdrrm", MaxSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", reqID)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Errorf("response X-Request-Id = %q, want %q", got, reqID)
	}

	tResp, err := http.Get(ts.URL + "/v1/trace/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer tResp.Body.Close()
	if tResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/trace/%s status %d", reqID, tResp.StatusCode)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(tResp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != reqID || !snap.Finished || snap.TotalMS <= 0 {
		t.Fatalf("trace snapshot = %+v, want finished with positive total", snap)
	}
	seen := map[string]bool{}
	var sumSelf float64
	for _, sp := range snap.Spans {
		seen[sp.Name] = true
		sumSelf += sp.SelfMS
	}
	for _, want := range []string{"queue", "cache", "build", "solve"} {
		if !seen[want] {
			t.Errorf("trace has no %q span (spans: %+v)", want, snap.Spans)
		}
	}
	if sumSelf > snap.TotalMS*1.02 {
		t.Errorf("span self-times sum to %.3fms, more than the e2e %.3fms", sumSelf, snap.TotalMS)
	}
	// Attribution only has to be tight when there is real work to attribute;
	// a fast solve is dominated by constant HTTP overhead.
	if snap.TotalMS >= 20 && sumSelf < snap.TotalMS*0.7 {
		t.Errorf("spans attribute only %.3fms of %.3fms e2e (want >= 70%%): %+v", sumSelf, snap.TotalMS, snap.Spans)
	}

	// The ring lists it, and unknown ids are a clean 404.
	lResp, err := http.Get(ts.URL + "/v1/traces?n=50")
	if err != nil {
		t.Fatal(err)
	}
	defer lResp.Body.Close()
	var list struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(lResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range list.Traces {
		if tr.ID == reqID {
			found = true
		}
	}
	if !found {
		t.Errorf("GET /v1/traces does not list %s", reqID)
	}
	nResp, err := http.Get(ts.URL + "/v1/trace/no-such-id")
	if err != nil {
		t.Fatal(err)
	}
	nResp.Body.Close()
	if nResp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id status %d, want 404", nResp.StatusCode)
	}
}

// TestSolveBitIdenticalWithTracing runs the same request on an
// uninstrumented engine and on an instrumented one under an active trace:
// the solutions must be deeply equal — observability must never perturb
// solver output.
func TestSolveBitIdenticalWithTracing(t *testing.T) {
	ds := dataset.SimNBA(xrand.New(1), 600)
	req := engine.Request{
		Dataset:   ds,
		RK:        7,
		Algorithm: "hdrrm",
		Opts:      engine.Options{Seed: 1, MaxSamples: 800},
	}

	plain := engine.New(0)
	want, err := req.Run(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}

	instr := engine.New(0)
	instr.Instrument(obs.NewRegistry())
	tr := obs.NewTrace("bit-identical")
	got, err := req.Run(obs.WithTrace(context.Background(), tr), instr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("instrumented solve = %+v, uninstrumented = %+v", got, want)
	}
	if tr.SpanCount() == 0 {
		t.Error("the instrumented run recorded no spans")
	}
}

// TestHealthSingleSnapshot pins the /healthz shape after the one-snapshot
// rewrite: the cache digest in the body must be the same object the metrics
// body carries, not a second racy read.
func TestHealthSingleSnapshot(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var hz struct {
		OK      bool            `json:"ok"`
		State   string          `json:"state"`
		Cache   json.RawMessage `json:"cache"`
		Metrics struct {
			Engine struct {
				Solutions json.RawMessage `json:"solutions"`
			} `json:"engine"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.OK || hz.State != "healthy" {
		t.Fatalf("healthz = ok=%v state=%q, want healthy", hz.OK, hz.State)
	}
	if string(hz.Cache) != string(hz.Metrics.Engine.Solutions) {
		t.Errorf("healthz cache digest %s disagrees with its own metrics body %s", hz.Cache, hz.Metrics.Engine.Solutions)
	}
}
