package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf []byte
	if body != nil {
		var err error
		buf, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decode[T any](t *testing.T, body []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	return v
}

// TestMutationEndpointsGolden walks the mutation API through a scripted
// append/delete sequence, checking each response's shape and that solves on
// the evolving current version always match a freshly-registered dataset
// with the same content.
func TestMutationEndpointsGolden(t *testing.T) {
	srv, ts := newTestServer(t)

	// Baseline solve on the initial version.
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline solve: %d %s", resp.StatusCode, body)
	}
	base := decode[solveResponse](t, body)

	ds0, _ := srv.dataset("island")
	v0 := ds0.Version()
	n0 := ds0.N()

	// Append two rows.
	rows := [][]float64{{0.91, 0.33}, {0.12, 0.86}}
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/island/rows", map[string]any{"rows": rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}
	mr := decode[mutateResponse](t, body)
	if mr.N != n0+2 || mr.Appended != 2 || mr.Version != v0+2 {
		t.Fatalf("append response = %+v, want n=%d appended=2 version=%d", mr, n0+2, v0+2)
	}

	// The new rows are visible to solves and results match a fresh registry
	// entry with identical content.
	cur, _ := srv.dataset("island")
	if cur.N() != n0+2 {
		t.Fatalf("current n = %d", cur.N())
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-append solve: %d %s", resp.StatusCode, body)
	}
	got := decode[solveResponse](t, body)
	srv2, ts2 := newTestServer(t)
	fresh := dataset.SimIsland(xrand.New(1), 400)
	fresh.Append(rows[0])
	fresh.Append(rows[1])
	if err := srv2.AddDataset("island2", fresh); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, ts2.URL+"/v1/solve", solveRequest{Dataset: "island2", R: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh solve: %d %s", resp.StatusCode, body)
	}
	want := decode[solveResponse](t, body)
	if !reflect.DeepEqual(got.IDs, want.IDs) || got.RankRegret != want.RankRegret {
		t.Fatalf("post-append solve %+v != fresh-content solve %+v", got.solveResult, want.solveResult)
	}

	// Delete the two appended rows: content (and fingerprint) round-trips.
	resp, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/island/rows", map[string]any{"ids": []int{n0, n0 + 1}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	mr = decode[mutateResponse](t, body)
	if mr.N != n0 || mr.Deleted != 2 || mr.Version != v0+3 {
		t.Fatalf("delete response = %+v, want n=%d deleted=2 version=%d", mr, n0, v0+3)
	}
	cur, _ = srv.dataset("island")
	if cur.Fingerprint() != ds0.Fingerprint() {
		t.Fatal("append+delete round trip changed the fingerprint")
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("round-trip solve: %d %s", resp.StatusCode, body)
	}
	rt := decode[solveResponse](t, body)
	if !reflect.DeepEqual(rt.IDs, base.IDs) || rt.RankRegret != base.RankRegret {
		t.Fatalf("round-trip solve %+v != baseline %+v", rt.solveResult, base.solveResult)
	}

	// Versions list shows the retained history, newest marked current.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/island/versions", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versions: %d %s", resp.StatusCode, body)
	}
	vl := decode[struct {
		Dataset  string        `json:"dataset"`
		Versions []versionInfo `json:"versions"`
	}](t, body)
	if vl.Dataset != "island" || len(vl.Versions) != 3 {
		t.Fatalf("versions = %+v, want 3 entries", vl)
	}
	wantVersions := []uint64{v0, v0 + 2, v0 + 3}
	for i, vi := range vl.Versions {
		if vi.Version != wantVersions[i] || vi.Current != (i == 2) {
			t.Fatalf("version entry %d = %+v, want version %d", i, vi, wantVersions[i])
		}
	}

	// Pinned solve on the middle (appended) version equals the solve taken
	// when it was current.
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: 5, Version: v0 + 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned solve: %d %s", resp.StatusCode, body)
	}
	pinned := decode[solveResponse](t, body)
	if !reflect.DeepEqual(pinned.IDs, got.IDs) || pinned.RankRegret != got.RankRegret {
		t.Fatalf("pinned solve %+v != original %+v", pinned.solveResult, got.solveResult)
	}
}

// TestMutationValidation covers the mutation endpoints' rejection paths.
func TestMutationValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		method string
		url    string
		body   any
		status int
	}{
		{"append-unknown-dataset", http.MethodPost, "/v1/datasets/nope/rows", map[string]any{"rows": [][]float64{{1, 2}}}, http.StatusNotFound},
		{"append-empty", http.MethodPost, "/v1/datasets/island/rows", map[string]any{"rows": [][]float64{}}, http.StatusBadRequest},
		{"append-bad-dim", http.MethodPost, "/v1/datasets/island/rows", map[string]any{"rows": [][]float64{{1, 2, 3}}}, http.StatusBadRequest},
		{"append-malformed-number", http.MethodPost, "/v1/datasets/island/rows", map[string]any{"rows": []any{[]any{"NaN", 1.0}}}, http.StatusBadRequest},
		{"delete-unknown-dataset", http.MethodDelete, "/v1/datasets/nope/rows", map[string]any{"ids": []int{0}}, http.StatusNotFound},
		{"delete-empty", http.MethodDelete, "/v1/datasets/island/rows", map[string]any{"ids": []int{}}, http.StatusBadRequest},
		{"delete-out-of-range", http.MethodDelete, "/v1/datasets/island/rows", map[string]any{"ids": []int{99999}}, http.StatusBadRequest},
		{"versions-unknown-dataset", http.MethodGet, "/v1/datasets/nope/versions", nil, http.StatusNotFound},
		{"solve-unretained-version", http.MethodPost, "/v1/solve", solveRequest{Dataset: "island", R: 3, Version: 12345}, http.StatusGone},
		{"evaluate-unretained-version", http.MethodPost, "/v1/evaluate", evaluateRequest{Dataset: "island", Version: 12345, IDs: []int{0}}, http.StatusGone},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doJSON(t, tc.method, ts.URL+tc.url, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
		})
	}

	// A failed mutation publishes nothing.
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/island/versions", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("versions: %d %s", resp.StatusCode, body)
	}
	vl := decode[struct {
		Versions []versionInfo `json:"versions"`
	}](t, body)
	if len(vl.Versions) != 1 {
		t.Fatalf("rejected mutations grew the history: %+v", vl.Versions)
	}
}

// TestVersionZeroDatasetsArePinnable registers a derived (version-0)
// dataset — 0 is the wire sentinel for "current", so the registry must
// re-materialize it with a real version number or its retained history
// entry could never be pinned.
func TestVersionZeroDatasetsArePinnable(t *testing.T) {
	srv, ts := newTestServer(t)
	derived := dataset.SimIsland(xrand.New(2), 300).Clone() // Clone: version 0
	if derived.Version() != 0 {
		t.Fatal("test premise: Clone should be at version 0")
	}
	if err := srv.AddDataset("derived", derived); err != nil {
		t.Fatal(err)
	}
	cur, _ := srv.dataset("derived")
	v0 := cur.Version()
	if v0 == 0 {
		t.Fatal("registry kept an unpinnable version-0 dataset")
	}
	if cur.Fingerprint() != derived.Fingerprint() {
		t.Fatal("re-materialization changed the content fingerprint")
	}
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/derived/rows",
		map[string]any{"rows": [][]float64{{0.4, 0.6}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "derived", R: 3, Version: v0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinning the pre-mutation version: %d %s", resp.StatusCode, body)
	}
}

// TestVersionRetentionAgesOut mutates past the retention cap and checks old
// versions stop resolving with 410 while retained ones still solve.
func TestVersionRetentionAgesOut(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.RetainVersions = 3
	ds0, _ := srv.dataset("island")
	v0 := ds0.Version()
	for i := 0; i < 4; i++ {
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/island/rows",
			map[string]any{"rows": [][]float64{{0.5, 0.5}}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/island/versions", nil)
	vl := decode[struct {
		Versions []versionInfo `json:"versions"`
	}](t, body)
	if resp.StatusCode != http.StatusOK || len(vl.Versions) != 3 {
		t.Fatalf("versions after churn = %+v", vl.Versions)
	}
	// The initial version aged out.
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: 3, Version: v0})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("aged-out version solve: %d %s", resp.StatusCode, body)
	}
	// The oldest retained version still solves.
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: 3, Version: vl.Versions[0].Version})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retained version solve: %d %s", resp.StatusCode, body)
	}
}

// TestConcurrentMutateWhileSolve hammers the daemon with concurrent
// mutations, current-version solves, pinned solves, and version listings.
// Every solve must return a solution consistent with SOME retained version's
// content — verified by re-solving the pinned version — and nothing may
// race (the -race CI job runs this test).
func TestConcurrentMutateWhileSolve(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.RetainVersions = 16

	const (
		mutators = 2
		solvers  = 4
		rounds   = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, mutators*rounds+solvers*rounds)

	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if i%3 == 2 {
					// Delete a low row id: always in range (n >= 400).
					resp, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/nba/rows",
						map[string]any{"ids": []int{m*7 + i}})
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("mutator %d delete %d: %d %s", m, i, resp.StatusCode, body)
						return
					}
					continue
				}
				rows := [][]float64{{0.1 * float64(m+1), 0.2, 0.3, 0.4, 0.5}}
				resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/nba/rows",
					map[string]any{"rows": rows})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("mutator %d append %d: %d %s", m, i, resp.StatusCode, body)
					return
				}
			}
		}(m)
	}

	for w := 0; w < solvers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
					Dataset: "nba", R: 3 + w%3, Samples: 200, TimeoutMS: int64(20 * time.Second / time.Millisecond),
				})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("solver %d round %d: %d %s", w, i, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every retained version must be internally consistent: a pinned solve
	// answers, and repeating it pinned to the same version is identical.
	_, body := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/nba/versions", nil)
	vl := decode[struct {
		Versions []versionInfo `json:"versions"`
	}](t, body)
	if len(vl.Versions) < 2 {
		t.Fatalf("expected mutation history, got %+v", vl.Versions)
	}
	for _, vi := range vl.Versions {
		req := solveRequest{Dataset: "nba", R: 4, Samples: 200, Version: vi.Version}
		resp, body := postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pinned solve v%d: %d %s", vi.Version, resp.StatusCode, body)
		}
		first := decode[solveResponse](t, body)
		resp, body = postJSON(t, ts.URL+"/v1/solve", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pinned re-solve v%d: %d %s", vi.Version, resp.StatusCode, body)
		}
		second := decode[solveResponse](t, body)
		if !reflect.DeepEqual(first.IDs, second.IDs) || first.RankRegret != second.RankRegret {
			t.Fatalf("pinned solves on v%d diverged: %+v vs %+v", vi.Version, first.solveResult, second.solveResult)
		}
	}
	// Deterministic repair check: the current version's VecSet entry is warm
	// from the loop above, so one more append must be served by incremental
	// repair, not a rebuild.
	before := srv.eng.VecSetStats()
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/nba/rows",
		map[string]any{"rows": [][]float64{{0.01, 0.01, 0.01, 0.01, 0.01}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final append: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "nba", R: 4, Samples: 200})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final solve: %d %s", resp.StatusCode, body)
	}
	after := srv.eng.VecSetStats()
	if after.Repairs != before.Repairs+1 || after.Builds != before.Builds {
		t.Fatalf("final append solve was not an incremental repair: %+v -> %+v", before, after)
	}
}
