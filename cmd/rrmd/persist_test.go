package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/store"
	"github.com/rankregret/rankregret/internal/xrand"
)

// newDurableServer opens a store over dir and serves it.
func newDurableServer(t *testing.T, dir string, sync store.SyncPolicy) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Sync: sync})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(st, 0, 30*time.Second, 0, 0)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, st
}

type versionsResponse struct {
	Dataset  string        `json:"dataset"`
	Versions []versionInfo `json:"versions"`
}

func getVersions(t *testing.T, ts *httptest.Server, name string) versionsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/datasets/" + name + "/versions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out versionsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func mutateWorkload(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/datasets/nba/rows", map[string]any{
			"rows": [][]float64{{0.1 * float64(i), 0.9, 0.5, 0.4, 0.3}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/nba/rows", map[string]any{"ids": []int{1, 5}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, body)
	}
}

// TestPersistenceAcrossRestart is the tentpole acceptance path minus the
// kill -9 (covered by TestCrashImageRecovery and the CI smoke job): mutate
// through the HTTP API, restart the daemon over the same directory, and
// require (1) the retained version window back byte-identical — fingerprints
// asserted — with pinned-version solves still answered, (2) the warm-start
// hook to prime the VecSet tier so the first client solve after restart
// reuses instead of cold-building, and (3) that solve's answer to be
// byte-identical to the pre-restart one.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1, _ := newDurableServer(t, dir, store.SyncNever)
	if err := srv1.AddDataset("nba", dataset.SimNBA(xrand.New(1), 400)); err != nil {
		t.Fatal(err)
	}
	mutateWorkload(t, ts1)
	wantVersions := getVersions(t, ts1, "nba")
	if len(wantVersions.Versions) != 5 {
		t.Fatalf("expected 5 retained versions, got %+v", wantVersions)
	}
	pinned := wantVersions.Versions[1].Version

	solveReq := solveRequest{Dataset: "nba", R: 6, Algorithm: "hdrrm", MaxSamples: 800}
	resp, body := postJSON(t, ts1.URL+"/v1/solve", solveReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart solve: status %d: %s", resp.StatusCode, body)
	}
	var want solveResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Restart.
	srv2, ts2, st2 := newDurableServer(t, dir, store.SyncNever)
	if rec := st2.Recovery(); rec.Datasets != 1 || rec.TornTail {
		t.Fatalf("recovery: %+v", rec)
	}
	gotVersions := getVersions(t, ts2, "nba")
	if !reflect.DeepEqual(gotVersions, wantVersions) {
		t.Fatalf("recovered versions diverged:\ngot  %+v\nwant %+v", gotVersions, wantVersions)
	}

	// Warm-start (synchronously, so the assertion below is deterministic).
	srv2.WarmStart(st2.RecoveredNames())
	stats := srv2.eng.VecSetStats()
	if stats.Builds != 1 {
		t.Fatalf("warm-start built %d vector sets, want 1 (%+v)", stats.Builds, stats)
	}
	ws := srv2.warmStatus()
	if !strings.HasPrefix(ws["nba"], "warm") {
		t.Fatalf("warm status = %+v", ws)
	}

	// First client solve after restart: must hit the warm VecSet path and
	// reproduce the pre-restart answer bit for bit.
	resp, body = postJSON(t, ts2.URL+"/v1/solve", solveReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart solve: status %d: %s", resp.StatusCode, body)
	}
	var got solveResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) || got.RankRegret != want.RankRegret || got.Algorithm != want.Algorithm {
		t.Fatalf("post-restart solve diverged: got %+v want %+v", got.solveResult, want.solveResult)
	}
	stats = srv2.eng.VecSetStats()
	if stats.Builds != 1 {
		t.Fatalf("first post-restart solve cold-built a vector set (%+v)", stats)
	}
	if stats.Reuses+stats.Extensions == 0 {
		t.Fatalf("first post-restart solve missed the warm path (%+v)", stats)
	}

	// Version pinning survives the restart.
	resp, body = postJSON(t, ts2.URL+"/v1/solve", solveRequest{Dataset: "nba", R: 6, Version: pinned, Algorithm: "hdrrm", MaxSamples: 800})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pinned solve after restart: status %d: %s", resp.StatusCode, body)
	}
}

// TestCrashImageRecovery simulates kill -9 in-process: with -fsync always,
// every acked mutation is durable, so a byte-for-byte copy of the data
// directory taken WITHOUT any shutdown — plus garbage appended to the live
// segment, as a crash mid-write would leave — must recover every retained
// version with identical fingerprints and discard the torn tail cleanly.
func TestCrashImageRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1, st1 := newDurableServer(t, dir, store.SyncAlways)
	if err := srv1.AddDataset("nba", dataset.SimNBA(xrand.New(1), 300)); err != nil {
		t.Fatal(err)
	}
	mutateWorkload(t, ts1)
	want := getVersions(t, ts1, "nba")

	// Photograph the directory while the store is still open (no flush, no
	// snapshot, no close), then tear the live segment's tail.
	img := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(img, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	segs := st1.Status().Segments
	tail := filepath.Join(img, fmt.Sprintf("wal-%016x.log", segs[len(segs)-1].Seq))
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe}) // half a record header
	f.Close()

	_, ts2, st2 := newDurableServer(t, img, store.SyncNever)
	rec := st2.Recovery()
	if !rec.TornTail {
		t.Fatalf("torn tail not detected: %+v", rec)
	}
	if rec.RecordsSkipped != 0 {
		t.Fatalf("recovery skipped %d durable records", rec.RecordsSkipped)
	}
	got := getVersions(t, ts2, "nba")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("crash-image recovery diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestCompactMode exercises the offline `rrmd -compact` entry point
// end to end: it must recover, write a verified snapshot, prune the WAL to
// a minimal footprint, and leave the data readable.
func TestCompactMode(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1, _ := newDurableServer(t, dir, store.SyncNever)
	if err := srv1.AddDataset("nba", dataset.SimNBA(xrand.New(1), 200)); err != nil {
		t.Fatal(err)
	}
	mutateWorkload(t, ts1)
	want := getVersions(t, ts1, "nba")
	ts1.Close()
	srv1.Close()

	if err := run([]string{"-compact", "-data-dir", dir}); err != nil {
		t.Fatalf("rrmd -compact: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps, segs := 0, 0
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".snap"):
			snaps++
		case strings.HasSuffix(e.Name(), ".log"):
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after compact: %d snapshots, %d segments, want 1 and 1", snaps, segs)
	}

	_, ts2, st2 := newDurableServer(t, dir, store.SyncNever)
	if rec := st2.Recovery(); rec.RecordsReplayed != 0 {
		t.Fatalf("compacted store still replays %d records", rec.RecordsReplayed)
	}
	if got := getVersions(t, ts2, "nba"); !reflect.DeepEqual(got, want) {
		t.Fatalf("compacted registry diverged:\ngot  %+v\nwant %+v", got, want)
	}
	if err := run([]string{"-compact"}); err == nil {
		t.Fatal("-compact without -data-dir accepted")
	}
}

// TestRRMDChild is the subprocess body for the signal tests: it runs the
// real daemon main loop with flags taken from the environment. Skipped in
// normal runs.
func TestRRMDChild(t *testing.T) {
	if os.Getenv("RRMD_CHILD") != "1" {
		t.Skip("subprocess helper")
	}
	if err := run(strings.Split(os.Getenv("RRMD_ARGS"), "\n")); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// freeAddr reserves a listen address for the child daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// writeCSV writes an n x d CSV the child can -load.
func writeCSV(t *testing.T, path string, n, d int) {
	t.Helper()
	var b strings.Builder
	rng := xrand.New(7)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.6f", rng.Float64())
		}
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// startChild launches the daemon subprocess with the given flags and waits
// for it to serve. The returned function delivers SIGTERM and waits for a
// clean exit.
func startChild(t *testing.T, args []string) (base string, stop func()) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestRRMDChild$", "-test.v")
	cmd.Env = append(os.Environ(), "RRMD_CHILD=1", "RRMD_ARGS="+strings.Join(args, "\n"))
	var output strings.Builder
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	base = "http://" + args[1] // args are ["-addr", addr, ...]
	deadline := time.Now().Add(20 * time.Second)
	for {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up; output:\n%s", output.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	return base, func() {
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("daemon exited non-zero: %v\noutput:\n%s", err, output.String())
		}
	}
}

// TestRestartWithSameFlagsKeepsHistory guards the restart contract: a
// daemon relaunched with its usual -load flags must NOT re-register the
// seed CSV over the recovered version history — acked mutations and the
// version window survive a systemd-style identical-command-line restart.
func TestRestartWithSameFlagsKeepsHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	csv := filepath.Join(dir, "data.csv")
	writeCSV(t, csv, 50, 3)
	addr := freeAddr(t)
	args := []string{
		"-addr", addr,
		"-data-dir", filepath.Join(dir, "store"),
		"-fsync", "always",
		"-load", "cars=" + csv,
	}

	base, stop := startChild(t, args)
	resp, body := postJSON(t, base+"/v1/datasets/cars/rows", map[string]any{"rows": [][]float64{{0.5, 0.5, 0.5}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d: %s", resp.StatusCode, body)
	}
	get := func(url string) string {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				return b.String()
			}
		}
	}
	want := get(base + "/v1/datasets/cars/versions")
	if !strings.Contains(want, `"n":51`) {
		t.Fatalf("mutated version missing before restart: %s", want)
	}
	stop()

	// Same command line, same data dir: the recovered history must win.
	base, stop = startChild(t, args)
	defer stop()
	if got := get(base + "/v1/datasets/cars/versions"); got != want {
		t.Fatalf("restart with identical flags clobbered the history:\ngot  %s\nwant %s", got, want)
	}
}

// TestGracefulShutdownSignal is the satellite regression test: SIGTERM while
// a solve is in flight must let the solve finish (the client still gets its
// 200), flush + snapshot the store, and exit 0. A fresh open of the data
// directory then recovers replay-free.
func TestGracefulShutdownSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	csv := filepath.Join(dir, "data.csv")
	// Sized so the cold solve comfortably outlasts the 150ms signal delay
	// yet stays far under the request ceiling even race-instrumented.
	writeCSV(t, csv, 2500, 5)
	addr := freeAddr(t)
	args := []string{
		"-addr", addr,
		"-data-dir", filepath.Join(dir, "store"),
		"-fsync", "always",
		"-load", "big=" + csv,
		"-timeout", "150s",
		"-drain-timeout", "150s",
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestRRMDChild$", "-test.v")
	cmd.Env = append(os.Environ(), "RRMD_CHILD=1", "RRMD_ARGS="+strings.Join(args, "\n"))
	var output strings.Builder
	cmd.Stdout = &output
	cmd.Stderr = &output
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	deadline := time.Now().Add(15 * time.Second)
	for {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up; output:\n%s", output.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Launch a cold solve that takes long enough for the signal to land
	// mid-flight, then SIGTERM the daemon.
	type solveOut struct {
		status int
		body   string
		err    error
	}
	solveCh := make(chan solveOut, 1)
	go func() {
		resp, err := http.Post(base+"/v1/solve", "application/json",
			strings.NewReader(`{"dataset":"big","r":8,"algorithm":"hdrrm","max_samples":4000}`))
		if err != nil {
			solveCh <- solveOut{err: err}
			return
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		solveCh <- solveOut{status: resp.StatusCode, body: b.String()}
	}()
	time.Sleep(150 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}

	select {
	case out := <-solveCh:
		if out.err != nil {
			t.Fatalf("in-flight solve dropped during shutdown: %v\ndaemon output:\n%s", out.err, output.String())
		}
		if out.status != http.StatusOK {
			t.Fatalf("in-flight solve got status %d: %s", out.status, out.body)
		}
	case <-time.After(160 * time.Second):
		t.Fatal("in-flight solve never completed")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exited non-zero after SIGTERM: %v\noutput:\n%s", err, output.String())
	}

	// A graceful exit snapshots: reopening replays nothing and has the data.
	st, err := store.Open(store.Options{Dir: filepath.Join(dir, "store"), Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec := st.Recovery(); rec.Datasets != 1 || rec.RecordsReplayed != 0 || rec.TornTail {
		t.Fatalf("post-SIGTERM recovery not clean: %+v\ndaemon output:\n%s", rec, output.String())
	}
}
