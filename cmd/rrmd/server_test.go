package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rankregret/rankregret"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(0, 30*time.Second)
	if err := srv.AddDataset("island", dataset.SimIsland(xrand.New(1), 400)); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("nba", dataset.SimNBA(xrand.New(1), 800)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func TestSolveMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got solveResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := rankregret.Solve(dataset.SimIsland(xrand.New(1), 400), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) || got.RankRegret != want.RankRegret || !got.Exact {
		t.Errorf("daemon solve = %+v, library solve = %+v", got, want)
	}
	if got.Algorithm != "2drrm" {
		t.Errorf("auto algorithm = %q, want 2drrm", got.Algorithm)
	}
}

// TestConcurrentSolves hammers /v1/solve from 40 goroutines — beyond the
// acceptance bar of 32 — mixing cache-identical and distinct requests, and
// checks every response against the library answer computed directly.
func TestConcurrentSolves(t *testing.T) {
	_, ts := newTestServer(t)
	ds := dataset.SimIsland(xrand.New(1), 400)
	want := make(map[int][]int)
	for r := 2; r <= 6; r++ {
		sol, err := rankregret.Solve(ds, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[r] = sol.IDs
	}

	const workers = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		r := 2 + i%5
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf, _ := json.Marshal(solveRequest{Dataset: "island", R: r})
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var got solveResponse
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if !reflect.DeepEqual(got.IDs, want[r]) {
				errs <- fmt.Errorf("r=%d: ids %v, want %v", r, got.IDs, want[r])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSolveCache verifies a re-solve with identical parameters is answered
// from the engine cache: the hit counter moves and the IDs are identical.
func TestSolveCache(t *testing.T) {
	_, ts := newTestServer(t)
	req := solveRequest{Dataset: "nba", R: 8, Algorithm: "hdrrm", MaxSamples: 2000}

	resp1, body1 := postJSON(t, ts.URL+"/v1/solve", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", resp1.StatusCode, body1)
	}
	var first solveResponse
	if err := json.Unmarshal(body1, &first); err != nil {
		t.Fatal(err)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/solve", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second solve: status %d: %s", resp2.StatusCode, body2)
	}
	var second solveResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.IDs, second.IDs) {
		t.Errorf("cached re-solve ids %v != %v", second.IDs, first.IDs)
	}
	if second.Cache.Hits <= first.Cache.Hits {
		t.Errorf("cache hits did not increase: first %+v, second %+v", first.Cache, second.Cache)
	}
}

// TestSolveTimeout asserts a tiny per-request timeout aborts a large HDRRM
// solve long before it could complete.
func TestSolveTimeout(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.AddDataset("weather", dataset.SimWeather(xrand.New(1), 120000)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Dataset: "weather", R: 10, Algorithm: "hdrrm", TimeoutMS: 50,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed > 10*time.Second {
		t.Errorf("timed-out solve took %v, want well under the full solve time", elapsed)
	}
}

func TestUploadListEvaluate(t *testing.T) {
	_, ts := newTestServer(t)
	const csvData = "a,b\n1,9\n9,1\n6,7\n2,2\n"
	resp, err := http.Post(ts.URL+"/v1/datasets?name=tiny&header=1", "text/csv", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	listResp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(list.Datasets))
	for i, d := range list.Datasets {
		names[i] = d.Name
	}
	if !reflect.DeepEqual(names, []string{"island", "nba", "tiny"}) {
		t.Errorf("dataset names = %v", names)
	}

	sResp, sBody := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "tiny", R: 2, EvalSamples: 2000})
	if sResp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", sResp.StatusCode, sBody)
	}
	var sol solveResponse
	if err := json.Unmarshal(sBody, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Estimated == nil {
		t.Fatal("eval_samples > 0 should include an estimate")
	}

	eResp, eBody := postJSON(t, ts.URL+"/v1/evaluate", evaluateRequest{Dataset: "tiny", IDs: sol.IDs, Samples: 2000})
	if eResp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", eResp.StatusCode, eBody)
	}
	var ev struct {
		RankRegret int `json:"rank_regret"`
	}
	if err := json.Unmarshal(eBody, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.RankRegret < 1 || ev.RankRegret > 4 {
		t.Errorf("evaluated rank-regret %d out of range", ev.RankRegret)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		req    solveRequest
		status int
	}{
		{"both r and k", solveRequest{Dataset: "island", R: 5, K: 5}, http.StatusBadRequest},
		{"neither r nor k", solveRequest{Dataset: "island"}, http.StatusBadRequest},
		{"unknown dataset", solveRequest{Dataset: "nope", R: 5}, http.StatusNotFound},
		{"bad space", solveRequest{Dataset: "island", R: 5, Space: "sphere:1"}, http.StatusBadRequest},
		{"unknown algorithm", solveRequest{Dataset: "island", R: 5, Algorithm: "quantum"}, http.StatusUnprocessableEntity},
		{"2d-only on 5d", solveRequest{Dataset: "nba", R: 5, Algorithm: "2drrm"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/solve", tc.req)
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
		})
	}
}
