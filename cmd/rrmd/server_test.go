package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rankregret/rankregret"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/xrand"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(0, 30*time.Second, 0, 0)
	t.Cleanup(srv.Close)
	if err := srv.AddDataset("island", dataset.SimIsland(xrand.New(1), 400)); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("nba", dataset.SimNBA(xrand.New(1), 800)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	return doJSON(t, http.MethodPost, url, body)
}

func TestSolveMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "island", R: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got solveResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, err := rankregret.Solve(dataset.SimIsland(xrand.New(1), 400), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) || got.RankRegret != want.RankRegret || !got.Exact {
		t.Errorf("daemon solve = %+v, library solve = %+v", got, want)
	}
	if got.Algorithm != "2drrm" {
		t.Errorf("auto algorithm = %q, want 2drrm", got.Algorithm)
	}
}

// Solves at different parallelism settings must return identical answers —
// and must share one cache entry, since parallelism is not part of the key.
func TestSolveParallelismIdenticalAndCacheShared(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.SolveParallelism = 2 // server default; the explicit fields override it
	var answers []solveResponse
	for ci, par := range []*int{nil, intp(0), intp(1), intp(8)} {
		resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "nba", R: 7, Parallelism: par})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parallelism case %d: status %d: %s", ci, resp.StatusCode, body)
		}
		var got solveResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		answers = append(answers, got)
	}
	for _, got := range answers[1:] {
		if !reflect.DeepEqual(got.IDs, answers[0].IDs) || got.RankRegret != answers[0].RankRegret {
			t.Errorf("parallelism changed the answer: %+v vs %+v", got, answers[0])
		}
	}
	if last := answers[len(answers)-1].Cache; last.Hits < 3 {
		t.Errorf("cache hits = %d, want >= 3 (parallelism must not fragment the cache key)", last.Hits)
	}
}

func intp(i int) *int { return &i }

// TestConcurrentSolves hammers /v1/solve from 40 goroutines — beyond the
// acceptance bar of 32 — mixing cache-identical and distinct requests, and
// checks every response against the library answer computed directly.
func TestConcurrentSolves(t *testing.T) {
	_, ts := newTestServer(t)
	ds := dataset.SimIsland(xrand.New(1), 400)
	want := make(map[int][]int)
	for r := 2; r <= 6; r++ {
		sol, err := rankregret.Solve(ds, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[r] = sol.IDs
	}

	const workers = 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		r := 2 + i%5
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf, _ := json.Marshal(solveRequest{Dataset: "island", R: r})
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var got solveResponse
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if !reflect.DeepEqual(got.IDs, want[r]) {
				errs <- fmt.Errorf("r=%d: ids %v, want %v", r, got.IDs, want[r])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSolveCache verifies a re-solve with identical parameters is answered
// from the engine cache: the hit counter moves and the IDs are identical.
func TestSolveCache(t *testing.T) {
	_, ts := newTestServer(t)
	req := solveRequest{Dataset: "nba", R: 8, Algorithm: "hdrrm", MaxSamples: 2000}

	resp1, body1 := postJSON(t, ts.URL+"/v1/solve", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", resp1.StatusCode, body1)
	}
	var first solveResponse
	if err := json.Unmarshal(body1, &first); err != nil {
		t.Fatal(err)
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/solve", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second solve: status %d: %s", resp2.StatusCode, body2)
	}
	var second solveResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.IDs, second.IDs) {
		t.Errorf("cached re-solve ids %v != %v", second.IDs, first.IDs)
	}
	if second.Cache.Hits <= first.Cache.Hits {
		t.Errorf("cache hits did not increase: first %+v, second %+v", first.Cache, second.Cache)
	}
}

// TestSolveTimeout asserts a tiny per-request timeout aborts a large HDRRM
// solve long before it could complete.
func TestSolveTimeout(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.AddDataset("weather", dataset.SimWeather(xrand.New(1), 120000)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{
		Dataset: "weather", R: 10, Algorithm: "hdrrm", TimeoutMS: 50,
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed > 10*time.Second {
		t.Errorf("timed-out solve took %v, want well under the full solve time", elapsed)
	}
}

func TestUploadListEvaluate(t *testing.T) {
	_, ts := newTestServer(t)
	const csvData = "a,b\n1,9\n9,1\n6,7\n2,2\n"
	resp, err := http.Post(ts.URL+"/v1/datasets?name=tiny&header=1", "text/csv", strings.NewReader(csvData))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}

	listResp, err := http.Get(ts.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(list.Datasets))
	for i, d := range list.Datasets {
		names[i] = d.Name
	}
	if !reflect.DeepEqual(names, []string{"island", "nba", "tiny"}) {
		t.Errorf("dataset names = %v", names)
	}

	sResp, sBody := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "tiny", R: 2, EvalSamples: 2000})
	if sResp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d: %s", sResp.StatusCode, sBody)
	}
	var sol solveResponse
	if err := json.Unmarshal(sBody, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Estimated == nil {
		t.Fatal("eval_samples > 0 should include an estimate")
	}

	eResp, eBody := postJSON(t, ts.URL+"/v1/evaluate", evaluateRequest{Dataset: "tiny", IDs: sol.IDs, Samples: 2000})
	if eResp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", eResp.StatusCode, eBody)
	}
	var ev struct {
		RankRegret int `json:"rank_regret"`
	}
	if err := json.Unmarshal(eBody, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.RankRegret < 1 || ev.RankRegret > 4 {
		t.Errorf("evaluated rank-regret %d out of range", ev.RankRegret)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		req    solveRequest
		status int
	}{
		{"both r and k", solveRequest{Dataset: "island", R: 5, K: 5}, http.StatusBadRequest},
		{"neither r nor k", solveRequest{Dataset: "island"}, http.StatusBadRequest},
		{"unknown dataset", solveRequest{Dataset: "nope", R: 5}, http.StatusNotFound},
		{"bad space", solveRequest{Dataset: "island", R: 5, Space: "sphere:1"}, http.StatusBadRequest},
		{"unknown algorithm", solveRequest{Dataset: "island", R: 5, Algorithm: "quantum"}, http.StatusUnprocessableEntity},
		{"2d-only on 5d", solveRequest{Dataset: "nba", R: 5, Algorithm: "2drrm"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/solve", tc.req)
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
		})
	}
}

// canonicalResult reduces any solve-shaped JSON (a /v1/solve response, a
// batch item, or a job result) to the marshaled stable solveResult subset,
// so results from different endpoints can be compared byte-for-byte.
func canonicalResult(t *testing.T, raw []byte) []byte {
	t.Helper()
	var res solveResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("unmarshal result: %v (%s)", err, raw)
	}
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// goldenRequests is the mixed workload the batch/jobs equivalence tests
// replay: both datasets, both problem modes, auto and explicit algorithms.
func goldenRequests() []solveRequest {
	return []solveRequest{
		{Dataset: "island", R: 5},
		{Dataset: "island", R: 7},
		{Dataset: "nba", R: 6, Algorithm: "hdrrm", MaxSamples: 800},
		{Dataset: "nba", R: 8, Algorithm: "hdrrm", MaxSamples: 800},
		{Dataset: "nba", K: 25, Algorithm: "hdrrm", MaxSamples: 800},
		{Dataset: "island", K: 3},
	}
}

// sequentialGolden answers each request through plain /v1/solve and returns
// the canonical result bytes.
func sequentialGolden(t *testing.T, url string, reqs []solveRequest) [][]byte {
	t.Helper()
	out := make([][]byte, len(reqs))
	for i, sr := range reqs {
		resp, body := postJSON(t, url+"/v1/solve", sr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sequential solve %d: status %d: %s", i, resp.StatusCode, body)
		}
		out[i] = canonicalResult(t, body)
	}
	return out
}

// TestBatchMatchesSequentialSolve is the golden equivalence check for
// POST /v1/solve/batch: every batch item must be byte-identical (on the
// stable result subset) to the corresponding sequential /v1/solve call.
func TestBatchMatchesSequentialSolve(t *testing.T) {
	_, ts := newTestServer(t)
	reqs := goldenRequests()
	want := sequentialGolden(t, ts.URL, reqs)

	resp, body := postJSON(t, ts.URL+"/v1/solve/batch", map[string]any{"requests": reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batch struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Count != len(reqs) || len(batch.Results) != len(reqs) {
		t.Fatalf("batch answered %d/%d items, want %d", batch.Count, len(batch.Results), len(reqs))
	}
	for i, raw := range batch.Results {
		var item struct {
			Index int    `json:"index"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &item); err != nil {
			t.Fatal(err)
		}
		if item.Error != "" {
			t.Fatalf("batch item %d failed: %s", i, item.Error)
		}
		if item.Index != i {
			t.Errorf("batch item %d carries index %d", i, item.Index)
		}
		if got := canonicalResult(t, raw); !bytes.Equal(got, want[i]) {
			t.Errorf("batch item %d = %s, sequential = %s", i, got, want[i])
		}
	}
}

// waitForJob polls GET /v1/jobs/{id} until the job leaves the queued and
// running states.
func waitForJob(t *testing.T, url, id string) jobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == engine.JobDone || st.State == engine.JobFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsMatchSequentialSolve is the golden equivalence check for the
// async path: POST /v1/jobs + GET /v1/jobs/{id} must produce results
// byte-identical to sequential /v1/solve calls.
func TestJobsMatchSequentialSolve(t *testing.T) {
	_, ts := newTestServer(t)
	reqs := goldenRequests()
	want := sequentialGolden(t, ts.URL, reqs)

	ids := make([]string, len(reqs))
	for i, sr := range reqs {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", sr)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job submit %d: status %d: %s", i, resp.StatusCode, body)
		}
		var st jobStatusResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.ID == "" || (st.State != engine.JobQueued && st.State != engine.JobRunning) {
			t.Fatalf("job submit %d returned %+v", i, st)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		st := waitForJob(t, ts.URL, id)
		if st.State != engine.JobDone || st.Result == nil {
			t.Fatalf("job %s = %+v, want done with a result", id, st)
		}
		raw, err := json.Marshal(st.Result)
		if err != nil {
			t.Fatal(err)
		}
		if got := canonicalResult(t, raw); !bytes.Equal(got, want[i]) {
			t.Errorf("job %d result = %s, sequential = %s", i, got, want[i])
		}
	}
}

// TestJobCancelEndpoint cancels an expensive job through DELETE and checks
// it lands in the failed state with a cancellation error.
func TestJobCancelEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	// A dataset large enough that the solve cannot finish before the
	// cancellation lands.
	if err := srv.AddDataset("weather", dataset.SimWeather(xrand.New(1), 4000)); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/jobs", solveRequest{Dataset: "weather", R: 10, Algorithm: "hdrrm"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var st jobStatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	delReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", delResp.StatusCode)
	}
	final := waitForJob(t, ts.URL, st.ID)
	if final.State != engine.JobFailed || !strings.Contains(final.Error, "cancel") {
		t.Errorf("cancelled job = %+v, want failed with a cancellation error", final)
	}
}

// TestMetricsEndpoint checks GET /v1/metrics surfaces both cache tiers and
// the scheduler, and that an r-sweep over one dataset registers as a single
// VecSet build.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for _, r := range []int{6, 7, 8} {
		resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{Dataset: "nba", R: r, Algorithm: "hdrrm", MaxSamples: 800})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve r=%d: status %d: %s", r, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Engine    engine.Metrics        `json:"engine"`
		Scheduler engine.SchedulerStats `json:"scheduler"`
		Datasets  int                   `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Engine.VecSets.Builds != 1 {
		t.Errorf("r-sweep built %d vector sets, want 1 (stats: %+v)", metrics.Engine.VecSets.Builds, metrics.Engine.VecSets)
	}
	if metrics.Engine.VecSets.Reuses < 2 {
		t.Errorf("r-sweep reuses = %d, want >= 2", metrics.Engine.VecSets.Reuses)
	}
	if metrics.Engine.Solutions.Misses != 3 {
		t.Errorf("solution misses = %d, want 3", metrics.Engine.Solutions.Misses)
	}
	if metrics.Scheduler.Workers < 1 || metrics.Scheduler.QueueCap < 1 {
		t.Errorf("scheduler stats not populated: %+v", metrics.Scheduler)
	}
	if metrics.Datasets != 2 {
		t.Errorf("datasets = %d, want 2", metrics.Datasets)
	}
}

// TestBatchPartialValidation checks that invalid batch items are answered
// inline without sinking the valid ones.
func TestBatchPartialValidation(t *testing.T) {
	_, ts := newTestServer(t)
	reqs := []solveRequest{
		{Dataset: "nosuch", R: 5},
		{Dataset: "island", R: 4},
		{Dataset: "island"}, // neither r nor k
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve/batch", map[string]any{"requests": reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batch struct {
		Results []struct {
			Index int    `json:"index"`
			IDs   []int  `json:"ids"`
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(batch.Results))
	}
	if !strings.Contains(batch.Results[0].Error, "unknown dataset") {
		t.Errorf("item 0 error = %q, want unknown dataset", batch.Results[0].Error)
	}
	if batch.Results[1].Error != "" || len(batch.Results[1].IDs) == 0 {
		t.Errorf("valid item 1 failed: %+v", batch.Results[1])
	}
	if !strings.Contains(batch.Results[2].Error, "exactly one of r and k") {
		t.Errorf("item 2 error = %q, want r/k validation", batch.Results[2].Error)
	}
}
