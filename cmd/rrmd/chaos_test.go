package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/faultfs"
	"github.com/rankregret/rankregret/internal/loadgen"
	"github.com/rankregret/rankregret/internal/obs/obstest"
	"github.com/rankregret/rankregret/internal/store"
	"github.com/rankregret/rankregret/internal/xrand"
)

// newChaosServer boots an in-process rrmd over a durable store whose disk
// operations route through fs (normally a faultfs.Injector, armed by the
// test after this setup traffic has passed). Heal backoff is tightened so
// recovery happens on test timescales.
func newChaosServer(t *testing.T, dir string, fs faultfs.FS) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{
		Dir:            dir,
		Sync:           store.SyncAlways,
		FS:             fs,
		HealBackoff:    5 * time.Millisecond,
		HealMaxBackoff: 50 * time.Millisecond,
		Logger:         obstest.Logger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(st, 0, 30*time.Second, 0, 0)
	t.Cleanup(srv.Close)
	// Generous retention so heavy chaos mutation never ages out the versions
	// pinned-read events are about to solve against.
	srv.RetainVersions = 64
	if err := srv.AddDataset("island", dataset.SimIsland(xrand.New(1), 200)); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("nba", dataset.SimNBA(xrand.New(1), 200)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, st
}

// waitStoreHealthy blocks until the store's self-healing loop reports
// healthy, or fails the test.
func waitStoreHealthy(t *testing.T, st *store.Store) store.Health {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := st.Health()
		if h.State == store.HealthHealthy {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("store never healed: %+v", h)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// getHealthz fetches /healthz without treating 503 as a transport error.
func getHealthz(t *testing.T, ts *httptest.Server) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestChaosMidLoadFaultServesAndHeals is the fault-injection acceptance run:
// open-loop load (solves, pinned reads, mutations) plays against an
// in-process daemon while every WAL fsync fails for the first ~600ms of the
// window, then the fault clears mid-run. The bar:
//
//   - zero unexpected 5xx — mutations refused while degraded come back as
//     classified 503 sheds, never 500s;
//   - reads keep completing throughout (the solve path never rejects or
//     errors);
//   - the store converges back to healthy once the fault clears, with the
//     self-heal counters showing it did the work;
//   - and a clean restart over the same directory reproduces the surviving
//     state exactly — nothing acked was lost.
func TestChaosMidLoadFaultServesAndHeals(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.Disk, 1)
	srv, ts, st := newChaosServer(t, dir, inj)

	tr := servingTrace(t, loadgen.Config{
		Scenario: loadgen.ScenarioSteady,
		Seed:     23,
		Duration: 2 * time.Second,
		Rate:     50,
		Mix:      loadgen.Mix{Solve: 0.5, Mutate: 0.4, Pinned: 0.1},
	})

	// Every WAL fsync fails until the fault "clears" mid-load. The healer
	// keeps retrying against the same broken disk (each reopened segment
	// wedges again on its next sync), so the store spends a solid slice of
	// the run degraded while solve traffic flows.
	inj.Arm(faultfs.Rule{Op: faultfs.OpSync, Path: "wal-", Err: syscall.EIO})
	cleared := make(chan struct{})
	go func() {
		defer close(cleared)
		time.Sleep(600 * time.Millisecond)
		inj.Clear()
	}()

	rep, err := loadgen.Run(context.Background(), tr, loadgen.RunConfig{
		BaseURL:     ts.URL,
		SampleEvery: -1,
		Logf:        t.Logf,
	})
	<-cleared
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unexpected5xx != 0 {
		t.Fatalf("chaos run produced %d unexpected 5xx responses: %+v", rep.Unexpected5xx, rep.PerKind)
	}
	if rep.OK == 0 {
		t.Fatalf("chaos run completed nothing: %+v", rep)
	}
	for _, kind := range []string{string(loadgen.KindSolve), string(loadgen.KindPinned)} {
		kr := rep.PerKind[kind]
		if kr.Errors != 0 || kr.Rejected != 0 {
			t.Fatalf("%s traffic suffered during degradation (errors=%d rejected=%d); reads must keep serving", kind, kr.Errors, kr.Rejected)
		}
		if kr.OK == 0 {
			t.Fatalf("no %s request completed: %+v", kind, rep.PerKind)
		}
	}
	if rep.RejectedDegraded == 0 {
		t.Fatalf("no mutation was refused as degraded during a 600ms fault window: %+v", rep)
	}
	if got := rep.PerKind[string(loadgen.KindMutate)]; got.RejectedDegraded != rep.RejectedDegraded {
		t.Fatalf("degraded rejections leaked outside the mutate kind: %+v", rep.PerKind)
	}
	if rep.PerKind[string(loadgen.KindMutate)].OK == 0 {
		t.Fatalf("no mutation succeeded after the fault cleared: %+v", rep.PerKind)
	}

	h := waitStoreHealthy(t, st)
	if h.HealSuccesses == 0 || h.HealAttempts == 0 {
		t.Fatalf("store healthy but heal counters empty: %+v", h)
	}
	t.Logf("chaos: offered=%d ok=%d degraded-rejects=%d heals=%d/%d",
		rep.Offered, rep.OK, rep.RejectedDegraded, h.HealSuccesses, h.HealAttempts)

	// Post-heal the store accepts writes again.
	resp, body := postJSON(t, ts.URL+"/v1/datasets/nba/rows", map[string]any{
		"rows": [][]float64{{0.5, 0.5, 0.5, 0.5, 0.5}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-heal append: status %d: %s", resp.StatusCode, body)
	}

	// Restart over the same directory: every version the healed store
	// acknowledged must come back byte-identical.
	wantNBA := getVersions(t, ts, "nba")
	wantIsland := getVersions(t, ts, "island")
	ts.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Reopen without re-registering: startup loads would durably replace the
	// recovered histories (the daemon's skipRecovered guard exists for the
	// same reason).
	_, ts2, st2 := newDurableServer(t, dir, store.SyncAlways)
	if rec := st2.Recovery(); rec.Datasets != 2 || rec.TornTail {
		t.Fatalf("post-chaos recovery: %+v", rec)
	}
	if got := getVersions(t, ts2, "nba"); !reflect.DeepEqual(got, wantNBA) {
		t.Fatalf("nba versions diverged after restart:\ngot  %+v\nwant %+v", got, wantNBA)
	}
	if got := getVersions(t, ts2, "island"); !reflect.DeepEqual(got, wantIsland) {
		t.Fatalf("island versions diverged after restart:\ngot  %+v\nwant %+v", got, wantIsland)
	}
}

// TestChaosDegradedEndpoints pins the wire shape of degraded mode with a
// fault that never clears on its own: mutations 503 with a machine-readable
// reason and Retry-After, solves stay 200, and /healthz, /v1/metrics, and
// /v1/store/status all report the degraded state. Clearing the fault brings
// everything back without a restart.
func TestChaosDegradedEndpoints(t *testing.T) {
	inj := faultfs.New(faultfs.Disk, 1)
	srv, ts, st := newChaosServer(t, t.TempDir(), inj)
	_ = srv
	inj.Arm(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal-", Err: syscall.ENOSPC})

	appendRow := func() (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/v1/datasets/island/rows", map[string]any{
			"rows": [][]float64{{0.4, 0.6}},
		})
	}
	// First failing mutation trips the fault; it and every subsequent one
	// must 503 with reason "degraded" and a Retry-After hint.
	for i := 0; i < 2; i++ {
		resp, body := appendRow()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("mutation %d on faulted store: status %d (%s), want 503", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("degraded 503 %d missing Retry-After", i)
		}
		if !strings.Contains(string(body), `"reason":"degraded"`) {
			t.Fatalf("degraded 503 %d body lacks machine-readable reason: %s", i, body)
		}
	}

	// Reads keep serving out of memory.
	resp, body := postJSON(t, ts.URL+"/v1/solve", map[string]any{"dataset": "island", "r": 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve while degraded: status %d: %s", resp.StatusCode, body)
	}

	// /healthz flips to 503 with the state machine's reason.
	status, hz := getHealthz(t, ts)
	if status != http.StatusServiceUnavailable || hz["state"] != "degraded" || hz["reason"] != store.ReasonWALFailed {
		t.Fatalf("degraded healthz = %d %+v", status, hz)
	}
	if hz["ok"] != false {
		t.Fatalf("degraded healthz ok = %v", hz["ok"])
	}

	// The degraded state and heal counters surface in metrics and status.
	var metrics struct {
		Store store.Summary `json:"store"`
	}
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil)
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics decode: %v (%s)", err, body)
	}
	if metrics.Store.State != store.HealthDegraded || metrics.Store.Reason != store.ReasonWALFailed {
		t.Fatalf("metrics store summary = %+v, want degraded/wal_failed", metrics.Store)
	}
	var ss struct {
		Store struct {
			Health store.Health `json:"health"`
		} `json:"store"`
	}
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/store/status", nil)
	if err := json.Unmarshal(body, &ss); err != nil {
		t.Fatalf("store status decode: %v (%s)", err, body)
	}
	if ss.Store.Health.State != store.HealthDegraded || ss.Store.Health.Detail == "" {
		t.Fatalf("store status health = %+v, want degraded with detail", ss.Store.Health)
	}

	// Fault clears: the healer restores service, no restart needed.
	inj.Clear()
	h := waitStoreHealthy(t, st)
	if h.HealSuccesses == 0 {
		t.Fatalf("healthy without a recorded heal: %+v", h)
	}
	if resp, body := appendRow(); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-heal append: status %d: %s", resp.StatusCode, body)
	}
	if status, hz := getHealthz(t, ts); status != http.StatusOK || hz["ok"] != true || hz["state"] != "healthy" {
		t.Fatalf("post-heal healthz = %d %+v", status, hz)
	}
}

// TestHealthzDrainingState covers the scheduler half of /healthz: a server
// whose scheduler has begun draining (store still fine) reports 503
// {"state":"draining"} so load balancers stop routing to it during shutdown.
func TestHealthzDrainingState(t *testing.T) {
	srv, ts := newServingServer(t, 0, 0, 0, engine.FIFO{})
	if err := srv.sched.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	status, hz := getHealthz(t, ts)
	if status != http.StatusServiceUnavailable || hz["state"] != "draining" || hz["ok"] != false {
		t.Fatalf("draining healthz = %d %+v", status, hz)
	}
	if hz["reason"] == nil || hz["reason"] == "" {
		t.Fatalf("draining healthz missing reason: %+v", hz)
	}
}
