package main

import (
	"context"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/loadgen"
	"github.com/rankregret/rankregret/internal/obs/obstest"
	"github.com/rankregret/rankregret/internal/xrand"
)

// newServingServer boots an in-process rrmd with two small datasets and the
// given pool/queue shape, wrapped in an httptest listener.
func newServingServer(t *testing.T, cacheSize, workers, queueCap int, policy engine.Policy) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cacheSize, 30*time.Second, workers, queueCap)
	t.Cleanup(srv.Close)
	srv.SetPolicy(policy)
	if err := srv.AddDataset("island", dataset.SimIsland(xrand.New(1), 200)); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddDataset("nba", dataset.SimNBA(xrand.New(1), 200)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// servingTrace generates a short deterministic trace across both datasets.
// RMin 5 covers SimNBA's dimensionality (the hdrrm family needs r >= the
// dataset's basis size, which can reach d = 5).
func servingTrace(t *testing.T, cfg loadgen.Config) *loadgen.Trace {
	t.Helper()
	cfg.Datasets = []string{"island", "nba"}
	cfg.RMin = 5
	if cfg.RMax == 0 {
		cfg.RMax = 7
	}
	tr, err := loadgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestServingSteadySmoke drives a short steady scenario — the full request
// mix, mutations included — against a default-shaped server and checks the
// run is healthy: work completed, nothing but deliberate sheds failed, and
// the metrics timeline was captured.
func TestServingSteadySmoke(t *testing.T) {
	_, ts := newServingServer(t, 0, 0, 0, engine.Affinity{})
	tr := servingTrace(t, loadgen.Config{
		Scenario: loadgen.ScenarioSteady,
		Seed:     11,
		Duration: 2 * time.Second,
		Rate:     40,
	})
	rep, err := loadgen.Run(context.Background(), tr, loadgen.RunConfig{
		BaseURL:     ts.URL,
		SampleEvery: 100 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 || rep.ThroughputRPS <= 0 {
		t.Fatalf("steady run completed nothing: %+v", rep)
	}
	if rep.Errors > 0 {
		t.Fatalf("steady run at low rate had %d errors (first kinds: %+v)", rep.Errors, rep.PerKind)
	}
	if rep.Unexpected5xx != 0 {
		t.Fatalf("unexpected 5xx responses: %d", rep.Unexpected5xx)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("metrics timeline is empty")
	}
	if rep.Policy != "affinity" {
		t.Fatalf("report policy = %q, want affinity", rep.Policy)
	}
	if rep.PerKind[string(loadgen.KindMutate)].OK == 0 || rep.PerKind[string(loadgen.KindPinned)].OK == 0 {
		t.Fatalf("mix did not exercise mutate/pinned paths: %+v", rep.PerKind)
	}
}

// TestServingOverloadBurst is the overload regression test: a burst far over
// capacity against a deliberately tiny pool (1 worker, queue of 2, caches
// off so every solve costs real work) must shed with prompt 429s while the
// accepted requests stay bounded, no unexpected 5xx appears, and the process
// returns to its baseline goroutine count when the storm passes.
func TestServingOverloadBurst(t *testing.T) {
	obstest.ExpectNoGoroutineLeak(t, 3)
	srv, ts := newServingServer(t, -1, 1, 2, engine.Affinity{})
	srv.QueueWait = 250 * time.Millisecond

	tr := servingTrace(t, loadgen.Config{
		Scenario:  loadgen.ScenarioBurst,
		Seed:      13,
		Duration:  2 * time.Second,
		Rate:      30,
		BurstRate: 300, // far beyond what 1 uncached worker can absorb
		// Solve-only pressure: every event competes for the same queue.
		Mix: loadgen.Mix{Solve: 1},
	})
	rep, err := loadgen.Run(context.Background(), tr, loadgen.RunConfig{
		BaseURL:        ts.URL,
		RequestTimeout: 10 * time.Second,
		SampleEvery:    100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rejected == 0 {
		t.Fatalf("burst at 10x capacity shed nothing: %+v", rep)
	}
	if rep.OK == 0 {
		t.Fatalf("burst run completed nothing: %+v", rep)
	}
	if rep.Unexpected5xx != 0 {
		t.Fatalf("unexpected 5xx responses under overload: %d", rep.Unexpected5xx)
	}
	// Sheds must be prompt: a 429 is the server refusing work, not queuing
	// it. The bound is generous for CI noise; the real p99 is milliseconds.
	if rep.RejectLatency.P99 > 2000 {
		t.Fatalf("reject p99 = %.1fms; overload rejections must be fast", rep.RejectLatency.P99)
	}
	// Accepted requests are bounded by queue-wait + run budget, not by the
	// whole storm's length.
	if rep.Latency.P99 > 25000 {
		t.Fatalf("accepted p99 = %.1fms; queued work must keep its bounded budget", rep.Latency.P99)
	}

	// Drain; the obstest leak check at the top of the test verifies (after
	// the cleanups close the server) that the storm's goroutines wind down.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("post-storm drain: %v", err)
	}
	ts.Close()
}

// TestServingPolicyEquivalence replays one solve/sweep/pinned trace (no
// mutations, so both servers hold identical data throughout) against a FIFO
// server and an affinity server below capacity: the affinity policy may
// reorder queue service, but every request must return the identical
// solution.
func TestServingPolicyEquivalence(t *testing.T) {
	tr := servingTrace(t, loadgen.Config{
		Scenario: loadgen.ScenarioSteady,
		Seed:     17,
		Duration: 1500 * time.Millisecond,
		Rate:     40,
		Mix:      loadgen.Mix{Solve: 0.6, Sweep: 0.2, Pinned: 0.2},
	})
	type key struct {
		Event, Item int
	}
	collect := func(policy engine.Policy) map[key]loadgen.SolveOutcome {
		var mu sync.Mutex
		got := map[key]loadgen.SolveOutcome{}
		_, ts := newServingServer(t, 0, 2, 64, policy)
		rep, err := loadgen.Run(context.Background(), tr, loadgen.RunConfig{
			BaseURL:     ts.URL,
			SampleEvery: -1,
			Logf:        t.Logf,
			OnResult: func(o loadgen.SolveOutcome) {
				mu.Lock()
				got[key{o.Event, o.Item}] = o
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Rejected != 0 || rep.Errors != 0 {
			t.Fatalf("below-capacity run shed or failed work (%d rejected, %d errors); equivalence needs full completion", rep.Rejected, rep.Errors)
		}
		return got
	}
	fifo := collect(engine.FIFO{})
	aff := collect(engine.Affinity{})
	if len(fifo) == 0 {
		t.Fatal("no results captured")
	}
	if len(fifo) != len(aff) {
		t.Fatalf("result counts differ: fifo %d, affinity %d", len(fifo), len(aff))
	}
	for k, f := range fifo {
		a, ok := aff[k]
		if !ok {
			t.Fatalf("affinity run missing result for event %d item %d", k.Event, k.Item)
		}
		if !reflect.DeepEqual(f, a) {
			t.Fatalf("results diverge at event %d item %d:\n  fifo     %+v\n  affinity %+v", k.Event, k.Item, f, a)
		}
	}
}

// gate is a registered blocking solver the serving tests use to wedge the
// worker pool deterministically over HTTP.
var gate = struct {
	started chan struct{}
	release chan struct{}
}{started: make(chan struct{}, 16), release: make(chan struct{})}

type gateSolver struct{}

func (gateSolver) Name() string { return "test-gate" }

func (gateSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts engine.Options) (*engine.Solution, error) {
	select {
	case gate.started <- struct{}{}:
	default:
	}
	select {
	case <-gate.release:
		return &engine.Solution{IDs: []int{0}, Algorithm: "test-gate"}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func init() { engine.Register(gateSolver{}) }

// TestServingQueueWaitBudget pins the serving-layer overload semantics of
// the split budget, deterministically wedging the worker with a blocking
// solver: a full queue is refused 429 immediately, and a solve whose
// queue-wait budget lapses while the worker is busy is rejected 429 shortly
// after the worker frees — never held for the full 30s solve ceiling.
func TestServingQueueWaitBudget(t *testing.T) {
	srv, ts := newServingServer(t, -1, 1, 1, engine.FIFO{})
	srv.QueueWait = 100 * time.Millisecond

	// Wedge the worker, then fill the single queue slot.
	for _, path := range []string{"/v1/jobs", "/v1/jobs"} {
		resp, body := postJSON(t, ts.URL+path, map[string]any{"dataset": "island", "r": 4, "algorithm": "test-gate"})
		if resp.StatusCode != 202 {
			t.Fatalf("gate job submit = HTTP %d (%s), want 202", resp.StatusCode, body)
		}
	}
	<-gate.started // the worker is now inside the first gate solve

	// Queue full: the synchronous path refuses instantly with 429.
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/solve", map[string]any{"dataset": "island", "r": 4})
	if resp.StatusCode != 429 {
		t.Fatalf("solve against a full queue = HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full 429 missing Retry-After")
	}
	if e := time.Since(start); e > 2*time.Second {
		t.Fatalf("queue-full 429 took %v, want immediate", e)
	}

	// Queue-wait expiry: release the gate 400ms in — well past the 100ms
	// queue-wait budget — on a second server with queue room. The rejected
	// solve must come back 429 promptly after the worker frees, not after
	// the 30s solve ceiling.
	srv2, ts2 := newServingServer(t, -1, 1, 8, engine.FIFO{})
	srv2.QueueWait = 100 * time.Millisecond
	resp, body = postJSON(t, ts2.URL+"/v1/jobs", map[string]any{"dataset": "island", "r": 4, "algorithm": "test-gate"})
	if resp.StatusCode != 202 {
		t.Fatalf("gate job submit = HTTP %d (%s), want 202", resp.StatusCode, body)
	}
	<-gate.started
	go func() {
		time.Sleep(400 * time.Millisecond)
		close(gate.release)
	}()
	start = time.Now()
	resp, body = postJSON(t, ts2.URL+"/v1/solve", map[string]any{"dataset": "island", "r": 4})
	elapsed := time.Since(start)
	if resp.StatusCode != 429 {
		t.Fatalf("solve with lapsed queue-wait = HTTP %d (%s), want 429", resp.StatusCode, body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("queue-wait 429 took %v; it must arrive when the worker frees, not at the solve ceiling", elapsed)
	}
	t.Logf("queue-wait 429 after %v", elapsed)
	_ = srv
	_ = srv2
}
