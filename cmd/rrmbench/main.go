// Command rrmbench regenerates the tables and figures of the paper's
// evaluation (Section VI). Each figure is identified by its paper number;
// -list shows them all. The default "ci" scale uses laptop-friendly sizes;
// -scale paper uses the paper's axis ranges (expect long runtimes).
//
// Examples:
//
//	rrmbench -list
//	rrmbench -fig fig13
//	rrmbench -fig all -scale ci
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/rankregret/rankregret/internal/bench"
	"github.com/rankregret/rankregret/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rrmbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig        = flag.String("fig", "", "figure id (e.g. fig13, table1) or 'all'")
		list       = flag.Bool("list", false, "list available figures and exit")
		scale      = flag.String("scale", "ci", "ci (laptop sizes) or paper (paper's axis ranges)")
		seed       = flag.Int64("seed", 1, "random seed")
		format     = flag.String("format", "table", "output format: table or csv")
		engineJSON = flag.String("engine-json", "", "run the engine benchmark (solve latency + cache throughput) and write JSON to this path (- = stdout)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	)
	flag.Parse()
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", *format)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // settle allocations so the heap profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rrmbench: memprofile:", err)
			}
			f.Close()
		}()
	}

	var sc bench.Scale
	switch *scale {
	case "ci":
		sc = bench.CIScale
	case "paper":
		sc = bench.PaperScale
	default:
		return fmt.Errorf("unknown scale %q (want ci or paper)", *scale)
	}

	if *engineJSON != "" {
		res, err := bench.EngineBench(sc, *seed)
		if err != nil {
			return err
		}
		return cliutil.WriteJSONFile(*engineJSON, res)
	}

	if *list {
		for _, id := range bench.IDs(sc) {
			spec, _ := bench.Lookup(id, sc)
			fmt.Printf("%-8s %s\n", id, spec.Title)
		}
		return nil
	}
	if *fig == "" {
		flag.Usage()
		return fmt.Errorf("missing -fig (use -list to see options)")
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = bench.IDs(sc)
	}
	for _, id := range ids {
		spec, ok := bench.Lookup(id, sc)
		if !ok {
			return fmt.Errorf("unknown figure %q (use -list)", id)
		}
		rows := bench.Run(spec, sc, *seed)
		if *format == "csv" {
			if err := bench.WriteCSV(os.Stdout, rows); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("== %s: %s (scale=%s) ==\n", spec.ID, spec.Title, sc.Name)
		if err := bench.WriteTable(os.Stdout, rows); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
