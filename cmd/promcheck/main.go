// Command promcheck validates a Prometheus text-exposition scrape with the
// same strict parser the loadgen client and the obs tests use: HELP/TYPE
// discipline, cumulative non-decreasing buckets, +Inf == _count, _sum/_count
// presence, no duplicate samples, no negative counters.
//
// Usage:
//
//	promcheck [file]         validate a saved scrape (default: stdin)
//	promcheck -require NAMES also require the comma-separated metric families;
//	                         each entry matches exactly or as a name prefix, so
//	                         "rrmd_slo" requires the whole rrmd_slo_* group
//
// Exit status 0 on a valid exposition, 1 otherwise — CI's smoke scripts pipe
// a live scrape through it so a malformed /metrics fails the build, not the
// dashboard.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/rankregret/rankregret/internal/obs"
)

func main() {
	require := flag.String("require", "", "comma-separated metric family names (exact or prefix) that must be present")
	quiet := flag.Bool("q", false, "suppress the per-family summary on success")
	flag.Parse()

	var in io.Reader = os.Stdin
	src := "stdin"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in, src = f, flag.Arg(0)
	}

	exp, err := obs.ParseExposition(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: INVALID: %v\n", src, err)
		os.Exit(1)
	}

	var missing []string
	for _, name := range strings.Split(*require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := exp.Families[name]; ok {
			continue
		}
		// A prefix entry requires at least one family in the group.
		found := false
		for fam := range exp.Families {
			if strings.HasPrefix(fam, name) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "promcheck: %s: missing required families: %s\n", src, strings.Join(missing, ", "))
		os.Exit(1)
	}

	if !*quiet {
		names := make([]string, 0, len(exp.Families))
		for name := range exp.Families {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("promcheck: %s: OK (%d families, %d samples)\n", src, len(names), len(exp.Samples))
		for _, name := range names {
			fmt.Printf("  %-40s %s\n", name, exp.Families[name].Type)
		}
	}
}
