// Package algohd implements the paper's high-dimensional algorithms:
// HDRRM (Section V) with its ASMS set-cover solver and improved binary
// search, and the baselines it is evaluated against — MDRRRr (randomized
// k-set hitting set), MDRC (function-space partitioning heuristic) and
// MDRMS (regret-ratio minimization, Asudeh et al. 2017) — plus a classic
// greedy RMS algorithm for regret-ratio comparisons. All of them are
// generalized to restricted utility spaces where the paper allows it.
package algohd

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

// VecSet is the paper's discretized function space D = Da ∪ Db together
// with lazily-maintained per-vector top-K tuple lists. Db is the polar-grid
// discretization with parameter gamma (filtered to the restricted space for
// RRRM); Da is a set of m sampled directions.
//
// A VecSet is either standalone (built by BuildVecSet and owning a private
// top-K cache) or a view handed out by SharedVecSet.Acquire, in which case
// the top-K cache is shared with every other view of the same underlying
// vector list. Per-vector top lists depend only on the dataset and that one
// vector, so sharing never changes results.
//
// Every vector must lie in the non-negative orthant — all funcspace spaces,
// the polar grid, and every Sampler guarantee this, and the paper's problem
// statement assumes it. The top-K build relies on it: its k-skyband pruning
// may drop tuples that are only optimal under negative weights.
type VecSet struct {
	ds   *dataset.Dataset
	Vecs []geom.Vector
	// GridCount is how many of Vecs came from the deterministic grid Db
	// (they are first); the rest are samples Da.
	GridCount int

	mu sync.Mutex // guards lazy tc initialization
	tc *topsCache
}

// topsCache is the lazily grown per-vector top-K store behind one or more
// VecSets. It may cover more vectors than any single view exposes (the
// canonical list grows as SharedVecSet extends its sample stream); views
// index into the shared prefix. Committed tops entries are never mutated in
// place, so snapshots taken under the state lock stay valid outside it.
//
// Two locks: buildMu serializes the expensive scoring passes (so
// concurrent solves coalesce on one build), while mu guards the fields and
// is only ever held briefly — publishing a grown vector list or reading a
// snapshot never waits behind a build.
type topsCache struct {
	ds *dataset.Dataset

	// par bounds the scoring pass's worker count (0 = GOMAXPROCS). Results
	// are bit-identical at every setting, so the knob is shared freely
	// between views of one cache.
	par atomic.Int32

	buildMu sync.Mutex // serializes (re)builds; never held while mu is held

	// Skyband candidate universe for the current depth, touched only under
	// buildMu. Abandonment (skyband too large or over budget) is monotone
	// in depth — a deeper skyband is a superset and costs strictly more to
	// compute — so once set, skyAbandoned stops all further attempts.
	skyDepth     int
	skyAbandoned bool
	skyIDs       []int            // ascending candidate ids
	skySub       *dataset.Dataset // rows of skyIDs, aligned; nil when not pruning

	mu   sync.Mutex
	vecs []geom.Vector // canonical vector list; replaced on growth, never edited
	topK int           // depth of the committed lists
	tops [][]int       // len == len(vecs) once built; per vector: ids, best first
}

// setVecs publishes a grown canonical vector list. Existing tops stay valid
// for the old prefix; ensure fills in the new tail on demand.
func (tc *topsCache) setVecs(vecs []geom.Vector) {
	tc.mu.Lock()
	tc.vecs = vecs
	tc.mu.Unlock()
}

// ready reports whether the committed lists cover every canonical vector at
// depth k.
func (tc *topsCache) ready(k int) bool {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.topK >= k && tc.tops != nil && len(tc.tops) == len(tc.vecs)
}

// Depth staging of the lazily grown top lists: the first build goes
// straight to minBuildDepth and every deepening multiplies by depthGrowth.
// A depth change invalidates every committed list, so each step costs a
// full scoring pass over |D| — HDRRM's doubling search probes k = 1, 2, 4,
// ... and aggressive staging collapses those probes into one or two passes.
// Staging is invisible in results: a depth-d cache answers every k <= d
// with the same lists no matter how it got to depth d.
const (
	minBuildDepth = 2
	depthGrowth   = 4
)

// ensure extends the cache so every canonical vector has a top list of
// depth at least min(k, n). Depth growth is geometric (so a binary search's
// shrinking thresholds are free) and rebuilds all lists; vector growth at an
// unchanged depth computes only the new tail. On cancellation the cache
// keeps its previous consistent state.
func (tc *topsCache) ensure(ctx context.Context, k int) error {
	n := tc.ds.N()
	if k > n {
		k = n
	}
	if tc.ready(k) {
		return nil
	}
	tc.buildMu.Lock()
	defer tc.buildMu.Unlock()
	// The canonical list can grow while a pass runs (setVecs does not wait
	// on builds), so loop until the committed state covers the request.
	for !tc.ready(k) {
		tc.mu.Lock()
		vecs, topK, committed := tc.vecs, tc.topK, tc.tops
		tc.mu.Unlock()
		target := k
		start := 0
		if committed != nil && topK >= k {
			// Depth is sufficient; only the newly added vectors are missing.
			target = topK
			start = len(committed)
		} else {
			// Grow depth geometrically so the binary search's shrinking ks
			// are free; a depth change invalidates every list, so rebuild
			// from 0.
			if target < depthGrowth*topK {
				target = depthGrowth * topK
			}
			if target < minBuildDepth {
				target = minBuildDepth
			}
		}
		if target > n {
			target = n
		}
		tops := make([][]int, len(vecs))
		copy(tops, committed[:start])
		if err := tc.scorePass(ctx, vecs, start, target, tops); err != nil {
			return err
		}
		tc.mu.Lock()
		tc.tops = tops
		tc.topK = target
		tc.mu.Unlock()
	}
	return nil
}

// vecTileSize is how many vectors one scoring tile carries: large enough to
// amortize each L1-resident column strip of the batch kernel across many
// vectors, shrunk for huge datasets so a worker's score buffer stays near
// 8 MB.
func vecTileSize(n int) int {
	const maxFloats = 1 << 20
	t := 16
	for t > 1 && t*n > maxFloats {
		t /= 2
	}
	return t
}

// clampWorkers bounds a scoring or repair pass's fan-out: the configured
// parallelism (0 = GOMAXPROCS), capped because the passes are CPU-bound and
// each worker owns a score-tile buffer — workers beyond the core count only
// add memory and scheduler churn; the floor of 16 keeps small-machine
// tile-handoff interleavings exercisable — and never more workers than
// tiles. Builds and repairs share this one clamp so their fan-out can never
// drift apart.
func clampWorkers(workers, numTiles int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if ceiling := max(runtime.GOMAXPROCS(0), 16); workers > ceiling {
		workers = ceiling
	}
	if workers > numTiles {
		workers = numTiles
	}
	return workers
}

// scorePass fills tops[start:] with depth-target top lists for
// vecs[start:], the expensive heart of every (re)build. Called with buildMu
// held. Three optimizations over scoring one vector at a time against the
// row-major matrix, all bit-identical to that baseline:
//
//   - the selection universe shrinks to the target-depth k-skyband
//     (candidates): tuples always-beaten by target others can never enter
//     any top-target list, so both scoring and selection skip them;
//   - worker goroutines pull whole tiles of vectors and score them with
//     dataset.UtilitiesBatch's blocked column-major kernel;
//   - topk.SelectBatch turns each score tile into top lists by selection
//     (inline heap scan or quickselect) instead of container/heap churn.
//
// The worker count honors SetParallelism (default GOMAXPROCS); tiles are
// handed out by an atomic counter so uneven tiles cannot starve workers.
func (tc *topsCache) scorePass(ctx context.Context, vecs []geom.Vector, start, target int, tops [][]int) error {
	candIDs, candDS := tc.candidates(target)
	// Materialize the column mirror before the fan-out so cold-path workers
	// don't all race to build identical copies.
	candDS.ColumnMajor()
	tile := vecTileSize(candDS.N())
	numTiles := (len(vecs) - start + tile - 1) / tile
	workers := clampWorkers(int(tc.par.Load()), numTiles)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scores [][]float64
			var scratch []int
			for {
				t := int(next.Add(1)) - 1
				if t >= numTiles || ctxutil.Cancelled(ctx) != nil {
					return
				}
				lo := start + t*tile
				hi := lo + tile
				if hi > len(vecs) {
					hi = len(vecs)
				}
				scores = candDS.UtilitiesBatch(vecs[lo:hi], scores)
				var lists [][]int
				lists, scratch = topk.SelectBatch(scores, candIDs, target, scratch)
				copy(tops[lo:hi], lists)
			}
		}()
	}
	wg.Wait()
	return ctxutil.Cancelled(ctx)
}

// candidates returns the depth-aware selection universe: the k-skyband ids
// plus a compacted dataset of their rows when pruning pays, or (nil, full
// dataset) otherwise. Computed once per depth and cached; depth only grows,
// so one slot suffices. Called with buildMu held.
func (tc *topsCache) candidates(depth int) ([]int, *dataset.Dataset) {
	n := tc.ds.N()
	if depth >= n || tc.skyAbandoned {
		return nil, tc.ds
	}
	if tc.skyDepth != depth {
		tc.skyDepth = depth
		tc.skySub = nil
		tc.skyIDs = skyline.KSkyband(tc.ds, depth)
		if len(tc.skyIDs) == 0 || len(tc.skyIDs) >= n {
			tc.skyIDs = nil
			tc.skyAbandoned = true
		} else {
			tc.skySub = tc.ds.Subset(tc.skyIDs)
		}
	}
	if tc.skySub == nil {
		return nil, tc.ds
	}
	return tc.skyIDs, tc.skySub
}

// snapshot ensures depth k and returns the committed lists. The returned
// slice may cover more vectors than the calling view exposes; entries are
// immutable, so reading them outside the lock is safe.
func (tc *topsCache) snapshot(ctx context.Context, k int) ([][]int, error) {
	if err := tc.ensure(ctx, k); err != nil {
		return nil, err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.tops, nil
}

// cache returns the VecSet's top-K cache, creating a private one on first
// use for standalone sets (views arrive with the shared cache pre-set).
func (vs *VecSet) cache() *topsCache {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.tc == nil {
		vs.tc = &topsCache{ds: vs.ds, vecs: vs.Vecs}
	}
	return vs.tc
}

// BuildVecSet constructs D for the given space: the polar grid Db
// (directions whose ray meets the space) plus m sampled directions Da.
// m may be 0 (grid only). The paper's Theorem 10 sample size is available
// via SampleSizeTheorem10.
func BuildVecSet(ds *dataset.Dataset, space funcspace.Space, gamma, m int, rng *xrand.Rand) (*VecSet, error) {
	return BuildVecSetCtx(nil, ds, space, gamma, m, rng)
}

// buildGrid validates the build parameters and returns the polar-grid
// directions Db filtered to the space. It does not consume rng, so the
// sample stream that follows is identical no matter when the grid is built.
func buildGrid(ds *dataset.Dataset, space funcspace.Space, gamma int) ([]geom.Vector, funcspace.Space, error) {
	d := ds.Dim()
	if space == nil {
		space = funcspace.NewFull(d)
	}
	if space.Dim() != d {
		return nil, nil, fmt.Errorf("algohd: space dim %d, dataset dim %d", space.Dim(), d)
	}
	if gamma < 1 {
		return nil, nil, fmt.Errorf("algohd: gamma %d, need >= 1", gamma)
	}
	var vecs []geom.Vector
	for _, u := range geom.AngleGrid(d, gamma) {
		if space.ContainsDirection(u) {
			vecs = append(vecs, u)
		}
	}
	return vecs, space, nil
}

// drawSamples appends count directions sampled from space to vecs: uniform
// on the space when sample is nil, otherwise rejection-sampled from the
// custom distribution so the restricted-space contract of Section V.C holds.
// The draws consume rng one direction at a time, which is what makes a
// prefix of a longer stream identical to a shorter one.
func drawSamples(ctx context.Context, space funcspace.Space, count int, rng *xrand.Rand, sample Sampler, vecs []geom.Vector) ([]geom.Vector, error) {
	const maxRejects = 4096
	d := space.Dim()
	for i := 0; i < count; i++ {
		if i%256 == 0 {
			if err := ctxutil.Cancelled(ctx); err != nil {
				return nil, err
			}
		}
		if sample == nil {
			u := space.Sample(rng)
			if u == nil {
				return nil, fmt.Errorf("algohd: sampling from %s failed", space.Name())
			}
			vecs = append(vecs, u)
			continue
		}
		var u geom.Vector
		for tries := 0; ; tries++ {
			u = sample(rng)
			if u != nil && len(u) == d && space.ContainsDirection(u) {
				break
			}
			if tries >= maxRejects {
				return nil, fmt.Errorf("algohd: sampler produced no direction inside %s after %d tries", space.Name(), maxRejects)
			}
		}
		vecs = append(vecs, geom.Clone(u))
	}
	return vecs, nil
}

// BuildVecSetCtx is BuildVecSet with cooperative cancellation: the sampling
// loop checks ctx periodically and aborts with ctx.Err().
func BuildVecSetCtx(ctx context.Context, ds *dataset.Dataset, space funcspace.Space, gamma, m int, rng *xrand.Rand) (*VecSet, error) {
	vecs, space, err := buildGrid(ds, space, gamma)
	if err != nil {
		return nil, err
	}
	gridCount := len(vecs)
	vecs, err = drawSamples(ctx, space, m, rng, nil, vecs)
	if err != nil {
		return nil, err
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("algohd: empty vector set (space %s admits no directions)", space.Name())
	}
	return &VecSet{ds: ds, Vecs: vecs, GridCount: gridCount}, nil
}

// SampleSizeTheorem10 returns the paper's Theorem 10 sample size
//
//	m = ((r-d)·ln(n-d) + ln(n-r+1) + ln n) / (2(δ - 1/n)²),
//
// clamped to [64, maxM] (maxM <= 0 means no cap). The clamp exists because
// the formula grows like 1/δ² and the repository's default benchmarks run on
// laptop-scale budgets; pass maxM = 0 to reproduce the paper exactly.
func SampleSizeTheorem10(n, d, r int, delta float64, maxM int) int {
	if n <= d+1 || r <= d {
		return 64
	}
	num := float64(r-d)*ln(float64(n-d)) + ln(float64(n-r+1)) + ln(float64(n))
	den := delta - 1/float64(n)
	if den <= 0 {
		den = delta
	}
	m := int(num / (2 * den * den))
	if m < 64 {
		m = 64
	}
	if maxM > 0 && m > maxM {
		m = maxM
	}
	return m
}

// ln is the natural log clamped to 0 for x <= 1: the sample-size and
// set-cover bound formulas all want "log, but never negative". The single
// definition here replaces the per-file helpers that used to shadow it.
func ln(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log(x)
}

// SetParallelism bounds the number of worker goroutines the top-K scoring
// passes may use; 0 or negative restores the default (GOMAXPROCS). Results
// are bit-identical at every setting — parallelism splits work across
// vectors, never within one — so when the top-K cache is shared the knob is
// shared too, and the most recent setting wins.
func (vs *VecSet) SetParallelism(p int) {
	if p < 0 {
		p = 0
	}
	vs.cache().par.Store(int32(p))
}

// EnsureTopK extends the cached per-vector top lists to at least k entries
// (clamped to n). Lists are built in parallel across vectors. Amortized over
// a binary search the total work is O(|D| · n · d + |D| · k log k). A nil
// context cannot be cancelled and cancellation is the only error the build
// can produce, so a failure here is a programming error and panics instead
// of being silently dropped.
func (vs *VecSet) EnsureTopK(k int) {
	if err := vs.EnsureTopKCtx(nil, k); err != nil {
		panic(fmt.Sprintf("algohd: EnsureTopK failed without a cancellable context: %v", err))
	}
}

// EnsureTopKCtx is EnsureTopK with cooperative cancellation: each worker
// checks ctx between vectors and the partially-built lists are discarded on
// cancellation, leaving the cache in its previous consistent state.
func (vs *VecSet) EnsureTopKCtx(ctx context.Context, k int) error {
	return vs.cache().ensure(ctx, k)
}

// TopsCtx ensures depth min(k, n) and returns the per-vector top lists for
// this set's vectors: TopsCtx(ctx, k)[v][:k'] for any k' <= k are the ids of
// the k' best tuples under Vecs[v], best first. The returned slice may cover
// more vectors than Len() when the top-K cache is shared; callers must index
// only [0, Len()). Reading the result needs no further synchronization.
func (vs *VecSet) TopsCtx(ctx context.Context, k int) ([][]int, error) {
	if k > vs.ds.N() {
		k = vs.ds.N()
	}
	return vs.cache().snapshot(ctx, k)
}

// Top returns the top-k tuple ids for vector v (best first). It extends the
// cache if needed.
func (vs *VecSet) Top(v, k int) []int {
	if k > vs.ds.N() {
		k = vs.ds.N()
	}
	tops, err := vs.cache().snapshot(nil, k)
	if err != nil {
		panic(fmt.Sprintf("algohd: Top failed without a cancellable context: %v", err))
	}
	return tops[v][:k]
}

// Len returns the number of vectors in D.
func (vs *VecSet) Len() int { return len(vs.Vecs) }
