// Package algohd implements the paper's high-dimensional algorithms:
// HDRRM (Section V) with its ASMS set-cover solver and improved binary
// search, and the baselines it is evaluated against — MDRRRr (randomized
// k-set hitting set), MDRC (function-space partitioning heuristic) and
// MDRMS (regret-ratio minimization, Asudeh et al. 2017) — plus a classic
// greedy RMS algorithm for regret-ratio comparisons. All of them are
// generalized to restricted utility spaces where the paper allows it.
package algohd

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

// VecSet is the paper's discretized function space D = Da ∪ Db together
// with lazily-maintained per-vector top-K tuple lists. Db is the polar-grid
// discretization with parameter gamma (filtered to the restricted space for
// RRRM); Da is a set of m sampled directions.
type VecSet struct {
	ds   *dataset.Dataset
	Vecs []geom.Vector
	// GridCount is how many of Vecs came from the deterministic grid Db
	// (they are first); the rest are samples Da.
	GridCount int

	mu   sync.Mutex
	topK int     // current prefix length of the cached lists
	tops [][]int // per vector: tuple ids, best first, length topK (or n)
}

// BuildVecSet constructs D for the given space: the polar grid Db
// (directions whose ray meets the space) plus m sampled directions Da.
// m may be 0 (grid only). The paper's Theorem 10 sample size is available
// via SampleSizeTheorem10.
func BuildVecSet(ds *dataset.Dataset, space funcspace.Space, gamma, m int, rng *xrand.Rand) (*VecSet, error) {
	return BuildVecSetCtx(nil, ds, space, gamma, m, rng)
}

// BuildVecSetCtx is BuildVecSet with cooperative cancellation: the sampling
// loop checks ctx periodically and aborts with ctx.Err().
func BuildVecSetCtx(ctx context.Context, ds *dataset.Dataset, space funcspace.Space, gamma, m int, rng *xrand.Rand) (*VecSet, error) {
	d := ds.Dim()
	if space == nil {
		space = funcspace.NewFull(d)
	}
	if space.Dim() != d {
		return nil, fmt.Errorf("algohd: space dim %d, dataset dim %d", space.Dim(), d)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("algohd: gamma %d, need >= 1", gamma)
	}
	var vecs []geom.Vector
	for _, u := range geom.AngleGrid(d, gamma) {
		if space.ContainsDirection(u) {
			vecs = append(vecs, u)
		}
	}
	gridCount := len(vecs)
	for i := 0; i < m; i++ {
		if i%256 == 0 {
			if err := ctxutil.Cancelled(ctx); err != nil {
				return nil, err
			}
		}
		u := space.Sample(rng)
		if u == nil {
			return nil, fmt.Errorf("algohd: sampling from %s failed", space.Name())
		}
		vecs = append(vecs, u)
	}
	if len(vecs) == 0 {
		return nil, fmt.Errorf("algohd: empty vector set (space %s admits no directions)", space.Name())
	}
	return &VecSet{ds: ds, Vecs: vecs, GridCount: gridCount}, nil
}

// SampleSizeTheorem10 returns the paper's Theorem 10 sample size
//
//	m = ((r-d)·ln(n-d) + ln(n-r+1) + ln n) / (2(δ - 1/n)²),
//
// clamped to [64, maxM] (maxM <= 0 means no cap). The clamp exists because
// the formula grows like 1/δ² and the repository's default benchmarks run on
// laptop-scale budgets; pass maxM = 0 to reproduce the paper exactly.
func SampleSizeTheorem10(n, d, r int, delta float64, maxM int) int {
	if n <= d+1 || r <= d {
		return 64
	}
	num := float64(r-d)*ln(float64(n-d)) + ln(float64(n-r+1)) + ln(float64(n))
	den := delta - 1/float64(n)
	if den <= 0 {
		den = delta
	}
	m := int(num / (2 * den * den))
	if m < 64 {
		m = 64
	}
	if maxM > 0 && m > maxM {
		m = maxM
	}
	return m
}

func ln(x float64) float64 {
	// Tiny wrapper to keep the formula readable.
	if x <= 1 {
		return 0
	}
	return logE(x)
}

// EnsureTopK extends the cached per-vector top lists to at least k entries
// (clamped to n). Lists are built in parallel across vectors. Amortized over
// a binary search the total work is O(|D| · n · d + |D| · k log k).
func (vs *VecSet) EnsureTopK(k int) { _ = vs.EnsureTopKCtx(nil, k) }

// EnsureTopKCtx is EnsureTopK with cooperative cancellation: each worker
// checks ctx between vectors and the partially-built lists are discarded on
// cancellation, leaving the cache in its previous consistent state.
func (vs *VecSet) EnsureTopKCtx(ctx context.Context, k int) error {
	n := vs.ds.N()
	if k > n {
		k = n
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if vs.topK >= k && vs.tops != nil {
		return nil
	}
	// Grow geometrically so the binary search's shrinking ks are free.
	target := k
	if vs.topK > 0 && target < 2*vs.topK {
		target = 2 * vs.topK
	}
	if target > n {
		target = n
	}
	tops := make([][]int, len(vs.Vecs))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(vs.Vecs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(vs.Vecs) {
			hi = len(vs.Vecs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scores := make([]float64, n)
			for v := lo; v < hi; v++ {
				if ctxutil.Cancelled(ctx) != nil {
					return
				}
				tops[v] = topk.TopK(vs.ds, vs.Vecs[v], target, scores)
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctxutil.Cancelled(ctx); err != nil {
		return err
	}
	vs.tops = tops
	vs.topK = target
	return nil
}

// Top returns the top-k tuple ids for vector v (best first). It extends the
// cache if needed.
func (vs *VecSet) Top(v, k int) []int {
	if k > vs.ds.N() {
		k = vs.ds.N()
	}
	if vs.topK < k || vs.tops == nil {
		vs.EnsureTopK(k)
	}
	return vs.tops[v][:k]
}

// Len returns the number of vectors in D.
func (vs *VecSet) Len() int { return len(vs.Vecs) }
