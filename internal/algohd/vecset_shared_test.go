package algohd

import (
	"context"
	"reflect"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

// TestSharedVecSetPrefixEquivalence is the core determinism property of the
// reuse tier: a view acquired from a SharedVecSet at any m is vector-for-
// vector identical to a VecSet freshly built with that m from the same
// seed, whether the view is a prefix, the initial build, or an extension.
func TestSharedVecSetPrefixEquivalence(t *testing.T) {
	ds := dataset.Independent(xrand.New(1), 120, 3)
	const gamma, seed = 4, 9
	shared := NewSharedVecSet(ds, nil, gamma, seed, nil)

	acquire := func(m int, want AcquireOutcome) *VecSet {
		t.Helper()
		vs, outcome, err := shared.Acquire(context.Background(), m)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != want {
			t.Errorf("Acquire(%d) outcome = %v, want %v", m, outcome, want)
		}
		return vs
	}
	fresh := func(m int) *VecSet {
		t.Helper()
		vs, err := BuildVecSet(ds, nil, gamma, m, xrand.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return vs
	}

	for _, step := range []struct {
		m       int
		outcome AcquireOutcome
	}{
		{80, VecSetBuilt},     // first acquire builds grid + 80 samples
		{30, VecSetReused},    // prefix view
		{80, VecSetReused},    // full view
		{150, VecSetExtended}, // stream extension
		{100, VecSetReused},   // prefix of the extended stream
	} {
		got := acquire(step.m, step.outcome)
		want := fresh(step.m)
		if got.GridCount != want.GridCount {
			t.Fatalf("m=%d: grid count %d, want %d", step.m, got.GridCount, want.GridCount)
		}
		if !reflect.DeepEqual(got.Vecs, want.Vecs) {
			t.Fatalf("m=%d: acquired vectors differ from a fresh build", step.m)
		}
		// Per-vector top lists agree regardless of shared-cache history.
		for _, v := range []int{0, got.Len() / 2, got.Len() - 1} {
			if !reflect.DeepEqual(got.Top(v, 7), want.Top(v, 7)) {
				t.Fatalf("m=%d: Top(%d, 7) differs from a fresh build", step.m, v)
			}
		}
	}
}

// TestHDRRMWithSharedVecSet checks that solving through acquired views for
// a sweep of budgets gives exactly the standalone HDRRMCtx results, and
// that the reported rank-regret is non-increasing in the budget when the
// discretization is fixed.
func TestHDRRMWithSharedVecSet(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(3), 150, 3)
	opts := testOpts() // fixed M, so every budget shares one vector set
	shared := NewSharedVecSet(ds, nil, opts.EffectiveGamma(), opts.Seed, nil)
	prevK := ds.N() + 1
	for r := 4; r <= 9; r++ {
		want, err := HDRRM(ds, r, opts)
		if err != nil {
			t.Fatal(err)
		}
		vs, _, err := shared.Acquire(context.Background(), opts.SampleSize(ds.N(), ds.Dim(), r))
		if err != nil {
			t.Fatal(err)
		}
		got, err := HDRRMWithVecSetCtx(context.Background(), ds, r, opts, vs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("r=%d: shared-vecset result %+v, want standalone %+v", r, got, want)
		}
		if got.K > prevK {
			t.Errorf("r=%d: rank-regret %d increased from %d at the smaller budget", r, got.K, prevK)
		}
		prevK = got.K
	}
}

// TestHDRRRWithSharedVecSet is the dual-path analogue.
func TestHDRRRWithSharedVecSet(t *testing.T) {
	ds := dataset.Independent(xrand.New(5), 140, 3)
	opts := testOpts()
	shared := NewSharedVecSet(ds, nil, opts.EffectiveGamma(), opts.Seed, nil)
	for _, k := range []int{3, 8, 15} {
		want, err := HDRRR(ds, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		vs, _, err := shared.Acquire(context.Background(), opts.SampleSizeRRR(ds.N(), ds.Dim(), k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := HDRRRWithVecSetCtx(context.Background(), ds, k, opts, vs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("k=%d: shared-vecset result %+v, want standalone %+v", k, got, want)
		}
	}
}

// TestEnsureTopKCancellation is the regression test for the formerly
// swallowed EnsureTopKCtx error: cancellation must propagate out, leave the
// cache in its previous consistent state, and a later build must succeed
// and agree with an undisturbed set.
func TestEnsureTopKCancellation(t *testing.T) {
	ds := dataset.Independent(xrand.New(2), 200, 3)
	vs, err := BuildVecSet(ds, nil, 4, 100, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := vs.EnsureTopKCtx(cancelled, 10); err != context.Canceled {
		t.Fatalf("EnsureTopKCtx on a cancelled ctx = %v, want context.Canceled", err)
	}
	// The failed build must not have committed anything: a fresh set built
	// the same way answers identically.
	ref, err := BuildVecSet(ds, nil, 4, 100, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.EnsureTopKCtx(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 50, vs.Len() - 1} {
		if !reflect.DeepEqual(vs.Top(v, 10), ref.Top(v, 10)) {
			t.Errorf("Top(%d, 10) after cancelled build differs from undisturbed set", v)
		}
	}
}

// TestSharedVecSetCancelledExtensionResyncs checks that a cancelled
// extension does not poison the sample stream: the committed prefix (and
// its top-K cache) survives, the rng is resynced by replaying the stream
// from the seed, and the next extension still matches a fresh build
// exactly.
func TestSharedVecSetCancelledExtensionResyncs(t *testing.T) {
	ds := dataset.Independent(xrand.New(6), 100, 3)
	const gamma, seed = 3, 11
	shared := NewSharedVecSet(ds, nil, gamma, seed, nil)
	if _, _, err := shared.Acquire(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := shared.Acquire(cancelled, 2000); err != context.Canceled {
		t.Fatalf("cancelled extension = %v, want context.Canceled", err)
	}
	// The committed prefix is still served without rebuilding.
	if _, outcome, err := shared.Acquire(context.Background(), 200); err != nil || outcome != VecSetReused {
		t.Fatalf("prefix after cancelled extension = outcome %v err %v, want a plain reuse", outcome, err)
	}
	vs, outcome, err := shared.Acquire(context.Background(), 600)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != VecSetExtended {
		t.Errorf("acquire after cancelled extension outcome = %v, want an extension", outcome)
	}
	want, err := BuildVecSet(ds, nil, gamma, 600, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vs.Vecs, want.Vecs) {
		t.Error("vectors after resynced extension differ from a fresh seeded build")
	}
}
