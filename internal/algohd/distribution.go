package algohd

import (
	"context"
	"fmt"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Sampler draws one utility direction. It is the hook for the paper's
// Section V.C generalization: when user preferences are not uniform on the
// sphere, Da is sampled from the actual preference distribution so that
// Rat_k (Theorem 6) is an integral with respect to that distribution. A
// Sampler may return directions outside the restricted space; they are
// rejected and redrawn.
type Sampler func(rng *xrand.Rand) geom.Vector

// GaussianPreference returns a Sampler that perturbs a central preference
// vector with isotropic Gaussian noise of the given sigma and projects back
// to the unit sphere — the standard model for "a mined utility vector that
// is roughly right".
func GaussianPreference(center geom.Vector, sigma float64) (Sampler, error) {
	if len(center) == 0 {
		return nil, fmt.Errorf("algohd: empty preference center")
	}
	if !geom.NonNegative(center) || geom.AllZero(center) {
		return nil, fmt.Errorf("algohd: preference center must be non-negative and non-zero")
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("algohd: sigma must be positive, got %v", sigma)
	}
	c := geom.Normalize(center)
	return func(rng *xrand.Rand) geom.Vector {
		for tries := 0; tries < 4096; tries++ {
			u := make(geom.Vector, len(c))
			ok := true
			for i := range u {
				u[i] = c[i] + sigma*rng.NormFloat64()
				if u[i] < 0 {
					ok = false
					break
				}
			}
			if ok && !geom.AllZero(u) {
				return geom.Normalize(u)
			}
		}
		// Pathological sigma: fall back to the center itself.
		return geom.Clone(c)
	}, nil
}

// MixturePreference returns a Sampler over a finite mixture of samplers
// with the given non-negative weights (they need not sum to one). This
// models a population with several user archetypes.
func MixturePreference(weights []float64, samplers []Sampler) (Sampler, error) {
	if len(weights) != len(samplers) || len(weights) == 0 {
		return nil, fmt.Errorf("algohd: mixture needs matching, non-empty weights and samplers")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("algohd: mixture weight %d is negative", i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("algohd: mixture weights sum to zero")
	}
	return func(rng *xrand.Rand) geom.Vector {
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return samplers[i](rng)
			}
		}
		return samplers[len(samplers)-1](rng)
	}, nil
}

// BuildVecSetSampled is BuildVecSet with a custom Da distribution (nil
// sampler = the space's own uniform sampling). Sampled directions outside
// the space are rejected and redrawn, so the restricted-space contract of
// Section V.C holds for any distribution.
func BuildVecSetSampled(ds *dataset.Dataset, space funcspace.Space, gamma, m int, rng *xrand.Rand, sample Sampler) (*VecSet, error) {
	return BuildVecSetSampledCtx(nil, ds, space, gamma, m, rng, sample)
}

// BuildVecSetSampledCtx is BuildVecSetSampled with cooperative cancellation
// in the rejection-sampling loop.
func BuildVecSetSampledCtx(ctx context.Context, ds *dataset.Dataset, space funcspace.Space, gamma, m int, rng *xrand.Rand, sample Sampler) (*VecSet, error) {
	if sample == nil {
		return BuildVecSetCtx(ctx, ds, space, gamma, m, rng)
	}
	vecs, space, err := buildGrid(ds, space, gamma)
	if err != nil {
		return nil, err
	}
	if len(vecs) == 0 {
		// Matches the pre-refactor behavior: the sampled builder grew out of
		// a grid-only build and requires a non-empty grid.
		return nil, fmt.Errorf("algohd: empty vector set (space %s admits no directions)", space.Name())
	}
	gridCount := len(vecs)
	vecs, err = drawSamples(ctx, space, m, rng, sample, vecs)
	if err != nil {
		return nil, err
	}
	return &VecSet{ds: ds, Vecs: vecs, GridCount: gridCount}, nil
}
