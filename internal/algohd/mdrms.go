package algohd

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/setcover"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/xrand"
)

// MDRMS reimplements the function-space-discretization RMS algorithm of
// Asudeh et al. (SIGMOD 2017), the regret-ratio competitor in the paper's
// HD experiments: over the discretized direction set, tuple t "covers"
// direction u when w(u,t) >= (1-eps)·w(u,D); a greedy set cover picks the
// smallest set covering all directions, and a binary search on eps finds the
// smallest regret threshold whose cover fits the budget r.
//
// It minimizes the regret-*ratio*; the paper's point (and our experiments')
// is that this can leave the rank-regret orders of magnitude worse than
// HDRRM on clustered utility distributions.
func MDRMS(ds *dataset.Dataset, r int, opts Options) (Result, error) {
	return MDRMSCtx(nil, ds, r, opts)
}

// MDRMSCtx is MDRMS with cooperative cancellation in the direction
// precompute, the set-cover rounds, and the eps binary search.
func MDRMSCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	gamma := opts.Gamma
	if gamma < 1 {
		gamma = 6
	}
	space := opts.space(d)
	rng := xrand.New(opts.Seed)
	m := opts.M
	if m <= 0 {
		m = 2048
	}
	vs, err := BuildVecSetCtx(ctx, ds, space, gamma, m, rng)
	if err != nil {
		return Result{}, err
	}

	// Candidates: skyline tuples (sufficient for regret-ratio minimization).
	cands := skyline.Compute(ds)

	// Precompute per-direction: best utility in D, and candidate utilities.
	nv := vs.Len()
	bestU := make([]float64, nv)
	candU := make([][]float64, nv)
	scores := make([]float64, n)
	for v := 0; v < nv; v++ {
		if v%256 == 0 {
			if err := ctxutil.Cancelled(ctx); err != nil {
				return Result{}, err
			}
		}
		u := vs.Vecs[v]
		scores = ds.Utilities(u, scores)
		best := math.Inf(-1)
		for _, s := range scores {
			if s > best {
				best = s
			}
		}
		bestU[v] = best
		cu := make([]float64, len(cands))
		for ci, t := range cands {
			cu[ci] = scores[t]
		}
		candU[v] = cu
	}

	solve := func(eps float64) ([]int, error) {
		sets := make([][]int, len(cands))
		for ci := range cands {
			var covers []int
			for v := 0; v < nv; v++ {
				if candU[v][ci] >= (1-eps)*bestU[v] {
					covers = append(covers, v)
				}
			}
			sets[ci] = covers
		}
		chosen, ok, err := setcover.GreedyCtx(ctx, nv, sets)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil // eps too small to cover (numerically)
		}
		out := make([]int, 0, len(chosen))
		for _, ci := range chosen {
			out = append(out, cands[ci])
		}
		sort.Ints(out)
		return out, nil
	}

	// Binary search the smallest eps whose cover fits r.
	lo, hi := 0.0, 1.0
	var fit []int
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		s, err := solve(mid)
		if err != nil {
			return Result{}, err
		}
		if s != nil && len(s) <= r {
			fit = s
			hi = mid
		} else {
			lo = mid
		}
	}
	if fit == nil {
		var err error
		fit, err = solve(1)
		if err != nil {
			return Result{}, err
		}
		if fit == nil {
			return Result{}, fmt.Errorf("algohd: MDRMS could not cover the direction set")
		}
	}
	return Result{IDs: fit, K: 0, VecCount: nv}, nil
}

// RMSGreedy is the classic greedy heuristic for regret minimizing sets in
// the spirit of Nanongkai et al.'s RDP-Greedy: starting from the best tuple
// for the "average" direction, repeatedly add the candidate that most
// reduces the maximum regret-ratio over the discretized direction set.
// Included as an extension for regret-ratio comparisons and ablations.
func RMSGreedy(ds *dataset.Dataset, r int, opts Options) (Result, error) {
	return RMSGreedyCtx(nil, ds, r, opts)
}

// RMSGreedyCtx is RMSGreedy with cooperative cancellation in the greedy
// selection rounds.
func RMSGreedyCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	gamma := opts.Gamma
	if gamma < 1 {
		gamma = 6
	}
	space := opts.space(d)
	rng := xrand.New(opts.Seed)
	m := opts.M
	if m <= 0 {
		m = 1024
	}
	vs, err := BuildVecSetCtx(ctx, ds, space, gamma, m, rng)
	if err != nil {
		return Result{}, err
	}
	cands := skyline.Compute(ds)
	nv := vs.Len()
	bestU := make([]float64, nv)
	candU := make([][]float64, nv) // per direction, per candidate
	scores := make([]float64, n)
	for v := 0; v < nv; v++ {
		if v%256 == 0 {
			if err := ctxutil.Cancelled(ctx); err != nil {
				return Result{}, err
			}
		}
		scores = ds.Utilities(vs.Vecs[v], scores)
		best := math.Inf(-1)
		for _, s := range scores {
			if s > best {
				best = s
			}
		}
		bestU[v] = best
		cu := make([]float64, len(cands))
		for ci, t := range cands {
			cu[ci] = scores[t]
		}
		candU[v] = cu
	}

	chosen := map[int]bool{}
	// curBest[v] = best utility among chosen tuples for direction v.
	curBest := make([]float64, nv)
	for v := range curBest {
		curBest[v] = math.Inf(-1)
	}
	var out []int
	for len(out) < r && len(out) < len(cands) {
		if err := ctxutil.Cancelled(ctx); err != nil {
			return Result{}, err
		}
		bestCi, bestScore := -1, math.Inf(1)
		for ci := range cands {
			if chosen[ci] {
				continue
			}
			// Max regret-ratio if we add candidate ci.
			worst := 0.0
			for v := 0; v < nv; v++ {
				have := curBest[v]
				if candU[v][ci] > have {
					have = candU[v][ci]
				}
				var ratio float64
				if bestU[v] > 0 {
					ratio = (bestU[v] - have) / bestU[v]
				}
				if ratio > worst {
					worst = ratio
				}
			}
			if worst < bestScore {
				bestScore = worst
				bestCi = ci
			}
		}
		if bestCi < 0 {
			break
		}
		chosen[bestCi] = true
		out = append(out, cands[bestCi])
		for v := 0; v < nv; v++ {
			if candU[v][bestCi] > curBest[v] {
				curBest[v] = candU[v][bestCi]
			}
		}
	}
	sort.Ints(out)
	return Result{IDs: out, K: 0, VecCount: nv}, nil
}
