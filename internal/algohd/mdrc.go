package algohd

import (
	"context"
	"fmt"
	"math"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/topk"
)

// MDRC is the space-partitioning heuristic of Asudeh et al.: partition the
// (d-1)-dimensional angle space into g^(d-1) equal cells, take the top-1
// tuple at each cell's center ray, and return the deduplicated union. The
// cell count is grown until the next refinement would exceed the budget r.
// Fast, but with no guarantee on rank-regret — on anti-correlated data its
// output quality collapses, exactly as the paper's experiments show.
//
// MDRC has no restricted-space variant (the paper notes it is "not
// applicable for RRRM"): the fixed rectangular partition of the full angle
// space is baked into the method.
func MDRC(ds *dataset.Dataset, r int) (Result, error) {
	return MDRCCtx(nil, ds, r)
}

// MDRCCtx is MDRC with cooperative cancellation in the cell enumeration.
func MDRCCtx(ctx context.Context, ds *dataset.Dataset, r int) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	nAngles := d - 1
	if nAngles < 1 {
		return Result{IDs: []int{0}, K: 0, VecCount: 1}, nil
	}

	tops := func(g int) ([]int, error) {
		// Centers of a g^(d-1) partition of [0, pi/2]^(d-1).
		step := math.Pi / 2 / float64(g)
		idx := make([]int, nAngles)
		theta := make([]float64, nAngles)
		scores := make([]float64, n)
		var ids []int
		for {
			if len(ids)%1024 == 0 {
				if err := ctxutil.Cancelled(ctx); err != nil {
					return nil, err
				}
			}
			for i, z := range idx {
				theta[i] = (float64(z) + 0.5) * step
			}
			u := geom.PolarToCartesian(theta)
			ids = append(ids, topk.TopK(ds, u, 1, scores)[0])
			i := 0
			for ; i < nAngles; i++ {
				idx[i]++
				if idx[i] < g {
					break
				}
				idx[i] = 0
			}
			if i == nAngles {
				break
			}
		}
		return uniqueInts(ids), nil
	}

	// Double the per-angle resolution until the dedup'd set exceeds the
	// budget (the paper's stop) or the grid stops paying for itself. The
	// cell cap bounds total work at O(cap * n * d): a partition much finer
	// than the budget cannot add tuples that fit it.
	maxCells := 64 * r
	if maxCells < 4096 {
		maxCells = 4096
	}
	best, err := tops(1)
	if err != nil {
		return Result{}, err
	}
	cells := 1
	for g := 2; intPow(g, nAngles) <= maxCells; g *= 2 {
		s, err := tops(g)
		if err != nil {
			return Result{}, err
		}
		if len(s) > r {
			break
		}
		best = s
		cells = intPow(g, nAngles)
		if len(s) == r {
			break
		}
	}
	return Result{IDs: best, K: 0, VecCount: cells}, nil
}

func intPow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
		if out > 1<<30 {
			return 1 << 30
		}
	}
	return out
}
