package algohd

import (
	"reflect"
	"testing"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestMDRRRrBasic(t *testing.T) {
	rng := xrand.New(1)
	ds := dataset.Anticorrelated(rng, 300, 4)
	res, err := MDRRRr(ds, 10, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 || len(res.IDs) > 10 {
		t.Errorf("size %d out of (0, 10]", len(res.IDs))
	}
	if res.K < 1 {
		t.Errorf("K = %d", res.K)
	}
	// The hitting set must hit the top-K set of every sampled direction it
	// was built from; spot check with the same seed's vector set.
	vs, err := BuildVecSet(ds, nil, 1, testOpts().M, xrand.New(testOpts().Seed))
	if err != nil {
		t.Fatal(err)
	}
	inRes := map[int]bool{}
	for _, id := range res.IDs {
		inRes[id] = true
	}
	for v := 0; v < vs.Len(); v++ {
		hit := false
		for _, tid := range vs.Top(v, res.K) {
			if inRes[tid] {
				hit = true
				break
			}
		}
		if !hit {
			t.Fatalf("vector %d top-%d not hit", v, res.K)
		}
	}
}

func TestMDRRRrRestricted(t *testing.T) {
	rng := xrand.New(2)
	ds := dataset.Anticorrelated(rng, 200, 4)
	cone, err := funcspace.WeakRanking(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.Space = cone
	res, err := MDRRRr(ds, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) > 8 {
		t.Errorf("size %d > 8", len(res.IDs))
	}
	full, err := MDRRRr(ds, 8, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.K > full.K {
		t.Errorf("restricted K=%d worse than full K=%d", res.K, full.K)
	}
}

func TestMDRRRSmallScaleOnly(t *testing.T) {
	rng := xrand.New(3)
	small := dataset.Independent(rng, 100, 3)
	res, err := MDRRR(small, 6, testOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) > 6 {
		t.Errorf("size %d > 6", len(res.IDs))
	}
	big := dataset.Independent(rng, 1000, 3)
	if _, err := MDRRR(big, 6, testOpts(), 0); err == nil {
		t.Error("MDRRR must refuse n > 500 by default")
	}
	if _, err := MDRRR(big, 6, testOpts(), 2000); err != nil {
		t.Errorf("explicit maxN should allow larger n: %v", err)
	}
}

func TestMDRCBasic(t *testing.T) {
	rng := xrand.New(4)
	for _, d := range []int{2, 3, 4} {
		ds := dataset.Independent(rng, 400, d)
		res, err := MDRC(ds, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) == 0 || len(res.IDs) > 10 {
			t.Errorf("d=%d: size %d out of (0, 10]", d, len(res.IDs))
		}
	}
	// Deterministic.
	ds := dataset.Anticorrelated(rng, 300, 3)
	a, err := MDRC(ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MDRC(ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.IDs, b.IDs) {
		t.Error("MDRC not deterministic")
	}
	if _, err := MDRC(ds, 0); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestMDRCQualityDegradesOnAnticorrelated(t *testing.T) {
	// The paper's headline experimental finding: MDRC's rank-regret is far
	// worse than HDRRM's on anti-correlated data.
	rng := xrand.New(5)
	ds := dataset.Anticorrelated(rng, 1500, 4)
	mdrc, err := MDRC(ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := HDRRM(ds, 10, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	srMDRC := sampledRegret(ds, mdrc.IDs, nil, 3000, 50)
	srHD := sampledRegret(ds, hd.IDs, nil, 3000, 50)
	if srHD > srMDRC {
		t.Errorf("HDRRM regret %d worse than MDRC %d on anti-correlated data", srHD, srMDRC)
	}
}

func TestMDRMSBasic(t *testing.T) {
	rng := xrand.New(6)
	ds := dataset.Anticorrelated(rng, 400, 3)
	res, err := MDRMS(ds, 8, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 || len(res.IDs) > 8 {
		t.Errorf("size %d out of (0, 8]", len(res.IDs))
	}
	// Output should be skyline tuples only.
	if _, err := MDRMS(ds, 0, testOpts()); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestMDRMSOptimizesRegretRatio(t *testing.T) {
	// MDRMS should achieve a better (or equal) regret-ratio than a random
	// same-size subset, measured over sampled directions.
	rng := xrand.New(7)
	ds := dataset.Anticorrelated(rng, 400, 3)
	res, err := MDRMS(ds, 6, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(ids []int) float64 {
		r := xrand.New(123)
		worst := 0.0
		scores := make([]float64, ds.N())
		for i := 0; i < 2000; i++ {
			u := r.UnitOrthantDirection(3)
			scores = ds.Utilities(u, scores)
			best, have := 0.0, 0.0
			for _, s := range scores {
				if s > best {
					best = s
				}
			}
			for _, id := range ids {
				if scores[id] > have {
					have = scores[id]
				}
			}
			if best > 0 {
				if rr := (best - have) / best; rr > worst {
					worst = rr
				}
			}
		}
		return worst
	}
	random := []int{0, 1, 2, 3, 4, 5}
	if ratio(res.IDs) > ratio(random)+1e-9 {
		t.Errorf("MDRMS regret-ratio %v worse than a naive subset %v", ratio(res.IDs), ratio(random))
	}
}

func TestRMSGreedy(t *testing.T) {
	rng := xrand.New(8)
	ds := dataset.Anticorrelated(rng, 300, 3)
	res, err := RMSGreedy(ds, 6, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 || len(res.IDs) > 6 {
		t.Errorf("size %d out of (0, 6]", len(res.IDs))
	}
	// Greedy must improve monotonically with budget.
	small, err := RMSGreedy(ds, 2, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(small.IDs) > 2 {
		t.Errorf("budget 2 returned %d tuples", len(small.IDs))
	}
	if _, err := RMSGreedy(ds, 0, testOpts()); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestHDSolversOn5Attributes(t *testing.T) {
	// Mirror of the NBA setting (d=5). All solvers must handle it.
	rng := xrand.New(9)
	ds := dataset.SimNBA(rng, 800)
	opts := testOpts()
	hd, err := HDRRM(ds, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hd.IDs) > 10 {
		t.Errorf("HDRRM size %d", len(hd.IDs))
	}
	// NBA-like data is strongly correlated: K should be very small.
	if hd.K > 16 {
		t.Errorf("HDRRM K=%d on correlated NBA-like data; expected small", hd.K)
	}
	if _, err := MDRRRr(ds, 10, opts); err != nil {
		t.Errorf("MDRRRr failed on d=5: %v", err)
	}
	if _, err := MDRC(ds, 10); err != nil {
		t.Errorf("MDRC failed on d=5: %v", err)
	}
	if _, err := MDRMS(ds, 10, opts); err != nil {
		t.Errorf("MDRMS failed on d=5: %v", err)
	}
}

// TestMDRRRExact2DGuarantee: in 2D MDRRR uses the exact k-set enumeration,
// so its reported K is a true rank-regret bound over the whole space.
func TestMDRRRExact2DGuarantee(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(3), 200, 2)
	const r = 5
	res, err := MDRRR(ds, r, DefaultOptions(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) > r {
		t.Fatalf("|S| = %d exceeds budget %d", len(res.IDs), r)
	}
	got, err := algo2d.ExactRankRegret(ds, res.IDs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got > res.K {
		t.Errorf("exact rank-regret %d exceeds the reported guarantee %d", got, res.K)
	}
	// The exact DP optimum is a lower bound for any feasible set.
	opt, err := algo2d.TwoDRRM(ds, r)
	if err != nil {
		t.Fatal(err)
	}
	if got < opt.RankRegret {
		t.Errorf("MDRRR achieved %d below the DP optimum %d", got, opt.RankRegret)
	}
	// The hitting set over ALL k-sets at the optimal k is a valid solution,
	// so MDRRR's guarantee should land close to the optimum (greedy may
	// overshoot the size at the optimal k, costing a few ranks).
	if res.K > 4*opt.RankRegret+4 {
		t.Errorf("MDRRR guarantee %d far above the optimum %d", res.K, opt.RankRegret)
	}
}
