package algohd

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/topk"
)

// Incremental repair of a SharedVecSet across dataset mutations. The
// discretization D (polar grid + seeded sample stream) depends only on the
// dimension, space, gamma, and seed — never on the data — so a mutated
// dataset can reuse it outright. What does depend on the data is the
// expensive part: the per-vector top-K lists. Repair reuses those too:
//
//   - appended rows are batch-scored with dataset.UtilitiesBatch and
//     merge-repaired into each committed list under the exact selection
//     comparator (topk.Beats), instead of re-scoring the whole dataset;
//   - deleted rows remap the ids of untouched lists for free, and only the
//     lists whose top-K intersects the tombstones are re-selected from
//     scratch, falling back to a full rebuild when the churn exceeds
//     repairChurnFrac;
//   - the cached k-skyband candidate set extends in place on pure appends
//     (a superset of the true skyband is always a sound pruning universe)
//     and resets on deletes.
//
// Repaired lists are bit-identical to a cold build on the mutated dataset:
// scores accumulate attribute terms in the same ascending-j order on both
// paths, surviving rows keep their values and relative id order, and the
// merge uses the builders' own comparator.

// repairChurnFrac is the delete-churn rebuild threshold: when more than this
// fraction of committed lists intersect the tombstones, per-vector
// re-selection would approach the cost of a fresh scoring pass and repair
// declines in favor of a cold rebuild.
const repairChurnFrac = 0.25

// repairMaxNewFrac bounds how large the appended-row set may be relative to
// the repaired dataset before a cold rebuild is preferred: merging a
// near-rebuilt dataset row set saves nothing over scoring it from scratch.
const repairMaxNewFrac = 0.5

// NewRepairedVecSet prepares a SharedVecSet for newDS that will, on first
// Acquire, materialize by incrementally repairing old's grid, sample stream,
// and committed top-K lists across the recorded deltas (which must span
// old.Dataset().Version() .. newDS.Version() of the same lineage). The
// repair is lazy, runs under the new set's lock (so concurrent first
// acquirers coalesce on it, exactly like cold builds), and never mutates
// old: views already handed out by old keep serving the pre-mutation
// dataset, which is what version-pinned solves rely on. When the repair
// declines — a rewrite delta, excessive delete churn, an inconsistent
// history — the set silently falls back to a cold build, so callers need no
// fallback path of their own.
func NewRepairedVecSet(old *SharedVecSet, newDS *dataset.Dataset, deltas []dataset.Delta) *SharedVecSet {
	// No locks here: this runs under the engine's cache lock, and waiting on
	// a mid-build source would stall every cache acquire. The space config
	// (which may only settle when the source builds) is copied lazily at
	// materialization time, under the new set's own lock only.
	return &SharedVecSet{
		ds:      newDS,
		gamma:   old.gamma,
		seed:    old.seed,
		sampler: old.sampler,
		repair:  &repairSource{old: old, deltas: deltas},
	}
}

// repairFrom materializes s from src, returning ok=false when the repair
// declines (caller falls back to a cold build) and an error only on
// cancellation. Called with s.mu held; takes the source's locks, which is
// safe because a repair source is always strictly older than its consumer.
func (s *SharedVecSet) repairFrom(ctx context.Context, src *repairSource) (bool, error) {
	old := src.old
	// A chain of pending repairs (mutations with no solves in between)
	// resolves recursively: materializing the source may itself repair from
	// its own source.
	if err := old.materialize(ctx); err != nil {
		return false, err
	}
	old.mu.Lock()
	// Full slice expressions cap capacity so a later extension of either
	// set's vector list reallocates instead of appending into the shared
	// backing array.
	vecs := old.vecs[:len(old.vecs):len(old.vecs)]
	space, gridCount, samples, oldTC := old.space, old.gridCount, old.samples, old.tc
	old.mu.Unlock()
	// Adopt the source's resolved space immediately: even a declined
	// repair's cold-build fallback must discretize the same (possibly
	// restricted) space the chain was configured with.
	s.space = space

	tc, ok, err := oldTC.repaired(ctx, s.ds, src.deltas)
	if err != nil || !ok {
		return ok, err
	}
	s.vecs = vecs
	s.gridCount = gridCount
	s.samples = samples
	// The sample stream is deterministic from the seed; rather than cloning
	// the source's rng, resync (replay) lazily if an extension ever needs it.
	s.rng = nil
	s.rngDirty = true
	s.tc = tc
	s.built = true
	return true, nil
}

// repaired returns a new topsCache for newDS whose committed lists are
// incrementally repaired from tc's across deltas, or ok=false when repair
// is not worthwhile (see the file comment for the decline conditions). tc
// itself is never modified. The error is cancellation only.
func (tc *topsCache) repaired(ctx context.Context, newDS *dataset.Dataset, deltas []dataset.Delta) (*topsCache, bool, error) {
	// buildMu serializes against scoring passes on the source and makes the
	// skyband fields safe to read; the committed lists themselves are
	// immutable once published.
	tc.buildMu.Lock()
	defer tc.buildMu.Unlock()
	tc.mu.Lock()
	vecs, topK, tops := tc.vecs, tc.topK, tc.tops
	tc.mu.Unlock()

	newN := newDS.N()
	if newN == 0 || newDS.Dim() != tc.ds.Dim() {
		return nil, false, nil
	}
	out := &topsCache{ds: newDS, vecs: vecs}
	out.par.Store(tc.par.Load())
	if len(tops) == 0 || topK == 0 {
		// Nothing expensive committed yet: carry the empty cache; the next
		// ensure builds it against the new dataset.
		return out, true, nil
	}

	oldToNew, newIDs, composedN, ok := dataset.ComposeDeltas(tc.ds.N(), deltas)
	if !ok || composedN != newN {
		return nil, false, nil
	}
	if float64(len(newIDs)) > repairMaxNewFrac*float64(newN) {
		return nil, false, nil
	}
	// Verify the mapped rows byte-for-byte: every soundness argument above
	// rests on surviving rows keeping their exact values. The structural
	// checks cannot see a divergent history — two snapshots of one version
	// mutated independently produce a delta window that composes cleanly
	// but describes the wrong source — and this comparison can: any content
	// drift under the mapping (including NaNs, conservatively) declines to
	// a cold build. O(n*d), negligible next to the merge pass it guards.
	for i, p := range oldToNew {
		if p < 0 {
			continue
		}
		a, b := tc.ds.Row(i), newDS.Row(p)
		for j := range a {
			if a[j] != b[j] {
				return nil, false, nil
			}
		}
	}
	hasDelete := false
	for _, v := range oldToNew {
		if v < 0 {
			hasDelete = true
			break
		}
	}

	target := topK
	if target > newN {
		target = newN
	}

	// Lists holding a tombstone cannot know their replacement entries from
	// k-deep state; they are re-selected from scratch below. Past the churn
	// threshold that re-selection approaches a full pass — decline.
	var affected []int
	if hasDelete {
		for v, list := range tops {
			for _, id := range list {
				if oldToNew[id] < 0 {
					affected = append(affected, v)
					break
				}
			}
		}
		if float64(len(affected)) > repairChurnFrac*float64(len(tops)) {
			return nil, false, nil
		}
	}

	repTops := make([][]int, len(tops))
	var newSub *dataset.Dataset
	if len(newIDs) > 0 {
		newSub = newDS.Subset(newIDs)
		newSub.ColumnMajor() // materialize before the fan-out
	}
	isAffected := make([]bool, len(tops))
	for _, v := range affected {
		isAffected[v] = true
	}
	if err := tc.repairMergePass(ctx, vecs[:len(tops)], newDS, newSub, newIDs, oldToNew, hasDelete, isAffected, target, repTops, tops); err != nil {
		return nil, false, err
	}
	if err := tc.repairReselectPass(ctx, vecs, newDS, affected, target, repTops); err != nil {
		return nil, false, err
	}
	out.tops = repTops
	out.topK = target

	// Skyband candidate universe: on pure appends the old band plus the new
	// rows is a superset of the true band (a row beaten by depth others
	// before the append is still beaten by them), and a superset prunes
	// soundly. Deletes can re-admit rows, so the band resets and the next
	// depth probe recomputes it. Abandonment carries over: it only ever
	// means "no pruning", which is always sound.
	out.skyAbandoned = tc.skyAbandoned
	if !hasDelete && tc.skySub != nil && !tc.skyAbandoned {
		ids := make([]int, 0, len(tc.skyIDs)+len(newIDs))
		ids = append(ids, tc.skyIDs...)
		ids = append(ids, newIDs...) // appended ids exceed every old id: still ascending
		out.skyDepth = tc.skyDepth
		out.skyIDs = ids
		out.skySub = newDS.Subset(ids)
	}
	return out, true, nil
}

// repairMergePass fills repTops[v] for every non-affected vector: the old
// list remapped through the deletion and merged with the batch-scored
// appended rows, truncated to target. Affected vectors are skipped (the
// re-select pass owns them).
func (tc *topsCache) repairMergePass(ctx context.Context, vecs []geom.Vector, newDS, newSub *dataset.Dataset, newIDs []int, oldToNew []int, hasDelete bool, isAffected []bool, target int, repTops, tops [][]int) error {
	tile := vecTileSize(max(len(newIDs), 1))
	numTiles := (len(vecs) + tile - 1) / tile
	workers := clampWorkers(int(tc.par.Load()), numTiles)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scores [][]float64
			var order []int
			for {
				t := int(next.Add(1)) - 1
				if t >= numTiles || ctxutil.Cancelled(ctx) != nil {
					return
				}
				lo, hi := t*tile, min((t+1)*tile, len(vecs))
				if newSub != nil {
					scores = newSub.UtilitiesBatch(vecs[lo:hi], scores)
				}
				for v := lo; v < hi; v++ {
					if isAffected[v] {
						continue
					}
					var candScores []float64
					if newSub != nil {
						candScores = scores[v-lo]
					}
					repTops[v] = mergeRepairList(newDS, vecs[v], tops[v], oldToNew, hasDelete, newIDs, candScores, target, &order)
				}
			}
		}()
	}
	wg.Wait()
	return ctxutil.Cancelled(ctx)
}

// mergeRepairList produces the depth-target list for one vector from its
// committed pre-mutation list: incumbents keep their order (scores and
// relative ids are unchanged by append/delete), so the merge walks the two
// sorted sequences with the builders' comparator. The result is exactly the
// cold-built list: an old row absent from the incumbent list was beaten by
// >= topK surviving rows and can never enter, and every appended row is a
// candidate. When nothing changes, the committed slice is returned as-is
// (lists are immutable, so sharing across caches is safe).
func mergeRepairList(newDS *dataset.Dataset, u geom.Vector, list []int, oldToNew []int, hasDelete bool, newIDs []int, candScores []float64, target int, order *[]int) []int {
	// When the incumbent list is at full depth, its weakest surviving member
	// is a sound entry threshold: an appended row that loses to it cannot be
	// in the merged top-target. Filtering first makes the dominant case —
	// nothing enters — one dot product, and leaves the merge with only true
	// entrants.
	cand := (*order)[:0]
	if target > 0 && len(list) >= target {
		tailID := list[target-1]
		if hasDelete {
			tailID = oldToNew[tailID]
		}
		tailScore := newDS.Utility(u, tailID)
		for i, id := range newIDs {
			if topk.Beats(candScores[i], id, tailScore, tailID) {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 && !hasDelete {
			*order = cand
			return list[:target:target]
		}
	} else {
		for i := range newIDs {
			cand = append(cand, i)
		}
	}
	// Order the entrants by (score desc, id asc); newIDs is ascending, so
	// candidate position order doubles as the id tie-break. Entrant counts
	// are small, so an insertion sort on the exact comparator beats a
	// reflective sort.
	for i := 1; i < len(cand); i++ {
		c := cand[i]
		j := i - 1
		for j >= 0 && topk.Beats(candScores[c], newIDs[c], candScores[cand[j]], newIDs[cand[j]]) {
			cand[j+1] = cand[j]
			j--
		}
		cand[j+1] = c
	}
	*order = cand

	outLen := min(target, len(list)+len(cand))
	out := make([]int, 0, outLen)
	li, ci := 0, 0
	changed := hasDelete // any remap means fresh content
	incScored := false
	var incID int
	var incScore float64
	for len(out) < outLen {
		takeCand := li >= len(list)
		if !takeCand {
			if !incScored {
				incID = list[li]
				if hasDelete {
					incID = oldToNew[incID]
				}
				if ci < len(cand) {
					incScore = newDS.Utility(u, incID)
				}
				incScored = true
			}
			if ci < len(cand) {
				cid := newIDs[cand[ci]]
				takeCand = topk.Beats(candScores[cand[ci]], cid, incScore, incID)
			}
		}
		if takeCand {
			out = append(out, newIDs[cand[ci]])
			ci++
			changed = true
		} else {
			out = append(out, incID)
			li++
			incScored = false
		}
	}
	if !changed && len(out) == len(list) {
		return list
	}
	return out
}

// repairReselectPass recomputes the affected vectors' lists from scratch
// against the full repaired dataset: scoring every row for just those
// vectors is exactly what a cold build would feed the selector, so the
// output is cold-identical by construction.
func (tc *topsCache) repairReselectPass(ctx context.Context, vecs []geom.Vector, newDS *dataset.Dataset, affected []int, target int, repTops [][]int) error {
	if len(affected) == 0 {
		return nil
	}
	newDS.ColumnMajor()
	affVecs := make([]geom.Vector, len(affected))
	for i, v := range affected {
		affVecs[i] = vecs[v]
	}
	tile := vecTileSize(newDS.N())
	numTiles := (len(affVecs) + tile - 1) / tile
	workers := clampWorkers(int(tc.par.Load()), numTiles)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scores [][]float64
			var scratch []int
			for {
				t := int(next.Add(1)) - 1
				if t >= numTiles || ctxutil.Cancelled(ctx) != nil {
					return
				}
				lo, hi := t*tile, min((t+1)*tile, len(affVecs))
				scores = newDS.UtilitiesBatch(affVecs[lo:hi], scores)
				var lists [][]int
				lists, scratch = topk.SelectBatch(scores, nil, target, scratch)
				for i, list := range lists {
					repTops[affected[lo+i]] = list
				}
			}
		}()
	}
	wg.Wait()
	return ctxutil.Cancelled(ctx)
}
