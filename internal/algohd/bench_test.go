package algohd

import (
	"fmt"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func benchOpts() Options {
	o := DefaultOptions()
	o.MaxM = 4000
	return o
}

func BenchmarkHDRRM(b *testing.B) {
	for _, wl := range []string{"indep", "anti"} {
		for _, n := range []int{1000, 5000} {
			ds, _ := dataset.Synthetic(wl, xrand.New(1), n, 4)
			b.Run(fmt.Sprintf("%s/n=%d", wl, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := HDRRM(ds, 10, benchOpts()); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkASMSOnce(b *testing.B) {
	ds := dataset.Anticorrelated(xrand.New(1), 5000, 4)
	vs, err := BuildVecSet(ds, nil, 6, 4000, xrand.New(2))
	if err != nil {
		b.Fatal(err)
	}
	basis := uniqueInts(ds.Basis())
	vs.EnsureTopK(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ASMS(ds, 64, basis, vs)
	}
}

func BenchmarkBuildVecSet(b *testing.B) {
	ds := dataset.Independent(xrand.New(1), 5000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildVecSet(ds, nil, 6, 4000, xrand.New(2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnsureTopK(b *testing.B) {
	ds := dataset.Independent(xrand.New(1), 5000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		vs, err := BuildVecSet(ds, nil, 6, 2000, xrand.New(2))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		vs.EnsureTopK(128)
	}
}

func BenchmarkBaselines(b *testing.B) {
	ds := dataset.Anticorrelated(xrand.New(1), 2000, 4)
	b.Run("MDRC", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MDRC(ds, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MDRRRr", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MDRRRr(ds, 10, benchOpts()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MDRMS", func(b *testing.B) {
		o := benchOpts()
		o.M = 512 // MDRMS is slow; keep the bench affordable
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MDRMS(ds, 10, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}
