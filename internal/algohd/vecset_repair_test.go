package algohd

import (
	"context"
	"slices"
	"sort"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/xrand"
)

// mutateFn applies one scripted mutation to a snapshot. unpopular holds
// base-dataset row ids in descending order of id, least list-popular first
// within the scenario's picks; deleting in slice order keeps earlier
// deletions from shifting later targets.
type mutateFn func(t *testing.T, rng *xrand.Rand, ds *dataset.Dataset, unpopular []int)

func appendRows(count int) mutateFn {
	return func(t *testing.T, rng *xrand.Rand, ds *dataset.Dataset, unpopular []int) {
		t.Helper()
		row := make([]float64, ds.Dim())
		for i := 0; i < count; i++ {
			for j := range row {
				row[j] = rng.Float64()
			}
			ds.Append(row)
		}
	}
}

func deleteRows(ids ...int) mutateFn {
	return func(t *testing.T, rng *xrand.Rand, ds *dataset.Dataset, unpopular []int) {
		t.Helper()
		if err := ds.Delete(ids); err != nil {
			t.Fatal(err)
		}
	}
}

// deleteUnpopular deletes the rows at the given positions of the unpopular
// list — rows that appear in few (ideally zero) committed top-K lists, so
// the deletion stays under the repair churn threshold.
func deleteUnpopular(idx ...int) mutateFn {
	return func(t *testing.T, rng *xrand.Rand, ds *dataset.Dataset, unpopular []int) {
		t.Helper()
		ids := make([]int, len(idx))
		for i, p := range idx {
			ids[i] = unpopular[p]
		}
		if err := ds.Delete(ids); err != nil {
			t.Fatal(err)
		}
	}
}

// leastPopular returns count row ids of vs's dataset ordered by ascending
// membership count over the committed depth-k lists, then re-sorted by
// descending id so scenario deletions in slice order never shift later
// targets.
func leastPopular(vs *VecSet, n, k, count int) []int {
	occ := make([]int, n)
	for v := 0; v < vs.Len(); v++ {
		for _, id := range vs.Top(v, k) {
			occ[id]++
		}
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if occ[ids[a]] != occ[ids[b]] {
			return occ[ids[a]] < occ[ids[b]]
		}
		return ids[a] < ids[b]
	})
	ids = ids[:count]
	sort.Sort(sort.Reverse(sort.IntSlice(ids)))
	return ids
}

// requireIdenticalTops asserts every vector's depth-k list matches between
// the two sets, exactly.
func requireIdenticalTops(t *testing.T, got, want *VecSet, k int) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("vector counts differ: %d vs %d", got.Len(), want.Len())
	}
	for v := 0; v < got.Len(); v++ {
		g, w := got.Top(v, k), want.Top(v, k)
		if !slices.Equal(g, w) {
			t.Fatalf("vector %d: repaired top-%d %v != cold %v", v, k, g, w)
		}
	}
}

// TestRepairedTopsBitIdentical is the core contract: after any repairable
// mutation sequence, the repaired set's top-K lists are exactly those of a
// cold build over the mutated dataset — same ids, same order, same
// tie-breaks — and the acquire outcome reports a repair.
func TestRepairedTopsBitIdentical(t *testing.T) {
	const (
		n     = 150
		d     = 3
		gamma = 3
		m     = 120
		k     = 7
	)
	scenarios := []struct {
		name    string
		mutate  []mutateFn
		repared bool // expected: materialized via repair (vs declined)
	}{
		{"append-few", []mutateFn{appendRows(5)}, true},
		{"append-burst", []mutateFn{appendRows(40)}, true},
		{"delete-few", []mutateFn{deleteUnpopular(0, 1, 2)}, true},
		{"delete-then-append", []mutateFn{deleteUnpopular(3, 4), appendRows(8)}, true},
		{"append-then-delete-appended", []mutateFn{appendRows(6), deleteRows(151, 154)}, true},
		{"mixed-many-steps", []mutateFn{appendRows(10), deleteUnpopular(5), appendRows(3), deleteUnpopular(6, 7)}, true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			ctx := context.Background()
			base := dataset.Anticorrelated(xrand.New(9), n, d)
			old := NewSharedVecSet(base, nil, gamma, 42, nil)
			oldView, _, err := old.Acquire(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			// Commit lists on the source so there is something to repair.
			oldView.EnsureTopK(k)
			unpopular := leastPopular(oldView, n, k, 8)

			cur := base
			rng := xrand.New(31)
			for _, mut := range sc.mutate {
				next := cur.Snapshot()
				mut(t, rng, next, unpopular)
				cur = next
			}
			deltas, ok := cur.Deltas(base.Version())
			if !ok {
				t.Fatal("delta history truncated")
			}

			rep := NewRepairedVecSet(old, cur, deltas)
			repView, outcome, err := rep.Acquire(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			if sc.repared && outcome != VecSetRepaired {
				t.Fatalf("outcome = %v, want repaired", outcome)
			}

			cold, err := BuildVecSet(cur, nil, gamma, m, xrand.New(42))
			if err != nil {
				t.Fatal(err)
			}
			cold.EnsureTopK(k)
			requireIdenticalTops(t, repView, cold, k)

			// Deepening and extending the repaired set must also agree with a
			// cold set at the deeper k / larger m (exercises the carried
			// skyband superset and the resynced sample stream).
			k2, m2 := 2*k, m+30
			repView2, _, err := rep.Acquire(ctx, m2)
			if err != nil {
				t.Fatal(err)
			}
			cold2, err := BuildVecSet(cur, nil, gamma, m2, xrand.New(42))
			if err != nil {
				t.Fatal(err)
			}
			cold2.EnsureTopK(k2)
			requireIdenticalTops(t, repView2, cold2, k2)

			// The source set is untouched: its lists still describe the old
			// dataset (version pinning relies on this).
			coldOld, err := BuildVecSet(base, nil, gamma, m, xrand.New(42))
			if err != nil {
				t.Fatal(err)
			}
			coldOld.EnsureTopK(k)
			requireIdenticalTops(t, oldView, coldOld, k)
		})
	}
}

// TestRepairDeclines checks every decline path falls back to a cold build
// with correct results: rewrite deltas, delete churn past the threshold, and
// append floods.
func TestRepairDeclines(t *testing.T) {
	const (
		n     = 120
		gamma = 3
		m     = 80
		k     = 5
	)
	ctx := context.Background()
	cases := []struct {
		name   string
		mutate mutateFn
	}{
		{"rewrite", func(t *testing.T, rng *xrand.Rand, ds *dataset.Dataset, _ []int) {
			ds.Shift([]float64{0.1, 0.1, 0.1})
		}},
		{"churn", func(t *testing.T, rng *xrand.Rand, ds *dataset.Dataset, _ []int) {
			// Delete half the dataset: far past the churn threshold.
			ids := make([]int, 0, n/2)
			for i := 0; i < n; i += 2 {
				ids = append(ids, i)
			}
			if err := ds.Delete(ids); err != nil {
				t.Fatal(err)
			}
		}},
		{"append-flood", appendRows(3 * n)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := dataset.Independent(xrand.New(5), n, 3)
			old := NewSharedVecSet(base, nil, gamma, 7, nil)
			oldView, _, err := old.Acquire(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			oldView.EnsureTopK(k)

			cur := base.Snapshot()
			tc.mutate(t, xrand.New(1), cur, nil)
			deltas, ok := cur.Deltas(base.Version())
			if !ok {
				t.Fatal("history truncated")
			}
			rep := NewRepairedVecSet(old, cur, deltas)
			repView, outcome, err := rep.Acquire(ctx, m)
			if err != nil {
				t.Fatal(err)
			}
			if outcome != VecSetBuilt {
				t.Fatalf("outcome = %v, want cold-build fallback", outcome)
			}
			cold, err := BuildVecSet(cur, nil, gamma, m, xrand.New(7))
			if err != nil {
				t.Fatal(err)
			}
			cold.EnsureTopK(k)
			requireIdenticalTops(t, repView, cold, k)
		})
	}
}

// TestRepairChain materializes a chain of pending repairs — several
// mutations with no solve in between — and checks the final state equals a
// cold build, with each link resolved incrementally.
func TestRepairChain(t *testing.T) {
	const (
		gamma = 3
		m     = 100
		k     = 6
	)
	ctx := context.Background()
	v0 := dataset.Correlated(xrand.New(3), 130, 3)
	s0 := NewSharedVecSet(v0, nil, gamma, 11, nil)
	view0, _, err := s0.Acquire(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	view0.EnsureTopK(k)

	rng := xrand.New(8)
	v1 := v0.Snapshot()
	appendRows(7)(t, rng, v1, nil)
	d01, _ := v1.Deltas(v0.Version())
	s1 := NewRepairedVecSet(s0, v1, d01) // never acquired: stays pending

	v2 := v1.Snapshot()
	deleteRows(131, 2)(t, rng, v2, nil)
	d12, _ := v2.Deltas(v1.Version())
	s2 := NewRepairedVecSet(s1, v2, d12)

	view2, outcome, err := s2.Acquire(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != VecSetRepaired {
		t.Fatalf("chain outcome = %v, want repaired", outcome)
	}
	cold, err := BuildVecSet(v2, nil, gamma, m, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cold.EnsureTopK(k)
	requireIdenticalTops(t, view2, cold, k)
}

// TestRepairRestrictedSpace repairs a set built over a restricted utility
// space and requires both the repair and (via a churn-forced decline) the
// cold-build fallback to keep discretizing that space, matching standalone
// builds exactly.
func TestRepairRestrictedSpace(t *testing.T) {
	const (
		gamma = 3
		m     = 80
		k     = 5
	)
	ctx := context.Background()
	space, err := funcspace.NewBall(geom.Vector{0.6, 0.5, 0.6}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	base := dataset.Independent(xrand.New(14), 120, 3)
	for _, forceDecline := range []bool{false, true} {
		old := NewSharedVecSet(base, space, gamma, 5, nil)
		oldView, _, err := old.Acquire(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		oldView.EnsureTopK(k)

		cur := base.Snapshot()
		if forceDecline {
			ids := make([]int, 0, 60)
			for i := 0; i < 120; i += 2 {
				ids = append(ids, i)
			}
			if err := cur.Delete(ids); err != nil {
				t.Fatal(err)
			}
		} else {
			appendRows(9)(t, xrand.New(3), cur, nil)
		}
		deltas, ok := cur.Deltas(base.Version())
		if !ok {
			t.Fatal("history truncated")
		}
		rep := NewRepairedVecSet(old, cur, deltas)
		view, outcome, err := rep.Acquire(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		if forceDecline && outcome != VecSetBuilt {
			t.Fatalf("churn flood outcome = %v, want built", outcome)
		}
		if !forceDecline && outcome != VecSetRepaired {
			t.Fatalf("append outcome = %v, want repaired", outcome)
		}
		cold, err := BuildVecSet(cur, space, gamma, m, xrand.New(5))
		if err != nil {
			t.Fatal(err)
		}
		cold.EnsureTopK(k)
		requireIdenticalTops(t, view, cold, k)
	}
}

// TestRepairParallelismIndependence repairs the same mutation at several
// worker counts and requires identical lists, mirroring the scoring passes'
// bit-identical parallelism contract.
func TestRepairParallelismIndependence(t *testing.T) {
	const (
		gamma = 3
		m     = 90
		k     = 6
	)
	ctx := context.Background()
	base := dataset.Anticorrelated(xrand.New(21), 140, 4)
	cur := base.Snapshot()
	rng := xrand.New(2)
	appendRows(12)(t, rng, cur, nil)
	deleteRows(9, 50)(t, rng, cur, nil)
	deltas, _ := cur.Deltas(base.Version())

	var want *VecSet
	for _, par := range []int{1, 4, 16} {
		old := NewSharedVecSet(base, nil, gamma, 13, nil)
		oldView, _, err := old.Acquire(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		oldView.SetParallelism(par)
		oldView.EnsureTopK(k)
		rep := NewRepairedVecSet(old, cur, deltas)
		view, outcome, err := rep.Acquire(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		if outcome != VecSetRepaired {
			t.Fatalf("par=%d outcome = %v, want repaired", par, outcome)
		}
		if want == nil {
			want = view
			continue
		}
		requireIdenticalTops(t, view, want, k)
	}
}
