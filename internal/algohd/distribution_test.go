package algohd

import (
	"math"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/eval"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestGaussianPreferenceValidation(t *testing.T) {
	if _, err := GaussianPreference(nil, 0.1); err == nil {
		t.Error("empty center should fail")
	}
	if _, err := GaussianPreference(geom.Vector{1, -1}, 0.1); err == nil {
		t.Error("negative center should fail")
	}
	if _, err := GaussianPreference(geom.Vector{0, 0}, 0.1); err == nil {
		t.Error("zero center should fail")
	}
	if _, err := GaussianPreference(geom.Vector{1, 1}, 0); err == nil {
		t.Error("zero sigma should fail")
	}
}

func TestGaussianPreferenceSamplesNearCenter(t *testing.T) {
	center := geom.Vector{0.8, 0.6}
	s, err := GaussianPreference(center, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	var maxDist float64
	for i := 0; i < 2000; i++ {
		u := s(rng)
		if len(u) != 2 {
			t.Fatalf("sample dim %d", len(u))
		}
		if !geom.NonNegative(u) {
			t.Fatalf("sample %v outside the orthant", u)
		}
		if math.Abs(geom.Norm(u)-1) > 1e-9 {
			t.Fatalf("sample %v not unit length", u)
		}
		if d := geom.Dist(u, center); d > maxDist {
			maxDist = d
		}
	}
	// sigma 0.05 keeps virtually all samples within ~5 sigma of the center.
	if maxDist > 0.3 {
		t.Errorf("samples strayed %v from the center with sigma 0.05", maxDist)
	}
}

func TestMixturePreference(t *testing.T) {
	a, _ := GaussianPreference(geom.Vector{1, 0.05}, 0.02)
	b, _ := GaussianPreference(geom.Vector{0.05, 1}, 0.02)
	mix, err := MixturePreference([]float64{3, 1}, []Sampler{a, b})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	nearA := 0
	const total = 4000
	for i := 0; i < total; i++ {
		u := mix(rng)
		if u[0] > u[1] {
			nearA++
		}
	}
	frac := float64(nearA) / total
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("mixture weight 3:1 produced %.3f from the first component, want ~0.75", frac)
	}

	if _, err := MixturePreference([]float64{1}, nil); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, err := MixturePreference([]float64{-1, 1}, []Sampler{a, b}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := MixturePreference([]float64{0, 0}, []Sampler{a, b}); err == nil {
		t.Error("zero total weight should fail")
	}
}

func TestBuildVecSetSampledRejection(t *testing.T) {
	ds := dataset.Independent(xrand.New(1), 100, 2)
	cone, err := funcspace.WeakRanking(2, 1) // u[0] >= u[1]
	if err != nil {
		t.Fatal(err)
	}
	// A sampler concentrated inside the cone: accepted directly.
	inside, _ := GaussianPreference(geom.Vector{1, 0.2}, 0.01)
	vs, err := BuildVecSetSampled(ds, cone, 4, 50, xrand.New(2), inside)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range vs.Vecs {
		if !cone.ContainsDirection(u) {
			t.Fatalf("vector %v outside the cone", u)
		}
	}
	// A sampler concentrated outside the cone: every draw is rejected.
	outside, _ := GaussianPreference(geom.Vector{0.01, 1}, 0.001)
	if _, err := BuildVecSetSampled(ds, cone, 4, 10, xrand.New(3), outside); err == nil {
		t.Error("sampler entirely outside the space should fail after max rejects")
	}
}

func TestHDRRMWithPreferenceDistribution(t *testing.T) {
	// Users cluster around a known preference; HDRRM with that sampler
	// should serve those users at least as well as the uniform solve.
	ds := dataset.Anticorrelated(xrand.New(5), 2000, 3)
	center := geom.Vector{0.7, 0.2, 0.1}
	s, err := GaussianPreference(center, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MaxM = 2000
	opts.Sampler = s
	res, err := HDRRM(ds, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) == 0 || len(res.IDs) > 8 {
		t.Fatalf("|S| = %d", len(res.IDs))
	}
	// Evaluate on the user distribution: the rank-regret near the center
	// should be small even though the full-space regret on anti-correlated
	// data is large.
	ball, err := funcspace.NewBall(center, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval.RankRegret(ds, res.IDs, ball, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	uniform := DefaultOptions()
	uniform.MaxM = 2000
	ures, err := HDRRM(ds, 8, uniform)
	if err != nil {
		t.Fatal(err)
	}
	ugot, err := eval.RankRegret(ds, ures.IDs, ball, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got > 3*ugot+15 {
		t.Errorf("distribution-aware solve has regret %d near the center, uniform solve %d", got, ugot)
	}
}
