package algohd

import (
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/eval"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestVariantNames(t *testing.T) {
	cases := map[string]Variant{
		"full":       {},
		"no-basis":   {NoBasis: true},
		"no-grid":    {NoGrid: true},
		"no-samples": {NoSamples: true},
	}
	for want, v := range cases {
		if got := v.Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", v, got, want)
		}
	}
	if got := (Variant{NoBasis: true, NoGrid: true}).Name(); got == "full" {
		t.Errorf("combined variant misnamed %q", got)
	}
}

func TestHDRRMVariantFullMatchesHDRRM(t *testing.T) {
	ds := dataset.Independent(xrand.New(3), 800, 3)
	opts := DefaultOptions()
	opts.MaxM = 1500
	full, err := HDRRM(ds, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	variant, err := HDRRMVariant(ds, 8, opts, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if full.K != variant.K || len(full.IDs) != len(variant.IDs) {
		t.Errorf("zero variant diverged: K %d vs %d, size %d vs %d",
			full.K, variant.K, len(full.IDs), len(variant.IDs))
	}
	for i := range full.IDs {
		if full.IDs[i] != variant.IDs[i] {
			t.Errorf("zero variant chose different tuples: %v vs %v", full.IDs, variant.IDs)
			break
		}
	}
}

func TestHDRRMVariantValidation(t *testing.T) {
	ds := dataset.Independent(xrand.New(3), 100, 3)
	opts := DefaultOptions()
	if _, err := HDRRMVariant(ds, 8, opts, Variant{NoGrid: true, NoSamples: true}); err == nil {
		t.Error("removing both Da and Db should fail")
	}
	if _, err := HDRRMVariant(ds, 0, opts, Variant{}); err == nil {
		t.Error("r=0 should fail")
	}
	empty := dataset.New(3)
	if _, err := HDRRMVariant(empty, 5, opts, Variant{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestAblationShapesOnAnticorrelated(t *testing.T) {
	// The ablations should not beat the full algorithm by much (they give
	// up guarantees, not gain quality) and each must still produce a
	// feasible set within budget.
	ds := dataset.Anticorrelated(xrand.New(9), 1500, 3)
	opts := DefaultOptions()
	opts.MaxM = 1500
	const r = 8
	space := funcspace.NewFull(3)
	regretOf := func(v Variant) int {
		t.Helper()
		res, err := HDRRMVariant(ds, r, opts, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) > r || len(res.IDs) == 0 {
			t.Fatalf("%s: |S| = %d", v.Name(), len(res.IDs))
		}
		got, err := eval.RankRegret(ds, res.IDs, space, 6000, 17)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	full := regretOf(Variant{})
	noGrid := regretOf(Variant{NoGrid: true})
	noSamples := regretOf(Variant{NoSamples: true})
	noBasis := regretOf(Variant{NoBasis: true})
	t.Logf("ablation rank-regrets: full=%d no-grid=%d no-samples=%d no-basis=%d",
		full, noGrid, noSamples, noBasis)
	// Dropping the samples leaves only (gamma+1)^(d-1) grid directions —
	// on anti-correlated data the rank between grid directions degrades,
	// so the no-samples variant should be clearly worse than full.
	if noSamples < full/2 {
		t.Errorf("no-samples ablation (%d) dramatically better than full (%d)?", noSamples, full)
	}
}

func TestHDRRRReturnsThresholdSet(t *testing.T) {
	ds := dataset.Independent(xrand.New(21), 600, 3)
	opts := DefaultOptions()
	opts.MaxM = 1200
	res, err := HDRRR(ds, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 20 {
		t.Errorf("K = %d, want the echoed threshold 20", res.K)
	}
	// Every vector of the solver's own discretization must be covered at
	// rank <= 20 (Lemma 2). Verify with an independent estimator.
	got, err := eval.RankRegret(ds, res.IDs, funcspace.NewFull(3), 6000, 23)
	if err != nil {
		t.Fatal(err)
	}
	if got > 3*20 {
		t.Errorf("HDRRR(k=20) estimated rank-regret %d", got)
	}
	if _, err := HDRRR(ds, 0, opts); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := HDRRR(ds, 1000, opts); err == nil {
		t.Error("k>n should fail")
	}
}
