package algohd

import (
	"reflect"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/eval"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

func testOpts() Options {
	return Options{Gamma: 4, M: 400, Seed: 7}
}

// sampledRegret estimates the rank-regret of ids over the space by random
// directions.
func sampledRegret(ds *dataset.Dataset, ids []int, space funcspace.Space, samples int, seed int64) int {
	rng := xrand.New(seed)
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	worst := 0
	scores := make([]float64, ds.N())
	for i := 0; i < samples; i++ {
		u := space.Sample(rng)
		if r := topk.RankOfSet(ds, u, ids, scores); r > worst {
			worst = r
		}
	}
	return worst
}

func TestBuildVecSet(t *testing.T) {
	rng := xrand.New(1)
	ds := dataset.Independent(rng, 100, 3)
	vs, err := BuildVecSet(ds, nil, 4, 50, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if vs.GridCount != 25 { // (gamma+1)^(d-1) = 5^2
		t.Errorf("grid count %d, want 25", vs.GridCount)
	}
	if vs.Len() != 75 {
		t.Errorf("total %d, want 75", vs.Len())
	}
	// Restricted: cone keeps only directions with u0 >= u1.
	cone, err := funcspace.WeakRanking(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	vsr, err := BuildVecSet(ds, cone, 4, 50, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if vsr.GridCount >= vs.GridCount {
		t.Errorf("restricted grid %d not smaller than full %d", vsr.GridCount, vs.GridCount)
	}
	for _, u := range vsr.Vecs {
		if !cone.ContainsDirection(u) {
			t.Fatalf("restricted vector %v outside the cone", u)
		}
	}
	if _, err := BuildVecSet(ds, nil, 0, 10, rng); err == nil {
		t.Error("gamma=0 accepted")
	}
}

func TestVecSetTopLazyGrowth(t *testing.T) {
	rng := xrand.New(3)
	ds := dataset.Independent(rng, 60, 3)
	vs, err := BuildVecSet(ds, nil, 3, 20, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	top3 := append([]int(nil), vs.Top(0, 3)...)
	top10 := vs.Top(0, 10)
	if !reflect.DeepEqual(top3, top10[:3]) {
		t.Errorf("prefix property violated: %v vs %v", top3, top10[:3])
	}
	// Against brute force.
	want := topk.TopK(ds, vs.Vecs[0], 10, nil)
	if !reflect.DeepEqual(top10, want) {
		t.Errorf("Top = %v, want %v", top10, want)
	}
	// k beyond n clamps.
	full := vs.Top(5, 1000)
	if len(full) != ds.N() {
		t.Errorf("clamped top has %d entries, want %d", len(full), ds.N())
	}
}

func TestASMSGuarantee(t *testing.T) {
	// ASMS output must contain the basis and have rank-regret <= k for
	// every vector in D.
	rng := xrand.New(5)
	for _, d := range []int{2, 3, 4} {
		ds := dataset.Anticorrelated(rng, 200, d)
		vs, err := BuildVecSet(ds, nil, 4, 300, xrand.New(6))
		if err != nil {
			t.Fatal(err)
		}
		basis := uniqueInts(ds.Basis())
		for _, k := range []int{1, 3, 10} {
			q := ASMS(ds, k, basis, vs)
			inQ := map[int]bool{}
			for _, id := range q {
				inQ[id] = true
			}
			for _, b := range basis {
				if !inQ[b] {
					t.Fatalf("d=%d k=%d: basis tuple %d missing from ASMS output", d, k, b)
				}
			}
			for v := 0; v < vs.Len(); v++ {
				hit := false
				for _, tid := range vs.Top(v, k) {
					if inQ[tid] {
						hit = true
						break
					}
				}
				if !hit {
					t.Fatalf("d=%d k=%d: vector %d has no member in its top-%d", d, k, v, k)
				}
			}
		}
	}
}

func TestASMSShrinksWithK(t *testing.T) {
	rng := xrand.New(7)
	ds := dataset.Anticorrelated(rng, 300, 3)
	vs, err := BuildVecSet(ds, nil, 4, 300, xrand.New(8))
	if err != nil {
		t.Fatal(err)
	}
	basis := uniqueInts(ds.Basis())
	s1 := len(ASMS(ds, 1, basis, vs))
	s20 := len(ASMS(ds, 20, basis, vs))
	if s20 > s1 {
		t.Errorf("ASMS size grew with k: k=1 gives %d, k=20 gives %d", s1, s20)
	}
	// At k = n everything is covered by the basis.
	q := ASMS(ds, ds.N(), basis, vs)
	if !reflect.DeepEqual(q, basis) {
		t.Errorf("k=n should return exactly the basis, got %v", q)
	}
}

func TestHDRRMBasic(t *testing.T) {
	rng := xrand.New(9)
	ds := dataset.Anticorrelated(rng, 400, 4)
	res, err := HDRRM(ds, 10, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) > 10 {
		t.Errorf("size %d > 10", len(res.IDs))
	}
	if res.K < 1 {
		t.Errorf("reported K = %d", res.K)
	}
	// Basis must be included (B ⊆ Q, required by Theorem 7's guarantee).
	inRes := map[int]bool{}
	for _, id := range res.IDs {
		inRes[id] = true
	}
	for _, b := range uniqueInts(ds.Basis()) {
		if !inRes[b] {
			t.Errorf("basis tuple %d missing", b)
		}
	}
	// Sampled rank-regret should be in the vicinity of K (the paper's
	// figures show the two lines "basically fit"). Allow generous slack:
	// the guarantee is probabilistic.
	sr := sampledRegret(ds, res.IDs, nil, 4000, 99)
	if sr > 12*res.K+25 {
		t.Errorf("sampled regret %d wildly exceeds the discrete bound K=%d", sr, res.K)
	}
}

func TestHDRRMShiftInvariance(t *testing.T) {
	rng := xrand.New(10)
	ds := dataset.Independent(rng, 300, 3)
	opts := testOpts()
	res1, err := HDRRM(ds, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	shifted := ds.Clone()
	shifted.Shift([]float64{3, 0.5, 10})
	res2, err := HDRRM(shifted, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.IDs, res2.IDs) {
		t.Errorf("shift changed HDRRM output: %v -> %v", res1.IDs, res2.IDs)
	}
	if res1.K != res2.K {
		t.Errorf("shift changed K: %d -> %d", res1.K, res2.K)
	}
}

func TestHDRRMNearOptimalIn2D(t *testing.T) {
	// In 2D we can compare against reasonable subsets: HDRRM's discrete
	// regret bound K should not be worse than a few times the regret of
	// the same-size optimum found by exhaustive sampling of the grid.
	rng := xrand.New(11)
	ds := dataset.Anticorrelated(rng, 200, 2)
	opts := testOpts()
	opts.M = 800
	res, err := HDRRM(ds, 6, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) > 6 {
		t.Fatalf("size %d > 6", len(res.IDs))
	}
	sr := sampledRegret(ds, res.IDs, nil, 4000, 100)
	// The whole dataset has 200 tuples; a size-6 set on anti-correlated 2D
	// data should land a regret far below n/2. This is a smoke bound; exact
	// comparisons happen in the 2D package.
	if sr > 60 {
		t.Errorf("sampled regret %d is implausibly bad for r=6, n=200", sr)
	}
}

func TestHDRRMBudgetTooSmall(t *testing.T) {
	rng := xrand.New(12)
	ds := dataset.Independent(rng, 100, 4)
	if _, err := HDRRM(ds, 2, testOpts()); err == nil {
		t.Error("r < basis size must error")
	}
	if _, err := HDRRM(ds, 0, testOpts()); err == nil {
		t.Error("r=0 must error")
	}
}

func TestHDRRMRestricted(t *testing.T) {
	rng := xrand.New(13)
	ds := dataset.Anticorrelated(rng, 300, 4)
	cone, err := funcspace.WeakRanking(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOpts()
	opts.Space = cone
	res, err := HDRRM(ds, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) > 10 {
		t.Fatalf("size %d > 10", len(res.IDs))
	}
	full, err := HDRRM(ds, 10, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Theorem/experiment expectation: restricting the space lowers the
	// achievable rank threshold (fewer functions to serve).
	if res.K > full.K {
		t.Errorf("restricted K=%d worse than full-space K=%d", res.K, full.K)
	}
	// The restricted solution must serve the cone well.
	sr := sampledRegret(ds, res.IDs, cone, 3000, 101)
	if sr > 12*res.K+25 {
		t.Errorf("restricted sampled regret %d vs K=%d", sr, res.K)
	}
}

func TestSampleSizeTheorem10(t *testing.T) {
	m := SampleSizeTheorem10(10000, 4, 10, 0.03, 0)
	// Paper-scale: tens of thousands.
	if m < 10000 || m > 200000 {
		t.Errorf("m = %d out of the expected magnitude", m)
	}
	// Smaller delta -> more samples.
	m2 := SampleSizeTheorem10(10000, 4, 10, 0.01, 0)
	if m2 <= m {
		t.Errorf("delta=0.01 gives %d, not more than delta=0.03's %d", m2, m)
	}
	// Cap applies.
	if got := SampleSizeTheorem10(10000, 4, 10, 0.01, 5000); got != 5000 {
		t.Errorf("cap ignored: %d", got)
	}
	// Degenerate inputs fall back to the floor.
	if got := SampleSizeTheorem10(5, 4, 10, 0.03, 0); got != 64 {
		t.Errorf("degenerate n: %d", got)
	}
}

// TestHDRRMTheorem6RatK: when HDRRM reports the threshold K for its
// discretized space, the fraction of the full space where the output
// achieves rank <= K (the k-ratio of Theorem 6) should be close to one.
func TestHDRRMTheorem6RatK(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(13), 1500, 3)
	opts := DefaultOptions()
	opts.MaxM = 3000
	res, err := HDRRM(ds, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := eval.RatK(ds, res.IDs, funcspace.NewFull(3), res.K, 20000, 29)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.95 {
		t.Errorf("Rat_%d of the HDRRM output = %.4f, want ~1 (Theorem 6)", res.K, ratio)
	}
	// A slightly relaxed threshold must cover essentially everything.
	relaxed, err := eval.RatK(ds, res.IDs, funcspace.NewFull(3), 2*res.K, 20000, 29)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed < 0.999 {
		t.Errorf("Rat_%d = %.4f, want ~1", 2*res.K, relaxed)
	}
}

// TestHDRRMTheorem7UtilityFloor: because the basis is forced into the
// output, every direction's best utility in the output is at least
// (1-eps) of the k-th best in the dataset (Theorem 7's statement, tested
// via sampling with a generous eps).
func TestHDRRMTheorem7UtilityFloor(t *testing.T) {
	ds := dataset.Independent(xrand.New(17), 1000, 3)
	opts := DefaultOptions()
	opts.MaxM = 2000
	res, err := HDRRM(ds, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	sp := funcspace.NewFull(3)
	const eps = 0.25
	for i := 0; i < 2000; i++ {
		u := sp.Sample(rng)
		best := 0.0
		for _, id := range res.IDs {
			if w := ds.Utility(u, id); w > best {
				best = w
			}
		}
		kth := topk.KthScore(ds, u, res.K, nil)
		if best < (1-eps)*kth {
			t.Fatalf("direction %v: best output utility %.4f < (1-eps) * k-th utility %.4f",
				u, best, kth)
		}
	}
}
