package algohd

import (
	"context"
	"fmt"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Variant switches off individual ingredients of HDRRM for ablation
// studies. The zero value is the full algorithm. Each field removes one
// design choice DESIGN.md calls out:
//
//   - NoBasis drops the forced inclusion of the boundary tuples B. The
//     output may use all r slots for coverage, but Theorem 7's worst-case
//     utility guarantee no longer holds: a direction dominated by a single
//     attribute can be left with an arbitrarily bad rank.
//   - NoGrid drops Db (the deterministic polar grid), keeping only the
//     sampled Da. Theorem 7's deterministic closeness argument is lost;
//     only the probabilistic Theorem 6 remains.
//   - NoSamples drops Da, keeping only the polar grid Db. Theorem 6's
//     distributional guarantee is lost; between grid directions the rank
//     can degrade, especially for large n where ranks change quickly.
type Variant struct {
	NoBasis   bool
	NoGrid    bool
	NoSamples bool
}

// Name returns a short identifier for benchmark labels.
func (v Variant) Name() string {
	switch {
	case v == (Variant{}):
		return "full"
	case v.NoBasis && !v.NoGrid && !v.NoSamples:
		return "no-basis"
	case v.NoGrid && !v.NoBasis && !v.NoSamples:
		return "no-grid"
	case v.NoSamples && !v.NoBasis && !v.NoGrid:
		return "no-samples"
	default:
		return fmt.Sprintf("basis=%v grid=%v samples=%v", !v.NoBasis, !v.NoGrid, !v.NoSamples)
	}
}

// HDRRMVariant runs HDRRM with the given ingredients removed. It is meant
// for ablation benchmarks; library users should call HDRRM.
func HDRRMVariant(ds *dataset.Dataset, r int, opts Options, v Variant) (Result, error) {
	return HDRRMVariantCtx(nil, ds, r, opts, v)
}

// HDRRMVariantCtx is HDRRMVariant with cooperative cancellation (see
// HDRRMCtx).
func HDRRMVariantCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options, v Variant) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	if v.NoGrid && v.NoSamples {
		return Result{}, fmt.Errorf("algohd: ablation removed both Da and Db; nothing left to cover")
	}
	gamma := opts.Gamma
	if gamma < 1 {
		gamma = 6
	}
	space := opts.space(d)
	rng := xrand.New(opts.Seed)
	m := opts.sampleSize(n, d, r)
	if v.NoSamples {
		m = 0
	}
	effGamma := gamma
	if v.NoGrid {
		effGamma = 1 // the minimal grid: axis directions only...
	}
	vs, err := BuildVecSetSampledCtx(ctx, ds, space, effGamma, m, rng, opts.Sampler)
	if err != nil {
		return Result{}, err
	}
	return HDRRMVariantWithVecSetCtx(ctx, ds, r, opts, v, vs)
}

// HDRRMVariantWithVecSetCtx runs an ablation's search phase against a
// caller-provided vector set (see HDRRMWithVecSetCtx). For the NoGrid
// ablation vs must have been built with gamma 1 and is stripped of its grid
// here; note the stripped set cannot share a top-K cache, so the engine
// only routes grid-keeping variants through its VecSet tier. For NoSamples,
// vs must have been built (or acquired) with m = 0.
func HDRRMVariantWithVecSetCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options, v Variant, vs *VecSet) (Result, error) {
	if ds.N() == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	if v.NoGrid && v.NoSamples {
		return Result{}, fmt.Errorf("algohd: ablation removed both Da and Db; nothing left to cover")
	}
	if v.NoGrid {
		// Drop Db, keeping only Da.
		if vs.GridCount >= len(vs.Vecs) {
			return Result{}, fmt.Errorf("algohd: no-grid ablation left an empty vector set")
		}
		vs = &VecSet{ds: ds, Vecs: vs.Vecs[vs.GridCount:], GridCount: 0}
	}
	vs.SetParallelism(opts.Parallelism)
	var basis []int
	if !v.NoBasis {
		basis = uniqueInts(ds.Basis())
		if len(basis) > r {
			return Result{}, fmt.Errorf("algohd: budget r=%d smaller than basis size %d (need r >= d)", r, len(basis))
		}
	}
	ids, bestK, err := searchSmallestK(ctx, ds, r, basis, vs)
	if err != nil {
		return Result{}, err
	}
	return Result{IDs: ids, K: bestK, VecCount: vs.Len()}, nil
}
