package algohd

import (
	"context"
	"fmt"
	"sync"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/xrand"
)

// AcquireOutcome reports what a SharedVecSet.Acquire call had to do, so
// callers (the engine's VecSet cache tier) can account for builds versus
// reuse.
type AcquireOutcome int

const (
	// VecSetReused means the requested view was served entirely from the
	// existing grid and sample stream.
	VecSetReused AcquireOutcome = iota
	// VecSetBuilt means this call built the grid and the initial samples.
	VecSetBuilt
	// VecSetExtended means the sample stream was extended to reach the
	// requested m; the grid and the existing prefix were reused.
	VecSetExtended
	// VecSetRepaired means this call materialized the set by incrementally
	// repairing another set's grid, samples, and top-K lists across a
	// dataset mutation (see NewRepairedVecSet) instead of building cold.
	VecSetRepaired
)

// String returns the outcome's metric label.
func (o AcquireOutcome) String() string {
	switch o {
	case VecSetBuilt:
		return "built"
	case VecSetExtended:
		return "extended"
	case VecSetRepaired:
		return "repaired"
	default:
		return "reused"
	}
}

// SharedVecSet is the reuse hook behind the engine's two-tier cache: one
// discretization of the function space — polar grid, sample stream, and the
// lazily built per-vector top-K lists, which dominate HDRRM's runtime —
// shared by every solve on the same (dataset, space, gamma, seed) no matter
// its sample count m. Acquire returns a VecSet view over the grid plus the
// first m samples that is identical to a freshly built set: samples are
// drawn one direction at a time from a single seeded stream, so a prefix of
// a longer Da equals a shorter Da built from the same seed, and a vector's
// top-K list does not depend on which other vectors are present.
//
// A SharedVecSet is safe for concurrent use. Acquire serializes build and
// extension work on an internal lock, which doubles as build coalescing:
// concurrent first acquirers block until the single build finishes and then
// reuse it. Waiting on that lock is not interruptible by ctx; the build
// itself is.
type SharedVecSet struct {
	ds      *dataset.Dataset
	space   funcspace.Space
	gamma   int
	seed    int64
	sampler Sampler

	mu        sync.Mutex
	rng       *xrand.Rand
	rngDirty  bool          // rng advanced past uncommitted draws; resync before use
	vecs      []geom.Vector // grid + samples drawn so far; grows, never edited
	gridCount int
	samples   int // sampled directions drawn so far
	built     bool
	tc        *topsCache

	// repair, when non-nil, defers materialization to an incremental repair
	// of another set's state (see NewRepairedVecSet); it is consumed by the
	// first Acquire.
	repair *repairSource
}

// repairSource names the set a pending repair draws from and the recorded
// dataset mutations separating the two datasets.
type repairSource struct {
	old    *SharedVecSet
	deltas []dataset.Delta
}

// Dataset returns the dataset this set discretizes; the pointer is fixed at
// construction.
func (s *SharedVecSet) Dataset() *dataset.Dataset { return s.ds }

// NewSharedVecSet prepares a shared vector set for the given build
// parameters without doing any work; the grid and samples are built by the
// first Acquire. A nil space means the full orthant; a nil sampler means
// uniform sampling on the space.
func NewSharedVecSet(ds *dataset.Dataset, space funcspace.Space, gamma int, seed int64, sampler Sampler) *SharedVecSet {
	return &SharedVecSet{ds: ds, space: space, gamma: gamma, seed: seed, sampler: sampler}
}

// Acquire returns a VecSet view over the grid plus the first m sampled
// directions, building the grid on first use and extending the sample
// stream when m exceeds what has been drawn so far. Views share one top-K
// cache, so repeated solves pay the expensive scoring passes once.
func (s *SharedVecSet) Acquire(ctx context.Context, m int) (*VecSet, AcquireOutcome, error) {
	if m < 0 {
		m = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	outcome := VecSetReused
	if !s.built {
		var err error
		if outcome, err = s.materializeLocked(ctx); err != nil {
			return nil, VecSetReused, err
		}
	}
	if m > s.samples {
		if s.rngDirty {
			if err := s.resyncRNG(ctx); err != nil {
				return nil, outcome, err
			}
		}
		vecs, err := drawSamples(ctx, s.space, m-s.samples, s.rng, s.sampler, s.vecs)
		if err != nil {
			// The rng has advanced past draws that were never committed, so
			// it no longer matches the end of the committed stream. Keep the
			// grid, samples, and top-K lists — they are all still valid —
			// and resync the rng before the next extension.
			s.rngDirty = true
			return nil, outcome, err
		}
		s.vecs = vecs
		s.samples = m
		s.tc.setVecs(vecs)
		if outcome == VecSetReused {
			outcome = VecSetExtended
		}
	}
	if s.gridCount+m == 0 {
		return nil, outcome, fmt.Errorf("algohd: empty vector set (space %s admits no directions)", s.space.Name())
	}
	return &VecSet{ds: s.ds, Vecs: s.vecs[:s.gridCount+m], GridCount: s.gridCount, tc: s.tc}, outcome, nil
}

// materializeLocked brings an un-built set to its built state: by repairing
// the pending repair source when one is set (and the repair succeeds), else
// by building the grid cold. Called with s.mu held. Errors are cancellation
// or invalid build parameters; a cancelled repair stays pending so a later
// Acquire retries it.
func (s *SharedVecSet) materializeLocked(ctx context.Context) (AcquireOutcome, error) {
	if src := s.repair; src != nil {
		s.repair = nil
		ok, err := s.repairFrom(ctx, src)
		if err != nil {
			s.repair = src
			return VecSetReused, err
		}
		if ok {
			return VecSetRepaired, nil
		}
		// Declined (rewrite, churn, truncated history): fall through to a
		// cold build, which is always correct.
	}
	grid, space, err := buildGrid(s.ds, s.space, s.gamma)
	if err != nil {
		return VecSetReused, err
	}
	s.space = space
	s.rng = xrand.New(s.seed)
	s.vecs = grid
	s.gridCount = len(grid)
	s.samples = 0
	s.tc = &topsCache{ds: s.ds, vecs: s.vecs}
	s.built = true
	return VecSetBuilt, nil
}

// materialize is materializeLocked behind the lock, used to force a repair
// chain's source into existence before repairing from it.
func (s *SharedVecSet) materialize(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.built {
		return nil
	}
	_, err := s.materializeLocked(ctx)
	return err
}

// resyncRNG repositions a fresh seeded rng at the end of the committed
// sample stream by replaying (and discarding) the draws that produced it:
// the stream is deterministic from the seed, so this is exact and costs
// only the sampling, not the top-K lists. Called with s.mu held.
func (s *SharedVecSet) resyncRNG(ctx context.Context) error {
	rng := xrand.New(s.seed)
	if s.samples > 0 {
		if _, err := drawSamples(ctx, s.space, s.samples, rng, s.sampler, nil); err != nil {
			return err
		}
	}
	s.rng = rng
	s.rngDirty = false
	return nil
}

// Samples returns how many sampled directions have been drawn so far.
func (s *SharedVecSet) Samples() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.samples
}
