package algohd

import (
	"context"
	"fmt"
	"sort"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/setcover"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Options configures the HD solvers. The zero value is not usable; call
// DefaultOptions.
type Options struct {
	// Gamma is the polar-grid discretization parameter (paper default 6).
	Gamma int
	// Delta is the error probability of Theorem 10 (paper default 0.03).
	// It determines the sample size m unless M is set.
	Delta float64
	// M overrides the sample count for Da (0 = use the Theorem 10 formula).
	M int
	// MaxM caps the Theorem 10 formula (0 = uncapped). The repository
	// default keeps laptop runs tractable; see DESIGN.md.
	MaxM int
	// Seed drives all randomness.
	Seed int64
	// Space restricts the utility space (nil = the full orthant, RRM).
	Space funcspace.Space
	// Sampler overrides the distribution Da is drawn from (nil = uniform
	// on the space): the paper's Section V.C generalization to non-uniform
	// user preference distributions. See GaussianPreference and
	// MixturePreference.
	Sampler Sampler
	// Parallelism bounds the worker goroutines of the top-K scoring passes
	// (0 = GOMAXPROCS). Results are bit-identical at every setting.
	Parallelism int
}

// DefaultOptions returns the paper's default parameters with the
// repository's laptop-scale sample cap.
func DefaultOptions() Options {
	return Options{Gamma: 6, Delta: 0.03, MaxM: 50000, Seed: 1}
}

// Result is the output of an HD solve.
type Result struct {
	// IDs are the chosen tuple ids, ascending.
	IDs []int
	// K is the solver's internal rank threshold: for HDRRM the smallest k
	// for which ASMS fit the budget, i.e. the guaranteed rank-regret with
	// respect to the discrete set D (the "red cross" line in the paper's
	// figures). Baselines report their own analogue or 0.
	K int
	// VecCount is |D|, for diagnostics.
	VecCount int
}

// space returns the effective utility space.
func (o Options) space(d int) funcspace.Space {
	if o.Space != nil {
		return o.Space
	}
	return funcspace.NewFull(d)
}

func (o Options) sampleSize(n, d, r int) int {
	if o.M > 0 {
		return o.M
	}
	delta := o.Delta
	if delta <= 0 {
		delta = 0.03
	}
	return SampleSizeTheorem10(n, d, r, delta, o.MaxM)
}

// SampleSize returns the effective Da size an HDRRM solve with output
// budget r will use: the M override when set, otherwise the Theorem 10
// formula under the options' delta and cap. Callers managing a shared
// vector set (see SharedVecSet) use it to request the right prefix.
func (o Options) SampleSize(n, d, r int) int { return o.sampleSize(n, d, r) }

// SampleSizeRRR returns the effective Da size an HDRRR solve at threshold k
// uses: the dual problem has no output budget, so the formula is evaluated
// at the budget n/k + d a threshold-k solution plausibly needs.
func (o Options) SampleSizeRRR(n, d, k int) int {
	return o.sampleSize(n, d, n/maxInt(k, 1)+d)
}

// EffectiveGamma returns the polar-grid resolution the solve will use: the
// configured Gamma, or the paper default 6 when unset.
func (o Options) EffectiveGamma() int {
	if o.Gamma < 1 {
		return 6
	}
	return o.Gamma
}

// uniqueInts sorts and deduplicates.
func uniqueInts(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	prev := -1
	for _, id := range ids {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}

// ASMS is the paper's Algorithm 2: the approximate solver for the MS
// problem. Given the threshold k it returns a superset Q of the basis B
// whose rank-regret with respect to the discrete vector set D is at most k,
// with |Q| <= (1 + ln|D|)·r* + d (Theorem 9).
func ASMS(ds *dataset.Dataset, k int, basis []int, vs *VecSet) []int {
	q, err := ASMSCtx(nil, ds, k, basis, vs)
	if err != nil {
		// Unreachable: a nil ctx never cancels and cancellation is the only
		// error ASMSCtx can produce.
		panic(err)
	}
	return q
}

// ASMSCtx is ASMS with cooperative cancellation: the top-K build, the
// coverage scan, and the greedy set-cover rounds all check ctx and abort
// with ctx.Err().
func ASMSCtx(ctx context.Context, ds *dataset.Dataset, k int, basis []int, vs *VecSet) ([]int, error) {
	n := ds.N()
	if k > n {
		k = n
	}
	tops, err := vs.TopsCtx(ctx, k)
	if err != nil {
		return nil, err
	}
	inBasis := make([]bool, n)
	for _, b := range basis {
		inBasis[b] = true
	}
	// Dk: vectors not covered by the basis; coverOf[t]: vectors (as indices
	// into Dk) covered by tuple t. Dense slices instead of maps: the scan
	// runs once per ASMS call over every vector in D and dominates the warm
	// path when the top-K lists are already cached.
	nDk := 0
	coverOf := make([][]int, n)
	var touched []int // tuple ids with a non-empty cover set, ascending
	for v := 0; v < vs.Len(); v++ {
		if v%4096 == 0 {
			if err := ctxutil.Cancelled(ctx); err != nil {
				return nil, err
			}
		}
		top := tops[v][:k]
		covered := false
		for _, t := range top {
			if inBasis[t] {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		u := nDk
		nDk++
		for _, t := range top {
			if coverOf[t] == nil {
				touched = append(touched, t)
			}
			coverOf[t] = append(coverOf[t], u)
		}
	}
	if nDk == 0 {
		return uniqueInts(append([]int(nil), basis...)), nil
	}
	// Set cover over the universe Dk, candidate tuples in ascending id order
	// for reproducibility.
	sort.Ints(touched)
	sortedSets := make([][]int, len(touched))
	for i, t := range touched {
		sortedSets[i] = coverOf[t]
	}
	chosen, ok, err := setcover.GreedyCtx(ctx, nDk, sortedSets)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Cannot happen: every vector's own top-1 tuple covers it.
		panic("algohd: ASMS universe not coverable")
	}
	q := append([]int(nil), basis...)
	for _, ci := range chosen {
		q = append(q, touched[ci])
	}
	return uniqueInts(q), nil
}

// HDRRM is the paper's Algorithm 3: it returns a set of at most r tuples
// whose rank-regret w.r.t. the discretized function space D is the smallest
// threshold ASMS can fit into the budget — a double approximation of the RRM
// optimum (Theorem 10). With Options.Space set it solves RRRM instead
// (Section V.C): Da is sampled from U and Db keeps only directions whose ray
// meets U.
func HDRRM(ds *dataset.Dataset, r int, opts Options) (Result, error) {
	return HDRRMCtx(nil, ds, r, opts)
}

// HDRRMCtx is HDRRM with cooperative cancellation plumbed through the
// vector-set build, the per-vector top-K lists, and the ASMS set-cover
// rounds. It returns ctx.Err() as soon as a hot loop observes cancellation.
func HDRRMCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	rng := xrand.New(opts.Seed)
	m := opts.sampleSize(n, d, r)
	vs, err := BuildVecSetSampledCtx(ctx, ds, opts.space(d), opts.EffectiveGamma(), m, rng, opts.Sampler)
	if err != nil {
		return Result{}, err
	}
	return HDRRMWithVecSetCtx(ctx, ds, r, opts, vs)
}

// HDRRMWithVecSetCtx runs the search phase of Algorithm 3 — forced basis
// plus the improved binary search over ASMS — against a caller-provided
// vector set: the reuse hook behind the engine's VecSet cache tier. The
// result is identical to HDRRMCtx when vs covers the same dataset and was
// built (or acquired from a SharedVecSet) with the solve's space, effective
// gamma, seed, and exactly SampleSize(n, d, r) sampled directions.
func HDRRMWithVecSetCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options, vs *VecSet) (Result, error) {
	if ds.N() == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	vs.SetParallelism(opts.Parallelism)
	basis := uniqueInts(ds.Basis())
	if len(basis) > r {
		return Result{}, fmt.Errorf("algohd: budget r=%d smaller than basis size %d (need r >= d)", r, len(basis))
	}
	ids, bestK, err := searchSmallestK(ctx, ds, r, basis, vs)
	if err != nil {
		return Result{}, err
	}
	return Result{IDs: ids, K: bestK, VecCount: vs.Len()}, nil
}

// searchSmallestK is the improved binary search of Section V.B.2: double k
// until ASMS fits the budget, then binary search (k/2, k]. It returns the
// fitting set and the smallest fitting threshold.
func searchSmallestK(ctx context.Context, ds *dataset.Dataset, r int, basis []int, vs *VecSet) ([]int, int, error) {
	n := ds.N()
	var fit []int
	k := 1
	for {
		q, err := ASMSCtx(ctx, ds, k, basis, vs)
		if err != nil {
			return nil, 0, err
		}
		if len(q) <= r {
			fit = q
			break
		}
		if k >= n {
			// Defensive: at k = n every vector is covered by any tuple, so
			// ASMS returns the basis which fits (checked by the caller).
			fit = q
			break
		}
		k *= 2
		if k > n {
			k = n
		}
	}
	low, high := k/2+1, k
	bestK := k
	for low < high {
		mid := (low + high) / 2
		q, err := ASMSCtx(ctx, ds, mid, basis, vs)
		if err != nil {
			return nil, 0, err
		}
		if len(q) <= r {
			fit = q
			bestK = mid
			high = mid
		} else {
			low = mid + 1
		}
	}
	return fit, bestK, nil
}

// HDRRR solves the dual rank-regret representative problem in HD: given a
// threshold k, it runs a single ASMS call and returns the (1 + ln|D|)-size-
// approximate minimum superset of the basis with rank-regret at most k for
// the discretized space D (Theorem 9). Result.K echoes k.
func HDRRR(ds *dataset.Dataset, k int, opts Options) (Result, error) {
	return HDRRRCtx(nil, ds, k, opts)
}

// HDRRRCtx is HDRRR with cooperative cancellation (see HDRRMCtx).
func HDRRRCtx(ctx context.Context, ds *dataset.Dataset, k int, opts Options) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("algohd: threshold k=%d out of range [1, %d]", k, n)
	}
	rng := xrand.New(opts.Seed)
	m := opts.SampleSizeRRR(n, d, k)
	vs, err := BuildVecSetSampledCtx(ctx, ds, opts.space(d), opts.EffectiveGamma(), m, rng, opts.Sampler)
	if err != nil {
		return Result{}, err
	}
	return HDRRRWithVecSetCtx(ctx, ds, k, opts, vs)
}

// HDRRRWithVecSetCtx runs the single threshold-k ASMS pass of HDRRR against
// a caller-provided vector set (see HDRRMWithVecSetCtx for the matching
// rules; the sample size here is SampleSizeRRR(n, d, k)).
func HDRRRWithVecSetCtx(ctx context.Context, ds *dataset.Dataset, k int, opts Options, vs *VecSet) (Result, error) {
	n := ds.N()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("algohd: threshold k=%d out of range [1, %d]", k, n)
	}
	vs.SetParallelism(opts.Parallelism)
	basis := uniqueInts(ds.Basis())
	q, err := ASMSCtx(ctx, ds, k, basis, vs)
	if err != nil {
		return Result{}, err
	}
	return Result{IDs: q, K: k, VecCount: vs.Len()}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
