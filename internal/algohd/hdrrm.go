package algohd

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/setcover"
	"github.com/rankregret/rankregret/internal/xrand"
)

func logE(x float64) float64 { return math.Log(x) }

// Options configures the HD solvers. The zero value is not usable; call
// DefaultOptions.
type Options struct {
	// Gamma is the polar-grid discretization parameter (paper default 6).
	Gamma int
	// Delta is the error probability of Theorem 10 (paper default 0.03).
	// It determines the sample size m unless M is set.
	Delta float64
	// M overrides the sample count for Da (0 = use the Theorem 10 formula).
	M int
	// MaxM caps the Theorem 10 formula (0 = uncapped). The repository
	// default keeps laptop runs tractable; see DESIGN.md.
	MaxM int
	// Seed drives all randomness.
	Seed int64
	// Space restricts the utility space (nil = the full orthant, RRM).
	Space funcspace.Space
	// Sampler overrides the distribution Da is drawn from (nil = uniform
	// on the space): the paper's Section V.C generalization to non-uniform
	// user preference distributions. See GaussianPreference and
	// MixturePreference.
	Sampler Sampler
}

// DefaultOptions returns the paper's default parameters with the
// repository's laptop-scale sample cap.
func DefaultOptions() Options {
	return Options{Gamma: 6, Delta: 0.03, MaxM: 50000, Seed: 1}
}

// Result is the output of an HD solve.
type Result struct {
	// IDs are the chosen tuple ids, ascending.
	IDs []int
	// K is the solver's internal rank threshold: for HDRRM the smallest k
	// for which ASMS fit the budget, i.e. the guaranteed rank-regret with
	// respect to the discrete set D (the "red cross" line in the paper's
	// figures). Baselines report their own analogue or 0.
	K int
	// VecCount is |D|, for diagnostics.
	VecCount int
}

// space returns the effective utility space.
func (o Options) space(d int) funcspace.Space {
	if o.Space != nil {
		return o.Space
	}
	return funcspace.NewFull(d)
}

func (o Options) sampleSize(n, d, r int) int {
	if o.M > 0 {
		return o.M
	}
	delta := o.Delta
	if delta <= 0 {
		delta = 0.03
	}
	return SampleSizeTheorem10(n, d, r, delta, o.MaxM)
}

// uniqueInts sorts and deduplicates.
func uniqueInts(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	prev := -1
	for _, id := range ids {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}

// ASMS is the paper's Algorithm 2: the approximate solver for the MS
// problem. Given the threshold k it returns a superset Q of the basis B
// whose rank-regret with respect to the discrete vector set D is at most k,
// with |Q| <= (1 + ln|D|)·r* + d (Theorem 9).
func ASMS(ds *dataset.Dataset, k int, basis []int, vs *VecSet) []int {
	q, err := ASMSCtx(nil, ds, k, basis, vs)
	if err != nil {
		// Unreachable: a nil ctx never cancels and cancellation is the only
		// error ASMSCtx can produce.
		panic(err)
	}
	return q
}

// ASMSCtx is ASMS with cooperative cancellation: the top-K build, the
// coverage scan, and the greedy set-cover rounds all check ctx and abort
// with ctx.Err().
func ASMSCtx(ctx context.Context, ds *dataset.Dataset, k int, basis []int, vs *VecSet) ([]int, error) {
	if err := vs.EnsureTopKCtx(ctx, k); err != nil {
		return nil, err
	}
	inBasis := make(map[int]bool, len(basis))
	for _, b := range basis {
		inBasis[b] = true
	}
	// Dk: vectors not covered by the basis; VDk(t): vectors covered by t.
	var dk []int // indices into vs.Vecs
	coverOf := make(map[int][]int)
	for v := 0; v < vs.Len(); v++ {
		if v%4096 == 0 {
			if err := ctxutil.Cancelled(ctx); err != nil {
				return nil, err
			}
		}
		top := vs.Top(v, k)
		covered := false
		for _, t := range top {
			if inBasis[t] {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		u := len(dk)
		dk = append(dk, v)
		for _, t := range top {
			coverOf[t] = append(coverOf[t], u)
		}
	}
	if len(dk) == 0 {
		return uniqueInts(append([]int(nil), basis...)), nil
	}
	// Set cover over the universe Dk.
	tuples := make([]int, 0, len(coverOf))
	sets := make([][]int, 0, len(coverOf))
	for t, vset := range coverOf {
		tuples = append(tuples, t)
		sets = append(sets, vset)
	}
	// Deterministic order for reproducibility (map iteration is random).
	ord := make([]int, len(tuples))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool { return tuples[ord[a]] < tuples[ord[b]] })
	sortedTuples := make([]int, len(ord))
	sortedSets := make([][]int, len(ord))
	for i, o := range ord {
		sortedTuples[i] = tuples[o]
		sortedSets[i] = sets[o]
	}
	chosen, ok, err := setcover.GreedyCtx(ctx, len(dk), sortedSets)
	if err != nil {
		return nil, err
	}
	if !ok {
		// Cannot happen: every vector's own top-1 tuple covers it.
		panic("algohd: ASMS universe not coverable")
	}
	q := append([]int(nil), basis...)
	for _, ci := range chosen {
		q = append(q, sortedTuples[ci])
	}
	return uniqueInts(q), nil
}

// HDRRM is the paper's Algorithm 3: it returns a set of at most r tuples
// whose rank-regret w.r.t. the discretized function space D is the smallest
// threshold ASMS can fit into the budget — a double approximation of the RRM
// optimum (Theorem 10). With Options.Space set it solves RRRM instead
// (Section V.C): Da is sampled from U and Db keeps only directions whose ray
// meets U.
func HDRRM(ds *dataset.Dataset, r int, opts Options) (Result, error) {
	return HDRRMCtx(nil, ds, r, opts)
}

// HDRRMCtx is HDRRM with cooperative cancellation plumbed through the
// vector-set build, the per-vector top-K lists, and the ASMS set-cover
// rounds. It returns ctx.Err() as soon as a hot loop observes cancellation.
func HDRRMCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	gamma := opts.Gamma
	if gamma < 1 {
		gamma = 6
	}
	space := opts.space(d)
	rng := xrand.New(opts.Seed)
	m := opts.sampleSize(n, d, r)
	vs, err := BuildVecSetSampledCtx(ctx, ds, space, gamma, m, rng, opts.Sampler)
	if err != nil {
		return Result{}, err
	}
	basis := uniqueInts(ds.Basis())
	if len(basis) > r {
		return Result{}, fmt.Errorf("algohd: budget r=%d smaller than basis size %d (need r >= d)", r, len(basis))
	}
	ids, bestK, err := searchSmallestK(ctx, ds, r, basis, vs)
	if err != nil {
		return Result{}, err
	}
	return Result{IDs: ids, K: bestK, VecCount: vs.Len()}, nil
}

// searchSmallestK is the improved binary search of Section V.B.2: double k
// until ASMS fits the budget, then binary search (k/2, k]. It returns the
// fitting set and the smallest fitting threshold.
func searchSmallestK(ctx context.Context, ds *dataset.Dataset, r int, basis []int, vs *VecSet) ([]int, int, error) {
	n := ds.N()
	var fit []int
	k := 1
	for {
		q, err := ASMSCtx(ctx, ds, k, basis, vs)
		if err != nil {
			return nil, 0, err
		}
		if len(q) <= r {
			fit = q
			break
		}
		if k >= n {
			// Defensive: at k = n every vector is covered by any tuple, so
			// ASMS returns the basis which fits (checked by the caller).
			fit = q
			break
		}
		k *= 2
		if k > n {
			k = n
		}
	}
	low, high := k/2+1, k
	bestK := k
	for low < high {
		mid := (low + high) / 2
		q, err := ASMSCtx(ctx, ds, mid, basis, vs)
		if err != nil {
			return nil, 0, err
		}
		if len(q) <= r {
			fit = q
			bestK = mid
			high = mid
		} else {
			low = mid + 1
		}
	}
	return fit, bestK, nil
}

// HDRRR solves the dual rank-regret representative problem in HD: given a
// threshold k, it runs a single ASMS call and returns the (1 + ln|D|)-size-
// approximate minimum superset of the basis with rank-regret at most k for
// the discretized space D (Theorem 9). Result.K echoes k.
func HDRRR(ds *dataset.Dataset, k int, opts Options) (Result, error) {
	return HDRRRCtx(nil, ds, k, opts)
}

// HDRRRCtx is HDRRR with cooperative cancellation (see HDRRMCtx).
func HDRRRCtx(ctx context.Context, ds *dataset.Dataset, k int, opts Options) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("algohd: threshold k=%d out of range [1, %d]", k, n)
	}
	gamma := opts.Gamma
	if gamma < 1 {
		gamma = 6
	}
	space := opts.space(d)
	rng := xrand.New(opts.Seed)
	m := opts.sampleSize(n, d, n/maxInt(k, 1)+d)
	vs, err := BuildVecSetSampledCtx(ctx, ds, space, gamma, m, rng, opts.Sampler)
	if err != nil {
		return Result{}, err
	}
	basis := uniqueInts(ds.Basis())
	q, err := ASMSCtx(ctx, ds, k, basis, vs)
	if err != nil {
		return Result{}, err
	}
	return Result{IDs: q, K: k, VecCount: vs.Len()}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
