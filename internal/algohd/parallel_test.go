package algohd

import (
	"reflect"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Parallelism is a latency knob, never a result knob: HDRRM, HDRRR, and the
// ablation variants must produce bit-identical results at every worker
// count. Run with -race this also exercises the tile hand-off in the
// scoring pass.
func TestParallelismBitIdentical(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxM = 3000
	w3, err := funcspace.WeakRanking(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sets := []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"anti", dataset.Anticorrelated(xrand.New(11), 600, 3)},
		{"weather", dataset.SimWeather(xrand.New(1), 800)},
	}
	for _, s := range sets {
		type outcome struct {
			rrm, rrr, variant Result
		}
		var base *outcome
		for _, par := range []int{1, 4, 16} {
			o := opts
			o.Parallelism = par
			var got outcome
			var err error
			if got.rrm, err = HDRRM(s.ds, 8, o); err != nil {
				t.Fatalf("%s par=%d HDRRM: %v", s.name, par, err)
			}
			if got.rrr, err = HDRRR(s.ds, 30, o); err != nil {
				t.Fatalf("%s par=%d HDRRR: %v", s.name, par, err)
			}
			ro := o
			if s.ds.Dim() == 3 {
				// Exercise the restricted-space (RRRM) path too.
				ro.Space = w3
			}
			if got.variant, err = HDRRMVariant(s.ds, 8, ro, Variant{NoBasis: true}); err != nil {
				t.Fatalf("%s par=%d variant: %v", s.name, par, err)
			}
			if base == nil {
				base = &got
				continue
			}
			if !reflect.DeepEqual(got, *base) {
				t.Errorf("%s: parallelism %d result differs from parallelism 1:\n got %+v\nwant %+v",
					s.name, par, got, *base)
			}
		}
	}
}
