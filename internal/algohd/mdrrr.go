package algohd

import (
	"context"
	"fmt"
	"sort"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/setcover"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

// kSetKey fingerprints a top-k set (order-insensitive) for deduplication.
func kSetKey(ids []int) string {
	s := append([]int(nil), ids...)
	sort.Ints(s)
	buf := make([]byte, 0, len(s)*3)
	for _, id := range s {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(buf)
}

// discoverKSets collects the distinct top-k sets ("k-sets" in the paper's
// terminology, following Asudeh et al.) witnessed by the vector set. It
// returns the list of distinct sets.
func discoverKSets(ctx context.Context, ds *dataset.Dataset, vs *VecSet, k int) ([][]int, error) {
	if k > ds.N() {
		k = ds.N()
	}
	tops, err := vs.TopsCtx(ctx, k)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out [][]int
	for v := 0; v < vs.Len(); v++ {
		if v%4096 == 0 {
			if err := ctxutil.Cancelled(ctx); err != nil {
				return nil, err
			}
		}
		top := tops[v][:k]
		key := kSetKey(top)
		if !seen[key] {
			seen[key] = true
			cp := append([]int(nil), top...)
			out = append(out, cp)
		}
	}
	return out, nil
}

// hittingSet returns a small set of tuple ids intersecting every k-set,
// via greedy set cover on the dual instance (tuple t covers the k-sets that
// contain it).
func hittingSet(ctx context.Context, ksets [][]int) ([]int, error) {
	coverOf := map[int][]int{}
	for w, ks := range ksets {
		for _, t := range ks {
			coverOf[t] = append(coverOf[t], w)
		}
	}
	tuples := make([]int, 0, len(coverOf))
	for t := range coverOf {
		tuples = append(tuples, t)
	}
	sort.Ints(tuples)
	sets := make([][]int, len(tuples))
	for i, t := range tuples {
		sets[i] = coverOf[t]
	}
	chosen, ok, err := setcover.GreedyCtx(ctx, len(ksets), sets)
	if err != nil {
		return nil, err
	}
	if !ok {
		panic("algohd: hitting set universe not coverable")
	}
	out := make([]int, 0, len(chosen))
	for _, ci := range chosen {
		out = append(out, tuples[ci])
	}
	return uniqueInts(out), nil
}

// MDRRRr is the randomized baseline of Asudeh et al.: discover k-sets by
// sampling utility vectors, then choose a minimal hitting set — a tuple in
// every discovered top-k set guarantees rank <= k for the sampled functions,
// but (as the paper stresses) there is no guarantee for the full space.
// Adapted to RRM with the improved doubling binary search on k. Options.M
// controls the number of sampled directions (the paper's |W|-driven budget);
// Options.Space restricts the sampling for RRRM.
func MDRRRr(ds *dataset.Dataset, r int, opts Options) (Result, error) {
	return MDRRRrCtx(nil, ds, r, opts)
}

// MDRRRrCtx is MDRRRr with cooperative cancellation in the sampling,
// k-set discovery, and hitting-set loops.
func MDRRRrCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (Result, error) {
	n, d := ds.N(), ds.Dim()
	if n == 0 {
		return Result{}, fmt.Errorf("algohd: empty dataset")
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	space := opts.space(d)
	rng := xrand.New(opts.Seed)
	m := opts.M
	if m <= 0 {
		m = 1024
	}
	// Pure sampling (no grid): the k-set discovery in MDRRRr is Monte Carlo.
	vs, err := BuildVecSetCtx(ctx, ds, space, 1, m, rng)
	if err != nil {
		return Result{}, err
	}

	solve := func(k int) ([]int, error) {
		ksets, err := discoverKSets(ctx, ds, vs, k)
		if err != nil {
			return nil, err
		}
		return hittingSet(ctx, ksets)
	}
	var fit []int
	k := 1
	for {
		s, err := solve(k)
		if err != nil {
			return Result{}, err
		}
		if len(s) <= r {
			fit = s
			break
		}
		if k >= n {
			fit = s
			break
		}
		k *= 2
		if k > n {
			k = n
		}
	}
	low, high := k/2+1, k
	bestK := k
	for low < high {
		mid := (low + high) / 2
		s, err := solve(mid)
		if err != nil {
			return Result{}, err
		}
		if len(s) <= r {
			fit = s
			bestK = mid
			high = mid
		} else {
			low = mid + 1
		}
	}
	return Result{IDs: fit, K: bestK, VecCount: vs.Len()}, nil
}

// MDRRR is the deterministic k-set variant. The authors' original
// enumerates k-sets with computational-geometry machinery and "does not
// scale beyond a few hundred tuples"; this reimplementation preserves that
// contract: in 2D the sweep enumerates k-sets exactly (algo2d.KSets2D), so
// MDRRR carries the paper's rank-regret guarantee of k there; for d > 2 a
// dense deterministic polar grid stands in for the geometric enumeration.
// It refuses datasets beyond maxN tuples to honor its role as a small-scale
// reference (pass 0 for the default 500).
func MDRRR(ds *dataset.Dataset, r int, opts Options, maxN int) (Result, error) {
	return MDRRRCtx(nil, ds, r, opts, maxN)
}

// MDRRRCtx is MDRRR with cooperative cancellation (see MDRRRrCtx).
func MDRRRCtx(ctx context.Context, ds *dataset.Dataset, r int, opts Options, maxN int) (Result, error) {
	if maxN <= 0 {
		maxN = 500
	}
	n, d := ds.N(), ds.Dim()
	if n > maxN {
		return Result{}, fmt.Errorf("algohd: MDRRR is a small-scale reference (n=%d > %d); use HDRRM", n, maxN)
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algohd: output size %d, need >= 1", r)
	}
	space := opts.space(d)
	if d == 2 && opts.Space == nil {
		return mdrrrExact2D(ctx, ds, r)
	}
	rng := xrand.New(opts.Seed)
	// Dense deterministic grid: gamma chosen so the grid alone has at least
	// ~n^(d-1)-ish resolution at small n, plus samples for safety.
	gamma := 64
	if d > 3 {
		gamma = 24
	}
	if d > 4 {
		gamma = 12
	}
	vs, err := BuildVecSetCtx(ctx, ds, space, gamma, 2048, rng)
	if err != nil {
		return Result{}, err
	}
	solve := func(k int) ([]int, error) {
		ksets, err := discoverKSets(ctx, ds, vs, k)
		if err != nil {
			return nil, err
		}
		return hittingSet(ctx, ksets)
	}
	var fit []int
	k := 1
	for {
		s, err := solve(k)
		if err != nil {
			return Result{}, err
		}
		if len(s) <= r {
			fit = s
			break
		}
		if k >= n {
			fit = s
			break
		}
		k *= 2
		if k > n {
			k = n
		}
	}
	low, high := k/2+1, k
	bestK := k
	for low < high {
		mid := (low + high) / 2
		s, err := solve(mid)
		if err != nil {
			return Result{}, err
		}
		if len(s) <= r {
			fit = s
			bestK = mid
			high = mid
		} else {
			low = mid + 1
		}
	}
	return Result{IDs: fit, K: bestK, VecCount: vs.Len()}, nil
}

// TopKAt is a small helper used by tests: the top-k ids under u.
func TopKAt(ds *dataset.Dataset, u []float64, k int) []int {
	return topk.TopK(ds, u, k, nil)
}

// mdrrrExact2D runs MDRRR with the exact 2D k-set enumeration: the hitting
// set is over every k-set (not a sample), so the returned set's rank-regret
// is provably at most Result.K for the whole space, as in the paper's
// original MDRRR.
func mdrrrExact2D(ctx context.Context, ds *dataset.Dataset, r int) (Result, error) {
	n := ds.N()
	solve := func(k int) ([]int, int, error) {
		if err := ctxutil.Cancelled(ctx); err != nil {
			return nil, 0, err
		}
		ksets, err := algo2d.KSets2D(ds, k)
		if err != nil {
			return nil, 0, err
		}
		hs, err := hittingSet(ctx, ksets)
		if err != nil {
			return nil, 0, err
		}
		return hs, len(ksets), nil
	}
	var fit []int
	vecs := 0
	k := 1
	for {
		s, w, err := solve(k)
		if err != nil {
			return Result{}, err
		}
		if len(s) <= r || k >= n {
			fit, vecs = s, w
			break
		}
		k *= 2
		if k > n {
			k = n
		}
	}
	low, high := k/2+1, k
	bestK := k
	for low < high {
		mid := (low + high) / 2
		s, w, err := solve(mid)
		if err != nil {
			return Result{}, err
		}
		if len(s) <= r {
			fit, vecs = s, w
			bestK = mid
			high = mid
		} else {
			low = mid + 1
		}
	}
	return Result{IDs: fit, K: bestK, VecCount: vecs}, nil
}
