package lp

import (
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/xrand"
)

// randomLP builds a bounded random LP max c.x s.t. Ax <= b, x >= 0 that is
// always feasible (b >= 0 makes x = 0 feasible) and bounded (a row of ones
// with a finite cap).
func randomLP(seed int64, dd, mm int) (c []float64, a [][]float64, b []float64) {
	d := dd
	if d < 0 {
		d = -d
	}
	d = d%4 + 1
	m := mm
	if m < 0 {
		m = -m
	}
	m = m%5 + 1
	rng := xrand.New(seed)
	c = make([]float64, d)
	for i := range c {
		c[i] = rng.Float64()*2 - 0.5
	}
	a = make([][]float64, 0, m+1)
	b = make([]float64, 0, m+1)
	for r := 0; r < m; r++ {
		row := make([]float64, d)
		for i := range row {
			row[i] = rng.Float64()*2 - 0.5
		}
		a = append(a, row)
		b = append(b, rng.Float64()*3) // non-negative: x=0 feasible
	}
	cap := make([]float64, d)
	for i := range cap {
		cap[i] = 1
	}
	a = append(a, cap)
	b = append(b, 5) // sum(x) <= 5 bounds the feasible region
	return c, a, b
}

// Property: the reported optimum is feasible and weakly dominates x = 0 and
// a cloud of random feasible points.
func TestQuickMaximizeOptimality(t *testing.T) {
	f := func(seed int64, dd, mm int) bool {
		c, a, b := randomLP(seed, dd, mm)
		res, err := Maximize(c, a, b)
		if err != nil || res.Status != Optimal {
			return false
		}
		// Feasibility of the reported solution.
		for r := range a {
			lhs := 0.0
			for i := range c {
				lhs += a[r][i] * res.X[i]
			}
			if lhs > b[r]+1e-7 {
				return false
			}
		}
		for _, x := range res.X {
			if x < -1e-9 {
				return false
			}
		}
		// x = 0 is feasible, so the optimum is at least c.0 = 0 when
		// maximizing with any c having a non-negative direction available;
		// in general optimum >= 0 because 0 is feasible.
		if res.Objective < -1e-7 {
			return false
		}
		// Random feasible points never beat the optimum.
		rng := xrand.New(seed + 99)
		d := len(c)
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, d)
			for i := range x {
				x[i] = rng.Float64()
			}
			feasible := true
			for r := range a {
				lhs := 0.0
				for i := range x {
					lhs += a[r][i] * x[i]
				}
				if lhs > b[r] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			val := 0.0
			for i := range x {
				val += c[i] * x[i]
			}
			if val > res.Objective+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the objective scales the optimum (positive homogeneity
// of LP optima in c).
func TestQuickMaximizeHomogeneous(t *testing.T) {
	f := func(seed int64, dd, mm int) bool {
		c, a, b := randomLP(seed, dd, mm)
		r1, err := Maximize(c, a, b)
		if err != nil || r1.Status != Optimal {
			return false
		}
		c2 := make([]float64, len(c))
		for i := range c {
			c2[i] = 3 * c[i]
		}
		r2, err := Maximize(c2, a, b)
		if err != nil || r2.Status != Optimal {
			return false
		}
		diff := r2.Objective - 3*r1.Objective
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6*(1+3*abs(r1.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
