// Package lp implements a small dense linear-programming solver: the primal
// simplex method with Bland's anti-cycling rule over the standard form
//
//	maximize c.x subject to A.x <= b, x >= 0.
//
// The rank-regret code uses it for U-dominance tests on general convex
// polytope utility spaces (Definition 5: t U-dominates t' iff the minimum of
// (t - t').u over U is >= 0) and for the MDRRR baseline's feasibility checks.
// Problem sizes are tiny (d variables, at most a few dozen constraints), so a
// dense tableau is the right tool; no sparse machinery, no external
// dependencies.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Unbounded means the objective can be made arbitrarily large.
	Unbounded
	// Infeasible means no point satisfies the constraints.
	Infeasible
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ErrNumeric is returned when the tableau degrades numerically (it should
// not happen at the scales this repository uses).
var ErrNumeric = errors.New("lp: numerical failure")

const eps = 1e-9

// Result holds the solution of a solve.
type Result struct {
	Status Status
	// X is the optimal assignment (length = number of variables) when
	// Status == Optimal.
	X []float64
	// Objective is c.X when Status == Optimal.
	Objective float64
}

// Maximize solves max c.x s.t. A.x <= b, x >= 0 using the two-phase primal
// simplex method. A has one row per constraint; rows must all have len(c)
// columns. b entries may be negative (phase one handles them).
func Maximize(c []float64, a [][]float64, b []float64) (Result, error) {
	n := len(c)
	m := len(a)
	if len(b) != m {
		return Result{}, fmt.Errorf("lp: %d constraint rows but %d bounds", m, len(b))
	}
	for i, row := range a {
		if len(row) != n {
			return Result{}, fmt.Errorf("lp: constraint row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	if n == 0 {
		return Result{Status: Optimal, X: nil, Objective: 0}, nil
	}

	t := newTableau(c, a, b)
	if t.needsPhaseOne() {
		if err := t.phaseOne(); err != nil {
			return Result{}, err
		}
		if t.infeasible {
			return Result{Status: Infeasible}, nil
		}
	}
	if err := t.phaseTwo(); err != nil {
		return Result{}, err
	}
	if t.unbounded {
		return Result{Status: Unbounded}, nil
	}
	x := t.solution()
	obj := 0.0
	for j, cj := range c {
		obj += cj * x[j]
	}
	return Result{Status: Optimal, X: x, Objective: obj}, nil
}

// Minimize solves min c.x s.t. A.x <= b, x >= 0 by negating the objective.
func Minimize(c []float64, a [][]float64, b []float64) (Result, error) {
	neg := make([]float64, len(c))
	for i, v := range c {
		neg[i] = -v
	}
	res, err := Maximize(neg, a, b)
	if err != nil || res.Status != Optimal {
		return res, err
	}
	res.Objective = -res.Objective
	return res, nil
}

// Feasible reports whether {x >= 0 : A.x <= b} is non-empty.
func Feasible(a [][]float64, b []float64) (bool, error) {
	n := 0
	if len(a) > 0 {
		n = len(a[0])
	}
	res, err := Maximize(make([]float64, n), a, b)
	if err != nil {
		return false, err
	}
	return res.Status == Optimal, nil
}

// tableau is a dense simplex tableau with m rows (constraints) and columns
// for the n structural variables, m slack variables, and (during phase one)
// artificial variables.
type tableau struct {
	n, m       int
	cols       int // total columns excluding the RHS
	rows       [][]float64
	rhs        []float64
	basis      []int // basis[i] = column basic in row i
	obj        []float64
	objRHS     float64 // objective value of the current basic solution
	artStart   int     // first artificial column, or -1
	banFrom    int     // columns >= banFrom may not enter the basis (-1: none)
	infeasible bool
	unbounded  bool
}

func newTableau(c []float64, a [][]float64, b []float64) *tableau {
	n, m := len(c), len(a)
	t := &tableau{n: n, m: m, artStart: -1, banFrom: -1}
	t.cols = n + m
	t.rows = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)
	for i := 0; i < m; i++ {
		row := make([]float64, t.cols)
		copy(row, a[i])
		row[n+i] = 1 // slack
		t.rows[i] = row
		t.rhs[i] = b[i]
		t.basis[i] = n + i
	}
	t.obj = make([]float64, t.cols)
	copy(t.obj, c)
	return t
}

func (t *tableau) needsPhaseOne() bool {
	for _, v := range t.rhs {
		if v < -eps {
			return true
		}
	}
	return false
}

// phaseOne introduces artificial variables for rows with negative RHS and
// minimizes their sum.
func (t *tableau) phaseOne() error {
	art := 0
	for i := 0; i < t.m; i++ {
		if t.rhs[i] < -eps {
			art++
		}
	}
	t.artStart = t.cols
	newCols := t.cols + art
	k := t.cols
	for i := 0; i < t.m; i++ {
		grown := make([]float64, newCols)
		copy(grown, t.rows[i])
		t.rows[i] = grown
		if t.rhs[i] < -eps {
			// Negate the row so RHS is positive, then add an artificial.
			for j := range t.rows[i] {
				t.rows[i][j] = -t.rows[i][j]
			}
			t.rhs[i] = -t.rhs[i]
			t.rows[i][k] = 1
			t.basis[i] = k
			k++
		}
	}
	t.cols = newCols

	// Phase-one objective: maximize -(sum of artificials). With artificial
	// a_k basic in row k, -sum(a_k) = -sum(rhs_k) + sum_j (sum_k row_k[j]) x_j,
	// so the reduced costs are the column sums over artificial rows (with
	// artificial columns themselves banned from entering) and the starting
	// objective value is -sum(rhs_k).
	phase := make([]float64, t.cols)
	var phaseRHS float64
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart {
			for j := 0; j < t.artStart; j++ {
				phase[j] += t.rows[i][j]
			}
			phaseRHS += t.rhs[i]
		}
	}
	savedObj, savedRHS := t.obj, t.objRHS
	t.obj, t.objRHS = phase, -phaseRHS
	t.banFrom = t.artStart
	if err := t.iterate(); err != nil {
		return err
	}
	if t.unbounded {
		return fmt.Errorf("%w: phase one unbounded", ErrNumeric)
	}
	if t.objRHS < -eps {
		t.infeasible = true
		return nil
	}
	// Drive any remaining artificial variables out of the basis.
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artStart {
			pivoted := false
			for j := 0; j < t.artStart; j++ {
				if math.Abs(t.rows[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; leave the artificial basic at zero.
				continue
			}
		}
	}
	// Restore the real objective, priced out against the current basis.
	t.obj = make([]float64, t.cols)
	copy(t.obj, savedObj)
	t.objRHS = savedRHS
	for i := 0; i < t.m; i++ {
		bj := t.basis[i]
		cb := t.obj[bj]
		if cb != 0 {
			for j := 0; j < t.cols; j++ {
				t.obj[j] -= cb * t.rows[i][j]
			}
			t.objRHS += cb * t.rhs[i]
		}
	}
	// Artificials stay banned from entering in phase two (banFrom persists).
	return nil
}

func (t *tableau) phaseTwo() error {
	if t.artStart < 0 {
		// Price out the objective against the (slack) basis: slacks have zero
		// cost, so nothing to do.
	}
	return t.iterate()
}

// iterate runs simplex pivots (Bland's rule) until optimal or unbounded.
func (t *tableau) iterate() error {
	maxIter := 200 * (t.cols + t.m + 10)
	for iter := 0; iter < maxIter; iter++ {
		// Entering variable: first column with positive reduced cost
		// (Bland's rule), skipping banned (artificial) columns.
		limit := t.cols
		if t.banFrom >= 0 && t.banFrom < limit {
			limit = t.banFrom
		}
		enter := -1
		for j := 0; j < limit; j++ {
			if t.obj[j] > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil // optimal
		}
		// Leaving row: min ratio, ties by smallest basis index (Bland).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.rows[i][enter]
			if aij > eps {
				ratio := t.rhs[i] / aij
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			t.unbounded = true
			return nil
		}
		t.pivot(leave, enter)
	}
	return fmt.Errorf("%w: iteration limit exceeded", ErrNumeric)
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	p := t.rows[leave][enter]
	inv := 1 / p
	for j := 0; j < t.cols; j++ {
		t.rows[leave][j] *= inv
	}
	t.rhs[leave] *= inv
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.rows[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.rows[i][j] -= f * t.rows[leave][j]
		}
		t.rhs[i] -= f * t.rhs[leave]
	}
	f := t.obj[enter]
	if f != 0 {
		for j := 0; j < t.cols; j++ {
			t.obj[j] -= f * t.rows[leave][j]
		}
		t.objRHS += f * t.rhs[leave]
	}
	t.basis[leave] = enter
}

func (t *tableau) solution() []float64 {
	x := make([]float64, t.n)
	for i, bj := range t.basis {
		if bj < t.n {
			x[bj] = t.rhs[i]
		}
	}
	// Clean tiny negatives from roundoff.
	for j := range x {
		if x[j] < 0 && x[j] > -eps {
			x[j] = 0
		}
	}
	return x
}
