package lp

import (
	"math"
	"testing"

	"github.com/rankregret/rankregret/internal/xrand"
)

func TestMaximizeTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> x=2, y=6, obj=36.
	res, err := Maximize(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-36) > 1e-7 {
		t.Errorf("objective = %v, want 36", res.Objective)
	}
	if math.Abs(res.X[0]-2) > 1e-7 || math.Abs(res.X[1]-6) > 1e-7 {
		t.Errorf("X = %v, want [2 6]", res.X)
	}
}

func TestMinimize(t *testing.T) {
	// min x + y s.t. -x - y <= -2 (i.e. x + y >= 2) -> obj = 2.
	res, err := Minimize(
		[]float64{1, 1},
		[][]float64{{-1, -1}},
		[]float64{-2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-2) > 1e-7 {
		t.Errorf("objective = %v, want 2", res.Objective)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only y constrained.
	res, err := Maximize([]float64{1, 0}, [][]float64{{0, 1}}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and -x <= -3 (x >= 3) cannot both hold.
	res, err := Maximize([]float64{1}, [][]float64{{1}, {-1}}, []float64{1, -3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestFeasible(t *testing.T) {
	ok, err := Feasible([][]float64{{1, 1}}, []float64{1})
	if err != nil || !ok {
		t.Errorf("simple region reported infeasible (%v, %v)", ok, err)
	}
	ok, err = Feasible([][]float64{{1}, {-1}}, []float64{1, -3})
	if err != nil || ok {
		t.Errorf("empty region reported feasible (%v, %v)", ok, err)
	}
}

func TestNegativeRHSFeasiblePath(t *testing.T) {
	// max x + y s.t. x + y <= 4, x >= 1 (as -x <= -1), y >= 1. Optimum 4.
	res, err := Maximize(
		[]float64{1, 1},
		[][]float64{{1, 1}, {-1, 0}, {0, -1}},
		[]float64{4, -1, -1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-4) > 1e-7 {
		t.Fatalf("got %v obj %v, want optimal 4", res.Status, res.Objective)
	}
	if res.X[0] < 1-1e-7 || res.X[1] < 1-1e-7 {
		t.Errorf("X = %v violates lower bounds", res.X)
	}
}

func TestDegenerateTies(t *testing.T) {
	// Degenerate vertex: several constraints active at the optimum. Bland's
	// rule must still terminate.
	res, err := Maximize(
		[]float64{1, 1, 1},
		[][]float64{
			{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
			{1, 1, 0}, {0, 1, 1}, {1, 0, 1},
			{1, 1, 1},
		},
		[]float64{1, 1, 1, 2, 2, 2, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-3) > 1e-7 {
		t.Fatalf("degenerate LP: %v obj %v", res.Status, res.Objective)
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Maximize([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("mismatched row width accepted")
	}
	if _, err := Maximize([]float64{1}, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched bound count accepted")
	}
	res, err := Maximize(nil, nil, nil)
	if err != nil || res.Status != Optimal || res.Objective != 0 {
		t.Error("empty LP should be trivially optimal")
	}
}

// checkFeasiblePoint verifies A.x <= b + tol and x >= -tol.
func checkFeasiblePoint(t *testing.T, x []float64, a [][]float64, b []float64) {
	t.Helper()
	for _, xi := range x {
		if xi < -1e-6 {
			t.Fatalf("negative coordinate in solution: %v", x)
		}
	}
	for i, row := range a {
		var s float64
		for j, c := range row {
			s += c * x[j]
		}
		if s > b[i]+1e-6 {
			t.Fatalf("constraint %d violated: %v > %v (x=%v)", i, s, b[i], x)
		}
	}
}

// Property test: on random bounded LPs the simplex answer is feasible and at
// least as good as a large cloud of random feasible points.
func TestRandomLPsDominateRandomPoints(t *testing.T) {
	rng := xrand.New(20)
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		a := make([][]float64, m, m+n)
		b := make([]float64, m, m+n)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			a[i] = row
			b[i] = rng.Float64() * 2 // keeps origin feasible
		}
		// Box constraints keep it bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			a = append(a, row)
			b = append(b, 1+rng.Float64()*3)
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		res, err := Maximize(c, a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v for a bounded feasible LP", trial, res.Status)
		}
		checkFeasiblePoint(t, res.X, a, b)
		// Sample feasible points by scaling random directions until feasible.
		for probe := 0; probe < 200; probe++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 4
			}
			feas := true
			for i, row := range a {
				var s float64
				for j, cc := range row {
					s += cc * x[j]
				}
				if s > b[i] {
					feas = false
					break
				}
			}
			if !feas {
				continue
			}
			var obj float64
			for j := range c {
				obj += c[j] * x[j]
			}
			if obj > res.Objective+1e-6 {
				t.Fatalf("trial %d: random feasible point beats simplex: %v > %v", trial, obj, res.Objective)
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Unbounded.String() != "unbounded" || Infeasible.String() != "infeasible" {
		t.Error("status strings wrong")
	}
	if Status(42).String() == "" {
		t.Error("unknown status should still format")
	}
}
