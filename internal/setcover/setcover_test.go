package setcover

import (
	"testing"

	"github.com/rankregret/rankregret/internal/xrand"
)

func TestGreedySimple(t *testing.T) {
	sets := [][]int{
		{0, 1, 2},
		{2, 3},
		{3, 4, 5},
		{0, 5},
	}
	chosen, ok := Greedy(6, sets)
	if !ok {
		t.Fatal("coverable instance reported uncoverable")
	}
	if CoverSize(6, sets, chosen) != 6 {
		t.Fatalf("chosen %v does not cover", chosen)
	}
	if len(chosen) > 2 {
		t.Errorf("greedy used %d sets, optimal is 2 (%v)", len(chosen), chosen)
	}
}

func TestGreedyPicksLargestFirst(t *testing.T) {
	sets := [][]int{
		{0},
		{0, 1, 2, 3, 4},
		{1, 2},
	}
	chosen, ok := Greedy(5, sets)
	if !ok || len(chosen) != 1 || chosen[0] != 1 {
		t.Errorf("chosen = %v, want [1]", chosen)
	}
}

func TestGreedyUncoverable(t *testing.T) {
	sets := [][]int{{0, 1}, {1, 2}}
	chosen, ok := Greedy(5, sets)
	if ok {
		t.Error("uncoverable instance reported covered")
	}
	if CoverSize(5, sets, chosen) != 3 {
		t.Errorf("partial cover should still cover elements 0-2, chose %v", chosen)
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	chosen, ok := Greedy(0, [][]int{{0}})
	if !ok || len(chosen) != 0 {
		t.Errorf("empty universe: %v, %v", chosen, ok)
	}
}

func TestGreedyEmptySets(t *testing.T) {
	chosen, ok := Greedy(2, [][]int{{}, {0, 1}, {}})
	if !ok || len(chosen) != 1 || chosen[0] != 1 {
		t.Errorf("empty sets mishandled: %v, %v", chosen, ok)
	}
}

func TestGreedyDuplicateElements(t *testing.T) {
	// Sets may repeat elements; coverage counting must not double count.
	sets := [][]int{{0, 0, 1}, {1, 1, 2, 2}}
	chosen, ok := Greedy(3, sets)
	if !ok || CoverSize(3, sets, chosen) != 3 {
		t.Errorf("duplicates broke coverage: %v %v", chosen, ok)
	}
}

// Greedy's guarantee: at most (1 + ln u) times optimal. We can't know the
// optimum for random instances, but we can verify the cover is valid, and
// on instances with a known small cover the ratio holds.
func TestGreedyRandomValid(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 50; trial++ {
		u := 20 + rng.Intn(200)
		nsets := 5 + rng.Intn(40)
		sets := make([][]int, nsets)
		for i := range sets {
			sz := 1 + rng.Intn(u/2)
			s := make([]int, sz)
			for j := range s {
				s[j] = rng.Intn(u)
			}
			sets[i] = s
		}
		chosen, ok := Greedy(u, sets)
		covered := CoverSize(u, sets, chosen)
		total := CoverSize(u, sets, allIndices(nsets))
		if ok && covered != u {
			t.Fatalf("trial %d: ok but covered %d < %d", trial, covered, u)
		}
		if !ok && covered != total {
			t.Fatalf("trial %d: not ok but covered %d != max coverable %d", trial, covered, total)
		}
		// No chosen set may be fully redundant at selection time — implied
		// by greedy, but verify no zero-gain selections happened: removing
		// the last chosen set must lose coverage.
		if len(chosen) > 0 {
			without := CoverSize(u, sets, chosen[:len(chosen)-1])
			if without == covered {
				t.Fatalf("trial %d: last selection had zero gain", trial)
			}
		}
	}
}

func TestGreedyKnownOptimumRatio(t *testing.T) {
	// Universe covered by 3 disjoint blocks plus many small decoys.
	rng := xrand.New(2)
	u := 300
	sets := [][]int{{}, {}, {}}
	for e := 0; e < u; e++ {
		sets[e%3] = append(sets[e%3], e)
	}
	for i := 0; i < 50; i++ {
		s := []int{rng.Intn(u), rng.Intn(u)}
		sets = append(sets, s)
	}
	chosen, ok := Greedy(u, sets)
	if !ok {
		t.Fatal("should cover")
	}
	if len(chosen) != 3 {
		t.Errorf("greedy chose %d sets; disjoint optimum is 3", len(chosen))
	}
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
