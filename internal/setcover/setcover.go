// Package setcover implements Chvátal's greedy set-cover heuristic, the
// engine inside the paper's ASMS solver (Algorithm 2, line 8) and the
// hitting-set step of the MDRRRr baseline. Greedy achieves the classic
// 1 + ln(universe) approximation ratio, which is exactly the factor in
// HDRRM's size guarantee (Theorem 9).
package setcover

import (
	"container/heap"
	"context"
)

// coverHeap is a lazy max-heap of candidate sets keyed by (stale) uncovered
// counts.
type coverHeap struct {
	gain []int // cached gain per entry
	id   []int // set index per entry
}

func (h *coverHeap) Len() int           { return len(h.id) }
func (h *coverHeap) Less(a, b int) bool { return h.gain[a] > h.gain[b] }
func (h *coverHeap) Swap(a, b int) {
	h.gain[a], h.gain[b] = h.gain[b], h.gain[a]
	h.id[a], h.id[b] = h.id[b], h.id[a]
}
func (h *coverHeap) Push(x any) {
	e := x.([2]int)
	h.gain = append(h.gain, e[0])
	h.id = append(h.id, e[1])
}
func (h *coverHeap) Pop() any {
	n := len(h.id) - 1
	e := [2]int{h.gain[n], h.id[n]}
	h.gain = h.gain[:n]
	h.id = h.id[:n]
	return e
}

// Greedy covers the universe {0, ..., universe-1} using the given sets
// (each a list of element ids in range). It returns the indices of the
// chosen sets in selection order, and ok = false if the union of all sets
// does not cover the universe (in which case the partial cover chosen so
// far is returned).
//
// The implementation is the standard lazy-greedy: a max-heap of stale gains,
// re-scoring a set only when it surfaces. Total time O(sum of set sizes *
// log(#sets)).
func Greedy(universe int, sets [][]int) (chosen []int, ok bool) {
	chosen, ok, _ = GreedyCtx(nil, universe, sets)
	return chosen, ok
}

// GreedyCtx is Greedy with cooperative cancellation: the selection loop
// checks ctx between rounds and returns ctx.Err() with the partial cover
// chosen so far. A nil ctx disables the checks.
func GreedyCtx(ctx context.Context, universe int, sets [][]int) (chosen []int, ok bool, err error) {
	if universe == 0 {
		return nil, true, nil
	}
	covered := make([]bool, universe)
	remaining := universe

	h := &coverHeap{}
	for i, s := range sets {
		if len(s) > 0 {
			h.gain = append(h.gain, len(s))
			h.id = append(h.id, i)
		}
	}
	heap.Init(h)

	fresh := func(i int) int {
		g := 0
		for _, e := range sets[i] {
			if !covered[e] {
				g++
			}
		}
		return g
	}

	const checkEvery = 64
	iter := 0
	for remaining > 0 && h.Len() > 0 {
		if ctx != nil {
			if iter%checkEvery == 0 {
				select {
				case <-ctx.Done():
					return chosen, false, ctx.Err()
				default:
				}
			}
			iter++
		}
		top := heap.Pop(h).([2]int)
		gain, id := top[0], top[1]
		g := fresh(id)
		if g == 0 {
			continue
		}
		if g < gain && h.Len() > 0 && h.gain[0] > g {
			// Stale: push back with the corrected gain and retry.
			heap.Push(h, [2]int{g, id})
			continue
		}
		// Select id.
		chosen = append(chosen, id)
		for _, e := range sets[id] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	return chosen, remaining == 0, nil
}

// CoverSize returns how many elements of the universe the chosen sets cover.
// Helper for tests and for partial-cover diagnostics.
func CoverSize(universe int, sets [][]int, chosen []int) int {
	covered := make([]bool, universe)
	n := 0
	for _, ci := range chosen {
		for _, e := range sets[ci] {
			if !covered[e] {
				covered[e] = true
				n++
			}
		}
	}
	return n
}
