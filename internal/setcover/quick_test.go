package setcover

import (
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/xrand"
)

// randomInstance builds a random coverable set-cover instance.
func randomInstance(seed int64, uSize, nSets int) (int, [][]int) {
	uSize = uSize%40 + 5
	nSets = nSets%15 + 3
	if uSize < 0 {
		uSize = -uSize
	}
	if nSets < 0 {
		nSets = -nSets
	}
	rng := xrand.New(seed)
	sets := make([][]int, nSets)
	for i := range sets {
		for e := 0; e < uSize; e++ {
			if rng.Float64() < 0.3 {
				sets[i] = append(sets[i], e)
			}
		}
	}
	// Guarantee coverability: one set with every element.
	sets = append(sets, seq(uSize))
	return uSize, sets
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Property: the greedy result always covers the universe, contains no
// out-of-range set indices, and has no duplicate choices.
func TestQuickGreedyAlwaysCovers(t *testing.T) {
	f := func(seed int64, uSize, nSets int) bool {
		u, sets := randomInstance(seed, uSize, nSets)
		chosen, ok := Greedy(u, sets)
		if !ok {
			return false
		}
		seen := map[int]bool{}
		for _, c := range chosen {
			if c < 0 || c >= len(sets) || seen[c] {
				return false
			}
			seen[c] = true
		}
		return CoverSize(u, sets, chosen) == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: greedy never uses more sets than the universe size (each chosen
// set covers at least one new element).
func TestQuickGreedyProgress(t *testing.T) {
	f := func(seed int64, uSize, nSets int) bool {
		u, sets := randomInstance(seed, uSize, nSets)
		chosen, ok := Greedy(u, sets)
		return ok && len(chosen) <= u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: removing an element from the universe never makes the greedy
// cover larger than covering the full universe plus one (monotonicity up to
// greedy's tie-breaking noise is not guaranteed in general, but the cover
// of a subset universe is never forced to exceed a valid cover of the
// superset — which greedy found).
func TestQuickGreedySubsetUniverse(t *testing.T) {
	f := func(seed int64, uSize, nSets int) bool {
		u, sets := randomInstance(seed, uSize, nSets)
		if u < 2 {
			return true
		}
		full, ok := Greedy(u, sets)
		if !ok {
			return false
		}
		// Shrink the universe to [0, u-1) and clip sets accordingly.
		clipped := make([][]int, len(sets))
		for i, s := range sets {
			for _, e := range s {
				if e < u-1 {
					clipped[i] = append(clipped[i], e)
				}
			}
		}
		sub, ok := Greedy(u-1, clipped)
		if !ok {
			return false
		}
		// `full` is also a cover of the shrunk instance, so greedy's
		// 1+ln(u) bound keeps `sub` within a log factor of it; the cheap
		// invariant worth pinning is that both cover their universes.
		return CoverSize(u-1, clipped, sub) == u-1 && len(full) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
