package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualLineBasics(t *testing.T) {
	// Tuple t3 = (0.57, 0.75) from the paper's Table I.
	l := DualLine(0.57, 0.75)
	if !almostEq(l.Eval(0), 0.75, 1e-12) {
		t.Errorf("Eval(0) = %v, want intercept 0.75", l.Eval(0))
	}
	if !almostEq(l.Eval(1), 0.57, 1e-12) {
		t.Errorf("Eval(1) = %v, want t1 0.57", l.Eval(1))
	}
	// Midpoint is the average utility under u=(0.5, 0.5).
	if !almostEq(l.Eval(0.5), (0.57+0.75)/2, 1e-12) {
		t.Errorf("Eval(0.5) = %v", l.Eval(0.5))
	}
}

func TestDualOrderMatchesUtilityOrder(t *testing.T) {
	// For any weight u=(x, 1-x), tuple a outranks tuple b iff a's dual line
	// is above b's dual line at x.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a1, a2 := rng.Float64(), rng.Float64()
		b1, b2 := rng.Float64(), rng.Float64()
		x := rng.Float64()
		ua := a1*x + a2*(1-x)
		ub := b1*x + b2*(1-x)
		la, lb := DualLine(a1, a2), DualLine(b1, b2)
		if (ua > ub) != Above(la, lb, x) {
			t.Fatalf("dual order mismatch: tuples (%v,%v) (%v,%v) at x=%v", a1, a2, b1, b2, x)
		}
	}
}

func TestIntersectX(t *testing.T) {
	a := Line{Slope: 1, Intercept: 0}
	b := Line{Slope: -1, Intercept: 1}
	x, ok := IntersectX(a, b)
	if !ok || !almostEq(x, 0.5, 1e-12) {
		t.Errorf("IntersectX = %v, %v; want 0.5, true", x, ok)
	}
	_, ok = IntersectX(a, Line{Slope: 1, Intercept: 5})
	if ok {
		t.Error("parallel lines reported as intersecting")
	}
	// At the crossing the two lines agree.
	if !almostEq(a.Eval(x), b.Eval(x), 1e-12) {
		t.Error("lines disagree at their own intersection")
	}
}

func TestPolarToCartesian2D(t *testing.T) {
	// d=2: theta in [0, pi/2]; u = (sin theta, cos theta).
	for _, th := range []float64{0, math.Pi / 6, math.Pi / 4, math.Pi / 3, math.Pi / 2} {
		u := PolarToCartesian([]float64{th})
		if !almostEq(u[0], math.Sin(th), 1e-12) || !almostEq(u[1], math.Cos(th), 1e-12) {
			t.Errorf("PolarToCartesian(%v) = %v", th, u)
		}
	}
}

func TestPolarToCartesian3D(t *testing.T) {
	th := []float64{math.Pi / 6, math.Pi / 3}
	u := PolarToCartesian(th)
	want := Vector{
		math.Sin(th[1]) * math.Sin(th[0]),
		math.Sin(th[1]) * math.Cos(th[0]),
		math.Cos(th[1]),
	}
	for i := range want {
		if !almostEq(u[i], want[i], 1e-12) {
			t.Errorf("u[%d] = %v, want %v", i, u[i], want[i])
		}
	}
}

func TestPolarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		d := 2 + rng.Intn(5)
		theta := make([]float64, d-1)
		for i := range theta {
			// Stay strictly inside (0, pi/2) so the inversion is unique.
			theta[i] = 0.01 + rng.Float64()*(math.Pi/2-0.02)
		}
		u := PolarToCartesian(theta)
		if !almostEq(Norm(u), 1, 1e-9) {
			t.Fatalf("PolarToCartesian not unit: |u|=%v", Norm(u))
		}
		if !NonNegative(u) {
			t.Fatalf("PolarToCartesian left orthant: %v", u)
		}
		back := CartesianToPolar(u)
		for i := range theta {
			if !almostEq(back[i], theta[i], 1e-6) {
				t.Fatalf("round trip theta[%d]: %v -> %v (d=%d)", i, theta[i], back[i], d)
			}
		}
	}
}

func TestAngleGridSizeAndRange(t *testing.T) {
	for _, tc := range []struct{ d, gamma, want int }{
		{2, 6, 7},
		{3, 3, 16},
		{4, 6, 343},
		{3, 1, 4},
	} {
		grid := AngleGrid(tc.d, tc.gamma)
		if len(grid) != tc.want {
			t.Errorf("AngleGrid(%d,%d): %d vectors, want %d", tc.d, tc.gamma, len(grid), tc.want)
		}
		for _, u := range grid {
			if len(u) != tc.d {
				t.Fatalf("grid vector has dim %d, want %d", len(u), tc.d)
			}
			if !almostEq(Norm(u), 1, 1e-9) {
				t.Fatalf("grid vector not unit: %v", u)
			}
			if !NonNegative(u) {
				t.Fatalf("grid vector outside orthant: %v", u)
			}
		}
	}
	if AngleGrid(1, 5) != nil || AngleGrid(3, 0) != nil {
		t.Error("AngleGrid should return nil for invalid arguments")
	}
}

func TestAngleGridContainsAxes(t *testing.T) {
	// The grid must include every axis direction (the boundary angles).
	grid := AngleGrid(3, 4)
	found := make([]bool, 3)
	for _, u := range grid {
		for ax := 0; ax < 3; ax++ {
			if almostEq(u[ax], 1, 1e-9) {
				found[ax] = true
			}
		}
	}
	for ax, ok := range found {
		if !ok {
			t.Errorf("axis %d direction missing from grid", ax)
		}
	}
}

func TestAngleGridDistinct(t *testing.T) {
	grid := AngleGrid(3, 3)
	// Angle grids can duplicate Cartesian points on the boundary (when a sine
	// factor is zero); at minimum, interior points must be distinct.
	seen := map[[3]int64]int{}
	dups := 0
	for _, u := range grid {
		key := [3]int64{int64(u[0] * 1e9), int64(u[1] * 1e9), int64(u[2] * 1e9)}
		seen[key]++
		if seen[key] > 1 {
			dups++
		}
	}
	// gamma=3, d=3: theta[1]=0 collapses theta[0], giving exactly 3 duplicate
	// Cartesian points (4 angle choices map to the same pole).
	if dups != 3 {
		t.Errorf("unexpected duplicate count %d (want 3 pole duplicates)", dups)
	}
}
