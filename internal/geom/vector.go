// Package geom provides the small amount of computational geometry the
// rank-regret algorithms need: d-dimensional vectors, the 2D dual transform
// from tuples to lines, line intersections, polar coordinates on the unit
// sphere, and convex chains.
//
// Everything works on []float64 slices; no external linear-algebra library is
// used. Functions that take vectors never retain or mutate their arguments
// unless documented otherwise.
package geom

import (
	"fmt"
	"math"
)

// Vector is a point or direction in d-dimensional space.
type Vector = []float64

// Dot returns the inner product of a and b.
// It panics if the lengths differ, which always indicates a programming error.
func Dot(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geom: Dot on mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the L2-norm of v.
func Norm(v Vector) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Normalize returns v scaled to unit L2-norm. The zero vector is returned
// unchanged.
func Normalize(v Vector) Vector {
	n := Norm(v)
	out := make(Vector, len(v))
	if n == 0 {
		copy(out, v)
		return out
	}
	for i, x := range v {
		out[i] = x / n
	}
	return out
}

// NormalizeL1 returns v scaled so its components sum to one. Useful for
// presenting linear utility weights as percentages. The zero vector is
// returned unchanged.
func NormalizeL1(v Vector) Vector {
	var s float64
	for _, x := range v {
		s += x
	}
	out := make(Vector, len(v))
	if s == 0 {
		copy(out, v)
		return out
	}
	for i, x := range v {
		out[i] = x / s
	}
	return out
}

// Sub returns a-b as a fresh vector.
func Sub(a, b Vector) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geom: Sub on mismatched lengths %d and %d", len(a), len(b)))
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Add returns a+b as a fresh vector.
func Add(a, b Vector) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geom: Add on mismatched lengths %d and %d", len(a), len(b)))
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Scale returns c*v as a fresh vector.
func Scale(c float64, v Vector) Vector {
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = c * x
	}
	return out
}

// Dist returns the L2 distance between a and b.
func Dist(a, b Vector) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geom: Dist on mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Clone returns a copy of v.
func Clone(v Vector) Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// NonNegative reports whether every component of v is >= 0.
func NonNegative(v Vector) bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// AllZero reports whether every component of v is exactly zero.
func AllZero(v Vector) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}
