package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b Vector
		want float64
	}{
		{Vector{1, 2}, Vector{3, 4}, 11},
		{Vector{0, 0, 0}, Vector{1, 2, 3}, 0},
		{Vector{1}, Vector{-1}, -1},
		{Vector{0.5, 0.5}, Vector{1, 1}, 1},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Dot(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot on mismatched lengths did not panic")
		}
	}()
	Dot(Vector{1, 2}, Vector{1})
}

func TestNormAndNormalize(t *testing.T) {
	v := Vector{3, 4}
	if got := Norm(v); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm(%v) = %v, want 5", v, got)
	}
	n := Normalize(v)
	if !almostEq(Norm(n), 1, 1e-12) {
		t.Errorf("Normalize produced norm %v, want 1", Norm(n))
	}
	if !almostEq(n[0], 0.6, 1e-12) || !almostEq(n[1], 0.8, 1e-12) {
		t.Errorf("Normalize(%v) = %v", v, n)
	}
	// Input untouched.
	if v[0] != 3 || v[1] != 4 {
		t.Errorf("Normalize mutated its input: %v", v)
	}
	zero := Vector{0, 0}
	if got := Normalize(zero); got[0] != 0 || got[1] != 0 {
		t.Errorf("Normalize(zero) = %v, want zero", got)
	}
}

func TestNormalizeL1(t *testing.T) {
	v := Vector{1, 3}
	n := NormalizeL1(v)
	if !almostEq(n[0], 0.25, 1e-12) || !almostEq(n[1], 0.75, 1e-12) {
		t.Errorf("NormalizeL1(%v) = %v", v, n)
	}
	zero := NormalizeL1(Vector{0, 0, 0})
	if !AllZero(zero) {
		t.Errorf("NormalizeL1(zero) = %v, want zero", zero)
	}
}

func TestAddSubScaleDist(t *testing.T) {
	a, b := Vector{1, 2}, Vector{4, 6}
	if got := Sub(b, a); got[0] != 3 || got[1] != 4 {
		t.Errorf("Sub = %v", got)
	}
	if got := Add(a, b); got[0] != 5 || got[1] != 8 {
		t.Errorf("Add = %v", got)
	}
	if got := Scale(2, a); got[0] != 2 || got[1] != 4 {
		t.Errorf("Scale = %v", got)
	}
	if got := Dist(a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Vector{1, 2, 3}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing storage with original")
	}
}

func TestPredicates(t *testing.T) {
	if !NonNegative(Vector{0, 1, 2}) {
		t.Error("NonNegative false on non-negative vector")
	}
	if NonNegative(Vector{0, -1e-300}) {
		t.Error("NonNegative true on negative vector")
	}
	if !AllZero(Vector{0, 0}) || AllZero(Vector{0, 1}) {
		t.Error("AllZero misclassification")
	}
}

// Property: normalization is idempotent and norm-1 for random vectors.
func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := make(Vector, len(raw))
		any := false
		for i, x := range raw {
			// Clamp to a sane range to avoid inf/NaN from quick's extremes.
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			v[i] = math.Mod(x, 1e6)
			if v[i] != 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		n := Normalize(v)
		return almostEq(Norm(n), 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotBilinearProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(8)
		a, b, c := make(Vector, d), make(Vector, d), make(Vector, d)
		for i := 0; i < d; i++ {
			a[i], b[i], c[i] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		if !almostEq(Dot(a, b), Dot(b, a), 1e-9) {
			t.Fatalf("Dot not symmetric for %v, %v", a, b)
		}
		lhs := Dot(Add(a, c), b)
		rhs := Dot(a, b) + Dot(c, b)
		if !almostEq(lhs, rhs, 1e-7*(1+math.Abs(lhs))) {
			t.Fatalf("Dot not additive: %v vs %v", lhs, rhs)
		}
	}
}
