package geom

import "math"

// Line is the dual representation of a 2D tuple t = (t1, t2): the utility of
// t under the normalized weight vector u = (x, 1-x) plotted as a function of
// x in [0, 1]:
//
//	y(x) = t1*x + t2*(1-x) = (t1-t2)*x + t2.
//
// Slope is t1-t2 and the intercept at x=0 is t2. Tuple t ranks above tuple
// t' for the weight (x, 1-x) exactly when t's line is above t”s line at x.
type Line struct {
	Slope     float64 // t1 - t2
	Intercept float64 // t2
}

// DualLine maps the 2D tuple (t1, t2) to its dual line.
func DualLine(t1, t2 float64) Line {
	return Line{Slope: t1 - t2, Intercept: t2}
}

// Eval returns the line's y value at x.
func (l Line) Eval(x float64) float64 {
	return l.Slope*x + l.Intercept
}

// IntersectX returns the x coordinate at which lines a and b cross, and
// whether they cross at a single point (parallel lines do not).
func IntersectX(a, b Line) (x float64, ok bool) {
	ds := a.Slope - b.Slope
	if ds == 0 {
		return 0, false
	}
	return (b.Intercept - a.Intercept) / ds, true
}

// Above reports whether line a is strictly above line b at x. Ties are not
// "above": the caller is responsible for tie-breaking at crossing points.
func Above(a, b Line, x float64) bool {
	return a.Eval(x) > b.Eval(x)
}

// PolarToCartesian converts a (d-1)-dimensional angle vector (each angle in
// [0, pi/2]) to a unit vector in the non-negative orthant of R^d, following
// the paper's convention (Section V.A):
//
//	u[i] = sin(theta[d-1]) * ... * sin(theta[i]) * cos(theta[i-1])
//
// with theta[0] = 0 (so cos(theta[0]) = 1 for i = 1). Indices here are
// 0-based: theta has length d-1 and u has length d.
func PolarToCartesian(theta []float64) Vector {
	d := len(theta) + 1
	u := make(Vector, d)
	// suffix[i] = product of sin(theta[j]) for j >= i (0-based over theta).
	suffix := 1.0
	// Build from the last coordinate down so each u[i] reuses the running
	// suffix product of sines.
	for i := d - 1; i >= 0; i-- {
		cos := 1.0
		if i > 0 {
			cos = math.Cos(theta[i-1])
		}
		u[i] = suffix * cos
		if i > 0 {
			suffix *= math.Sin(theta[i-1])
		}
	}
	return u
}

// CartesianToPolar inverts PolarToCartesian for unit vectors in the
// non-negative orthant, returning d-1 angles in [0, pi/2]. For vectors with
// zero suffix norms the corresponding angles are returned as 0, matching the
// convention that sin(0) = 0 collapses the remaining coordinates.
func CartesianToPolar(u Vector) []float64 {
	d := len(u)
	theta := make([]float64, d-1)
	// suffixNorm[i] = norm of u[0..i] (first i+1 coords).
	// theta[i-1] relates u[i] to the norm of u[0..i]:
	//   u[i] = |u[0..i]| * cos(theta[i-1])  -- actually from the forward
	// formula, cos(theta[i-1]) multiplies the sines of all later angles, so
	//   cos(theta[i-1]) = u[i-1... ].
	// Compute incrementally: r = |(u[0], ..., u[i])|; cos(theta[i-1]) = u[i]/r.
	r := u[0] * u[0]
	for i := 1; i < d; i++ {
		r += u[i] * u[i]
		norm := math.Sqrt(r)
		if norm == 0 {
			theta[i-1] = 0
			continue
		}
		c := u[i] / norm
		if c > 1 {
			c = 1
		} else if c < -1 {
			c = -1
		}
		theta[i-1] = math.Acos(c)
	}
	return theta
}

// AngleGrid enumerates the paper's Db discretization: every (d-1)-dimensional
// angle vector whose coordinates are multiples of pi/(2*gamma) in [0, pi/2],
// converted to Cartesian unit vectors. It returns (gamma+1)^(d-1) vectors.
// gamma must be >= 1 and d >= 2.
func AngleGrid(d, gamma int) []Vector {
	if d < 2 || gamma < 1 {
		return nil
	}
	step := math.Pi / 2 / float64(gamma)
	nAngles := d - 1
	total := 1
	for i := 0; i < nAngles; i++ {
		total *= gamma + 1
	}
	out := make([]Vector, 0, total)
	idx := make([]int, nAngles)
	theta := make([]float64, nAngles)
	for {
		for i, z := range idx {
			theta[i] = float64(z) * step
		}
		out = append(out, PolarToCartesian(theta))
		// Odometer increment.
		i := 0
		for ; i < nAngles; i++ {
			idx[i]++
			if idx[i] <= gamma {
				break
			}
			idx[i] = 0
		}
		if i == nAngles {
			break
		}
	}
	return out
}
