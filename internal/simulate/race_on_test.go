//go:build race

package simulate

// raceEnabled shortens the acceptance run under the race detector, which
// multiplies the cost of every scoring pass.
const raceEnabled = true
