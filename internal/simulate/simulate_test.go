package simulate

import (
	"context"
	"testing"

	"github.com/rankregret/rankregret/internal/engine"
)

// TestSimulateDifferential is the acceptance run: 500+ seeded workload steps
// across both dimensionalities (d=2 adds the exact solvers), every mutation
// followed by an incremental-vs-rebuild comparison, with the incremental
// side required to actually exercise the repair path.
func TestSimulateDifferential(t *testing.T) {
	ctx := context.Background()
	total := 0
	for _, dim := range []int{3, 2} {
		cfg := Default(11, dim)
		if raceEnabled {
			cfg.Steps = 120 // the detector multiplies every scoring pass
		}
		st, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("d=%d: %v", dim, err)
		}
		total += st.Steps
		t.Logf("d=%d: %+v", dim, st)
		if st.Appends == 0 || st.Deletes == 0 || st.Sweeps == 0 || st.Pinned == 0 || st.Solves == 0 {
			t.Fatalf("d=%d: workload failed to cover every step kind: %+v", dim, st)
		}
		if st.Checks < st.Appends+st.Deletes {
			t.Fatalf("d=%d: fewer checks than mutations: %+v", dim, st)
		}
		if st.VecSets.Repairs == 0 {
			t.Fatalf("d=%d: the incremental engine never repaired a VecSet: %+v", dim, st.VecSets)
		}
	}
	if want := 500; !raceEnabled && total < want {
		t.Fatalf("acceptance requires >= %d steps, ran %d", want, total)
	}
}

// TestSimulateGoldenDeterminism is the golden property: the digest folds
// every compared solution, and an identical config must reproduce it
// exactly — any nondeterminism in the snapshot chain, the repair path, or a
// solver would break the equality.
func TestSimulateGoldenDeterminism(t *testing.T) {
	cfg := Default(7, 3)
	cfg.Steps = 80
	cfg.ConcurrentProbes = 0
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed, different digests: %016x vs %016x", a.Digest, b.Digest)
	}
	if a.Checks != b.Checks || a.Steps != b.Steps {
		t.Fatalf("same seed, different workloads: %+v vs %+v", a, b)
	}
	if c, err := Run(context.Background(), Config{
		Seed: 8, Steps: 80, Dim: 3, InitRows: 90, MinRows: 40, MaxRows: 170,
		Retain: 6, Samples: 200,
	}); err != nil {
		t.Fatal(err)
	} else if c.Digest == a.Digest {
		t.Fatal("different seeds produced the same digest (digest is not discriminating)")
	}
}

// TestSimulateProperty sweeps random seeds with short runs — the
// property-mode net for interleavings the fixed acceptance seed misses.
func TestSimulateProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 13}
	if raceEnabled || testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		cfg := Default(seed, 2+int(seed%2))
		cfg.Steps = 60
		if st, err := Run(context.Background(), cfg); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		} else if st.Checks == 0 {
			t.Errorf("seed %d: no checks ran", seed)
		}
	}
}

// TestSimulateSingleSolver pins the harness on hdrrm only with heavy
// mutation pressure, the solver whose VecSet tier carries all the
// incremental state.
func TestSimulateSingleSolver(t *testing.T) {
	cfg := Default(19, 4)
	cfg.Steps = 90
	cfg.Algorithms = []string{engine.AlgoHDRRM}
	st, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.VecSets.Repairs == 0 {
		t.Fatalf("hdrrm-only run never repaired: %+v", st.VecSets)
	}
}
