// Package simulate is the differential test harness for dynamic datasets: a
// seeded workload generator that interleaves appends, deletes, solves,
// parameter sweeps, and version-pinned re-solves across the registered
// solvers, asserting after every mutation that the incremental serving path
// — snapshot chains, delta-log repairs of the engine's VecSet tier, and both
// cache tiers — produces results byte-identical to a from-scratch rebuild.
//
// The incremental side is one long-lived engine with caching enabled,
// solving over a snapshot chain exactly as rrmd's registry does. The
// reference side rebuilds the dataset from the raw rows (a fresh lineage, so
// no cache can possibly help) and solves on a cache-disabled engine. Any
// divergence — a stale top-K list, a wrong id remap after a delete, a
// fingerprint that depends on mutation path — surfaces as a step-numbered
// mismatch. Incremental-vs-rebuild equivalence is exactly the kind of claim
// that rots silently; this harness is its regression guard.
package simulate

import (
	"context"
	"fmt"
	"hash/fnv"
	"slices"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Config parameterizes one simulation run. The zero value is not usable;
// see Default.
type Config struct {
	// Seed drives the whole workload (and the solver randomness).
	Seed int64
	// Steps is how many workload steps to execute. Every mutation step is
	// followed by a differential check, so the number of incremental-vs-
	// rebuild comparisons is at least the number of mutations.
	Steps int
	// Dim is the dataset dimensionality; 2 additionally exercises the exact
	// 2D solvers.
	Dim int
	// InitRows / MinRows / MaxRows bound the dataset size as the workload
	// appends and deletes.
	InitRows, MinRows, MaxRows int
	// Algorithms to exercise (round-robin); nil = every registered solver
	// applicable to Dim.
	Algorithms []string
	// Retain is how many old (version, rows) snapshots stay available for
	// pinned re-solves, mirroring rrmd's retention.
	Retain int
	// Samples fixes the HDRRM-family sample count so runtime stays bounded
	// and sweeps share one discretization (0 = 200).
	Samples int
	// ConcurrentProbes > 0 runs each solve step's incremental solve that
	// many extra times on concurrent goroutines (same engine) and requires
	// every copy to agree — flight coalescing and repair under contention.
	ConcurrentProbes int
}

// Default returns the CI-scale configuration: small enough for a -race run,
// large enough that append repair, delete repair (both under and over the
// churn threshold), rebuild fallbacks, sweeps, and pinned solves all occur.
func Default(seed int64, dim int) Config {
	return Config{
		Seed:             seed,
		Steps:            260,
		Dim:              dim,
		InitRows:         90,
		MinRows:          40,
		MaxRows:          170,
		Retain:           6,
		Samples:          200,
		ConcurrentProbes: 2,
	}
}

// Stats summarizes a completed run.
type Stats struct {
	Steps, Appends, Deletes int
	Solves, Sweeps, Pinned  int
	Checks                  int
	VecSets                 engine.VecSetStats
	Solutions               engine.CacheStats
	// Digest folds every compared solution into one value: two runs with
	// the same Config must produce the same digest (the golden property).
	Digest uint64
}

// retained is one pinned version: the immutable snapshot plus the raw rows
// it was built from, for the from-scratch reference rebuild.
type retained struct {
	snap *dataset.Dataset
	rows [][]float64
}

// Run executes the workload and returns its stats, or an error naming the
// first divergent step. A ctx cancellation aborts early with its error.
func Run(ctx context.Context, cfg Config) (Stats, error) {
	if cfg.Steps <= 0 || cfg.Dim < 2 || cfg.InitRows < 2 {
		return Stats{}, fmt.Errorf("simulate: bad config %+v", cfg)
	}
	samples := cfg.Samples
	if samples <= 0 {
		samples = 200
	}
	algos := cfg.Algorithms
	if algos == nil {
		for _, a := range engine.Algorithms() {
			if cfg.Dim != 2 && (a == engine.AlgoTwoDRRM || a == engine.AlgoTwoDRRR) {
				continue
			}
			algos = append(algos, a)
		}
	}
	if len(algos) == 0 {
		return Stats{}, fmt.Errorf("simulate: no algorithms for dim %d", cfg.Dim)
	}

	rng := xrand.New(cfg.Seed)
	opts := engine.Options{Seed: cfg.Seed*2 + 1, Samples: samples, Gamma: 3}

	// Master state: the logical rows, the incremental snapshot chain, and
	// the long-lived caching engine under test.
	rows := make([][]float64, 0, cfg.MaxRows)
	for i := 0; i < cfg.InitRows; i++ {
		rows = append(rows, randomRow(rng, cfg.Dim))
	}
	cur, err := dataset.FromRows(rows)
	if err != nil {
		return Stats{}, err
	}
	inc := engine.New(0)
	ref := engine.New(-1) // caching disabled: every reference solve is cold

	var st Stats
	digest := fnv.New64a()
	history := []retained{{snap: cur, rows: slices.Clone(rows)}}
	algoAt := 0

	// check solves (mode, rk) on the incremental engine over ds and on the
	// reference engine over a from-scratch rebuild of wantRows, and requires
	// byte-identical solutions.
	check := func(step int, ds *dataset.Dataset, wantRows [][]float64, algo string, mode engine.Mode, rk int, probes int) error {
		st.Checks++
		refDS, err := dataset.FromRows(wantRows)
		if err != nil {
			return fmt.Errorf("step %d: rebuilding reference: %w", step, err)
		}
		run := func(e *engine.Engine, d *dataset.Dataset) (*engine.Solution, error) {
			if mode == engine.ModeRRR {
				return e.SolveRRR(ctx, d, rk, algo, opts)
			}
			return e.Solve(ctx, d, rk, algo, opts)
		}
		got, gotErr := run(inc, ds)
		want, wantErr := run(ref, refDS)
		if (gotErr == nil) != (wantErr == nil) {
			return fmt.Errorf("step %d %s/%s rk=%d: incremental err=%v, rebuild err=%v", step, algo, mode, rk, gotErr, wantErr)
		}
		if gotErr != nil {
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			// Both sides rejected identically (e.g. RRR infeasible): that is
			// agreement; fold the error into the digest and move on.
			fmt.Fprintf(digest, "%d|%s|%s|%d|err\n", step, algo, mode, rk)
			return nil
		}
		if !slices.Equal(got.IDs, want.IDs) || got.RankRegret != want.RankRegret || got.Exact != want.Exact {
			return fmt.Errorf("step %d %s/%s rk=%d on n=%d v%d: incremental %v (rr=%d) != rebuild %v (rr=%d)",
				step, algo, mode, rk, ds.N(), ds.Version(), got.IDs, got.RankRegret, want.IDs, want.RankRegret)
		}
		for p := 0; p < probes; p++ {
			type res struct {
				sol *engine.Solution
				err error
			}
			ch := make(chan res, 2)
			for g := 0; g < 2; g++ {
				go func() {
					s, err := run(inc, ds)
					ch <- res{s, err}
				}()
			}
			for g := 0; g < 2; g++ {
				r := <-ch
				if r.err != nil {
					return fmt.Errorf("step %d concurrent probe: %w", step, r.err)
				}
				if !slices.Equal(r.sol.IDs, got.IDs) || r.sol.RankRegret != got.RankRegret {
					return fmt.Errorf("step %d concurrent probe diverged: %v vs %v", step, r.sol.IDs, got.IDs)
				}
			}
		}
		fmt.Fprintf(digest, "%d|%s|%s|%d|%v|%d\n", step, algo, mode, rk, got.IDs, got.RankRegret)
		return nil
	}

	// nextAlgo round-robins so every solver sees every workload phase.
	nextAlgo := func() string {
		a := algos[algoAt%len(algos)]
		algoAt++
		return a
	}
	// pickMode returns a dual solve for the solvers that support it, every
	// fourth time.
	pickMode := func(algo string) (engine.Mode, int) {
		dual := algo == engine.AlgoHDRRM || (algo == engine.AlgoTwoDRRM && cfg.Dim == 2)
		if dual && rng.Intn(4) == 0 {
			return engine.ModeRRR, 1 + rng.Intn(4)
		}
		return engine.ModeRRM, 1 + rng.Intn(6)
	}

	publish := func(next *dataset.Dataset) {
		cur = next
		history = append(history, retained{snap: next, rows: slices.Clone(rows)})
		if retain := max(cfg.Retain, 1); len(history) > retain {
			history = slices.Clone(history[len(history)-retain:])
		}
	}

	for step := 0; step < cfg.Steps; step++ {
		if ctx != nil && ctx.Err() != nil {
			return st, ctx.Err()
		}
		st.Steps++
		action := rng.Intn(10)
		switch {
		case action < 3 && len(rows) < cfg.MaxRows: // append burst
			st.Appends++
			next := cur.Snapshot()
			for i, burst := 0, 1+rng.Intn(6); i < burst && len(rows) < cfg.MaxRows; i++ {
				row := randomRow(rng, cfg.Dim)
				rows = append(rows, row)
				next.Append(row)
			}
			publish(next)
		case action < 5 && len(rows) > cfg.MinRows: // delete burst
			st.Deletes++
			next := cur.Snapshot()
			burst := 1 + rng.Intn(3)
			ids := make([]int, 0, burst)
			for i := 0; i < burst; i++ {
				ids = append(ids, rng.Intn(len(rows)))
			}
			if err := next.Delete(ids); err != nil {
				return st, fmt.Errorf("step %d: delete %v: %w", step, ids, err)
			}
			rows = deleteRows(rows, ids)
			publish(next)
		case action < 7: // parameter sweep on the current version
			st.Sweeps++
			algo := nextAlgo()
			for r := 1; r <= 4; r++ {
				if err := check(step, cur, rows, algo, engine.ModeRRM, r, 0); err != nil {
					return st, err
				}
			}
			continue
		case action < 8 && len(history) > 1: // pinned solve on an old version
			st.Pinned++
			old := history[rng.Intn(len(history)-1)]
			algo := nextAlgo()
			mode, rk := pickMode(algo)
			if err := check(step, old.snap, old.rows, algo, mode, rk, 0); err != nil {
				return st, err
			}
			continue
		default: // plain solve on the current version
			st.Solves++
			algo := nextAlgo()
			mode, rk := pickMode(algo)
			if err := check(step, cur, rows, algo, mode, rk, cfg.ConcurrentProbes); err != nil {
				return st, err
			}
			continue
		}

		// After every mutation: structural invariants, then a differential
		// solve. The fingerprint must depend on content only, never on the
		// mutation path that produced it.
		if cur.N() != len(rows) {
			return st, fmt.Errorf("step %d: dataset n=%d, shadow rows=%d", step, cur.N(), len(rows))
		}
		refDS, err := dataset.FromRows(rows)
		if err != nil {
			return st, err
		}
		if cur.Fingerprint() != refDS.Fingerprint() {
			return st, fmt.Errorf("step %d: fingerprint diverged from content (mutation-path dependence)", step)
		}
		algo := nextAlgo()
		mode, rk := pickMode(algo)
		if err := check(step, cur, rows, algo, mode, rk, 0); err != nil {
			return st, err
		}
	}

	st.VecSets = inc.VecSetStats()
	st.Solutions = inc.CacheStats()
	st.Digest = digest.Sum64()
	return st, nil
}

func randomRow(rng *xrand.Rand, d int) []float64 {
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.Float64()
	}
	return row
}

// deleteRows removes the (possibly duplicated, unordered) ids from rows,
// mirroring Dataset.Delete's semantics on the shadow copy.
func deleteRows(rows [][]float64, ids []int) [][]float64 {
	drop := make(map[int]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	out := rows[:0]
	for i, r := range rows {
		if !drop[i] {
			out = append(out, r)
		}
	}
	return out
}
