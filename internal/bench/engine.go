package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/xrand"
)

// EngineBenchCase is one measured (dataset, algorithm) point of the engine
// benchmark.
type EngineBenchCase struct {
	Dataset   string  `json:"dataset"`
	N         int     `json:"n"`
	D         int     `json:"d"`
	R         int     `json:"r"`
	Algorithm string  `json:"algorithm"`
	ColdMS    float64 `json:"cold_ms"` // first solve (cache miss)
	WarmMS    float64 `json:"warm_ms"` // one cached re-solve
	// VecSetReuseMS is a solve at RReuse != R on the same dataset: a
	// solution-cache miss that reuses the VecSet tier, i.e. the marginal
	// cost of one more point of a parameter sweep. Meaningful for the
	// HDRRM-family algorithms only; the 2D DP has no VecSet and pays the
	// full solve again.
	VecSetReuseMS   float64 `json:"vecset_reuse_ms"`
	RReuse          int     `json:"r_reuse"`
	CacheHitsPerSec float64 `json:"cache_hits_per_sec"` // single-goroutine cached re-solve throughput
	ConcHitsPerSec  float64 `json:"conc_hits_per_sec"`  // cached re-solve throughput across GOMAXPROCS goroutines
	Size            int     `json:"size"`
	RankRegret      int     `json:"rank_regret"`
}

// EngineBenchResult is the machine-readable output of EngineBench, written
// to BENCH_engine.json to seed the performance trajectory across PRs.
type EngineBenchResult struct {
	Schema     string             `json:"schema"`
	Scale      string             `json:"scale"`
	Seed       int64              `json:"seed"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Cases      []EngineBenchCase  `json:"cases"`
	Cache      engine.CacheStats  `json:"cache"`
	VecSets    engine.VecSetStats `json:"vecsets"`
}

// EngineBenchSchema identifies the BENCH_engine.json format version: v2
// added vecset_reuse_ms / r_reuse per case and the vecsets counters.
const EngineBenchSchema = "rankregret/bench-engine/v2"

const hitIters = 200

// EngineBench measures engine solve latency (cold vs cached) and solution-
// cache hit throughput on the simulated real datasets. The ci scale uses
// laptop-friendly sizes; paper scale uses larger ones.
func EngineBench(sc Scale, seed int64) (EngineBenchResult, error) {
	type point struct {
		name string
		ds   *dataset.Dataset
		r    int
		algo string
	}
	nNBA, nWeather, nIsland := 2000, 4000, 10000
	if sc.Name == "paper" {
		nNBA, nWeather, nIsland = 21961, 178080, 63383
	}
	points := []point{
		{"simnba", dataset.SimNBA(xrand.New(seed), nNBA), 8, "hdrrm"},
		{"simweather", dataset.SimWeather(xrand.New(seed), nWeather), 10, "hdrrm"},
		{"simisland", dataset.SimIsland(xrand.New(seed), nIsland), 10, "2drrm"},
	}

	e := engine.New(0)
	ctx := context.Background()
	out := EngineBenchResult{
		Schema:     EngineBenchSchema,
		Scale:      sc.Name,
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, p := range points {
		opts := engine.Options{Seed: seed, MaxSamples: sc.MaxM}
		start := time.Now()
		sol, err := e.Solve(ctx, p.ds, p.r, p.algo, opts)
		if err != nil {
			return out, fmt.Errorf("bench: engine solve %s/%s: %w", p.name, p.algo, err)
		}
		cold := time.Since(start)

		// A different budget on the same dataset: misses the solution cache
		// but reuses the shared VecSet, which is the sweep fast path.
		rReuse := p.r + 2
		start = time.Now()
		if _, err := e.Solve(ctx, p.ds, rReuse, p.algo, opts); err != nil {
			return out, fmt.Errorf("bench: engine reuse solve %s/%s: %w", p.name, p.algo, err)
		}
		reuse := time.Since(start)

		start = time.Now()
		if _, err := e.Solve(ctx, p.ds, p.r, p.algo, opts); err != nil {
			return out, err
		}
		warm := time.Since(start)

		start = time.Now()
		for i := 0; i < hitIters; i++ {
			if _, err := e.Solve(ctx, p.ds, p.r, p.algo, opts); err != nil {
				return out, err
			}
		}
		hitsPerSec := float64(hitIters) / time.Since(start).Seconds()

		workers := runtime.GOMAXPROCS(0)
		start = time.Now()
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func() {
				for i := 0; i < hitIters; i++ {
					if _, err := e.Solve(ctx, p.ds, p.r, p.algo, opts); err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}()
		}
		for w := 0; w < workers; w++ {
			if err := <-errc; err != nil {
				return out, err
			}
		}
		concPerSec := float64(workers*hitIters) / time.Since(start).Seconds()

		out.Cases = append(out.Cases, EngineBenchCase{
			Dataset:         p.name,
			N:               p.ds.N(),
			D:               p.ds.Dim(),
			R:               p.r,
			Algorithm:       p.algo,
			ColdMS:          float64(cold.Microseconds()) / 1000,
			WarmMS:          float64(warm.Microseconds()) / 1000,
			VecSetReuseMS:   float64(reuse.Microseconds()) / 1000,
			RReuse:          rReuse,
			CacheHitsPerSec: hitsPerSec,
			ConcHitsPerSec:  concPerSec,
			Size:            len(sol.IDs),
			RankRegret:      sol.RankRegret,
		})
	}
	out.Cache = e.CacheStats()
	out.VecSets = e.VecSetStats()
	return out, nil
}
