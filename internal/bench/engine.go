package bench

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/engine"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/xrand"
)

// EngineBenchCase is one measured (dataset, algorithm) point of the engine
// benchmark.
type EngineBenchCase struct {
	Dataset   string  `json:"dataset"`
	N         int     `json:"n"`
	D         int     `json:"d"`
	R         int     `json:"r"`
	Algorithm string  `json:"algorithm"`
	ColdMS    float64 `json:"cold_ms"`     // first solve, parallelism 1 (cache miss)
	ColdParMS float64 `json:"cold_par_ms"` // first solve at parallelism GOMAXPROCS, on a fresh engine
	WarmMS    float64 `json:"warm_ms"`     // one cached re-solve
	// VecSetReuseMS is a solve at RReuse != R on the same dataset: a
	// solution-cache miss that reuses the VecSet tier, i.e. the marginal
	// cost of one more point of a parameter sweep. Measured only for the
	// HDRRM-family algorithms — the 2D DP has no VecSet, so the fields are
	// omitted rather than reporting a meaningless "reuse" that costs as
	// much as a cold solve.
	VecSetReuseMS *float64 `json:"vecset_reuse_ms,omitempty"`
	RReuse        int      `json:"r_reuse,omitempty"`
	// SkybandFrac is |k-skyband| / n at the solver's reported threshold — a
	// diagnostic of how prunable the data is at the rank the solve settled
	// on (1 = nothing to drop; omitted for non-VecSet algorithms). The cold
	// path's staged build depths prune with supersets of this band, so the
	// universe it actually scored retains somewhat more than this fraction.
	SkybandFrac     *float64 `json:"skyband_frac,omitempty"`
	CacheHitsPerSec float64  `json:"cache_hits_per_sec"` // single-goroutine cached re-solve throughput
	ConcHitsPerSec  float64  `json:"conc_hits_per_sec"`  // cached re-solve throughput across GOMAXPROCS goroutines
	Size            int      `json:"size"`
	RankRegret      int      `json:"rank_regret"`
}

// EngineBenchResult is the machine-readable output of EngineBench, written
// to BENCH_engine.json to seed the performance trajectory across PRs.
type EngineBenchResult struct {
	Schema     string             `json:"schema"`
	Scale      string             `json:"scale"`
	Seed       int64              `json:"seed"`
	GoMaxProcs int                `json:"gomaxprocs"`
	Cases      []EngineBenchCase  `json:"cases"`
	Cache      engine.CacheStats  `json:"cache"`
	VecSets    engine.VecSetStats `json:"vecsets"`
}

// EngineBenchSchema identifies the BENCH_engine.json format version: v2
// added vecset_reuse_ms / r_reuse per case and the vecsets counters; v3
// split cold into cold_ms (parallelism 1) and cold_par_ms (parallelism
// GOMAXPROCS), added skyband_frac, and dropped the vecset-reuse fields from
// algorithms that have no VecSet.
const EngineBenchSchema = "rankregret/bench-engine/v3"

const hitIters = 200

// usesVecSets reports whether the algorithm draws on the engine's VecSet
// tier (and hence has a meaningful sweep-reuse and skyband measurement).
func usesVecSets(algo string) bool { return algo == engine.AlgoHDRRM }

// EngineBench measures engine solve latency (cold sequential, cold
// parallel, cached) and solution-cache hit throughput on the simulated real
// datasets. The ci scale uses laptop-friendly sizes; paper scale uses larger
// ones.
func EngineBench(sc Scale, seed int64) (EngineBenchResult, error) {
	type point struct {
		name string
		ds   *dataset.Dataset
		r    int
		algo string
	}
	nNBA, nWeather, nIsland := 2000, 4000, 10000
	if sc.Name == "paper" {
		nNBA, nWeather, nIsland = 21961, 178080, 63383
	}
	points := []point{
		{"simnba", dataset.SimNBA(xrand.New(seed), nNBA), 8, "hdrrm"},
		{"simweather", dataset.SimWeather(xrand.New(seed), nWeather), 10, "hdrrm"},
		{"simisland", dataset.SimIsland(xrand.New(seed), nIsland), 10, "2drrm"},
	}

	e := engine.New(0)
	ctx := context.Background()
	out := EngineBenchResult{
		Schema:     EngineBenchSchema,
		Scale:      sc.Name,
		Seed:       seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, p := range points {
		opts := engine.Options{Seed: seed, MaxSamples: sc.MaxM, Parallelism: 1}
		start := time.Now()
		sol, err := e.Solve(ctx, p.ds, p.r, p.algo, opts)
		if err != nil {
			return out, fmt.Errorf("bench: engine solve %s/%s: %w", p.name, p.algo, err)
		}
		cold := time.Since(start)

		// The same cold solve at full parallelism, on a throwaway engine so
		// nothing is cached. Results are bit-identical; only latency moves.
		parEngine := engine.New(0)
		parOpts := opts
		parOpts.Parallelism = 0
		start = time.Now()
		parSol, err := parEngine.Solve(ctx, p.ds, p.r, p.algo, parOpts)
		if err != nil {
			return out, fmt.Errorf("bench: engine parallel cold solve %s/%s: %w", p.name, p.algo, err)
		}
		coldPar := time.Since(start)
		if !slices.Equal(parSol.IDs, sol.IDs) || parSol.RankRegret != sol.RankRegret {
			return out, fmt.Errorf("bench: parallel cold solve diverged on %s/%s", p.name, p.algo)
		}

		c := EngineBenchCase{
			Dataset:    p.name,
			N:          p.ds.N(),
			D:          p.ds.Dim(),
			R:          p.r,
			Algorithm:  p.algo,
			ColdMS:     float64(cold.Microseconds()) / 1000,
			ColdParMS:  float64(coldPar.Microseconds()) / 1000,
			Size:       len(sol.IDs),
			RankRegret: sol.RankRegret,
		}

		if usesVecSets(p.algo) {
			// A different budget on the same dataset: misses the solution
			// cache but reuses the shared VecSet, which is the sweep fast
			// path.
			c.RReuse = p.r + 2
			start = time.Now()
			if _, err := e.Solve(ctx, p.ds, c.RReuse, p.algo, opts); err != nil {
				return out, fmt.Errorf("bench: engine reuse solve %s/%s: %w", p.name, p.algo, err)
			}
			reuse := float64(time.Since(start).Microseconds()) / 1000
			c.VecSetReuseMS = &reuse

			frac := 1.0
			if band := skyline.KSkyband(p.ds, sol.RankRegret); band != nil {
				frac = float64(len(band)) / float64(p.ds.N())
			}
			c.SkybandFrac = &frac
		}

		start = time.Now()
		if _, err := e.Solve(ctx, p.ds, p.r, p.algo, opts); err != nil {
			return out, err
		}
		c.WarmMS = float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		for i := 0; i < hitIters; i++ {
			if _, err := e.Solve(ctx, p.ds, p.r, p.algo, opts); err != nil {
				return out, err
			}
		}
		c.CacheHitsPerSec = float64(hitIters) / time.Since(start).Seconds()

		workers := runtime.GOMAXPROCS(0)
		start = time.Now()
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			go func() {
				for i := 0; i < hitIters; i++ {
					if _, err := e.Solve(ctx, p.ds, p.r, p.algo, opts); err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}()
		}
		for w := 0; w < workers; w++ {
			if err := <-errc; err != nil {
				return out, err
			}
		}
		c.ConcHitsPerSec = float64(workers*hitIters) / time.Since(start).Seconds()

		out.Cases = append(out.Cases, c)
	}
	out.Cache = e.CacheStats()
	out.VecSets = e.VecSetStats()
	return out, nil
}
