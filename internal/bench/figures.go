package bench

// Figures returns every figure spec of the paper's evaluation at the given
// scale. Paper-scale axis ranges follow Section VI exactly; ci-scale keeps
// the same workloads, algorithms and defaults but shrinks n so the whole
// suite completes on a laptop. Default parameters (paper): n=10K, d=4, r=10
// in HD; n=10K, r=5 in 2D; delta=0.03, gamma=6.
func Figures(sc Scale) map[string]FigureSpec {
	paper := sc.Name == "paper"

	ns2d := []int{100, 1000, 5000, 20000}
	if paper {
		ns2d = []int{100, 1000, 10000, 100000}
	}
	n2dDefault := 5000
	if paper {
		n2dDefault = 10000
	}
	nsHD := []int{500, 1000, 2000, 5000}
	if paper {
		nsHD = []int{1000, 10000, 100000, 1000000}
	}
	nHDDefault := 2000
	if paper {
		nHDDefault = 10000
	}
	nsIsland := []int{5000, 10000, 20000}
	if paper {
		nsIsland = []int{10000, 20000, 40000, 60000}
	}
	nsNBA := []int{2000, 5000, 8000}
	if paper {
		nsNBA = []int{5000, 10000, 15000, 20000}
	}
	nsWeather := []int{10000, 20000, 40000}
	if paper {
		nsWeather = []int{40000, 80000, 120000, 160000}
	}

	twoDAlgos := []string{"2DRRM", "2DRRR"}
	hdAlgos := []string{"HDRRM", "MDRRRr", "MDRC", "MDRMS"}

	figs := map[string]FigureSpec{}

	add := func(id, title string, algos []string, points []Point) {
		figs[id] = FigureSpec{ID: id, Title: title, Points: points, Algos: algos}
	}

	// --- 2D experiments (Section VI.A) ---
	var pts []Point
	for _, w := range []string{"indep", "corr", "anti"} {
		for _, n := range ns2d {
			pts = append(pts, Point{Workload: w, N: n, D: 2, R: 5})
		}
	}
	add("fig09", "2D, impact of dataset size on three synthetic datasets", twoDAlgos, pts)

	pts = nil
	for _, w := range []string{"indep", "corr", "anti"} {
		for r := 5; r <= 10; r++ {
			pts = append(pts, Point{Workload: w, N: n2dDefault, D: 2, R: r})
		}
	}
	add("fig10", "2D, impact of output size on three synthetic datasets", twoDAlgos, pts)

	pts = nil
	for _, n := range nsIsland {
		pts = append(pts, Point{Workload: "island", N: n, D: 2, R: 5})
	}
	add("fig11", "2D, varied dataset size on Island", twoDAlgos, pts)

	pts = nil
	for _, n := range nsNBA {
		pts = append(pts, Point{Workload: "nba", N: n, D: 2, R: 5})
	}
	add("fig12", "2D, varied dataset size on NBA (2 attributes)", twoDAlgos, pts)

	// --- HD experiments (Section VI.B) ---
	for i, w := range []string{"indep", "corr", "anti"} {
		pts = nil
		for _, n := range nsHD {
			pts = append(pts, Point{Workload: w, N: n, D: 4, R: 10})
		}
		add(fmt09(13+i), "HD, impact of dataset size on "+w+" dataset", hdAlgos, pts)
	}

	for i, w := range []string{"indep", "corr", "anti"} {
		pts = nil
		for d := 2; d <= 6; d++ {
			r := 10
			if r < d+1 {
				r = d + 1
			}
			pts = append(pts, Point{Workload: w, N: nHDDefault, D: d, R: r})
		}
		add(fmt09(16+i), "HD, impact of dimension on "+w+" dataset", hdAlgos, pts)
	}

	for i, w := range []string{"indep", "corr", "anti"} {
		pts = nil
		for r := 10; r <= 15; r++ {
			pts = append(pts, Point{Workload: w, N: nHDDefault, D: 4, R: r})
		}
		add(fmt09(19+i), "HD, impact of output size on "+w+" dataset", hdAlgos, pts)
	}

	for i, w := range []string{"indep", "corr", "anti"} {
		pts = nil
		for _, delta := range []float64{0.01, 0.02, 0.03, 0.05, 0.1} {
			pts = append(pts, Point{Workload: w, N: nHDDefault, D: 4, R: 10, Delta: delta})
		}
		add(fmt09(22+i), "HD, impact of delta on "+w+" dataset", []string{"HDRRM"}, pts)
	}

	// --- RRRM experiments (Section VI.B.5): weak rankings with c = 2 ---
	pts = nil
	for _, n := range nsHD {
		pts = append(pts, Point{Workload: "anti", N: n, D: 4, R: 10, C: 2})
	}
	add("fig25", "HD, RRRM, varied dataset size on anti-correlated dataset",
		[]string{"HDRRM", "MDRRRr"}, pts)

	pts = nil
	for d := 3; d <= 6; d++ {
		pts = append(pts, Point{Workload: "anti", N: nHDDefault, D: d, R: 10, C: 2})
	}
	add("fig26", "HD, RRRM, varied dimension on anti-correlated dataset",
		[]string{"HDRRM", "MDRRRr"}, pts)

	// --- HD real datasets ---
	pts = nil
	for _, n := range nsNBA {
		pts = append(pts, Point{Workload: "nba", N: n, D: 5, R: 10})
	}
	add("fig27", "HD, varied dataset size on NBA", hdAlgos, pts)

	pts = nil
	for _, n := range nsWeather {
		pts = append(pts, Point{Workload: "weather", N: n, D: 4, R: 10})
	}
	add("fig28", "HD, varied dataset size on Weather", hdAlgos, pts)

	// --- Table I (the running example, for completeness) ---
	add("table1", "Table I example: RRM on the 7-tuple dataset",
		[]string{"2DRRM"}, []Point{{Workload: "table1", N: 7, D: 2, R: 1}})

	// --- Ablations (beyond the paper; DESIGN.md Section 4) ---
	pts = nil
	for _, w := range []string{"indep", "anti"} {
		pts = append(pts, Point{Workload: w, N: nHDDefault, D: 4, R: 10})
	}
	add("ablation", "HDRRM ablations: drop the basis, the polar grid, or the samples",
		[]string{"HDRRM", "HDRRM:no-basis", "HDRRM:no-grid", "HDRRM:no-samples"}, pts)

	return figs
}

func fmt09(i int) string {
	if i < 10 {
		return "fig0" + string(rune('0'+i))
	}
	return "fig" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
