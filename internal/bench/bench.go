// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section VI). Each figure is a FigureSpec: a list
// of (workload, n, d, r, ...) points crossed with a list of algorithms; Run
// executes the points, measures wall time and output rank-regret (exact in
// 2D, sampled in HD, as in the paper), and returns printable rows.
//
// Two scales are built in: "ci" (laptop-friendly sizes, the default) and
// "paper" (the paper's axis ranges; expect long runtimes — the original
// experiments ran in C++ on a 128 GB machine). The reproduction target is
// the curves' *shape*: who wins, by what factor, and where the crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for every figure.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/eval"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Point is one x-axis position of a figure.
type Point struct {
	Workload string  // indep | corr | anti | island | nba | weather
	N        int     // dataset size
	D        int     // attributes (real datasets have a fixed d; island=2, nba=5 or 2, weather=4)
	R        int     // output size budget
	Delta    float64 // HDRRM delta (0 = default)
	C        int     // weak-ranking constraint count (restricted figures; 0 = full space)
}

// FigureSpec describes one paper figure.
type FigureSpec struct {
	ID     string
	Title  string
	Points []Point
	Algos  []string
}

// Row is one measurement.
type Row struct {
	Figure     string
	Workload   string
	N, D, R    int
	Delta      float64
	Algo       string
	Millis     float64
	Size       int
	RankRegret int
	K          int // HDRRM/MDRRRr internal bound (0 when n/a)
	Err        string
}

// Scale bundles the knobs that differ between laptop and paper runs.
type Scale struct {
	Name        string
	MaxM        int // cap on HDRRM's Theorem 10 sample size
	EvalSamples int // directions used to estimate HD rank-regret
}

// CIScale and PaperScale are the two built-in scales.
var (
	CIScale    = Scale{Name: "ci", MaxM: 12000, EvalSamples: 20000}
	PaperScale = Scale{Name: "paper", MaxM: 0, EvalSamples: 100000}
)

// MakeDataset builds the workload for a point. Seeds are derived from the
// point so every algorithm sees the identical dataset.
func MakeDataset(p Point, seed int64) (*dataset.Dataset, error) {
	rng := xrand.New(seed)
	if p.Workload == "table1" {
		return dataset.TableI(), nil
	}
	if ds, ok := dataset.Synthetic(p.Workload, rng, p.N, p.D); ok {
		return ds, nil
	}
	if ds, ok := dataset.Real(p.Workload, rng, p.N); ok {
		if p.Workload == "nba" && p.D == 2 {
			// Figure 12 projects NBA onto two attributes.
			return ds.Project([]int{0, 1})
		}
		return ds.Head(p.N), nil
	}
	return nil, fmt.Errorf("bench: unknown workload %q", p.Workload)
}

// space returns the utility space for a point (weak-ranking cone when C>0).
func space(p Point, d int) (funcspace.Space, error) {
	if p.C <= 0 {
		return nil, nil
	}
	return funcspace.WeakRanking(d, p.C)
}

// runAlgo dispatches an algorithm by name and returns the chosen ids and the
// solver's internal bound K (0 if n/a).
func runAlgo(name string, ds *dataset.Dataset, p Point, sc Scale, seed int64) (ids []int, k int, err error) {
	sp, err := space(p, ds.Dim())
	if err != nil {
		return nil, 0, err
	}
	opts := algohd.DefaultOptions()
	opts.Seed = seed
	opts.MaxM = sc.MaxM
	if p.Delta > 0 {
		opts.Delta = p.Delta
		// The delta sweep (Figures 22-24) exists to show m = Theta(1/delta^2)
		// trading time for rank-regret; a tight cap would flatten the sweep,
		// so give these points more headroom (paper scale is uncapped).
		opts.MaxM = 4 * sc.MaxM
	}
	opts.Space = sp
	switch name {
	case "2DRRM":
		var res algo2d.Result
		if sp != nil {
			res, err = algo2d.TwoDRRMRestricted(ds, p.R, sp)
		} else {
			res, err = algo2d.TwoDRRM(ds, p.R)
		}
		if err != nil {
			return nil, 0, err
		}
		return res.IDs, res.RankRegret, nil
	case "2DRRR":
		res, err := algo2d.TwoDRRRBaselineForRRM(ds, p.R)
		if err != nil {
			return nil, 0, err
		}
		return res.IDs, res.RankRegret, nil
	case "HDRRM":
		res, err := algohd.HDRRM(ds, p.R, opts)
		if err != nil {
			return nil, 0, err
		}
		return res.IDs, res.K, nil
	case "HDRRM:no-basis", "HDRRM:no-grid", "HDRRM:no-samples":
		v := algohd.Variant{
			NoBasis:   name == "HDRRM:no-basis",
			NoGrid:    name == "HDRRM:no-grid",
			NoSamples: name == "HDRRM:no-samples",
		}
		res, err := algohd.HDRRMVariant(ds, p.R, opts, v)
		if err != nil {
			return nil, 0, err
		}
		return res.IDs, res.K, nil
	case "MDRRRr":
		o := opts
		// Fixed k-set discovery budget, as in the RRR paper: the number
		// of k-sets |W| grows super-linearly with n while the sampling
		// budget does not, which is where MDRRRr's output quality falls
		// behind HDRRM's Theorem 10 sample size (the paper's Figures
		// 13-15 and 25).
		o.M = 1024
		res, err := algohd.MDRRRr(ds, p.R, o)
		if err != nil {
			return nil, 0, err
		}
		return res.IDs, res.K, nil
	case "MDRC":
		res, err := algohd.MDRC(ds, p.R)
		if err != nil {
			return nil, 0, err
		}
		return res.IDs, 0, nil
	case "MDRMS":
		o := opts
		o.M = 2048
		res, err := algohd.MDRMS(ds, p.R, o)
		if err != nil {
			return nil, 0, err
		}
		return res.IDs, 0, nil
	case "RMSGreedy":
		o := opts
		o.M = 1024
		res, err := algohd.RMSGreedy(ds, p.R, o)
		if err != nil {
			return nil, 0, err
		}
		return res.IDs, 0, nil
	default:
		return nil, 0, fmt.Errorf("bench: unknown algorithm %q", name)
	}
}

// Run executes a figure spec at the given scale and returns one row per
// (point, algorithm). Failures (e.g. MDRRRr refusing a scale) are recorded
// in the row's Err instead of aborting the figure, mirroring the paper's
// "does not scale beyond" annotations.
func Run(spec FigureSpec, sc Scale, seed int64) []Row {
	var rows []Row
	for pi, p := range spec.Points {
		dsSeed := seed + int64(pi)*1000
		ds, err := MakeDataset(p, dsSeed)
		if err != nil {
			rows = append(rows, Row{Figure: spec.ID, Workload: p.Workload, N: p.N, D: p.D, R: p.R, Delta: p.Delta, Err: err.Error()})
			continue
		}
		d := ds.Dim()
		sp, _ := space(p, d)
		for _, algo := range spec.Algos {
			row := Row{Figure: spec.ID, Workload: p.Workload, N: ds.N(), D: d, R: p.R, Delta: p.Delta, Algo: algo}
			start := time.Now()
			ids, k, err := runAlgo(algo, ds, p, sc, seed)
			row.Millis = float64(time.Since(start).Microseconds()) / 1000
			if err != nil {
				row.Err = err.Error()
				rows = append(rows, row)
				continue
			}
			row.Size = len(ids)
			row.K = k
			if d == 2 {
				rr, err := eval.RankRegret2DExact(ds, ids, sp)
				if err != nil {
					row.Err = err.Error()
				} else {
					row.RankRegret = rr
				}
			} else {
				rr, err := eval.RankRegret(ds, ids, sp, sc.EvalSamples, seed+777)
				if err != nil {
					row.Err = err.Error()
				} else {
					row.RankRegret = rr
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// WriteTable renders rows as an aligned table, one line per measurement —
// the same series the paper plots (time and output rank-regret per
// algorithm and x-axis position).
func WriteTable(w io.Writer, rows []Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "figure\tworkload\tn\td\tr\tdelta\talgo\ttime_ms\tsize\trank_regret\tk_bound\terror")
	for _, r := range rows {
		delta := ""
		if r.Delta > 0 {
			delta = fmt.Sprintf("%.2f", r.Delta)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\t%s\t%.1f\t%d\t%d\t%d\t%s\n",
			r.Figure, r.Workload, r.N, r.D, r.R, delta, r.Algo, r.Millis, r.Size, r.RankRegret, r.K, r.Err)
	}
	return tw.Flush()
}

// WriteCSV renders rows as machine-readable CSV with the same columns as
// WriteTable, for feeding plotting scripts.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "workload", "n", "d", "r", "delta", "algo",
		"time_ms", "size", "rank_regret", "k_bound", "error"}); err != nil {
		return fmt.Errorf("bench: writing csv header: %w", err)
	}
	for _, r := range rows {
		delta := ""
		if r.Delta > 0 {
			delta = strconv.FormatFloat(r.Delta, 'g', -1, 64)
		}
		rec := []string{
			r.Figure, r.Workload,
			strconv.Itoa(r.N), strconv.Itoa(r.D), strconv.Itoa(r.R), delta, r.Algo,
			strconv.FormatFloat(r.Millis, 'f', 3, 64),
			strconv.Itoa(r.Size), strconv.Itoa(r.RankRegret), strconv.Itoa(r.K), r.Err,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("bench: writing csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("bench: flushing csv: %w", err)
	}
	return nil
}

// IDs returns the sorted figure identifiers available from Figures.
func IDs(scale Scale) []string {
	figs := Figures(scale)
	out := make([]string, 0, len(figs))
	for id := range figs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Lookup finds a figure spec by id (case-insensitive).
func Lookup(id string, scale Scale) (FigureSpec, bool) {
	figs := Figures(scale)
	spec, ok := figs[strings.ToLower(id)]
	return spec, ok
}
