package bench

import (
	"strings"
	"testing"
)

func TestMakeDatasetWorkloads(t *testing.T) {
	cases := []struct {
		p     Point
		wantN int
		wantD int
	}{
		{Point{Workload: "table1", N: 7, D: 2, R: 1}, 7, 2},
		{Point{Workload: "indep", N: 200, D: 3, R: 5}, 200, 3},
		{Point{Workload: "corr", N: 200, D: 3, R: 5}, 200, 3},
		{Point{Workload: "anti", N: 200, D: 3, R: 5}, 200, 3},
		{Point{Workload: "island", N: 300, D: 2, R: 5}, 300, 2},
		{Point{Workload: "nba", N: 300, D: 5, R: 5}, 300, 5},
		{Point{Workload: "nba", N: 300, D: 2, R: 5}, 300, 2}, // Fig 12 projection
		{Point{Workload: "weather", N: 300, D: 4, R: 5}, 300, 4},
	}
	for _, tc := range cases {
		ds, err := MakeDataset(tc.p, 1)
		if err != nil {
			t.Errorf("%s: %v", tc.p.Workload, err)
			continue
		}
		if ds.N() != tc.wantN || ds.Dim() != tc.wantD {
			t.Errorf("%s d=%d: got %dx%d, want %dx%d",
				tc.p.Workload, tc.p.D, ds.N(), ds.Dim(), tc.wantN, tc.wantD)
		}
	}
	if _, err := MakeDataset(Point{Workload: "nope", N: 10}, 1); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestMakeDatasetDeterministic(t *testing.T) {
	p := Point{Workload: "anti", N: 100, D: 3, R: 5}
	a, err := MakeDataset(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MakeDataset(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.Dim(); j++ {
			if a.Value(i, j) != b.Value(i, j) {
				t.Fatalf("same seed produced different data at (%d,%d)", i, j)
			}
		}
	}
}

func TestFiguresCoverEveryPaperExperiment(t *testing.T) {
	for _, sc := range []Scale{CIScale, PaperScale} {
		figs := Figures(sc)
		for i := 9; i <= 28; i++ {
			id := fmt09(i)
			spec, ok := figs[id]
			if !ok {
				t.Errorf("scale %s: missing %s", sc.Name, id)
				continue
			}
			if spec.ID != id || spec.Title == "" || len(spec.Points) == 0 || len(spec.Algos) == 0 {
				t.Errorf("scale %s: %s spec incomplete: %+v", sc.Name, id, spec)
			}
		}
		for _, extra := range []string{"table1", "ablation"} {
			if _, ok := figs[extra]; !ok {
				t.Errorf("scale %s: missing %s", sc.Name, extra)
			}
		}
	}
}

func TestIDsSortedAndLookup(t *testing.T) {
	ids := IDs(CIScale)
	if len(ids) < 22 {
		t.Fatalf("only %d figure ids", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("ids not sorted: %q >= %q", ids[i-1], ids[i])
		}
	}
	if _, ok := Lookup("fig15", CIScale); !ok {
		t.Error("Lookup(fig15) failed")
	}
	if _, ok := Lookup("nonsense", CIScale); ok {
		t.Error("Lookup(nonsense) should fail")
	}
}

func TestRunTinyFigure(t *testing.T) {
	spec := FigureSpec{
		ID:    "test",
		Title: "tiny",
		Points: []Point{
			{Workload: "indep", N: 60, D: 2, R: 3},
			{Workload: "anti", N: 60, D: 3, R: 4},
		},
		Algos: []string{"2DRRM", "HDRRM", "MDRC"},
	}
	sc := Scale{Name: "test", MaxM: 200, EvalSamples: 500}
	rows := Run(spec, sc, 1)
	if len(rows) != len(spec.Points)*len(spec.Algos) {
		t.Fatalf("got %d rows, want %d", len(rows), len(spec.Points)*len(spec.Algos))
	}
	for _, row := range rows {
		if row.Algo == "2DRRM" && row.D == 3 {
			if row.Err == "" {
				t.Errorf("2DRRM on d=3 should error, got rank-regret %d", row.RankRegret)
			}
			continue
		}
		if row.Err != "" {
			t.Errorf("%s on %s: %s", row.Algo, row.Workload, row.Err)
			continue
		}
		if row.Size <= 0 || row.Size > row.R {
			t.Errorf("%s on %s: size %d outside (0, %d]", row.Algo, row.Workload, row.Size, row.R)
		}
		if row.RankRegret < 1 || row.RankRegret > row.N {
			t.Errorf("%s on %s: rank-regret %d outside [1, %d]", row.Algo, row.Workload, row.RankRegret, row.N)
		}
		if row.Millis < 0 {
			t.Errorf("%s on %s: negative time", row.Algo, row.Workload)
		}
	}
}

func TestRunAblationAlgos(t *testing.T) {
	spec := FigureSpec{
		ID:     "abl",
		Title:  "tiny ablation",
		Points: []Point{{Workload: "indep", N: 80, D: 3, R: 6}},
		Algos:  []string{"HDRRM", "HDRRM:no-basis", "HDRRM:no-grid", "HDRRM:no-samples"},
	}
	rows := Run(spec, Scale{Name: "test", MaxM: 200, EvalSamples: 500}, 1)
	for _, row := range rows {
		if row.Err != "" {
			t.Errorf("%s: %s", row.Algo, row.Err)
		}
	}
}

func TestRunRestrictedPoint(t *testing.T) {
	spec := FigureSpec{
		ID:     "rrrm",
		Title:  "tiny RRRM",
		Points: []Point{{Workload: "anti", N: 80, D: 3, R: 6, C: 1}},
		Algos:  []string{"HDRRM", "MDRRRr"},
	}
	rows := Run(spec, Scale{Name: "test", MaxM: 200, EvalSamples: 500}, 1)
	for _, row := range rows {
		if row.Err != "" {
			t.Errorf("%s: %s", row.Algo, row.Err)
		}
	}
}

func TestWriteTable(t *testing.T) {
	rows := []Row{
		{Figure: "f", Workload: "indep", N: 10, D: 2, R: 3, Algo: "2DRRM",
			Millis: 1.25, Size: 3, RankRegret: 2, K: 2},
		{Figure: "f", Workload: "anti", N: 10, D: 2, R: 3, Algo: "HDRRM",
			Err: "boom"},
	}
	var sb strings.Builder
	if err := WriteTable(&sb, rows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"figure", "2DRRM", "boom", "indep", "anti"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownAlgoInRun(t *testing.T) {
	spec := FigureSpec{
		ID:     "bad",
		Title:  "bad algo",
		Points: []Point{{Workload: "indep", N: 50, D: 2, R: 3}},
		Algos:  []string{"NOPE"},
	}
	rows := Run(spec, Scale{Name: "test", MaxM: 100, EvalSamples: 100}, 1)
	if len(rows) != 1 || rows[0].Err == "" {
		t.Errorf("unknown algorithm should produce an error row, got %+v", rows)
	}
}

func TestWriteCSV(t *testing.T) {
	rows := []Row{
		{Figure: "f", Workload: "indep", N: 10, D: 2, R: 3, Delta: 0.03, Algo: "HDRRM",
			Millis: 1.25, Size: 3, RankRegret: 2, K: 2},
		{Figure: "f", Workload: "anti", N: 10, D: 2, R: 3, Algo: "MDRC", Err: "boom"},
	}
	var sb strings.Builder
	if err := WriteCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 rows:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "figure,workload,n,d,r,delta,algo") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], "0.03") || !strings.Contains(lines[1], "HDRRM") {
		t.Errorf("bad first row: %s", lines[1])
	}
	if !strings.Contains(lines[2], "boom") {
		t.Errorf("error column missing: %s", lines[2])
	}
}
