// Package faultfs is the filesystem seam of the durability layer: a small
// interface covering exactly the operations the store's WAL and snapshot
// writers perform (open, write, sync, rename, remove), a zero-cost
// passthrough to the real disk, and a deterministic fault injector that can
// fail the Nth operation with ENOSPC or EIO, tear a write short, or add
// fsync latency.
//
// Production code always runs against Disk — the passthrough adds no
// wrapper around *os.File, so the hot path is untouched. Tests and chaos
// harnesses wrap Disk in an Injector and script faults against it, turning
// "hope the disk never hiccups" into deterministic, replayable scenarios.
// Read paths (replay, snapshot load, directory listing) deliberately stay on
// the os package: recovery code must work on whatever bytes reached the
// disk, and injecting read faults would only test the error plumbing of
// code that already fails explicitly.
package faultfs

import (
	"io"
	"os"
)

// File is the writable-file surface the store needs: append bytes, force
// them to stable storage, close. *os.File satisfies it directly.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the write-side filesystem seam. Every durability-relevant mutation
// of the data directory goes through one of these five operations.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (snapshot publish).
	Rename(oldpath, newpath string) error
	// Remove deletes name (pruning, tmp-file cleanup).
	Remove(name string) error
}

// diskFS is the production passthrough: direct os calls, the *os.File
// returned as-is.
type diskFS struct{}

func (diskFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return a nil interface, not a nil *os.File in a non-nil interface.
		return nil, err
	}
	return f, nil
}

func (diskFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (diskFS) Remove(name string) error             { return os.Remove(name) }

// Disk is the real filesystem. The zero value of every store option should
// resolve to it.
var Disk FS = diskFS{}
