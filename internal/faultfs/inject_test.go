package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func openWrite(t *testing.T, fs FS, path string, data []byte) (int, error) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	return f.Write(data)
}

// TestNthOpFault: a rule with After/Count fires on exactly the scripted
// window of matching operations and passes everything else through.
func TestNthOpFault(t *testing.T) {
	dir := t.TempDir()
	in := New(Disk, 1)
	in.Arm(Rule{Op: OpWrite, After: 2, Count: 2, Err: syscall.ENOSPC})
	path := filepath.Join(dir, "f")
	for i := 0; i < 6; i++ {
		_, err := openWrite(t, in, path, []byte("x"))
		wantFault := i == 2 || i == 3
		if wantFault && !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d: got %v, want ENOSPC", i, err)
		}
		if !wantFault && err != nil {
			t.Fatalf("write %d: unexpected error %v", i, err)
		}
	}
	if got := in.Injected(); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "xxxx" {
		t.Fatalf("file holds %q, want the 4 successful writes", data)
	}
}

// TestPathAndOpMatching: rules only hit operations whose op and path match.
func TestPathAndOpMatching(t *testing.T) {
	dir := t.TempDir()
	in := New(Disk, 1)
	in.Arm(Rule{Op: OpSync, Path: "wal-", Err: syscall.EIO})
	wal := filepath.Join(dir, "wal-0001.log")
	snap := filepath.Join(dir, "snap-0001.snap")
	for _, tc := range []struct {
		path    string
		wantEIO bool
	}{{wal, true}, {snap, false}} {
		f, err := in.OpenFile(tc.path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		err = f.Sync()
		f.Close()
		if tc.wantEIO != errors.Is(err, syscall.EIO) {
			t.Fatalf("sync %s: err=%v, wantEIO=%v", tc.path, err, tc.wantEIO)
		}
	}
}

// TestTornWrite: Short passes a prefix to the disk then fails, leaving the
// partial frame a real crash would.
func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := New(Disk, 1)
	in.Arm(Rule{Op: OpWrite, Short: 3, Err: syscall.EIO})
	path := filepath.Join(dir, "f")
	n, err := openWrite(t, in, path, []byte("abcdef"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write error = %v, want EIO", err)
	}
	if n != 3 {
		t.Fatalf("torn write reported %d bytes, want 3", n)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "abc" {
		t.Fatalf("file holds %q, want the torn prefix \"abc\"", data)
	}
}

// TestClearHeals: after Clear, every operation passes again — the fault has
// "cleared" and the healing path can make progress.
func TestClearHeals(t *testing.T) {
	dir := t.TempDir()
	in := New(Disk, 1)
	in.Arm(Rule{Op: OpAny, Err: syscall.ENOSPC})
	if _, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("armed any-op rule let an open through: %v", err)
	}
	in.Clear()
	if _, err := openWrite(t, in, filepath.Join(dir, "f"), []byte("x")); err != nil {
		t.Fatalf("cleared injector still failing: %v", err)
	}
}

// TestSeededProbDeterminism: the probabilistic stream is a pure function of
// the seed and the operation sequence.
func TestSeededProbDeterminism(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		in := New(Disk, seed)
		in.Arm(Rule{Op: OpWrite, Prob: 0.5, Err: syscall.EIO})
		var fired []bool
		for i := 0; i < 32; i++ {
			_, err := openWrite(t, in, filepath.Join(dir, "f"), []byte("x"))
			fired = append(fired, err != nil)
		}
		return fired
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault streams")
	}
}

// TestRenameRemoveFaults cover the two non-file ops.
func TestRenameRemoveFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := New(Disk, 1)
	in.Arm(Rule{Op: OpRename, Err: syscall.EIO}, Rule{Op: OpRemove, Err: syscall.ENOSPC})
	if err := in.Rename(path, filepath.Join(dir, "b")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename err = %v, want EIO", err)
	}
	if err := in.Remove(path); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("remove err = %v, want ENOSPC", err)
	}
	in.Clear()
	if err := in.Remove(path); err != nil {
		t.Fatalf("remove after clear: %v", err)
	}
}

// TestParseScript round-trips the DSL and rejects malformed scripts.
func TestParseScript(t *testing.T) {
	rules, err := ParseScript("op=sync,err=enospc,after=10,count=5;op=write,path=wal-,err=eio,short=8,prob=0.25,delay=15ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r0, r1 := rules[0], rules[1]
	if r0.Op != OpSync || !errors.Is(r0.Err, syscall.ENOSPC) || r0.After != 10 || r0.Count != 5 {
		t.Fatalf("rule 0 = %+v", r0)
	}
	if r1.Op != OpWrite || r1.Path != "wal-" || !errors.Is(r1.Err, syscall.EIO) ||
		r1.Short != 8 || r1.Prob != 0.25 || r1.Delay != 15*time.Millisecond {
		t.Fatalf("rule 1 = %+v", r1)
	}
	for _, bad := range []string{"", "op=sync err=eio", "op=flush", "err=eperm", "prob=1.5", "frequency=2"} {
		if _, err := ParseScript(bad); err == nil {
			t.Fatalf("script %q parsed without error", bad)
		}
	}
}

// TestDelayOnly: err=none rules add latency without failing the op.
func TestDelayOnly(t *testing.T) {
	dir := t.TempDir()
	in := New(Disk, 1)
	in.Arm(Rule{Op: OpWrite, Delay: 30 * time.Millisecond})
	start := time.Now()
	if _, err := openWrite(t, in, filepath.Join(dir, "f"), []byte("x")); err != nil {
		t.Fatalf("delay-only rule failed the op: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay rule added only %v", elapsed)
	}
}
