package faultfs

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/rankregret/rankregret/internal/xrand"
)

// Op names one seam operation for rule matching. Write and Sync rules match
// operations on files opened through the injector; Open, Rename, and Remove
// match the FS-level calls.
type Op string

const (
	OpOpen   Op = "open"
	OpWrite  Op = "write"
	OpSync   Op = "sync"
	OpRename Op = "rename"
	OpRemove Op = "remove"
	// OpAny matches every operation; the empty Op means the same.
	OpAny Op = "any"
)

// Errors a rule can inject, by script name. ENOSPC and EIO are the two
// transient disk faults production actually sees (full disk, failing
// device); both must leave the store degraded-but-serving rather than
// wedged-until-restart.
var errByName = map[string]error{
	"enospc": syscall.ENOSPC,
	"eio":    syscall.EIO,
	"none":   nil, // delay-only rules
}

// Rule is one scripted fault. A rule fires on operations matching Op and
// Path, after skipping the first After matches, at most Count times
// (0 = unlimited), each time with probability Prob (0 = always, seeded and
// deterministic). When it fires it sleeps Delay, then — for writes with
// Short > 0 — passes the first Short bytes through before failing, and
// returns Err (nil Err = delay only, the operation proceeds).
type Rule struct {
	Op    Op
	Path  string // substring of the target path; "" matches every path
	After int
	Count int
	Err   error
	Short int
	Prob  float64
	Delay time.Duration
}

// armed tracks one rule's live match/fire counters.
type armed struct {
	Rule
	seen  int
	fired int
}

// Injector wraps an FS and applies scripted faults to matching operations.
// It is safe for concurrent use; rule matching, counters, and the seeded
// probability stream are serialized under one mutex, so a given script and
// operation sequence always injects the same faults.
type Injector struct {
	inner FS

	mu    sync.Mutex
	rng   *xrand.Rand
	rules []*armed
	// ops counts every operation seen per Op; injected counts faults fired.
	ops      map[Op]uint64
	injected uint64
}

// New wraps inner with a fault injector. The seed drives probabilistic
// rules; deterministic rules (After/Count) ignore it.
func New(inner FS, seed int64) *Injector {
	if inner == nil {
		inner = Disk
	}
	return &Injector{inner: inner, rng: xrand.New(seed), ops: make(map[Op]uint64)}
}

// Arm appends rules to the active script. Rules are consulted in arming
// order; the first matching rule decides an operation's fate.
func (in *Injector) Arm(rules ...Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range rules {
		rr := r
		in.rules = append(in.rules, &armed{Rule: rr})
	}
}

// Clear disarms every rule — the injected fault "clears", and all
// operations pass through again.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Injected reports how many operations have had a fault injected.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// OpCount reports how many operations of the given kind have been seen
// (fired or passed).
func (in *Injector) OpCount(op Op) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops[op]
}

// decide consults the script for one operation. It returns the rule's
// injected error (nil = proceed), a sleep to apply first, and for torn
// writes the byte count to pass through.
func (in *Injector) decide(op Op, path string) (err error, delay time.Duration, short int, torn bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops[op]++
	for _, r := range in.rules {
		if r.Op != "" && r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			return nil, 0, 0, false
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue // exhausted; later rules may still apply
		}
		if r.Prob > 0 && in.rng.Float64() >= r.Prob {
			return nil, 0, 0, false
		}
		r.fired++
		in.injected++
		return r.Err, r.Delay, r.Short, r.Short > 0
	}
	return nil, 0, 0, false
}

// OpenFile implements FS. Files opened through a faulted open never exist;
// files opened successfully route their writes and syncs back through the
// injector.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	err, delay, _, _ := in.decide(OpOpen, name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, path: name, f: f}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	err, delay, _, _ := in.decide(OpRename, newpath)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	err, delay, _, _ := in.decide(OpRemove, name)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return in.inner.Remove(name)
}

// injFile routes a file's writes and syncs through the injector's script.
type injFile struct {
	in   *Injector
	path string
	f    File
}

func (f *injFile) Write(p []byte) (int, error) {
	err, delay, short, torn := f.in.decide(OpWrite, f.path)
	if delay > 0 {
		time.Sleep(delay)
	}
	if torn {
		// Torn write: some prefix of the buffer reaches the disk, then the
		// device fails — the exact shape of a crash mid-append.
		if short > len(p) {
			short = len(p)
		}
		n, werr := f.f.Write(p[:short])
		if werr != nil {
			return n, werr
		}
		if err == nil {
			err = syscall.EIO
		}
		return n, &os.PathError{Op: "write", Path: f.path, Err: err}
	}
	if err != nil {
		return 0, &os.PathError{Op: "write", Path: f.path, Err: err}
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	err, delay, _, _ := f.in.decide(OpSync, f.path)
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return &os.PathError{Op: "sync", Path: f.path, Err: err}
	}
	return f.f.Sync()
}

func (f *injFile) Close() error { return f.f.Close() }

// ParseScript parses the compact fault-script DSL used by rrmd's
// -fault-inject flag and the chaos harness. Rules are separated by ';',
// fields within a rule by ',', each field a key=value pair:
//
//	op=sync,err=enospc,after=10,count=5
//	op=write,path=wal-,err=eio,short=5;op=sync,delay=50ms,err=none
//
// Keys: op (open|write|sync|rename|remove|any), path (substring), after,
// count, err (enospc|eio|none), short (torn-write byte count), prob
// ([0,1], seeded), delay (Go duration). Unknown keys are errors, so typos
// fail fast instead of silently arming nothing.
func ParseScript(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var r Rule
		for _, field := range strings.Split(part, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("faultfs: bad script field %q (want key=value)", field)
			}
			var err error
			switch k {
			case "op":
				switch Op(v) {
				case OpOpen, OpWrite, OpSync, OpRename, OpRemove, OpAny:
					r.Op = Op(v)
				default:
					return nil, fmt.Errorf("faultfs: unknown op %q (want %v)", v, knownOps())
				}
			case "path":
				r.Path = v
			case "after":
				r.After, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "err":
				e, ok := errByName[v]
				if !ok {
					return nil, fmt.Errorf("faultfs: unknown err %q (want enospc, eio, or none)", v)
				}
				r.Err = e
			case "short":
				r.Short, err = strconv.Atoi(v)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.Prob < 0 || r.Prob > 1) {
					return nil, fmt.Errorf("faultfs: prob %v outside [0,1]", r.Prob)
				}
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			default:
				return nil, fmt.Errorf("faultfs: unknown script key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultfs: bad %s value %q: %w", k, v, err)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultfs: empty fault script")
	}
	return rules, nil
}

func knownOps() []Op {
	ops := []Op{OpOpen, OpWrite, OpSync, OpRename, OpRemove, OpAny}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	return ops
}
