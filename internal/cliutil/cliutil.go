// Package cliutil holds the flag-parsing and dataset-loading helpers shared
// by the rrm, rrmbench, and rrmd commands: textual utility-space specs,
// negate-column lists, CSV loading with the standard preprocessing pipeline
// (negate, then min-max normalize), and small JSON output helpers.
package cliutil

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/rankregret/rankregret"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
)

// ParseSpace parses a textual utility-space spec for a d-dimensional
// dataset. Supported forms:
//
//	weak:c            — weak-ranking cone u[0] >= u[1] >= ... >= u[c]
//	ball:r,c1,...,cd  — directions within L2 distance r of center (c1..cd)
//
// The empty spec is an error; callers treat "no spec" as the full space
// before calling.
func ParseSpace(spec string, d int) (funcspace.Space, error) {
	switch {
	case strings.HasPrefix(spec, "weak:"):
		c, err := strconv.Atoi(spec[len("weak:"):])
		if err != nil {
			return nil, fmt.Errorf("bad weak-ranking spec %q: %w", spec, err)
		}
		return funcspace.WeakRanking(d, c)
	case strings.HasPrefix(spec, "ball:"):
		fields := strings.Split(spec[len("ball:"):], ",")
		if len(fields) != d+1 {
			return nil, fmt.Errorf("ball spec needs radius plus %d center coordinates", d)
		}
		vals := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("bad ball spec field %q: %w", f, err)
			}
			vals[i] = v
		}
		return funcspace.NewBall(vals[1:], vals[0])
	default:
		return nil, fmt.Errorf("unknown space spec %q (want weak:c or ball:r,c1..cd)", spec)
	}
}

// ParseNegate parses a comma-separated list of 0-based column indices
// ("2,4") into a slice. The empty string parses to nil.
func ParseNegate(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		j, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad -negate entry %q: %w", f, err)
		}
		out = append(out, j)
	}
	return out, nil
}

// LoadCSV reads a dataset from r and applies the standard preprocessing
// pipeline: negate the listed smaller-is-better columns (via the public
// rankregret.ReadCSV, the single implementation of that step), then
// (optionally) min-max normalize every attribute to [0,1].
func LoadCSV(r io.Reader, header bool, negate []int, normalize bool) (*dataset.Dataset, error) {
	ds, err := rankregret.ReadCSV(r, header, negate)
	if err != nil {
		return nil, err
	}
	if normalize {
		ds.Normalize()
	}
	return ds, nil
}

// LoadCSVFile is LoadCSV over a file path; "-" reads from stdin.
func LoadCSVFile(path string, header bool, negate []int, normalize bool) (*dataset.Dataset, error) {
	src := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		src = f
	}
	return LoadCSV(src, header, negate, normalize)
}

// WriteJSONFile writes v as indented JSON to path ("-" = stdout). A failed
// flush on close is reported, so callers never mistake a truncated file for
// success.
func WriteJSONFile(path string, v any) (err error) {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, cerr := os.Create(path)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
