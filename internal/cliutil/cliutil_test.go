package cliutil

import (
	"strings"
	"testing"
)

func TestParseSpaceWeak(t *testing.T) {
	sp, err := ParseSpace("weak:2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dim() != 4 {
		t.Errorf("dim = %d, want 4", sp.Dim())
	}
	// u[0] >= u[1] >= u[2] holds for this direction...
	if !sp.ContainsDirection([]float64{0.5, 0.4, 0.3, 0.9}) {
		t.Error("direction satisfying the weak ranking rejected")
	}
	// ...but not for this one.
	if sp.ContainsDirection([]float64{0.1, 0.5, 0.3, 0.9}) {
		t.Error("direction violating the weak ranking accepted")
	}
}

func TestParseSpaceBall(t *testing.T) {
	sp, err := ParseSpace("ball:0.1,0.5,0.5", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Dim() != 2 {
		t.Errorf("dim = %d, want 2", sp.Dim())
	}
	if !sp.ContainsDirection([]float64{0.5, 0.5}) {
		t.Error("center direction rejected")
	}
	if sp.ContainsDirection([]float64{1, 0}) {
		t.Error("far-away direction accepted")
	}
}

func TestParseSpaceMalformed(t *testing.T) {
	cases := []struct {
		name string
		spec string
		d    int
	}{
		{"non-numeric c", "weak:x", 4},
		{"c out of range high", "weak:4", 4},
		{"c out of range low", "weak:0", 4},
		{"weak missing c", "weak:", 4},
		{"ball wrong coordinate count", "ball:0.1,0.5", 2},
		{"ball too many coordinates", "ball:0.1,0.5,0.5,0.5", 2},
		{"ball non-numeric fields", "ball:0.1,a,b", 2},
		{"ball empty", "ball:", 2},
		{"unknown kind", "sphere:1", 2},
		{"empty", "", 2},
		{"bare word", "weak", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseSpace(tc.spec, tc.d); err == nil {
				t.Errorf("ParseSpace(%q, %d) should fail", tc.spec, tc.d)
			}
		})
	}
}

func TestParseNegate(t *testing.T) {
	got, err := ParseNegate(" 2, 4 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("ParseNegate = %v, want [2 4]", got)
	}
	if got, err := ParseNegate(""); err != nil || got != nil {
		t.Errorf("empty spec: got %v, %v", got, err)
	}
	for _, bad := range []string{"a", "1,,2", "1,b", ","} {
		if _, err := ParseNegate(bad); err == nil {
			t.Errorf("ParseNegate(%q) should fail", bad)
		}
	}
}

func TestLoadCSV(t *testing.T) {
	const csvData = "price,mpg\n100,30\n200,50\n150,10\n"
	ds, err := LoadCSV(strings.NewReader(csvData), true, []int{0}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 3 || ds.Dim() != 2 {
		t.Fatalf("n=%d d=%d, want 3x2", ds.N(), ds.Dim())
	}
	// Column 0 was negated (smaller-is-better) then normalized: the cheapest
	// row (100) must carry the best (largest) value.
	if ds.Value(0, 0) != 1 {
		t.Errorf("negated+normalized price of cheapest row = %v, want 1", ds.Value(0, 0))
	}
	// Negate column out of range must fail.
	if _, err := LoadCSV(strings.NewReader(csvData), true, []int{7}, true); err == nil {
		t.Error("out-of-range negate column should fail")
	}
}
