// Package xrand centralizes the repository's randomness. Every stochastic
// component (workload generators, the HDRRM sample set Da, randomized
// baselines, the rank-regret estimator) takes an explicit *xrand.Rand so runs
// are reproducible from a single seed.
//
// The implementation wraps math/rand with a fixed-increment SplitMix64 seed
// scrambler so that nearby integer seeds produce unrelated streams, and adds
// the geometric samplers the paper needs: uniform directions on the unit
// sphere restricted to the non-negative orthant, and rejection sampling into
// restricted utility spaces.
package xrand

import (
	"math"
	"math/rand"

	"github.com/rankregret/rankregret/internal/geom"
)

// Rand is a seeded random source with geometry-aware samplers.
type Rand struct {
	*rand.Rand
}

// splitmix64 scrambles a seed so consecutive seeds give independent streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New returns a reproducible random source for the given seed.
func New(seed int64) *Rand {
	s := splitmix64(uint64(seed))
	return &Rand{Rand: rand.New(rand.NewSource(int64(s)))}
}

// Split derives an independent stream labeled by tag. Use it to hand separate
// components their own generators without manual seed bookkeeping.
func (r *Rand) Split(tag uint64) *Rand {
	s := splitmix64(uint64(r.Int63()) ^ splitmix64(tag))
	return &Rand{Rand: rand.New(rand.NewSource(int64(s)))}
}

// UnitOrthantDirection samples a direction uniformly at random from the
// intersection of the unit sphere with the non-negative orthant of R^d
// (the paper's function space S). It draws a standard Gaussian vector,
// takes absolute values, and normalizes; by symmetry of the Gaussian this is
// uniform on the orthant patch of the sphere.
func (r *Rand) UnitOrthantDirection(d int) geom.Vector {
	u := make(geom.Vector, d)
	for {
		var norm float64
		for i := 0; i < d; i++ {
			x := math.Abs(r.NormFloat64())
			u[i] = x
			norm += x * x
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for i := range u {
				u[i] /= norm
			}
			return u
		}
	}
}

// Simplex samples a weight vector uniformly from the standard (d-1)-simplex
// (non-negative entries summing to 1), via sorted uniform spacings.
func (r *Rand) Simplex(d int) geom.Vector {
	// Exponential spacings normalized by their sum are Dirichlet(1,...,1).
	u := make(geom.Vector, d)
	var sum float64
	for i := 0; i < d; i++ {
		e := r.ExpFloat64()
		u[i] = e
		sum += e
	}
	for i := range u {
		u[i] /= sum
	}
	return u
}

// Accepter reports whether a sampled direction is acceptable. Used by
// SampleWhere for rejection sampling into restricted spaces.
type Accepter func(geom.Vector) bool

// SampleWhere draws a uniform orthant direction conditioned on accept
// returning true, giving up after maxTries draws (returns nil in that case).
// A nil accept function accepts everything.
func (r *Rand) SampleWhere(d int, accept Accepter, maxTries int) geom.Vector {
	for i := 0; i < maxTries; i++ {
		u := r.UnitOrthantDirection(d)
		if accept == nil || accept(u) {
			return u
		}
	}
	return nil
}

// Perm returns a random permutation of [0, n), same contract as rand.Perm.
// Declared here so callers only import xrand.
func (r *Rand) PermN(n int) []int { return r.Perm(n) }
