package xrand

import (
	"math"
	"testing"

	"github.com/rankregret/rankregret/internal/geom"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(124)
	same := 0
	a = New(123)
	for i := 0; i < 100; i++ {
		if a.Float64() == c.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("adjacent seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	s1 := r.Split(10)
	s2 := r.Split(10) // second Split consumes parent state, so differs
	if s1.Float64() == s2.Float64() {
		t.Error("sequential splits produced identical first draws")
	}
	// Split streams from the same parent state and tag are reproducible.
	p1, p2 := New(5), New(5)
	c1, c2 := p1.Split(7), p2.Split(7)
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("Split is not reproducible")
		}
	}
}

func TestUnitOrthantDirection(t *testing.T) {
	r := New(42)
	for _, d := range []int{1, 2, 3, 4, 6} {
		counts := make([]float64, d)
		const n = 2000
		for i := 0; i < n; i++ {
			u := r.UnitOrthantDirection(d)
			if len(u) != d {
				t.Fatalf("dim %d: got %d", d, len(u))
			}
			if math.Abs(geom.Norm(u)-1) > 1e-9 {
				t.Fatalf("not unit norm: %v", geom.Norm(u))
			}
			if !geom.NonNegative(u) {
				t.Fatalf("left orthant: %v", u)
			}
			for j, x := range u {
				counts[j] += x
			}
		}
		// Symmetry: mean coordinate value should be equal across axes.
		mean := 0.0
		for _, c := range counts {
			mean += c
		}
		mean /= float64(d)
		for j, c := range counts {
			if math.Abs(c-mean)/mean > 0.1 {
				t.Errorf("d=%d axis %d biased: %v vs mean %v", d, j, c/n, mean/n)
			}
		}
	}
}

func TestSimplex(t *testing.T) {
	r := New(7)
	for i := 0; i < 500; i++ {
		u := r.Simplex(4)
		var sum float64
		for _, x := range u {
			if x < 0 {
				t.Fatalf("negative simplex coordinate: %v", u)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("simplex sums to %v", sum)
		}
	}
}

func TestSampleWhere(t *testing.T) {
	r := New(3)
	// Accept only directions with u[0] >= u[1]: succeeds about half the time.
	accept := func(u geom.Vector) bool { return u[0] >= u[1] }
	for i := 0; i < 100; i++ {
		u := r.SampleWhere(2, accept, 1000)
		if u == nil {
			t.Fatal("SampleWhere gave up on an easy predicate")
		}
		if u[0] < u[1] {
			t.Fatalf("SampleWhere returned rejected vector %v", u)
		}
	}
	// Impossible predicate returns nil instead of looping forever.
	if u := r.SampleWhere(2, func(geom.Vector) bool { return false }, 50); u != nil {
		t.Error("SampleWhere should return nil when it gives up")
	}
	// Nil accepter accepts everything.
	if u := r.SampleWhere(3, nil, 1); u == nil {
		t.Error("nil accepter should always succeed")
	}
}
