package algo2d

import (
	"sort"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestKSets2DValidation(t *testing.T) {
	ds := dataset.Independent(xrand.New(1), 20, 2)
	if _, err := KSets2D(ds, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KSets2D(ds, 21); err == nil {
		t.Error("k>n should fail")
	}
	d3 := dataset.Independent(xrand.New(1), 20, 3)
	if _, err := KSets2D(d3, 2); err == nil {
		t.Error("d=3 should fail")
	}
}

func TestKSets2DTableITop1(t *testing.T) {
	// Top-1 sets over all x are exactly the upper-envelope lines, i.e. the
	// tuples that are best for some utility vector: t1, t3 sometimes?
	// From the dual plot, the envelope consists of l1, l2, l3, l4, l7.
	ds := dataset.TableI()
	sets, err := KSets2D(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	var tops []int
	for _, s := range sets {
		tops = append(tops, s[0])
	}
	sort.Ints(tops)
	// Every envelope member must be the unique top for some x; collect the
	// truth by dense sampling.
	truth := map[int]bool{}
	for i := 0; i <= 1000; i++ {
		x := float64(i) / 1000
		truth[Lines2DAbove(ds, x, 1)[0]] = true
	}
	if len(tops) != len(truth) {
		t.Fatalf("enumerated top-1 sets %v, dense sampling found %v", tops, truth)
	}
	for _, id := range tops {
		if !truth[id] {
			t.Errorf("enumerated top-1 %d never observed by sampling", id)
		}
	}
}

// TestKSets2DMatchesDenseSampling cross-validates the exact enumeration
// against brute-force sampling of the utility segment.
func TestKSets2DMatchesDenseSampling(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ds := dataset.Independent(xrand.New(seed), 40, 2)
		for _, k := range []int{1, 2, 5} {
			sets, err := KSets2D(ds, k)
			if err != nil {
				t.Fatal(err)
			}
			enumerated := map[string]bool{}
			for _, s := range sets {
				enumerated[intsKey(s)] = true
			}
			// Every sampled top-k set must have been enumerated.
			for i := 0; i <= 2000; i++ {
				x := float64(i) / 2000
				top := Lines2DAbove(ds, x, k)
				if !enumerated[intsKey(top)] {
					t.Fatalf("seed %d k=%d: top-k at x=%v missing from enumeration", seed, k, x)
				}
			}
		}
	}
}

// TestKSetHittingSetIsRankRegretSet: a set hitting every k-set has exact
// rank-regret <= k — the foundation of MDRRR.
func TestKSetHittingSetIsRankRegretSet(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(5), 100, 2)
	const k = 4
	sets, err := KSets2D(ds, k)
	if err != nil {
		t.Fatal(err)
	}
	// Greedy hitting set (simple counting variant, enough for the test).
	remaining := make([][]int, len(sets))
	copy(remaining, sets)
	var chosen []int
	for len(remaining) > 0 {
		count := map[int]int{}
		for _, s := range remaining {
			for _, id := range s {
				count[id]++
			}
		}
		best, bestC := -1, -1
		for id, c := range count {
			if c > bestC || (c == bestC && id < best) {
				best, bestC = id, c
			}
		}
		chosen = append(chosen, best)
		var next [][]int
		for _, s := range remaining {
			hit := false
			for _, id := range s {
				if id == best {
					hit = true
					break
				}
			}
			if !hit {
				next = append(next, s)
			}
		}
		remaining = next
	}
	got, err := ExactRankRegret(ds, chosen, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got > k {
		t.Errorf("hitting set of all %d-sets has exact rank-regret %d", k, got)
	}
}

func TestKSetCount2DGrowsWithN(t *testing.T) {
	small := dataset.Anticorrelated(xrand.New(7), 50, 2)
	large := dataset.Anticorrelated(xrand.New(7), 400, 2)
	cs, err := KSetCount2D(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := KSetCount2D(large, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cl <= cs {
		t.Errorf("k-set count did not grow with n: %d (n=50) vs %d (n=400)", cs, cl)
	}
}
