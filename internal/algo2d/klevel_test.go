package algo2d

import (
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestKLevel2DValidation(t *testing.T) {
	ds := dataset.Independent(xrand.New(1), 20, 2)
	if _, err := KLevel2D(ds, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KLevel2D(ds, 21); err == nil {
		t.Error("k>n should fail")
	}
	d3 := dataset.Independent(xrand.New(1), 20, 3)
	if _, err := KLevel2D(d3, 1); err == nil {
		t.Error("d=3 should fail")
	}
}

func TestKLevel2DSegmentsContiguous(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(3), 200, 2)
	for _, k := range []int{1, 3, 10} {
		segs, err := KLevel2D(ds, k)
		if err != nil {
			t.Fatal(err)
		}
		if segs[0].X0 != 0 || segs[len(segs)-1].X1 != 1 {
			t.Fatalf("k=%d: level does not span [0,1]: %v .. %v", k, segs[0].X0, segs[len(segs)-1].X1)
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].X0 != segs[i-1].X1 {
				t.Fatalf("k=%d: gap between segments %d and %d", k, i-1, i)
			}
			if segs[i].Line == segs[i-1].Line {
				t.Fatalf("k=%d: consecutive segments share line %d (not maximal)", k, segs[i].Line)
			}
		}
	}
}

// TestKLevel2DMatchesRankOracle cross-validates the level against direct
// rank computation at segment midpoints.
func TestKLevel2DMatchesRankOracle(t *testing.T) {
	ds := dataset.Independent(xrand.New(7), 150, 2)
	for _, k := range []int{1, 2, 7} {
		segs, err := KLevel2D(ds, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			mid := (s.X0 + s.X1) / 2
			u := []float64{mid, 1 - mid}
			if got := topk.Rank(ds, u, s.Line, nil); got != k {
				t.Fatalf("k=%d: segment [%v,%v) line %d has rank %d at midpoint",
					k, s.X0, s.X1, s.Line, got)
			}
		}
	}
}

func TestRankAtBinarySearch(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(11), 120, 2)
	const k = 5
	segs, err := KLevel2D(ds, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		id, ok := RankAt(segs, x)
		if !ok {
			t.Fatalf("RankAt(%v) not found", x)
		}
		u := []float64{x, 1 - x}
		if got := topk.Rank(ds, u, id, nil); got != k {
			// Exactly at a breakpoint either neighbor is acceptable.
			atBoundary := false
			for _, s := range segs {
				if x == s.X0 || x == s.X1 {
					atBoundary = true
					break
				}
			}
			if !atBoundary {
				t.Fatalf("RankAt(%v) = %d with rank %d, want %d", x, id, got, k)
			}
		}
	}
	if _, ok := RankAt(nil, 0.5); ok {
		t.Error("empty level should not resolve")
	}
	if _, ok := RankAt(segs, 1.5); ok {
		t.Error("x outside [0,1] should not resolve")
	}
}

// TestKLevelComplexityGrowth pins the quantity that makes k-set methods
// expensive: level complexity grows with n.
func TestKLevelComplexityGrowth(t *testing.T) {
	small := dataset.Anticorrelated(xrand.New(13), 60, 2)
	large := dataset.Anticorrelated(xrand.New(13), 500, 2)
	cs, err := KLevelComplexity2D(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := KLevelComplexity2D(large, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cl <= cs {
		t.Errorf("level complexity did not grow: %d (n=60) vs %d (n=500)", cs, cl)
	}
}

// TestKLevelTop1IsUpperEnvelope: the 1-level is the upper envelope, whose
// lines are exactly the tuples that win for some linear function — the same
// set KSets2D enumerates at k=1.
func TestKLevelTop1IsUpperEnvelope(t *testing.T) {
	ds := dataset.TableI()
	segs, err := KLevel2D(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	fromLevel := map[int]bool{}
	for _, s := range segs {
		fromLevel[s.Line] = true
	}
	sets, err := KSets2D(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	fromSets := map[int]bool{}
	for _, s := range sets {
		fromSets[s[0]] = true
	}
	if len(fromLevel) != len(fromSets) {
		t.Fatalf("1-level lines %v vs 1-sets %v", fromLevel, fromSets)
	}
	for id := range fromLevel {
		if !fromSets[id] {
			t.Errorf("line %d on the envelope but not a 1-set", id)
		}
	}
}
