package algo2d

import (
	"fmt"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func BenchmarkTwoDRRM(b *testing.B) {
	for _, wl := range []string{"indep", "anti"} {
		for _, n := range []int{1000, 5000} {
			ds, _ := dataset.Synthetic(wl, xrand.New(1), n, 2)
			b.Run(fmt.Sprintf("%s/n=%d", wl, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := TwoDRRM(ds, 5); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTwoDRRRBaseline(b *testing.B) {
	for _, wl := range []string{"indep", "anti"} {
		ds, _ := dataset.Synthetic(wl, xrand.New(1), 5000, 2)
		b.Run(wl, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := TwoDRRRBaselineForRRM(ds, 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExactRankRegret(b *testing.B) {
	ds := dataset.Anticorrelated(xrand.New(1), 5000, 2)
	res, err := TwoDRRM(ds, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactRankRegret(ds, res.IDs, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}
