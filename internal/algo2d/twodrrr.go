package algo2d

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/sweep"
)

// ExactRankRegret computes the exact maximum rank of the tuple set ids over
// the utility segment [c0, c1] by sweeping the crossings of the members'
// dual lines against all lines: between crossings ranks are constant, so the
// maximum of (min over members' ranks) is attained at the segment start or
// immediately after a crossing.
func ExactRankRegret(ds *dataset.Dataset, ids []int, c0, c1 float64) (int, error) {
	if ds.Dim() != 2 {
		return 0, fmt.Errorf("algo2d: dataset dimension %d, need 2", ds.Dim())
	}
	if len(ids) == 0 {
		return 0, fmt.Errorf("algo2d: empty set has no rank-regret")
	}
	lines := Lines(ds)
	isMember := make([]bool, len(lines))
	for _, id := range ids {
		if id < 0 || id >= len(lines) {
			return 0, fmt.Errorf("algo2d: tuple id %d out of range", id)
		}
		isMember[id] = true
	}
	cur := sweep.InitialRanks(lines, c0)
	minRank := func() int {
		m := math.MaxInt
		for _, id := range ids {
			if cur[id] < m {
				m = cur[id]
			}
		}
		return m
	}
	worst := minRank()
	events := sweep.BuildEvents(lines, isMember, c0, c1)
	for _, e := range events {
		if isMember[e.Up] {
			cur[e.Up]++
		}
		if isMember[e.Down] {
			cur[e.Down]--
		}
		if m := minRank(); m > worst {
			worst = m
		}
	}
	return worst, nil
}

// TwoDRRRBaseline is the approximation algorithm of Asudeh et al. for the
// RRR problem in 2D: given threshold k it returns a set of size at most r_k
// (the optimal size for threshold k) whose rank-regret is at most 2k.
// Greedy interval cover: from the current position pick, among the tuples
// ranked <= k there, the one that stays ranked <= 2k the furthest.
func TwoDRRRBaseline(ds *dataset.Dataset, k int) (Result, error) {
	return TwoDRRRBaselineCtx(nil, ds, k)
}

// TwoDRRRBaselineCtx is TwoDRRRBaseline with cooperative cancellation in
// the greedy interval-cover loop.
func TwoDRRRBaselineCtx(ctx context.Context, ds *dataset.Dataset, k int) (Result, error) {
	if ds.Dim() != 2 {
		return Result{}, fmt.Errorf("algo2d: dataset dimension %d, need 2", ds.Dim())
	}
	if k < 1 {
		return Result{}, fmt.Errorf("algo2d: rank threshold %d, need >= 1", k)
	}
	lines := Lines(ds)
	n := len(lines)
	if n == 0 {
		return Result{}, fmt.Errorf("algo2d: empty dataset")
	}

	// reach returns how far right of x0 tuple t keeps rank <= 2k, given its
	// rank at x0.
	reach := func(t int, x0 float64, rankAtX0 int) float64 {
		type ev struct {
			x  float64
			up bool // t goes below (rank increases)
		}
		var evs []ev
		for j := 0; j < n; j++ {
			if j == t {
				continue
			}
			x, ok := geom.IntersectX(lines[t], lines[j])
			if !ok || x <= x0 || x > 1 {
				continue
			}
			evs = append(evs, ev{x: x, up: lines[t].Slope < lines[j].Slope})
		}
		sort.Slice(evs, func(a, b int) bool { return evs[a].x < evs[b].x })
		r := rankAtX0
		for _, e := range evs {
			if e.up {
				r++
				if r > 2*k {
					return e.x
				}
			} else {
				r--
			}
		}
		return 1
	}

	var chosen []int
	picked := make(map[int]bool)
	x0 := 0.0
	for {
		if err := ctxutil.Cancelled(ctx); err != nil {
			return Result{}, err
		}
		ranks := sweep.InitialRanks(lines, x0)
		bestT, bestReach := -1, -1.0
		for t := 0; t < n; t++ {
			if ranks[t] > k {
				continue
			}
			rr := 1.0
			if x0 < 1 {
				rr = reach(t, x0, ranks[t])
			}
			if rr > bestReach || (rr == bestReach && picked[t] && !picked[bestT]) {
				bestT, bestReach = t, rr
			}
		}
		if bestT < 0 {
			return Result{}, fmt.Errorf("algo2d: internal: no tuple ranked <= %d at x=%v", k, x0)
		}
		if !picked[bestT] {
			picked[bestT] = true
			chosen = append(chosen, bestT)
		}
		if bestReach >= 1 || bestReach <= x0 {
			break
		}
		x0 = bestReach
	}
	sort.Ints(chosen)
	rr, err := ExactRankRegret(ds, chosen, 0, 1)
	if err != nil {
		return Result{}, err
	}
	return Result{IDs: chosen, RankRegret: rr}, nil
}

// TwoDRRRBaselineForRRM adapts the 2DRRR baseline to the RRM problem by the
// improved binary search of Section V.B.2: double k until the output fits
// in r tuples, then binary search (k/2, k]. The returned rank-regret is the
// exact regret of the chosen set (at most 2k by the baseline's guarantee).
func TwoDRRRBaselineForRRM(ds *dataset.Dataset, r int) (Result, error) {
	return TwoDRRRBaselineForRRMCtx(nil, ds, r)
}

// TwoDRRRBaselineForRRMCtx is TwoDRRRBaselineForRRM with cooperative
// cancellation checked in every binary-search round.
func TwoDRRRBaselineForRRMCtx(ctx context.Context, ds *dataset.Dataset, r int) (Result, error) {
	if r < 1 {
		return Result{}, fmt.Errorf("algo2d: output size %d, need >= 1", r)
	}
	n := ds.N()
	var fit Result
	k := 1
	for {
		res, err := TwoDRRRBaselineCtx(ctx, ds, k)
		if err != nil {
			return Result{}, err
		}
		if len(res.IDs) <= r {
			fit = res
			break
		}
		if k >= n {
			// Even k = n needs more than r tuples; impossible, since one
			// tuple always achieves rank n. Defensive only.
			return res, nil
		}
		k *= 2
		if k > n {
			k = n
		}
	}
	low, high := k/2+1, k
	for low < high {
		mid := (low + high) / 2
		res, err := TwoDRRRBaselineCtx(ctx, ds, mid)
		if err != nil {
			return Result{}, err
		}
		if len(res.IDs) <= r {
			fit = res
			high = mid
		} else {
			low = mid + 1
		}
	}
	return fit, nil
}

// TwoDRRRExactRestricted solves the dual RRR problem exactly under a
// restricted utility space (the RRRM analogue of TwoDRRRExact): the
// minimum-size set whose rank-regret over the rendered segment of the space
// is at most k. ok is false when even the full U-skyline cannot achieve k.
func TwoDRRRExactRestricted(ds *dataset.Dataset, k int, space funcspace.Space) (res Result, ok bool, err error) {
	return TwoDRRRExactRestrictedCtx(nil, ds, k, space)
}

// TwoDRRRExactRestrictedCtx is TwoDRRRExactRestricted with cooperative
// cancellation in the DP sweep.
func TwoDRRRExactRestrictedCtx(ctx context.Context, ds *dataset.Dataset, k int, space funcspace.Space) (res Result, ok bool, err error) {
	if ds.Dim() != 2 {
		return Result{}, false, fmt.Errorf("algo2d: dataset dimension %d, need 2", ds.Dim())
	}
	if k < 1 {
		return Result{}, false, fmt.Errorf("algo2d: rank threshold %d, need >= 1", k)
	}
	c0, c1, err := funcspace.Render2D(space)
	if err != nil {
		return Result{}, false, err
	}
	cand, err := skyline.ComputeRestricted(ds, space)
	if err != nil {
		return Result{}, false, err
	}
	if len(cand) == 0 {
		return Result{}, false, fmt.Errorf("algo2d: no candidate tuples (empty U-skyline)")
	}
	lines := Lines(ds)
	for r := 4; ; r *= 2 {
		if r > len(cand) {
			r = len(cand)
		}
		bestRank, bestChain, err := runDP(ctx, lines, cand, c0, c1, r)
		if err != nil {
			return Result{}, false, err
		}
		for h := 1; h < len(bestRank); h++ {
			if bestRank[h] <= k {
				chain := bestChain[h].collect()
				return Result{IDs: uniqueSorted(chain), RankRegret: bestRank[h]}, true, nil
			}
		}
		if r == len(cand) {
			return Result{}, false, nil
		}
	}
}
