// Package algo2d implements the paper's two-dimensional algorithms:
//
//   - TwoDRRM (Algorithm 1): the exact dynamic-programming solver for RRM in
//     2D, sweeping the dual line arrangement and maintaining, per candidate
//     (skyline) line and chain-length budget, the best convex chain seen so
//     far. Extended to RRRM by restricting the sweep to the rendered segment
//     [c0, c1] and to the U-skyline candidates, and to exact RRR by reading
//     the full DP row.
//   - TwoDRRR: the earlier approximation baseline of Asudeh et al. (size at
//     most r_k with rank-regret at most 2k), adapted to RRM by the improved
//     doubling binary search of Section V.B.2.
//
// Tuple ranks are always counted against the full dataset; only the chain's
// vertices are restricted to candidates (Theorem 3 justifies this).
package algo2d

import (
	"context"
	"fmt"
	"math"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/sweep"
)

// Result is the output of a 2D solve.
type Result struct {
	// IDs are the chosen tuple indices, ascending.
	IDs []int
	// RankRegret is the exact maximum rank of the chosen set over the solved
	// segment of utility functions.
	RankRegret int
}

// chainNode is a persistent cons-list cell so DP chain extension is O(1).
type chainNode struct {
	line int // index into the dataset / line array
	prev *chainNode
}

func (c *chainNode) collect() []int {
	var out []int
	for n := c; n != nil; n = n.prev {
		out = append(out, n.line)
	}
	// Reverse into sweep order (ascending slope).
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// cell is one DP matrix entry: the best convex chain ending at this
// candidate with at most h segments, and its maximum rank over the swept
// prefix.
type cell struct {
	rank  int
	chain *chainNode
}

// Lines converts every tuple to its dual line.
func Lines(ds *dataset.Dataset) []geom.Line {
	if ds.Dim() != 2 {
		panic(fmt.Sprintf("algo2d: dataset dimension %d, need 2", ds.Dim()))
	}
	lines := make([]geom.Line, ds.N())
	for i := 0; i < ds.N(); i++ {
		lines[i] = geom.DualLine(ds.Value(i, 0), ds.Value(i, 1))
	}
	return lines
}

// runDP executes the 2DRRM dynamic program over segment [c0, c1] with the
// given candidate tuple ids and chain budget r. It returns, for every budget
// h in 1..r, the best achievable maximum rank and the corresponding chain
// (bestRank[h], bestChain[h]; index 0 unused).
func runDP(ctx context.Context, lines []geom.Line, cand []int, c0, c1 float64, r int) (bestRank []int, bestChain []*chainNode, err error) {
	s := len(cand)
	if r > s {
		r = s
	}
	isCand := make([]bool, len(lines))
	candPos := make([]int, len(lines)) // line index -> position in cand
	for p, c := range cand {
		isCand[c] = true
		candPos[c] = p
	}

	ranks := sweep.InitialRanks(lines, c0)

	// M[p][h] for candidate position p, budget h in 1..r.
	m := make([][]cell, s)
	for p, c := range cand {
		row := make([]cell, r+1)
		node := &chainNode{line: c}
		for h := 1; h <= r; h++ {
			row[h] = cell{rank: ranks[c], chain: node}
		}
		m[p] = row
	}

	events := sweep.BuildEvents(lines, isCand, c0, c1)
	cur := make([]int, len(lines))
	copy(cur, ranks)

	for ei, e := range events {
		if ei%8192 == 0 {
			if err := ctxutil.Cancelled(ctx); err != nil {
				return nil, nil, err
			}
		}
		up, down := int(e.Up), int(e.Down)
		if isCand[up] {
			cur[up]++
			p := candPos[up]
			newRank := cur[up]
			if isCand[down] {
				q := candPos[down]
				// Descending h: the extension at h reads m[p][h-1] before
				// its own max-update at h-1, i.e. the chain's max rank up to
				// just before this crossing, exactly as Theorem 4 requires.
				for h := r; h >= 1; h-- {
					if m[p][h].rank < newRank {
						m[p][h].rank = newRank
					}
					if h >= 2 && m[q][h].rank > m[p][h-1].rank {
						m[q][h] = cell{
							rank:  m[p][h-1].rank,
							chain: &chainNode{line: down, prev: m[p][h-1].chain},
						}
					}
				}
			} else {
				for h := r; h >= 1; h-- {
					if m[p][h].rank < newRank {
						m[p][h].rank = newRank
					}
				}
			}
		}
		if isCand[down] {
			cur[down]--
		}
	}

	bestRank = make([]int, r+1)
	bestChain = make([]*chainNode, r+1)
	for h := 1; h <= r; h++ {
		bestRank[h] = math.MaxInt
		for p := 0; p < s; p++ {
			if m[p][h].rank < bestRank[h] {
				bestRank[h] = m[p][h].rank
				bestChain[h] = m[p][h].chain
			}
		}
	}
	return bestRank, bestChain, nil
}

// uniqueSorted deduplicates and sorts chain line ids into tuple ids.
func uniqueSorted(ids []int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TwoDRRM solves RRM exactly in 2D (Theorem 4): it returns a set of at most
// r tuples minimizing the maximum rank over all linear utility functions,
// along with that exact optimal rank-regret.
func TwoDRRM(ds *dataset.Dataset, r int) (Result, error) {
	return TwoDRRMRestrictedCtx(nil, ds, r, funcspace.NewFull(2))
}

// TwoDRRMCtx is TwoDRRM with cooperative cancellation in the DP sweep.
func TwoDRRMCtx(ctx context.Context, ds *dataset.Dataset, r int) (Result, error) {
	return TwoDRRMRestrictedCtx(ctx, ds, r, funcspace.NewFull(2))
}

// TwoDRRMRestricted solves RRRM exactly in 2D: the same dynamic program run
// over the rendered segment of the restricted space (Section IV.C), with
// U-skyline candidates.
func TwoDRRMRestricted(ds *dataset.Dataset, r int, space funcspace.Space) (Result, error) {
	return TwoDRRMRestrictedCtx(nil, ds, r, space)
}

// TwoDRRMRestrictedCtx is TwoDRRMRestricted with cooperative cancellation
// in the DP sweep: every few thousand crossing events the sweep checks ctx
// and aborts with ctx.Err().
func TwoDRRMRestrictedCtx(ctx context.Context, ds *dataset.Dataset, r int, space funcspace.Space) (Result, error) {
	if ds.Dim() != 2 {
		return Result{}, fmt.Errorf("algo2d: dataset dimension %d, need 2", ds.Dim())
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algo2d: output size %d, need >= 1", r)
	}
	if ds.N() == 0 {
		return Result{}, fmt.Errorf("algo2d: empty dataset")
	}
	c0, c1, err := funcspace.Render2D(space)
	if err != nil {
		return Result{}, err
	}
	cand, err := skyline.ComputeRestricted(ds, space)
	if err != nil {
		return Result{}, err
	}
	if len(cand) == 0 {
		return Result{}, fmt.Errorf("algo2d: no candidate tuples (empty U-skyline)")
	}
	lines := Lines(ds)
	bestRank, bestChain, err := runDP(ctx, lines, cand, c0, c1, r)
	if err != nil {
		return Result{}, err
	}
	h := r
	if h > len(bestRank)-1 {
		h = len(bestRank) - 1
	}
	chain := bestChain[h].collect()
	return Result{IDs: uniqueSorted(chain), RankRegret: bestRank[h]}, nil
}

// TwoDRRRExact solves the dual RRR problem exactly: the minimum-size set
// with rank-regret at most k over the full space. It grows the chain budget
// geometrically and reads the DP row to find the smallest budget achieving
// rank <= k. ok is false if even the full candidate set cannot achieve k
// (k < the dataset's intrinsic minimum).
func TwoDRRRExact(ds *dataset.Dataset, k int) (res Result, ok bool, err error) {
	return TwoDRRRExactCtx(nil, ds, k)
}

// TwoDRRRExactCtx is TwoDRRRExact with cooperative cancellation in the DP
// sweep.
func TwoDRRRExactCtx(ctx context.Context, ds *dataset.Dataset, k int) (res Result, ok bool, err error) {
	if ds.Dim() != 2 {
		return Result{}, false, fmt.Errorf("algo2d: dataset dimension %d, need 2", ds.Dim())
	}
	if k < 1 {
		return Result{}, false, fmt.Errorf("algo2d: rank threshold %d, need >= 1", k)
	}
	cand := skyline.Compute(ds)
	lines := Lines(ds)
	for r := 4; ; r *= 2 {
		if r > len(cand) {
			r = len(cand)
		}
		bestRank, bestChain, err := runDP(ctx, lines, cand, 0, 1, r)
		if err != nil {
			return Result{}, false, err
		}
		for h := 1; h < len(bestRank); h++ {
			if bestRank[h] <= k {
				chain := bestChain[h].collect()
				return Result{IDs: uniqueSorted(chain), RankRegret: bestRank[h]}, true, nil
			}
		}
		if r == len(cand) {
			return Result{}, false, nil
		}
	}
}
