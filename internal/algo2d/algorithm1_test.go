package algo2d

import (
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestAlgorithm1Validation(t *testing.T) {
	ds := dataset.Independent(xrand.New(1), 20, 2)
	if _, err := TwoDRRMAlgorithm1(ds, 0); err == nil {
		t.Error("r=0 should fail")
	}
	d3 := dataset.Independent(xrand.New(1), 20, 3)
	if _, err := TwoDRRMAlgorithm1(d3, 2); err == nil {
		t.Error("d=3 should fail")
	}
	if _, err := TwoDRRMAlgorithm1(dataset.New(2), 2); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestAlgorithm1TableI(t *testing.T) {
	ds := dataset.TableI()
	res, err := TwoDRRMAlgorithm1(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != 2 || res.RankRegret != 3 {
		t.Errorf("Algorithm 1 on Table I: %+v, want t3 with rank-regret 3", res)
	}
}

// TestAlgorithm1MatchesOptimizedDP is the cross-validation the literal
// transcription exists for: the full O(n^2) sweep and the production
// skyline-crossings-only sweep must compute identical optima.
func TestAlgorithm1MatchesOptimizedDP(t *testing.T) {
	f := func(seed int64, nn int, rr uint8) bool {
		n := nn
		if n < 0 {
			n = -n
		}
		n = n%50 + 3
		r := int(rr)%5 + 1
		for _, gen := range []func(*xrand.Rand, int, int) *dataset.Dataset{
			dataset.Independent, dataset.Anticorrelated,
		} {
			ds := gen(xrand.New(seed), n, 2)
			lit, err := TwoDRRMAlgorithm1(ds, r)
			if err != nil {
				return false
			}
			opt, err := TwoDRRM(ds, r)
			if err != nil {
				return false
			}
			if lit.RankRegret != opt.RankRegret {
				t.Logf("seed=%d n=%d r=%d: literal %d vs optimized %d",
					seed, n, r, lit.RankRegret, opt.RankRegret)
				return false
			}
			// Both sets must actually achieve the claimed regret.
			gotLit, err := ExactRankRegret(ds, lit.IDs, 0, 1)
			if err != nil || gotLit != lit.RankRegret {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAlgorithm1LargerInstance(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(77), 400, 2)
	lit, err := TwoDRRMAlgorithm1(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := TwoDRRM(ds, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lit.RankRegret != opt.RankRegret {
		t.Errorf("literal Algorithm 1 regret %d, optimized %d", lit.RankRegret, opt.RankRegret)
	}
}
