package algo2d

import (
	"fmt"
	"math"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/sweep"
)

// TwoDRRMAlgorithm1 is a literal transcription of the paper's Algorithm 1:
// the full neighbor sweep over every one of the O(n^2) line crossings, with
// the sorted list L and min-heap H maintained exactly as described (via
// sweep.NeighborSweep), and the DP matrix M updated at each crossing
// according to the three cases of Section IV.B.
//
// The production solver TwoDRRM computes the identical matrix from the
// skyline-involving crossings only (crossings between two non-skyline lines
// are the paper's case 3, a no-op, and a non-skyline/skyline crossing where
// the skyline line is the upper one is case 2, also a no-op); this function
// exists to cross-validate that refinement, test against brute force, and
// serve as executable documentation of the paper's pseudocode.
func TwoDRRMAlgorithm1(ds *dataset.Dataset, r int) (Result, error) {
	if ds.Dim() != 2 {
		return Result{}, fmt.Errorf("algo2d: dataset dimension %d, need 2", ds.Dim())
	}
	if r < 1 {
		return Result{}, fmt.Errorf("algo2d: output size %d, need >= 1", r)
	}
	if ds.N() == 0 {
		return Result{}, fmt.Errorf("algo2d: empty dataset")
	}

	// Line 1-2: compute the skyline and the dual lines.
	cand := skyline.Compute(ds)
	lines := Lines(ds)
	s := len(cand)
	if r > s {
		r = s
	}
	isCand := make([]bool, len(lines))
	candPos := make([]int, len(lines))
	for p, c := range cand {
		isCand[c] = true
		candPos[c] = p
	}

	// Line 7-8: initialize M[i][j] = {l_g(i)} with its rank at x = 0.
	ranks := sweep.InitialRanks(lines, 0)
	m := make([][]cell, s)
	for p, c := range cand {
		row := make([]cell, r+1)
		node := &chainNode{line: c}
		for h := 1; h <= r; h++ {
			row[h] = cell{rank: ranks[c], chain: node}
		}
		m[p] = row
	}

	// Line 9-19: pop every crossing off H in x order. NeighborSweep owns L
	// and H; this callback owns the rank bookkeeping and the M updates.
	cur := make([]int, len(lines))
	copy(cur, ranks)
	sweep.NeighborSweep(lines, 0, 1, func(x float64, up, down int) {
		// After the crossing, `up` is below `down`.
		cur[up]++
		cur[down]--
		switch {
		case isCand[up]:
			// Case 1 (line 14-19): the skyline line `up` lost one rank.
			p := candPos[up]
			newRank := cur[up]
			if isCand[down] {
				q := candPos[down]
				for h := r; h >= 1; h-- {
					if m[p][h].rank < newRank {
						m[p][h].rank = newRank
					}
					if h >= 2 && m[q][h].rank > m[p][h-1].rank {
						m[q][h] = cell{
							rank:  m[p][h-1].rank,
							chain: &chainNode{line: down, prev: m[p][h-1].chain},
						}
					}
				}
			} else {
				for h := r; h >= 1; h-- {
					if m[p][h].rank < newRank {
						m[p][h].rank = newRank
					}
				}
			}
		case isCand[down]:
			// Case 2: only the rank of the skyline line `down` improved;
			// maximum ranks are unchanged, no update.
		default:
			// Case 3: two non-skyline lines, no update.
		}
	})

	// Line 20-21: the best chain with budget r.
	best := cell{rank: math.MaxInt}
	for p := 0; p < s; p++ {
		if m[p][r].rank < best.rank {
			best = m[p][r]
		}
	}
	return Result{IDs: uniqueSorted(best.chain.collect()), RankRegret: best.rank}, nil
}
