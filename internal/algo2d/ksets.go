package algo2d

import (
	"fmt"
	"sort"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/sweep"
)

// KSets2D enumerates, exactly, every distinct top-k set ("k-set" in the
// terminology of Asudeh et al. and Edelsbrunner) witnessed by some linear
// utility function over x in [0, 1] of the 2D dual space. The sweep walks
// all line crossings in order; the top-k set changes precisely when a
// crossing swaps the lines ranked k and k+1, so the number of distinct sets
// is one plus the number of such boundary crossings.
//
// The collection is what the paper's MDRRR consumes: a hitting set of all
// k-sets is exactly a set with rank-regret at most k for every linear
// function. Runtime is O(n^2 log n) like any full sweep; it exists to make
// MDRRR exact in 2D and to validate the randomized discovery used in HD.
func KSets2D(ds *dataset.Dataset, k int) ([][]int, error) {
	return KSets2DRange(ds, k, 0, 1)
}

// KSets2DRange is KSets2D restricted to the dual segment x in [c0, c1] —
// the RRRM setting after "rendering the scene" (Section IV.C) maps a convex
// utility space to such a segment.
func KSets2DRange(ds *dataset.Dataset, k int, c0, c1 float64) ([][]int, error) {
	n := ds.N()
	if ds.Dim() != 2 {
		return nil, fmt.Errorf("algo2d: KSets2D needs d=2, got %d", ds.Dim())
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("algo2d: k=%d out of range [1, %d]", k, n)
	}
	if c0 < 0 || c1 > 1 || c0 >= c1 {
		return nil, fmt.Errorf("algo2d: segment [%v, %v] invalid, need 0 <= c0 < c1 <= 1", c0, c1)
	}
	lines := Lines(ds)

	// Initial order at x = c0 (ties broken by slope: the line rising
	// faster is above immediately after c0).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := lines[order[a]], lines[order[b]]
		ya, yb := la.Eval(c0), lb.Eval(c0)
		if ya != yb {
			return ya > yb
		}
		return la.Slope > lb.Slope
	})
	pos := make([]int, n)
	for p, id := range order {
		pos[id] = p
	}

	seen := map[string]bool{}
	var out [][]int
	record := func() {
		top := make([]int, k)
		copy(top, order[:k])
		sort.Ints(top)
		key := intsKey(top)
		if !seen[key] {
			seen[key] = true
			out = append(out, top)
		}
	}
	record()

	sweep.NeighborSweep(lines, c0, c1, func(x float64, up, down int) {
		pu, pd := pos[up], pos[down]
		if pu+1 != pd {
			// NeighborSweep guarantees adjacency; the mirror should agree.
			panic("algo2d: k-set sweep mirror out of sync")
		}
		order[pu], order[pd] = down, up
		pos[up], pos[down] = pd, pu
		if pu == k-1 {
			// The crossing moved a new line into the top k.
			record()
		}
	})
	return out, nil
}

// intsKey fingerprints a sorted id list.
func intsKey(ids []int) string {
	buf := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(buf)
}

// KSetCount2D returns the number of distinct k-sets, a quantity whose
// super-linear growth in n is the reason MDRRR and MDRRRr do not scale
// (its best known lower bound is n * exp(Omega(sqrt(log k))) for the
// k-level complexity; Toth 2000).
func KSetCount2D(ds *dataset.Dataset, k int) (int, error) {
	sets, err := KSets2D(ds, k)
	if err != nil {
		return 0, err
	}
	return len(sets), nil
}

// Lines2DAbove reports, for validation, the ids ranked in the top k at a
// specific x in dual space (the top-k set of the utility vector (x, 1-x)).
func Lines2DAbove(ds *dataset.Dataset, x float64, k int) []int {
	lines := Lines(ds)
	ids := make([]int, len(lines))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ya, yb := lines[ids[a]].Eval(x), lines[ids[b]].Eval(x)
		if ya != yb {
			return ya > yb
		}
		return geom.Above(lines[ids[a]], lines[ids[b]], x+1e-9)
	})
	top := ids[:k]
	sort.Ints(top)
	return top
}
