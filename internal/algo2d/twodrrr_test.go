package algo2d

import (
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestExactRankRegretTableI(t *testing.T) {
	ds := tableI()
	// From the paper (Figure 4): the chain {l1, l3, l7} has maximum rank 3
	// over x in [0, 1].
	rr, err := ExactRankRegret(ds, []int{0, 2, 6}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr != 3 {
		t.Errorf("regret of {t1,t3,t7} = %d, want 3 (paper, Figure 4)", rr)
	}
	// A set containing the whole skyline has regret 1.
	rr, err = ExactRankRegret(ds, []int{0, 1, 2, 3, 6}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr != 1 {
		t.Errorf("whole skyline regret = %d, want 1", rr)
	}
}

func TestExactRankRegretMatchesSampling(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 15; trial++ {
		ds := dataset.Independent(rng, 40, 2)
		ids := []int{rng.Intn(40), rng.Intn(40), rng.Intn(40)}
		exact, err := ExactRankRegret(ds, ids, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Dense sampling can only find ranks <= exact, approaching it.
		worst := 0
		for i := 0; i <= 2000; i++ {
			x := float64(i) / 2000
			u := []float64{x, 1 - x}
			if r := topk.RankOfSet(ds, u, ids, nil); r > worst {
				worst = r
			}
		}
		if worst > exact {
			t.Fatalf("trial %d: sampled rank %d exceeds exact %d", trial, worst, exact)
		}
		if exact-worst > 1 {
			t.Fatalf("trial %d: exact %d far above dense sampling %d", trial, exact, worst)
		}
	}
}

func TestExactRankRegretSegment(t *testing.T) {
	ds := tableI()
	// t7 = (1, 0) is the top tuple at x=1 but terrible at x=0.
	full, err := ExactRankRegret(ds, []int{6}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	right, err := ExactRankRegret(ds, []int{6}, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if right >= full {
		t.Errorf("restricting to x in [0.9,1] should improve t7's regret: %d vs %d", right, full)
	}
	if right != 1 {
		t.Errorf("t7's regret near x=1 should be 1, got %d", right)
	}
}

func TestExactRankRegretErrors(t *testing.T) {
	ds := tableI()
	if _, err := ExactRankRegret(ds, nil, 0, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := ExactRankRegret(ds, []int{99}, 0, 1); err == nil {
		t.Error("out-of-range id accepted")
	}
}

func TestTwoDRRRBaselineGuarantees(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 10; trial++ {
		ds := dataset.Anticorrelated(rng, 60, 2)
		k := 2 + trial%4
		res, err := TwoDRRRBaseline(ds, k)
		if err != nil {
			t.Fatal(err)
		}
		// Guarantee 1: rank-regret at most 2k.
		if res.RankRegret > 2*k {
			t.Fatalf("trial %d: baseline regret %d > 2k = %d", trial, res.RankRegret, 2*k)
		}
		// Guarantee 2: size at most r_k (the optimal size for threshold k).
		exact, ok, err := TwoDRRRExact(ds, k)
		if err != nil {
			t.Fatal(err)
		}
		if ok && len(res.IDs) > len(exact.IDs) {
			t.Fatalf("trial %d: baseline size %d > optimal size %d for k=%d",
				trial, len(res.IDs), len(exact.IDs), k)
		}
	}
}

func TestTwoDRRRBaselineErrors(t *testing.T) {
	ds := tableI()
	if _, err := TwoDRRRBaseline(ds, 0); err == nil {
		t.Error("k=0 accepted")
	}
	d3 := dataset.MustFromRows([][]float64{{1, 2, 3}})
	if _, err := TwoDRRRBaseline(d3, 1); err == nil {
		t.Error("3D dataset accepted")
	}
}

func TestTwoDRRRBaselineForRRM(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 8; trial++ {
		ds := dataset.Anticorrelated(rng, 80, 2)
		r := 2 + trial%3
		res, err := TwoDRRRBaselineForRRM(ds, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) > r {
			t.Fatalf("trial %d: size %d > r=%d", trial, len(res.IDs), r)
		}
		// The approximation can't beat the exact optimum.
		opt, err := TwoDRRM(ds, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.RankRegret < opt.RankRegret {
			t.Fatalf("trial %d: baseline regret %d below exact optimum %d",
				trial, res.RankRegret, opt.RankRegret)
		}
	}
}

func TestBaselineCoversTopTuplesEverywhere(t *testing.T) {
	// With k=1 the baseline must return tuples such that at every x some
	// member is ranked <= 2.
	rng := xrand.New(4)
	ds := dataset.Independent(rng, 50, 2)
	res, err := TwoDRRRBaseline(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.RankRegret > 2 {
		t.Fatalf("k=1 baseline regret %d > 2", res.RankRegret)
	}
	// All members should be skyline tuples (top-k tuples always are for
	// the positions they're selected at... top-1 tuples are skyline).
	sky := map[int]bool{}
	for _, i := range skyline.Compute(ds) {
		sky[i] = true
	}
	for _, id := range res.IDs {
		if !sky[id] {
			t.Errorf("k=1 baseline chose non-skyline tuple %d", id)
		}
	}
}

func TestTwoDRRRExactRestricted(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(9), 300, 2)
	cone, err := funcspace.WeakRanking(2, 1) // u[0] >= u[1], segment [0.5, 1]
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	res, ok, err := TwoDRRRExactRestricted(ds, k, cone)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("k=3 should be achievable")
	}
	// Verify against the exact evaluator over the rendered segment.
	c0, c1, err := funcspace.Render2D(cone)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExactRankRegret(ds, res.IDs, c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	if got > k {
		t.Errorf("restricted RRR output has segment rank-regret %d > %d", got, k)
	}
	// Minimality: the restricted RRM optimum at size |S|-1 must exceed k.
	if len(res.IDs) > 1 {
		smaller, err := TwoDRRMRestricted(ds, len(res.IDs)-1, cone)
		if err != nil {
			t.Fatal(err)
		}
		if smaller.RankRegret <= k {
			t.Errorf("size %d achieves %d <= %d, so RRR output (size %d) is not minimal",
				len(res.IDs)-1, smaller.RankRegret, k, len(res.IDs))
		}
	}
	// The restricted answer never needs more tuples than the full-space one.
	full, okFull, err := TwoDRRRExact(ds, k)
	if err != nil || !okFull {
		t.Fatalf("full-space RRR failed: %v", err)
	}
	if len(res.IDs) > len(full.IDs) {
		t.Errorf("restricted RRR needs %d tuples, full-space needs %d", len(res.IDs), len(full.IDs))
	}
}

func TestTwoDRRRExactRestrictedValidation(t *testing.T) {
	ds := dataset.Independent(xrand.New(1), 50, 2)
	cone, err := funcspace.WeakRanking(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TwoDRRRExactRestricted(ds, 0, cone); err == nil {
		t.Error("k=0 should fail")
	}
	d3 := dataset.Independent(xrand.New(1), 50, 3)
	if _, _, err := TwoDRRRExactRestricted(d3, 2, cone); err == nil {
		t.Error("d=3 should fail")
	}
}
