package algo2d

import (
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func quick2D(seed int64, n int) *dataset.Dataset {
	if n < 0 {
		n = -n
	}
	return dataset.Independent(xrand.New(seed), n%60+3, 2)
}

// Property (Theorem 1): shifting any attribute by a non-negative constant
// leaves the exact optimal rank-regret unchanged.
func TestQuickShiftInvariance(t *testing.T) {
	f := func(seed int64, n int, s1, s2 uint8, rr uint8) bool {
		ds := quick2D(seed, n)
		r := int(rr)%5 + 1
		base, err := TwoDRRM(ds, r)
		if err != nil {
			return false
		}
		shifted := ds.Clone()
		shifted.Shift([]float64{float64(s1) / 16, float64(s2) / 16})
		got, err := TwoDRRM(shifted, r)
		if err != nil {
			return false
		}
		return got.RankRegret == base.RankRegret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the optimal rank-regret is non-increasing in the budget r.
func TestQuickMonotoneInBudget(t *testing.T) {
	f := func(seed int64, n int) bool {
		ds := quick2D(seed, n)
		prev := ds.N() + 1
		for r := 1; r <= 4; r++ {
			res, err := TwoDRRM(ds, r)
			if err != nil {
				return false
			}
			if res.RankRegret > prev {
				return false
			}
			prev = res.RankRegret
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (primal-dual): if RRM with budget r achieves regret k, then the
// exact RRR at threshold k needs at most r tuples and achieves regret <= k.
func TestQuickPrimalDualExact(t *testing.T) {
	f := func(seed int64, n int, rr uint8) bool {
		ds := quick2D(seed, n)
		r := int(rr)%4 + 1
		primal, err := TwoDRRM(ds, r)
		if err != nil {
			return false
		}
		dual, ok, err := TwoDRRRExact(ds, primal.RankRegret)
		if err != nil || !ok {
			return false
		}
		return len(dual.IDs) <= r && dual.RankRegret <= primal.RankRegret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the reported rank-regret matches an independent exact
// evaluation of the returned set.
func TestQuickReportedRegretMatchesEvaluation(t *testing.T) {
	f := func(seed int64, n int, rr uint8) bool {
		ds := quick2D(seed, n)
		r := int(rr)%5 + 1
		res, err := TwoDRRM(ds, r)
		if err != nil {
			return false
		}
		got, err := ExactRankRegret(ds, res.IDs, 0, 1)
		if err != nil {
			return false
		}
		return got == res.RankRegret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the 2DRRR baseline's output is feasible (its reported regret is
// correct) though not necessarily optimal — it must never beat the DP.
func TestQuickBaselineNeverBeatsExact(t *testing.T) {
	f := func(seed int64, n int, rr uint8) bool {
		ds := quick2D(seed, n)
		r := int(rr)%5 + 1
		exact, err := TwoDRRM(ds, r)
		if err != nil {
			return false
		}
		base, err := TwoDRRRBaselineForRRM(ds, r)
		if err != nil {
			return false
		}
		return base.RankRegret >= exact.RankRegret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
