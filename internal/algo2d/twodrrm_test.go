package algo2d

import (
	"math"
	"reflect"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/skyline"
	"github.com/rankregret/rankregret/internal/xrand"
)

func tableI() *dataset.Dataset {
	return dataset.MustFromRows([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
}

// bruteRRM enumerates all subsets of the candidate list with size <= r and
// returns the minimum exact rank-regret over [c0, c1] and one optimal set.
func bruteRRM(t *testing.T, ds *dataset.Dataset, cand []int, r int, c0, c1 float64) (int, []int) {
	t.Helper()
	best := math.MaxInt
	var bestSet []int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			rr, err := ExactRankRegret(ds, cur, c0, c1)
			if err != nil {
				t.Fatal(err)
			}
			if rr < best {
				best = rr
				bestSet = append([]int(nil), cur...)
			}
		}
		if len(cur) == r {
			return
		}
		for i := start; i < len(cand); i++ {
			rec(i+1, append(cur, cand[i]))
		}
	}
	rec(0, nil)
	return best, bestSet
}

func TestTableIR1(t *testing.T) {
	// The paper states the RRM solution for r=1 on Table I is {t3}.
	ds := tableI()
	res, err := TwoDRRM(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != 2 {
		t.Errorf("RRM(r=1) = %v, want [2] (t3)", res.IDs)
	}
	want, _ := bruteRRM(t, ds, skyline.Compute(ds), 1, 0, 1)
	if res.RankRegret != want {
		t.Errorf("rank-regret %d, brute optimal %d", res.RankRegret, want)
	}
}

func TestTableIR2(t *testing.T) {
	ds := tableI()
	res, err := TwoDRRM(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := bruteRRM(t, ds, skyline.Compute(ds), 2, 0, 1)
	if res.RankRegret != want {
		t.Errorf("rank-regret %d, brute optimal %d", res.RankRegret, want)
	}
	if len(res.IDs) > 2 {
		t.Errorf("size %d exceeds budget 2", len(res.IDs))
	}
	// Verify the reported regret matches the set's true regret.
	rr, err := ExactRankRegret(ds, res.IDs, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rr != res.RankRegret {
		t.Errorf("reported regret %d but set achieves %d", res.RankRegret, rr)
	}
}

func TestTwoDRRMMatchesBruteRandom(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 25; trial++ {
		var ds *dataset.Dataset
		switch trial % 3 {
		case 0:
			ds = dataset.Independent(rng, 25+trial, 2)
		case 1:
			ds = dataset.Anticorrelated(rng, 25+trial, 2)
		default:
			ds = dataset.Correlated(rng, 25+trial, 2)
		}
		r := 1 + trial%3
		res, err := TwoDRRM(ds, r)
		if err != nil {
			t.Fatal(err)
		}
		cand := skyline.Compute(ds)
		want, wantSet := bruteRRM(t, ds, cand, r, 0, 1)
		if res.RankRegret != want {
			t.Fatalf("trial %d (r=%d): 2DRRM regret %d, brute %d (sets %v vs %v)",
				trial, r, res.RankRegret, want, res.IDs, wantSet)
		}
		// Reported regret must equal the chosen set's true regret.
		rr, err := ExactRankRegret(ds, res.IDs, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rr != res.RankRegret {
			t.Fatalf("trial %d: reported %d, actual %d", trial, res.RankRegret, rr)
		}
		if len(res.IDs) > r {
			t.Fatalf("trial %d: size %d > r=%d", trial, len(res.IDs), r)
		}
	}
}

func TestTwoDRRMOutputsAreSkyline(t *testing.T) {
	rng := xrand.New(2)
	ds := dataset.Anticorrelated(rng, 200, 2)
	res, err := TwoDRRM(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	sky := map[int]bool{}
	for _, i := range skyline.Compute(ds) {
		sky[i] = true
	}
	for _, id := range res.IDs {
		if !sky[id] {
			t.Errorf("chosen tuple %d is not a skyline tuple", id)
		}
	}
}

func TestTwoDRRMShiftInvariance(t *testing.T) {
	// Theorem 1: shifting any attribute by a constant must not change the
	// solution.
	rng := xrand.New(3)
	for trial := 0; trial < 10; trial++ {
		ds := dataset.Independent(rng, 60, 2)
		res1, err := TwoDRRM(ds, 3)
		if err != nil {
			t.Fatal(err)
		}
		shifted := ds.Clone()
		shifted.Shift([]float64{rng.Float64() * 10, rng.Float64() * 5})
		res2, err := TwoDRRM(shifted, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res1.IDs, res2.IDs) {
			t.Fatalf("trial %d: shift changed the solution: %v -> %v", trial, res1.IDs, res2.IDs)
		}
		if res1.RankRegret != res2.RankRegret {
			t.Fatalf("trial %d: shift changed the regret: %d -> %d", trial, res1.RankRegret, res2.RankRegret)
		}
	}
}

func TestTwoDRRMMonotoneInR(t *testing.T) {
	// Larger budgets can only improve the optimum.
	rng := xrand.New(4)
	ds := dataset.Anticorrelated(rng, 150, 2)
	prev := math.MaxInt
	for r := 1; r <= 6; r++ {
		res, err := TwoDRRM(ds, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.RankRegret > prev {
			t.Fatalf("r=%d regret %d worse than r=%d regret %d", r, res.RankRegret, r-1, prev)
		}
		prev = res.RankRegret
	}
}

func TestTwoDRRMLowerBoundTheorem2(t *testing.T) {
	// On the quarter circle every size-r set has rank-regret Omega(n/r);
	// even the optimum cannot beat it.
	n := 200
	ds := dataset.QuarterCircle(n, 2)
	for _, r := range []int{1, 2, 4} {
		res, err := TwoDRRM(ds, r)
		if err != nil {
			t.Fatal(err)
		}
		lower := n / (4 * (r + 1))
		if res.RankRegret < lower {
			t.Errorf("r=%d: regret %d below the Theorem 2 bound %d", r, res.RankRegret, lower)
		}
	}
}

func TestTwoDRRMWholeSkylineBudget(t *testing.T) {
	// With r >= skyline size the optimum equals the regret of the whole
	// skyline (the best any subset can do).
	rng := xrand.New(5)
	ds := dataset.Independent(rng, 50, 2)
	sky := skyline.Compute(ds)
	res, err := TwoDRRM(ds, len(sky)+5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExactRankRegret(ds, sky, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.RankRegret != want {
		t.Errorf("full-budget regret %d, whole skyline achieves %d", res.RankRegret, want)
	}
}

func TestTwoDRRMErrors(t *testing.T) {
	ds := tableI()
	if _, err := TwoDRRM(ds, 0); err == nil {
		t.Error("r=0 accepted")
	}
	d3 := dataset.MustFromRows([][]float64{{1, 2, 3}})
	if _, err := TwoDRRM(d3, 1); err == nil {
		t.Error("3D dataset accepted by the 2D solver")
	}
}

func TestTwoDRRMSingleTuple(t *testing.T) {
	ds := dataset.MustFromRows([][]float64{{0.4, 0.6}})
	res, err := TwoDRRM(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != 1 || res.IDs[0] != 0 || res.RankRegret != 1 {
		t.Errorf("singleton dataset: %+v", res)
	}
}

func TestTwoDRRMRestrictedCone(t *testing.T) {
	// RRRM over u0 >= u1 (x in [0.5, 1]) must match brute force over the
	// segment and can only be better than RRM's optimum.
	rng := xrand.New(6)
	cone, err := funcspace.WeakRanking(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		ds := dataset.Anticorrelated(rng, 40, 2)
		r := 1 + trial%2
		res, err := TwoDRRMRestricted(ds, r, cone)
		if err != nil {
			t.Fatal(err)
		}
		cand, err := skyline.ComputeRestricted(ds, cone)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := bruteRRM(t, ds, cand, r, 0.5, 1)
		if res.RankRegret != want {
			t.Fatalf("trial %d: restricted regret %d, brute %d", trial, res.RankRegret, want)
		}
		full, err := TwoDRRM(ds, r)
		if err != nil {
			t.Fatal(err)
		}
		if res.RankRegret > full.RankRegret {
			t.Fatalf("trial %d: restricting the space worsened the optimum (%d > %d)",
				trial, res.RankRegret, full.RankRegret)
		}
	}
}

func TestTwoDRRMRestrictedBall(t *testing.T) {
	ball, err := funcspace.NewBall([]float64{0.5, 0.5}, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	ds := dataset.Independent(rng, 80, 2)
	res, err := TwoDRRMRestricted(ds, 2, ball)
	if err != nil {
		t.Fatal(err)
	}
	// Verify against exact regret over the rendered segment.
	c0, c1, err := funcspace.Render2D(ball)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ExactRankRegret(ds, res.IDs, c0, c1)
	if err != nil {
		t.Fatal(err)
	}
	if rr != res.RankRegret {
		t.Errorf("reported %d, actual over segment %d", res.RankRegret, rr)
	}
}

func TestTwoDRRRExact(t *testing.T) {
	rng := xrand.New(8)
	for trial := 0; trial < 8; trial++ {
		ds := dataset.Anticorrelated(rng, 40, 2)
		// Pick a threshold achievable by the whole skyline.
		sky := skyline.Compute(ds)
		floor, err := ExactRankRegret(ds, sky, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		k := floor + 2
		res, ok, err := TwoDRRRExact(ds, k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: achievable threshold %d reported unachievable", trial, k)
		}
		if res.RankRegret > k {
			t.Fatalf("trial %d: regret %d exceeds threshold %d", trial, res.RankRegret, k)
		}
		// Minimality: no subset of size |IDs|-1 achieves k (verified by
		// brute force over skyline candidates).
		if len(res.IDs) > 1 {
			best, _ := bruteRRM(t, ds, sky, len(res.IDs)-1, 0, 1)
			if best <= k {
				t.Fatalf("trial %d: smaller set achieves %d <= %d; not minimal", trial, best, k)
			}
		}
		// Unachievable threshold: below the intrinsic floor.
		if floor > 1 {
			_, ok, err := TwoDRRRExact(ds, floor-1)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("trial %d: threshold %d below floor %d reported achievable", trial, floor-1, floor)
			}
		}
	}
}

// TestPaperSectionIVExample reproduces the worked example of Section IV.B
// (Table II): with only t1, t2, t3 of Table I and r = 2, the algorithm
// processes crossings (l1,l2), (l1,l3), (l2,l3) and returns {t1,t2} or
// {t1,t3}. Each pair's chain is overtaken by the third line on part of
// [0,1] (Table II's final column), so the optimal maximum rank is 2.
func TestPaperSectionIVExample(t *testing.T) {
	ds := dataset.MustFromRows([][]float64{
		{0, 1},       // t1
		{0.4, 0.95},  // t2
		{0.57, 0.75}, // t3
	})
	res, err := TwoDRRM(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.RankRegret != 2 {
		t.Errorf("rank-regret = %d, want 2", res.RankRegret)
	}
	if len(res.IDs) != 2 || res.IDs[0] != 0 {
		t.Fatalf("IDs = %v, want {t1,t2} or {t1,t3}", res.IDs)
	}
	if res.IDs[1] != 1 && res.IDs[1] != 2 {
		t.Errorf("IDs = %v, want second element t2 or t3", res.IDs)
	}
}
