package algo2d

import (
	"fmt"
	"sort"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/sweep"
)

// LevelSegment is one piece of a k-level: over x in [X0, X1) of dual space,
// the tuple Line holds rank exactly k.
type LevelSegment struct {
	X0, X1 float64
	Line   int
}

// KLevel2D computes the k-level of the dual line arrangement: the
// piecewise description of which tuple is ranked exactly k as the utility
// vector sweeps x in [0, 1]. This is the "top-k rank contour" that Chester
// et al. precompute for kRMS; the paper's 2DRRM avoids needing it, so this
// implementation exists as analysis substrate (e.g. the number of segments
// is the k-level complexity that drives MDRRR's cost) and as an oracle for
// validating rank computations.
func KLevel2D(ds *dataset.Dataset, k int) ([]LevelSegment, error) {
	n := ds.N()
	if ds.Dim() != 2 {
		return nil, fmt.Errorf("algo2d: KLevel2D needs d=2, got %d", ds.Dim())
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("algo2d: k=%d out of range [1, %d]", k, n)
	}
	lines := Lines(ds)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := lines[order[a]], lines[order[b]]
		ya, yb := la.Eval(0), lb.Eval(0)
		if ya != yb {
			return ya > yb
		}
		return la.Slope > lb.Slope
	})
	pos := make([]int, n)
	for p, id := range order {
		pos[id] = p
	}

	var segs []LevelSegment
	cur := order[k-1]
	start := 0.0
	sweep.NeighborSweep(lines, 0, 1, func(x float64, up, down int) {
		pu, pd := pos[up], pos[down]
		if pu+1 != pd {
			panic("algo2d: k-level sweep mirror out of sync")
		}
		order[pu], order[pd] = down, up
		pos[up], pos[down] = pd, pu
		if next := order[k-1]; next != cur {
			segs = append(segs, LevelSegment{X0: start, X1: x, Line: cur})
			cur = next
			start = x
		}
	})
	segs = append(segs, LevelSegment{X0: start, X1: 1, Line: cur})
	return segs, nil
}

// KLevelComplexity2D returns the number of segments of the k-level — the
// arrangement complexity term in MDRRR's running time.
func KLevelComplexity2D(ds *dataset.Dataset, k int) (int, error) {
	segs, err := KLevel2D(ds, k)
	if err != nil {
		return 0, err
	}
	return len(segs), nil
}

// RankAt returns the tuple ranked exactly k for the utility vector
// (x, 1-x), resolved from a precomputed k-level by binary search — an O(log
// s) oracle once the level is built.
func RankAt(segs []LevelSegment, x float64) (int, bool) {
	if len(segs) == 0 || x < segs[0].X0 || x > segs[len(segs)-1].X1 {
		return 0, false
	}
	lo, hi := 0, len(segs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].X1 <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return segs[lo].Line, true
}
