// Package sweep provides the 2D plane-sweep machinery behind the paper's
// Section IV algorithm: dual lines are swept by a vertical line L moving
// from x = c0 to x = c1, stopping at line crossings, where tuple ranks
// change by exactly one.
//
// Two implementations are provided:
//
//   - BuildEvents enumerates only crossings involving candidate (skyline)
//     lines — the events that can affect the DP matrix — in O(s·n) space,
//     which is what the production 2DRRM solver uses.
//   - NeighborSweep is the paper's literal Algorithm 1 event loop (sorted
//     list L plus a deduplicating min-heap H of neighbor intersections,
//     lines 4-13). It visits *every* crossing in x order and exists to
//     cross-validate BuildEvents and for tests that follow the paper
//     step by step.
package sweep

import (
	"container/heap"
	"sort"

	"github.com/rankregret/rankregret/internal/geom"
)

// Event is a crossing of two dual lines inside the sweep interval. Before
// the crossing Up is strictly above Down; after it they swap, so Up's rank
// increases by one and Down's rank decreases by one.
type Event struct {
	X        float64
	Up, Down int32
}

// lineAbove reports whether line i is above line j at x under the
// deterministic tie-break (equal value: larger slope first, because it will
// be above immediately after x; equal slope too: smaller index first).
func lineAbove(lines []geom.Line, i, j int, x float64) bool {
	vi, vj := lines[i].Eval(x), lines[j].Eval(x)
	if vi != vj {
		return vi > vj
	}
	if lines[i].Slope != lines[j].Slope {
		return lines[i].Slope > lines[j].Slope
	}
	return i < j
}

// InitialRanks returns rank[i] = 1 + number of lines above line i at x = c0
// (using the x -> c0+ tie-break), i.e. the paper's Rank(l_i) when the sweep
// starts.
func InitialRanks(lines []geom.Line, c0 float64) []int {
	n := len(lines)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return lineAbove(lines, order[a], order[b], c0)
	})
	rank := make([]int, n)
	for pos, id := range order {
		rank[id] = pos + 1
	}
	return rank
}

// BuildEvents returns every crossing between a candidate line and any other
// line with x in (c0, c1], sorted by x ascending (ties by line indices).
// A crossing between two candidates appears exactly once. Crossings between
// two non-candidate lines are omitted: they cannot change any candidate's
// rank, which is the refinement that turns the paper's O(n^2) sweep into
// O(s·n) without changing the DP outcome.
func BuildEvents(lines []geom.Line, isCand []bool, c0, c1 float64) []Event {
	var events []Event
	n := len(lines)
	for i := 0; i < n; i++ {
		if !isCand[i] {
			continue
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if isCand[j] && j < i {
				continue // pair already handled from j's side
			}
			x, ok := geom.IntersectX(lines[i], lines[j])
			if !ok || x <= c0 || x > c1 {
				continue
			}
			var e Event
			if lines[i].Slope < lines[j].Slope {
				e = Event{X: x, Up: int32(i), Down: int32(j)}
			} else {
				e = Event{X: x, Up: int32(j), Down: int32(i)}
			}
			events = append(events, e)
		}
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].X != events[b].X {
			return events[a].X < events[b].X
		}
		if events[a].Up != events[b].Up {
			return events[a].Up < events[b].Up
		}
		return events[a].Down < events[b].Down
	})
	return events
}

// pairKey encodes an unordered line pair for the heap's deduplication set.
func pairKey(i, j int32) int64 {
	if i > j {
		i, j = j, i
	}
	return int64(i)<<32 | int64(j)
}

// eventHeap is the paper's min-heap H of discovered intersections ordered by
// x-coordinate.
type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(a, b int) bool {
	if h[a].X != h[b].X {
		return h[a].X < h[b].X
	}
	if h[a].Up != h[b].Up {
		return h[a].Up < h[b].Up
	}
	return h[a].Down < h[b].Down
}
func (h eventHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() any     { o := *h; n := len(o) - 1; e := o[n]; *h = o[:n]; return e }

// NeighborSweep runs the paper's Algorithm 1 sweep structure: the sorted
// list L of lines ordered by their intersection with the sweep line, and the
// min-heap H of unprocessed neighbor intersections (with a duplicate-
// insertion guard, as the paper implements H "by a binary search tree").
// visit is called for every crossing in x order with (x, up, down) where up
// was above down just before the crossing. It visits all O(n^2) crossings
// in (c0, c1]; use it for validation, not production.
func NeighborSweep(lines []geom.Line, c0, c1 float64, visit func(x float64, up, down int)) {
	n := len(lines)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return lineAbove(lines, order[a], order[b], c0)
	})
	pos := make([]int, n) // pos[line] = index in order
	for p, id := range order {
		pos[id] = p
	}

	h := &eventHeap{}
	seen := make(map[int64]bool)
	tryPush := func(i, j int) {
		// i directly above j in L; they cross later iff slope(i) < slope(j).
		x, ok := geom.IntersectX(lines[i], lines[j])
		if !ok || x <= c0 || x > c1 {
			return
		}
		if lines[i].Slope >= lines[j].Slope {
			return // already crossed or never will in this direction
		}
		k := pairKey(int32(i), int32(j))
		if seen[k] {
			return
		}
		seen[k] = true
		heap.Push(h, Event{X: x, Up: int32(i), Down: int32(j)})
	}
	for p := 0; p+1 < n; p++ {
		tryPush(order[p], order[p+1])
	}
	for h.Len() > 0 {
		e := heap.Pop(h).(Event)
		up, down := int(e.Up), int(e.Down)
		// Guard against stale events (lines no longer adjacent in the
		// intended orientation). With the dedup set and adjacency-only
		// insertion they should be exact, but concurrent crossings can
		// reorder; re-check adjacency.
		if pos[up]+1 != pos[down] {
			// Re-discovered later when they become adjacent again; allow
			// re-push by clearing the seen mark.
			delete(seen, pairKey(e.Up, e.Down))
			continue
		}
		visit(e.X, up, down)
		// Swap in L.
		pu, pd := pos[up], pos[down]
		order[pu], order[pd] = down, up
		pos[up], pos[down] = pd, pu
		// New neighbor pairs.
		if pu > 0 {
			tryPush(order[pu-1], order[pu])
		}
		if pd+1 < n {
			tryPush(order[pd], order[pd+1])
		}
	}
}
