package sweep

import (
	"math"
	"sort"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/xrand"
)

func dualLines(ds *dataset.Dataset) []geom.Line {
	lines := make([]geom.Line, ds.N())
	for i := 0; i < ds.N(); i++ {
		lines[i] = geom.DualLine(ds.Value(i, 0), ds.Value(i, 1))
	}
	return lines
}

// bruteRank computes 1 + #lines above line i at x, with the package's
// tie-break.
func bruteRank(lines []geom.Line, i int, x float64) int {
	r := 1
	for j := range lines {
		if j != i && lineAbove(lines, j, i, x) {
			r++
		}
	}
	return r
}

func TestInitialRanks(t *testing.T) {
	// Table I at x=0: lines ordered by intercept (A2 value) descending:
	// t1(1), t2(.95), t3(.75), t4(.6), t5(.5), t6(.3), t7(0).
	ds := dataset.MustFromRows([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
	lines := dualLines(ds)
	ranks := InitialRanks(lines, 0)
	want := []int{1, 2, 3, 4, 5, 6, 7}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
}

func TestInitialRanksMatchBrute(t *testing.T) {
	rng := xrand.New(1)
	ds := dataset.Independent(rng, 40, 2)
	lines := dualLines(ds)
	for _, c0 := range []float64{0, 0.25, 0.5, 0.9} {
		ranks := InitialRanks(lines, c0)
		for i := range lines {
			if want := bruteRank(lines, i, c0); ranks[i] != want {
				t.Fatalf("c0=%v line %d: rank %d want %d", c0, i, ranks[i], want)
			}
		}
	}
}

func TestBuildEventsMatchesBrute(t *testing.T) {
	rng := xrand.New(2)
	ds := dataset.Independent(rng, 30, 2)
	lines := dualLines(ds)
	isCand := make([]bool, len(lines))
	for i := 0; i < len(lines); i += 3 {
		isCand[i] = true
	}
	events := BuildEvents(lines, isCand, 0, 1)
	// Brute-force count of candidate-involving crossings in (0, 1].
	count := 0
	for i := range lines {
		for j := i + 1; j < len(lines); j++ {
			if !isCand[i] && !isCand[j] {
				continue
			}
			x, ok := geom.IntersectX(lines[i], lines[j])
			if ok && x > 0 && x <= 1 {
				count++
			}
		}
	}
	if len(events) != count {
		t.Fatalf("BuildEvents found %d, brute force %d", len(events), count)
	}
	// Sorted by x, Up above Down just before crossing.
	for i, e := range events {
		if i > 0 && events[i-1].X > e.X {
			t.Fatal("events not sorted by x")
		}
		before := e.X - 1e-9
		if !lineAbove(lines, int(e.Up), int(e.Down), before) {
			t.Fatalf("event %d: Up %d not above Down %d just before x=%v", i, e.Up, e.Down, e.X)
		}
		if lines[e.Up].Slope >= lines[e.Down].Slope {
			t.Fatalf("event %d: Up must have the smaller slope", i)
		}
	}
}

func TestEventWalkReproducesRanks(t *testing.T) {
	// Walking the event list and applying +-1 must reproduce brute-force
	// ranks of candidate lines at any x.
	rng := xrand.New(3)
	ds := dataset.Anticorrelated(rng, 50, 2)
	lines := dualLines(ds)
	isCand := make([]bool, len(lines))
	cands := []int{0, 7, 13, 22, 31, 49}
	for _, c := range cands {
		isCand[c] = true
	}
	ranks := InitialRanks(lines, 0)
	events := BuildEvents(lines, isCand, 0, 1)
	checkpoints := []float64{0.1, 0.33, 0.5, 0.77, 1.0}
	ci := 0
	verify := func(x float64) {
		for _, c := range cands {
			if want := bruteRank(lines, c, x); ranks[c] != want {
				t.Fatalf("at x=%v line %d: walked rank %d, brute %d", x, c, ranks[c], want)
			}
		}
	}
	for _, e := range events {
		for ci < len(checkpoints) && checkpoints[ci] < e.X {
			verify(checkpoints[ci])
			ci++
		}
		if isCand[e.Up] {
			ranks[e.Up]++
		}
		if isCand[e.Down] {
			ranks[e.Down]--
		}
	}
	for ; ci < len(checkpoints); ci++ {
		verify(checkpoints[ci])
	}
}

func TestBuildEventsRestrictedWindow(t *testing.T) {
	rng := xrand.New(4)
	ds := dataset.Independent(rng, 20, 2)
	lines := dualLines(ds)
	isCand := make([]bool, len(lines))
	for i := range isCand {
		isCand[i] = true
	}
	all := BuildEvents(lines, isCand, 0, 1)
	window := BuildEvents(lines, isCand, 0.3, 0.7)
	for _, e := range window {
		if e.X <= 0.3 || e.X > 0.7 {
			t.Fatalf("event at x=%v outside (0.3, 0.7]", e.X)
		}
	}
	// Window events are exactly the subset of all events in range.
	wantCount := 0
	for _, e := range all {
		if e.X > 0.3 && e.X <= 0.7 {
			wantCount++
		}
	}
	if len(window) != wantCount {
		t.Errorf("window has %d events, want %d", len(window), wantCount)
	}
}

func TestNeighborSweepVisitsAllCrossings(t *testing.T) {
	rng := xrand.New(5)
	ds := dataset.Independent(rng, 25, 2)
	lines := dualLines(ds)
	var visited []Event
	NeighborSweep(lines, 0, 1, func(x float64, up, down int) {
		visited = append(visited, Event{X: x, Up: int32(up), Down: int32(down)})
	})
	// Compare with the full crossing set from BuildEvents with all lines as
	// candidates.
	isCand := make([]bool, len(lines))
	for i := range isCand {
		isCand[i] = true
	}
	want := BuildEvents(lines, isCand, 0, 1)
	if len(visited) != len(want) {
		t.Fatalf("neighbor sweep visited %d crossings, want %d", len(visited), len(want))
	}
	// x-ordered.
	for i := 1; i < len(visited); i++ {
		if visited[i-1].X > visited[i].X+1e-12 {
			t.Fatal("neighbor sweep events out of order")
		}
	}
	// Same multiset of pairs.
	key := func(e Event) int64 { return pairKey(e.Up, e.Down) }
	a := make([]int64, len(visited))
	b := make([]int64, len(want))
	for i := range visited {
		a[i] = key(visited[i])
		b[i] = key(want[i])
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("neighbor sweep visited a different crossing set")
		}
	}
}

func TestNeighborSweepRankEvolution(t *testing.T) {
	// The paper's invariant: after the sweep passes a crossing, the two
	// lines swap adjacent positions; walking ranks through NeighborSweep
	// must agree with brute force at the end (x = 1).
	rng := xrand.New(6)
	ds := dataset.Correlated(rng, 30, 2)
	lines := dualLines(ds)
	ranks := InitialRanks(lines, 0)
	NeighborSweep(lines, 0, 1, func(x float64, up, down int) {
		ranks[up]++
		ranks[down]--
	})
	for i := range lines {
		if want := bruteRank(lines, i, 1); ranks[i] != want {
			t.Fatalf("line %d: final rank %d, brute %d", i, ranks[i], want)
		}
	}
}

func TestParallelLinesNoEvents(t *testing.T) {
	// Identical tuples give identical (parallel) lines: no crossings, no
	// infinite loops.
	ds := dataset.MustFromRows([][]float64{
		{0.5, 0.5}, {0.5, 0.5}, {0.3, 0.8},
	})
	lines := dualLines(ds)
	isCand := []bool{true, true, true}
	events := BuildEvents(lines, isCand, 0, 1)
	for _, e := range events {
		if (e.Up == 0 && e.Down == 1) || (e.Up == 1 && e.Down == 0) {
			t.Fatal("parallel lines reported as crossing")
		}
	}
	n := 0
	NeighborSweep(lines, 0, 1, func(x float64, up, down int) { n++ })
	if n != len(events) {
		t.Errorf("neighbor sweep found %d events, BuildEvents %d", n, len(events))
	}
}

func TestDegenerateConcurrentCrossings(t *testing.T) {
	// Three lines through one point: all three pairwise crossings happen at
	// the same x; both sweeps must handle it and end with correct ranks.
	lines := []geom.Line{
		{Slope: 1, Intercept: 0},
		{Slope: -1, Intercept: 1},
		{Slope: 0, Intercept: 0.5},
		{Slope: 0.3, Intercept: 0.2},
	}
	isCand := []bool{true, true, true, true}
	events := BuildEvents(lines, isCand, 0, 1)
	ranks := InitialRanks(lines, 0)
	for _, e := range events {
		ranks[e.Up]++
		ranks[e.Down]--
	}
	for i := range lines {
		if want := bruteRank(lines, i, 1); ranks[i] != want {
			t.Fatalf("line %d: evented rank %d, brute %d", i, ranks[i], want)
		}
	}
	count := 0
	NeighborSweep(lines, 0, 1, func(x float64, up, down int) { count++ })
	if count != len(events) {
		t.Errorf("neighbor sweep %d events, BuildEvents %d", count, len(events))
	}
	// Lines 0, 1, 2 are concurrent at x = 0.5: exactly three crossings there.
	at05 := 0
	for _, e := range events {
		if math.Abs(e.X-0.5) < 1e-12 {
			at05++
		}
	}
	if at05 != 3 {
		t.Errorf("%d crossings at the concurrent point, want 3", at05)
	}
}
