package sweep

import (
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/xrand"
)

func randomLines(seed int64, nn int) []geom.Line {
	n := nn
	if n < 0 {
		n = -n
	}
	n = n%30 + 2
	rng := xrand.New(seed)
	lines := make([]geom.Line, n)
	for i := range lines {
		lines[i] = geom.DualLine(rng.Float64(), rng.Float64())
	}
	return lines
}

// Property: InitialRanks is a permutation of 1..n consistent with the
// y-order at c0 (strictly higher line = strictly better rank).
func TestQuickInitialRanksPermutation(t *testing.T) {
	f := func(seed int64, nn int) bool {
		lines := randomLines(seed, nn)
		ranks := InitialRanks(lines, 0)
		seen := make([]bool, len(lines)+1)
		for _, r := range ranks {
			if r < 1 || r > len(lines) || seen[r] {
				return false
			}
			seen[r] = true
		}
		for i := range lines {
			for j := range lines {
				if lines[i].Eval(0) > lines[j].Eval(0) && ranks[i] > ranks[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: NeighborSweep visits every crossing pair in (0,1] exactly once
// and in non-decreasing x order.
func TestQuickNeighborSweepCompleteOrdered(t *testing.T) {
	f := func(seed int64, nn int) bool {
		lines := randomLines(seed, nn)
		want := map[[2]int]bool{}
		for i := range lines {
			for j := i + 1; j < len(lines); j++ {
				if x, ok := geom.IntersectX(lines[i], lines[j]); ok && x > 0 && x <= 1 {
					want[[2]int{i, j}] = true
				}
			}
		}
		got := map[[2]int]bool{}
		lastX := 0.0
		okOrder := true
		NeighborSweep(lines, 0, 1, func(x float64, up, down int) {
			if x < lastX {
				okOrder = false
			}
			lastX = x
			a, b := up, down
			if a > b {
				a, b = b, a
			}
			if got[[2]int{a, b}] {
				okOrder = false // duplicate visit
			}
			got[[2]int{a, b}] = true
		})
		if !okOrder || len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: replaying NeighborSweep's swaps on the initial order yields the
// exact reverse-sorted order at x = 1 (the arrangement is fully inverted
// pair-by-pair as crossings demand).
func TestQuickNeighborSweepFinalOrder(t *testing.T) {
	f := func(seed int64, nn int) bool {
		lines := randomLines(seed, nn)
		ranks := InitialRanks(lines, 0)
		n := len(lines)
		order := make([]int, n)
		for id, r := range ranks {
			order[r-1] = id
		}
		pos := make([]int, n)
		for p, id := range order {
			pos[id] = p
		}
		NeighborSweep(lines, 0, 1, func(x float64, up, down int) {
			pu, pd := pos[up], pos[down]
			if pu+1 != pd {
				return
			}
			order[pu], order[pd] = down, up
			pos[up], pos[down] = pd, pu
		})
		// At x=1 the list must be sorted by Eval(1) descending.
		for p := 1; p < n; p++ {
			if lines[order[p-1]].Eval(1) < lines[order[p]].Eval(1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
