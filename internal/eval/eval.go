// Package eval measures the quality of representative sets: rank-regret
// (exactly in 2D via the dual sweep, or estimated with sampled utility
// functions as the paper does — "draw 100,000 functions uniformly at random
// and consider them for estimating the rank-regret"), regret-ratio for RMS
// comparisons, and the Rat_k coverage ratio of Theorem 6.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

// RankRegret estimates the rank-regret of the set ids over the space by
// sampling `samples` utility directions (paper default 100,000), in
// parallel. A nil space means the full orthant. The estimate is a lower
// bound on the true maximum that converges as samples grow.
func RankRegret(ds *dataset.Dataset, ids []int, space funcspace.Space, samples int, seed int64) (int, error) {
	return RankRegretCtx(nil, ds, ids, space, samples, seed)
}

// RankRegretCtx is RankRegret with cooperative cancellation: each sampling
// worker checks ctx periodically and the call returns ctx.Err() promptly on
// cancellation.
func RankRegretCtx(ctx context.Context, ds *dataset.Dataset, ids []int, space funcspace.Space, samples int, seed int64) (int, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("eval: empty set has no rank-regret")
	}
	if samples < 1 {
		return 0, fmt.Errorf("eval: need at least one sample")
	}
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > samples {
		workers = samples
	}
	worsts := make([]int, workers)
	var wg sync.WaitGroup
	per := samples / workers
	for w := 0; w < workers; w++ {
		count := per
		if w == workers-1 {
			count = samples - per*(workers-1)
		}
		wg.Add(1)
		go func(w, count int) {
			defer wg.Done()
			rng := xrand.New(seed).Split(uint64(w))
			scores := make([]float64, ds.N())
			worst := 0
			for i := 0; i < count; i++ {
				if i%64 == 0 && ctxutil.Cancelled(ctx) != nil {
					return
				}
				u := space.Sample(rng)
				if u == nil {
					continue
				}
				if r := topk.RankOfSet(ds, u, ids, scores); r > worst {
					worst = r
				}
			}
			worsts[w] = worst
		}(w, count)
	}
	wg.Wait()
	if err := ctxutil.Cancelled(ctx); err != nil {
		return 0, err
	}
	worst := 0
	for _, v := range worsts {
		if v > worst {
			worst = v
		}
	}
	return worst, nil
}

// RankRegret2DExact computes the exact rank-regret in 2D over the rendered
// segment of the space (the full [0,1] for nil/Full).
func RankRegret2DExact(ds *dataset.Dataset, ids []int, space funcspace.Space) (int, error) {
	if ds.Dim() != 2 {
		return 0, fmt.Errorf("eval: exact evaluation needs d=2, got %d", ds.Dim())
	}
	c0, c1 := 0.0, 1.0
	if space != nil {
		if _, ok := space.(funcspace.Full); !ok {
			var err error
			c0, c1, err = funcspace.Render2D(space)
			if err != nil {
				return 0, err
			}
		}
	}
	return algo2d.ExactRankRegret(ds, ids, c0, c1)
}

// RegretRatio estimates the maximum regret-ratio of ids over the space by
// sampling: max over u of (w(u,D) - w(u,S)) / w(u,D).
func RegretRatio(ds *dataset.Dataset, ids []int, space funcspace.Space, samples int, seed int64) (float64, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("eval: empty set has no regret-ratio")
	}
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	rng := xrand.New(seed)
	scores := make([]float64, ds.N())
	worst := 0.0
	for i := 0; i < samples; i++ {
		u := space.Sample(rng)
		if u == nil {
			continue
		}
		scores = ds.Utilities(u, scores)
		best, have := 0.0, 0.0
		for _, s := range scores {
			if s > best {
				best = s
			}
		}
		for _, id := range ids {
			if scores[id] > have {
				have = scores[id]
			}
		}
		if best > 0 {
			if rr := (best - have) / best; rr > worst {
				worst = rr
			}
		}
	}
	return worst, nil
}

// RatK estimates Rat_k(S) (Theorem 6): the fraction of utility directions
// for which S contains a top-k tuple.
func RatK(ds *dataset.Dataset, ids []int, space funcspace.Space, k, samples int, seed int64) (float64, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("eval: empty set")
	}
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	rng := xrand.New(seed)
	scores := make([]float64, ds.N())
	hits := 0
	for i := 0; i < samples; i++ {
		u := space.Sample(rng)
		if u == nil {
			continue
		}
		if topk.RankOfSet(ds, u, ids, scores) <= k {
			hits++
		}
	}
	return float64(hits) / float64(samples), nil
}

// RatKCurve evaluates Rat_k for every k in ks with a single sampling pass:
// the fraction of sampled directions for which ids contains a top-k tuple.
// It returns one value per requested k. Useful for "how much does relaxing
// the rank threshold buy" plots (the cumulative distribution of the set's
// rank-regret over the space).
func RatKCurve(ds *dataset.Dataset, ids []int, space funcspace.Space, ks []int, samples int, seed int64) ([]float64, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("eval: empty set has no rank-regret")
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("eval: no thresholds requested")
	}
	for _, k := range ks {
		if k < 1 || k > ds.N() {
			return nil, fmt.Errorf("eval: threshold %d out of range [1, %d]", k, ds.N())
		}
	}
	if samples < 1 {
		return nil, fmt.Errorf("eval: need at least one sample")
	}
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	rng := xrand.New(seed)
	scores := make([]float64, ds.N())
	counts := make([]int, len(ks))
	for i := 0; i < samples; i++ {
		u := space.Sample(rng)
		if u == nil {
			return nil, fmt.Errorf("eval: sampling from %s failed", space.Name())
		}
		r := topk.RankOfSet(ds, u, ids, scores)
		for j, k := range ks {
			if r <= k {
				counts[j]++
			}
		}
	}
	out := make([]float64, len(ks))
	for j, c := range counts {
		out[j] = float64(c) / float64(samples)
	}
	return out, nil
}
