package eval

import (
	"math"
	"testing"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestRankRegretAgainstExact2D(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 10; trial++ {
		ds := dataset.Anticorrelated(rng, 60, 2)
		ids := []int{rng.Intn(60), rng.Intn(60)}
		exact, err := RankRegret2DExact(ds, ids, nil)
		if err != nil {
			t.Fatal(err)
		}
		est, err := RankRegret(ds, ids, nil, 20000, 42)
		if err != nil {
			t.Fatal(err)
		}
		if est > exact {
			t.Fatalf("trial %d: estimate %d exceeds exact %d", trial, est, exact)
		}
		// 20K samples on a 60-tuple 2D instance should land within 2.
		if exact-est > 2 {
			t.Fatalf("trial %d: estimate %d far from exact %d", trial, est, exact)
		}
	}
}

func TestRankRegretSetContainingTopEverywhere(t *testing.T) {
	// The full skyline achieves regret 1 in 2D.
	rng := xrand.New(2)
	ds := dataset.Independent(rng, 80, 2)
	res, err := algo2d.TwoDRRM(ds, 80)
	if err != nil {
		t.Fatal(err)
	}
	est, err := RankRegret(ds, res.IDs, nil, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if est != 1 {
		t.Errorf("estimated regret of an everywhere-top set = %d, want 1", est)
	}
}

func TestRankRegretRestrictedSpace(t *testing.T) {
	ds := dataset.MustFromRows([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
	cone, err := funcspace.WeakRanking(2, 1) // u0 >= u1, i.e. x in [0.5, 1]
	if err != nil {
		t.Fatal(err)
	}
	// t7 = (1,0) is strong on the restricted space, weak on the full one.
	full, err := RankRegret(ds, []int{6}, nil, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := RankRegret(ds, []int{6}, cone, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if restricted >= full {
		t.Errorf("restricted regret %d should beat full %d for t7", restricted, full)
	}
	// Cross-check the restricted estimate against the exact segment sweep.
	exact, err := RankRegret2DExact(ds, []int{6}, cone)
	if err != nil {
		t.Fatal(err)
	}
	if restricted > exact {
		t.Errorf("restricted estimate %d exceeds exact %d", restricted, exact)
	}
}

func TestRankRegretDeterministicSeed(t *testing.T) {
	rng := xrand.New(3)
	ds := dataset.Independent(rng, 50, 3)
	a, err := RankRegret(ds, []int{1, 2}, nil, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RankRegret(ds, []int{1, 2}, nil, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different estimates: %d vs %d", a, b)
	}
}

func TestRankRegretErrors(t *testing.T) {
	ds := dataset.MustFromRows([][]float64{{1, 1}})
	if _, err := RankRegret(ds, nil, nil, 100, 1); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := RankRegret(ds, []int{0}, nil, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := RankRegret2DExact(dataset.MustFromRows([][]float64{{1, 2, 3}}), []int{0}, nil); err == nil {
		t.Error("3D dataset accepted by exact 2D evaluator")
	}
}

func TestRegretRatio(t *testing.T) {
	// The quarter circle: a single endpoint tuple has high regret-ratio;
	// both endpoints together still miss the middle; a denser set is better.
	ds := dataset.QuarterCircle(50, 2)
	single, err := RegretRatio(ds, []int{0}, nil, 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	three, err := RegretRatio(ds, []int{0, 25, 49}, nil, 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if three >= single {
		t.Errorf("adding tuples did not improve regret-ratio: %v -> %v", single, three)
	}
	all := make([]int, 50)
	for i := range all {
		all[i] = i
	}
	zero, err := RegretRatio(ds, all, nil, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if zero > 1e-9 {
		t.Errorf("whole dataset has regret-ratio %v, want 0", zero)
	}
}

func TestRatK(t *testing.T) {
	rng := xrand.New(6)
	ds := dataset.Independent(rng, 100, 2)
	// The whole skyline has Rat_1 = 1.
	res, err := algo2d.TwoDRRM(ds, 100)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RatK(ds, res.IDs, nil, 1, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 1 {
		t.Errorf("Rat_1 of full skyline = %v, want 1", r1)
	}
	// A single tuple's Rat_k grows with k.
	r5, err := RatK(ds, []int{res.IDs[0]}, nil, 5, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	r50, err := RatK(ds, []int{res.IDs[0]}, nil, 50, 3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r50 < r5 {
		t.Errorf("Rat_k not monotone in k: Rat_5=%v Rat_50=%v", r5, r50)
	}
	if r50 <= 0 || r50 > 1 || math.IsNaN(r50) {
		t.Errorf("Rat_50 = %v out of range", r50)
	}
}

func TestRatKCurve(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(3), 300, 2)
	res, err := algo2d.TwoDRRM(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	ks := []int{1, res.RankRegret, ds.N()}
	curve, err := RatKCurve(ds, res.IDs, nil, ks, 4000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(ks) {
		t.Fatalf("curve has %d points, want %d", len(curve), len(ks))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Errorf("Rat_k curve not monotone: %v", curve)
		}
	}
	// At the exact rank-regret the coverage is 1 (Lemma 1); at n trivially 1.
	if curve[1] != 1 || curve[2] != 1 {
		t.Errorf("curve at the exact regret and at n = %v, want 1s", curve[1:])
	}
	if _, err := RatKCurve(ds, nil, nil, ks, 100, 1); err == nil {
		t.Error("empty ids should fail")
	}
	if _, err := RatKCurve(ds, res.IDs, nil, nil, 100, 1); err == nil {
		t.Error("empty thresholds should fail")
	}
	if _, err := RatKCurve(ds, res.IDs, nil, []int{0}, 100, 1); err == nil {
		t.Error("k=0 should fail")
	}
}
