package eval

import (
	"fmt"
	"sort"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

// RankRegretAdaptive estimates the rank-regret of ids like RankRegret, but
// spends part of the sample budget refining around the worst directions
// found so far: after a uniform pass, it repeatedly perturbs the current
// argmax directions with shrinking Gaussian noise. The maximum rank over a
// convex-ish region is attained at a boundary the uniform pass only grazes,
// so local refinement converges to the true maximum with far fewer samples.
// The result is still a lower bound on the true rank-regret, and is always
// >= the plain uniform estimate with the same seed and a `samples` uniform
// budget.
func RankRegretAdaptive(ds *dataset.Dataset, ids []int, space funcspace.Space, samples int, seed int64) (int, error) {
	if len(ids) == 0 {
		return 0, fmt.Errorf("eval: empty set has no rank-regret")
	}
	if samples < 8 {
		return 0, fmt.Errorf("eval: adaptive estimation needs at least 8 samples, got %d", samples)
	}
	if space == nil {
		space = funcspace.NewFull(ds.Dim())
	}
	rng := xrand.New(seed)
	scores := make([]float64, ds.N())

	// Phase 1: uniform exploration with half the budget, keeping the
	// `frontier` worst directions.
	const frontier = 8
	type hit struct {
		rank int
		u    geom.Vector
	}
	var worst []hit
	record := func(u geom.Vector) {
		r := topk.RankOfSet(ds, u, ids, scores)
		if len(worst) < frontier {
			worst = append(worst, hit{r, geom.Clone(u)})
			sort.Slice(worst, func(a, b int) bool { return worst[a].rank > worst[b].rank })
			return
		}
		if r > worst[len(worst)-1].rank {
			worst[len(worst)-1] = hit{r, geom.Clone(u)}
			sort.Slice(worst, func(a, b int) bool { return worst[a].rank > worst[b].rank })
		}
	}
	explore := samples / 2
	for i := 0; i < explore; i++ {
		u := space.Sample(rng)
		if u == nil {
			return 0, fmt.Errorf("eval: sampling from %s failed", space.Name())
		}
		record(u)
	}

	// Phase 2: local refinement. Rounds of shrinking sigma split the
	// remaining budget; each round perturbs every frontier direction.
	remaining := samples - explore
	const rounds = 4
	sigma := 0.25
	for round := 0; round < rounds; round++ {
		per := remaining / rounds / frontier
		if per < 1 {
			per = 1
		}
		base := make([]geom.Vector, len(worst))
		for i := range worst {
			base[i] = worst[i].u
		}
		for _, b := range base {
			for i := 0; i < per; i++ {
				u := perturb(rng, b, sigma)
				if u == nil || !space.ContainsDirection(u) {
					continue
				}
				record(u)
			}
		}
		sigma /= 4
	}
	return worst[0].rank, nil
}

// perturb adds isotropic Gaussian noise to a direction and renormalizes,
// clamping at the orthant boundary (the maximum is often attained there).
func perturb(rng *xrand.Rand, u geom.Vector, sigma float64) geom.Vector {
	out := make(geom.Vector, len(u))
	for i := range u {
		v := u[i] + sigma*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	if geom.AllZero(out) {
		return nil
	}
	return geom.Normalize(out)
}
