package eval

import (
	"testing"

	"github.com/rankregret/rankregret/internal/algo2d"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/funcspace"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestRankRegretAdaptiveValidation(t *testing.T) {
	ds := dataset.Independent(xrand.New(1), 50, 2)
	if _, err := RankRegretAdaptive(ds, nil, nil, 100, 1); err == nil {
		t.Error("empty set should fail")
	}
	if _, err := RankRegretAdaptive(ds, []int{0}, nil, 4, 1); err == nil {
		t.Error("tiny budget should fail")
	}
}

func TestRankRegretAdaptiveNeverBelowUniform(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(3), 800, 3)
	ids := []int{0, 5, 17, 100, 212}
	space := funcspace.NewFull(3)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		uni, err := RankRegret(ds, ids, space, 1000, seed)
		if err != nil {
			t.Fatal(err)
		}
		ada, err := RankRegretAdaptive(ds, ids, space, 2000, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Both are lower bounds on the true max; the adaptive estimator
		// should not be systematically weaker. Allow slack for its smaller
		// uniform phase.
		if ada*2 < uni {
			t.Errorf("seed %d: adaptive %d far below uniform %d", seed, ada, uni)
		}
	}
}

func TestRankRegretAdaptiveFindsExact2DMax(t *testing.T) {
	// In 2D the exact maximum is available from the dual sweep; adaptive
	// estimation with a modest budget should reach it (the uniform
	// estimator frequently undershoots by a rank or two at this budget).
	ds := dataset.Anticorrelated(xrand.New(7), 1500, 2)
	res, err := algo2d.TwoDRRM(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RankRegret2DExact(ds, res.IDs, funcspace.NewFull(2))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		got, err := RankRegretAdaptive(ds, res.IDs, nil, 4000, seed)
		if err != nil {
			t.Fatal(err)
		}
		if got > exact {
			t.Fatalf("adaptive estimate %d exceeds the exact maximum %d", got, exact)
		}
		if got == exact {
			hits++
		}
	}
	if hits < 5 {
		t.Errorf("adaptive estimator reached the exact max in only %d/8 runs", hits)
	}
}

func TestRankRegretAdaptiveRestrictedSpace(t *testing.T) {
	ds := dataset.Anticorrelated(xrand.New(11), 500, 3)
	cone, err := funcspace.WeakRanking(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{1, 2, 3}
	got, err := RankRegretAdaptive(ds, ids, cone, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got < 1 || got > ds.N() {
		t.Errorf("rank-regret %d outside [1, n]", got)
	}
	// The restricted maximum cannot exceed the full-space maximum.
	full, err := RankRegretAdaptive(ds, ids, nil, 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got > 2*full+5 {
		t.Errorf("restricted estimate %d far above full-space estimate %d", got, full)
	}
}
