package store

import (
	"fmt"
	"sync"
	"testing"
)

// TestRestartUnderLoad hammers one store with concurrent mutators while a
// "crash photographer" snapshots the data directory mid-write, then checks
// two things: (1) every crash image recovers to a clean prefix — each
// recovered version is one the live store actually published, never a
// half-applied hybrid — and (2) after a clean close, a reopen reproduces
// the final registry exactly. Run with -race this also exercises the
// store's locking under mutation/snapshot/prune concurrency.
func TestRestartUnderLoad(t *testing.T) {
	dir := t.TempDir()
	// Small snapshot cadence and segments so images catch rotations and
	// prunes in flight, not just appends.
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: 9, SegmentBytes: 1 << 10})

	const workers = 4
	const stepsPerWorker = 40
	// published records every (name, version) -> fingerprint the live store
	// ever made visible; crash images may only contain these.
	var published sync.Map
	record := func(name string, vv *Versions) {
		for _, ds := range vv.List() {
			published.Store(fmt.Sprintf("%s/v%d", name, ds.Version()), ds.Fingerprint())
		}
	}

	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("ds%d", w)
		if err := st.Register(name, makeDS(t, 2, 6, float64(w)/10), 4); err != nil {
			t.Fatal(err)
		}
		if vv, ok := st.Get(name); ok {
			record(name, vv)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("ds%d", w)
			for i := 0; i < stepsPerWorker; i++ {
				var err error
				if i%5 == 4 {
					_, err = st.DeleteRows(name, []int{i % 3}, 4)
				} else {
					_, err = st.AppendRows(name, [][]float64{{float64(i) / stepsPerWorker, float64(w) / workers}}, 4)
				}
				if err != nil {
					t.Errorf("worker %d step %d: %v", w, i, err)
					return
				}
				if vv, ok := st.Get(name); ok {
					record(name, vv)
				}
			}
		}(w)
	}

	// Photograph the directory while the workers run.
	var images []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 12; i++ {
			images = append(images, copyDir(t, dir))
		}
	}()
	wg.Wait()
	<-done

	for i, img := range images {
		back, err := Open(Options{Dir: img, Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("image %d: open: %v", i, err)
		}
		for _, name := range back.Names() {
			vv, _ := back.Get(name)
			for _, ds := range vv.List() {
				key := fmt.Sprintf("%s/v%d", name, ds.Version())
				fp, ok := published.Load(key)
				if !ok {
					t.Fatalf("image %d: recovered %s which was never published", i, key)
				}
				if fp.(uint64) != ds.Fingerprint() {
					t.Fatalf("image %d: %s fingerprint %016x != published %016x", i, key, ds.Fingerprint(), fp)
				}
			}
		}
		back.Close()
	}

	want := digest(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4})
	if got := digest(back); got != want {
		t.Fatalf("final recovery diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
