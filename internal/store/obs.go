package store

import (
	"github.com/rankregret/rankregret/internal/obs"
)

// storeObs holds the store's durability-latency instruments. The struct is
// swapped in atomically by Instrument (the store's sync and heal loops are
// already running by the time a server wires metrics, so a plain field would
// race), and every record site loads it once per operation.
type storeObs struct {
	walAppend   *obs.Histogram // single-record WAL append (buffered write)
	walFsync    *obs.Histogram // fsync, both SyncAlways and interval flushes
	snapCut     *obs.Histogram // snapshot cut: segment rotation + registry view
	snapPersist *obs.Histogram // snapshot encode + write (background)
}

// Instrument registers the store's WAL and snapshot latency histograms with
// reg and starts recording into them. Safe to call while the store is
// serving; recording starts with the next operation.
func (st *Store) Instrument(reg *obs.Registry) {
	st.obsv.Store(&storeObs{
		walAppend: reg.Histogram("rrmd_wal_append_seconds",
			"WAL record append latency (buffered write, excluding fsync).", nil),
		walFsync: reg.Histogram("rrmd_wal_fsync_seconds",
			"WAL fsync latency (per-record under sync=always, periodic under sync=interval).", nil),
		snapCut: reg.Histogram("rrmd_snapshot_cut_seconds",
			"Snapshot cut latency: the segment rotation and registry capture a mutation pays inline.", nil),
		snapPersist: reg.Histogram("rrmd_snapshot_persist_seconds",
			"Snapshot encode+write latency (background persist).", nil),
	})
}
