package store

// Fault-injection tests for the health state machine and the self-healing
// loop: the store must degrade (not wedge forever, not ack-and-lose) under
// disk faults, keep serving reads from memory, and converge back to healthy
// once the fault clears — with the recovered on-disk state byte-identical to
// the durable prefix.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/faultfs"
	"github.com/rankregret/rankregret/internal/obs/obstest"
)

// waitHealthy polls until the healer brings the store back, or fails the
// test after a generous deadline.
func waitHealthy(t *testing.T, st *Store) Health {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h := st.Health(); h.State == HealthHealthy {
			return h
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("store did not heal: %+v", st.Health())
	return Health{}
}

// TestDegradeServeHeal walks the full state machine: a one-shot fsync fault
// degrades the store, reads keep working throughout, mutations are rejected
// with ErrDegraded, and once the fault clears the healer restores healthy —
// after which mutations commit and a crash-copy recovers everything acked.
func TestDegradeServeHeal(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.Disk, 1)
	st := openTest(t, dir, Options{Sync: SyncAlways, SnapshotEvery: -1, FS: inj, HealBackoff: 2 * time.Millisecond})
	if err := st.Register("a", makeDS(t, 3, 6, 0.2), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendRows("a", [][]float64{{0.1, 0.2, 0.3}}, 4); err != nil {
		t.Fatal(err)
	}
	want := digest(st)

	// One fsync fails — a transient device hiccup — then the disk is fine.
	inj.Arm(faultfs.Rule{Op: faultfs.OpSync, Path: segPrefix, Count: 1, Err: syscall.ENOSPC})
	if _, err := st.AppendRows("a", [][]float64{{0.4, 0.5, 0.6}}, 4); err == nil {
		t.Fatal("append through a failing fsync was acked")
	}

	// Degraded: reads serve from memory, mutations bounce with ErrDegraded.
	if h := st.Health(); h.State != HealthDegraded || h.Reason != ReasonWALFailed || h.Since.IsZero() {
		t.Fatalf("health after fsync fault = %+v", h)
	}
	if got := digest(st); got != want {
		t.Fatalf("degraded store changed observable state:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if _, err := st.AppendRows("a", [][]float64{{0.7, 0.8, 0.9}}, 4); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded mutation error = %v, want ErrDegraded", err)
	}

	h := waitHealthy(t, st)
	if h.HealSuccesses < 1 || h.HealAttempts < h.HealSuccesses {
		t.Fatalf("heal counters after recovery = %+v", h)
	}
	if s := st.Summary(); s.State != HealthHealthy || s.Reason != "" {
		t.Fatalf("summary after heal = %+v", s)
	}

	// Healed: mutations commit again, and everything acked — before the
	// fault and after the heal — survives a crash.
	if _, err := st.AppendRows("a", [][]float64{{1.0, 1.1, 1.2}}, 4); err != nil {
		t.Fatalf("mutation after heal: %v", err)
	}
	want = digest(st)
	back := openTest(t, copyDir(t, dir), Options{Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
	if got := digest(back); got != want {
		t.Fatalf("recovery after heal diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if rec := back.Recovery(); rec.TornTail || rec.SegmentGap {
		t.Fatalf("heal left damage visible to recovery: %+v", rec)
	}
}

// TestSnapshotENOSPCDegradesAndHeals is the background-snapshot fault path:
// ENOSPC while persisting an automatic snapshot must surface as
// snapshot_error and degrade the store, and the healer must retry on its
// backoff schedule — not wait for a record threshold a mutation-rejecting
// store can never reach. Recovery leaves no tmp debris and no goroutines.
func TestSnapshotENOSPCDegradesAndHeals(t *testing.T) {
	obstest.ExpectNoGoroutineLeak(t, 3)
	dir := t.TempDir()
	inj := faultfs.New(faultfs.Disk, 1)
	// The first two snapshot persists hit ENOSPC (the automatic one and the
	// healer's first re-sync attempt); the third lands.
	inj.Arm(faultfs.Rule{Op: faultfs.OpWrite, Path: snapPrefix, Count: 2, Err: syscall.ENOSPC})
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: 3, FS: inj, HealBackoff: 2 * time.Millisecond})
	if err := st.Register("a", makeDS(t, 2, 5, 0.3), 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.AppendRows("a", [][]float64{{0.1 * float64(i), 0.2}}, 4); err != nil {
			// The threshold snapshot runs in the background; a mutation racing
			// the degrade may already see ErrDegraded. Both are in-contract.
			if !errors.Is(err, ErrDegraded) {
				t.Fatal(err)
			}
			break
		}
	}

	// Wait for a completed degrade->heal cycle, not just a healthy reading —
	// the automatic snapshot fails in the background, so the store may still
	// be healthy for a moment after the last ack.
	var h Health
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if h = st.Health(); h.State == HealthHealthy && h.HealSuccesses >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Two failed persists (ENOSPC) force at least a second heal attempt —
	// proof the retry comes from the backoff loop, not the next threshold.
	if h.State != HealthHealthy || h.HealAttempts < 2 || h.HealSuccesses < 1 {
		t.Fatalf("heal counters = %+v, want healthy with >=2 attempts via backoff", h)
	}
	if s := st.Summary(); s.SnapshotError != "" {
		t.Fatalf("snapshot_error still set after heal: %q", s.SnapshotError)
	}

	// The failed persists must not leak tmp files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), snapTmpSuffix) {
			t.Fatalf("stale snapshot tmp left behind: %s", e.Name())
		}
	}

	if err := st.Close(); err != nil {
		t.Fatalf("close after heal: %v", err)
	}
	// The obstest leak check registered at the top verifies (after cleanups)
	// that no goroutine survived the degrade/heal/close cycle.
}

// TestTornWriteHeals: a torn append (prefix reaches the disk, then the
// device fails) leaves a partial frame mid-segment. The heal must make later
// acks durable despite replay stopping at the tear — via the re-sync
// snapshot past the damaged segment.
func TestTornWriteHeals(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.Disk, 1)
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: -1, FS: inj, HealBackoff: 2 * time.Millisecond})
	if err := st.Register("a", makeDS(t, 2, 4, 0.4), 4); err != nil {
		t.Fatal(err)
	}
	inj.Arm(faultfs.Rule{Op: faultfs.OpWrite, Path: segPrefix, Count: 1, Short: 5, Err: syscall.EIO})
	if _, err := st.AppendRows("a", [][]float64{{0.1, 0.2}}, 4); err == nil {
		t.Fatal("torn append was acked")
	}
	waitHealthy(t, st)
	if _, err := st.AppendRows("a", [][]float64{{0.3, 0.4}}, 4); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	want := digest(st)
	back := openTest(t, copyDir(t, dir), Options{Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
	if got := digest(back); got != want {
		t.Fatalf("post-heal ack lost across crash:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSweepStaleSnapshotTmp: Open removes crash debris matching the
// snapshot tmp naming scheme and leaves foreign files alone.
func TestSweepStaleSnapshotTmp(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever})
	if err := st.Register("a", makeDS(t, 2, 4, 0.5), 4); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, snapshotName(42)+snapTmpSuffix)
	foreign := filepath.Join(dir, "notes.tmp")
	for _, p := range []string{stale, foreign} {
		if err := os.WriteFile(p, []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	openTest(t, dir, Options{Sync: SyncNever})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot tmp not swept (err=%v)", err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign .tmp file touched by sweep: %v", err)
	}
}
