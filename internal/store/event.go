package store

// WAL events: the dataset lifecycle mutations the store makes durable. One
// event is one WAL record payload; replaying the event sequence from a
// snapshot deterministically reproduces the registry, because every apply
// path funnels through the same Store.applyEvent the live mutation API uses.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/rankregret/rankregret/internal/dataset"
)

// EventKind classifies one durable registry mutation.
type EventKind uint8

const (
	// EventRegister (re)binds a name to a dataset, dropping any previous
	// version history under that name. The payload carries the dataset's
	// full binary encoding including its versioning state.
	EventRegister EventKind = iota + 1
	// EventAppend appends rows to the named dataset's current version.
	EventAppend
	// EventDelete removes rows by id from the named dataset's current
	// version (pre-delete indexing, exactly as dataset.Delete documents).
	EventDelete
	// EventDrop removes the name and its whole version history.
	EventDrop
)

// String returns the kind's log label.
func (k EventKind) String() string {
	switch k {
	case EventRegister:
		return "register"
	case EventAppend:
		return "append"
	case EventDelete:
		return "delete"
	case EventDrop:
		return "drop"
	default:
		return "unknown"
	}
}

// Event is one WAL record: a single durable mutation of the registry.
// Exactly the Kind-specific payload field is set.
type Event struct {
	Kind EventKind
	Name string
	// Dataset is the registered dataset (EventRegister only).
	Dataset *dataset.Dataset
	// Rows are the appended rows, each of the dataset's dimension
	// (EventAppend only).
	Rows [][]float64
	// IDs are the deleted row indices, in request order (EventDelete only).
	IDs []int
}

// ErrEventEncoding is wrapped by every decodeEvent failure.
var ErrEventEncoding = errors.New("store: invalid event encoding")

func evErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrEventEncoding, fmt.Sprintf(format, args...))
}

// maxEventName bounds encoded dataset names; the serving layer's names are
// short, and the bound keeps hostile WAL bytes from allocating wildly.
const maxEventName = 4096

// appendTo appends the event's encoding to buf. The encoding is
// self-contained: decodeEvent consumes the whole payload and rejects
// trailing bytes, so one WAL record is exactly one event.
func (ev Event) appendTo(buf []byte) ([]byte, error) {
	putUvarint := func(v uint64) { buf = dataset.AppendUvarint(buf, v) }
	if ev.Name == "" || len(ev.Name) > maxEventName {
		return nil, fmt.Errorf("store: event name %q out of range", ev.Name)
	}
	buf = append(buf, byte(ev.Kind))
	putUvarint(uint64(len(ev.Name)))
	buf = append(buf, ev.Name...)
	switch ev.Kind {
	case EventRegister:
		if ev.Dataset == nil {
			return nil, errors.New("store: register event without a dataset")
		}
		buf = ev.Dataset.AppendBinary(buf)
	case EventAppend:
		if len(ev.Rows) == 0 {
			return nil, errors.New("store: append event without rows")
		}
		d := len(ev.Rows[0])
		putUvarint(uint64(d))
		putUvarint(uint64(len(ev.Rows)))
		for _, row := range ev.Rows {
			if len(row) != d {
				return nil, fmt.Errorf("store: append event with ragged rows (%d vs %d)", len(row), d)
			}
			for _, v := range row {
				n := len(buf)
				buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
				binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(v))
			}
		}
	case EventDelete:
		if len(ev.IDs) == 0 {
			return nil, errors.New("store: delete event without ids")
		}
		putUvarint(uint64(len(ev.IDs)))
		for _, id := range ev.IDs {
			if id < 0 {
				return nil, fmt.Errorf("store: delete event with negative id %d", id)
			}
			putUvarint(uint64(id))
		}
	case EventDrop:
	default:
		return nil, fmt.Errorf("store: unknown event kind %d", ev.Kind)
	}
	return buf, nil
}

// decodeEvent decodes one full WAL record payload. Arbitrary input returns
// an error wrapping ErrEventEncoding; it never panics.
func decodeEvent(data []byte) (Event, error) {
	var ev Event
	if len(data) == 0 {
		return ev, evErr("empty payload")
	}
	ev.Kind = EventKind(data[0])
	off := 1
	nameLen, n := binary.Uvarint(data[off:])
	if n <= 0 || nameLen == 0 || nameLen > maxEventName || nameLen > uint64(len(data)-off-n) {
		return ev, evErr("bad name length")
	}
	off += n
	ev.Name = string(data[off : off+int(nameLen)])
	off += int(nameLen)
	rest := data[off:]
	switch ev.Kind {
	case EventRegister:
		ds, consumed, err := dataset.DecodeBinary(rest)
		if err != nil {
			return ev, evErr("register payload: %v", err)
		}
		if consumed != len(rest) {
			return ev, evErr("register payload has %d trailing bytes", len(rest)-consumed)
		}
		ev.Dataset = ds
	case EventAppend:
		d, n := binary.Uvarint(rest)
		if n <= 0 || d == 0 || d > uint64(len(rest)) {
			return ev, evErr("bad append dimension")
		}
		rest = rest[n:]
		rows, n := binary.Uvarint(rest)
		if n <= 0 || rows == 0 {
			return ev, evErr("bad append row count")
		}
		rest = rest[n:]
		if rows > uint64(len(rest))/(8*d) || len(rest) != int(rows*d)*8 {
			return ev, evErr("append payload is %d bytes, want %d rows x %d attrs", len(rest), rows, d)
		}
		ev.Rows = make([][]float64, rows)
		for i := range ev.Rows {
			row := make([]float64, d)
			for j := range row {
				row[j] = math.Float64frombits(binary.LittleEndian.Uint64(rest))
				rest = rest[8:]
			}
			ev.Rows[i] = row
		}
	case EventDelete:
		count, n := binary.Uvarint(rest)
		if n <= 0 || count == 0 || count > uint64(len(rest)-n) {
			return ev, evErr("bad delete id count")
		}
		rest = rest[n:]
		ev.IDs = make([]int, count)
		for i := range ev.IDs {
			id, n := binary.Uvarint(rest)
			if n <= 0 || id > uint64(math.MaxInt64/2) {
				return ev, evErr("bad delete id at %d", i)
			}
			rest = rest[n:]
			ev.IDs[i] = int(id)
		}
		if len(rest) != 0 {
			return ev, evErr("delete payload has %d trailing bytes", len(rest))
		}
	case EventDrop:
		if len(rest) != 0 {
			return ev, evErr("drop payload has %d trailing bytes", len(rest))
		}
	default:
		return ev, evErr("unknown kind %d", ev.Kind)
	}
	return ev, nil
}
