package store

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
)

func fuzzSeedEvents(t testing.TB) []Event {
	ds := dataset.New(2)
	if err := ds.SetAttrs([]string{"x", "y"}); err != nil {
		t.Fatal(err)
	}
	ds.Append([]float64{0.25, 0.75})
	ds.Append([]float64{1, 0})
	return []Event{
		{Kind: EventRegister, Name: "cars", Dataset: ds},
		{Kind: EventAppend, Name: "cars", Rows: [][]float64{{0.5, 0.5}, {0.125, 0.875}}},
		{Kind: EventDelete, Name: "cars", IDs: []int{0, 2}},
		{Kind: EventDrop, Name: "cars"},
	}
}

// FuzzEventDecode checks the WAL record decoder never panics on arbitrary
// bytes, and that accepted inputs re-encode to a decodable fixed point.
func FuzzEventDecode(f *testing.F) {
	for _, ev := range fuzzSeedEvents(f) {
		enc, err := ev.appendTo(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{byte(EventDrop)})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := decodeEvent(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		enc, err := ev.appendTo(nil)
		if err != nil {
			t.Fatalf("accepted event does not re-encode: %v", err)
		}
		back, err := decodeEvent(enc)
		if err != nil {
			t.Fatalf("re-encoding rejected: %v", err)
		}
		if back.Kind != ev.Kind || back.Name != ev.Name ||
			!rowsBitEqual(back.Rows, ev.Rows) || !reflect.DeepEqual(back.IDs, ev.IDs) {
			t.Fatal("decode -> encode -> decode is not a fixed point")
		}
		if (ev.Dataset == nil) != (back.Dataset == nil) {
			t.Fatal("register payload appeared or vanished across the round trip")
		}
		if ev.Dataset != nil && (back.Dataset.Fingerprint() != ev.Dataset.Fingerprint() ||
			back.Dataset.Version() != ev.Dataset.Version()) {
			t.Fatal("register dataset changed across the round trip")
		}
	})
}

// rowsBitEqual compares row matrices by raw float bits, so NaN payloads
// (legal in arbitrary inputs) compare by identity rather than IEEE ==.
func rowsBitEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// FuzzSnapshotDecode checks the snapshot registry decoder never panics on
// arbitrary bytes and round-trips valid encodings.
func FuzzSnapshotDecode(f *testing.F) {
	reg := map[string]*Versions{}
	ds := dataset.New(3)
	ds.Append([]float64{1, 2, 3})
	snap := ds.Snapshot()
	snap.Append([]float64{4, 5, 6})
	reg["weather"] = &Versions{list: []*dataset.Dataset{ds, snap}}
	other := dataset.New(2)
	other.Append([]float64{0.5, 0.5})
	reg["nba"] = &Versions{list: []*dataset.Dataset{other}}
	f.Add(encodeRegistry(registryView(reg)))
	f.Add(encodeRegistry(nil))
	f.Add([]byte{0x01})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		reg, err := decodeRegistry(data)
		if err != nil {
			return
		}
		enc := encodeRegistry(registryView(reg))
		back, err := decodeRegistry(enc)
		if err != nil {
			t.Fatalf("re-encoding rejected: %v", err)
		}
		if len(back) != len(reg) {
			t.Fatalf("round trip changed dataset count %d -> %d", len(reg), len(back))
		}
		if !bytes.Equal(encodeRegistry(registryView(back)), enc) {
			t.Fatal("encode(decode(encode)) is not a fixed point")
		}
		for name, vv := range reg {
			bv, ok := back[name]
			if !ok || len(bv.list) != len(vv.list) {
				t.Fatalf("round trip lost versions of %q", name)
			}
			for i := range vv.list {
				if bv.list[i].Fingerprint() != vv.list[i].Fingerprint() {
					t.Fatalf("round trip changed %q version %d", name, i)
				}
			}
		}
	})
}
