package store

// Snapshots: periodic full encodings of the registry that bound WAL replay
// cost. A snapshot file is named for the WAL segment sequence replay must
// continue from — snapshotting rotates to a fresh segment S, then writes
// snap-S, so recovery is "load snap-S, replay segments >= S". Files are
// written to a temp name, fsynced, and renamed, so a crash mid-snapshot
// leaves the previous snapshot intact; the CRC trailer catches anything
// short of that.
//
// On-disk layout:
//
//	8 bytes  magic "rrsnaps1"
//	8 bytes  LE payload length
//	payload  registry encoding (see encodeRegistry)
//	4 bytes  LE CRC32 (IEEE) of the payload

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/faultfs"
)

const snapMagic = "rrsnaps1"

// registryView captures a registry as an immutable map of version-slice
// copies — the shape snapshot cuts hand to the background encoder (listed
// datasets are never mutated in place, so pointer copies suffice).
func registryView(reg map[string]*Versions) map[string][]*dataset.Dataset {
	view := make(map[string][]*dataset.Dataset, len(reg))
	for name, vv := range reg {
		view[name] = vv.List()
	}
	return view
}

// encodeRegistry serializes a registry view: every name's retained version
// history, oldest version first, names in sorted order for determinism.
func encodeRegistry(view map[string][]*dataset.Dataset) []byte {
	names := make([]string, 0, len(view))
	for name := range view {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf []byte
	putUvarint := func(v uint64) { buf = dataset.AppendUvarint(buf, v) }
	putUvarint(uint64(len(names)))
	for _, name := range names {
		versions := view[name]
		putUvarint(uint64(len(name)))
		buf = append(buf, name...)
		putUvarint(uint64(len(versions)))
		for _, ds := range versions {
			buf = ds.AppendBinary(buf)
		}
	}
	return buf
}

// decodeRegistry is the inverse of encodeRegistry. Arbitrary input returns
// an error; it never panics (the snapshot fuzz target's contract).
func decodeRegistry(data []byte) (map[string]*Versions, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 || count > uint64(len(data)) {
		return nil, evErr("bad registry dataset count")
	}
	data = data[n:]
	reg := make(map[string]*Versions, count)
	for i := uint64(0); i < count; i++ {
		nameLen, n := binary.Uvarint(data)
		if n <= 0 || nameLen == 0 || nameLen > maxEventName || nameLen > uint64(len(data)-n) {
			return nil, evErr("bad registry name length")
		}
		name := string(data[n : n+int(nameLen)])
		data = data[n+int(nameLen):]
		nVersions, n := binary.Uvarint(data)
		if n <= 0 || nVersions == 0 || nVersions > uint64(len(data)) {
			return nil, evErr("bad version count for %q", name)
		}
		data = data[n:]
		if _, dup := reg[name]; dup {
			return nil, evErr("duplicate registry name %q", name)
		}
		vv := &Versions{}
		for v := uint64(0); v < nVersions; v++ {
			ds, consumed, err := dataset.DecodeBinary(data)
			if err != nil {
				return nil, evErr("dataset %q version %d: %v", name, v, err)
			}
			data = data[consumed:]
			vv.list = append(vv.list, ds)
		}
		reg[name] = vv
	}
	if len(data) != 0 {
		return nil, evErr("registry payload has %d trailing bytes", len(data))
	}
	return reg, nil
}

// snapTmpSuffix marks an in-progress snapshot file; the atomic rename to
// the final name is what publishes it.
const snapTmpSuffix = ".tmp"

// sweepSnapshotTmp removes stale snapshot tmp files — the debris of a crash
// mid-snapshot, which the atomic-rename protocol otherwise leaves on disk
// forever. Called from Open, before any new snapshot can be in flight, so
// every snap-*.snap.tmp present is guaranteed stale. Returns how many were
// removed; removal failures are reported to log and otherwise ignored (a
// stale tmp is inert — the next sweep retries).
func sweepSnapshotTmp(fs faultfs.FS, dir string, log *slog.Logger) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapTmpSuffix) {
			continue
		}
		if _, ok := parseSeq(strings.TrimSuffix(name, snapTmpSuffix), snapPrefix, snapSuffix); !ok {
			continue // not ours; leave foreign files alone
		}
		if err := fs.Remove(filepath.Join(dir, name)); err != nil {
			log.Warn("store: sweeping stale snapshot tmp failed", "file", name, "err", err)
			continue
		}
		removed++
	}
	return removed
}

// writeSnapshot atomically writes the registry payload as snap-<seq>.
func writeSnapshot(fs faultfs.FS, dir string, seq uint64, payload []byte) error {
	final := filepath.Join(dir, snapshotName(seq))
	tmp := final + snapTmpSuffix
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	var hdr [16]byte
	copy(hdr[:8], snapMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(payload)))
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(payload))
	err = func() error {
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := f.Write(payload); err != nil {
			return err
		}
		if _, err := f.Write(trailer[:]); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Best-effort: a failed remove leaves a stale tmp, which the next
		// Open's sweep deletes.
		_ = fs.Remove(tmp)
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	syncDir(dir)
	return nil
}

// readSnapshot loads and validates snap-<seq>, returning the registry
// payload.
func readSnapshot(dir string, seq uint64) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapshotName(seq)))
	if err != nil {
		return nil, err
	}
	if len(data) < 20 || string(data[:8]) != snapMagic {
		return nil, evErr("snapshot %d: bad header", seq)
	}
	plen := binary.LittleEndian.Uint64(data[8:])
	if plen != uint64(len(data)-20) {
		return nil, evErr("snapshot %d: payload length %d in a %d-byte file", seq, plen, len(data))
	}
	payload := data[16 : 16+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[16+plen:]) {
		return nil, evErr("snapshot %d: checksum mismatch", seq)
	}
	return payload, nil
}
