// Package store is the durability layer of the serving stack: a versioned
// named-dataset registry whose every lifecycle mutation (register, append,
// delete, drop) is appended to a checksummed write-ahead log before it is
// published, with periodic full snapshots bounding replay cost. A Store
// reopened over the same directory recovers the exact pre-crash registry —
// retained version windows, fingerprints, lineages, and delta logs are
// byte-identical — tolerating a torn WAL tail from a crash mid-write by
// recovering the longest durable prefix.
//
// The live mutation API and crash replay funnel through the same
// apply helpers, so the recovered state cannot drift from what a process
// that never crashed would hold. A Store with no directory is ephemeral:
// the same API, durability off — which lets serving layers use one code
// path unconditionally.
package store

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/faultfs"
	"github.com/rankregret/rankregret/internal/obs"
	"github.com/rankregret/rankregret/internal/xrand"
)

// Defaults for Options zero values.
const (
	// DefaultRetain is the retained-version window used when Options.Retain
	// and per-call retain are unset.
	DefaultRetain = 8
	// DefaultSegmentBytes is the WAL rotation threshold.
	DefaultSegmentBytes = 8 << 20
	// DefaultSnapshotEvery is how many WAL records separate automatic
	// snapshots.
	DefaultSnapshotEvery = 1024
)

// Store errors surfaced to serving layers.
var (
	// ErrUnknownDataset is wrapped by mutations naming an unregistered
	// dataset.
	ErrUnknownDataset = errors.New("store: unknown dataset")
	// ErrWouldEmpty rejects deletes that would leave a dataset with no rows
	// (the registry never serves an empty dataset).
	ErrWouldEmpty = errors.New("store: refusing to delete every row")
	// ErrDegraded is wrapped by mutations rejected while the store is in the
	// degraded state: durability cannot currently be promised, so mutations
	// are refused while reads keep serving from memory. The self-healing
	// loop clears the state once the underlying fault passes; serving layers
	// should map this to 503 + Retry-After.
	ErrDegraded = errors.New("store: degraded, mutations temporarily rejected")
)

// HealthState is the store's position in the health state machine:
//
//	healthy --(WAL write/sync failure, snapshot failure)--> degraded
//	degraded --(self-heal: fresh segment + re-sync snapshot)--> healthy
//	healthy|degraded --(Close)--> closed
//
// In degraded, reads (lookups, solves over registered datasets) keep
// working from memory; mutations fail fast with ErrDegraded.
type HealthState string

const (
	HealthHealthy  HealthState = "healthy"
	HealthDegraded HealthState = "degraded"
	HealthClosed   HealthState = "closed"
)

// Degradation reasons, machine-readable for /healthz and alerting.
const (
	// ReasonWALFailed: a WAL write or fsync failed; the writer is wedged
	// until the healer replaces it.
	ReasonWALFailed = "wal_failed"
	// ReasonSnapshotError: a snapshot cut or persist failed; replay cost is
	// unbounded (and the disk is likely full) until a snapshot lands.
	ReasonSnapshotError = "snapshot_error"
)

// Health is the machine-readable health report behind /healthz and
// GET /v1/store/status.
type Health struct {
	State  HealthState `json:"state"`
	Reason string      `json:"reason,omitempty"`
	Detail string      `json:"detail,omitempty"`
	// Since is when the current degraded episode began (zero when healthy).
	Since time.Time `json:"since,omitzero"`
	// HealAttempts / HealSuccesses count self-healing tries and completed
	// recoveries over the store's lifetime.
	HealAttempts  uint64 `json:"heal_attempts"`
	HealSuccesses uint64 `json:"heal_successes"`
}

// Options configures Open.
type Options struct {
	// Dir is the data directory. Empty means ephemeral: the full registry
	// API with durability disabled.
	Dir string
	// Retain caps each dataset's version history during replay (live
	// mutations pass their own retain). 0 = DefaultRetain. Reopening with a
	// different retain than the serving layer uses live will recover a
	// differently-sized window; keep them equal.
	Retain int
	// SegmentBytes rotates the WAL segment when it would exceed this size
	// (0 = DefaultSegmentBytes).
	SegmentBytes int64
	// SnapshotEvery writes an automatic snapshot after this many WAL
	// records (0 = DefaultSnapshotEvery, negative = only on Close/Compact).
	SnapshotEvery int
	// Sync is the WAL durability policy.
	Sync SyncPolicy
	// SyncInterval is the flush period under SyncInterval (0 = 100ms).
	SyncInterval time.Duration
	// FS is the write-side filesystem seam (nil = the real disk). Tests and
	// the chaos harness pass a faultfs.Injector here; reads always go to the
	// OS directly (see faultfs).
	FS faultfs.FS
	// HealBackoff is the self-healing loop's initial retry delay after a
	// failed heal attempt (0 = 100ms); it doubles with jitter up to
	// HealMaxBackoff (0 = 5s).
	HealBackoff    time.Duration
	HealMaxBackoff time.Duration
	// Logger, when set, receives recovery, degradation, and pruning
	// diagnostics as structured records (nil = discard).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.Retain < 1 {
		o.Retain = DefaultRetain
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = DefaultSnapshotEvery
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = faultfs.Disk
	}
	if o.HealBackoff <= 0 {
		o.HealBackoff = 100 * time.Millisecond
	}
	if o.HealMaxBackoff <= 0 {
		o.HealMaxBackoff = 5 * time.Second
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// Versions is one registry entry: the retained version history of a logical
// dataset, oldest first. Every listed version is immutable once published;
// mutations snapshot the newest version, apply, and publish, so solves
// pinned to any retained version stay consistent. Safe for concurrent use.
type Versions struct {
	mu   sync.Mutex
	list []*dataset.Dataset

	// mutateMu serializes store mutations of this dataset end to end
	// (successor build -> WAL -> publish), so the expensive value-matrix
	// copy runs outside the store's global lock without two concurrent
	// mutations snapshotting the same base and losing one of the updates.
	mutateMu sync.Mutex
}

// Current returns the newest version.
func (v *Versions) Current() *dataset.Dataset {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.list[len(v.list)-1]
}

// At resolves a pinned version (0 = current).
func (v *Versions) At(version uint64) (*dataset.Dataset, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if version == 0 {
		return v.list[len(v.list)-1], true
	}
	for _, ds := range v.list {
		if ds.Version() == version {
			return ds, true
		}
	}
	return nil, false
}

// List returns the retained versions, oldest first.
func (v *Versions) List() []*dataset.Dataset {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]*dataset.Dataset(nil), v.list...)
}

// publish appends next as the new current version, trimming history past
// retain.
func (v *Versions) publish(next *dataset.Dataset, retain int) {
	if retain < 1 {
		retain = DefaultRetain
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.list = append(v.list, next)
	if len(v.list) > retain {
		v.list = append([]*dataset.Dataset(nil), v.list[len(v.list)-retain:]...)
	}
}

// RecoveryInfo reports what Open reconstructed from the data directory.
type RecoveryInfo struct {
	// SnapshotSeq is the sequence of the snapshot recovery loaded (0 =
	// started empty).
	SnapshotSeq uint64 `json:"snapshot_seq"`
	// SnapshotDatasets counts the datasets the snapshot held.
	SnapshotDatasets int `json:"snapshot_datasets"`
	// SegmentsReplayed / RecordsReplayed measure the WAL suffix replayed on
	// top of the snapshot.
	SegmentsReplayed int `json:"segments_replayed"`
	RecordsReplayed  int `json:"records_replayed"`
	// RecordsSkipped is non-zero when replay HALTED at a checksummed record
	// that failed to decode or apply (format skew; never an ordinary torn
	// tail): events after it would apply against the wrong base, so
	// recovery keeps the prefix and stops there.
	RecordsSkipped int `json:"records_skipped"`
	// TornTail reports that replay stopped at an invalid record — the
	// expected shape of a crash mid-append — and recovered the prefix.
	TornTail bool `json:"torn_tail"`
	// SegmentGap reports that a WAL segment sequence was missing (lost
	// files); replay stopped at the gap rather than apply events against
	// the wrong base state.
	SegmentGap bool `json:"segment_gap"`
	// Datasets counts registry entries after recovery.
	Datasets int `json:"datasets"`
}

// SegmentInfo describes one on-disk WAL segment.
type SegmentInfo struct {
	Seq   uint64 `json:"seq"`
	Bytes int64  `json:"bytes"`
}

// Status is the machine-readable store health behind rrmd's
// GET /v1/store/status.
type Status struct {
	Enabled bool   `json:"enabled"`
	Dir     string `json:"dir,omitempty"`
	Sync    string `json:"fsync,omitempty"`
	// Segments lists the on-disk WAL segments, ascending; WALBytes is
	// their total size.
	Segments   []SegmentInfo `json:"segments,omitempty"`
	WALBytes   int64         `json:"wal_bytes"`
	SegmentSeq uint64        `json:"segment_seq,omitempty"`
	// Records and Syncs count appends and fsyncs since open.
	Records uint64 `json:"records_appended"`
	Syncs   uint64 `json:"syncs"`
	// SnapshotSeq names the newest snapshot; SnapshotLag is how many WAL
	// records a crash right now would have to replay past it.
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	Snapshots   uint64 `json:"snapshots_written"`
	SnapshotLag int    `json:"snapshot_lag"`
	// SnapshotError carries the last automatic-snapshot failure (empty once
	// one succeeds); a failure also degrades the store until healed.
	SnapshotError string       `json:"snapshot_error,omitempty"`
	Datasets      int          `json:"datasets"`
	Recovery      RecoveryInfo `json:"recovery"`
	Health        Health       `json:"health"`
}

// Summary is the cheap durability digest for hot paths (metrics, health
// probes, batch responses): all in-memory counters, no filesystem access.
// The authoritative per-segment picture is Status.
type Summary struct {
	Enabled       bool   `json:"enabled"`
	Records       uint64 `json:"records_appended"`
	SnapshotLag   int    `json:"snapshot_lag"`
	WALBytes      int64  `json:"wal_bytes"`
	SnapshotError string `json:"snapshot_error,omitempty"`
	// Syncs and Snapshots count completed fsyncs and persisted snapshots
	// since open (carried across heals), so scrapers get lifetime counters
	// without the directory scan Status performs.
	Syncs     uint64 `json:"syncs"`
	Snapshots uint64 `json:"snapshots"`
	// State/Reason mirror Health for metrics scrapers; HealAttempts and
	// HealSuccesses count self-healing activity since open.
	State         HealthState `json:"state"`
	Reason        string      `json:"reason,omitempty"`
	HealAttempts  uint64      `json:"heal_attempts"`
	HealSuccesses uint64      `json:"heal_successes"`
}

// Store is the durable registry. All methods are safe for concurrent use;
// mutations are serialized so WAL order equals publish order.
type Store struct {
	opts Options

	// mu is a write lock for mutations (which hold it across the WAL
	// append + fsync) and a read lock for lookups, so solves and health
	// probes never wait behind each other — only behind the current
	// mutation. Snapshot encoding and writing run OFF this lock entirely
	// (see cutLocked/persistCut): a mutation only takes the cheap cut.
	mu           sync.RWMutex
	reg          map[string]*Versions
	wal          *walWriter // nil when ephemeral
	snapSeq      uint64
	sinceSnap    int
	snapshots    uint64
	snapErr      error         // last snapshot failure (nil once one succeeds)
	snapInFlight bool          // a cut is being persisted in the background
	snapDone     chan struct{} // closed when that persist finishes
	walBytes     int64         // on-disk WAL total, tracked so Summary never stats
	closed       bool

	// Health state machine (see HealthState). Mutations check health under
	// the same lock they hold for the WAL append, so a degraded store can
	// never ack a record replay would lose.
	health         HealthState
	degradedReason string
	degradedDetail string
	degradedSince  time.Time
	healAttempts   uint64
	healSuccesses  uint64

	recovery  RecoveryInfo
	recovered []string // names restored by Open, sorted

	stopSync chan struct{}
	syncDone chan struct{}

	// healKick wakes the healLoop when the store degrades (buffered so
	// enterDegradedLocked never blocks under the lock).
	healKick chan struct{}
	stopHeal chan struct{}
	healDone chan struct{}

	// obsv is the latency instrumentation (see Instrument), swapped in
	// atomically because the sync/heal loops run before metrics are wired.
	obsv atomic.Pointer[storeObs]

	// healthCB is the health-transition hook (see OnHealthChange), swapped
	// in atomically for the same late-wiring reason as obsv.
	healthCB atomic.Pointer[func(HealthState)]
}

// OnHealthChange installs fn to be called on every health transition
// (healthy -> degraded and back). Like Instrument, it is wired after Open —
// the serving layer's flight recorder does not exist yet when the store
// opens. fn runs on its own goroutine, never under store locks, so it may
// freely call back into the store (e.g. to snapshot Health for an incident
// bundle). Transitions are rare (fault and heal), so ordering between a
// degrade and an immediately following heal is preserved only by the
// timestamps fn observes, not by delivery order.
func (st *Store) OnHealthChange(fn func(HealthState)) {
	st.healthCB.Store(&fn)
}

// notifyHealth fires the health hook, if installed. Safe under st.mu.
func (st *Store) notifyHealth(state HealthState) {
	if cb := st.healthCB.Load(); cb != nil {
		go (*cb)(state)
	}
}

// Open recovers (or initializes) a store over opts.Dir: load the newest
// valid snapshot, replay the WAL suffix — tolerating a torn tail — and
// start a fresh segment for this process's appends. An empty Dir returns an
// ephemeral store.
func Open(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	st := &Store{opts: opts, reg: make(map[string]*Versions), health: HealthHealthy}
	if opts.Dir == "" {
		return st, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	if n := sweepSnapshotTmp(opts.FS, opts.Dir, opts.Logger); n > 0 {
		opts.Logger.Info("store: swept stale snapshot tmp files", "count", n)
	}
	startSeq, err := st.loadLatestSnapshot()
	if err != nil {
		return nil, err
	}
	maxSeq, err := st.replayWAL(startSeq)
	if err != nil {
		return nil, err
	}
	st.recovery.Datasets = len(st.reg)
	for name := range st.reg {
		st.recovered = append(st.recovered, name)
	}
	sort.Strings(st.recovered)
	if st.wal, err = openWALWriter(opts.FS, opts.Dir, maxSeq+1); err != nil {
		return nil, err
	}
	// The heal channels exist before the boot snapshot so a boot-snapshot
	// failure's degrade can kick the (not yet started) loop.
	st.healKick = make(chan struct{}, 1)
	st.stopHeal = make(chan struct{})
	st.healDone = make(chan struct{})
	st.walBytes = walBytesOnDisk(opts.Dir)
	st.sinceSnap = st.recovery.RecordsReplayed
	// A boot snapshot is mandatory after a torn or gapped replay: the next
	// recovery's replay would stop at the same damaged record, so anything
	// acked into the fresh segment beyond it would be silently lost — the
	// snapshot moves the replay start past the damage. It is also written
	// after a long clean replay, purely to bound repeated-crash restart
	// cost. Open is single-threaded, so the synchronous cut+persist needs
	// no locking. Failing the snapshot in the mandatory case fails Open:
	// a store that cannot promise durability must not accept writes.
	mustSnap := st.recovery.TornTail || st.recovery.SegmentGap || st.recovery.RecordsSkipped > 0
	if mustSnap || (opts.SnapshotEvery > 0 && st.sinceSnap >= opts.SnapshotEvery) {
		seq, view, err := st.cutLocked()
		if err == nil {
			err = st.finishCutLocked(seq, st.persistCut(seq, view))
		}
		if err != nil {
			if mustSnap {
				// A damaged suffix without a superseding snapshot would lose
				// every mutation acked after this recovery at the NEXT one;
				// a store that cannot promise that must not accept writes.
				st.wal.close()
				return nil, fmt.Errorf("store: boot snapshot: %w", err)
			}
			// The replayed WAL is complete and intact; the snapshot was a
			// replay-cost optimization. finishCutLocked has already degraded
			// the store; the healer retries once it starts below.
			st.opts.Logger.Warn("store: boot snapshot failed, opening degraded", "err", err)
		}
	}
	if opts.Sync == SyncInterval {
		st.stopSync = make(chan struct{})
		st.syncDone = make(chan struct{})
		go st.syncLoop()
	}
	go st.healLoop()
	return st, nil
}

// loadLatestSnapshot loads the newest snapshot that validates, falling back
// to older ones, and returns the WAL sequence replay must continue from.
func (st *Store) loadLatestSnapshot() (uint64, error) {
	seqs, err := listSeqs(st.opts.Dir, snapPrefix, snapSuffix)
	if err != nil {
		return 0, fmt.Errorf("store: listing snapshots: %w", err)
	}
	for i := len(seqs) - 1; i >= 0; i-- {
		seq := seqs[i]
		payload, err := readSnapshot(st.opts.Dir, seq)
		if err != nil {
			st.opts.Logger.Warn("store: snapshot unusable, falling back", "seq", seq, "err", err)
			continue
		}
		reg, err := decodeRegistry(payload)
		if err != nil {
			st.opts.Logger.Warn("store: snapshot undecodable, falling back", "seq", seq, "err", err)
			continue
		}
		st.reg = reg
		st.snapSeq = seq
		st.recovery.SnapshotSeq = seq
		st.recovery.SnapshotDatasets = len(reg)
		return seq, nil
	}
	return 0, nil
}

// errHaltReplay aborts a replay at a record that framed and checksummed
// correctly but could not be decoded or applied (format skew): later events
// were minted against a state that includes it, so applying them to the
// prefix would silently diverge — the same wrong-base hazard as a segment
// gap. Recovery keeps the prefix and stops.
var errHaltReplay = errors.New("store: replay halted")

// replayWAL applies the durable WAL suffix and returns the highest segment
// sequence present on disk (startSeq when none are).
func (st *Store) replayWAL(startSeq uint64) (uint64, error) {
	stats, err := replaySegments(st.opts.Dir, startSeq, func(payload []byte) error {
		ev, err := decodeEvent(payload)
		if err != nil {
			st.recovery.RecordsSkipped++
			st.opts.Logger.Warn("store: replay halted at undecodable WAL record", "err", err)
			return errHaltReplay
		}
		if _, err := st.applyEvent(ev, st.opts.Retain); err != nil {
			st.recovery.RecordsSkipped++
			st.opts.Logger.Warn("store: replay halted at unappliable WAL record",
				"kind", ev.Kind, "dataset", ev.Name, "err", err)
			return errHaltReplay
		}
		return nil
	})
	if errors.Is(err, errHaltReplay) {
		err = nil // prefix recovery; the boot snapshot supersedes the bad suffix
	}
	if err != nil {
		return 0, err
	}
	st.recovery.SegmentsReplayed = stats.segments
	st.recovery.RecordsReplayed = stats.records
	st.recovery.TornTail = stats.torn
	st.recovery.SegmentGap = stats.gap
	if stats.torn {
		st.opts.Logger.Warn("store: discarded torn WAL tail", "segment", stats.tornSeq, "offset", stats.tornOff)
	}
	if stats.gap {
		st.opts.Logger.Warn("store: WAL segment sequence gap; later segments ignored", "segment", stats.tornSeq)
	}
	maxSeq := startSeq
	if seqs, err := listSeqs(st.opts.Dir, segPrefix, segSuffix); err == nil && len(seqs) > 0 {
		if last := seqs[len(seqs)-1]; last > maxSeq {
			maxSeq = last
		}
	}
	return maxSeq, nil
}

// applyEvent mutates the registry per ev. It is the single apply path shared
// by live mutations and replay, which is what makes recovery byte-identical.
// Called with st.mu held.
func (st *Store) applyEvent(ev Event, retain int) (*dataset.Dataset, error) {
	switch ev.Kind {
	case EventRegister:
		st.reg[ev.Name] = &Versions{list: []*dataset.Dataset{ev.Dataset}}
		return ev.Dataset, nil
	case EventDrop:
		if _, ok := st.reg[ev.Name]; !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownDataset, ev.Name)
		}
		delete(st.reg, ev.Name)
		return nil, nil
	case EventAppend:
		vv, ok := st.reg[ev.Name]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownDataset, ev.Name)
		}
		next, err := appendNext(vv.Current(), ev.Rows)
		if err != nil {
			return nil, err
		}
		vv.publish(next, retain)
		return next, nil
	case EventDelete:
		vv, ok := st.reg[ev.Name]
		if !ok {
			return nil, fmt.Errorf("%w %q", ErrUnknownDataset, ev.Name)
		}
		next, err := deleteNext(vv.Current(), ev.IDs)
		if err != nil {
			return nil, err
		}
		vv.publish(next, retain)
		return next, nil
	default:
		return nil, fmt.Errorf("store: unknown event kind %d", ev.Kind)
	}
}

// appendNext validates rows against cur and builds the appended successor
// version without publishing it.
func appendNext(cur *dataset.Dataset, rows [][]float64) (*dataset.Dataset, error) {
	if len(rows) == 0 {
		return nil, errors.New("store: append of zero rows")
	}
	for i, row := range rows {
		if len(row) != cur.Dim() {
			return nil, fmt.Errorf("store: row %d has %d attributes, want %d", i, len(row), cur.Dim())
		}
	}
	next := cur.Snapshot()
	for _, row := range rows {
		next.Append(row)
	}
	return next, nil
}

// deleteNext validates ids against cur and builds the compacted successor
// version without publishing it.
func deleteNext(cur *dataset.Dataset, ids []int) (*dataset.Dataset, error) {
	if len(ids) == 0 {
		return nil, errors.New("store: delete of zero rows")
	}
	for _, id := range ids {
		if id < 0 || id >= cur.N() {
			return nil, fmt.Errorf("store: delete index %d out of range [0, %d)", id, cur.N())
		}
	}
	next := cur.Snapshot()
	if err := next.Delete(ids); err != nil {
		return nil, err
	}
	if next.N() == 0 {
		return nil, ErrWouldEmpty
	}
	return next, nil
}

// encodeEvent prepares ev's WAL payload, or nil for an ephemeral store.
// Callers run it OUTSIDE st.mu: register payloads carry whole datasets, and
// that encode must not stall unrelated readers. st.wal's nil-ness is fixed
// at Open, so the unlocked check is safe.
func (st *Store) encodeEvent(ev Event) ([]byte, error) {
	if st.wal == nil {
		return nil, nil
	}
	return ev.appendTo(nil)
}

// logPayload makes a pre-encoded event durable per the sync policy,
// rotating the segment when it would overflow. Called with st.mu
// write-held, before the event is published. Any failure wedges the writer
// (see walWriter.wedge) and degrades the store; the self-healing loop takes
// it from there.
func (st *Store) logPayload(ctx context.Context, payload []byte) error {
	if st.wal == nil {
		return nil
	}
	so := st.obsv.Load()
	if st.wal.size > int64(len(segMagic)) &&
		st.wal.size+recordHeader+int64(len(payload)) > st.opts.SegmentBytes {
		if err := st.wal.rotate(st.wal.seq + 1); err != nil {
			st.enterDegradedLocked(ReasonWALFailed, err)
			return err
		}
		st.walBytes += int64(len(segMagic))
	}
	appendStart := time.Now()
	endAppend := obs.StartSpan(ctx, "wal_append")
	err := st.wal.append(payload)
	endAppend()
	if so != nil {
		so.walAppend.ObserveSince(appendStart)
	}
	if err != nil {
		st.enterDegradedLocked(ReasonWALFailed, err)
		return err
	}
	st.walBytes += recordHeader + int64(len(payload))
	if st.opts.Sync == SyncAlways {
		syncStart := time.Now()
		endSync := obs.StartSpan(ctx, "wal_fsync")
		err := st.wal.sync()
		endSync()
		if so != nil {
			so.walFsync.ObserveSince(syncStart)
		}
		if err != nil {
			st.enterDegradedLocked(ReasonWALFailed, err)
			return err
		}
	}
	st.sinceSnap++
	return nil
}

// enterDegradedLocked moves the store to degraded and wakes the healer.
// Idempotent: the first fault's reason and detail are kept until healed.
// Called with st.mu write-held.
func (st *Store) enterDegradedLocked(reason string, err error) {
	if st.closed || st.health != HealthHealthy {
		return
	}
	st.health = HealthDegraded
	st.degradedReason = reason
	st.degradedDetail = err.Error()
	st.degradedSince = time.Now()
	st.opts.Logger.Error("store: entering degraded", "reason", reason, "err", err)
	st.notifyHealth(HealthDegraded)
	if st.healKick != nil {
		select {
		case st.healKick <- struct{}{}:
		default:
		}
	}
}

// degradedErrLocked builds the mutation-rejection error for the current
// degraded episode. Callers hold st.mu (read or write).
func (st *Store) degradedErrLocked() error {
	return fmt.Errorf("%w (%s): %s", ErrDegraded, st.degradedReason, st.degradedDetail)
}

// maybeSnapshotLocked starts an automatic snapshot when the WAL has grown
// SnapshotEvery records past the last cut. The triggering mutation is
// already WAL-durable and published, so snapshotting must neither fail it
// nor slow it down: the mutation pays only the cut (a segment rotation and
// a map of pointer copies); encoding and writing the registry run in a
// background goroutine against the immutable captured view. Failures are
// logged and surfaced in Status/Summary, and the next threshold retries.
// Called with st.mu write-held.
func (st *Store) maybeSnapshotLocked(ctx context.Context) {
	if st.wal == nil || st.opts.SnapshotEvery <= 0 || st.sinceSnap < st.opts.SnapshotEvery ||
		st.snapInFlight || st.health != HealthHealthy {
		return
	}
	cutStart := time.Now()
	endCut := obs.StartSpan(ctx, "snapshot_cut")
	seq, view, err := st.cutLocked()
	endCut()
	if so := st.obsv.Load(); so != nil {
		so.snapCut.ObserveSince(cutStart)
	}
	if err != nil {
		// The cut is a WAL rotation; its failure means the WAL writer is
		// wedged, not just the snapshot.
		st.snapErr = err
		st.enterDegradedLocked(ReasonWALFailed, err)
		st.opts.Logger.Error("store: snapshot cut failed", "err", err)
		return
	}
	st.snapInFlight = true
	st.snapDone = make(chan struct{})
	go func() {
		werr := st.persistCut(seq, view)
		st.mu.Lock()
		st.finishCutLocked(seq, werr)
		st.mu.Unlock()
	}()
}

// cutLocked takes a snapshot cut: rotate to a fresh segment S and capture
// an immutable view of the registry as of that boundary (published datasets
// are never mutated in place, so the view is a map of pointer copies).
// Records appended afterwards land in segment S and will be replayed on top
// of the snapshot. Called with st.mu write-held.
func (st *Store) cutLocked() (uint64, map[string][]*dataset.Dataset, error) {
	if err := st.wal.rotate(st.wal.seq + 1); err != nil {
		return 0, nil, err
	}
	st.walBytes += int64(len(segMagic))
	st.sinceSnap = 0
	return st.wal.seq, registryView(st.reg), nil
}

// persistCut encodes and writes a cut as snap-<seq>. It takes no locks —
// the view is immutable — so mutations and reads proceed while it runs.
func (st *Store) persistCut(seq uint64, view map[string][]*dataset.Dataset) error {
	start := time.Now()
	err := writeSnapshot(st.opts.FS, st.opts.Dir, seq, encodeRegistry(view))
	if so := st.obsv.Load(); so != nil {
		so.snapPersist.ObserveSince(start)
	}
	return err
}

// finishCutLocked records a persist attempt's outcome: on success the
// snapshot becomes current and files older than its predecessor (the kept
// fallback) are pruned. Called with st.mu write-held.
func (st *Store) finishCutLocked(seq uint64, err error) error {
	st.snapInFlight = false
	if st.snapDone != nil {
		close(st.snapDone)
		st.snapDone = nil
	}
	if err != nil {
		st.snapErr = err
		// A failed snapshot degrades the store: the disk is likely full, the
		// WAL would grow without bound, and replay cost is no longer bounded.
		// The healer retries (with backoff) rather than waiting for the next
		// record threshold — which a degraded store would never reach, since
		// it rejects mutations.
		st.enterDegradedLocked(ReasonSnapshotError, err)
		st.opts.Logger.Error("store: snapshot failed (healer retries)", "seq", seq, "err", err)
		return err
	}
	prev := st.snapSeq
	st.snapSeq = seq
	st.snapshots++
	st.snapErr = nil
	if prev > 0 {
		st.pruneBelow(prev)
	}
	return nil
}

// awaitSnapshotLocked blocks until no background persist is in flight.
// Called with st.mu write-held; the lock is dropped while waiting and
// re-held on return.
func (st *Store) awaitSnapshotLocked() {
	for st.snapInFlight {
		done := st.snapDone
		st.mu.Unlock()
		<-done
		st.mu.Lock()
	}
}

// pruneBelow removes snapshots and segments with sequence < keep, keeping
// the tracked WAL total in step with the disk.
func (st *Store) pruneBelow(keep uint64) {
	if _, _, err := removeBelow(st.opts.FS, st.opts.Dir, snapPrefix, snapSuffix, keep); err != nil {
		st.opts.Logger.Warn("store: pruning snapshots failed", "err", err)
	}
	_, bytes, err := removeBelow(st.opts.FS, st.opts.Dir, segPrefix, segSuffix, keep)
	st.walBytes -= bytes
	if err != nil {
		st.opts.Logger.Warn("store: pruning WAL segments failed", "err", err)
	}
}

// syncLoop is the SyncInterval flusher. It grabs the current walWriter under
// a read lock (the healer swaps writers), then syncs through the writer's
// own mutex, so a slow fsync stalls only the mutation that races it on w.mu
// — not every reader. Close stops this loop before closing the WAL, so w.f
// stays valid throughout. A sync failure wedges the writer (nothing past the
// last good sync can be promised durable), so the loop degrades the store —
// but only if that writer is still the live one, not a husk the healer has
// already replaced.
func (st *Store) syncLoop() {
	defer close(st.syncDone)
	t := time.NewTicker(st.opts.SyncInterval)
	defer t.Stop()
	var lastErr string
	for {
		select {
		case <-st.stopSync:
			return
		case <-t.C:
			st.mu.RLock()
			w := st.wal
			st.mu.RUnlock()
			syncStart := time.Now()
			err := w.sync()
			if so := st.obsv.Load(); so != nil {
				so.walFsync.ObserveSince(syncStart)
			}
			msg := ""
			if err != nil {
				msg = err.Error()
				st.mu.Lock()
				if w == st.wal {
					st.enterDegradedLocked(ReasonWALFailed, err)
				}
				st.mu.Unlock()
			}
			if msg != lastErr && msg != "" {
				st.opts.Logger.Error("store: interval sync failed", "err", err)
			}
			lastErr = msg
		}
	}
}

// healLoop is the self-healing goroutine: woken by enterDegradedLocked, it
// retries tryHeal with jittered exponential backoff until the store is
// healthy (or closed). One loop per store; started by Open for durable
// stores only.
func (st *Store) healLoop() {
	defer close(st.healDone)
	// Jitter is seeded per store; determinism across runs does not matter
	// here (chaos tests assert convergence, not exact retry times), but the
	// seeded source keeps the store free of global-rand dependencies.
	rng := xrand.New(1)
	for {
		select {
		case <-st.stopHeal:
			return
		case <-st.healKick:
		}
		backoff := st.opts.HealBackoff
		for !st.tryHeal() {
			// Full jitter on [backoff/2, backoff): desynchronizes retry storms
			// when many stores share one recovering disk.
			d := backoff/2 + time.Duration(rng.Float64()*float64(backoff/2))
			select {
			case <-st.stopHeal:
				return
			case <-time.After(d):
			}
			if backoff *= 2; backoff > st.opts.HealMaxBackoff {
				backoff = st.opts.HealMaxBackoff
			}
		}
	}
}

// tryHeal makes one attempt to bring a degraded store back to healthy:
// open a fresh WAL segment past everything on disk, swap it in for the
// wedged writer, and cut a mandatory re-sync snapshot at the fresh segment's
// sequence. The snapshot is what makes the heal sound — replay cannot cross
// the damaged tail of the old WAL, so nothing appended to the new segment is
// recoverable until a snapshot at its sequence supersedes the damage.
// Mutations stay rejected throughout (health is still degraded while the
// snapshot persists), so the fresh segment cannot take appends early.
//
// Returns true when there is nothing left to do: healed, already healthy, or
// closed. Returns false when the attempt failed and the caller should back
// off and retry.
func (st *Store) tryHeal() bool {
	st.mu.Lock()
	if st.closed || st.health != HealthDegraded {
		st.mu.Unlock()
		return true
	}
	// A background persist may still be in flight from before the degrade;
	// let it land (or fail) first so it cannot finish after our re-sync
	// snapshot and regress snapSeq. The lock is dropped while waiting.
	st.awaitSnapshotLocked()
	if st.closed || st.health != HealthDegraded {
		st.mu.Unlock()
		return true
	}
	st.healAttempts++
	attempt := st.healAttempts
	// The fresh segment must clear both the wedged writer's sequence and
	// anything on disk: a previous failed attempt can have left a segment
	// file at a sequence the wedged writer never reached, and its O_EXCL
	// name would fail this open.
	newSeq := st.wal.seq + 1
	if seqs, err := listSeqs(st.opts.Dir, segPrefix, segSuffix); err == nil && len(seqs) > 0 {
		if last := seqs[len(seqs)-1]; last >= newSeq {
			newSeq = last + 1
		}
	}
	w, err := openWALWriter(st.opts.FS, st.opts.Dir, newSeq)
	if err != nil {
		st.mu.Unlock()
		st.opts.Logger.Warn("store: heal attempt failed opening fresh segment", "attempt", attempt, "err", err)
		return false
	}
	// Carry the lifetime counters so records/syncs never go backwards in
	// metrics across a heal.
	old := st.wal
	w.records, w.bytes = old.records, old.bytes
	w.syncs.Store(old.syncs.Load())
	st.wal = w
	_ = old.close() // best-effort; the writer is wedged anyway
	// Persist the re-sync snapshot off-lock like any other cut, holding the
	// in-flight slot so Snapshot/Close wait for it.
	seq, view := w.seq, registryView(st.reg)
	st.sinceSnap = 0
	st.snapInFlight = true
	st.snapDone = make(chan struct{})
	st.mu.Unlock()
	werr := st.persistCut(seq, view)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finishCutLocked(seq, werr) != nil {
		// Still degraded (the reason/detail of the original fault stand);
		// the next attempt will open yet another segment past this one.
		return false
	}
	// Prune can now see the true on-disk picture; re-derive the tracked
	// total instead of patching it through the swap.
	st.walBytes = walBytesOnDisk(st.opts.Dir)
	if st.closed {
		return true
	}
	st.healSuccesses++
	st.health = HealthHealthy
	st.opts.Logger.Info("store: healed",
		"degraded_for", time.Since(st.degradedSince).Round(time.Millisecond),
		"reason", st.degradedReason, "segment", seq)
	st.degradedReason, st.degradedDetail, st.degradedSince = "", "", time.Time{}
	st.notifyHealth(HealthHealthy)
	return true
}

// Names returns the registered dataset names, sorted.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	names := make([]string, 0, len(st.reg))
	for name := range st.reg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered datasets.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.reg)
}

// Get returns the version history registered under name.
func (st *Store) Get(name string) (*Versions, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	vv, ok := st.reg[name]
	return vv, ok
}

// RecoveredNames returns the dataset names Open restored from disk, sorted —
// the serving layer's warm-start worklist.
func (st *Store) RecoveredNames() []string {
	return append([]string(nil), st.recovered...)
}

// Recovery reports what Open reconstructed.
func (st *Store) Recovery() RecoveryInfo { return st.recovery }

// Register durably (re)binds name to ds, dropping any previous history
// under that name. The caller must not mutate ds afterwards except through
// the store.
func (st *Store) Register(name string, ds *dataset.Dataset, retain int) error {
	return st.RegisterCtx(context.Background(), name, ds, retain)
}

// RegisterCtx is Register with a request context: when ctx carries a trace,
// the store stage (and its WAL append/fsync and snapshot cut inside) are
// recorded as spans. The context does not cancel the mutation — durability
// operations run to completion once started.
func (st *Store) RegisterCtx(ctx context.Context, name string, ds *dataset.Dataset, retain int) error {
	defer obs.StartSpan(ctx, "store")()
	if name == "" {
		return errors.New("store: dataset name must be non-empty")
	}
	if ds == nil || ds.N() == 0 {
		return errors.New("store: dataset is empty")
	}
	// The O(n*d) dataset encode runs before the lock; only the WAL append
	// and the map swap happen under it.
	payload, err := st.encodeEvent(Event{Kind: EventRegister, Name: name, Dataset: ds})
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if st.health == HealthDegraded {
		return st.degradedErrLocked()
	}
	if err := st.logPayload(ctx, payload); err != nil {
		return err
	}
	st.reg[name] = &Versions{list: []*dataset.Dataset{ds}}
	st.maybeSnapshotLocked(ctx)
	return nil
}

// Drop durably removes name and its whole version history.
func (st *Store) Drop(name string) error {
	return st.DropCtx(context.Background(), name)
}

// DropCtx is Drop with a request context for trace spans (see RegisterCtx).
func (st *Store) DropCtx(ctx context.Context, name string) error {
	defer obs.StartSpan(ctx, "store")()
	payload, err := st.encodeEvent(Event{Kind: EventDrop, Name: name})
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return ErrClosed
	}
	if st.health == HealthDegraded {
		return st.degradedErrLocked()
	}
	if _, ok := st.reg[name]; !ok {
		return fmt.Errorf("%w %q", ErrUnknownDataset, name)
	}
	if err := st.logPayload(ctx, payload); err != nil {
		return err
	}
	delete(st.reg, name)
	st.maybeSnapshotLocked(ctx)
	return nil
}

// mutate is the shared live-mutation path: build the successor version and
// the WAL payload OUTSIDE the global lock (the value-matrix copy and the
// event encode are the expensive parts, and they must not stall reads or
// mutations of other datasets), then append + publish under it. The
// per-dataset mutateMu serializes same-dataset mutations end to end so two
// builders never race on one base version.
func (st *Store) mutate(ctx context.Context, name string, build func(cur *dataset.Dataset) (*dataset.Dataset, error), ev Event, retain int) (*dataset.Dataset, error) {
	defer obs.StartSpan(ctx, "store")()
	vv, ok := st.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownDataset, name)
	}
	vv.mutateMu.Lock()
	defer vv.mutateMu.Unlock()
	next, err := build(vv.Current())
	if err != nil {
		return nil, err
	}
	payload, err := st.encodeEvent(ev)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil, ErrClosed
	}
	if st.health == HealthDegraded {
		return nil, st.degradedErrLocked()
	}
	// The entry may have been dropped or replaced while we were building;
	// publishing onto a detached history would silently lose the mutation.
	if cur, live := st.reg[name]; !live || cur != vv {
		return nil, fmt.Errorf("%w %q (dropped or replaced concurrently)", ErrUnknownDataset, name)
	}
	if err := st.logPayload(ctx, payload); err != nil {
		return nil, err
	}
	vv.publish(next, retain)
	st.maybeSnapshotLocked(ctx)
	return next, nil
}

// AppendRows durably appends rows to name's current version and publishes
// the successor, returning it. The WAL record is written (and, under
// SyncAlways, synced) before the new version becomes visible.
func (st *Store) AppendRows(name string, rows [][]float64, retain int) (*dataset.Dataset, error) {
	return st.AppendRowsCtx(context.Background(), name, rows, retain)
}

// AppendRowsCtx is AppendRows with a request context for trace spans (see
// RegisterCtx).
func (st *Store) AppendRowsCtx(ctx context.Context, name string, rows [][]float64, retain int) (*dataset.Dataset, error) {
	return st.mutate(ctx, name, func(cur *dataset.Dataset) (*dataset.Dataset, error) {
		// Validation happens in the builder, so the WAL never holds an
		// event the registry rejected.
		return appendNext(cur, rows)
	}, Event{Kind: EventAppend, Name: name, Rows: rows}, retain)
}

// DeleteRows durably removes rows by id from name's current version and
// publishes the successor, returning it.
func (st *Store) DeleteRows(name string, ids []int, retain int) (*dataset.Dataset, error) {
	return st.DeleteRowsCtx(context.Background(), name, ids, retain)
}

// DeleteRowsCtx is DeleteRows with a request context for trace spans (see
// RegisterCtx).
func (st *Store) DeleteRowsCtx(ctx context.Context, name string, ids []int, retain int) (*dataset.Dataset, error) {
	return st.mutate(ctx, name, func(cur *dataset.Dataset) (*dataset.Dataset, error) {
		return deleteNext(cur, ids)
	}, Event{Kind: EventDelete, Name: name, IDs: ids}, retain)
}

// Snapshot forces a full snapshot now, synchronously: when it returns nil
// the snapshot is on disk and older files are pruned to the fallback.
func (st *Store) Snapshot() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	if st.wal == nil {
		st.mu.Unlock()
		return nil
	}
	if st.health == HealthDegraded {
		// A degraded store's WAL cannot rotate for the cut; the healer owns
		// recovery (and cuts its own snapshot on the way back).
		err := st.degradedErrLocked()
		st.mu.Unlock()
		return err
	}
	st.awaitSnapshotLocked()
	// awaitSnapshotLocked dropped the lock; Close or a degrade may have
	// happened meanwhile, so both checks must repeat.
	if st.closed {
		st.mu.Unlock()
		return ErrClosed
	}
	if st.health == HealthDegraded {
		err := st.degradedErrLocked()
		st.mu.Unlock()
		return err
	}
	seq, view, err := st.cutLocked()
	if err != nil {
		st.snapErr = err
		st.mu.Unlock()
		return err
	}
	// Claim the in-flight slot so concurrent automatic snapshots hold off,
	// then persist outside the lock like they do.
	st.snapInFlight = true
	st.snapDone = make(chan struct{})
	st.mu.Unlock()
	werr := st.persistCut(seq, view)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.finishCutLocked(seq, werr)
}

// Compact writes a snapshot, verifies it reads back, and prunes every older
// snapshot and WAL segment — the offline `rrmd -compact` mode. Unlike
// automatic snapshots it keeps no fallback, which is why it verifies first.
func (st *Store) Compact() error {
	st.mu.RLock()
	enabled := st.wal != nil
	st.mu.RUnlock()
	if !enabled {
		return nil
	}
	if err := st.Snapshot(); err != nil {
		return err
	}
	st.mu.RLock()
	seq := st.snapSeq
	st.mu.RUnlock()
	payload, err := readSnapshot(st.opts.Dir, seq)
	if err != nil {
		return fmt.Errorf("store: compact verification: %w", err)
	}
	if _, err := decodeRegistry(payload); err != nil {
		return fmt.Errorf("store: compact verification: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.pruneBelow(st.snapSeq)
	return nil
}

// healthLocked builds the Health report. Called with st.mu held (read or
// write).
func (st *Store) healthLocked() Health {
	h := Health{
		State:         st.health,
		HealAttempts:  st.healAttempts,
		HealSuccesses: st.healSuccesses,
	}
	if st.health == HealthDegraded {
		h.Reason = st.degradedReason
		h.Detail = st.degradedDetail
		h.Since = st.degradedSince
	}
	return h
}

// Health reports the store's position in the health state machine; safe to
// call on every request (no filesystem access).
func (st *Store) Health() Health {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.healthLocked()
}

// Summary reports the in-memory durability counters without touching the
// filesystem; safe to call on every request.
func (st *Store) Summary() Summary {
	st.mu.RLock()
	defer st.mu.RUnlock()
	s := Summary{
		Enabled:       st.wal != nil,
		SnapshotLag:   st.sinceSnap,
		WALBytes:      st.walBytes,
		Snapshots:     st.snapshots,
		State:         st.health,
		Reason:        st.degradedReason,
		HealAttempts:  st.healAttempts,
		HealSuccesses: st.healSuccesses,
	}
	if st.wal != nil {
		s.Records = st.wal.records
		s.Syncs = st.wal.syncs.Load()
	}
	if st.snapErr != nil {
		s.SnapshotError = st.snapErr.Error()
	}
	return s
}

// Status snapshots the store's durability health, including the on-disk
// segment listing. The directory scan runs outside the store lock, so a
// slow disk delays only the caller, never mutations or lookups.
func (st *Store) Status() Status {
	st.mu.RLock()
	s := Status{
		Enabled:     st.wal != nil,
		Dir:         st.opts.Dir,
		SnapshotSeq: st.snapSeq,
		Snapshots:   st.snapshots,
		SnapshotLag: st.sinceSnap,
		Datasets:    len(st.reg),
		Recovery:    st.recovery,
		Health:      st.healthLocked(),
	}
	if st.snapErr != nil {
		s.SnapshotError = st.snapErr.Error()
	}
	if st.wal != nil {
		s.Sync = st.opts.Sync.String()
		if st.opts.Sync == SyncInterval {
			s.Sync = fmt.Sprintf("interval:%s", st.opts.SyncInterval)
		}
		s.SegmentSeq = st.wal.seq
		s.Records = st.wal.records
		s.Syncs = st.wal.syncs.Load()
	}
	st.mu.RUnlock()
	if !s.Enabled {
		return s
	}
	if seqs, err := listSeqs(s.Dir, segPrefix, segSuffix); err == nil {
		for _, seq := range seqs {
			info, err := os.Stat(filepath.Join(s.Dir, segmentName(seq)))
			if err != nil {
				continue
			}
			s.Segments = append(s.Segments, SegmentInfo{Seq: seq, Bytes: info.Size()})
			s.WALBytes += info.Size()
		}
	}
	return s
}

// Close flushes the WAL, writes a final snapshot when records have landed
// since the last one, and closes the segment. A clean Close makes the next
// Open replay-free. Idempotent.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.health = HealthClosed
	st.mu.Unlock()
	if st.stopHeal != nil {
		close(st.stopHeal)
		<-st.healDone
	}
	if st.stopSync != nil {
		close(st.stopSync)
		<-st.syncDone
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.wal == nil {
		return nil
	}
	st.awaitSnapshotLocked() // closed is set, so no new cut can start
	var err error
	if st.sinceSnap > 0 {
		// Final synchronous snapshot; no concurrency left, so persisting
		// with the lock held is fine.
		if seq, view, cerr := st.cutLocked(); cerr != nil {
			err = cerr
		} else {
			err = st.finishCutLocked(seq, st.persistCut(seq, view))
		}
	}
	if cerr := st.wal.close(); err == nil {
		err = cerr
	}
	return err
}
