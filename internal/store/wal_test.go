package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/faultfs"
)

// copyDir clones the store files of src into a fresh temp dir, skipping
// files that vanish mid-copy (concurrent pruning).
func copyDir(t testing.TB, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// buildCorpus drives a deterministic event sequence against a single-segment
// store and records, after every event, the registry digest and the
// segment's byte length — the durable-prefix boundary a crash at any later
// byte must recover to.
func buildCorpus(t *testing.T) (segPath string, boundaries []int64, digests []string) {
	t.Helper()
	dir := t.TempDir()
	// One huge segment, no automatic snapshots: every crash point replays
	// from the log alone, which is the path under test.
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: -1, SegmentBytes: 1 << 30})
	segPath = filepath.Join(dir, segmentName(st.Status().SegmentSeq))

	record := func() {
		info, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, info.Size())
		digests = append(digests, digest(st))
	}
	record() // state 0: empty registry, bare segment header

	step := 0
	apply := func(f func() error) {
		t.Helper()
		step++
		if err := f(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		record()
	}
	apply(func() error { return st.Register("a", makeDS(t, 2, 5, 0.1), 4) })
	apply(func() error { _, err := st.AppendRows("a", [][]float64{{0.3, 0.7}}, 4); return err })
	apply(func() error { _, err := st.AppendRows("a", [][]float64{{0.9, 0.1}, {0.2, 0.8}}, 4); return err })
	apply(func() error { return st.Register("b", makeDS(t, 3, 4, 0.6), 4) })
	apply(func() error { _, err := st.DeleteRows("a", []int{1, 3}, 4); return err })
	apply(func() error { _, err := st.AppendRows("b", [][]float64{{0.1, 0.2, 0.3}}, 4); return err })
	apply(func() error { return st.Drop("b") })
	apply(func() error { _, err := st.DeleteRows("a", []int{0}, 4); return err })
	// No Close: the segment must stay exactly as the workload left it.
	return segPath, boundaries, digests
}

// expectedAt returns the digest of the longest durable prefix visible in a
// segment truncated (or first-corrupted) at off.
func expectedAt(boundaries []int64, digests []string, off int64) string {
	want := digests[0]
	for i, b := range boundaries {
		if b <= off {
			want = digests[i]
		}
	}
	return want
}

// TestWALTruncationCorpus is the satellite crash corpus: the WAL cut at
// EVERY byte boundary of the log must recover exactly to the last record
// that fully fits — never panic, never half-apply, never report torn state
// for a clean cut at a record boundary as data loss beyond that record.
func TestWALTruncationCorpus(t *testing.T) {
	segPath, boundaries, digests := buildCorpus(t)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(data))
	if total != boundaries[len(boundaries)-1] {
		t.Fatalf("corpus out of sync: file %d bytes, last boundary %d", total, boundaries[len(boundaries)-1])
	}
	// Every byte from the first post-header position through the full file.
	for cut := int64(len(segMagic)); cut <= total; cut++ {
		crash := t.TempDir()
		if err := os.WriteFile(filepath.Join(crash, filepath.Base(segPath)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(Options{Dir: crash, Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		want := expectedAt(boundaries, digests, cut)
		got := digest(st)
		rec := st.Recovery()
		st.Close()
		if got != want {
			t.Fatalf("cut %d of %d: recovered\n%s\nwant\n%s", cut, total, got, want)
		}
		// A cut exactly on a record boundary looks like a clean shorter log;
		// anything else must be reported torn.
		onBoundary := false
		for _, b := range boundaries {
			if b == cut {
				onBoundary = true
			}
		}
		if !onBoundary && !rec.TornTail {
			t.Fatalf("cut %d: mid-record truncation not reported torn (%+v)", cut, rec)
		}
		if rec.RecordsSkipped != 0 {
			t.Fatalf("cut %d: %d records skipped; truncation must never skip", cut, rec.RecordsSkipped)
		}
	}
}

// TestWALCorruptionCorpus flips every byte of the final record in turn: the
// checksum must catch each one and recovery must land on the prefix before
// that record.
func TestWALCorruptionCorpus(t *testing.T) {
	segPath, boundaries, digests := buildCorpus(t)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := boundaries[len(boundaries)-2]
	want := digests[len(digests)-2]
	for off := lastStart; off < int64(len(data)); off++ {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x5a
		crash := t.TempDir()
		if err := os.WriteFile(filepath.Join(crash, filepath.Base(segPath)), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(Options{Dir: crash, Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("corrupt byte %d: open: %v", off, err)
		}
		got := digest(st)
		rec := st.Recovery()
		st.Close()
		// A length-field corruption can make the final record look longer
		// than the file (torn) or shorter with a failing CRC — either way
		// the durable prefix before it must survive untouched.
		if got != want {
			t.Fatalf("corrupt byte %d: recovered\n%s\nwant\n%s", off, got, want)
		}
		if !rec.TornTail {
			t.Fatalf("corrupt byte %d: corruption not reported (%+v)", off, rec)
		}
	}
}

// TestWALWedgesAfterWriteFailure is the durability-contract guard: once an
// append fails, the segment may hold a partial frame, so the writer must
// refuse every later append — a record written after garbage would be acked
// and then silently discarded by replay. The store surfaces that as the
// degraded state; while the fault persists (heal attempts keep failing too),
// mutations stay rejected and state already durable stays recoverable.
func TestWALWedgesAfterWriteFailure(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.Disk, 1)
	st := openTest(t, dir, Options{Sync: SyncAlways, SnapshotEvery: -1, FS: inj, HealBackoff: 2 * time.Millisecond})
	if err := st.Register("a", makeDS(t, 2, 4, 0.5), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendRows("a", [][]float64{{0.1, 0.2}}, 4); err != nil {
		t.Fatal(err)
	}
	want := digest(st)
	// The disk goes away and stays away: every WAL write fails from here on,
	// including the heal loop's attempts to open a fresh segment.
	inj.Arm(faultfs.Rule{Op: faultfs.OpWrite, Path: segPrefix, Err: syscall.EIO})
	if _, err := st.AppendRows("a", [][]float64{{0.3, 0.4}}, 4); err == nil {
		t.Fatal("append with a broken WAL succeeded")
	}
	// Wedged and degraded: later mutations must keep failing rather than
	// append after whatever the failed write left behind.
	if _, err := st.AppendRows("a", [][]float64{{0.5, 0.6}}, 4); err == nil ||
		!errors.Is(err, ErrDegraded) || !strings.Contains(err.Error(), "refusing further writes") {
		t.Fatalf("writer not wedged after failure: %v", err)
	}
	if h := st.Health(); h.State != HealthDegraded || h.Reason != ReasonWALFailed {
		t.Fatalf("health = %+v, want degraded/%s", h, ReasonWALFailed)
	}
	// The failed mutations were never published...
	if got := digest(st); got != want {
		t.Fatalf("failed mutations changed live state:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// ...and everything acked before the failure recovers. The copy races
	// heal attempts that create-and-remove husk segments, which copyDir
	// tolerates; an occasionally caught magicless husk is exactly a torn
	// tail, which recovery already handles.
	back := openTest(t, copyDir(t, dir), Options{Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
	if got := digest(back); got != want {
		t.Fatalf("recovery after wedge diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSegmentGapStopsReplay: the writer produces contiguous segment
// sequences, so a missing one means lost files; replaying past it would
// apply events against the wrong base state. Recovery must stop at the gap
// and say so.
func TestSegmentGapStopsReplay(t *testing.T) {
	dir := t.TempDir()
	// SegmentBytes 1 forces one record per segment: record i lives in
	// segment i exactly.
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: -1, SegmentBytes: 1})
	var digests []string
	if err := st.Register("a", makeDS(t, 2, 4, 0.5), 8); err != nil {
		t.Fatal(err)
	}
	digests = append(digests, digest(st))
	for i := 0; i < 4; i++ {
		if _, err := st.AppendRows("a", [][]float64{{float64(i) / 4, 0.5}}, 8); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, digest(st))
	}
	// Lose record 3's segment.
	crash := copyDir(t, dir)
	if err := os.Remove(filepath.Join(crash, segmentName(3))); err != nil {
		t.Fatal(err)
	}
	back := openTest(t, crash, Options{Sync: SyncNever, Retain: 8, SnapshotEvery: -1})
	rec := back.Recovery()
	if !rec.SegmentGap {
		t.Fatalf("segment gap not reported: %+v", rec)
	}
	if got, want := digest(back), digests[1]; got != want {
		t.Fatalf("replay crossed the gap:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestAcksDurableAcrossSecondRestart guards the double-crash case: after a
// torn-tail recovery, mutations acked into the fresh segment must survive
// ANOTHER crash. Without the mandatory boot snapshot, the second replay
// would stop at the same torn record and never reach the new segment.
func TestAcksDurableAcrossSecondRestart(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncAlways, SnapshotEvery: -1})
	if err := st.Register("a", makeDS(t, 2, 4, 0.5), 4); err != nil {
		t.Fatal(err)
	}
	// Crash #1 tears the live segment's tail.
	seg := filepath.Join(dir, segmentName(st.Status().SegmentSeq))
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0x02, 0x03})
	f.Close()

	// Recovery #1, then a durably-acked mutation; SnapshotEvery is disabled
	// so only the mandatory torn-tail boot snapshot can save it.
	mid := openTest(t, dir, Options{Sync: SyncAlways, Retain: 4, SnapshotEvery: -1})
	if !mid.Recovery().TornTail {
		t.Fatalf("expected torn recovery: %+v", mid.Recovery())
	}
	if _, err := mid.AppendRows("a", [][]float64{{0.9, 0.1}}, 4); err != nil {
		t.Fatal(err)
	}
	want := digest(mid)

	// Crash #2: no Close, just reopen.
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
	if got := digest(back); got != want {
		t.Fatalf("acked mutation lost across second restart:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReplayHaltsAtUnappliableRecord: a record that frames and checksums
// correctly but cannot be applied (format skew) must HALT replay — events
// after it were minted against a state that includes it, and applying them
// to the prefix would silently diverge.
func TestReplayHaltsAtUnappliableRecord(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: -1, SegmentBytes: 1 << 30})
	if err := st.Register("a", makeDS(t, 2, 4, 0.5), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendRows("a", [][]float64{{0.1, 0.2}}, 4); err != nil {
		t.Fatal(err)
	}
	want := digest(st)
	seg := filepath.Join(dir, segmentName(st.Status().SegmentSeq))

	// Hand-frame two well-checksummed records: one unappliable (append to a
	// name that does not exist), then one that WOULD apply — it must not.
	frame := func(ev Event) []byte {
		payload, err := ev.appendTo(nil)
		if err != nil {
			t.Fatal(err)
		}
		var hdr [recordHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		return append(hdr[:], payload...)
	}
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(frame(Event{Kind: EventAppend, Name: "ghost", Rows: [][]float64{{1, 2}}}))
	f.Write(frame(Event{Kind: EventAppend, Name: "a", Rows: [][]float64{{0.9, 0.9}}}))
	f.Close()

	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
	rec := back.Recovery()
	if rec.RecordsSkipped != 1 {
		t.Fatalf("replay did not halt at the unappliable record: %+v", rec)
	}
	if got := digest(back); got != want {
		t.Fatalf("replay continued past the unappliable record:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWALCorruptedSegmentHeader checks a segment whose header was destroyed
// stops replay without taking the process down.
func TestWALCorruptedSegmentHeader(t *testing.T) {
	segPath, _, digests := buildCorpus(t)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	crash := t.TempDir()
	if err := os.WriteFile(filepath.Join(crash, filepath.Base(segPath)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Dir: crash, Sync: SyncNever, Retain: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := digest(st); got != digests[0] {
		t.Fatalf("recovered %q from a headerless segment", got)
	}
	if !st.Recovery().TornTail {
		t.Fatal("header corruption not reported")
	}
}

// TestRotationAcrossSegments checks multi-segment logs replay in order and
// that a torn tail in the FINAL segment does not disturb earlier ones.
func TestRotationAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation roughly every record.
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: -1, SegmentBytes: 64})
	mutateSome(t, st, 4)
	want := digest(st)
	status := st.Status()
	if len(status.Segments) < 3 {
		t.Fatalf("expected several segments, got %+v", status.Segments)
	}
	// Tear the live (= last) segment's tail.
	last := status.Segments[len(status.Segments)-1]
	f, err := os.OpenFile(filepath.Join(dir, segmentName(last.Seq)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, "torn!")
	f.Close()
	crash := copyDir(t, dir)
	back := openTest(t, crash, Options{Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
	if got := digest(back); got != want {
		t.Fatalf("multi-segment recovery diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if rec := back.Recovery(); !rec.TornTail || rec.SegmentsReplayed < 3 {
		t.Fatalf("unexpected recovery shape: %+v", rec)
	}
}
