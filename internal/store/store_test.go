package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
)

// makeDS builds a registrable dataset (version > 0) with deterministic
// content derived from seed.
func makeDS(t *testing.T, d, n int, seed float64) *dataset.Dataset {
	t.Helper()
	ds := dataset.New(d)
	attrs := make([]string, d)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("a%d", j)
	}
	if err := ds.SetAttrs(attrs); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = seed + float64(i*d+j)/float64(n*d)
		}
		ds.Append(row)
	}
	return ds
}

// digest captures the registry's full observable identity: every name's
// retained versions with their version numbers, lineages, and fingerprints.
// Two stores with equal digests are byte-identical for every consumer.
func digest(st *Store) string {
	var b strings.Builder
	for _, name := range st.Names() {
		vv, _ := st.Get(name)
		fmt.Fprintf(&b, "%s:", name)
		for _, ds := range vv.List() {
			fmt.Fprintf(&b, " v%d/l%d/%016x/n%d", ds.Version(), ds.Lineage(), ds.Fingerprint(), ds.N())
		}
		b.WriteString("\n")
	}
	return b.String()
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Dir = dir
	st, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// mutateSome drives a deterministic mixed workload against st.
func mutateSome(t *testing.T, st *Store, retain int) {
	t.Helper()
	if err := st.Register("alpha", makeDS(t, 3, 8, 0.1), retain); err != nil {
		t.Fatal(err)
	}
	if err := st.Register("beta", makeDS(t, 2, 5, 0.7), retain); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := st.AppendRows("alpha", [][]float64{{0.1 * float64(i), 0.2, 0.3}}, retain); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.DeleteRows("alpha", []int{0, 2}, retain); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendRows("beta", [][]float64{{0.5, 0.5}, {0.25, 0.75}}, retain); err != nil {
		t.Fatal(err)
	}
	if err := st.Register("gamma", makeDS(t, 2, 4, 0.3), retain); err != nil {
		t.Fatal(err)
	}
	if err := st.Drop("gamma"); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever})
	mutateSome(t, st, 4)
	want := digest(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4})
	if got := digest(back); got != want {
		t.Fatalf("recovered registry diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// A clean close snapshots, so recovery replays nothing.
	if rec := back.Recovery(); rec.RecordsReplayed != 0 || rec.SnapshotSeq == 0 || rec.TornTail {
		t.Fatalf("clean-close recovery should be replay-free: %+v", rec)
	}
	if got := back.RecoveredNames(); !equalStrings(got, []string{"alpha", "beta"}) {
		t.Fatalf("recovered names %v", got)
	}
}

func TestRecoverWithoutCloseReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncAlways, SnapshotEvery: -1})
	mutateSome(t, st, 4)
	want := digest(st)
	// No Close: simulate a crash by abandoning the store and re-opening the
	// directory (the file handle stays open; Linux is fine with that).
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
	if got := digest(back); got != want {
		t.Fatalf("crash recovery diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
	rec := back.Recovery()
	if rec.RecordsReplayed == 0 || rec.TornTail || rec.RecordsSkipped != 0 {
		t.Fatalf("crash recovery should replay the whole WAL cleanly: %+v", rec)
	}
}

// TestRecoveredDeltaLogContinues checks the property the engine's delta-aware
// cache depends on: a version recovered from disk still answers delta
// windows against its recovered predecessors, and post-recovery mutations
// extend the same log.
func TestRecoveredDeltaLogContinues(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever})
	if err := st.Register("a", makeDS(t, 2, 6, 0.2), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendRows("a", [][]float64{{0.9, 0.1}}, 4); err != nil {
		t.Fatal(err)
	}
	vv, _ := st.Get("a")
	liveOld := vv.List()[0]
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4})
	bv, ok := back.Get("a")
	if !ok {
		t.Fatal("dataset lost")
	}
	versions := bv.List()
	if len(versions) != 2 {
		t.Fatalf("recovered %d versions, want 2", len(versions))
	}
	old, cur := versions[0], versions[1]
	if old.Lineage() != liveOld.Lineage() || old.Lineage() != cur.Lineage() {
		t.Fatal("recovered versions lost their shared lineage")
	}
	deltas, ok := cur.Deltas(old.Version())
	if !ok || len(deltas) != 1 || deltas[0].Kind != dataset.DeltaAppend {
		t.Fatalf("recovered delta window broken: %+v ok=%v", deltas, ok)
	}
	next, err := back.AppendRows("a", [][]float64{{0.4, 0.6}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if deltas, ok := next.Deltas(old.Version()); !ok || len(deltas) == 0 {
		t.Fatalf("post-recovery mutation broke the delta chain: %+v ok=%v", deltas, ok)
	}
}

func TestRetainWindowRecovered(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever, Retain: 3})
	if err := st.Register("a", makeDS(t, 2, 4, 0.5), 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := st.AppendRows("a", [][]float64{{float64(i) / 7, 0.5}}, 3); err != nil {
			t.Fatal(err)
		}
	}
	want := digest(st)
	vv, _ := st.Get("a")
	if n := len(vv.List()); n != 3 {
		t.Fatalf("live retain window is %d, want 3", n)
	}
	st.Close()
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 3})
	if got := digest(back); got != want {
		t.Fatalf("retained window diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotEveryBoundsReplayAndPrunes(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: 5, SegmentBytes: 512})
	if err := st.Register("a", makeDS(t, 2, 4, 0.5), 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 23; i++ {
		if _, err := st.AppendRows("a", [][]float64{{float64(i) / 23, 0.5}}, 4); err != nil {
			t.Fatal(err)
		}
	}
	// Automatic snapshots persist in the background; a synchronous Snapshot
	// waits for any in-flight one, so the counters below are deterministic.
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	status := st.Status()
	if status.Snapshots < 2 {
		t.Fatalf("no automatic snapshots after 24 records: %+v", status)
	}
	if status.SnapshotLag != 0 {
		t.Fatalf("snapshot lag %d after a forced snapshot", status.SnapshotLag)
	}
	// Pruning keeps at most the current snapshot and its predecessor.
	snaps, err := listSeqs(dir, "snap-", ".snap")
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) > 2 {
		t.Fatalf("%d snapshots retained, want <= 2", len(snaps))
	}
	want := digest(st)
	st.Close()
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4, SnapshotEvery: 5})
	if got := digest(back); got != want {
		t.Fatalf("recovered registry diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestCompactLeavesMinimalFootprint(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: -1})
	mutateSome(t, st, 4)
	want := digest(st)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := listSeqs(dir, "snap-", ".snap")
	segs, _ := listSeqs(dir, "wal-", ".log")
	if len(snaps) != 1 || len(segs) != 1 {
		t.Fatalf("after compact: %d snapshots, %d segments, want 1 and 1", len(snaps), len(segs))
	}
	st.Close()
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4})
	if got := digest(back); got != want {
		t.Fatalf("compacted registry diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTornTailDiscardedCleanly(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever, SnapshotEvery: -1})
	mutateSome(t, st, 4)
	want := digest(st)
	status := st.Status()
	seg := filepath.Join(dir, segmentName(status.SegmentSeq))
	// Crash mid-append: garbage lands after the last complete record.
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x10, 0x99}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4, SnapshotEvery: -1})
	if got := digest(back); got != want {
		t.Fatalf("recovery with torn tail diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if rec := back.Recovery(); !rec.TornTail {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
}

func TestEphemeralStore(t *testing.T) {
	st, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mutateSome(t, st, 4)
	if st.Len() != 2 {
		t.Fatalf("len = %d, want 2", st.Len())
	}
	status := st.Status()
	if status.Enabled || status.Records != 0 {
		t.Fatalf("ephemeral store claims durability: %+v", status)
	}
	if names := st.RecoveredNames(); len(names) != 0 {
		t.Fatalf("ephemeral store recovered %v", names)
	}
}

func TestMutationErrors(t *testing.T) {
	st, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Register("a", makeDS(t, 2, 2, 0.5), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendRows("nosuch", [][]float64{{1, 2}}, 4); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("append to unknown: %v", err)
	}
	if _, err := st.DeleteRows("a", []int{0, 1}, 4); !errors.Is(err, ErrWouldEmpty) {
		t.Errorf("delete-all: %v", err)
	}
	if _, err := st.AppendRows("a", [][]float64{{1}}, 4); err == nil {
		t.Error("ragged append accepted")
	}
	if _, err := st.DeleteRows("a", []int{5}, 4); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if err := st.Drop("nosuch"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("drop unknown: %v", err)
	}
	if err := st.Register("", makeDS(t, 2, 2, 0.5), 4); err == nil {
		t.Error("empty name accepted")
	}
	vv, _ := st.Get("a")
	if n := vv.Current().N(); n != 2 {
		t.Fatalf("failed mutations changed the dataset: n=%d", n)
	}
}

func TestClosedStoreRejectsMutations(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever})
	if err := st.Register("a", makeDS(t, 2, 2, 0.5), 4); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := st.AppendRows("a", [][]float64{{1, 2}}, 4); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
	if err := st.Register("b", makeDS(t, 2, 2, 0.5), 4); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: %v", err)
	}
}

func TestSyncIntervalPolicy(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncInterval, SyncInterval: 5 * time.Millisecond})
	if err := st.Register("a", makeDS(t, 2, 3, 0.5), 4); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for st.Status().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in     string
		policy SyncPolicy
		iv     time.Duration
		ok     bool
	}{
		{"always", SyncAlways, 0, true},
		{"", SyncAlways, 0, true},
		{"never", SyncNever, 0, true},
		{"100ms", SyncInterval, 100 * time.Millisecond, true},
		{"2s", SyncInterval, 2 * time.Second, true},
		{"-5ms", 0, 0, false},
		{"banana", 0, 0, false},
	}
	for _, c := range cases {
		p, iv, err := ParseSyncPolicy(c.in)
		if c.ok != (err == nil) || (c.ok && (p != c.policy || iv != c.iv)) {
			t.Errorf("ParseSyncPolicy(%q) = %v,%v,%v want %v,%v ok=%v", c.in, p, iv, err, c.policy, c.iv, c.ok)
		}
	}
}

// TestRegisterReplaces checks re-registering a name drops the old history
// durably.
func TestRegisterReplaces(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir, Options{Sync: SyncNever})
	if err := st.Register("a", makeDS(t, 2, 3, 0.1), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendRows("a", [][]float64{{0.5, 0.5}}, 4); err != nil {
		t.Fatal(err)
	}
	if err := st.Register("a", makeDS(t, 3, 2, 0.9), 4); err != nil {
		t.Fatal(err)
	}
	want := digest(st)
	vv, _ := st.Get("a")
	if len(vv.List()) != 1 || vv.Current().Dim() != 3 {
		t.Fatalf("re-register did not replace: %v", vv.List())
	}
	st.Close()
	back := openTest(t, dir, Options{Sync: SyncNever, Retain: 4})
	if got := digest(back); got != want {
		t.Fatalf("replacement not durable:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Strings(a)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
