package store

// The write-ahead log: an ordered sequence of segment files, each holding
// length-prefixed CRC32-checksummed records. Segments are append-only and
// single-writer; rotation starts a fresh file, and recovery replays segments
// in sequence order, stopping cleanly at the first record that fails its
// frame or checksum (a torn tail from a crash mid-write).
//
// On-disk layout of a segment:
//
//	8 bytes  magic "rrwalsg1"
//	records: 4 bytes LE payload length
//	         4 bytes LE CRC32 (IEEE) of the payload
//	         payload
//
// A record is durable once its bytes and the preceding ones are fsynced;
// the SyncPolicy decides when that happens relative to the append.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rankregret/rankregret/internal/faultfs"
)

const (
	segMagic = "rrwalsg1"
	// recordHeader is the framing overhead per record: length + CRC32.
	recordHeader = 8
	// maxRecordBytes rejects absurd lengths before allocation; a register
	// event of the largest plausible dataset stays far below it.
	maxRecordBytes = 1 << 30
)

// SyncPolicy decides when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every record: a mutation is durable before it
	// is acknowledged. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker: a crash loses at most the
	// last interval's acknowledged mutations, recovered state is still a
	// clean prefix.
	SyncInterval
	// SyncNever leaves flushing to the OS: fastest, loses the most on a
	// machine crash. A clean process exit still syncs everything.
	SyncNever
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	default:
		return "never"
	}
}

// ParseSyncPolicy parses the -fsync flag: "always", "never", or an fsync
// interval duration such as "100ms".
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch s {
	case "always", "":
		return SyncAlways, 0, nil
	case "never":
		return SyncNever, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("store: bad fsync policy %q (want always, never, or a positive duration)", s)
	}
	return SyncInterval, d, nil
}

// On-disk file-name scheme, shared by the name builders, the directory
// listers, and the pruner so the format lives in exactly one place.
const (
	segPrefix, segSuffix   = "wal-", ".log"
	snapPrefix, snapSuffix = "snap-", ".snap"
)

func seqName(prefix, suffix string, seq uint64) string {
	return fmt.Sprintf("%s%016x%s", prefix, seq, suffix)
}

func segmentName(seq uint64) string  { return seqName(segPrefix, segSuffix, seq) }
func snapshotName(seq uint64) string { return seqName(snapPrefix, snapSuffix, seq) }

// parseSeq extracts the sequence number from a segment or snapshot file
// name with the given prefix/suffix, or returns false.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSeqs returns the sorted sequence numbers of the dir's files matching
// prefix/suffix.
func listSeqs(dir, prefix, suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSeq(e.Name(), prefix, suffix); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// Filesystems that do not support directory fsync are silently tolerated.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// walWriter is the appending half of the WAL: the current segment file plus
// the lifetime counters. Appends, rotations, and closes are serialized by
// the Store's write lock; the writer's own mu exists so the SyncInterval
// flusher can fsync concurrently with nothing but the file operations —
// never stalling the Store's readers behind a disk flush.
type walWriter struct {
	mu    sync.Mutex
	dir   string
	fs    faultfs.FS // write-side filesystem seam (faultfs.Disk in production)
	seq   uint64     // current segment
	f     faultfs.File
	size  int64 // bytes written to the current segment
	dirty bool  // bytes appended since the last sync

	// failed wedges the writer after a write or fsync error: a partial
	// frame may sit mid-segment, and anything appended after it would be
	// unrecoverable (replay stops at the first invalid frame), so no later
	// record may ever be acknowledged as durable. Cleared only by reopening
	// the store, which always starts a fresh segment.
	failed error

	records uint64
	bytes   uint64
	// syncs is atomic: it is bumped by the flusher goroutine under w.mu
	// alone and read by Status/Summary under the store's read lock.
	syncs atomic.Uint64
}

// openWALWriter starts a fresh segment with the given sequence number.
// Recovery always rotates to a new segment rather than appending after a
// possibly-torn tail, so a segment only ever has one writing process.
func openWALWriter(fs faultfs.FS, dir string, seq uint64) (*walWriter, error) {
	w := &walWriter{dir: dir, fs: fs, seq: seq}
	if err := w.openSegment(seq); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *walWriter) openSegment(seq uint64) error {
	path := filepath.Join(w.dir, segmentName(seq))
	f, err := w.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating WAL segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		// Remove the magicless husk: replay treats a header-less segment as
		// torn and stops there, so leaving it behind would make every later
		// segment unreachable (and its O_EXCL name would block a retried
		// open at the same sequence).
		_ = w.fs.Remove(path)
		return fmt.Errorf("store: writing WAL segment header: %w", err)
	}
	syncDir(w.dir)
	w.f, w.seq, w.size, w.dirty = f, seq, int64(len(segMagic)), true
	return nil
}

// wedge records a write/sync failure and returns the wrapped error all
// subsequent appends will report.
func (w *walWriter) wedge(err error) error {
	w.failed = fmt.Errorf("%w, refusing further writes until reopen: %v", ErrWALFailed, err)
	return w.failed
}

// append frames payload as one record and writes it to the current segment.
// Durability is the caller's concern (sync, per policy). Any write error
// wedges the writer: the segment may now hold a partial frame, and a record
// appended after it would be silently lost at replay.
func (w *walWriter) append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("store: WAL record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return w.wedge(err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return w.wedge(err)
	}
	w.size += int64(recordHeader + len(payload))
	w.records++
	w.bytes += uint64(recordHeader + len(payload))
	w.dirty = true
	return nil
}

// sync flushes the current segment to stable storage. A failed fsync also
// wedges: the kernel may have dropped the dirty pages, so nothing past the
// last successful sync can be promised to be durable anymore.
func (w *walWriter) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *walWriter) syncLocked() error {
	if w.failed != nil {
		return w.failed
	}
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return w.wedge(err)
	}
	w.dirty = false
	w.syncs.Add(1)
	return nil
}

// rotate syncs and closes the current segment and starts segment newSeq.
func (w *walWriter) rotate(newSeq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: closing WAL segment: %w", err)
	}
	return w.openSegment(newSeq)
}

// close syncs and closes the current segment.
func (w *walWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayStats reports what a WAL replay saw.
type replayStats struct {
	segments int
	records  int
	// torn is true when replay stopped at an invalid record (truncated
	// frame, bad CRC, or a segment missing its header) instead of the clean
	// end of the last segment.
	torn bool
	// tornSeq/tornOff locate the first invalid byte when torn.
	tornSeq uint64
	tornOff int64
	// gap is true when a segment sequence number was missing: the writer
	// always produces contiguous sequences, so a hole means lost files
	// (partial restore, manual deletion), and events after it would apply
	// against the wrong base state. Replay stops at the gap.
	gap bool
}

// replaySegments streams every valid record of the dir's segments with
// sequence >= fromSeq, in order, to fn. It stops at the first invalid
// record — a crash can only tear the tail of the final segment — and at the
// first sequence gap, because anything after a hole cannot be trusted: the
// replayed prefix is exactly the durable prefix. fn errors abort the
// replay.
func replaySegments(dir string, fromSeq uint64, fn func(payload []byte) error) (replayStats, error) {
	var st replayStats
	seqs, err := listSeqs(dir, segPrefix, segSuffix)
	if err != nil {
		return st, err
	}
	// The writer rotates to seq+1 and recovery opens maxSeq+1, so on-disk
	// sequences form one contiguous range; with a snapshot baseline the
	// range must start at fromSeq (the segment created at the snapshot
	// cut). Without a baseline (fromSeq 0, snapshots lost) replay starts at
	// whatever prefix pruning left.
	expected := fromSeq
	for _, seq := range seqs {
		if seq < fromSeq {
			continue
		}
		if fromSeq == 0 && expected == 0 {
			expected = seq
		}
		if seq != expected {
			st.gap = true
			st.tornSeq = seq
			return st, nil
		}
		expected = seq + 1
		data, err := os.ReadFile(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return st, fmt.Errorf("store: reading WAL segment %d: %w", seq, err)
		}
		st.segments++
		if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
			st.torn, st.tornSeq, st.tornOff = true, seq, 0
			return st, nil
		}
		off := int64(len(segMagic))
		for off < int64(len(data)) {
			if off+recordHeader > int64(len(data)) {
				st.torn, st.tornSeq, st.tornOff = true, seq, off
				return st, nil
			}
			n := int64(binary.LittleEndian.Uint32(data[off:]))
			sum := binary.LittleEndian.Uint32(data[off+4:])
			if n > maxRecordBytes || off+recordHeader+n > int64(len(data)) {
				st.torn, st.tornSeq, st.tornOff = true, seq, off
				return st, nil
			}
			payload := data[off+recordHeader : off+recordHeader+n]
			if crc32.ChecksumIEEE(payload) != sum {
				st.torn, st.tornSeq, st.tornOff = true, seq, off
				return st, nil
			}
			if err := fn(payload); err != nil {
				return st, err
			}
			st.records++
			off += recordHeader + n
		}
	}
	return st, nil
}

// removeBelow deletes the dir's prefix/suffix files with sequence < below,
// returning how many were removed and their total size. Used by snapshot
// pruning; removal failures are reported but non-fatal to the caller.
func removeBelow(fs faultfs.FS, dir, prefix, suffix string, below uint64) (int, int64, error) {
	seqs, err := listSeqs(dir, prefix, suffix)
	if err != nil {
		return 0, 0, err
	}
	removed, bytes := 0, int64(0)
	var firstErr error
	for _, seq := range seqs {
		if seq >= below {
			break
		}
		path := filepath.Join(dir, seqName(prefix, suffix, seq))
		var size int64
		if info, err := os.Stat(path); err == nil {
			size = info.Size()
		}
		if err := fs.Remove(path); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		removed++
		bytes += size
	}
	return removed, bytes, firstErr
}

// walBytesOnDisk sums the segment files' sizes — the one-time scan behind
// the in-memory total Summary serves afterwards.
func walBytesOnDisk(dir string) int64 {
	seqs, err := listSeqs(dir, segPrefix, segSuffix)
	if err != nil {
		return 0
	}
	var total int64
	for _, seq := range seqs {
		if info, err := os.Stat(filepath.Join(dir, segmentName(seq))); err == nil {
			total += info.Size()
		}
	}
	return total
}

// Durability-fault sentinels, exported so serving layers can classify a
// rejected mutation as a server-side fault (5xx) rather than a bad request.
var (
	// ErrWALFailed marks mutations rejected because the WAL could not be
	// written or synced; the writer stays wedged until the store reopens.
	ErrWALFailed = errors.New("store: WAL write failed")
	// ErrClosed marks mutations attempted after Close.
	ErrClosed = errors.New("store: closed")
)
