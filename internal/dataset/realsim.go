package dataset

import (
	"math"

	"github.com/rankregret/rankregret/internal/xrand"
)

// The paper evaluates on three publicly-available real datasets that are not
// shipped with it: Island (63,383 2-dimensional geographic positions), NBA
// (21,961 player/season rows on 5 box-score attributes) and Weather (178,080
// rows on 4 attributes). This file provides seeded simulators matching each
// dataset's cardinality, dimensionality and — most importantly for the
// experiments — correlation structure, which is what drives skyline size and
// therefore output rank-regret. DESIGN.md documents the substitution.

// IslandN, NBAN and WeatherN are the cardinalities reported in the paper.
const (
	IslandN  = 63383
	NBAN     = 21961
	WeatherN = 178080
)

// SimIsland simulates the Island dataset: n 2-dimensional points with the
// clustered, patchy spatial structure of geographic coordinates. Points are
// drawn from a mixture of anisotropic Gaussian clusters plus a uniform
// background, then normalized to [0,1]^2. Pass n <= 0 for the paper's size.
func SimIsland(rng *xrand.Rand, n int) *Dataset {
	if n <= 0 {
		n = IslandN
	}
	type cluster struct{ cx, cy, sx, sy float64 }
	// A fixed archipelago layout; spreads differ per axis so the point cloud
	// has locally-correlated bands like real coastline data.
	clusters := []cluster{
		{0.15, 0.75, 0.05, 0.09},
		{0.35, 0.55, 0.08, 0.04},
		{0.52, 0.80, 0.04, 0.05},
		{0.65, 0.35, 0.10, 0.06},
		{0.80, 0.60, 0.05, 0.08},
		{0.30, 0.20, 0.07, 0.07},
		{0.88, 0.15, 0.04, 0.04},
		{0.10, 0.40, 0.05, 0.05},
	}
	ds := New(2)
	if err := ds.SetAttrs([]string{"x", "y"}); err != nil {
		panic(err)
	}
	row := make([]float64, 2)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.12 {
			// Background scatter.
			row[0], row[1] = rng.Float64(), rng.Float64()
		} else {
			c := clusters[rng.Intn(len(clusters))]
			row[0] = clamp01(c.cx + c.sx*rng.NormFloat64())
			row[1] = clamp01(c.cy + c.sy*rng.NormFloat64())
		}
		ds.Append(row)
	}
	ds.Normalize()
	return ds
}

// SimNBA simulates the NBA player/season dataset: n rows over five box-score
// attributes (points, rebounds, assists, steals, blocks). A latent player
// strength drives all attributes (strong positive correlation, as in the
// real data), modulated by a position profile (guards get assists/steals,
// centers get rebounds/blocks), with right-skewed noise and zero inflation
// for sparsely-playing players. The strong positive correlation is what the
// paper's Figure 12 relies on ("the output rank-regrets remain 1 on NBA").
// Pass n <= 0 for the paper's size.
func SimNBA(rng *xrand.Rand, n int) *Dataset {
	if n <= 0 {
		n = NBAN
	}
	// Position profiles: weight of each attribute per archetype.
	profiles := [][5]float64{
		{1.00, 0.35, 0.95, 0.80, 0.15}, // guard
		{1.00, 0.60, 0.55, 0.60, 0.35}, // wing
		{0.90, 1.00, 0.30, 0.35, 0.90}, // big
	}
	ds := New(5)
	if err := ds.SetAttrs([]string{"points", "rebounds", "assists", "steals", "blocks"}); err != nil {
		panic(err)
	}
	row := make([]float64, 5)
	for i := 0; i < n; i++ {
		// Right-skewed latent strength: most players are role players.
		s := math.Pow(rng.Float64(), 2.2)
		p := profiles[rng.Intn(len(profiles))]
		minutes := 0.25 + 0.75*math.Pow(rng.Float64(), 0.7) // playing time factor
		for j := 0; j < 5; j++ {
			v := s * p[j] * minutes * (0.8 + 0.4*rng.Float64())
			if rng.Float64() < 0.04 {
				v *= 0.1 // injury / garbage-time season
			}
			row[j] = v
		}
		ds.Append(row)
	}
	ds.Normalize()
	return ds
}

// SimWeather simulates the Weather dataset: n rows over four attributes
// (temperature, humidity, wind, solar) driven by a seasonal cycle. The
// seasonal driver induces mixed-sign correlations: temperature and solar
// radiation move together, humidity moves against them, wind is nearly
// independent — giving moderate skylines between the synthetic correlated
// and anti-correlated extremes. Pass n <= 0 for the paper's size.
func SimWeather(rng *xrand.Rand, n int) *Dataset {
	if n <= 0 {
		n = WeatherN
	}
	ds := New(4)
	if err := ds.SetAttrs([]string{"temperature", "humidity", "wind", "solar"}); err != nil {
		panic(err)
	}
	row := make([]float64, 4)
	for i := 0; i < n; i++ {
		season := 2 * math.Pi * rng.Float64() // day-of-year phase
		daily := rng.NormFloat64()
		temp := 0.5 + 0.35*math.Sin(season) + 0.10*daily
		humid := 0.55 - 0.25*math.Sin(season) + 0.15*rng.NormFloat64()
		wind := 0.35 + 0.20*rng.NormFloat64() + 0.05*math.Sin(season+1.3)
		solar := 0.5 + 0.30*math.Sin(season) + 0.12*rng.NormFloat64()
		row[0] = clamp01(temp)
		row[1] = clamp01(humid)
		row[2] = clamp01(wind)
		row[3] = clamp01(solar)
		ds.Append(row)
	}
	ds.Normalize()
	return ds
}

// Real dispatches on a simulated-real-dataset name for the bench harness.
// n <= 0 requests the paper's cardinality.
func Real(kind string, rng *xrand.Rand, n int) (*Dataset, bool) {
	switch kind {
	case "island":
		return SimIsland(rng, n), true
	case "nba":
		return SimNBA(rng, n), true
	case "weather":
		return SimWeather(rng, n), true
	default:
		return nil, false
	}
}
