package dataset

import (
	"reflect"
	"testing"

	"github.com/rankregret/rankregret/internal/xrand"
)

func rowsOf(ds *Dataset) [][]float64 {
	out := make([][]float64, ds.N())
	for i := range out {
		out[i] = append([]float64(nil), ds.Row(i)...)
	}
	return out
}

func TestDeleteCompacts(t *testing.T) {
	ds := MustFromRows([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}})
	if err := ds.Delete([]int{3, 1, 1}); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 0}, {2, 2}, {4, 4}}
	if got := rowsOf(ds); !reflect.DeepEqual(got, want) {
		t.Fatalf("after delete: %v, want %v", got, want)
	}
	if err := ds.Delete([]int{5}); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if ds.N() != 3 {
		t.Fatalf("failed delete mutated the dataset: n=%d", ds.N())
	}
	if err := ds.Delete(nil); err != nil {
		t.Fatal(err)
	}
	if err := ds.Delete([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if ds.N() != 0 {
		t.Fatalf("deleting every row left n=%d", ds.N())
	}
}

func TestVersionMonotoneAndDeltas(t *testing.T) {
	ds := MustFromRows([][]float64{{1}, {2}, {3}})
	v0 := ds.Version()
	if v0 != 3 {
		t.Fatalf("version after 3 appends = %d, want 3", v0)
	}
	ds.Append([]float64{4})
	ds.Append([]float64{5})
	if err := ds.Delete([]int{0}); err != nil {
		t.Fatal(err)
	}
	if ds.Version() != v0+3 {
		t.Fatalf("version = %d, want %d", ds.Version(), v0+3)
	}

	deltas, ok := ds.Deltas(v0)
	if !ok {
		t.Fatal("history truncated unexpectedly")
	}
	want := []Delta{
		{Kind: DeltaAppend, From: 3, To: 5, Start: 3, Count: 2},
		{Kind: DeltaDelete, From: 5, To: 6, Deleted: []int{0}},
	}
	if !reflect.DeepEqual(deltas, want) {
		t.Fatalf("Deltas(%d) = %+v, want %+v", v0, deltas, want)
	}

	// A `since` inside the coalesced append entry splits it.
	deltas, ok = ds.Deltas(v0 + 1)
	if !ok {
		t.Fatal("history truncated unexpectedly")
	}
	if deltas[0].Start != 4 || deltas[0].Count != 1 || deltas[0].From != 4 {
		t.Fatalf("split append delta = %+v", deltas[0])
	}

	if _, ok := ds.Deltas(ds.Version() + 1); ok {
		t.Fatal("future version answered")
	}
	if got, ok := ds.Deltas(ds.Version()); !ok || len(got) != 0 {
		t.Fatalf("Deltas(current) = %v, %v", got, ok)
	}
}

func TestDeltasRewriteAndTruncation(t *testing.T) {
	ds := MustFromRows([][]float64{{1, 2}, {3, 4}})
	v0 := ds.Version()
	ds.Shift([]float64{1, 1})
	ds.Negate(0)
	deltas, ok := ds.Deltas(v0)
	if !ok || len(deltas) != 1 || deltas[0].Kind != DeltaRewrite {
		t.Fatalf("rewrites did not coalesce: %+v ok=%v", deltas, ok)
	}

	// Overflow the log with delete bursts; history must report incomplete.
	ds2 := MustFromRows([][]float64{{1}})
	start := ds2.Version()
	for i := 0; i < maxDeltaLog+8; i++ {
		ds2.Append([]float64{float64(i)})
		if err := ds2.Delete([]int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := ds2.Deltas(start); ok {
		t.Fatal("truncated log claimed complete history")
	}
	if _, ok := ds2.Deltas(ds2.Version()); !ok {
		t.Fatal("current version must always be answerable")
	}
}

func TestSnapshotLineageAndIsolation(t *testing.T) {
	ds := MustFromRows([][]float64{{1, 0}, {0, 1}})
	snap := ds.Snapshot()
	if snap.Lineage() != ds.Lineage() || snap.Version() != ds.Version() {
		t.Fatalf("snapshot identity (%d,%d) != (%d,%d)",
			snap.Lineage(), snap.Version(), ds.Lineage(), ds.Version())
	}
	if snap.Fingerprint() != ds.Fingerprint() {
		t.Fatal("snapshot fingerprint differs")
	}
	next := snap.Snapshot()
	next.Append([]float64{0.5, 0.5})
	if ds.N() != 2 || snap.N() != 2 || next.N() != 3 {
		t.Fatalf("mutating a snapshot leaked: n = %d/%d/%d", ds.N(), snap.N(), next.N())
	}
	if deltas, ok := next.Deltas(snap.Version()); !ok || len(deltas) != 1 || deltas[0].Kind != DeltaAppend {
		t.Fatalf("snapshot chain deltas = %+v ok=%v", deltas, ok)
	}
	if ds.Clone().Lineage() == ds.Lineage() {
		t.Fatal("Clone must get a fresh lineage")
	}
}

func TestComposeDeltas(t *testing.T) {
	ds := MustFromRows([][]float64{{0}, {1}, {2}, {3}})
	v0 := ds.Version()
	ds.Append([]float64{4})
	ds.Append([]float64{5})
	if err := ds.Delete([]int{1, 4}); err != nil { // drops old row 1 and appended row 4
		t.Fatal(err)
	}
	ds.Append([]float64{6})
	deltas, ok := ds.Deltas(v0)
	if !ok {
		t.Fatal("history truncated")
	}
	oldToNew, newIDs, newN, ok := ComposeDeltas(4, deltas)
	if !ok {
		t.Fatal("compose failed")
	}
	if newN != ds.N() {
		t.Fatalf("composed n=%d, dataset n=%d", newN, ds.N())
	}
	wantMap := []int{0, -1, 1, 2}
	wantNew := []int{3, 4}
	if !reflect.DeepEqual(oldToNew, wantMap) || !reflect.DeepEqual(newIDs, wantNew) {
		t.Fatalf("compose = %v / %v, want %v / %v", oldToNew, newIDs, wantMap, wantNew)
	}
	// Cross-check against the values: survivors keep their content.
	for oldID, newID := range oldToNew {
		if newID < 0 {
			continue
		}
		if got := ds.Value(newID, 0); got != float64(oldID) {
			t.Fatalf("old row %d mapped to new row %d with value %v", oldID, newID, got)
		}
	}
	// Rewrites refuse composition.
	ds.Normalize()
	deltas, _ = ds.Deltas(v0)
	if _, _, _, ok := ComposeDeltas(4, deltas); ok {
		t.Fatal("compose across a rewrite must fail")
	}
}

func TestColumnMajorAppendRepair(t *testing.T) {
	rng := xrand.New(7)
	ds := Independent(rng, 50, 3)
	_ = ds.ColumnMajor()
	old := ds.ColumnMajor()
	row := []float64{0.25, 0.5, 0.75}
	ds.Append(row)
	cols := ds.ColumnMajor()
	n := ds.N()
	for i := 0; i < n; i++ {
		for j := 0; j < ds.Dim(); j++ {
			if cols[j*n+i] != ds.Value(i, j) {
				t.Fatalf("repaired mirror (%d,%d) = %v, want %v", i, j, cols[j*n+i], ds.Value(i, j))
			}
		}
	}
	// The pre-append mirror is untouched and still valid for its rows.
	n0 := n - 1
	for i := 0; i < n0; i++ {
		for j := 0; j < ds.Dim(); j++ {
			if old[j*n0+i] != ds.Value(i, j) {
				t.Fatalf("old mirror mutated at (%d,%d)", i, j)
			}
		}
	}
	// Deletes invalidate; the rebuilt mirror matches again.
	if err := ds.Delete([]int{0, 10}); err != nil {
		t.Fatal(err)
	}
	cols = ds.ColumnMajor()
	n = ds.N()
	for i := 0; i < n; i++ {
		for j := 0; j < ds.Dim(); j++ {
			if cols[j*n+i] != ds.Value(i, j) {
				t.Fatalf("post-delete mirror (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestFingerprintPathIndependence(t *testing.T) {
	// Same logical content via different mutation paths ⇒ same fingerprint.
	a := MustFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	b := MustFromRows([][]float64{{9, 9}, {1, 2}, {3, 4}})
	if err := b.Delete([]int{0}); err != nil {
		t.Fatal(err)
	}
	b.Append([]float64{5, 6})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ for equal content: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Version() == b.Version() {
		t.Fatal("test should exercise distinct version counters")
	}
}
