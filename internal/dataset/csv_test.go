package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	ds := TableI()
	if err := ds.SetAttrs([]string{"A1", "A2"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() {
		t.Fatalf("round trip shape: %v vs %v", back, ds)
	}
	for i := 0; i < ds.N(); i++ {
		for j := 0; j < ds.Dim(); j++ {
			if back.Value(i, j) != ds.Value(i, j) {
				t.Fatalf("round trip value (%d,%d): %v vs %v", i, j, back.Value(i, j), ds.Value(i, j))
			}
		}
	}
	attrs := back.Attrs()
	if attrs[0] != "A1" || attrs[1] != "A2" {
		t.Errorf("round trip attrs: %v", attrs)
	}
}

func TestCSVNoHeader(t *testing.T) {
	in := "1,2\n3,4\n"
	ds, err := ReadCSV(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 || ds.Value(1, 1) != 4 {
		t.Fatalf("parsed wrong: %v", ds)
	}
}

func TestCSVDefaultHeaderNames(t *testing.T) {
	ds := MustFromRows([][]float64{{1, 2}})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "A1,A2\n") {
		t.Errorf("default header wrong: %q", buf.String())
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), false); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("h1,h2\n"), true); err == nil {
		t.Error("header-only input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n"), false); err == nil {
		t.Error("non-numeric field should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), false); err == nil {
		t.Error("ragged rows should fail")
	}
}
