package dataset

import (
	"math"
	"testing"

	"github.com/rankregret/rankregret/internal/xrand"
)

func TestAttrStats(t *testing.T) {
	ds := MustFromRows([][]float64{{0, 10}, {1, 20}, {0.5, 30}})
	st := ds.AttrStats()
	if len(st) != 2 {
		t.Fatalf("got %d stats", len(st))
	}
	if st[0].Min != 0 || st[0].Max != 1 || math.Abs(st[0].Mean-0.5) > 1e-12 {
		t.Errorf("col0 stats = %+v", st[0])
	}
	if st[1].Min != 10 || st[1].Max != 30 || st[1].Mean != 20 {
		t.Errorf("col1 stats = %+v", st[1])
	}
	wantSD := math.Sqrt(200.0 / 3.0)
	if math.Abs(st[1].StdDev-wantSD) > 1e-9 {
		t.Errorf("col1 stddev = %v, want %v", st[1].StdDev, wantSD)
	}
	if got := New(2).AttrStats(); len(got) != 2 {
		t.Errorf("empty dataset stats = %v", got)
	}
}

func TestCorrelationExact(t *testing.T) {
	// Perfectly correlated and perfectly anti-correlated columns.
	ds := MustFromRows([][]float64{{0, 0, 1}, {0.5, 0.5, 0.5}, {1, 1, 0}})
	if c, err := ds.Correlation(0, 1); err != nil || math.Abs(c-1) > 1e-12 {
		t.Errorf("corr(0,1) = %v, %v; want 1", c, err)
	}
	if c, err := ds.Correlation(0, 2); err != nil || math.Abs(c+1) > 1e-12 {
		t.Errorf("corr(0,2) = %v, %v; want -1", c, err)
	}
	if c, err := ds.Correlation(0, 0); err != nil || c != 1 {
		t.Errorf("corr(0,0) = %v, %v", c, err)
	}
}

func TestCorrelationErrors(t *testing.T) {
	ds := MustFromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := ds.Correlation(0, 5); err == nil {
		t.Error("out-of-range column should fail")
	}
	one := MustFromRows([][]float64{{1, 2}})
	if _, err := one.Correlation(0, 1); err == nil {
		t.Error("n=1 should fail")
	}
	konst := MustFromRows([][]float64{{1, 2}, {1, 3}})
	c, err := konst.Correlation(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(c) {
		t.Errorf("constant column correlation = %v, want NaN", c)
	}
}

func TestCorrelationMatrixSymmetric(t *testing.T) {
	ds := Independent(xrand.New(4), 500, 4)
	m, err := ds.CorrelationMatrix()
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		if m[a][a] != 1 {
			t.Errorf("diagonal (%d,%d) = %v", a, a, m[a][a])
		}
		for b := 0; b < 4; b++ {
			if m[a][b] != m[b][a] {
				t.Errorf("matrix not symmetric at (%d,%d)", a, b)
			}
			if m[a][b] < -1-1e-12 || m[a][b] > 1+1e-12 {
				t.Errorf("corr (%d,%d) = %v outside [-1,1]", a, b, m[a][b])
			}
		}
	}
}

// TestWorkloadCorrelationSigns pins the property the paper's evaluation
// relies on: the three synthetic generators and the three simulated real
// datasets have the right correlation structure (DESIGN.md Section 5).
func TestWorkloadCorrelationSigns(t *testing.T) {
	rng := func() *xrand.Rand { return xrand.New(99) }
	cases := []struct {
		name   string
		ds     *Dataset
		lo, hi float64
	}{
		{"correlated", Correlated(rng(), 4000, 4), 0.2, 1},
		{"independent", Independent(rng(), 4000, 4), -0.1, 0.1},
		{"anticorrelated", Anticorrelated(rng(), 4000, 4), -1, -0.15},
		{"nba", SimNBA(rng(), 4000), 0.15, 1},
		{"island", SimIsland(rng(), 4000), -1, -0.1},
	}
	for _, tc := range cases {
		got, err := tc.ds.MeanPairwiseCorrelation()
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if got < tc.lo || got > tc.hi {
			t.Errorf("%s: mean pairwise correlation %.3f outside [%v, %v]", tc.name, got, tc.lo, tc.hi)
		}
	}
	// Weather is a seasonal mixture: some pair must be negative, some positive.
	w := SimWeather(xrand.New(99), 4000)
	m, err := w.CorrelationMatrix()
	if err != nil {
		t.Fatal(err)
	}
	pos, neg := false, false
	for a := 0; a < w.Dim(); a++ {
		for b := 0; b < a; b++ {
			if m[a][b] > 0.05 {
				pos = true
			}
			if m[a][b] < -0.05 {
				neg = true
			}
		}
	}
	if !pos || !neg {
		t.Errorf("weather should mix correlation signs, matrix: %v", m)
	}
}

func TestMeanPairwiseCorrelationValidation(t *testing.T) {
	one := MustFromRows([][]float64{{1}, {2}})
	if _, err := one.MeanPairwiseCorrelation(); err == nil {
		t.Error("d=1 should fail")
	}
}
