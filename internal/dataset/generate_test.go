package dataset

import (
	"math"
	"testing"

	"github.com/rankregret/rankregret/internal/xrand"
)

// pearson computes the sample correlation between attributes a and b.
func pearson(ds *Dataset, a, b int) float64 {
	n := float64(ds.N())
	var sa, sb, saa, sbb, sab float64
	for i := 0; i < ds.N(); i++ {
		x, y := ds.Value(i, a), ds.Value(i, b)
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func TestIndependent(t *testing.T) {
	rng := xrand.New(1)
	ds := Independent(rng, 5000, 3)
	if ds.N() != 5000 || ds.Dim() != 3 {
		t.Fatalf("shape wrong: %v", ds)
	}
	for i := 0; i < ds.N(); i++ {
		for j := 0; j < 3; j++ {
			v := ds.Value(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("value out of range: %v", v)
			}
		}
	}
	if r := pearson(ds, 0, 1); math.Abs(r) > 0.06 {
		t.Errorf("independent data has correlation %v", r)
	}
}

func TestCorrelated(t *testing.T) {
	rng := xrand.New(2)
	ds := Correlated(rng, 5000, 4)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if r := pearson(ds, a, b); r < 0.5 {
				t.Errorf("correlated data attrs (%d,%d) correlation only %v", a, b, r)
			}
		}
	}
}

func TestAnticorrelated(t *testing.T) {
	rng := xrand.New(3)
	ds := Anticorrelated(rng, 5000, 2)
	if r := pearson(ds, 0, 1); r > -0.5 {
		t.Errorf("anticorrelated 2D data correlation %v, want strongly negative", r)
	}
	ds4 := Anticorrelated(rng, 5000, 4)
	if r := pearson(ds4, 0, 1); r > -0.1 {
		t.Errorf("anticorrelated 4D data correlation %v, want negative", r)
	}
}

func TestQuarterCircle(t *testing.T) {
	ds := QuarterCircle(100, 2)
	if ds.N() != 100 {
		t.Fatalf("N = %d", ds.N())
	}
	for i := 0; i < ds.N(); i++ {
		r := ds.Row(i)
		if math.Abs(r[0]*r[0]+r[1]*r[1]-1) > 1e-9 {
			t.Fatalf("row %d not on unit circle: %v", i, r)
		}
	}
	// Endpoints are the axis tuples.
	if ds.Value(0, 0) != 1 || math.Abs(ds.Value(99, 1)-1) > 1e-12 {
		t.Error("endpoints wrong")
	}
	// Higher-dimensional variant pads with ones.
	ds4 := QuarterCircle(10, 4)
	for i := 0; i < 10; i++ {
		if ds4.Value(i, 2) != 1 || ds4.Value(i, 3) != 1 {
			t.Fatal("padding attributes must be 1")
		}
	}
}

func TestSyntheticDispatch(t *testing.T) {
	rng := xrand.New(4)
	for _, kind := range []string{"indep", "corr", "anti", "independent", "correlated", "anticorrelated"} {
		ds, ok := Synthetic(kind, rng, 100, 3)
		if !ok || ds.N() != 100 {
			t.Errorf("Synthetic(%q) failed", kind)
		}
	}
	if _, ok := Synthetic("nope", rng, 10, 2); ok {
		t.Error("unknown workload should return ok=false")
	}
}

func TestSimIsland(t *testing.T) {
	rng := xrand.New(5)
	ds := SimIsland(rng, 3000)
	if ds.N() != 3000 || ds.Dim() != 2 {
		t.Fatalf("shape: %v", ds)
	}
	if got := SimIsland(xrand.New(5), 0); got.N() != IslandN {
		t.Errorf("default size = %d, want %d", got.N(), IslandN)
	}
	// Geographic data should be spread out, not concentrated on the diagonal:
	// |corr| moderate.
	if r := pearson(ds, 0, 1); math.Abs(r) > 0.6 {
		t.Errorf("island correlation %v looks degenerate", r)
	}
}

func TestSimNBA(t *testing.T) {
	rng := xrand.New(6)
	ds := SimNBA(rng, 5000)
	if ds.Dim() != 5 {
		t.Fatalf("NBA dim = %d", ds.Dim())
	}
	// Latent strength should induce clear positive correlation between
	// points and every other attribute.
	for b := 1; b < 5; b++ {
		if r := pearson(ds, 0, b); r < 0.3 {
			t.Errorf("NBA points vs attr %d correlation %v, want positive", b, r)
		}
	}
	if got := SimNBA(xrand.New(6), 0); got.N() != NBAN {
		t.Errorf("default size = %d, want %d", got.N(), NBAN)
	}
}

func TestSimWeather(t *testing.T) {
	rng := xrand.New(7)
	ds := SimWeather(rng, 8000)
	if ds.Dim() != 4 {
		t.Fatalf("Weather dim = %d", ds.Dim())
	}
	// Temperature vs humidity negative; temperature vs solar positive.
	if r := pearson(ds, 0, 1); r > -0.3 {
		t.Errorf("temp/humidity correlation %v, want negative", r)
	}
	if r := pearson(ds, 0, 3); r < 0.3 {
		t.Errorf("temp/solar correlation %v, want positive", r)
	}
	if got := SimWeather(xrand.New(7), 0); got.N() != WeatherN {
		t.Errorf("default size = %d, want %d", got.N(), WeatherN)
	}
}

func TestRealDispatch(t *testing.T) {
	rng := xrand.New(8)
	for _, kind := range []string{"island", "nba", "weather"} {
		ds, ok := Real(kind, rng, 500)
		if !ok || ds.N() != 500 {
			t.Errorf("Real(%q) failed", kind)
		}
	}
	if _, ok := Real("mars", rng, 10); ok {
		t.Error("unknown real dataset should return ok=false")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Anticorrelated(xrand.New(99), 200, 3)
	b := Anticorrelated(xrand.New(99), 200, 3)
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.Dim(); j++ {
			if a.Value(i, j) != b.Value(i, j) {
				t.Fatal("generator not deterministic under fixed seed")
			}
		}
	}
}
