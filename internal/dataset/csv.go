package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a dataset from CSV. If header is true the first record is
// taken as attribute names. Every field must parse as a float64 and all rows
// must have the same width.
func ReadCSV(r io.Reader, header bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	var ds *Dataset
	var names []string
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading csv: %w", err)
		}
		line++
		if header && line == 1 {
			names = rec
			continue
		}
		if ds == nil {
			ds = New(len(rec))
			if names != nil {
				if err := ds.SetAttrs(names); err != nil {
					return nil, err
				}
			}
		}
		row := make([]float64, len(rec))
		if len(rec) != ds.Dim() {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", line, len(rec), ds.Dim())
		}
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d field %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		ds.Append(row)
	}
	if ds == nil || ds.N() == 0 {
		return nil, fmt.Errorf("dataset: csv contained no data rows")
	}
	return ds, nil
}

// WriteCSV writes the dataset as CSV. If header is true, attribute names are
// written first (empty names become A1..Ad).
func (ds *Dataset) WriteCSV(w io.Writer, header bool) error {
	cw := csv.NewWriter(w)
	if header {
		names := ds.Attrs()
		for j, s := range names {
			if s == "" {
				names[j] = fmt.Sprintf("A%d", j+1)
			}
		}
		if err := cw.Write(names); err != nil {
			return fmt.Errorf("dataset: writing csv header: %w", err)
		}
	}
	rec := make([]string, ds.Dim())
	for i := 0; i < ds.N(); i++ {
		row := ds.Row(i)
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing csv: %w", err)
	}
	return nil
}
