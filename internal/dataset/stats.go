package dataset

import (
	"fmt"
	"math"
)

// Stats summarizes one attribute of a dataset.
type Stats struct {
	Min, Max, Mean, StdDev float64
}

// AttrStats returns per-attribute summary statistics. It is primarily used
// to validate the workload generators (the simulated real datasets must
// reproduce the originals' value ranges and spreads; DESIGN.md Section 5).
func (ds *Dataset) AttrStats() []Stats {
	d := ds.Dim()
	n := ds.N()
	out := make([]Stats, d)
	if n == 0 {
		return out
	}
	for j := 0; j < d; j++ {
		s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
		sum := 0.0
		for i := 0; i < n; i++ {
			v := ds.Value(i, j)
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
			sum += v
		}
		s.Mean = sum / float64(n)
		ss := 0.0
		for i := 0; i < n; i++ {
			dlt := ds.Value(i, j) - s.Mean
			ss += dlt * dlt
		}
		s.StdDev = math.Sqrt(ss / float64(n))
		out[j] = s
	}
	return out
}

// Correlation returns the Pearson correlation between attributes a and b.
// It returns an error for out-of-range columns and NaN when either column
// is constant. The sign structure of this matrix is what drives every
// qualitative result in the paper's evaluation: positively correlated data
// yields tiny rank-regrets, anti-correlated data large ones.
func (ds *Dataset) Correlation(a, b int) (float64, error) {
	d := ds.Dim()
	if a < 0 || a >= d || b < 0 || b >= d {
		return 0, fmt.Errorf("dataset: correlation columns (%d,%d) out of range [0,%d)", a, b, d)
	}
	n := ds.N()
	if n < 2 {
		return 0, fmt.Errorf("dataset: correlation needs at least 2 tuples, have %d", n)
	}
	var meanA, meanB float64
	for i := 0; i < n; i++ {
		meanA += ds.Value(i, a)
		meanB += ds.Value(i, b)
	}
	meanA /= float64(n)
	meanB /= float64(n)
	var cov, varA, varB float64
	for i := 0; i < n; i++ {
		da := ds.Value(i, a) - meanA
		db := ds.Value(i, b) - meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return math.NaN(), nil
	}
	return cov / math.Sqrt(varA*varB), nil
}

// CorrelationMatrix returns the full d x d Pearson correlation matrix.
func (ds *Dataset) CorrelationMatrix() ([][]float64, error) {
	d := ds.Dim()
	out := make([][]float64, d)
	for a := 0; a < d; a++ {
		out[a] = make([]float64, d)
		out[a][a] = 1
		for b := 0; b < a; b++ {
			c, err := ds.Correlation(a, b)
			if err != nil {
				return nil, err
			}
			out[a][b] = c
			out[b][a] = c
		}
	}
	return out, nil
}

// MeanPairwiseCorrelation averages the off-diagonal entries of the
// correlation matrix — a single number summarizing whether a workload is
// correlated (positive), independent (near zero) or anti-correlated
// (negative).
func (ds *Dataset) MeanPairwiseCorrelation() (float64, error) {
	d := ds.Dim()
	if d < 2 {
		return 0, fmt.Errorf("dataset: pairwise correlation needs d >= 2, have %d", d)
	}
	m, err := ds.CorrelationMatrix()
	if err != nil {
		return 0, err
	}
	sum, cnt := 0.0, 0
	for a := 0; a < d; a++ {
		for b := 0; b < a; b++ {
			if !math.IsNaN(m[a][b]) {
				sum += m[a][b]
				cnt++
			}
		}
	}
	if cnt == 0 {
		return math.NaN(), nil
	}
	return sum / float64(cnt), nil
}
