package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzDatasetMutate drives an arbitrary append/delete program against a
// dataset and a shadow row list, checking the mutation layer's invariants:
// content matches the shadow after every program, the version counter is
// strictly monotone, the fingerprint equals that of a fresh dataset built
// from the same content (no mutation-path dependence), and the delta log
// composes back to an exact old-row -> new-row mapping from any mid-program
// checkpoint.
func FuzzDatasetMutate(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x80, 0x03})
	f.Add([]byte{0xff, 0xfe, 0x80, 0x80, 0x11, 0x22, 0x33})
	f.Add([]byte{0x90})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, ops []byte) {
		const d = 2
		ds := MustFromRows([][]float64{{0.5, 0.5}, {0.25, 0.75}, {1, 0}})
		shadow := [][]float64{{0.5, 0.5}, {0.25, 0.75}, {1, 0}}

		var (
			ckptRows []([]float64)
			ckptV    uint64
			haveCkpt bool
		)
		prevV := ds.Version()
		for i, op := range ops {
			switch {
			case op < 0x80: // append a row derived from the opcode
				row := []float64{float64(op) / 128, float64(i%7) / 7}
				ds.Append(row)
				shadow = append(shadow, row)
			case op < 0xf0: // delete op-derived ids
				if len(shadow) == 0 {
					continue
				}
				ids := []int{int(op) % len(shadow)}
				if op%3 == 0 {
					ids = append(ids, int(op/3)%len(shadow), int(op)%len(shadow))
				}
				if err := ds.Delete(ids); err != nil {
					t.Fatalf("op %d: delete %v rejected: %v", i, ids, err)
				}
				drop := map[int]bool{}
				for _, id := range ids {
					drop[id] = true
				}
				kept := shadow[:0]
				for j, r := range shadow {
					if !drop[j] {
						kept = append(kept, r)
					}
				}
				shadow = kept
			default: // set the compose checkpoint (first occurrence wins)
				if !haveCkpt {
					haveCkpt = true
					ckptV = ds.Version()
					ckptRows = append([][]float64(nil), shadow...)
				}
			}
			if v := ds.Version(); v < prevV {
				t.Fatalf("op %d: version went backwards: %d -> %d", i, prevV, v)
			} else {
				prevV = v
			}
		}

		if ds.N() != len(shadow) {
			t.Fatalf("n=%d, shadow=%d", ds.N(), len(shadow))
		}
		for i := range shadow {
			for j := 0; j < d; j++ {
				if ds.Value(i, j) != shadow[i][j] {
					t.Fatalf("content diverged at (%d,%d)", i, j)
				}
			}
		}
		if len(shadow) > 0 {
			fresh := MustFromRows(shadow)
			if fresh.Fingerprint() != ds.Fingerprint() {
				t.Fatal("fingerprint depends on mutation path")
			}
		}

		if !haveCkpt {
			return
		}
		deltas, ok := ds.Deltas(ckptV)
		if !ok {
			return // log truncated: legitimately unanswerable
		}
		oldToNew, newIDs, newN, ok := ComposeDeltas(len(ckptRows), deltas)
		if !ok {
			t.Fatalf("append/delete-only history failed to compose: %+v", deltas)
		}
		if newN != ds.N() {
			t.Fatalf("composed n=%d, dataset n=%d", newN, ds.N())
		}
		seen := map[int]bool{}
		for old, now := range oldToNew {
			if now < 0 {
				continue
			}
			if seen[now] {
				t.Fatalf("two old rows map to new row %d", now)
			}
			seen[now] = true
			for j := 0; j < d; j++ {
				if ds.Value(now, j) != ckptRows[old][j] {
					t.Fatalf("mapped row %d->%d changed value", old, now)
				}
			}
		}
		for _, id := range newIDs {
			if seen[id] {
				t.Fatalf("new row %d also claimed by the mapping", id)
			}
			seen[id] = true
		}
		if len(seen) != newN {
			t.Fatalf("mapping + new rows cover %d of %d rows", len(seen), newN)
		}
	})
}

// FuzzFingerprintStability checks the fingerprint is a pure function of
// content for snapshot chains as well: a chain of snapshot+mutate steps and
// a directly-constructed dataset with the same final rows always agree, and
// mutating a snapshot never disturbs its source.
func FuzzFingerprintStability(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{0x81})
	f.Add([]byte{9}, []byte{0x01, 0x85, 0x02})
	f.Fuzz(func(t *testing.T, initial, ops []byte) {
		if len(initial) == 0 {
			return
		}
		rows := make([][]float64, 0, len(initial))
		for i, b := range initial {
			rows = append(rows, []float64{float64(b) / 255, float64(i) / 16})
		}
		cur := MustFromRows(rows)
		base := cur
		baseFP := base.Fingerprint()
		for i, op := range ops {
			next := cur.Snapshot()
			if op < 0x80 {
				row := []float64{float64(op) / 128, float64(i) / 8}
				next.Append(row)
				rows = append(rows, row)
			} else {
				if len(rows) <= 1 {
					continue
				}
				id := int(op) % len(rows)
				if err := next.Delete([]int{id}); err != nil {
					t.Fatal(err)
				}
				rows = append(rows[:id], rows[id+1:]...)
			}
			cur = next
		}
		if base.Fingerprint() != baseFP || base.N() != len(initial) {
			t.Fatal("mutating snapshots disturbed their source")
		}
		if len(rows) == 0 {
			return
		}
		if got, want := cur.Fingerprint(), MustFromRows(rows).Fingerprint(); got != want {
			t.Fatalf("snapshot-chain fingerprint %016x != direct-build %016x", got, want)
		}
	})
}

// FuzzDecodeBinary checks the durable decoder never panics (or allocates
// past its input) on arbitrary bytes, and that every accepted input
// re-encodes to a stable form: decode -> encode -> decode reproduces the
// same fingerprint and versioning state.
func FuzzDecodeBinary(f *testing.F) {
	seed := New(2)
	seed.Append([]float64{0.5, 1})
	seed.Append([]float64{0.25, 0})
	_ = seed.Delete([]int{0})
	f.Add(seed.AppendBinary(nil))
	f.Add(MustFromRows([][]float64{{1, 2, 3}}).AppendBinary(nil))
	f.Add([]byte{0xD5, 0x01})
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		ds, n, err := DecodeBinary(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := ds.AppendBinary(nil)
		back, m, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-encoding rejected: %v", err)
		}
		if m != len(enc) {
			t.Fatalf("re-encoding consumed %d of %d bytes", m, len(enc))
		}
		if back.Fingerprint() != ds.Fingerprint() ||
			back.Lineage() != ds.Lineage() ||
			back.Version() != ds.Version() ||
			!reflect.DeepEqual(back.log, ds.log) {
			t.Fatal("decode -> encode -> decode is not a fixed point")
		}
		// The ascending-unique invariant of every decoded delete list is
		// what the gap encoder and the engine's delta repair rely on.
		for _, d := range ds.log {
			for k := 1; k < len(d.Deleted); k++ {
				if d.Deleted[k] <= d.Deleted[k-1] {
					t.Fatalf("accepted non-ascending deleted ids %v", d.Deleted)
				}
			}
		}
	})
}

// FuzzReadCSV checks the CSV reader never panics and that every accepted
// input round-trips through WriteCSV back to an equal dataset.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n", true)
	f.Add("1,2\n3,4\n", false)
	f.Add("", false)
	f.Add("x\n", true)
	f.Add("1,2\n3\n", false)
	f.Add("nan,inf\n-inf,0\n", false)
	f.Add("1e308,1e-308\n-1e308,5\n", false)
	f.Add("h1,h2,h3\n0.1,0.2,0.3\n", true)
	f.Fuzz(func(t *testing.T, in string, header bool) {
		ds, err := ReadCSV(strings.NewReader(in), header)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if ds.N() == 0 || ds.Dim() == 0 {
			t.Fatalf("accepted dataset with shape %dx%d", ds.N(), ds.Dim())
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf, true); err != nil {
			t.Fatalf("WriteCSV failed on accepted data: %v", err)
		}
		back, err := ReadCSV(&buf, true)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N() != ds.N() || back.Dim() != ds.Dim() {
			t.Fatalf("round trip changed shape %dx%d -> %dx%d", ds.N(), ds.Dim(), back.N(), back.Dim())
		}
		for i := 0; i < ds.N(); i++ {
			for j := 0; j < ds.Dim(); j++ {
				a, b := ds.Value(i, j), back.Value(i, j)
				// NaN != NaN; everything else must match exactly after
				// FormatFloat('g', -1) round-tripping.
				if a != b && !(a != a && b != b) {
					t.Fatalf("value (%d,%d) changed: %v -> %v", i, j, a, b)
				}
			}
		}
	})
}
