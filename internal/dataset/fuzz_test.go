package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics and that every accepted
// input round-trips through WriteCSV back to an equal dataset.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n", true)
	f.Add("1,2\n3,4\n", false)
	f.Add("", false)
	f.Add("x\n", true)
	f.Add("1,2\n3\n", false)
	f.Add("nan,inf\n-inf,0\n", false)
	f.Add("1e308,1e-308\n-1e308,5\n", false)
	f.Add("h1,h2,h3\n0.1,0.2,0.3\n", true)
	f.Fuzz(func(t *testing.T, in string, header bool) {
		ds, err := ReadCSV(strings.NewReader(in), header)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if ds.N() == 0 || ds.Dim() == 0 {
			t.Fatalf("accepted dataset with shape %dx%d", ds.N(), ds.Dim())
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf, true); err != nil {
			t.Fatalf("WriteCSV failed on accepted data: %v", err)
		}
		back, err := ReadCSV(&buf, true)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N() != ds.N() || back.Dim() != ds.Dim() {
			t.Fatalf("round trip changed shape %dx%d -> %dx%d", ds.N(), ds.Dim(), back.N(), back.Dim())
		}
		for i := 0; i < ds.N(); i++ {
			for j := 0; j < ds.Dim(); j++ {
				a, b := ds.Value(i, j), back.Value(i, j)
				// NaN != NaN; everything else must match exactly after
				// FormatFloat('g', -1) round-tripping.
				if a != b && !(a != a && b != b) {
					t.Fatalf("value (%d,%d) changed: %v -> %v", i, j, a, b)
				}
			}
		}
	})
}
