package dataset

import (
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/xrand"
)

func absInt(x int) int {
	if x < 0 {
		if x == -x {
			return 0
		}
		return -x
	}
	return x
}

// Property: UtilitiesBatch is bit-identical to per-vector Utilities for
// every vector of the tile — both accumulate attribute terms in the same
// order, so the blocked kernel is a pure layout change.
func TestUtilitiesBatchBitIdentical(t *testing.T) {
	f := func(seed int64, nn, dd, bb int) bool {
		n := absInt(nn)%300 + 1
		d := absInt(dd)%6 + 1
		rng := xrand.New(seed)
		ds := Independent(rng, n, d)
		us := make([][]float64, absInt(bb)%7+1)
		for b := range us {
			us[b] = make([]float64, d)
			for j := range us[b] {
				us[b][j] = rng.Float64() * 3
			}
		}
		got := ds.UtilitiesBatch(us, nil)
		for b, u := range us {
			want := ds.Utilities(u, nil)
			for i := range want {
				if got[b][i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The kernel must span tuple-tile boundaries correctly.
func TestUtilitiesBatchCrossesTileBoundary(t *testing.T) {
	rng := xrand.New(3)
	ds := Independent(rng, utilitiesTupleTile+37, 3)
	u := []float64{0.2, 1.5, 0.7}
	got := ds.UtilitiesBatch([][]float64{u}, nil)[0]
	want := ds.Utilities(u, nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// Mutation must invalidate the column-major mirror, like the fingerprint.
func TestColumnMajorInvalidatedByMutation(t *testing.T) {
	ds := MustFromRows([][]float64{{1, 2}, {3, 4}})
	u := []float64{1, 1}
	if got := ds.UtilitiesBatch([][]float64{u}, nil)[0]; got[0] != 3 || got[1] != 7 {
		t.Fatalf("pre-mutation scores = %v, want [3 7]", got)
	}
	ds.Append([]float64{5, 6})
	if got := ds.UtilitiesBatch([][]float64{u}, nil)[0]; len(got) != 3 || got[2] != 11 {
		t.Fatalf("post-Append scores = %v, want [3 7 11]", got)
	}
	ds.Negate(0)
	if got := ds.UtilitiesBatch([][]float64{u}, nil)[0]; got[0] != 1 {
		t.Fatalf("post-Negate scores = %v, want [1 1 1]", got)
	}
}

// Buffer reuse: passing the previous dst back must not change results.
func TestUtilitiesBatchReusesDst(t *testing.T) {
	rng := xrand.New(5)
	ds := Independent(rng, 50, 4)
	us := [][]float64{{1, 0, 0, 0}, {0.3, 0.3, 0.3, 0.1}}
	dst := ds.UtilitiesBatch(us, nil)
	again := ds.UtilitiesBatch(us, dst)
	for b := range us {
		want := ds.Utilities(us[b], nil)
		for i := range want {
			if again[b][i] != want[i] {
				t.Fatalf("reused dst score [%d][%d] = %v, want %v", b, i, again[b][i], want[i])
			}
		}
	}
}
