package dataset

// TableI returns the paper's running example (Table I): seven 2D tuples
// whose RRM solution for r=1 is t3 and whose RMS solution is t4, used
// throughout the paper to illustrate shift variance of RMS. Indices are
// zero-based: t1 is row 0, ..., t7 is row 6.
func TableI() *Dataset {
	ds := MustFromRows([][]float64{
		{0, 1},       // t1
		{0.4, 0.95},  // t2
		{0.57, 0.75}, // t3
		{0.79, 0.6},  // t4
		{0.2, 0.5},   // t5
		{0.35, 0.3},  // t6
		{1, 0},       // t7
	})
	if err := ds.SetAttrs([]string{"A1", "A2"}); err != nil {
		panic(err)
	}
	return ds
}
