// Package dataset provides the tuple-set substrate every algorithm in this
// repository operates on: a compact row-major float64 matrix with attribute
// names, min-max normalization (the paper assumes each attribute's range is
// normalized to [0,1]), value shifting (for the shift-invariance theorems),
// direction flipping for smaller-is-better attributes, boundary/basis tuples,
// CSV input/output, the Borzsony-style synthetic workload generators, the
// adversarial lower-bound construction of Theorem 2, and seeded simulators
// standing in for the paper's three real datasets (Island, NBA, Weather).
package dataset

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync/atomic"
)

// Dataset is an n x d matrix of tuples. Larger attribute values are
// preferred; callers with smaller-is-better attributes should Negate them
// first (the paper's convention). The zero value is an empty dataset of
// dimension 0; use New or FromRows to construct a usable one.
//
// Datasets are versioned: every mutation bumps Version and is recorded in a
// bounded delta log readable via Deltas, and Snapshot takes a cheap
// same-lineage copy for version pinning. See delta.go.
type Dataset struct {
	d     int
	vals  []float64 // row-major, length n*d
	attrs []string  // length d, may contain empty names

	// Versioning state; see delta.go.
	lineage uint64
	version uint64
	floor   uint64 // earliest version Deltas can answer from
	log     []Delta

	// fp memoizes Fingerprint (0 = not yet computed). Mutating methods
	// reset it; the atomic makes concurrent readers of a settled dataset
	// race-free.
	fp atomic.Uint64

	// cols memoizes the column-major mirror behind UtilitiesBatch (nil =
	// not yet built). Whole-matrix mutations reset it; Append keeps the
	// stale mirror so ColumnMajor can repair it with straight copies
	// instead of a strided re-transpose. The atomic makes concurrent
	// readers of a settled dataset race-free.
	cols atomic.Pointer[colMirror]
}

// colMirror is a column-major copy of the value matrix together with the row
// count it was built at, so an append-stale mirror can be recognized and
// repaired. The vals slice is read-only once published.
type colMirror struct {
	vals []float64 // attribute j of tuple i at j*rows+i
	rows int
}

// lineageSeq hands out process-unique dataset identities.
var lineageSeq atomic.Uint64

// New returns an empty dataset with dimension d.
func New(d int) *Dataset {
	if d < 1 {
		panic(fmt.Sprintf("dataset: dimension %d < 1", d))
	}
	return &Dataset{d: d, attrs: make([]string, d), lineage: lineageSeq.Add(1)}
}

// FromRows builds a dataset from a slice of rows, copying the values.
// All rows must have the same non-zero length.
func FromRows(rows [][]float64) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: FromRows needs at least one row")
	}
	d := len(rows[0])
	if d == 0 {
		return nil, fmt.Errorf("dataset: rows must have at least one attribute")
	}
	ds := New(d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("dataset: row %d has %d attributes, want %d", i, len(r), d)
		}
		ds.Append(r)
	}
	return ds, nil
}

// MustFromRows is FromRows for static tables in tests and examples.
func MustFromRows(rows [][]float64) *Dataset {
	ds, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return ds
}

// N returns the number of tuples.
func (ds *Dataset) N() int {
	if ds.d == 0 {
		return 0
	}
	return len(ds.vals) / ds.d
}

// Dim returns the number of attributes.
func (ds *Dataset) Dim() int { return ds.d }

// Row returns tuple i as a slice view into the dataset's storage. Callers
// must not modify it; copy first if mutation is needed.
func (ds *Dataset) Row(i int) []float64 {
	return ds.vals[i*ds.d : (i+1)*ds.d : (i+1)*ds.d]
}

// Value returns attribute j of tuple i.
func (ds *Dataset) Value(i, j int) float64 { return ds.vals[i*ds.d+j] }

// Append copies row onto the end of the dataset.
func (ds *Dataset) Append(row []float64) {
	if len(row) != ds.d {
		panic(fmt.Sprintf("dataset: Append row of length %d to dimension-%d dataset", len(row), ds.d))
	}
	ds.vals = append(ds.vals, row...)
	ds.record(Delta{Kind: DeltaAppend, From: ds.version, To: ds.version + 1, Start: ds.N() - 1, Count: 1})
	ds.fp.Store(0) // the mirror stays: ColumnMajor repairs it in place
}

// Delete removes the rows at the given indices, compacting the ids above
// them downward (relative order of survivors is preserved). Indices may be
// unsorted and contain duplicates; an out-of-range index fails the whole
// call with no mutation. Deleting zero rows is a no-op that records nothing.
func (ds *Dataset) Delete(ids []int) error {
	if len(ids) == 0 {
		return nil
	}
	n, d := ds.N(), ds.d
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	uniq := sorted[:0]
	for i, id := range sorted {
		if id < 0 || id >= n {
			return fmt.Errorf("dataset: Delete index %d out of range [0, %d)", id, n)
		}
		if i > 0 && id == sorted[i-1] {
			continue
		}
		uniq = append(uniq, id)
	}
	w, di := 0, 0
	for i := 0; i < n; i++ {
		if di < len(uniq) && uniq[di] == i {
			di++
			continue
		}
		if w != i {
			copy(ds.vals[w*d:(w+1)*d], ds.vals[i*d:(i+1)*d])
		}
		w++
	}
	ds.vals = ds.vals[:w*d]
	ds.record(Delta{Kind: DeltaDelete, From: ds.version, To: ds.version + 1, Deleted: uniq})
	ds.dirty()
	return nil
}

// SetAttrs names the attributes; the slice is copied. Length must match Dim.
func (ds *Dataset) SetAttrs(names []string) error {
	if len(names) != ds.d {
		return fmt.Errorf("dataset: %d attribute names for dimension %d", len(names), ds.d)
	}
	copy(ds.attrs, names)
	ds.rewrite()
	return nil
}

// Attrs returns a copy of the attribute names.
func (ds *Dataset) Attrs() []string {
	out := make([]string, ds.d)
	copy(out, ds.attrs)
	return out
}

// Clone returns a deep copy with a fresh lineage and an empty mutation
// history: the copy is a new logical dataset whose initial state is this
// one's current content. Use Snapshot to take a same-lineage copy that
// preserves version identity.
func (ds *Dataset) Clone() *Dataset {
	out := New(ds.d)
	out.vals = append([]float64(nil), ds.vals...)
	copy(out.attrs, ds.attrs)
	return out
}

// Subset returns a new dataset containing the given rows (copied) in order.
func (ds *Dataset) Subset(ids []int) *Dataset {
	out := New(ds.d)
	copy(out.attrs, ds.attrs)
	for _, i := range ids {
		out.Append(ds.Row(i))
	}
	return out
}

// Head returns a copy containing the first n rows (or all rows if n exceeds N).
func (ds *Dataset) Head(n int) *Dataset {
	if n > ds.N() {
		n = ds.N()
	}
	out := New(ds.d)
	copy(out.attrs, ds.attrs)
	out.vals = append([]float64(nil), ds.vals[:n*ds.d]...)
	return out
}

// Project returns a copy restricted to the given attribute columns, in the
// given order.
func (ds *Dataset) Project(cols []int) (*Dataset, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("dataset: Project needs at least one column")
	}
	out := New(len(cols))
	names := make([]string, len(cols))
	for k, c := range cols {
		if c < 0 || c >= ds.d {
			return nil, fmt.Errorf("dataset: Project column %d out of range [0,%d)", c, ds.d)
		}
		names[k] = ds.attrs[c]
	}
	copy(out.attrs, names)
	row := make([]float64, len(cols))
	for i := 0; i < ds.N(); i++ {
		src := ds.Row(i)
		for k, c := range cols {
			row[k] = src[c]
		}
		out.Append(row)
	}
	return out, nil
}

// Utility returns the linear utility w(u, t_i) = sum_j u[j]*t_i[j].
func (ds *Dataset) Utility(u []float64, i int) float64 {
	row := ds.Row(i)
	var s float64
	for j, w := range u {
		s += w * row[j]
	}
	return s
}

// Utilities fills dst (length N) with the utility of every tuple under u and
// returns it. If dst is nil or too short a new slice is allocated.
func (ds *Dataset) Utilities(u []float64, dst []float64) []float64 {
	n := ds.N()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	d := ds.d
	switch d {
	case 2:
		// Unrolled hot path: 2D sweeps evaluate utilities in tight loops.
		u0, u1 := u[0], u[1]
		for i := 0; i < n; i++ {
			dst[i] = u0*ds.vals[i*2] + u1*ds.vals[i*2+1]
		}
	default:
		for i := 0; i < n; i++ {
			row := ds.vals[i*d : (i+1)*d]
			var s float64
			for j := 0; j < d; j++ {
				s += u[j] * row[j]
			}
			dst[i] = s
		}
	}
	return dst
}

// ColumnMajor returns a cached column-major mirror of the value matrix:
// attribute j of tuple i is at index j*N()+i. The mirror is built on first
// use; callers must treat it as read-only. It is the substrate of
// UtilitiesBatch: scoring many utility vectors walks each column contiguously
// instead of striding through rows.
//
// Whole-matrix mutations and deletes invalidate the mirror; appends keep it,
// and the next call repairs it with one contiguous copy per column (old
// column block + the appended tail) instead of re-transposing the matrix.
// Published mirrors are never mutated, so a slice returned before the append
// stays valid for the rows it covers.
func (ds *Dataset) ColumnMajor() []float64 {
	n, d := ds.N(), ds.d
	old := ds.cols.Load()
	if old != nil && old.rows == n {
		return old.vals
	}
	cols := make([]float64, n*d)
	if old != nil && old.rows < n {
		// Append repair: each column's settled prefix moves with one copy;
		// only the appended tail is gathered from the row-major values.
		n0 := old.rows
		for j := 0; j < d; j++ {
			copy(cols[j*n:j*n+n0], old.vals[j*n0:(j+1)*n0])
			for i := n0; i < n; i++ {
				cols[j*n+i] = ds.vals[i*d+j]
			}
		}
	} else {
		for i := 0; i < n; i++ {
			row := ds.vals[i*d : (i+1)*d]
			for j, v := range row {
				cols[j*n+i] = v
			}
		}
	}
	ds.cols.Store(&colMirror{vals: cols, rows: n})
	return cols
}

// utilitiesTupleTile is the tuple-block width of the batch-scoring kernel:
// one column strip of this many float64s (8 KB) stays L1-resident while
// every vector of the tile accumulates against it.
const utilitiesTupleTile = 1024

// UtilitiesBatch fills dst[b] (each length N) with the utility of every
// tuple under us[b] and returns dst. If dst is nil, too short, or holds
// under-sized rows, the needed slices are (re)allocated. Scores are
// bit-identical to per-vector Utilities calls — both accumulate attribute
// terms in ascending j order — but the kernel runs blocked loops over the
// cached column-major mirror, so a tile of vectors reuses each L1-resident
// column strip instead of re-streaming the whole matrix per vector.
func (ds *Dataset) UtilitiesBatch(us [][]float64, dst [][]float64) [][]float64 {
	n, d := ds.N(), ds.d
	if cap(dst) < len(us) {
		dst = make([][]float64, len(us))
	}
	dst = dst[:len(us)]
	for b := range dst {
		if cap(dst[b]) < n {
			dst[b] = make([]float64, n)
		}
		dst[b] = dst[b][:n]
	}
	if n == 0 {
		return dst
	}
	cols := ds.ColumnMajor()
	for i0 := 0; i0 < n; i0 += utilitiesTupleTile {
		i1 := i0 + utilitiesTupleTile
		if i1 > n {
			i1 = n
		}
		for b, u := range us {
			acc := dst[b][i0:i1]
			for i := range acc {
				acc[i] = 0
			}
			for j := 0; j < d; j++ {
				w := u[j]
				col := cols[j*n+i0 : j*n+i1]
				for i, v := range col {
					acc[i] += w * v
				}
			}
		}
	}
	return dst
}

// Normalize min-max scales every attribute to [0,1] in place, matching the
// paper's preprocessing. Constant attributes become all-zero. It returns the
// per-attribute (min, max) pairs used, so callers can map results back to
// original units.
func (ds *Dataset) Normalize() (mins, maxs []float64) {
	n := ds.N()
	mins = make([]float64, ds.d)
	maxs = make([]float64, ds.d)
	for j := 0; j < ds.d; j++ {
		mins[j] = math.Inf(1)
		maxs[j] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		row := ds.Row(i)
		for j, v := range row {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	for i := 0; i < n; i++ {
		row := ds.Row(i)
		for j := range row {
			span := maxs[j] - mins[j]
			if span == 0 {
				row[j] = 0
			} else {
				row[j] = (row[j] - mins[j]) / span
			}
		}
	}
	ds.rewrite()
	return mins, maxs
}

// Shift adds delta[j] to every value of attribute j, in place. Theorem 1
// proves RRM/RRRM solutions are invariant under this operation; tests rely
// on it.
func (ds *Dataset) Shift(delta []float64) {
	if len(delta) != ds.d {
		panic(fmt.Sprintf("dataset: Shift with %d deltas on dimension %d", len(delta), ds.d))
	}
	for i := 0; i < ds.N(); i++ {
		row := ds.Row(i)
		for j := range row {
			row[j] += delta[j]
		}
	}
	ds.rewrite()
}

// Negate flips attribute j (v -> -v), in place, converting a
// smaller-is-better attribute to the larger-is-better convention. Follow
// with Normalize to restore the [0,1] range.
func (ds *Dataset) Negate(j int) {
	if j < 0 || j >= ds.d {
		panic(fmt.Sprintf("dataset: Negate attribute %d out of range [0,%d)", j, ds.d))
	}
	for i := 0; i < ds.N(); i++ {
		ds.Row(i)[j] = -ds.Row(i)[j]
	}
	ds.rewrite()
}

// Basis returns one boundary-tuple index per attribute: the tuple with the
// maximum value on that attribute (ties broken by lower index). After
// Normalize these are the paper's basis B (tuples with t[i] = 1). Duplicate
// indices are possible when one tuple dominates several attributes; the
// returned slice always has length Dim.
func (ds *Dataset) Basis() []int {
	n := ds.N()
	out := make([]int, ds.d)
	for j := 0; j < ds.d; j++ {
		best, bestV := 0, math.Inf(-1)
		for i := 0; i < n; i++ {
			if v := ds.Value(i, j); v > bestV {
				best, bestV = i, v
			}
		}
		out[j] = best
	}
	_ = n
	return out
}

// Fingerprint returns a 64-bit FNV-1a hash over the dataset's shape,
// attribute names, and raw value bits. Two datasets with equal fingerprints
// are, for caching purposes, the same dataset; mutation (Negate, Normalize,
// Shift, Append) changes the fingerprint. The hash is memoized, so repeated
// calls on a settled dataset — the cache-hit hot path — are O(1); only the
// first call after construction or mutation pays the full pass.
func (ds *Dataset) Fingerprint() uint64 {
	if fp := ds.fp.Load(); fp != 0 {
		return fp
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(ds.d))
	put(uint64(ds.N()))
	for _, a := range ds.attrs {
		h.Write([]byte(a))
		h.Write([]byte{0})
	}
	for _, v := range ds.vals {
		put(math.Float64bits(v))
	}
	fp := h.Sum64()
	// A true hash of 0 (1-in-2^64) is just never memoized.
	ds.fp.Store(fp)
	return fp
}

// dirty invalidates the memoized fingerprint and column-major mirror.
// Append does not use it — an append-stale mirror is repairable — but every
// other mutator does.
func (ds *Dataset) dirty() {
	ds.fp.Store(0)
	ds.cols.Store(nil)
}

// rewrite records a whole-matrix mutation: derived structure cannot be
// repaired across it, only rebuilt.
func (ds *Dataset) rewrite() {
	ds.record(Delta{Kind: DeltaRewrite, From: ds.version, To: ds.version + 1})
	ds.dirty()
}

// String summarizes the dataset for logs.
func (ds *Dataset) String() string {
	return fmt.Sprintf("Dataset(n=%d, d=%d)", ds.N(), ds.d)
}
