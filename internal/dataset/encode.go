package dataset

// Durable binary encoding of a Dataset, the substrate of the store
// subsystem's WAL register events and snapshots. The encoding is complete:
// it carries the value matrix, attribute names, and the whole versioning
// state (lineage, version, delta-log floor, and the delta log itself), so a
// decoded dataset is indistinguishable from the original to every consumer —
// fingerprints match bit for bit, Deltas answers the same windows, and the
// engine's delta-aware VecSet cache can repair across versions recovered
// from disk exactly as it does across live mutations.
//
// The format is a compact tag-free sequence: a two-byte magic + format
// version, uvarint-encoded shape and versioning fields, and the raw IEEE-754
// bits of the value matrix. Integrity is the caller's concern (the store
// wraps every encoding in a CRC32-checked record); DecodeBinary's own
// validation exists so that arbitrary bytes never panic or allocate
// unboundedly, which the fuzz targets assert.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoding header: magic byte + format version. Bump the version when the
// layout changes; DecodeBinary rejects versions it does not know.
const (
	encMagic   = 0xD5
	encVersion = 1
)

// ErrEncoding is wrapped by every DecodeBinary failure.
var ErrEncoding = errors.New("dataset: invalid binary encoding")

func encErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrEncoding, fmt.Sprintf(format, args...))
}

// AppendUvarint appends v's unsigned-varint encoding to buf and returns the
// extended slice — the one varint-append helper every encoder in the
// durability stack (dataset encodings, WAL events, snapshot registries)
// shares.
func AppendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:n]...)
}

// AppendBinary appends the dataset's durable binary encoding to buf and
// returns the extended slice. The encoding includes the versioning state;
// DecodeBinary restores a dataset with the same fingerprint, lineage,
// version, and replayable delta history.
func (ds *Dataset) AppendBinary(buf []byte) []byte {
	putUvarint := func(v uint64) { buf = AppendUvarint(buf, v) }
	n := ds.N()
	buf = append(buf, encMagic, encVersion)
	putUvarint(uint64(ds.d))
	putUvarint(uint64(n))
	for _, a := range ds.attrs {
		putUvarint(uint64(len(a)))
		buf = append(buf, a...)
	}
	putUvarint(ds.lineage)
	putUvarint(ds.version)
	putUvarint(ds.floor)
	putUvarint(uint64(len(ds.log)))
	for _, d := range ds.log {
		buf = append(buf, byte(d.Kind))
		putUvarint(d.From)
		putUvarint(d.To)
		putUvarint(uint64(d.Start))
		putUvarint(uint64(d.Count))
		putUvarint(uint64(len(d.Deleted)))
		// Deleted ids are ascending and unique; gap encoding keeps dense
		// delete bursts to roughly one byte per id.
		prev := 0
		for i, id := range d.Deleted {
			if i == 0 {
				putUvarint(uint64(id))
			} else {
				putUvarint(uint64(id - prev))
			}
			prev = id
		}
	}
	off := len(buf)
	buf = append(buf, make([]byte, n*ds.d*8)...)
	for _, v := range ds.vals {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return buf
}

// decoder is a bounds-checked cursor over an encoding.
type decoder struct {
	data []byte
	off  int
}

func (dec *decoder) remaining() int { return len(dec.data) - dec.off }

func (dec *decoder) byte() (byte, error) {
	if dec.off >= len(dec.data) {
		return 0, encErr("truncated at offset %d", dec.off)
	}
	b := dec.data[dec.off]
	dec.off++
	return b, nil
}

func (dec *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(dec.data[dec.off:])
	if n <= 0 {
		return 0, encErr("bad uvarint at offset %d", dec.off)
	}
	dec.off += n
	return v, nil
}

// length decodes a uvarint that counts items of at least minBytes encoded
// bytes each, rejecting values the remaining input cannot possibly hold —
// the guard that keeps arbitrary inputs from triggering huge allocations.
func (dec *decoder) length(minBytes int, what string) (int, error) {
	v, err := dec.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(dec.remaining()/minBytes) {
		return 0, encErr("%s count %d exceeds remaining input", what, v)
	}
	return int(v), nil
}

// intField decodes a non-negative integer that is not a count of encoded
// items, rejecting only values that cannot round-trip through int.
func (dec *decoder) intField(what string) (int, error) {
	v, err := dec.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(math.MaxInt64/2) {
		return 0, encErr("%s %d out of range", what, v)
	}
	return int(v), nil
}

func (dec *decoder) bytes(n int) ([]byte, error) {
	if n > dec.remaining() {
		return nil, encErr("truncated at offset %d (need %d bytes)", dec.off, n)
	}
	b := dec.data[dec.off : dec.off+n]
	dec.off += n
	return b, nil
}

// DecodeBinary decodes one dataset encoding from the front of data,
// returning the dataset and the number of bytes consumed. The decoded
// dataset carries the encoded lineage, version, and delta log; the
// process-wide lineage sequence is advanced past the decoded lineage so
// datasets constructed later never collide with recovered identities.
// Arbitrary input returns an error wrapping ErrEncoding; it never panics.
func DecodeBinary(data []byte) (*Dataset, int, error) {
	dec := &decoder{data: data}
	magic, err := dec.byte()
	if err != nil {
		return nil, 0, err
	}
	if magic != encMagic {
		return nil, 0, encErr("bad magic 0x%02x", magic)
	}
	ver, err := dec.byte()
	if err != nil {
		return nil, 0, err
	}
	if ver != encVersion {
		return nil, 0, encErr("unknown format version %d", ver)
	}
	d, err := dec.length(0, "dimension")
	if err != nil {
		return nil, 0, err
	}
	if d < 1 {
		return nil, 0, encErr("dimension %d < 1", d)
	}
	n, err := dec.length(0, "row")
	if err != nil {
		return nil, 0, err
	}
	attrs := make([]string, d)
	for j := range attrs {
		alen, err := dec.length(1, "attribute name byte")
		if err != nil {
			return nil, 0, err
		}
		ab, err := dec.bytes(alen)
		if err != nil {
			return nil, 0, err
		}
		attrs[j] = string(ab)
	}
	lineage, err := dec.uvarint()
	if err != nil {
		return nil, 0, err
	}
	version, err := dec.uvarint()
	if err != nil {
		return nil, 0, err
	}
	floor, err := dec.uvarint()
	if err != nil {
		return nil, 0, err
	}
	nlog, err := dec.length(6, "delta")
	if err != nil {
		return nil, 0, err
	}
	var log []Delta
	if nlog > 0 {
		log = make([]Delta, nlog)
	}
	for i := range log {
		kind, err := dec.byte()
		if err != nil {
			return nil, 0, err
		}
		if DeltaKind(kind) < DeltaAppend || DeltaKind(kind) > DeltaRewrite {
			return nil, 0, encErr("delta %d has unknown kind %d", i, kind)
		}
		from, err := dec.uvarint()
		if err != nil {
			return nil, 0, err
		}
		to, err := dec.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if to <= from {
			return nil, 0, encErr("delta %d has non-increasing range [%d, %d]", i, from, to)
		}
		// Start and Count are historical row positions, not sizes of encoded
		// payload (a delta can reference rows long since deleted), so they
		// get a plain integer-range check rather than a remaining-bytes one.
		start, err := dec.intField("delta start")
		if err != nil {
			return nil, 0, err
		}
		count, err := dec.intField("delta count")
		if err != nil {
			return nil, 0, err
		}
		ndel, err := dec.length(1, "deleted id")
		if err != nil {
			return nil, 0, err
		}
		var deleted []int
		if ndel > 0 {
			deleted = make([]int, ndel)
			prev := uint64(0)
			for k := range deleted {
				v, err := dec.uvarint()
				if err != nil {
					return nil, 0, err
				}
				// Bound the raw component BEFORE accumulating: prev and v
				// each <= MaxInt64/2, so the sum cannot wrap uint64 — a
				// crafted near-2^64 gap must not alias to a small id and
				// sneak past the strictly-ascending check.
				if v > uint64(math.MaxInt64/2) {
					return nil, 0, encErr("delta %d deleted id gap %d out of range", i, v)
				}
				if k > 0 {
					if v == 0 {
						return nil, 0, encErr("delta %d deleted ids not strictly ascending", i)
					}
					v += prev
				}
				if v > uint64(math.MaxInt64/2) {
					return nil, 0, encErr("delta %d deleted id %d out of range", i, v)
				}
				deleted[k] = int(v)
				prev = v
			}
		}
		log[i] = Delta{Kind: DeltaKind(kind), From: from, To: to, Start: start, Count: count, Deleted: deleted}
	}
	if n > dec.remaining()/(8*d) {
		return nil, 0, encErr("value matrix %dx%d exceeds remaining input", n, d)
	}
	vb, err := dec.bytes(n * d * 8)
	if err != nil {
		return nil, 0, err
	}
	vals := make([]float64, n*d)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(vb[i*8:]))
	}
	ds := &Dataset{
		d:       d,
		vals:    vals,
		attrs:   attrs,
		lineage: lineage,
		version: version,
		floor:   floor,
		log:     log,
	}
	bumpLineageFloor(lineage)
	return ds, dec.off, nil
}

// bumpLineageFloor advances the process-wide lineage sequence to at least l,
// so lineages restored from disk can never collide with ones assigned to
// datasets constructed afterwards in this process.
func bumpLineageFloor(l uint64) {
	for {
		cur := lineageSeq.Load()
		if cur >= l || lineageSeq.CompareAndSwap(cur, l) {
			return
		}
	}
}
