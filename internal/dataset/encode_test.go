package dataset

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// mutatedDataset builds a dataset with a non-trivial history: appends,
// deletes, and (optionally) a rewrite, so the encoding must carry a delta
// log with every kind.
func mutatedDataset(t *testing.T, rewrite bool) *Dataset {
	t.Helper()
	ds := New(3)
	if err := ds.SetAttrs([]string{"alpha", "", "γ"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		ds.Append([]float64{float64(i) / 12, math.Sqrt(float64(i + 1)), -float64(i)})
	}
	if err := ds.Delete([]int{0, 3, 7}); err != nil {
		t.Fatal(err)
	}
	ds.Append([]float64{0.5, math.Inf(1), math.NaN()})
	if rewrite {
		ds.Shift([]float64{0.25, 0, -1})
	}
	return ds
}

func assertDatasetEqual(t *testing.T, got, want *Dataset) {
	t.Helper()
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprint %016x != %016x", got.Fingerprint(), want.Fingerprint())
	}
	if got.Lineage() != want.Lineage() || got.Version() != want.Version() || got.floor != want.floor {
		t.Fatalf("versioning state (%d,%d,%d) != (%d,%d,%d)",
			got.Lineage(), got.Version(), got.floor,
			want.Lineage(), want.Version(), want.floor)
	}
	if !reflect.DeepEqual(got.Attrs(), want.Attrs()) {
		t.Fatalf("attrs %v != %v", got.Attrs(), want.Attrs())
	}
	if !reflect.DeepEqual(got.log, want.log) {
		t.Fatalf("delta log %+v != %+v", got.log, want.log)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, rewrite := range []bool{false, true} {
		ds := mutatedDataset(t, rewrite)
		enc := ds.AppendBinary(nil)
		back, n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("rewrite=%v: decode: %v", rewrite, err)
		}
		if n != len(enc) {
			t.Fatalf("rewrite=%v: consumed %d of %d bytes", rewrite, n, len(enc))
		}
		assertDatasetEqual(t, back, ds)
		// NaN breaks value comparison through ==; the fingerprint (over raw
		// bits) already proved the matrices identical.

		// The decoded dataset must answer delta windows like the original.
		since := ds.Version() - 2
		wantDeltas, wantOK := ds.Deltas(since)
		gotDeltas, gotOK := back.Deltas(since)
		if wantOK != gotOK || !reflect.DeepEqual(wantDeltas, gotDeltas) {
			t.Fatalf("rewrite=%v: Deltas(%d) diverged: (%v,%v) != (%v,%v)",
				rewrite, since, gotDeltas, gotOK, wantDeltas, wantOK)
		}
	}
}

// TestBinaryRoundTripSequence checks sequential decoding: DecodeBinary
// reports exact consumption, so concatenated encodings (the snapshot layout)
// decode one after another.
func TestBinaryRoundTripSequence(t *testing.T) {
	a := mutatedDataset(t, false)
	b := a.Snapshot()
	b.Append([]float64{1, 2, 3})
	var enc []byte
	enc = a.AppendBinary(enc)
	enc = b.AppendBinary(enc)
	backA, n, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	backB, m, err := DecodeBinary(enc[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(enc) {
		t.Fatalf("consumed %d+%d of %d bytes", n, m, len(enc))
	}
	assertDatasetEqual(t, backA, a)
	assertDatasetEqual(t, backB, b)
	if backA.Lineage() != backB.Lineage() {
		t.Fatal("snapshot pair lost its shared lineage")
	}
}

// TestDecodeBumpsLineageSeq checks that datasets constructed after a decode
// never reuse a recovered lineage: the whole point of restoring lineage is
// that the engine's identity index can pair pre- and post-restart versions,
// which a collision with an unrelated dataset would silently degrade.
func TestDecodeBumpsLineageSeq(t *testing.T) {
	ds := New(2)
	ds.Append([]float64{1, 2})
	enc := ds.AppendBinary(nil)
	// Simulate a recovered lineage far above anything assigned so far.
	high := lineageSeq.Load() + 1000
	ds.lineage = high
	enc = ds.AppendBinary(enc[:0])
	back, _, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Lineage() != high {
		t.Fatalf("decoded lineage %d, want %d", back.Lineage(), high)
	}
	if fresh := New(2); fresh.Lineage() <= high {
		t.Fatalf("post-decode lineage %d collides with recovered range (<= %d)", fresh.Lineage(), high)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	ds := mutatedDataset(t, false)
	enc := ds.AppendBinary(nil)
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   {0x00, 0x01},
		"bad version": {encMagic, 0xfe},
		"truncated":   enc[:len(enc)-5],
		"huge n":      {encMagic, encVersion, 1, 0xff, 0xff, 0xff, 0xff, 0x0f},
	}
	for name, data := range cases {
		if _, _, err := DecodeBinary(data); !errors.Is(err, ErrEncoding) {
			t.Errorf("%s: err = %v, want ErrEncoding", name, err)
		}
	}
	// Every strict prefix must fail cleanly, never panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(enc))
		}
	}
}
