package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/xrand"
)

func TestBasicAccessors(t *testing.T) {
	ds := TableI()
	if ds.N() != 7 || ds.Dim() != 2 {
		t.Fatalf("N=%d Dim=%d, want 7, 2", ds.N(), ds.Dim())
	}
	if ds.Value(2, 0) != 0.57 || ds.Value(2, 1) != 0.75 {
		t.Errorf("Value(2) = (%v,%v)", ds.Value(2, 0), ds.Value(2, 1))
	}
	row := ds.Row(3)
	if row[0] != 0.79 || row[1] != 0.6 {
		t.Errorf("Row(3) = %v", row)
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) should fail")
	}
	if _, err := FromRows([][]float64{{}}); err == nil {
		t.Error("FromRows with empty row should fail")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("FromRows with ragged rows should fail")
	}
}

func TestUtility(t *testing.T) {
	ds := TableI()
	u := []float64{0.7, 0.3}
	// t3 = (0.57, 0.75): 0.7*0.57 + 0.3*0.75 = 0.624.
	if got := ds.Utility(u, 2); math.Abs(got-0.624) > 1e-12 {
		t.Errorf("Utility = %v, want 0.624", got)
	}
	all := ds.Utilities(u, nil)
	if len(all) != 7 {
		t.Fatalf("Utilities returned %d values", len(all))
	}
	for i := range all {
		if math.Abs(all[i]-ds.Utility(u, i)) > 1e-12 {
			t.Errorf("Utilities[%d] inconsistent with Utility", i)
		}
	}
	// Reuse path.
	buf := make([]float64, 7)
	got := ds.Utilities(u, buf)
	if &got[0] != &buf[0] {
		t.Error("Utilities did not reuse provided buffer")
	}
}

func TestUtilitiesHigherDim(t *testing.T) {
	rng := xrand.New(11)
	ds := Independent(rng, 50, 5)
	u := []float64{0.1, 0.2, 0.3, 0.25, 0.15}
	all := ds.Utilities(u, nil)
	for i := 0; i < ds.N(); i++ {
		if math.Abs(all[i]-ds.Utility(u, i)) > 1e-12 {
			t.Fatalf("Utilities[%d] mismatch in 5D", i)
		}
	}
}

func TestNormalize(t *testing.T) {
	ds := MustFromRows([][]float64{
		{10, 5, 3},
		{20, 5, 1},
		{15, 5, 2},
	})
	mins, maxs := ds.Normalize()
	if mins[0] != 10 || maxs[0] != 20 {
		t.Errorf("attr 0 range = [%v,%v]", mins[0], maxs[0])
	}
	if ds.Value(0, 0) != 0 || ds.Value(1, 0) != 1 || ds.Value(2, 0) != 0.5 {
		t.Errorf("attr 0 after normalize: %v %v %v", ds.Value(0, 0), ds.Value(1, 0), ds.Value(2, 0))
	}
	// Constant attribute becomes zero.
	for i := 0; i < 3; i++ {
		if ds.Value(i, 1) != 0 {
			t.Errorf("constant attr not zeroed: row %d = %v", i, ds.Value(i, 1))
		}
	}
	// Third attribute maxes at 1.
	if ds.Value(0, 2) != 1 {
		t.Errorf("attr 2 max = %v", ds.Value(0, 2))
	}
}

func TestShiftAndNegate(t *testing.T) {
	ds := TableI()
	orig := ds.Clone()
	ds.Shift([]float64{0, 4})
	for i := 0; i < ds.N(); i++ {
		if ds.Value(i, 0) != orig.Value(i, 0) || ds.Value(i, 1) != orig.Value(i, 1)+4 {
			t.Fatalf("Shift wrong at row %d", i)
		}
	}
	ds.Negate(1)
	for i := 0; i < ds.N(); i++ {
		if ds.Value(i, 1) != -(orig.Value(i, 1) + 4) {
			t.Fatalf("Negate wrong at row %d", i)
		}
	}
}

func TestBasis(t *testing.T) {
	ds := TableI()
	b := ds.Basis()
	// Max A1 is t7 (index 6), max A2 is t1 (index 0).
	if b[0] != 6 || b[1] != 0 {
		t.Errorf("Basis = %v, want [6 0]", b)
	}
}

func TestSubsetHeadProject(t *testing.T) {
	ds := TableI()
	sub := ds.Subset([]int{2, 0})
	if sub.N() != 2 || sub.Value(0, 0) != 0.57 || sub.Value(1, 1) != 1 {
		t.Errorf("Subset wrong: %v", sub)
	}
	h := ds.Head(3)
	if h.N() != 3 || h.Value(2, 0) != 0.57 {
		t.Errorf("Head wrong")
	}
	if ds.Head(100).N() != 7 {
		t.Errorf("Head beyond N should clamp")
	}
	p, err := ds.Project([]int{1})
	if err != nil || p.Dim() != 1 || p.Value(0, 0) != 1 {
		t.Errorf("Project wrong: %v %v", p, err)
	}
	if _, err := ds.Project([]int{5}); err == nil {
		t.Error("Project out of range should fail")
	}
	if _, err := ds.Project(nil); err == nil {
		t.Error("Project with no columns should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	ds := TableI()
	c := ds.Clone()
	c.Row(0)[0] = 99
	if ds.Value(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}

// Property: normalization leaves every value in [0,1] with each
// non-constant attribute attaining both endpoints.
func TestNormalizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		n, d := 2+rng.Intn(40), 1+rng.Intn(5)
		ds := New(d)
		row := make([]float64, d)
		for i := 0; i < n; i++ {
			for j := range row {
				row[j] = rng.NormFloat64() * 100
			}
			ds.Append(row)
		}
		ds.Normalize()
		seenMax := make([]bool, d)
		seenMin := make([]bool, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				v := ds.Value(i, j)
				if v < 0 || v > 1 {
					return false
				}
				if v == 1 {
					seenMax[j] = true
				}
				if v == 0 {
					seenMin[j] = true
				}
			}
		}
		for j := 0; j < d; j++ {
			if !seenMax[j] || !seenMin[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: shifting commutes with utility up to the constant sum(u*delta)
// (the heart of Theorem 1's proof).
func TestShiftUtilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		d := 2 + rng.Intn(4)
		ds := Independent(rng, 20, d)
		delta := make([]float64, d)
		for j := range delta {
			delta[j] = rng.Float64() * 10
		}
		u := rng.UnitOrthantDirection(d)
		before := ds.Utilities(u, nil)
		shift := 0.0
		for j := range delta {
			shift += u[j] * delta[j]
		}
		ds.Shift(delta)
		after := ds.Utilities(u, nil)
		for i := range before {
			if math.Abs(after[i]-(before[i]+shift)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
