package dataset

import (
	"math"

	"github.com/rankregret/rankregret/internal/xrand"
)

// The three synthetic workloads follow the classic skyline-benchmark
// generator of Borzsony, Kossmann and Stocker ("The skyline operator", ICDE
// 2001), which the paper uses for all synthetic experiments: independent,
// correlated and anti-correlated attribute distributions on [0,1]^d.

// Independent returns n tuples with attributes drawn i.i.d. uniform [0,1].
func Independent(rng *xrand.Rand, n, d int) *Dataset {
	ds := New(d)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			row[j] = rng.Float64()
		}
		ds.Append(row)
	}
	return ds
}

// Correlated returns n tuples whose attributes are positively correlated: a
// per-tuple latent quality value plus small Gaussian jitter per attribute,
// with out-of-range draws rejected (clamping would pile artificial points
// onto the boundary and inflate the skyline). Good tuples are good
// everywhere, so skylines are tiny and rank-regrets small, matching the
// paper's observations.
func Correlated(rng *xrand.Rand, n, d int) *Dataset {
	const jitter = 0.05
	ds := New(d)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
	redraw:
		for {
			base := rng.Float64()
			for j := 0; j < d; j++ {
				v := base + jitter*rng.NormFloat64()
				if v < 0 || v > 1 {
					continue redraw
				}
				row[j] = v
			}
			break
		}
		ds.Append(row)
	}
	return ds
}

// Anticorrelated returns n tuples in a thin band around the hyperplane
// sum(t) = d/2 with strongly negatively correlated attributes: each tuple's
// total mass is tightly concentrated around d/2 and split across attributes
// by a random point of the simplex (out-of-range draws rejected). Tuples
// good on one attribute are bad on others, producing large skylines and the
// paper's hardest workload.
func Anticorrelated(rng *xrand.Rand, n, d int) *Dataset {
	const massJitter = 0.015
	ds := New(d)
	for i := 0; i < n; i++ {
	redraw:
		for {
			mass := float64(d)/2 + massJitter*float64(d)*rng.NormFloat64()
			w := rng.Simplex(d)
			row := make([]float64, d)
			for j := 0; j < d; j++ {
				v := mass * w[j]
				if v < 0 || v > 1 {
					continue redraw
				}
				row[j] = v
			}
			ds.Append(row)
			break
		}
	}
	return ds
}

// QuarterCircle builds the adversarial dataset from the proof of Theorem 2:
// n tuples evenly spaced on the quarter arc of the unit circle in the first
// two attributes; for d > 2 the remaining attributes are fixed at 1. Every
// size-r subset of it has rank-regret Omega(n/r) for the full space L.
func QuarterCircle(n, d int) *Dataset {
	ds := New(d)
	row := make([]float64, d)
	for j := 2; j < d; j++ {
		row[j] = 1
	}
	for i := 0; i < n; i++ {
		theta := math.Pi / 2 * float64(i) / float64(n-1)
		// Clamp: cos(pi/2) evaluates to a tiny negative in float64.
		row[0] = clamp01(math.Cos(theta))
		row[1] = clamp01(math.Sin(theta))
		ds.Append(row)
	}
	return ds
}

// Synthetic dispatches on a workload name ("indep", "corr", "anti"); it is
// the single entry point the benchmark harness uses.
func Synthetic(kind string, rng *xrand.Rand, n, d int) (*Dataset, bool) {
	switch kind {
	case "indep", "independent":
		return Independent(rng, n, d), true
	case "corr", "correlated":
		return Correlated(rng, n, d), true
	case "anti", "anticorrelated", "anti-correlated":
		return Anticorrelated(rng, n, d), true
	default:
		return nil, false
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
