package dataset

// Versioning and the delta log. Every mutation bumps a Dataset's monotone
// version and records what changed, so consumers holding expensive derived
// structure (column mirrors, per-vector top-K caches, solution caches) can
// see *what* changed — not merely *that* something changed — and repair
// incrementally instead of rebuilding. Appends and deletes are structured
// (repairable) deltas; whole-matrix mutations (Normalize, Shift, Negate,
// SetAttrs) are recorded as opaque rewrites that no consumer can repair
// across.

// DeltaKind classifies one recorded mutation.
type DeltaKind uint8

const (
	// DeltaAppend covers one or more rows appended to the end of the
	// dataset. Consecutive appends coalesce into a single delta.
	DeltaAppend DeltaKind = iota + 1
	// DeltaDelete covers one Delete call: the removal of a set of rows,
	// compacting the ids above them downward.
	DeltaDelete
	// DeltaRewrite covers a whole-matrix mutation (Normalize, Shift,
	// Negate, SetAttrs): every value (or the identity-bearing attribute
	// names) may have changed, so derived structure cannot be repaired
	// across it. Consecutive rewrites coalesce.
	DeltaRewrite
)

// String returns the kind's log label.
func (k DeltaKind) String() string {
	switch k {
	case DeltaAppend:
		return "append"
	case DeltaDelete:
		return "delete"
	case DeltaRewrite:
		return "rewrite"
	default:
		return "unknown"
	}
}

// Delta is one entry of a dataset's mutation log: applying it to the
// dataset as of version From yields the dataset as of version To. Coalesced
// appends and rewrites satisfy To-From == number of mutation calls merged
// (appends merge exactly one row per version), which is what lets Deltas
// split an entry when a requested `since` falls inside its range.
type Delta struct {
	Kind DeltaKind
	// From and To delimit the version range this delta covers.
	From, To uint64
	// Start and Count locate appended rows: rows [Start, Start+Count) of
	// the dataset immediately after this delta applied (appends only).
	Start, Count int
	// Deleted holds the removed row indices in pre-delete indexing,
	// ascending and unique (deletes only). Treated as immutable once
	// recorded.
	Deleted []int
}

// maxDeltaLog bounds the per-dataset mutation log. Coalescing keeps steady
// append traffic at one entry, so the cap is effectively a bound on how many
// distinct delete bursts remain replayable; beyond it the oldest entries are
// forgotten and Deltas reports the history as incomplete, which consumers
// treat as "rebuild".
const maxDeltaLog = 64

// Version returns the dataset's monotone mutation counter: 0 for a freshly
// constructed empty dataset, +1 per mutating call (Append, Delete,
// Normalize, Shift, Negate, SetAttrs). Snapshots share the lineage and
// version of their source; content equality does not imply version equality
// (use Fingerprint for content identity).
func (ds *Dataset) Version() uint64 { return ds.version }

// Lineage returns the dataset's identity token: a process-unique id assigned
// at construction and preserved by Snapshot, so caches can recognize two
// snapshots as versions of the same logical dataset. Clone, Subset, Head and
// Project derive *new* datasets and get fresh lineages.
func (ds *Dataset) Lineage() uint64 { return ds.lineage }

// Deltas returns the mutations recorded after version since, oldest first,
// and whether the log reaches back that far. A true second return with an
// empty slice means "nothing changed" (since == Version()). A false return
// means the history was truncated (or since is in the future) and the caller
// must treat the change as a full rewrite. The returned deltas are copies;
// mutating them does not affect the log.
func (ds *Dataset) Deltas(since uint64) ([]Delta, bool) {
	if since > ds.version {
		return nil, false
	}
	if since == ds.version {
		return nil, true
	}
	if since < ds.floor {
		return nil, false
	}
	var out []Delta
	for _, d := range ds.log {
		if d.To <= since {
			continue
		}
		if d.From < since {
			// since falls inside a coalesced entry: split it. Appends merge
			// one row per version, rewrites carry no payload, and deletes
			// never coalesce, so the arithmetic below is exact.
			skip := int(since - d.From)
			d.From = since
			if d.Kind == DeltaAppend {
				d.Start += skip
				d.Count -= skip
			}
		}
		if d.Deleted != nil {
			d.Deleted = append([]int(nil), d.Deleted...)
		}
		out = append(out, d)
	}
	return out, true
}

// record appends a delta to the log, coalescing with the previous entry when
// possible and enforcing the log cap.
func (ds *Dataset) record(d Delta) {
	ds.version = d.To
	if n := len(ds.log); n > 0 {
		last := &ds.log[n-1]
		switch {
		case d.Kind == DeltaAppend && last.Kind == DeltaAppend && last.To == d.From && last.Start+last.Count == d.Start:
			last.Count += d.Count
			last.To = d.To
			return
		case d.Kind == DeltaRewrite && last.Kind == DeltaRewrite && last.To == d.From:
			last.To = d.To
			return
		}
	}
	ds.log = append(ds.log, d)
	for len(ds.log) > maxDeltaLog {
		ds.floor = ds.log[0].To
		ds.log = ds.log[1:]
	}
}

// Snapshot returns an immutable-by-convention copy that shares the source's
// lineage, version, and delta history — the substrate of version pinning:
// serving layers mutate a snapshot of the current version and publish it as
// the new current, so in-flight solves over older versions keep consistent
// data. The memoized fingerprint and column mirror carry over (both are
// read-only), making a snapshot cheap to take relative to a cold rebuild of
// either.
//
// Versions within a lineage must stay linear: mutate only the newest
// snapshot. Divergent mutation of two snapshots of the same lineage yields
// two datasets whose (lineage, version) pairs collide; consumers repairing
// across the delta log verify the surviving rows' content byte-for-byte
// before trusting it and fall back to full rebuilds on any drift, so
// results stay correct, but all repair benefit is lost.
func (ds *Dataset) Snapshot() *Dataset {
	out := &Dataset{
		d:       ds.d,
		vals:    append([]float64(nil), ds.vals...),
		attrs:   append([]string(nil), ds.attrs...),
		lineage: ds.lineage,
		version: ds.version,
		floor:   ds.floor,
		log:     append([]Delta(nil), ds.log...),
	}
	out.fp.Store(ds.fp.Load())
	out.cols.Store(ds.cols.Load())
	return out
}

// ComposeDeltas flattens a delta sequence over a dataset that had oldN rows
// into a single mapping: oldToNew[i] is the new index of old row i (-1 if it
// was deleted), newIDs lists the indices of rows that did not exist at the
// start (appended and still present), ascending, and newN is the final row
// count. ok is false when the sequence contains a rewrite or is internally
// inconsistent, in which case no incremental repair is possible.
func ComposeDeltas(oldN int, deltas []Delta) (oldToNew []int, newIDs []int, newN int, ok bool) {
	// origin[i] = old row id of current row i, or -1 for rows appended
	// within the window.
	origin := make([]int, oldN, oldN+16)
	for i := range origin {
		origin[i] = i
	}
	for _, d := range deltas {
		switch d.Kind {
		case DeltaAppend:
			if d.Start != len(origin) || d.Count < 0 {
				return nil, nil, 0, false
			}
			for i := 0; i < d.Count; i++ {
				origin = append(origin, -1)
			}
		case DeltaDelete:
			w, di := 0, 0
			for i := range origin {
				if di < len(d.Deleted) && d.Deleted[di] == i {
					di++
					continue
				}
				origin[w] = origin[i]
				w++
			}
			if di != len(d.Deleted) {
				return nil, nil, 0, false // an id out of range: inconsistent
			}
			origin = origin[:w]
		default:
			return nil, nil, 0, false
		}
	}
	oldToNew = make([]int, oldN)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for pos, o := range origin {
		if o >= 0 {
			oldToNew[o] = pos
		} else {
			newIDs = append(newIDs, pos)
		}
	}
	return oldToNew, newIDs, len(origin), true
}
