// Package funcspace models the space of linear utility functions a
// rank-regret query ranges over. RRM uses the full non-negative orthant L;
// RRRM (Definition 4) restricts to an arbitrary convex subspace U. Because a
// linear utility's induced ranking is invariant under positive scaling of
// the weight vector, a space is characterized by its *direction cone*
// {u/|u| : u in U}; all queries here work on directions.
//
// Implementations: Full (the orthant L), Cone (homogeneous linear
// constraints, e.g. the weak rankings of the paper's Section VI.B.5),
// Polytope (general A.u <= b), and Ball (hypersphere around an estimated
// weight vector, as in Mouratidis et al.).
package funcspace

import (
	"fmt"
	"math"

	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/lp"
	"github.com/rankregret/rankregret/internal/xrand"
)

const dirEps = 1e-9

// Space is a convex space of utility vectors, queried by direction.
type Space interface {
	// Dim returns the dimensionality d of the utility vectors.
	Dim() int
	// ContainsDirection reports whether the ray {c*u : c > 0} meets the
	// space. u need not be normalized; it must be non-zero.
	ContainsDirection(u geom.Vector) bool
	// Sample draws a unit direction whose ray meets the space. The
	// distribution is the space's natural one (uniform over the direction
	// cone's sphere patch for Full/Cone, uniform over the body for
	// Polytope/Ball). It returns nil only if sampling is impossible.
	Sample(rng *xrand.Rand) geom.Vector
	// MinDot and MaxDot return the minimum/maximum of delta.u over a compact
	// cross-section of the space that meets every direction ray. Their signs
	// decide U-dominance (Definition 5): t dominates t' within the space iff
	// MinDot(t-t') >= 0 and MaxDot(t-t') > 0.
	MinDot(delta geom.Vector) (float64, error)
	MaxDot(delta geom.Vector) (float64, error)
	// Name identifies the space in logs and experiment output.
	Name() string
}

// Full is the unrestricted space L: all non-negative weight vectors. Its
// direction cone is the whole orthant; the canonical cross-section is the
// probability simplex, so MinDot/MaxDot are the min/max component of delta.
type Full struct{ D int }

// NewFull returns the full orthant space in d dimensions.
func NewFull(d int) Full { return Full{D: d} }

func (f Full) Dim() int { return f.D }

func (f Full) ContainsDirection(u geom.Vector) bool {
	if len(u) != f.D || geom.AllZero(u) {
		return false
	}
	return geom.NonNegative(u)
}

func (f Full) Sample(rng *xrand.Rand) geom.Vector {
	return rng.UnitOrthantDirection(f.D)
}

func (f Full) MinDot(delta geom.Vector) (float64, error) {
	if len(delta) != f.D {
		return 0, fmt.Errorf("funcspace: delta dim %d, space dim %d", len(delta), f.D)
	}
	m := math.Inf(1)
	for _, v := range delta {
		if v < m {
			m = v
		}
	}
	return m, nil
}

func (f Full) MaxDot(delta geom.Vector) (float64, error) {
	if len(delta) != f.D {
		return 0, fmt.Errorf("funcspace: delta dim %d, space dim %d", len(delta), f.D)
	}
	m := math.Inf(-1)
	for _, v := range delta {
		if v > m {
			m = v
		}
	}
	return m, nil
}

func (f Full) Name() string { return "L" }

// Cone is a convex cone inside the orthant given by homogeneous constraints
// A.u <= 0 (together with u >= 0). Scaling-invariant by construction, it is
// the natural encoding for order constraints on weights such as the weak
// rankings u[1] >= u[2] >= ... >= u[c+1] used in the paper's RRRM
// experiments.
type Cone struct {
	D int
	A [][]float64 // each row a: constraint a.u <= 0
}

// WeakRanking returns the cone {u in L : u[0] >= u[1] >= ... >= u[c]}
// (c constraints over d-dimensional vectors), the paper's Section VI.B.5
// restricted space with its parameter c.
func WeakRanking(d, c int) (*Cone, error) {
	if c < 1 || c >= d {
		return nil, fmt.Errorf("funcspace: WeakRanking needs 1 <= c < d, got c=%d d=%d", c, d)
	}
	a := make([][]float64, c)
	for i := 0; i < c; i++ {
		row := make([]float64, d)
		row[i] = -1
		row[i+1] = 1 // u[i+1] - u[i] <= 0
		a[i] = row
	}
	return &Cone{D: d, A: a}, nil
}

func (c *Cone) Dim() int { return c.D }

func (c *Cone) ContainsDirection(u geom.Vector) bool {
	if len(u) != c.D || geom.AllZero(u) || !geom.NonNegative(u) {
		return false
	}
	// Normalize so the epsilon is scale-independent.
	n := geom.Norm(u)
	for _, row := range c.A {
		if geom.Dot(row, u)/n > dirEps {
			return false
		}
	}
	return true
}

func (c *Cone) Sample(rng *xrand.Rand) geom.Vector {
	return rng.SampleWhere(c.D, c.ContainsDirection, 1_000_000)
}

// crossSectionLP solves min/max delta.u over the simplex cross-section
// {u >= 0, sum u = 1, A.u <= 0}.
func (c *Cone) crossSectionLP(delta geom.Vector, maximize bool) (float64, error) {
	if len(delta) != c.D {
		return 0, fmt.Errorf("funcspace: delta dim %d, space dim %d", len(delta), c.D)
	}
	rows := make([][]float64, 0, len(c.A)+2)
	b := make([]float64, 0, len(c.A)+2)
	for _, row := range c.A {
		rows = append(rows, row)
		b = append(b, 0)
	}
	ones := make([]float64, c.D)
	negOnes := make([]float64, c.D)
	for i := range ones {
		ones[i] = 1
		negOnes[i] = -1
	}
	rows = append(rows, ones, negOnes)
	b = append(b, 1, -1)
	var res lp.Result
	var err error
	if maximize {
		res, err = lp.Maximize(delta, rows, b)
	} else {
		res, err = lp.Minimize(delta, rows, b)
	}
	if err != nil {
		return 0, err
	}
	if res.Status != lp.Optimal {
		return 0, fmt.Errorf("funcspace: cone cross-section LP %v (is the cone empty?)", res.Status)
	}
	return res.Objective, nil
}

func (c *Cone) MinDot(delta geom.Vector) (float64, error) { return c.crossSectionLP(delta, false) }
func (c *Cone) MaxDot(delta geom.Vector) (float64, error) { return c.crossSectionLP(delta, true) }

func (c *Cone) Name() string { return fmt.Sprintf("cone(%d constraints)", len(c.A)) }

// Polytope is a general convex polytope {u >= 0 : A.u <= b} of utility
// vectors, the restricted-space model of Ciaccia and Martinenghi. The
// polytope itself serves as the compact cross-section for dominance tests.
type Polytope struct {
	D int
	A [][]float64
	B []float64
}

// NewPolytope validates dimensions and returns the polytope space.
func NewPolytope(d int, a [][]float64, b []float64) (*Polytope, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("funcspace: %d constraint rows, %d bounds", len(a), len(b))
	}
	for i, row := range a {
		if len(row) != d {
			return nil, fmt.Errorf("funcspace: constraint %d has %d coefficients, want %d", i, len(row), d)
		}
	}
	return &Polytope{D: d, A: a, B: b}, nil
}

func (p *Polytope) Dim() int { return p.D }

// ContainsDirection checks whether some positive scaling c puts c*u inside
// the polytope: each constraint a_i.(c u) <= b_i is an interval condition on
// c, so the ray meets the polytope iff the interval intersection admits a
// positive c. No LP needed.
func (p *Polytope) ContainsDirection(u geom.Vector) bool {
	if len(u) != p.D || geom.AllZero(u) || !geom.NonNegative(u) {
		return false
	}
	lo, hi := 0.0, math.Inf(1)
	for i, row := range p.A {
		s := geom.Dot(row, u)
		bi := p.B[i]
		switch {
		case s > dirEps:
			if h := bi / s; h < hi {
				hi = h
			}
		case s < -dirEps:
			if l := bi / s; l > lo {
				lo = l
			}
		default:
			if bi < -dirEps {
				return false
			}
		}
	}
	return hi > lo && hi > dirEps
}

func (p *Polytope) Sample(rng *xrand.Rand) geom.Vector {
	u := rng.SampleWhere(p.D, p.ContainsDirection, 1_000_000)
	return u
}

func (p *Polytope) lpOver(delta geom.Vector, maximize bool) (float64, error) {
	if len(delta) != p.D {
		return 0, fmt.Errorf("funcspace: delta dim %d, space dim %d", len(delta), p.D)
	}
	var res lp.Result
	var err error
	if maximize {
		res, err = lp.Maximize(delta, p.A, p.B)
	} else {
		res, err = lp.Minimize(delta, p.A, p.B)
	}
	if err != nil {
		return 0, err
	}
	if res.Status != lp.Optimal {
		return 0, fmt.Errorf("funcspace: polytope LP %v", res.Status)
	}
	return res.Objective, nil
}

func (p *Polytope) MinDot(delta geom.Vector) (float64, error) { return p.lpOver(delta, false) }
func (p *Polytope) MaxDot(delta geom.Vector) (float64, error) { return p.lpOver(delta, true) }

func (p *Polytope) Name() string { return fmt.Sprintf("polytope(%d constraints)", len(p.A)) }

// Ball is the hypersphere space {u : |u - Center| <= Radius}: an estimated
// weight vector expanded by an uncertainty radius (Mouratidis, Li and Tang).
// The ball should lie inside the non-negative orthant; NewBall enforces it.
type Ball struct {
	Center geom.Vector
	Radius float64
}

// NewBall validates that the ball lies in the orthant (so every member is a
// legal utility vector) and returns the space.
func NewBall(center geom.Vector, radius float64) (*Ball, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("funcspace: ball radius must be positive, got %v", radius)
	}
	for i, c := range center {
		if c < radius {
			return nil, fmt.Errorf("funcspace: ball leaves the orthant on axis %d (center %v < radius %v)", i, c, radius)
		}
	}
	return &Ball{Center: geom.Clone(center), Radius: radius}, nil
}

func (bl *Ball) Dim() int { return len(bl.Center) }

func (bl *Ball) ContainsDirection(u geom.Vector) bool {
	if len(u) != len(bl.Center) || geom.AllZero(u) || !geom.NonNegative(u) {
		return false
	}
	// Distance from the line {c*u} to Center must be <= Radius, with the
	// closest point at positive c. Projection coefficient:
	// c* = (u.Center)/(u.u) — positive because Center is in the orthant.
	uu := geom.Dot(u, u)
	cstar := geom.Dot(u, bl.Center) / uu
	if cstar <= 0 {
		return false
	}
	closest := geom.Scale(cstar, u)
	return geom.Dist(closest, bl.Center) <= bl.Radius+dirEps
}

func (bl *Ball) Sample(rng *xrand.Rand) geom.Vector {
	d := len(bl.Center)
	// Uniform in the ball: Gaussian direction scaled by U^(1/d) * Radius.
	for tries := 0; tries < 1_000_000; tries++ {
		dir := make(geom.Vector, d)
		for i := range dir {
			dir[i] = rng.NormFloat64()
		}
		n := geom.Norm(dir)
		if n == 0 {
			continue
		}
		rad := bl.Radius * math.Pow(rng.Float64(), 1/float64(d))
		pt := make(geom.Vector, d)
		for i := range pt {
			pt[i] = bl.Center[i] + dir[i]/n*rad
		}
		if geom.NonNegative(pt) && !geom.AllZero(pt) {
			return geom.Normalize(pt)
		}
	}
	return nil
}

// MinDot/MaxDot over a ball are analytic: delta.Center -/+ Radius*|delta|.
func (bl *Ball) MinDot(delta geom.Vector) (float64, error) {
	if len(delta) != len(bl.Center) {
		return 0, fmt.Errorf("funcspace: delta dim %d, space dim %d", len(delta), len(bl.Center))
	}
	return geom.Dot(delta, bl.Center) - bl.Radius*geom.Norm(delta), nil
}

func (bl *Ball) MaxDot(delta geom.Vector) (float64, error) {
	if len(delta) != len(bl.Center) {
		return 0, fmt.Errorf("funcspace: delta dim %d, space dim %d", len(delta), len(bl.Center))
	}
	return geom.Dot(delta, bl.Center) + bl.Radius*geom.Norm(delta), nil
}

func (bl *Ball) Name() string { return fmt.Sprintf("ball(r=%g)", bl.Radius) }

// Dominates reports whether t U-dominates t2 within space s (Definition 5):
// w(u,t) >= w(u,t2) for all u in the space, strictly for some u.
func Dominates(s Space, t, t2 geom.Vector) (bool, error) {
	delta := geom.Sub(t, t2)
	lo, err := s.MinDot(delta)
	if err != nil {
		return false, err
	}
	if lo < -dirEps {
		return false, nil
	}
	hi, err := s.MaxDot(delta)
	if err != nil {
		return false, err
	}
	return hi > dirEps, nil
}

// Render2D converts a 2-dimensional space to its normalized segment
// [c0, c1] of x values, where the direction (x, 1-x) is in the space exactly
// when x in [c0, c1] — the paper's "rendering the scene" step that lets the
// 2D sweep algorithm handle RRRM. The convexity of the space guarantees the
// x set is a single interval; endpoints are located by bisection.
func Render2D(s Space) (c0, c1 float64, err error) {
	if s.Dim() != 2 {
		return 0, 0, fmt.Errorf("funcspace: Render2D needs a 2D space, got dim %d", s.Dim())
	}
	member := func(x float64) bool {
		return s.ContainsDirection(geom.Vector{x, 1 - x})
	}
	// Find any member x by grid scan.
	const grid = 4096
	seed := -1.0
	for i := 0; i <= grid; i++ {
		x := float64(i) / grid
		if member(x) {
			seed = x
			break
		}
	}
	if seed < 0 {
		return 0, 0, fmt.Errorf("funcspace: %s contains no 2D direction", s.Name())
	}
	bisect := func(in, out float64) float64 {
		// Invariant: member(in), !member(out).
		for i := 0; i < 64; i++ {
			mid := (in + out) / 2
			if member(mid) {
				in = mid
			} else {
				out = mid
			}
		}
		return in
	}
	c0 = 0
	if !member(0) {
		c0 = bisect(seed, 0)
	}
	c1 = 1
	if !member(1) {
		c1 = bisect(seed, 1)
	}
	return c0, c1, nil
}
