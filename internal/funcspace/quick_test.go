package funcspace

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/xrand"
)

func boundedDim(d int) int {
	if d < 0 {
		d = -d
	}
	return d%4 + 2
}

// Property: every sample from every space lies in that space.
func TestQuickSamplesInsideSpace(t *testing.T) {
	f := func(seed int64, dd, cc int) bool {
		d := boundedDim(dd)
		c := 1
		if d > 2 {
			c = (abs(cc) % (d - 1))
			if c == 0 {
				c = 1
			}
		}
		rng := xrand.New(seed)
		spaces := []Space{NewFull(d)}
		if cone, err := WeakRanking(d, c); err == nil {
			spaces = append(spaces, cone)
		}
		center := make(geom.Vector, d)
		for i := range center {
			center[i] = 0.3 + 0.5*rng.Float64()
		}
		if ball, err := NewBall(center, 0.1); err == nil {
			spaces = append(spaces, ball)
		}
		for _, sp := range spaces {
			for i := 0; i < 20; i++ {
				u := sp.Sample(rng)
				if u == nil || !sp.ContainsDirection(u) {
					return false
				}
				if math.Abs(geom.Norm(u)-1) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: MinDot <= dot(u, delta) <= MaxDot for normalized members u of
// the space's cross-section convention. The LP-based bounds use the
// normalized (L1 or L2) cross-section; sampling the space and rescaling to
// that cross-section must stay inside the bounds.
func TestQuickDotBoundsContainSamples(t *testing.T) {
	f := func(seed int64, dd int) bool {
		d := boundedDim(dd)
		rng := xrand.New(seed)
		cone, err := WeakRanking(d, 1)
		if err != nil {
			return false
		}
		delta := make(geom.Vector, d)
		for i := range delta {
			delta[i] = rng.Float64()*2 - 1
		}
		lo, err := cone.MinDot(delta)
		if err != nil {
			return false
		}
		hi, err := cone.MaxDot(delta)
		if err != nil {
			return false
		}
		if lo > hi+1e-9 {
			return false
		}
		for i := 0; i < 30; i++ {
			u := cone.Sample(rng)
			if u == nil {
				return false
			}
			// The cone's LP bounds are over the L1 cross-section.
			v := geom.NormalizeL1(u)
			dot := geom.Dot(v, delta)
			if dot < lo-1e-6 || dot > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: U-dominance is a strict partial order on distinct tuples —
// irreflexive (modulo the "exists strict" condition) and antisymmetric.
func TestQuickDominanceAntisymmetric(t *testing.T) {
	f := func(seed int64, dd int) bool {
		d := boundedDim(dd)
		rng := xrand.New(seed)
		sp := NewFull(d)
		a := make(geom.Vector, d)
		b := make(geom.Vector, d)
		for i := 0; i < d; i++ {
			a[i] = rng.Float64()
			b[i] = rng.Float64()
		}
		ab, err := Dominates(sp, a, b)
		if err != nil {
			return false
		}
		ba, err := Dominates(sp, b, a)
		if err != nil {
			return false
		}
		if ab && ba {
			return false // antisymmetry violated
		}
		self, err := Dominates(sp, a, a)
		if err != nil {
			return false
		}
		return !self // irreflexive: no strict improvement over itself
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: full-orthant dominance agrees with coordinatewise comparison.
func TestQuickFullDominanceIsCoordinatewise(t *testing.T) {
	f := func(seed int64, dd int) bool {
		d := boundedDim(dd)
		rng := xrand.New(seed)
		sp := NewFull(d)
		a := make(geom.Vector, d)
		b := make(geom.Vector, d)
		for i := 0; i < d; i++ {
			a[i] = math.Round(rng.Float64()*4) / 4 // coarse grid forces ties
			b[i] = math.Round(rng.Float64()*4) / 4
		}
		got, err := Dominates(sp, a, b)
		if err != nil {
			return false
		}
		geq, strict := true, false
		for i := 0; i < d; i++ {
			if a[i] < b[i] {
				geq = false
			}
			if a[i] > b[i] {
				strict = true
			}
		}
		return got == (geq && strict)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		if x == -x {
			return 0
		}
		return -x
	}
	return x
}
