package funcspace

import (
	"math"
	"testing"

	"github.com/rankregret/rankregret/internal/geom"
	"github.com/rankregret/rankregret/internal/xrand"
)

func TestFullSpace(t *testing.T) {
	f := NewFull(3)
	if f.Dim() != 3 || f.Name() != "L" {
		t.Error("basic accessors wrong")
	}
	if !f.ContainsDirection(geom.Vector{1, 0, 2}) {
		t.Error("orthant direction rejected")
	}
	if f.ContainsDirection(geom.Vector{1, -0.1, 0}) {
		t.Error("negative direction accepted")
	}
	if f.ContainsDirection(geom.Vector{0, 0, 0}) {
		t.Error("zero vector accepted")
	}
	if f.ContainsDirection(geom.Vector{1, 1}) {
		t.Error("wrong-dimension vector accepted")
	}
	lo, err := f.MinDot(geom.Vector{3, -1, 2})
	if err != nil || lo != -1 {
		t.Errorf("MinDot = %v, %v; want -1", lo, err)
	}
	hi, err := f.MaxDot(geom.Vector{3, -1, 2})
	if err != nil || hi != 3 {
		t.Errorf("MaxDot = %v, %v; want 3", hi, err)
	}
	rng := xrand.New(1)
	u := f.Sample(rng)
	if len(u) != 3 || !geom.NonNegative(u) {
		t.Errorf("Sample = %v", u)
	}
}

func TestWeakRankingCone(t *testing.T) {
	c, err := WeakRanking(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// u[0] >= u[1] >= u[2]; u[3] free.
	if !c.ContainsDirection(geom.Vector{3, 2, 1, 5}) {
		t.Error("valid weak ranking rejected")
	}
	if c.ContainsDirection(geom.Vector{1, 2, 1, 0}) {
		t.Error("violating direction accepted")
	}
	// Scale invariance.
	if !c.ContainsDirection(geom.Vector{0.003, 0.002, 0.001, 0.005}) {
		t.Error("cone must be scale invariant")
	}
	if _, err := WeakRanking(3, 3); err == nil {
		t.Error("c >= d should be rejected")
	}
	if _, err := WeakRanking(3, 0); err == nil {
		t.Error("c < 1 should be rejected")
	}
}

func TestConeSampleAndDots(t *testing.T) {
	c, err := WeakRanking(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	for i := 0; i < 200; i++ {
		u := c.Sample(rng)
		if u == nil {
			t.Fatal("cone sample failed")
		}
		if !(u[0] >= u[1]-1e-9 && u[1] >= u[2]-1e-9) {
			t.Fatalf("sample %v violates ranking", u)
		}
	}
	// delta = (1, 0, -1): over {u0>=u1>=u2, simplex}, min at u=(1/3,1/3,1/3)
	// is 0, max at u=(1,0,0) is 1.
	lo, err := c.MinDot(geom.Vector{1, 0, -1})
	if err != nil || math.Abs(lo) > 1e-7 {
		t.Errorf("cone MinDot = %v, %v; want 0", lo, err)
	}
	hi, err := c.MaxDot(geom.Vector{1, 0, -1})
	if err != nil || math.Abs(hi-1) > 1e-7 {
		t.Errorf("cone MaxDot = %v, %v; want 1", hi, err)
	}
	// delta = (-1, 0, 0): max over the cross-section is at the most
	// "balanced" allowed vertex: u=(1/3,1/3,1/3) gives -1/3.
	hi, err = c.MaxDot(geom.Vector{-1, 0, 0})
	if err != nil || math.Abs(hi+1.0/3) > 1e-7 {
		t.Errorf("cone MaxDot = %v, %v; want -1/3", hi, err)
	}
}

func TestPolytope(t *testing.T) {
	// Box 0.2 <= u0 <= 0.8, 0.2 <= u1 <= 0.8.
	p, err := NewPolytope(2,
		[][]float64{{1, 0}, {-1, 0}, {0, 1}, {0, -1}},
		[]float64{0.8, -0.2, 0.8, -0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !p.ContainsDirection(geom.Vector{1, 1}) {
		t.Error("diagonal direction should meet the box")
	}
	// Direction (1, 0) never meets the box (u1 >= 0.2 requires u1 > 0).
	if p.ContainsDirection(geom.Vector{1, 0}) {
		t.Error("axis direction should not meet the box")
	}
	// Extreme slope outside the box's direction cone: (1, 10) requires
	// u0 = u1/10; with u1 <= 0.8, u0 <= 0.08 < 0.2.
	if p.ContainsDirection(geom.Vector{1, 10}) {
		t.Error("too-steep direction accepted")
	}
	rng := xrand.New(3)
	for i := 0; i < 50; i++ {
		u := p.Sample(rng)
		if u == nil || !p.ContainsDirection(u) {
			t.Fatalf("polytope sample invalid: %v", u)
		}
	}
	// MinDot over the box for delta=(1,-1): corners give 0.2-0.8 = -0.6.
	lo, err := p.MinDot(geom.Vector{1, -1})
	if err != nil || math.Abs(lo+0.6) > 1e-7 {
		t.Errorf("polytope MinDot = %v, %v; want -0.6", lo, err)
	}
	hi, err := p.MaxDot(geom.Vector{1, -1})
	if err != nil || math.Abs(hi-0.6) > 1e-7 {
		t.Errorf("polytope MaxDot = %v, %v; want 0.6", hi, err)
	}
	if _, err := NewPolytope(2, [][]float64{{1}}, []float64{1}); err == nil {
		t.Error("bad row width accepted")
	}
	if _, err := NewPolytope(2, [][]float64{{1, 0}}, nil); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

func TestBall(t *testing.T) {
	b, err := NewBall(geom.Vector{0.5, 0.5}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.ContainsDirection(geom.Vector{1, 1}) {
		t.Error("center direction rejected")
	}
	if b.ContainsDirection(geom.Vector{1, 0}) {
		t.Error("axis direction should miss the ball")
	}
	// Tangency angle: ball center (0.5,0.5), radius 0.2; directions within
	// asin(0.2/|c|) of 45 degrees pass. |c| = 0.7071, angle ~16.43 deg.
	th := math.Pi/4 - math.Asin(0.2/math.Sqrt(0.5)) + 0.01
	if !b.ContainsDirection(geom.Vector{math.Cos(th), math.Sin(th)}) {
		t.Error("direction just inside the tangent cone rejected")
	}
	th = math.Pi/4 - math.Asin(0.2/math.Sqrt(0.5)) - 0.01
	if b.ContainsDirection(geom.Vector{math.Cos(th), math.Sin(th)}) {
		t.Error("direction just outside the tangent cone accepted")
	}
	rng := xrand.New(4)
	for i := 0; i < 100; i++ {
		u := b.Sample(rng)
		if u == nil || !b.ContainsDirection(u) {
			t.Fatalf("ball sample invalid: %v", u)
		}
	}
	lo, err := b.MinDot(geom.Vector{1, 0})
	if err != nil || math.Abs(lo-0.3) > 1e-9 {
		t.Errorf("ball MinDot = %v; want 0.3", lo)
	}
	hi, err := b.MaxDot(geom.Vector{1, 0})
	if err != nil || math.Abs(hi-0.7) > 1e-9 {
		t.Errorf("ball MaxDot = %v; want 0.7", hi)
	}
	if _, err := NewBall(geom.Vector{0.1, 0.5}, 0.2); err == nil {
		t.Error("ball leaving the orthant accepted")
	}
	if _, err := NewBall(geom.Vector{0.5, 0.5}, 0); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestDominates(t *testing.T) {
	f := NewFull(2)
	// (0.6, 0.6) dominates (0.5, 0.5) everywhere.
	ok, err := Dominates(f, geom.Vector{0.6, 0.6}, geom.Vector{0.5, 0.5})
	if err != nil || !ok {
		t.Errorf("clear dominance missed: %v %v", ok, err)
	}
	// Incomparable pair.
	ok, err = Dominates(f, geom.Vector{1, 0}, geom.Vector{0, 1})
	if err != nil || ok {
		t.Errorf("incomparable pair dominated: %v %v", ok, err)
	}
	// Equal tuples: no strict part.
	ok, err = Dominates(f, geom.Vector{0.5, 0.5}, geom.Vector{0.5, 0.5})
	if err != nil || ok {
		t.Errorf("tuple dominating itself: %v %v", ok, err)
	}
	// Restricted space can create dominance that L lacks: with u0 >= u1,
	// t=(0.7, 0.2) dominates t2=(0.5, 0.3)? delta=(0.2,-0.1): worst case
	// u=(0.5,0.5): 0.05 > 0. Yes.
	c, err := WeakRanking(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = Dominates(c, geom.Vector{0.7, 0.2}, geom.Vector{0.5, 0.3})
	if err != nil || !ok {
		t.Errorf("cone dominance missed: %v %v", ok, err)
	}
	// But not under the full space (u=(0,1) prefers t2).
	ok, err = Dominates(f, geom.Vector{0.7, 0.2}, geom.Vector{0.5, 0.3})
	if err != nil || ok {
		t.Errorf("full-space dominance wrongly claimed: %v %v", ok, err)
	}
}

func TestRender2DFull(t *testing.T) {
	c0, c1, err := Render2D(NewFull(2))
	if err != nil {
		t.Fatal(err)
	}
	if c0 != 0 || c1 != 1 {
		t.Errorf("full space renders to [%v,%v], want [0,1]", c0, c1)
	}
	if _, _, err := Render2D(NewFull(3)); err == nil {
		t.Error("Render2D must reject non-2D spaces")
	}
}

func TestRender2DCone(t *testing.T) {
	// u0 >= u1 means x >= 1-x, i.e. x in [0.5, 1].
	c, err := WeakRanking(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1, err := Render2D(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c0-0.5) > 1e-6 || c1 != 1 {
		t.Errorf("cone renders to [%v,%v], want [0.5,1]", c0, c1)
	}
}

func TestRender2DBall(t *testing.T) {
	b, err := NewBall(geom.Vector{0.5, 0.5}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1, err := Render2D(b)
	if err != nil {
		t.Fatal(err)
	}
	if !(c0 > 0.3 && c0 < 0.5 && c1 > 0.5 && c1 < 0.7) {
		t.Errorf("ball renders to [%v,%v], want a band around 0.5", c0, c1)
	}
	// All rendered xs must be members; just-outside xs must not.
	if !b.ContainsDirection(geom.Vector{c0 + 1e-4, 1 - c0 - 1e-4}) {
		t.Error("left endpoint + eps not a member")
	}
	if b.ContainsDirection(geom.Vector{c0 - 1e-4, 1 - c0 + 1e-4}) {
		t.Error("left endpoint - eps is a member; interval too small")
	}
}

// Property: Dominates must agree with a dense sample of directions for
// every space kind.
func TestDominatesAgreesWithSampling(t *testing.T) {
	rng := xrand.New(5)
	cone, err := WeakRanking(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ball, err := NewBall(geom.Vector{0.5, 0.5, 0.5}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	spaces := []Space{NewFull(3), cone, ball}
	for _, s := range spaces {
		for trial := 0; trial < 60; trial++ {
			a := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
			b := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
			dom, err := Dominates(s, a, b)
			if err != nil {
				t.Fatal(err)
			}
			// Sampling check: if dominance claimed, no sampled u may prefer b
			// strictly; if not claimed and some u prefers a strictly while
			// another prefers b, that's consistent (incomparable).
			viol := false
			for i := 0; i < 300; i++ {
				u := s.Sample(rng)
				if u == nil {
					t.Fatalf("%s: sampling failed", s.Name())
				}
				if geom.Dot(u, b) > geom.Dot(u, a)+1e-7 {
					viol = true
					break
				}
			}
			if dom && viol {
				t.Errorf("%s: claimed dominance contradicted by a sample (a=%v b=%v)", s.Name(), a, b)
			}
		}
	}
}
