package topk

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func tableI() *dataset.Dataset {
	return dataset.MustFromRows([][]float64{
		{0, 1}, {0.4, 0.95}, {0.57, 0.75}, {0.79, 0.6}, {0.2, 0.5}, {0.35, 0.3}, {1, 0},
	})
}

// bruteTopK sorts all scores descending (index tie-break) and takes k.
func bruteTopK(ds *dataset.Dataset, u []float64, k int) []int {
	n := ds.N()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	s := ds.Utilities(u, nil)
	sort.Slice(ids, func(a, b int) bool {
		ia, ib := ids[a], ids[b]
		if s[ia] != s[ib] {
			return s[ia] > s[ib]
		}
		return ia < ib
	})
	if k > n {
		k = n
	}
	return ids[:k]
}

func TestTopKTableI(t *testing.T) {
	ds := tableI()
	u := []float64{0.5, 0.5}
	// Utilities: t1 .5, t2 .675, t3 .66, t4 .695, t5 .35, t6 .325, t7 .5.
	got := TopK(ds, u, 3, nil)
	want := []int{3, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopK = %v, want %v", got, want)
	}
}

func TestTopKMatchesBrute(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 60; trial++ {
		d := 2 + trial%4
		ds := dataset.Independent(rng, 40, d)
		u := rng.UnitOrthantDirection(d)
		k := 1 + rng.Intn(12)
		got := TopK(ds, u, k, nil)
		want := bruteTopK(ds, u, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: TopK(k=%d) = %v, want %v", trial, k, got, want)
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	ds := tableI()
	u := []float64{1, 0}
	if got := TopK(ds, u, 0, nil); got != nil {
		t.Errorf("k=0 should give nil, got %v", got)
	}
	got := TopK(ds, u, 100, nil)
	if len(got) != ds.N() {
		t.Errorf("k>n should give full ranking, got %d ids", len(got))
	}
	if got[0] != 6 {
		t.Errorf("best under (1,0) should be t7 (index 6), got %d", got[0])
	}
}

func TestTopKTies(t *testing.T) {
	ds := dataset.MustFromRows([][]float64{
		{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.9, 0.9},
	})
	u := []float64{0.5, 0.5}
	got := TopK(ds, u, 3, nil)
	// Best is index 3; tied 0.5s break by index: 0 then 1.
	want := []int{3, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tie handling: %v, want %v", got, want)
	}
}

func TestKthScore(t *testing.T) {
	ds := tableI()
	u := []float64{0.5, 0.5}
	if got := KthScore(ds, u, 1, nil); math.Abs(got-0.695) > 1e-12 {
		t.Errorf("1st score = %v, want 0.695", got)
	}
	if got := KthScore(ds, u, 3, nil); math.Abs(got-0.66) > 1e-12 {
		t.Errorf("3rd score = %v, want 0.66", got)
	}
}

func TestRank(t *testing.T) {
	ds := tableI()
	u := []float64{0.25, 0.75}
	// From the paper (Figure 4): rank of t1 at x=0.25 is 2.
	if got := Rank(ds, u, 0, nil); got != 2 {
		t.Errorf("rank of t1 under (0.25,0.75) = %d, want 2", got)
	}
	// The top tuple has rank 1.
	best := TopK(ds, u, 1, nil)[0]
	if got := Rank(ds, u, best, nil); got != 1 {
		t.Errorf("rank of best = %d, want 1", got)
	}
	// Worst tuple has rank n.
	full := FullRanking(ds, u, nil)
	worst := full[len(full)-1]
	if got := Rank(ds, u, worst, nil); got != ds.N() {
		t.Errorf("rank of worst = %d, want %d", got, ds.N())
	}
}

func TestRankConsistentWithFullRanking(t *testing.T) {
	rng := xrand.New(2)
	ds := dataset.Anticorrelated(rng, 30, 3)
	u := rng.UnitOrthantDirection(3)
	full := FullRanking(ds, u, nil)
	for pos, id := range full {
		if got := Rank(ds, u, id, nil); got != pos+1 {
			t.Fatalf("Rank(%d) = %d, want %d", id, got, pos+1)
		}
	}
}

func TestRankOfSet(t *testing.T) {
	ds := tableI()
	u := []float64{0.5, 0.5}
	// Set {t1, t3}: best is t3 (0.66) with rank 3 (t4, t2 outrank).
	if got := RankOfSet(ds, u, []int{0, 2}, nil); got != 3 {
		t.Errorf("RankOfSet = %d, want 3", got)
	}
	// Any set containing the top tuple has rank 1.
	if got := RankOfSet(ds, u, []int{3, 0}, nil); got != 1 {
		t.Errorf("RankOfSet with best = %d, want 1", got)
	}
	// Singleton equals Rank.
	for i := 0; i < ds.N(); i++ {
		if RankOfSet(ds, u, []int{i}, nil) != Rank(ds, u, i, nil) {
			t.Errorf("singleton RankOfSet != Rank for %d", i)
		}
	}
}

func TestRankOfSetMonotone(t *testing.T) {
	// Adding tuples can only improve (lower) the rank.
	rng := xrand.New(3)
	ds := dataset.Independent(rng, 50, 3)
	u := rng.UnitOrthantDirection(3)
	set := []int{7}
	prev := RankOfSet(ds, u, set, nil)
	for _, add := range []int{3, 12, 44, 21} {
		set = append(set, add)
		cur := RankOfSet(ds, u, set, nil)
		if cur > prev {
			t.Fatalf("rank increased from %d to %d after adding a tuple", prev, cur)
		}
		prev = cur
	}
}

func TestScratchReuse(t *testing.T) {
	ds := tableI()
	u := []float64{0.3, 0.7}
	buf := make([]float64, ds.N())
	a := TopK(ds, u, 3, buf)
	b := TopK(ds, u, 3, nil)
	if !reflect.DeepEqual(a, b) {
		t.Error("scratch buffer changed the result")
	}
}
