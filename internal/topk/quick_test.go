package topk

import (
	"sort"
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func quickDataset(seed int64, n, d int) (*dataset.Dataset, []float64) {
	n = abs(n)%80 + 2
	d = abs(d)%4 + 1
	rng := xrand.New(seed)
	ds := dataset.Independent(rng, n, d)
	u := make([]float64, d)
	for j := range u {
		u[j] = rng.Float64()
	}
	return ds, u
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // math.MinInt
			return 0
		}
		return -x
	}
	return x
}

// Property: TopK's output matches sorting all utilities descending.
func TestQuickTopKAgreesWithSort(t *testing.T) {
	f := func(seed int64, n, d, kk int) bool {
		ds, u := quickDataset(seed, n, d)
		k := abs(kk)%ds.N() + 1
		got := TopK(ds, u, k, nil)
		if len(got) != k {
			return false
		}
		ranked := FullRanking(ds, u, nil)
		for i := 0; i < k; i++ {
			if got[i] != ranked[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: FullRanking is a permutation sorted by descending utility.
func TestQuickFullRankingPermutation(t *testing.T) {
	f := func(seed int64, n, d int) bool {
		ds, u := quickDataset(seed, n, d)
		ranked := FullRanking(ds, u, nil)
		if len(ranked) != ds.N() {
			return false
		}
		seen := make([]bool, ds.N())
		for _, id := range ranked {
			if id < 0 || id >= ds.N() || seen[id] {
				return false
			}
			seen[id] = true
		}
		for i := 1; i < len(ranked); i++ {
			if ds.Utility(u, ranked[i-1]) < ds.Utility(u, ranked[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Rank(id) equals 1 + number of tuples with strictly higher
// utility (with the package's deterministic tie-break).
func TestQuickRankDefinition(t *testing.T) {
	f := func(seed int64, n, d, idx int) bool {
		ds, u := quickDataset(seed, n, d)
		id := abs(idx) % ds.N()
		r := Rank(ds, u, id, nil)
		ranked := FullRanking(ds, u, nil)
		for pos, got := range ranked {
			if got == id {
				return r == pos+1
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: RankOfSet is the minimum over member ranks, and KthScore is the
// k-th entry of the sorted utility list.
func TestQuickRankOfSetAndKthScore(t *testing.T) {
	f := func(seed int64, n, d, kk int, pick []int) bool {
		ds, u := quickDataset(seed, n, d)
		if len(pick) == 0 {
			pick = []int{0}
		}
		ids := make([]int, 0, len(pick))
		for _, p := range pick {
			ids = append(ids, abs(p)%ds.N())
		}
		got := RankOfSet(ds, u, ids, nil)
		want := ds.N() + 1
		for _, id := range ids {
			if r := Rank(ds, u, id, nil); r < want {
				want = r
			}
		}
		if got != want {
			return false
		}
		k := abs(kk)%ds.N() + 1
		scores := ds.Utilities(u, nil)
		sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
		return KthScore(ds, u, k, nil) == scores[k-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
