package topk

import (
	"testing"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func benchData(n, d int) (*dataset.Dataset, []float64) {
	ds := dataset.Independent(xrand.New(1), n, d)
	u := make([]float64, d)
	for j := range u {
		u[j] = 1 / float64(d)
	}
	return ds, u
}

func BenchmarkTopK10Of10K(b *testing.B) {
	ds, u := benchData(10000, 4)
	scores := make([]float64, ds.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(ds, u, 10, scores)
	}
}

func BenchmarkTopK1KOf10K(b *testing.B) {
	ds, u := benchData(10000, 4)
	scores := make([]float64, ds.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TopK(ds, u, 1000, scores)
	}
}

func BenchmarkRankOfSet(b *testing.B) {
	ds, u := benchData(10000, 4)
	scores := make([]float64, ds.N())
	ids := []int{1, 100, 5000, 9999}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RankOfSet(ds, u, ids, scores)
	}
}

func BenchmarkFullRanking10K(b *testing.B) {
	ds, u := benchData(10000, 4)
	scores := make([]float64, ds.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FullRanking(ds, u, scores)
	}
}
