package topk

import "sort"

// better reports whether position a should rank before position b in a score
// slice, delegating to the package's beats comparator so the two can never
// drift. Positions double as the deterministic tie-break, which is why
// Select requires any id remapping to be ascending — position order and id
// order then agree.
func better(scores []float64, a, b int) bool {
	return beats(scores[a], a, scores[b], b)
}

// Select returns the ids of the k best entries of scores, best first, under
// the package's deterministic order (score descending, id ascending). ids
// maps score positions to tuple ids and must be strictly ascending; nil
// means the identity (position i is tuple i). scratch is an optional
// reusable index buffer (pass the previous call's to avoid allocation; it
// must not alias ids).
//
// Select agrees exactly with TopK — same set, same order, including
// tie-breaks — but selects via quickselect in O(n + k log k) instead of
// per-element heap churn, which is what makes scoring whole tiles of utility
// vectors worthwhile.
func Select(scores []float64, ids []int, k int, scratch []int) []int {
	out, _ := SelectScratch(scores, ids, k, scratch)
	return out
}

// SelectScratch is Select returning the (possibly grown) scratch buffer so
// tight loops can reuse it across calls.
//
// Two regimes, chosen by k/n and both producing the identical deterministic
// order: for small k a read-only scan against a concrete inline min-heap
// (one compare per element, no container/heap interface dispatch, no index
// writes), and for k a sizable fraction of n a quickselect over an index
// permutation (the scan's heap churn would approach n log n there).
func SelectScratch(scores []float64, ids []int, k int, scratch []int) ([]int, []int) {
	n := len(scores)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil, scratch
	}
	var top []int
	if 8*k < n {
		if cap(scratch) < 2*k {
			scratch = make([]int, max(2*k, 64))
		}
		top = scanSelect(scores, k, scratch[:k])
	} else {
		if cap(scratch) < n {
			scratch = make([]int, n)
		}
		perm := scratch[:n]
		for i := range perm {
			perm[i] = i
		}
		quickselectTop(scores, perm, k)
		top = perm[:k]
	}
	sort.Slice(top, func(a, b int) bool { return better(scores, top[a], top[b]) })
	out := make([]int, k)
	if ids == nil {
		copy(out, top)
	} else {
		for i, p := range top {
			out[i] = ids[p]
		}
	}
	return out, scratch
}

// scanSelect streams scores once against a size-k min-heap held in heapIDs
// (worst candidate at the root: lowest score, ties to the higher index). It
// returns the heap slice holding the k best positions, unordered. Elements
// not beating the root — the overwhelming majority for k << n — cost one
// comparison and no writes.
func scanSelect(scores []float64, k int, heapIDs []int) []int {
	h := heapIDs[:0]
	// worse is the heap order: the worse of two positions sits nearer the
	// root, i.e. the inverse of better.
	worse := func(a, b int) bool { return better(scores, b, a) }
	for i := 0; i < k; i++ {
		// Sift up.
		h = append(h, i)
		c := i
		for c > 0 {
			p := (c - 1) / 2
			if !worse(h[c], h[p]) {
				break
			}
			h[c], h[p] = h[p], h[c]
			c = p
		}
	}
	// Cache the root so the overwhelmingly common "not a candidate" case is
	// one or two comparisons with no loads through the heap.
	rootScore, rootID := scores[h[0]], h[0]
	for i := k; i < len(scores); i++ {
		s := scores[i]
		if s < rootScore || (s == rootScore && i > rootID) {
			continue
		}
		// Replace the root and sift down.
		h[0] = i
		p := 0
		for {
			c := 2*p + 1
			if c >= k {
				break
			}
			if r := c + 1; r < k && worse(h[r], h[c]) {
				c = r
			}
			if !worse(h[c], h[p]) {
				break
			}
			h[p], h[c] = h[c], h[p]
			p = c
		}
		rootScore, rootID = scores[h[0]], h[0]
	}
	return h
}

// SelectBatch converts a tile of score rows — as produced by
// dataset.UtilitiesBatch — into per-row top-k id lists, best first. ids
// follows the Select contract. scratch is optional and is returned (possibly
// grown) so a loop over tiles reuses one selection buffer throughout.
func SelectBatch(rows [][]float64, ids []int, k int, scratch []int) ([][]int, []int) {
	out := make([][]int, len(rows))
	for b, row := range rows {
		out[b], scratch = SelectScratch(row, ids, k, scratch)
	}
	return out, scratch
}

// quickselectTop partially orders perm so perm[:k] holds the k best
// positions (in arbitrary order). The order is strict and total (positions
// are distinct), so the selected set is unique and deterministic no matter
// how pivots fall.
func quickselectTop(scores []float64, perm []int, k int) {
	lo, hi := 0, len(perm)-1
	for lo < hi {
		p := partitionTop(scores, perm, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

// partitionTop runs a better-first Lomuto partition of perm[lo:hi+1] around
// a median-of-three pivot and returns the pivot's final index.
func partitionTop(scores []float64, perm []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Move the median of (lo, mid, hi) to hi so sorted and reverse-sorted
	// inputs stay near O(n).
	if better(scores, perm[mid], perm[lo]) {
		perm[mid], perm[lo] = perm[lo], perm[mid]
	}
	if better(scores, perm[hi], perm[lo]) {
		perm[hi], perm[lo] = perm[lo], perm[hi]
	}
	if better(scores, perm[mid], perm[hi]) {
		perm[mid], perm[hi] = perm[hi], perm[mid]
	}
	pivot := perm[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if better(scores, perm[j], pivot) {
			perm[i], perm[j] = perm[j], perm[i]
			i++
		}
	}
	perm[i], perm[hi] = perm[hi], perm[i]
	return i
}
