package topk

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

// scoresAsDataset wraps raw scores as a 1-attribute dataset whose utility
// under u = (1) is exactly the score, so TopK can serve as the reference
// selection over an arbitrary score slice.
func scoresAsDataset(scores []float64) *dataset.Dataset {
	rows := make([][]float64, len(scores))
	for i, s := range scores {
		rows[i] = []float64{s}
	}
	return dataset.MustFromRows(rows)
}

// tiedScores returns n scores quantized to few distinct values, so exact
// ties — the case the deterministic tie-break exists for — are common.
func tiedScores(seed int64, n, levels int) []float64 {
	rng := xrand.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(rng.Intn(levels)) / float64(levels)
	}
	return out
}

// heapSelect is the reference: the package's heap-based selection over a raw
// score slice, via the same code path TopK uses.
func heapSelect(scores []float64, k int) []int {
	ds := scoresAsDataset(scores)
	return TopK(ds, []float64{1}, k, nil)
}

// Property: Select agrees exactly with the heap-based TopK — same ids, same
// order, including tie-breaks — on heavily tied data at every k.
func TestSelectAgreesWithTopK(t *testing.T) {
	f := func(seed int64, nn, ll, kk int) bool {
		n := abs(nn)%120 + 1
		levels := abs(ll)%6 + 1
		scores := tiedScores(seed, n, levels)
		k := abs(kk)%(n+2) + 1 // occasionally exceeds n: both must clamp
		got := Select(scores, nil, k, nil)
		want := heapSelect(scores, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: selecting over a candidate subset with an ascending id mapping
// equals filtering the full selection to those candidates.
func TestSelectSubsetMapping(t *testing.T) {
	f := func(seed int64, nn, kk int) bool {
		n := abs(nn)%100 + 4
		scores := tiedScores(seed, n, 5)
		rng := xrand.New(seed + 1)
		var ids []int
		var sub []float64
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				ids = append(ids, i)
				sub = append(sub, scores[i])
			}
		}
		if len(ids) == 0 {
			return true
		}
		k := abs(kk)%len(ids) + 1
		got := Select(sub, ids, k, nil)
		// Reference: full selection restricted to the candidate ids.
		keep := make(map[int]bool, len(ids))
		for _, id := range ids {
			keep[id] = true
		}
		var want []int
		for _, id := range Select(scores, nil, n, nil) {
			if keep[id] {
				want = append(want, id)
			}
			if len(want) == k {
				break
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SelectBatch is Select applied row-wise.
func TestSelectBatchAgreesWithSelect(t *testing.T) {
	f := func(seed int64, nn, bb, kk int) bool {
		n := abs(nn)%60 + 1
		rows := make([][]float64, abs(bb)%5+1)
		for b := range rows {
			rows[b] = tiedScores(seed+int64(b), n, 4)
		}
		k := abs(kk)%n + 1
		var scratch []int
		var got [][]int
		got, scratch = SelectBatch(rows, nil, k, scratch)
		if _, again := SelectBatch(rows, nil, k, scratch); again == nil && n > 0 {
			return false // scratch must come back for reuse
		}
		for b, row := range rows {
			if !reflect.DeepEqual(got[b], Select(row, nil, k, nil)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectEdgeCases(t *testing.T) {
	if got := Select(nil, nil, 3, nil); got != nil {
		t.Errorf("Select(nil) = %v, want nil", got)
	}
	if got := Select([]float64{1, 2}, nil, 0, nil); got != nil {
		t.Errorf("Select(k=0) = %v, want nil", got)
	}
	got := Select([]float64{5, 5, 5}, nil, 5, nil)
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("all-tied Select = %v, want [0 1 2]", got)
	}
}
