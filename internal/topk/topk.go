// Package topk provides the top-k query machinery the rank-regret
// algorithms are built on: utility evaluation, selection of the k highest
// scoring tuples (the paper's Phi_k(u, D)), and rank computation (the
// paper's nabla_u). Ties in utility are broken by tuple index so every
// operation is deterministic; the paper assumes no exact ties, and the
// deterministic tie-break preserves all of its guarantees.
package topk

import (
	"container/heap"
	"sort"

	"github.com/rankregret/rankregret/internal/dataset"
)

// scoreHeap is a min-heap of (score, id) pairs ordered worst-first so the
// root is the weakest of the current top-k candidates.
type scoreHeap struct {
	scores []float64
	ids    []int
}

func (h *scoreHeap) Len() int { return len(h.ids) }
func (h *scoreHeap) Less(a, b int) bool {
	if h.scores[a] != h.scores[b] {
		return h.scores[a] < h.scores[b]
	}
	// Larger index = weaker under the deterministic tie-break, so it sits
	// nearer the root.
	return h.ids[a] > h.ids[b]
}
func (h *scoreHeap) Swap(a, b int) {
	h.scores[a], h.scores[b] = h.scores[b], h.scores[a]
	h.ids[a], h.ids[b] = h.ids[b], h.ids[a]
}
func (h *scoreHeap) Push(x any) { panic("topk: push not used") }
func (h *scoreHeap) Pop() any   { panic("topk: pop not used") }

// beats reports whether (s1, id1) outranks (s2, id2): strictly higher score,
// or equal score and lower index.
func beats(s1 float64, id1 int, s2 float64, id2 int) bool {
	if s1 != s2 {
		return s1 > s2
	}
	return id1 < id2
}

// Beats reports whether entry (s1, id1) ranks strictly before (s2, id2)
// under the package's deterministic order: higher score first, equal scores
// to the lower id. It is exported so incremental maintainers of top-K lists
// (merge repair after dataset mutation) share the exact comparator the
// builders use and the two can never drift.
func Beats(s1 float64, id1 int, s2 float64, id2 int) bool { return beats(s1, id1, s2, id2) }

// TopK returns the indices of the k highest-utility tuples under weight
// vector u, ordered best first. If k >= n it returns the full ranking.
// Scratch space scores may be nil; pass a reusable buffer to avoid
// allocation in hot loops.
func TopK(ds *dataset.Dataset, u []float64, k int, scores []float64) []int {
	n := ds.N()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	scores = ds.Utilities(u, scores)
	// Heap selection: O(n log k), good for the k << n regime every solver
	// here operates in.
	h := &scoreHeap{scores: make([]float64, 0, k), ids: make([]int, 0, k)}
	for i := 0; i < n; i++ {
		if len(h.ids) < k {
			h.scores = append(h.scores, scores[i])
			h.ids = append(h.ids, i)
			if len(h.ids) == k {
				heap.Init(h)
			}
			continue
		}
		if beats(scores[i], i, h.scores[0], h.ids[0]) {
			h.scores[0], h.ids[0] = scores[i], i
			heap.Fix(h, 0)
		}
	}
	// Order the selected ids best-first via an index sort over the heap's
	// parallel arrays.
	ord := make([]int, len(h.ids))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		return beats(h.scores[ord[a]], h.ids[ord[a]], h.scores[ord[b]], h.ids[ord[b]])
	})
	out := make([]int, len(ord))
	for i, o := range ord {
		out[i] = h.ids[o]
	}
	return out
}

// KthScore returns the k-th highest utility w_k(u, D). k is 1-based.
func KthScore(ds *dataset.Dataset, u []float64, k int, scores []float64) float64 {
	ids := TopK(ds, u, k, scores)
	return ds.Utility(u, ids[len(ids)-1])
}

// Rank returns nabla_u(t) for tuple id: one plus the number of tuples that
// outrank it under u (strictly higher utility, or equal utility and lower
// index). Scratch scores may be nil.
func Rank(ds *dataset.Dataset, u []float64, id int, scores []float64) int {
	scores = ds.Utilities(u, scores)
	me := scores[id]
	rank := 1
	for i, s := range scores {
		if beats(s, i, me, id) {
			rank++
		}
	}
	return rank
}

// RankOfSet returns nabla_u(S) = min over ids of nabla_u(t): the rank of the
// best member of S under u (Definition 1). ids must be non-empty. Scratch
// scores may be nil.
func RankOfSet(ds *dataset.Dataset, u []float64, ids []int, scores []float64) int {
	scores = ds.Utilities(u, scores)
	// Locate the best member of S.
	best := ids[0]
	for _, id := range ids[1:] {
		if beats(scores[id], id, scores[best], best) {
			best = id
		}
	}
	me := scores[best]
	rank := 1
	for i, s := range scores {
		if beats(s, i, me, best) {
			rank++
		}
	}
	return rank
}

// FullRanking returns all tuple indices ordered best-first under u.
func FullRanking(ds *dataset.Dataset, u []float64, scores []float64) []int {
	return TopK(ds, u, ds.N(), scores)
}
