package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

func appendRandomRows(ds *dataset.Dataset, rng *xrand.Rand, count int) {
	row := make([]float64, ds.Dim())
	for i := 0; i < count; i++ {
		for j := range row {
			row[j] = rng.Float64()
		}
		ds.Append(row)
	}
}

// appendDominatedRows appends rows with negligible values on every
// attribute: they are always-beaten by (essentially) every existing row, so
// they can never enter a top-K list, which makes their later deletion a
// zero-churn repair by construction.
func appendDominatedRows(ds *dataset.Dataset, count int) (ids []int) {
	row := make([]float64, ds.Dim())
	for j := range row {
		row[j] = 1e-9
	}
	for i := 0; i < count; i++ {
		ids = append(ids, ds.N())
		ds.Append(row)
	}
	return ids
}

// TestEngineVecSetRepairOnMutation drives the full engine path across a
// snapshot chain — append, append-dominated, delete, rewrite — checking that
// each repairable step materializes its VecSet entry by repair (counter
// moves), every solution equals a cold engine's on the same version, and
// solves pinned to older versions keep answering from their untouched
// entries.
func TestEngineVecSetRepairOnMutation(t *testing.T) {
	ctx := context.Background()
	e := New(0)
	opts := Options{Seed: 1, Samples: 300, Gamma: 3}
	const r = 6

	base := dataset.Anticorrelated(xrand.New(17), 400, 3)
	sol0, err := e.Solve(ctx, base, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Builds != 1 || st.Repairs != 0 {
		t.Fatalf("after cold solve: %+v", st)
	}

	// coldCheck solves ds on a throwaway engine and requires equality.
	coldCheck := func(ds *dataset.Dataset, sol *Solution) {
		t.Helper()
		want, err := New(0).Solve(ctx, ds, r, AlgoHDRRM, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sol, want) {
			t.Fatalf("incremental solution %+v != cold %+v", sol, want)
		}
	}

	// Step 1: append.
	v1 := base.Snapshot()
	appendRandomRows(v1, xrand.New(5), 12)
	sol1, err := e.Solve(ctx, v1, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Repairs != 1 || st.Builds != 1 {
		t.Fatalf("after append solve: %+v, want exactly one repair and no new build", st)
	}
	coldCheck(v1, sol1)

	// Step 2: append rows that cannot enter any list; their later deletion
	// is a guaranteed zero-churn repair.
	v2 := v1.Snapshot()
	doomed := appendDominatedRows(v2, 5)
	sol2, err := e.Solve(ctx, v2, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Repairs != 2 || st.Builds != 1 {
		t.Fatalf("after dominated-append solve: %+v, want a second repair", st)
	}
	coldCheck(v2, sol2)

	// Step 3: delete three of the dominated rows — novel content, repaired
	// from v2's entry.
	v3 := v2.Snapshot()
	if err := v3.Delete(doomed[:3]); err != nil {
		t.Fatal(err)
	}
	sol3, err := e.Solve(ctx, v3, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Repairs != 3 || st.Builds != 1 {
		t.Fatalf("after delete solve: %+v, want a third repair", st)
	}
	coldCheck(v3, sol3)

	// Deleting the remaining dominated rows restores v1's exact content:
	// the fingerprint round-trips (mutation-path independence) and the solve
	// is answered from the existing caches with no repair and no build.
	v3b := v3.Snapshot()
	if err := v3b.Delete([]int{v3b.N() - 2, v3b.N() - 1}); err != nil {
		t.Fatal(err)
	}
	if v3b.Fingerprint() != v1.Fingerprint() {
		t.Fatal("append+delete round trip changed the fingerprint")
	}
	statsBefore := e.VecSetStats()
	sol3b, err := e.Solve(ctx, v3b, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Repairs != statsBefore.Repairs || st.Builds != statsBefore.Builds {
		t.Fatalf("round-trip content re-built or re-repaired: %+v -> %+v", statsBefore, st)
	}
	if !reflect.DeepEqual(sol3b.IDs, sol1.IDs) || sol3b.RankRegret != sol1.RankRegret {
		t.Fatalf("round-trip solutions diverged: %+v vs %+v", sol3b, sol1)
	}

	// Pinned solves on old versions answer from their untouched entries: no
	// new build, no new repair, same solution as before the mutations.
	buildsBefore := e.VecSetStats().Builds
	sol0b, err := e.Solve(ctx, base, r+1, AlgoHDRRM, opts) // different r: misses the solution cache, hits the VecSet entry
	if err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Builds != buildsBefore || st.Repairs != 3 {
		t.Fatalf("pinned solve rebuilt or re-repaired: %+v", st)
	}
	want0b, err := New(0).Solve(ctx, base, r+1, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol0b, want0b) {
		t.Fatalf("pinned solve diverged: %+v vs %+v", sol0b, want0b)
	}
	if sol0c, err := e.Solve(ctx, base, r, AlgoHDRRM, opts); err != nil || !reflect.DeepEqual(sol0c, sol0) {
		t.Fatalf("pinned re-solve = %+v, %v; want original %+v", sol0c, err, sol0)
	}

	// Step 3: a rewrite (Shift) is not repairable — the tier must build
	// cold, and results must still match.
	v4 := v3.Snapshot()
	v4.Shift([]float64{0.05, 0.05, 0.05})
	sol4, err := e.Solve(ctx, v4, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Repairs != 3 {
		t.Fatalf("rewrite must not be repaired: %+v", st)
	}
	coldCheck(v4, sol4)
}

// TestDivergentSnapshotsDoNotPoisonRepair breaks the snapshot discipline on
// purpose: two snapshots of one version mutated independently share a
// (lineage, version) line, so the delta window between them composes
// cleanly while describing the wrong source. The repair's surviving-row
// content verification must catch the drift and fall back to a cold build
// with correct results.
func TestDivergentSnapshotsDoNotPoisonRepair(t *testing.T) {
	ctx := context.Background()
	e := New(0)
	opts := Options{Seed: 1, Samples: 250, Gamma: 3}
	const r = 5

	base := dataset.Independent(xrand.New(3), 200, 3)
	if _, err := e.Solve(ctx, base, r, AlgoHDRRM, opts); err != nil {
		t.Fatal(err)
	}

	// Branch A: one append; solved, so its entry becomes the identity head.
	brA := base.Snapshot()
	brA.Append([]float64{0.99, 0.98, 0.97})
	solA, err := e.Solve(ctx, brA, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	_ = solA

	// Branch B: diverges from base with DIFFERENT appended content, ending
	// at a higher version than branch A's entry. Its Deltas(brA.Version())
	// window splits the coalesced append and composes structurally — only
	// the content check can tell it came from the wrong branch.
	brB := base.Snapshot()
	brB.Append([]float64{0.01, 0.02, 0.03})
	brB.Append([]float64{0.5, 0.6, 0.7})
	repairsBefore := e.VecSetStats().Repairs
	solB, err := e.Solve(ctx, brB, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Repairs != repairsBefore {
		t.Fatalf("divergent branch was repaired instead of rebuilt: %+v", st)
	}
	want, err := New(0).Solve(ctx, brB, r, AlgoHDRRM, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solB, want) {
		t.Fatalf("divergent-branch solution poisoned: %+v != cold %+v", solB, want)
	}
}

// TestSchedulerEdgeCases is the table-driven sweep over scheduler edge
// behavior: queue-full rejection, retention-cap eviction order,
// cancel-while-queued, and a job pinned to a dataset version that the
// registry has already dropped.
func TestSchedulerEdgeCases(t *testing.T) {
	ds := dataset.SimIsland(xrand.New(3), 120)
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"queue-full-rejection", func(t *testing.T) {
			s, b := newBlockingScheduler(t, 1, 2)
			testBlock.cur.Store(&b)
			defer testBlock.cur.Store(nil)
			if _, err := s.Submit(blockReq(ds, b, 1)); err != nil {
				t.Fatal(err)
			}
			<-b.started // the only worker is now parked
			for i := 0; i < 2; i++ {
				if _, err := s.Submit(blockReq(ds, b, 2+i)); err != nil {
					t.Fatalf("queued submit %d: %v", i, err)
				}
			}
			if _, err := s.Submit(blockReq(ds, b, 9)); !errors.Is(err, ErrQueueFull) {
				t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
			}
			close(b.release)
		}},
		{"retention-cap-eviction-order", func(t *testing.T) {
			s, _ := newBlockingScheduler(t, 1, 8)
			s.retain = 2 // shrink the history so eviction is observable
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			var ids []string
			for i := 0; i < 4; i++ {
				st, err := s.Submit(blockReq(ds, blockingSolver{}, 1+i))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := s.Wait(ctx, st.ID); err != nil {
					t.Fatal(err)
				}
				ids = append(ids, st.ID)
			}
			// Oldest finished jobs are forgotten first; the newest two remain.
			for _, id := range ids[:2] {
				if _, ok := s.Get(id); ok {
					t.Fatalf("job %s survived past the retention cap", id)
				}
			}
			for _, id := range ids[2:] {
				if _, ok := s.Get(id); !ok {
					t.Fatalf("job %s evicted out of order", id)
				}
			}
		}},
		{"cancel-while-queued", func(t *testing.T) {
			s, b := newBlockingScheduler(t, 1, 4)
			testBlock.cur.Store(&b)
			defer testBlock.cur.Store(nil)
			if _, err := s.Submit(blockReq(ds, b, 1)); err != nil {
				t.Fatal(err)
			}
			<-b.started
			queued, err := s.Submit(blockReq(ds, b, 2))
			if err != nil {
				t.Fatal(err)
			}
			st, ok := s.Cancel(queued.ID)
			if !ok {
				t.Fatal("cancel: unknown job")
			}
			if st.State != JobFailed || !strings.Contains(st.Error, "canceled") {
				t.Fatalf("cancelled-while-queued status = %+v", st)
			}
			if st.StartedAt.IsZero() != true {
				t.Fatalf("cancelled queued job claims to have started: %+v", st)
			}
			close(b.release)
		}},
		{"job-pinned-to-deleted-version", func(t *testing.T) {
			// A registry drops old versions under a retention cap, but a job
			// holding the snapshot keeps solving consistent data.
			e := New(0)
			s := NewScheduler(e, 1, 4)
			t.Cleanup(s.Close)
			b := blockingSolver{started: make(chan string, 4), release: make(chan struct{})}
			testBlock.cur.Store(&b)
			defer testBlock.cur.Store(nil)

			v0 := dataset.SimIsland(xrand.New(9), 150)
			if _, err := s.Submit(blockReq(ds, b, 1)); err != nil {
				t.Fatal(err)
			}
			<-b.started // worker parked: the pinned job stays queued
			pinned, err := s.Submit(Request{Dataset: v0, Mode: ModeRRM, RK: 4, Algorithm: AlgoTwoDRRM, Opts: Options{Seed: 1}})
			if err != nil {
				t.Fatal(err)
			}
			// The "registry" moves on: the current version mutates and v0 is
			// dropped from retention (the job's pointer is the only survivor).
			cur := v0.Snapshot()
			appendRandomRows(cur, xrand.New(2), 30)
			close(b.release)

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			st, err := s.Wait(ctx, pinned.ID)
			if err != nil {
				t.Fatal(err)
			}
			if st.State != JobDone {
				t.Fatalf("pinned job state = %s (%s)", st.State, st.Error)
			}
			want, err := New(0).Solve(ctx, v0, 4, AlgoTwoDRRM, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(st.Solution.IDs, want.IDs) || st.Solution.RankRegret != want.RankRegret {
				t.Fatalf("pinned job solved mutated data: %+v != %+v", st.Solution, want)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}

// TestRepairSpeedupCIWeather is the acceptance measurement: on the CI-scale
// simweather case, repairing the VecSet tier across a small append must beat
// rebuilding it cold by a wide margin (>= 10x without the race detector; the
// assertion relaxes under -race where instrumentation compresses ratios).
// The repaired lists are additionally spot-checked against the cold build.
func TestRepairSpeedupCIWeather(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement")
	}
	ctx := context.Background()
	ho := algohd.DefaultOptions()
	const (
		n = 4000
		r = 10
		k = 32
	)
	base := dataset.SimWeather(xrand.New(1), n)
	m0 := ho.SampleSize(base.N(), base.Dim(), r)
	old := algohd.NewSharedVecSet(base, nil, ho.EffectiveGamma(), 1, nil)
	view, _, err := old.Acquire(ctx, m0)
	if err != nil {
		t.Fatal(err)
	}
	view.EnsureTopK(k)

	v1 := base.Snapshot()
	appendRandomRows(v1, xrand.New(4), 16)
	deltas, ok := v1.Deltas(base.Version())
	if !ok {
		t.Fatal("history truncated")
	}
	m1 := ho.SampleSize(v1.N(), v1.Dim(), r)

	// Best of three for each side: scheduler jitter on a shared CI runner
	// can inflate the ~30ms repair interval far more than the ~500ms cold
	// build, and the floor below is a hard assertion.
	var repView, cold *algohd.VecSet
	repairT, coldT := time.Duration(1<<62), time.Duration(1<<62)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		rep := algohd.NewRepairedVecSet(old, v1, deltas)
		view, outcome, err := rep.Acquire(ctx, m1)
		if err != nil {
			t.Fatal(err)
		}
		if err := view.EnsureTopKCtx(ctx, k); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < repairT {
			repairT = d
		}
		if outcome != algohd.VecSetRepaired {
			t.Fatalf("outcome = %v, want repaired", outcome)
		}
		repView = view

		start = time.Now()
		c, err := algohd.BuildVecSetCtx(ctx, v1, nil, ho.EffectiveGamma(), m1, xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.EnsureTopKCtx(ctx, k); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < coldT {
			coldT = d
		}
		cold = c
	}

	for _, v := range []int{0, 1, repView.Len() / 2, repView.Len() - 1} {
		if !reflect.DeepEqual(repView.Top(v, k), cold.Top(v, k)) {
			t.Fatalf("vector %d: repaired and cold lists differ", v)
		}
	}

	ratio := float64(coldT) / float64(repairT)
	t.Logf("simweather ci-scale append repair: cold rebuild %v, incremental repair %v (%.1fx)", coldT, repairT, ratio)
	minRatio := 10.0
	if raceEnabled {
		minRatio = 3.0
	}
	if ratio < minRatio {
		t.Fatalf("repair speedup %.1fx below the %.0fx floor (cold %v, repair %v)", ratio, minRatio, coldT, repairT)
	}
}
