package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/topk"
	"github.com/rankregret/rankregret/internal/xrand"
)

// propertyDatasets enumerates the randomized workloads the property harness
// sweeps: every generator family at 2 and 3 dimensions, several seeds.
func propertyDatasets() []struct {
	name string
	ds   *dataset.Dataset
} {
	type gen struct {
		name string
		make func(rng *xrand.Rand, n, d int) *dataset.Dataset
	}
	gens := []gen{
		{"indep", dataset.Independent},
		{"corr", dataset.Correlated},
		{"anti", dataset.Anticorrelated},
	}
	var out []struct {
		name string
		ds   *dataset.Dataset
	}
	for _, g := range gens {
		for _, d := range []int{2, 3} {
			for _, seed := range []int64{1, 2} {
				out = append(out, struct {
					name string
					ds   *dataset.Dataset
				}{
					name: fmt.Sprintf("%s/d%d/seed%d", g.name, d, seed),
					ds:   g.make(xrand.New(seed), 90, d),
				})
			}
		}
	}
	return out
}

// checkWellFormed asserts the structural contract every solver shares: a
// non-empty output of at most r distinct, in-range ids in ascending order.
func checkWellFormed(t *testing.T, ds *dataset.Dataset, r int, sol *Solution) {
	t.Helper()
	if len(sol.IDs) == 0 {
		t.Fatalf("empty solution")
	}
	if len(sol.IDs) > r {
		t.Fatalf("solution size %d exceeds budget r=%d", len(sol.IDs), r)
	}
	prev := -1
	for _, id := range sol.IDs {
		if id < 0 || id >= ds.N() {
			t.Fatalf("id %d out of range [0, %d)", id, ds.N())
		}
		if id <= prev {
			t.Fatalf("ids not strictly ascending: %v", sol.IDs)
		}
		prev = id
	}
}

// TestSolverProperties runs every registered algorithm over randomized
// datasets and checks the guarantees each one actually makes:
//
//   - all: well-formed output (non-empty, <= r, sorted unique in range);
//   - exact solvers (2drrm, 2drrr): no sampled direction may find a rank
//     worse than the reported rank-regret;
//   - hdrrm: the Theorem 9/10 guarantee with respect to its discretized
//     vector set D — rebuilding the exact same D, every direction in it
//     must rank some chosen tuple at or above the reported threshold.
func TestSolverProperties(t *testing.T) {
	const r = 6
	e := New(0)
	for _, tc := range propertyDatasets() {
		for _, algo := range Algorithms() {
			if algo == "test-block" {
				continue // test-only scheduler fixture, not a real solver
			}
			t.Run(tc.name+"/"+algo, func(t *testing.T) {
				ds := tc.ds
				opts := Options{Seed: 3, Samples: 250, Gamma: 3}
				sol, err := e.Solve(context.Background(), ds, r, algo, opts)
				if errors.Is(err, ErrDimension) {
					if ds.Dim() == 2 {
						t.Fatalf("2D-only solver refused a 2D dataset")
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				checkWellFormed(t, ds, r, sol)

				if sol.Exact && sol.RankRegret > 0 {
					// No sampled utility direction may beat the reported
					// exact rank-regret.
					rng := xrand.New(11)
					scores := make([]float64, ds.N())
					for i := 0; i < 400; i++ {
						u := rng.UnitOrthantDirection(ds.Dim())
						if got := topk.RankOfSet(ds, u, sol.IDs, scores); got > sol.RankRegret {
							t.Fatalf("sampled direction ranks best member %d, worse than exact rank-regret %d", got, sol.RankRegret)
						}
					}
				}

				if algo == AlgoHDRRM {
					// Theorem 9/10: reported K is a hard guarantee over the
					// discrete set D the solver used. Rebuild that D and
					// verify every direction is covered within K.
					ho := opts.hd()
					m := ho.SampleSize(ds.N(), ds.Dim(), r)
					vs, err := algohd.BuildVecSet(ds, nil, ho.EffectiveGamma(), m, xrand.New(ho.Seed))
					if err != nil {
						t.Fatal(err)
					}
					scores := make([]float64, ds.N())
					for v := 0; v < vs.Len(); v++ {
						if got := topk.RankOfSet(ds, vs.Vecs[v], sol.IDs, scores); got > sol.RankRegret {
							t.Fatalf("direction %d of D ranks best member %d, violating the guaranteed threshold %d", v, got, sol.RankRegret)
						}
					}
				}
			})
		}
	}
}

// TestSolverMonotonicity checks the two monotone shapes a budget sweep must
// have: the achieved rank-regret never worsens as r grows (primal), and the
// minimal representative set never grows as the threshold k relaxes (dual,
// exact 2D solver). hdrrm runs with a fixed sample count so every budget
// shares one discretization, which is what the engine's sweep path does.
func TestSolverMonotonicity(t *testing.T) {
	ctx := context.Background()

	t.Run("2drrm/primal", func(t *testing.T) {
		e := New(0)
		ds := dataset.Anticorrelated(xrand.New(4), 200, 2)
		prev := ds.N() + 1
		for r := 1; r <= 10; r++ {
			sol, err := e.Solve(ctx, ds, r, AlgoTwoDRRM, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if sol.RankRegret > prev {
				t.Fatalf("r=%d: exact rank-regret %d worse than %d at smaller budget", r, sol.RankRegret, prev)
			}
			prev = sol.RankRegret
		}
	})

	t.Run("2drrm/dual", func(t *testing.T) {
		e := New(0)
		ds := dataset.Anticorrelated(xrand.New(5), 200, 2)
		prev := ds.N() + 1
		for _, k := range []int{1, 2, 4, 8, 16, 32} {
			sol, err := e.SolveRRR(ctx, ds, k, AlgoTwoDRRM, Options{Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(sol.IDs) > prev {
				t.Fatalf("k=%d: minimal set size %d grew from %d at stricter threshold", k, len(sol.IDs), prev)
			}
			prev = len(sol.IDs)
		}
	})

	t.Run("hdrrm/primal", func(t *testing.T) {
		e := New(0)
		ds := dataset.Anticorrelated(xrand.New(6), 150, 3)
		opts := Options{Seed: 2, Samples: 300, Gamma: 3}
		prev := ds.N() + 1
		for r := 4; r <= 10; r++ {
			sol, err := e.Solve(ctx, ds, r, AlgoHDRRM, opts)
			if err != nil {
				t.Fatal(err)
			}
			if sol.RankRegret > prev {
				t.Fatalf("r=%d: guaranteed threshold %d worse than %d at smaller budget", r, sol.RankRegret, prev)
			}
			prev = sol.RankRegret
		}
		// The whole sweep shares one discretization.
		if st := e.VecSetStats(); st.Builds != 1 {
			t.Errorf("sweep built %d vector sets, want 1", st.Builds)
		}
	})
}
