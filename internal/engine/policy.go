package engine

import "time"

// PendingJob is a Policy's read-only view of one queued job.
type PendingJob struct {
	// Label is the request's label (rrmd sets the dataset's registry name).
	Label string
	// Algorithm is the requested solver name ("" = auto).
	Algorithm string
	// Mode is primal (rrm) or dual (rrr).
	Mode Mode
	// RK is the request's output budget r or threshold k.
	RK int
	// EnqueuedAt is when the job was admitted to the queue.
	EnqueuedAt time.Time
	// Warm reports that the engine already holds hot state for the request:
	// its exact solution is in the solution cache, or the dataset's shared
	// VecSet is resident so the solve skips the cold build. Probing is
	// passive — no cache counters or LRU order move.
	Warm bool
}

// Policy orders the scheduler's pending queue: each time a worker frees up it
// asks the policy which queued job to run next. Next is called with the
// scheduler lock held, so implementations must be fast, must not block, and
// must not call back into the scheduler or submit work. pending is in
// arrival order (oldest first) and non-empty; the returned index must be in
// [0, len(pending)).
type Policy interface {
	// Name identifies the policy in metrics and benchmark reports.
	Name() string
	Next(pending []PendingJob) int
}

// FIFO runs jobs strictly in arrival order: the baseline policy, and the
// scheduler's default.
type FIFO struct{}

func (FIFO) Name() string { return "fifo" }

func (FIFO) Next(pending []PendingJob) int { return 0 }

// DefaultMaxColdWait is Affinity's starvation bound: once the oldest pending
// job has waited this long it runs next regardless of warmth.
const DefaultMaxColdWait = 2 * time.Second

// Affinity is cache-affinity-aware ordering: under pressure, jobs whose
// dataset state is already warm in the engine (resident VecSet or cached
// solution) run before jobs that would trigger a cold build, so the queue
// drains at warm-hit speed instead of stalling every worker on cold builds.
// Within each class arrival order is kept, so results are byte-identical to
// FIFO — only latency ordering moves. MaxColdWait bounds starvation: once
// the oldest pending job has waited that long it runs next regardless
// (0 = DefaultMaxColdWait).
type Affinity struct {
	MaxColdWait time.Duration
}

func (Affinity) Name() string { return "affinity" }

func (a Affinity) Next(pending []PendingJob) int {
	wait := a.MaxColdWait
	if wait <= 0 {
		wait = DefaultMaxColdWait
	}
	if time.Since(pending[0].EnqueuedAt) >= wait {
		return 0
	}
	for i := range pending {
		if pending[i].Warm {
			return i
		}
	}
	return 0
}

// PolicyByName resolves the registered scheduling policies by CLI-friendly
// name: "fifo" and "affinity" ("" = fifo).
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "", "fifo":
		return FIFO{}, true
	case "affinity":
		return Affinity{}, true
	}
	return nil, false
}
