package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/rankregret/rankregret/internal/algohd"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

// TestVecSetCacheConcurrentStress is the tier's -race stress test: 32
// goroutines issue a mix of direct solves and scheduler batches over two
// shared datasets and a spread of budgets. With a fixed sample count every
// solve on one dataset maps to one VecSet key, so the build coalescing must
// produce exactly one build per dataset, zero extensions, and identical
// solutions everywhere.
func TestVecSetCacheConcurrentStress(t *testing.T) {
	e := New(0)
	sched := NewScheduler(e, 8, 64)
	defer sched.Close()

	datasets := []*dataset.Dataset{
		dataset.Independent(xrand.New(1), 120, 3),
		dataset.Anticorrelated(xrand.New(2), 130, 4),
	}
	opts := Options{Seed: 5, Samples: 300, Gamma: 3}
	rs := []int{4, 5, 6, 7}

	var results sync.Map // "dsIdx|r" -> *Solution (first writer wins)
	check := func(dsIdx, r int, sol *Solution) error {
		key := fmt.Sprintf("%d|%d", dsIdx, r)
		prev, loaded := results.LoadOrStore(key, sol)
		if loaded && !reflect.DeepEqual(prev.(*Solution), sol) {
			return fmt.Errorf("solve %s returned a different solution across goroutines", key)
		}
		return nil
	}

	const workers = 32
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			dsIdx := w % len(datasets)
			ds := datasets[dsIdx]
			if w%2 == 0 {
				// Direct single solves, sweeping r.
				for _, r := range rs {
					sol, err := e.Solve(context.Background(), ds, r, "hdrrm", opts)
					if err != nil {
						errc <- err
						return
					}
					if err := check(dsIdx, r, sol); err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
				return
			}
			// One batch through the scheduler covering the same sweep.
			reqs := make([]Request, len(rs))
			for i, r := range rs {
				reqs[i] = Request{Dataset: ds, Mode: ModeRRM, RK: r, Algorithm: "hdrrm", Opts: opts}
			}
			statuses, err := sched.Batch(context.Background(), reqs)
			if err != nil {
				errc <- err
				return
			}
			for i, st := range statuses {
				if st.State != JobDone {
					errc <- fmt.Errorf("batch job %s state %s: %s", st.ID, st.State, st.Error)
					return
				}
				if err := check(dsIdx, rs[i], st.Solution); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	st := e.VecSetStats()
	if st.Builds != uint64(len(datasets)) {
		t.Errorf("vecset builds = %d, want exactly %d (one per dataset key)", st.Builds, len(datasets))
	}
	if st.Extensions != 0 {
		t.Errorf("vecset extensions = %d, want 0 (fixed sample count)", st.Extensions)
	}
	if st.Len != len(datasets) {
		t.Errorf("vecset cache len = %d, want %d", st.Len, len(datasets))
	}
}

// TestVecSetCacheKeying checks the tier's key: solves differing only in r
// or k share an entry, while dataset, space, gamma, or seed changes build
// new ones.
func TestVecSetCacheKeying(t *testing.T) {
	e := New(0)
	ds := dataset.Independent(xrand.New(3), 100, 3)
	base := Options{Seed: 2, Samples: 200, Gamma: 3}
	ctx := context.Background()

	solve := func(r int, opts Options) {
		t.Helper()
		if _, err := e.Solve(ctx, ds, r, "hdrrm", opts); err != nil {
			t.Fatal(err)
		}
	}
	solve(4, base)
	if st := e.VecSetStats(); st.Builds != 1 {
		t.Fatalf("builds after first solve = %d, want 1", st.Builds)
	}
	solve(5, base) // r sweep: same key
	solve(6, base)
	if _, err := e.SolveRRR(ctx, ds, 8, "hdrrm", base); err != nil { // dual: same key
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Builds != 1 || st.Reuses != 3 {
		t.Fatalf("stats after sweep = %+v, want 1 build / 3 reuses", st)
	}

	diffSeed := base
	diffSeed.Seed = 9
	solve(4, diffSeed)
	diffGamma := base
	diffGamma.Gamma = 4
	solve(4, diffGamma)
	if st := e.VecSetStats(); st.Builds != 3 {
		t.Fatalf("builds after seed+gamma changes = %d, want 3", st.Builds)
	}

	// Growing m on the same key extends rather than rebuilds.
	bigger := base
	bigger.Samples = 400
	solve(4, bigger)
	if st := e.VecSetStats(); st.Builds != 3 || st.Extensions != 1 {
		t.Fatalf("stats after larger m = %+v, want 3 builds / 1 extension", st)
	}
}

// TestVecSetCacheEviction checks LRU bounds: the tier never holds more than
// its capacity and rebuilds evicted entries on demand.
func TestVecSetCacheEviction(t *testing.T) {
	c := NewVecSetCache(2)
	ctx := context.Background()
	var sets []*dataset.Dataset
	for i := 0; i < 3; i++ {
		sets = append(sets, dataset.Independent(xrand.New(int64(10+i)), 60, 3))
	}
	opts := Options{Seed: 1, Samples: 100, Gamma: 3}
	for _, ds := range sets {
		if _, err := c.Acquire(ctx, ds, opts, 100); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Builds != 3 || st.Len != 2 {
		t.Fatalf("stats after 3 distinct acquires at cap 2 = %+v", st)
	}
	// The first dataset was evicted: acquiring it again rebuilds.
	if _, err := c.Acquire(ctx, sets[0], opts, 100); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Builds != 4 || st.Len != 2 {
		t.Fatalf("stats after re-acquiring evicted entry = %+v, want 4 builds at len 2", st)
	}
}

// TestSamplerBypassesVecSetTier: sampler-backed solves have no cacheable
// identity and must not touch the tier.
func TestSamplerBypassesVecSetTier(t *testing.T) {
	e := New(0)
	ds := dataset.Independent(xrand.New(4), 80, 3)
	sampler, err := algohd.GaussianPreference([]float64{1, 1, 1}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 1, Samples: 150, Gamma: 3, Sampler: sampler}
	if _, err := e.Solve(context.Background(), ds, 4, "hdrrm", opts); err != nil {
		t.Fatal(err)
	}
	if st := e.VecSetStats(); st.Builds != 0 || st.Len != 0 {
		t.Errorf("sampler-backed solve touched the VecSet tier: %+v", st)
	}
}
