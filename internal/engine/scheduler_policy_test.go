package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

// TestRunBudgetAnchoredAtDequeue is the regression test for the queue-wait
// starvation bug: a job whose run budget is shorter than the time it spends
// queued behind other work must still run with its full budget once a worker
// picks it up, not start dead.
func TestRunBudgetAnchoredAtDequeue(t *testing.T) {
	s, b := newBlockingScheduler(t, 1, 8)
	testBlock.cur.Store(&b)
	ds := dataset.Independent(xrand.New(1), 50, 3)

	blocker, err := s.Submit(blockReq(ds, b, 3))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	// Run budget 200ms, then a 450ms queue wait behind the blocker: if the
	// budget were counted from submission, the job would be expired before
	// it ever started.
	req := blockReq(ds, b, 4)
	req.Timeout = 200 * time.Millisecond
	victim, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(450 * time.Millisecond)
	// Swap to the instant solver (which still fails on an expired context)
	// before releasing, so the victim's outcome depends only on its budget.
	testBlock.cur.Store(nil)
	close(b.release)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if st, err := s.Wait(ctx, blocker.ID); err != nil || st.State != JobDone {
		t.Fatalf("blocker = %+v (err %v), want done", st, err)
	}
	st, err := s.Wait(ctx, victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("job queued past its run budget = %s (%q), want done: the budget must anchor at dequeue", st.State, st.Error)
	}
}

// TestQueueTimeoutRejectsAtDequeue covers the other half of the split
// budget: a job whose queue-wait budget expires before a worker frees up is
// rejected with ErrQueueTimeout instead of running late.
func TestQueueTimeoutRejectsAtDequeue(t *testing.T) {
	s, b := newBlockingScheduler(t, 1, 8)
	testBlock.cur.Store(&b)
	ds := dataset.Independent(xrand.New(1), 50, 3)

	if _, err := s.Submit(blockReq(ds, b, 3)); err != nil {
		t.Fatal(err)
	}
	<-b.started
	req := blockReq(ds, b, 4)
	req.QueueTimeout = 30 * time.Millisecond
	stale, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // let the queue-wait budget lapse
	testBlock.cur.Store(nil)
	close(b.release)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, stale.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || st.Error != ErrQueueTimeout.Error() {
		t.Fatalf("expired-queue-wait job = %s (%q), want failed with %v", st.State, st.Error, ErrQueueTimeout)
	}
	if !st.StartedAt.IsZero() {
		t.Errorf("rejected job has a start time %v; it must never run", st.StartedAt)
	}
}

// TestDoQueueTimeout exercises the synchronous path: Do with a queue-wait
// budget returns ErrQueueTimeout when the queue stays saturated past it.
func TestDoQueueTimeout(t *testing.T) {
	s, b := newBlockingScheduler(t, 1, 8)
	testBlock.cur.Store(&b)
	ds := dataset.Independent(xrand.New(1), 50, 3)

	if _, err := s.Submit(blockReq(ds, b, 3)); err != nil {
		t.Fatal(err)
	}
	<-b.started
	go func() {
		time.Sleep(150 * time.Millisecond)
		testBlock.cur.Store(nil)
		close(b.release)
	}()
	req := blockReq(ds, b, 4)
	req.QueueTimeout = 30 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := s.Do(ctx, req); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("Do on a saturated queue = %v, want ErrQueueTimeout", err)
	}
}

// TestAffinityRunsWarmJobsFirst pins the policy behavior: under pressure,
// with the affinity policy installed, a pending job whose dataset is warm in
// the engine's cache tiers starts before an earlier-arrived cold job — and
// under FIFO the arrival order wins.
func TestAffinityRunsWarmJobsFirst(t *testing.T) {
	for _, tc := range []struct {
		name      string
		policy    Policy
		warmFirst bool
	}{
		{"affinity", Affinity{MaxColdWait: time.Minute}, true},
		{"fifo", FIFO{}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := New(0) // caches on: the warm probe needs them
			s := NewScheduler(e, 1, 8)
			defer s.Close()
			s.SetPolicy(tc.policy)
			b := blockingSolver{started: make(chan string, 4), release: make(chan struct{})}
			testBlock.cur.Store(&b)
			defer testBlock.cur.Store(nil)

			cold := dataset.SimIsland(xrand.New(2), 150)
			warm := dataset.SimNBA(xrand.New(3), 150)
			opts := Options{Seed: 1, MaxSamples: 400}
			// Warm the VecSet tier for one dataset with a direct solve (r=5
			// covers SimNBA's basis; the tier's key ignores r, so the later
			// r=5 job probes warm either way).
			if _, err := e.Solve(context.Background(), warm, 5, "", opts); err != nil {
				t.Fatal(err)
			}

			blocker, err := s.Submit(blockReq(cold, b, 3))
			if err != nil {
				t.Fatal(err)
			}
			<-b.started
			coldSt, err := s.Submit(Request{Dataset: cold, Mode: ModeRRM, RK: 5, Opts: opts})
			if err != nil {
				t.Fatal(err)
			}
			warmSt, err := s.Submit(Request{Dataset: warm, Mode: ModeRRM, RK: 5, Opts: opts})
			if err != nil {
				t.Fatal(err)
			}
			close(b.release)

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for _, id := range []string{blocker.ID, coldSt.ID, warmSt.ID} {
				if st, err := s.Wait(ctx, id); err != nil || st.State != JobDone {
					t.Fatalf("job %s = %+v (err %v), want done", id, st, err)
				}
			}
			gotCold, _ := s.Get(coldSt.ID)
			gotWarm, _ := s.Get(warmSt.ID)
			warmFirst := gotWarm.StartedAt.Before(gotCold.StartedAt)
			if warmFirst != tc.warmFirst {
				t.Fatalf("policy %s: warm job started first = %v, want %v (warm %v, cold %v)",
					tc.name, warmFirst, tc.warmFirst, gotWarm.StartedAt, gotCold.StartedAt)
			}
		})
	}
}

// TestAffinityAntiStarvation: once the oldest pending job has waited past
// MaxColdWait, affinity degrades to FIFO so cold jobs cannot starve behind a
// stream of warm ones.
func TestAffinityAntiStarvation(t *testing.T) {
	now := time.Now()
	p := Affinity{MaxColdWait: 50 * time.Millisecond}
	pending := []PendingJob{
		{Label: "cold", EnqueuedAt: now.Add(-time.Second), Warm: false},
		{Label: "warm", EnqueuedAt: now, Warm: true},
	}
	if got := p.Next(pending); got != 0 {
		t.Fatalf("starving cold job skipped: Next = %d, want 0", got)
	}
	pending[0].EnqueuedAt = now // fresh again: warm preference applies
	if got := p.Next(pending); got != 1 {
		t.Fatalf("fresh queue: Next = %d, want the warm job (1)", got)
	}
}

// TestStatsCoherentUnderLoad hammers the scheduler from many goroutines
// while a reader snapshots Stats, asserting the invariants a coherent
// snapshot guarantees (done+failed never exceeds submitted, gauges stay in
// range). Run with -race this also proves the counters share one lock.
func TestStatsCoherentUnderLoad(t *testing.T) {
	e := New(0)
	s := NewScheduler(e, 4, 16)
	defer s.Close()
	ds := dataset.Independent(xrand.New(5), 60, 3)
	opts := Options{Seed: 1, MaxSamples: 200}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.Done+st.Failed > st.Submitted {
				t.Errorf("torn snapshot: done %d + failed %d > submitted %d", st.Done, st.Failed, st.Submitted)
				return
			}
			if st.QueueDepth < 0 || st.QueueDepth > st.QueueCap {
				t.Errorf("queue depth %d outside [0, %d]", st.QueueDepth, st.QueueCap)
				return
			}
			if st.Running < 0 || st.Running > int64(st.Workers) {
				t.Errorf("running %d outside [0, %d]", st.Running, st.Workers)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				req := Request{Dataset: ds, Mode: ModeRRM, RK: 3 + (g+i)%3, Opts: opts}
				if g%2 == 0 {
					// Sync path; overload rejections are expected and fine.
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					_, err := s.Do(ctx, req)
					cancel()
					if err != nil && !errors.Is(err, ErrQueueFull) {
						t.Errorf("Do: %v", err)
						return
					}
				} else {
					if _, err := s.Submit(req); err != nil && !errors.Is(err, ErrQueueFull) {
						t.Errorf("Submit: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	readerWG.Wait()
	st := s.Stats()
	if st.Done+st.Failed != st.Submitted {
		t.Fatalf("after drain: done %d + failed %d != submitted %d", st.Done, st.Failed, st.Submitted)
	}
	if st.QueueDepth != 0 || st.Running != 0 {
		t.Fatalf("after drain: depth %d running %d, want 0/0", st.QueueDepth, st.Running)
	}
}

// TestEphemeralJobsInvisible: synchronous Do solves share the pool but never
// appear in the async job listing or retention.
func TestEphemeralJobsInvisible(t *testing.T) {
	e := New(-1)
	s := NewScheduler(e, 2, 8)
	defer s.Close()
	ds := dataset.Independent(xrand.New(1), 50, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := s.Do(ctx, Request{Dataset: ds, Mode: ModeRRM, RK: 3, Opts: Options{Seed: 1, MaxSamples: 200}}); err != nil {
		t.Fatal(err)
	}
	if jobs := s.Jobs(); len(jobs) != 0 {
		t.Fatalf("ephemeral solve leaked into Jobs(): %+v", jobs)
	}
	if st := s.Stats(); st.Retained != 0 || st.Done != 1 {
		t.Fatalf("stats after ephemeral solve = %+v, want retained 0 / done 1", st)
	}
}
