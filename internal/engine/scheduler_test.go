package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rankregret/rankregret/internal/ctxutil"
	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/xrand"
)

// blockingSolver parks until released (or its context dies), giving the
// scheduler tests deterministic control over worker occupancy.
type blockingSolver struct {
	started chan string   // receives the blocked solve's marker
	release chan struct{} // close to let every blocked solve finish
}

func (blockingSolver) Name() string { return "test-block" }

func (b blockingSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	select {
	case b.started <- "":
	default:
	}
	select {
	case <-b.release:
		return &Solution{IDs: []int{0}, Algorithm: "test-block"}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func newBlockingScheduler(t *testing.T, workers, queueCap int) (*Scheduler, blockingSolver) {
	t.Helper()
	// The engine cache is disabled so every blocking solve really blocks
	// instead of being answered from the cache or coalesced in flight.
	e := New(-1)
	s := NewScheduler(e, workers, queueCap)
	t.Cleanup(s.Close)
	b := blockingSolver{started: make(chan string, 64), release: make(chan struct{})}
	return s, b
}

func blockReq(ds *dataset.Dataset, b blockingSolver, r int) Request {
	// SolveWith is not reachable through Request (it dispatches by name),
	// so the blocking solver registers once under its own name.
	return Request{Dataset: ds, Mode: ModeRRM, RK: r, Algorithm: "test-block"}
}

func init() {
	// A single registry-wide instance shared by every test in the package;
	// individual tests swap its channels via the atomic pointer.
	Register(testBlock)
}

var testBlock = &sharedBlockingSolver{}

// sharedBlockingSolver adapts blockingSolver to the one-registration-only
// registry: tests point it at their own channels.
type sharedBlockingSolver struct {
	cur atomic.Pointer[blockingSolver]
}

func (s *sharedBlockingSolver) Name() string { return "test-block" }

func (s *sharedBlockingSolver) Solve(ctx context.Context, ds *dataset.Dataset, r int, opts Options) (*Solution, error) {
	b := s.cur.Load()
	if b == nil {
		if err := ctxutil.Cancelled(ctx); err != nil {
			return nil, err
		}
		return &Solution{IDs: []int{0}, Algorithm: "test-block"}, nil
	}
	return b.Solve(ctx, ds, r, opts)
}

// TestSchedulerBatchMatchesSequential is the engine-level golden
// equivalence: a batch over mixed primal/dual requests returns exactly the
// solutions of the corresponding sequential engine calls.
func TestSchedulerBatchMatchesSequential(t *testing.T) {
	e := New(0)
	s := NewScheduler(e, 4, 16)
	defer s.Close()
	island := dataset.SimIsland(xrand.New(7), 300)
	nba := dataset.SimNBA(xrand.New(7), 400)
	opts := Options{Seed: 1, MaxSamples: 1000}

	reqs := []Request{
		{Dataset: island, Mode: ModeRRM, RK: 5, Opts: opts},
		{Dataset: nba, Mode: ModeRRM, RK: 7, Algorithm: "hdrrm", Opts: opts},
		{Dataset: nba, Mode: ModeRRM, RK: 9, Algorithm: "hdrrm", Opts: opts},
		{Dataset: island, Mode: ModeRRR, RK: 3, Opts: opts},
		{Dataset: nba, Mode: ModeRRR, RK: 30, Algorithm: "hdrrm", Opts: opts},
	}
	// Sequential golden results on a fresh engine so neither path sees the
	// other's cache.
	seq := New(0)
	want := make([]*Solution, len(reqs))
	for i, r := range reqs {
		var err error
		want[i], err = r.Run(context.Background(), seq)
		if err != nil {
			t.Fatal(err)
		}
	}

	statuses, err := s.Batch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range statuses {
		if st.State != JobDone {
			t.Fatalf("job %d state %s: %s", i, st.State, st.Error)
		}
		if !reflect.DeepEqual(st.Solution, want[i]) {
			t.Errorf("job %d solution %+v, want %+v", i, st.Solution, want[i])
		}
	}
}

// TestJobLifecycle walks one async job queued -> running -> done and checks
// the status snapshots along the way.
func TestJobLifecycle(t *testing.T) {
	s, b := newBlockingScheduler(t, 1, 8)
	testBlock.cur.Store(&b)
	defer testBlock.cur.Store(nil)
	ds := dataset.Independent(xrand.New(1), 50, 3)

	st, err := s.Submit(blockReq(ds, b, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued {
		t.Errorf("submitted state = %s, want queued", st.State)
	}
	<-b.started // the worker picked it up
	if got, _ := s.Get(st.ID); got.State != JobRunning {
		t.Errorf("state after start = %s, want running", got.State)
	}
	close(b.release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != JobDone || final.Solution == nil || final.Error != "" {
		t.Errorf("final status = %+v, want done with a solution", final)
	}
	if final.StartedAt.IsZero() || final.FinishedAt.IsZero() {
		t.Errorf("finished job missing timestamps: %+v", final)
	}
	stats := s.Stats()
	if stats.Submitted != 1 || stats.Done != 1 || stats.Failed != 0 {
		t.Errorf("stats = %+v, want 1 submitted / 1 done", stats)
	}
}

// TestJobCancelQueuedAndRunning cancels one running and one still-queued
// job; both must fail with a cancellation error.
func TestJobCancelQueuedAndRunning(t *testing.T) {
	s, b := newBlockingScheduler(t, 1, 8)
	testBlock.cur.Store(&b)
	defer testBlock.cur.Store(nil)
	ds := dataset.Independent(xrand.New(1), 50, 3)

	running, err := s.Submit(blockReq(ds, b, 3))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	queued, err := s.Submit(blockReq(ds, b, 4))
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{queued.ID, running.ID} {
		if _, ok := s.Cancel(id); !ok {
			t.Fatalf("Cancel(%s) found no job", id)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range []string{running.ID, queued.ID} {
		st, err := s.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobFailed || !strings.Contains(st.Error, "cancel") {
			t.Errorf("cancelled job %s = %+v, want failed with a cancellation error", id, st)
		}
	}
	if stats := s.Stats(); stats.Failed != 2 {
		t.Errorf("stats = %+v, want 2 failed", stats)
	}
}

// TestSubmitQueueFull checks the fail-fast path: with the single worker
// parked and the queue full, Submit refuses instead of blocking.
func TestSubmitQueueFull(t *testing.T) {
	s, b := newBlockingScheduler(t, 1, 1)
	testBlock.cur.Store(&b)
	defer testBlock.cur.Store(nil)
	ds := dataset.Independent(xrand.New(1), 50, 3)

	if _, err := s.Submit(blockReq(ds, b, 3)); err != nil { // runs
		t.Fatal(err)
	}
	<-b.started
	if _, err := s.Submit(blockReq(ds, b, 4)); err != nil { // queues
		t.Fatal(err)
	}
	if _, err := s.Submit(blockReq(ds, b, 5)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	close(b.release)
}

// TestSchedulerClose checks shutdown: running jobs are cancelled, queued
// jobs fail with ErrSchedulerClosed, and later submissions are refused.
func TestSchedulerClose(t *testing.T) {
	e := New(-1)
	s := NewScheduler(e, 1, 4)
	b := blockingSolver{started: make(chan string, 4), release: make(chan struct{})}
	testBlock.cur.Store(&b)
	defer testBlock.cur.Store(nil)
	ds := dataset.Independent(xrand.New(1), 50, 3)

	running, err := s.Submit(blockReq(ds, b, 3))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	queued, err := s.Submit(blockReq(ds, b, 4))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if st, _ := s.Get(running.ID); st.State != JobFailed {
		t.Errorf("running job after Close = %+v, want failed", st)
	}
	if st, _ := s.Get(queued.ID); st.State != JobFailed || !strings.Contains(st.Error, "scheduler closed") {
		t.Errorf("queued job after Close = %+v, want failed with ErrSchedulerClosed", st)
	}
	if _, err := s.Submit(blockReq(ds, b, 5)); !errors.Is(err, ErrSchedulerClosed) {
		t.Errorf("submit after Close err = %v, want ErrSchedulerClosed", err)
	}
}

// TestBatchContextCancel checks that an expiring batch context aborts the
// call and cancels its outstanding jobs.
func TestBatchContextCancel(t *testing.T) {
	s, b := newBlockingScheduler(t, 1, 8)
	testBlock.cur.Store(&b)
	defer testBlock.cur.Store(nil)
	ds := dataset.Independent(xrand.New(1), 50, 3)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Batch(ctx, []Request{blockReq(ds, b, 3), blockReq(ds, b, 4)})
		done <- err
	}()
	<-b.started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("batch err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch did not return after ctx cancellation")
	}
}

// TestDrainFinishesInFlightJobs is the graceful-shutdown contract: Drain
// stops accepting new work but lets queued AND running jobs finish rather
// than cancelling them, then closes the scheduler.
func TestDrainFinishesInFlightJobs(t *testing.T) {
	s, b := newBlockingScheduler(t, 2, 8)
	testBlock.cur.Store(&b)
	defer testBlock.cur.Store(nil)
	ds := dataset.SimIsland(xrand.New(1), 50)

	var ids []string
	for r := 1; r <= 5; r++ {
		st, err := s.Submit(blockReq(ds, b, r))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Release the solves once the drain is underway, so Drain demonstrably
	// waited instead of finding everything already done.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(b.release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s lost", id)
		}
		if st.State != JobDone {
			t.Fatalf("job %s drained to state %s (err %q), want done", id, st.State, st.Error)
		}
	}
	if _, err := s.Submit(blockReq(ds, b, 9)); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("submit during/after drain: %v, want ErrSchedulerClosed", err)
	}
	// Close after Drain stays a no-op.
	s.Close()
}

// TestDrainTimeoutCancelsRemainder checks an expired drain context falls
// back to Close semantics: stragglers are cancelled, the call reports the
// context error, and the scheduler still ends up closed.
func TestDrainTimeoutCancelsRemainder(t *testing.T) {
	s, b := newBlockingScheduler(t, 1, 8)
	testBlock.cur.Store(&b)
	defer testBlock.cur.Store(nil)
	ds := dataset.SimIsland(xrand.New(1), 50)
	st, err := s.Submit(blockReq(ds, b, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain on a stuck job: %v, want deadline exceeded", err)
	}
	got, ok := s.Get(st.ID)
	if !ok || got.State != JobFailed {
		t.Fatalf("stuck job after timed-out drain: %+v", got)
	}
}
