package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
)

// Scheduler errors.
var (
	// ErrQueueFull is returned by Submit when the FIFO queue is at capacity.
	ErrQueueFull = errors.New("engine: job queue full")
	// ErrSchedulerClosed is returned for submissions after Close, and set as
	// the failure of jobs still queued when the scheduler shut down.
	ErrSchedulerClosed = errors.New("engine: scheduler closed")
)

// Mode selects which problem a Request solves.
type Mode string

const (
	// ModeRRM is the primal problem: at most RK tuples, minimum rank-regret.
	ModeRRM Mode = "rrm"
	// ModeRRR is the dual problem: minimum tuples, rank-regret at most RK.
	ModeRRR Mode = "rrr"
)

// Request is one unit of schedulable work: a single engine solve. Requests
// over the same dataset share both cache tiers, which is what makes
// batching them through the scheduler cheap.
type Request struct {
	// Dataset is the dataset to solve over.
	Dataset *dataset.Dataset
	// Label is echoed in job statuses; daemons set it to the dataset's
	// registry name.
	Label string
	// Mode selects primal (RRM) or dual (RRR); empty means ModeRRM.
	Mode Mode
	// RK is the output budget r (ModeRRM) or the threshold k (ModeRRR).
	RK int
	// Algorithm names a registered solver ("" = auto by dimensionality).
	Algorithm string
	// Opts carries the solve parameters.
	Opts Options
	// Timeout bounds the solve once it starts running (0 = none). Queue
	// wait time does not count against it.
	Timeout time.Duration
}

// Run executes the request synchronously on eng, dispatching by Mode. The
// scheduler's workers and direct callers (e.g. rrmd's /v1/solve handler)
// share this one conversion point so the two paths cannot drift.
func (r Request) Run(ctx context.Context, eng *Engine) (*Solution, error) {
	if r.Mode == ModeRRR {
		return eng.SolveRRR(ctx, r.Dataset, r.RK, r.Algorithm, r.Opts)
	}
	return eng.Solve(ctx, r.Dataset, r.RK, r.Algorithm, r.Opts)
}

// JobState is the lifecycle position of a scheduled job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed" // includes cancellations and timeouts
)

// JobStatus is an immutable snapshot of one job.
type JobStatus struct {
	ID         string    `json:"id"`
	State      JobState  `json:"state"`
	Label      string    `json:"label,omitempty"`
	Mode       Mode      `json:"mode"`
	RK         int       `json:"rk"`
	Algorithm  string    `json:"algorithm,omitempty"`
	Solution   *Solution `json:"solution,omitempty"`
	Error      string    `json:"error,omitempty"`
	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// ElapsedMS is the run time (started to finished) of a finished job.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

type job struct {
	id     string
	req    Request
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed exactly once, when the job finishes

	mu       sync.Mutex
	state    JobState
	sol      *Solution
	err      error
	enqueued time.Time
	started  time.Time
	finished time.Time
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Label:      j.req.Label,
		Mode:       j.req.Mode,
		RK:         j.req.RK,
		Algorithm:  j.req.Algorithm,
		Solution:   j.sol,
		EnqueuedAt: j.enqueued,
		StartedAt:  j.started,
		FinishedAt: j.finished,
	}
	if st.Mode == "" {
		st.Mode = ModeRRM
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		st.ElapsedMS = float64(j.finished.Sub(j.started).Microseconds()) / 1000
	}
	return st
}

// finish transitions to done/failed and wakes waiters. It is a no-op if the
// job already finished.
func (j *job) finish(sol *Solution, err error) bool {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed {
		j.mu.Unlock()
		return false
	}
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.err = err
	} else {
		j.state = JobDone
		j.sol = sol
	}
	j.mu.Unlock()
	close(j.done)
	return true
}

// SchedulerStats is a snapshot of the scheduler counters for GET
// /v1/metrics: queue pressure plus lifetime totals.
type SchedulerStats struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Running    int64  `json:"running"`
	Submitted  uint64 `json:"submitted"`
	Done       uint64 `json:"done"`
	Failed     uint64 `json:"failed"`
	Retained   int    `json:"retained_jobs"`
}

// maxRetainedJobs bounds the finished-job history kept for GET
// /v1/jobs/{id}; the oldest finished jobs are forgotten first.
const maxRetainedJobs = 2048

// Scheduler runs engine solves on a bounded worker pool fed by a FIFO
// queue, with per-job cancellation and queryable job states — the
// throughput layer that turns one engine into a multi-request server. All
// methods are safe for concurrent use.
type Scheduler struct {
	eng     *Engine
	queue   chan *job
	workers int
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // retention FIFO of finished job ids
	retain   int      // finished-job history cap (maxRetainedJobs by default)
	seq      uint64
	closed   bool
	shutDown sync.Once // cancel + worker-wait + queue sweep, shared by Close and Drain

	running   atomic.Int64
	submitted atomic.Uint64
	nDone     atomic.Uint64
	nFailed   atomic.Uint64
}

// NewScheduler starts a scheduler over eng with the given worker count
// (0 = GOMAXPROCS) and queue capacity (0 = 256). Call Close to stop it.
func NewScheduler(eng *Engine, workers, queueCap int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueCap <= 0 {
		queueCap = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		eng:     eng,
		queue:   make(chan *job, queueCap),
		workers: workers,
		baseCtx: ctx,
		cancel:  cancel,
		jobs:    make(map[string]*job),
		retain:  maxRetainedJobs,
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

func (s *Scheduler) runJob(j *job) {
	j.mu.Lock()
	if err := j.ctx.Err(); err != nil {
		// Cancelled while still queued. A worker may drain the queue during
		// shutdown before exiting; report those jobs as closed, not merely
		// cancelled, so the two paths a queued job can take through Close
		// are indistinguishable to callers.
		if s.baseCtx.Err() != nil {
			err = ErrSchedulerClosed
		}
		j.mu.Unlock()
		s.finishJob(j, nil, err)
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	j.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)

	ctx := j.ctx
	if j.req.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.req.Timeout)
		defer cancel()
	}
	sol, err := j.req.Run(ctx, s.eng)
	s.finishJob(j, sol, err)
}

// finishJob finalizes a job, updates the counters, and trims the retained
// history.
func (s *Scheduler) finishJob(j *job, sol *Solution, err error) {
	if !j.finish(sol, err) {
		return
	}
	if err != nil {
		s.nFailed.Add(1)
	} else {
		s.nDone.Add(1)
	}
	s.mu.Lock()
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.retain {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.mu.Unlock()
}

// newJob registers a queued job. The job's context is parented to the
// scheduler, not the submitter: async jobs outlive the HTTP request that
// created them.
func (s *Scheduler) newJob(req Request) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSchedulerClosed
	}
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.seq),
		req:      req,
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		state:    JobQueued,
		enqueued: time.Now(),
	}
	s.jobs[j.id] = j
	s.submitted.Add(1)
	return j, nil
}

// unregister backs out a job that never made it into the queue.
func (s *Scheduler) unregister(j *job) {
	j.cancel()
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.mu.Unlock()
	s.submitted.Add(^uint64(0)) // -1
}

// Submit enqueues an asynchronous solve and returns its queued status
// immediately. It fails fast with ErrQueueFull instead of blocking.
func (s *Scheduler) Submit(req Request) (JobStatus, error) {
	j, err := s.newJob(req)
	if err != nil {
		return JobStatus{}, err
	}
	select {
	case s.queue <- j:
		s.reapIfClosed(j)
		return j.status(), nil
	default:
		s.unregister(j)
		return JobStatus{}, ErrQueueFull
	}
}

// reapIfClosed fails a just-enqueued job when the scheduler shut down
// concurrently with the send: the workers (and Close's drain) may already
// be gone, so nothing else would ever transition it out of 'queued'.
// finishJob is idempotent, so racing with a worker or the drain is safe.
func (s *Scheduler) reapIfClosed(j *job) {
	if s.baseCtx.Err() != nil {
		s.finishJob(j, nil, ErrSchedulerClosed)
	}
}

// submitWait enqueues like Submit but blocks for queue space until ctx is
// done; Batch uses it so a large batch streams through a small queue.
func (s *Scheduler) submitWait(ctx context.Context, req Request) (*job, error) {
	j, err := s.newJob(req)
	if err != nil {
		return nil, err
	}
	select {
	case s.queue <- j:
		s.reapIfClosed(j)
		return j, nil
	case <-ctx.Done():
		s.unregister(j)
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		s.unregister(j)
		return nil, ErrSchedulerClosed
	}
}

// Get returns the status of a known job.
func (s *Scheduler) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Cancel requests cancellation of a queued or running job and returns its
// resulting status. Queued jobs fail immediately (their queue slot is
// reclaimed when a worker pops the carcass); running jobs abort from
// inside the solver hot loops.
func (s *Scheduler) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	j.cancel()
	j.mu.Lock()
	queued := j.state == JobQueued
	j.mu.Unlock()
	if queued {
		// Finish now instead of when a worker drains it, so the status is
		// immediately observable. finish is idempotent, so the worker that
		// eventually pops the job is a no-op, and the rare race with a
		// worker that just started it only fails a solve whose context is
		// already cancelled.
		s.finishJob(j, nil, context.Canceled)
	}
	return j.status(), true
}

// Wait blocks until the job finishes or ctx is done and returns its final
// (or, on ctx expiry, current) status.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("engine: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-ctx.Done():
		return j.status(), ctx.Err()
	}
}

// Jobs returns the status of every retained job, oldest first.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = j.status()
	}
	// Ids are zero-padded sequence numbers; comparing length first keeps
	// submission order even after the sequence outgrows the padding.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Batch fans a list of requests through the worker pool and waits for all
// of them, returning one final status per request in order. Individual
// solver failures are reported in their item's status, not as a call error;
// the error return fires only when ctx expires or the scheduler closes, in
// which case every outstanding job of the batch is cancelled.
func (s *Scheduler) Batch(ctx context.Context, reqs []Request) ([]JobStatus, error) {
	jobs := make([]*job, 0, len(reqs))
	cancelRest := func() {
		for _, j := range jobs {
			j.cancel()
		}
	}
	for _, req := range reqs {
		j, err := s.submitWait(ctx, req)
		if err != nil {
			cancelRest()
			return nil, err
		}
		jobs = append(jobs, j)
	}
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			cancelRest()
			return nil, ctx.Err()
		}
		out[i] = j.status()
	}
	return out, nil
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	retained := len(s.jobs)
	s.mu.Unlock()
	return SchedulerStats{
		Workers:    s.workers,
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Running:    s.running.Load(),
		Submitted:  s.submitted.Load(),
		Done:       s.nDone.Load(),
		Failed:     s.nFailed.Load(),
		Retained:   retained,
	}
}

// markClosed flips the scheduler into its no-new-submissions state.
func (s *Scheduler) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// shutdown cancels running jobs, waits for the workers to exit, and fails
// everything still queued with ErrSchedulerClosed. Idempotent; concurrent
// callers block until the first finishes.
func (s *Scheduler) shutdown() {
	s.shutDown.Do(func() {
		s.cancel()
		s.wg.Wait()
		for {
			select {
			case j := <-s.queue:
				s.finishJob(j, nil, ErrSchedulerClosed)
			default:
				return
			}
		}
	})
}

// Close stops the workers, cancels running jobs, and fails everything still
// queued with ErrSchedulerClosed. It blocks until the workers exit.
func (s *Scheduler) Close() {
	s.markClosed()
	s.shutdown()
}

// Drain is the graceful shutdown: it stops accepting submissions, lets the
// workers finish every queued and running job, and only then closes. When
// ctx expires first the remaining jobs are cancelled Close-style and the
// context error is returned. Either way the scheduler is closed when Drain
// returns.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.markClosed()
	defer s.shutdown()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		// Every registered submission has finished when the lifetime
		// counters meet; unregistered (never-enqueued) submissions are
		// backed out of submitted, so the comparison is exact.
		if s.nDone.Load()+s.nFailed.Load() >= s.submitted.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}
