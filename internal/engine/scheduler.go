package engine

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rankregret/rankregret/internal/dataset"
	"github.com/rankregret/rankregret/internal/obs"
)

// Scheduler errors.
var (
	// ErrQueueFull is returned by Submit and Do when the pending queue is at
	// capacity: the overload signal serving layers map to 429.
	ErrQueueFull = errors.New("engine: job queue full")
	// ErrSchedulerClosed is returned for submissions after Close or during
	// Drain, and set as the failure of jobs still queued when the scheduler
	// shut down: the drain signal serving layers map to 503.
	ErrSchedulerClosed = errors.New("engine: scheduler closed")
	// ErrQueueTimeout fails a job whose queue-wait budget expired before a
	// worker picked it up. The check runs at dequeue, so a dead-on-arrival
	// job is rejected cheaply instead of burning a worker on a solve whose
	// run budget it never got to use.
	ErrQueueTimeout = errors.New("engine: timed out waiting in queue")
)

// Mode selects which problem a Request solves.
type Mode string

const (
	// ModeRRM is the primal problem: at most RK tuples, minimum rank-regret.
	ModeRRM Mode = "rrm"
	// ModeRRR is the dual problem: minimum tuples, rank-regret at most RK.
	ModeRRR Mode = "rrr"
)

// Request is one unit of schedulable work: a single engine solve. Requests
// over the same dataset share both cache tiers, which is what makes
// batching them through the scheduler cheap.
type Request struct {
	// Dataset is the dataset to solve over.
	Dataset *dataset.Dataset
	// Label is echoed in job statuses; daemons set it to the dataset's
	// registry name.
	Label string
	// Mode selects primal (RRM) or dual (RRR); empty means ModeRRM.
	Mode Mode
	// RK is the output budget r (ModeRRM) or the threshold k (ModeRRR).
	RK int
	// Algorithm names a registered solver ("" = auto by dimensionality).
	Algorithm string
	// Opts carries the solve parameters.
	Opts Options
	// Timeout is the run budget: it bounds the solve from the moment a
	// worker dequeues the job (0 = none). Queue wait time never counts
	// against it — a job that sat in a saturated queue still gets its full
	// budget once it starts.
	Timeout time.Duration
	// QueueTimeout is the queue-wait budget: how long the job may wait for
	// a worker, counted from submission (0 = unbounded). A job still queued
	// when it expires fails with ErrQueueTimeout at dequeue instead of
	// starting late.
	QueueTimeout time.Duration
}

// Run executes the request synchronously on eng, dispatching by Mode. The
// scheduler's workers and direct callers (e.g. rrmd's /v1/solve handler)
// share this one conversion point so the two paths cannot drift.
func (r Request) Run(ctx context.Context, eng *Engine) (*Solution, error) {
	if r.Mode == ModeRRR {
		return eng.SolveRRR(ctx, r.Dataset, r.RK, r.Algorithm, r.Opts)
	}
	return eng.Solve(ctx, r.Dataset, r.RK, r.Algorithm, r.Opts)
}

// JobState is the lifecycle position of a scheduled job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed" // includes cancellations and timeouts
	// JobRejected marks a batch item that was never admitted to the queue
	// (scheduler draining, or the batch budget expired first). Rejected
	// items have no job id — nothing ever ran.
	JobRejected JobState = "rejected"
)

// JobStatus is an immutable snapshot of one job.
type JobStatus struct {
	ID         string    `json:"id"`
	State      JobState  `json:"state"`
	Label      string    `json:"label,omitempty"`
	Mode       Mode      `json:"mode"`
	RK         int       `json:"rk"`
	Algorithm  string    `json:"algorithm,omitempty"`
	Solution   *Solution `json:"solution,omitempty"`
	Error      string    `json:"error,omitempty"`
	EnqueuedAt time.Time `json:"enqueued_at"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// ElapsedMS is the run time (started to finished) of a finished job.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
}

type job struct {
	id     string
	req    Request
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed exactly once, when the job finishes
	// ephemeral jobs (synchronous Do solves) share the pool, counters, and
	// policy but are dropped from the registry as soon as they finish: they
	// never appear in Jobs() or consume retention slots.
	ephemeral bool
	// solKey/vsKey are the engine cache keys precomputed at submission so
	// the affinity policy's warm probe is two map lookups per pending job.
	solKey, vsKey string
	// trace is the request trace carried across the admit→dequeue handoff
	// (job ctx is parented to the scheduler, not the request, so context
	// values do not survive the hop). Set at creation, before the job is
	// visible to workers; nil for untraced work.
	trace *obs.Trace

	mu       sync.Mutex
	state    JobState
	sol      *Solution
	err      error
	enqueued time.Time
	started  time.Time
	finished time.Time
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Label:      j.req.Label,
		Mode:       j.req.Mode,
		RK:         j.req.RK,
		Algorithm:  j.req.Algorithm,
		Solution:   j.sol,
		EnqueuedAt: j.enqueued,
		StartedAt:  j.started,
		FinishedAt: j.finished,
	}
	if st.Mode == "" {
		st.Mode = ModeRRM
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		st.ElapsedMS = float64(j.finished.Sub(j.started).Microseconds()) / 1000
	}
	return st
}

// result returns the terminal outcome of a finished job.
func (j *job) result() (*Solution, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sol, j.err
}

// finish transitions to done/failed and wakes waiters. It is a no-op if the
// job already finished.
func (j *job) finish(sol *Solution, err error) bool {
	j.mu.Lock()
	if j.state == JobDone || j.state == JobFailed {
		j.mu.Unlock()
		return false
	}
	j.finished = time.Now()
	if err != nil {
		j.state = JobFailed
		j.err = err
	} else {
		j.state = JobDone
		j.sol = sol
	}
	j.mu.Unlock()
	close(j.done)
	return true
}

// SchedulerStats is a snapshot of the scheduler counters for GET
// /v1/metrics: queue pressure plus lifetime totals. Every field is read
// under one lock, so a single snapshot is internally coherent: done + failed
// never exceeds submitted, and queue_depth is the exact pending count at the
// snapshot instant.
type SchedulerStats struct {
	Workers    int    `json:"workers"`
	Policy     string `json:"policy"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Running    int64  `json:"running"`
	Submitted  uint64 `json:"submitted"`
	Done       uint64 `json:"done"`
	Failed     uint64 `json:"failed"`
	Rejected   uint64 `json:"rejected"`
	Retained   int    `json:"retained_jobs"`
	// Draining is true once Close or Drain has begun: no new jobs are
	// admitted (submissions get ErrSchedulerClosed), and health probes
	// report the server as draining.
	Draining bool `json:"draining"`
}

// maxRetainedJobs bounds the finished-job history kept for GET
// /v1/jobs/{id}; the oldest finished jobs are forgotten first.
const maxRetainedJobs = 2048

// Scheduler runs engine solves on a bounded worker pool fed by a
// policy-ordered pending queue, with per-job cancellation and queryable job
// states — the throughput layer that turns one engine into a multi-request
// server. The queue is bounded: admission fails fast with ErrQueueFull so
// serving layers can shed load instead of buffering it. All methods are safe
// for concurrent use.
type Scheduler struct {
	eng     *Engine
	workers int
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// space holds one token per free queue slot (admission = take a token;
	// dequeue returns it). slots holds one token per job sitting in pending
	// and is what wakes workers; its capacity equals the queue capacity so
	// the post-admission send can never block.
	space chan struct{}
	slots chan struct{}

	mu       sync.Mutex
	policy   Policy
	pending  []*job // admitted, not yet dequeued; arrival order
	jobs     map[string]*job
	finished []string // retention FIFO of finished job ids
	retain   int      // finished-job history cap (maxRetainedJobs by default)
	seq      uint64
	closed   bool
	shutDown sync.Once // cancel + worker-wait + queue sweep, shared by Close and Drain

	// Lifetime counters, guarded by mu (not atomics) so Stats can read them
	// together with the queue state as one coherent snapshot.
	running   int64
	submitted uint64
	nDone     uint64
	nFailed   uint64
	nRejected uint64

	// obs holds the queue-wait and run-duration histograms, labeled by the
	// dequeue policy in effect when the job ran. Wired by Instrument before
	// the scheduler serves traffic; nil = uninstrumented.
	obs *schedObs

	// logger receives job-failure records; swapped in atomically (like obs)
	// because the daemon wires logging after construction. nil = silent.
	logger atomic.Pointer[slog.Logger]
}

// SetLogger installs the structured logger job failures are reported to.
// Every record carries the job id, dataset label, and — when the job was
// submitted with a trace — the originating request id, so a failure seen in
// logs is joinable to its trace and incident bundle.
func (s *Scheduler) SetLogger(l *slog.Logger) {
	if l != nil {
		s.logger.Store(l)
	}
}

// logFailure reports one finished-with-error job. Shutdown sweeps and
// submitter cancellations are demoted to debug: they describe the caller or
// the lifecycle, not a fault in the solve.
func (s *Scheduler) logFailure(j *job, err error) {
	l := s.logger.Load()
	if l == nil {
		return
	}
	reqID := ""
	if j.trace != nil {
		reqID = j.trace.ID()
	}
	args := []any{"job", j.id, "dataset", j.req.Label, "request_id", reqID, "err", err}
	if errors.Is(err, ErrSchedulerClosed) || errors.Is(err, context.Canceled) {
		l.Debug("scheduler: job cancelled", args...)
		return
	}
	l.Warn("scheduler: job failed", args...)
}

// schedObs is the scheduler's latency instrumentation.
type schedObs struct {
	queueWait *obs.HistogramVec
	runDur    *obs.HistogramVec
}

// Instrument registers the scheduler's queue-wait and run-duration
// histograms with reg, labeled by dequeue policy. Call before the scheduler
// serves traffic.
func (s *Scheduler) Instrument(reg *obs.Registry) {
	so := &schedObs{
		queueWait: reg.HistogramVec("rrmd_queue_wait_seconds",
			"Time a job spent queued between admission and dequeue, by policy.", "policy", nil),
		runDur: reg.HistogramVec("rrmd_run_duration_seconds",
			"Time a job spent running (dequeue to finish), by policy.", "policy", nil),
	}
	s.mu.Lock()
	s.obs = so
	s.mu.Unlock()
}

// observeRun records one job's queue wait and run duration under the
// current policy's label.
func (s *Scheduler) observeRun(wait, run time.Duration) {
	s.mu.Lock()
	so, name := s.obs, s.policy.Name()
	s.mu.Unlock()
	if so == nil {
		return
	}
	so.queueWait.With(name).Observe(wait.Seconds())
	so.runDur.With(name).Observe(run.Seconds())
}

// NewScheduler starts a scheduler over eng with the given worker count
// (0 = GOMAXPROCS) and queue capacity (0 = 256), running jobs in FIFO order;
// see SetPolicy. Call Close to stop it.
func NewScheduler(eng *Engine, workers, queueCap int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueCap <= 0 {
		queueCap = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		eng:     eng,
		workers: workers,
		baseCtx: ctx,
		cancel:  cancel,
		space:   make(chan struct{}, queueCap),
		slots:   make(chan struct{}, queueCap),
		policy:  FIFO{},
		jobs:    make(map[string]*job),
		retain:  maxRetainedJobs,
	}
	for i := 0; i < queueCap; i++ {
		s.space <- struct{}{}
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// SetPolicy swaps the queue-ordering policy (nil resets to FIFO). Safe to
// call while jobs are in flight; the next dequeue uses the new policy.
func (s *Scheduler) SetPolicy(p Policy) {
	if p == nil {
		p = FIFO{}
	}
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.slots:
			if j := s.dequeue(); j != nil {
				s.runJob(j)
			}
		}
	}
}

// dequeue pops the policy's pick from the pending queue and frees its
// admission slot. Every slots token corresponds to one pending append, so
// pending is non-empty here; the nil return is defense in depth only.
func (s *Scheduler) dequeue() *job {
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		return nil
	}
	idx := 0
	if len(s.pending) > 1 {
		if _, isFIFO := s.policy.(FIFO); !isFIFO {
			idx = s.pickLocked()
		}
	}
	j := s.pending[idx]
	s.pending = append(s.pending[:idx], s.pending[idx+1:]...)
	s.mu.Unlock()
	s.space <- struct{}{}
	return j
}

// pickLocked builds the policy's view of the pending queue — including the
// per-job warm probe against the engine's cache tiers — and applies it.
// Called with s.mu held.
func (s *Scheduler) pickLocked() int {
	view := make([]PendingJob, len(s.pending))
	for i, j := range s.pending {
		j.mu.Lock()
		enq := j.enqueued
		j.mu.Unlock()
		view[i] = PendingJob{
			Label:      j.req.Label,
			Algorithm:  j.req.Algorithm,
			Mode:       j.req.Mode,
			RK:         j.req.RK,
			EnqueuedAt: enq,
			Warm:       s.eng.warmKeys(j.solKey, j.vsKey),
		}
	}
	idx := s.policy.Next(view)
	if idx < 0 || idx >= len(s.pending) {
		idx = 0
	}
	return idx
}

func (s *Scheduler) runJob(j *job) {
	j.mu.Lock()
	if err := j.ctx.Err(); err != nil {
		// Cancelled while still queued. A worker may drain the queue during
		// shutdown before exiting; report those jobs as closed, not merely
		// cancelled, so the two paths a queued job can take through Close
		// are indistinguishable to callers.
		if s.baseCtx.Err() != nil {
			err = ErrSchedulerClosed
		}
		j.mu.Unlock()
		s.finishJob(j, nil, err)
		return
	}
	if j.req.QueueTimeout > 0 && time.Since(j.enqueued) > j.req.QueueTimeout {
		// Dead on arrival: the queue-wait budget expired before a worker got
		// here. Reject instead of starting a solve the submitter gave up on.
		j.mu.Unlock()
		s.finishJob(j, nil, ErrQueueTimeout)
		return
	}
	j.state = JobRunning
	j.started = time.Now()
	started := j.started
	wait := started.Sub(j.enqueued)
	j.mu.Unlock()
	s.addRunning(1)
	defer s.addRunning(-1)

	ctx := j.ctx
	if j.trace != nil {
		// Re-attach the trace: j.ctx is parented to the scheduler's base
		// context, so the submitter's context values did not cross the hop.
		j.trace.Add("queue", j.enqueued, wait)
		ctx = obs.WithTrace(ctx, j.trace)
	}
	if j.req.Timeout > 0 {
		// The run budget is anchored here, at dequeue — queue wait never
		// eats into it.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.req.Timeout)
		defer cancel()
	}
	sol, err := j.req.Run(ctx, s.eng)
	s.observeRun(wait, time.Since(started))
	s.finishJob(j, sol, err)
}

func (s *Scheduler) addRunning(d int64) {
	s.mu.Lock()
	s.running += d
	s.mu.Unlock()
}

// finishJob finalizes a job, updates the counters, and trims the retained
// history. Ephemeral jobs leave the registry immediately.
func (s *Scheduler) finishJob(j *job, sol *Solution, err error) {
	if !j.finish(sol, err) {
		return
	}
	if err != nil {
		s.logFailure(j, err)
	}
	s.mu.Lock()
	if err != nil {
		s.nFailed++
	} else {
		s.nDone++
	}
	if j.ephemeral {
		delete(s.jobs, j.id)
	} else {
		s.finished = append(s.finished, j.id)
		for len(s.finished) > s.retain {
			delete(s.jobs, s.finished[0])
			s.finished = s.finished[1:]
		}
	}
	s.mu.Unlock()
}

// newJob registers a queued job. The job's context is parented to the
// scheduler, not the submitter: async jobs outlive the HTTP request that
// created them.
func (s *Scheduler) newJob(req Request, ephemeral bool, tr *obs.Trace) (*job, error) {
	solKey, vsKey := s.eng.keysFor(req)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSchedulerClosed
	}
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.seq),
		req:       req,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		ephemeral: ephemeral,
		solKey:    solKey,
		vsKey:     vsKey,
		trace:     tr,
		state:     JobQueued,
		enqueued:  time.Now(),
	}
	s.jobs[j.id] = j
	s.submitted++
	return j, nil
}

// unregister backs out a job that never made it into the queue.
func (s *Scheduler) unregister(j *job, rejected bool) {
	j.cancel()
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.submitted--
	if rejected {
		s.nRejected++
	}
	s.mu.Unlock()
}

// enqueue appends an admitted job (its space token already taken) to the
// pending queue and wakes a worker.
func (s *Scheduler) enqueue(j *job) {
	s.mu.Lock()
	s.pending = append(s.pending, j)
	s.mu.Unlock()
	s.slots <- struct{}{}
	s.reapIfClosed(j)
}

// admit takes an admission token without blocking and enqueues, failing fast
// with ErrQueueFull when the queue is at capacity.
func (s *Scheduler) admit(req Request, ephemeral bool, tr *obs.Trace) (*job, error) {
	j, err := s.newJob(req, ephemeral, tr)
	if err != nil {
		return nil, err
	}
	select {
	case <-s.space:
		s.enqueue(j)
		return j, nil
	default:
		s.unregister(j, true)
		return nil, ErrQueueFull
	}
}

// Submit enqueues an asynchronous solve and returns its queued status
// immediately. It fails fast with ErrQueueFull instead of blocking.
func (s *Scheduler) Submit(req Request) (JobStatus, error) {
	j, err := s.admit(req, false, nil)
	if err != nil {
		return JobStatus{}, err
	}
	return j.status(), nil
}

// Do admits req and waits for its result: the synchronous serving path.
// Admission shares the async queue — it fails fast with ErrQueueFull under
// overload — and the job flows through the same policy and worker pool, but
// it is ephemeral: it never appears in Jobs() or consumes retention slots.
// When ctx ends first the job is cancelled and ctx's error is returned.
func (s *Scheduler) Do(ctx context.Context, req Request) (*Solution, error) {
	j, err := s.admit(req, true, obs.TraceFrom(ctx))
	if err != nil {
		return nil, err
	}
	select {
	case <-j.done:
		return j.result()
	case <-ctx.Done():
		s.abandon(j)
		return nil, ctx.Err()
	}
}

// abandon cancels a job whose submitter stopped waiting, finishing it
// immediately when it is still queued (the carcass a worker later pops is a
// no-op).
func (s *Scheduler) abandon(j *job) {
	j.cancel()
	j.mu.Lock()
	queued := j.state == JobQueued
	j.mu.Unlock()
	if queued {
		s.finishJob(j, nil, context.Canceled)
	}
}

// reapIfClosed fails a just-enqueued job when the scheduler shut down
// concurrently with the send: the workers (and Close's drain) may already
// be gone, so nothing else would ever transition it out of 'queued'.
// finishJob is idempotent, so racing with a worker or the drain is safe.
func (s *Scheduler) reapIfClosed(j *job) {
	if s.baseCtx.Err() != nil {
		s.finishJob(j, nil, ErrSchedulerClosed)
	}
}

// submitWait enqueues like Submit but blocks for queue space until ctx is
// done; Batch uses it so a large batch streams through a small queue.
func (s *Scheduler) submitWait(ctx context.Context, req Request) (*job, error) {
	j, err := s.newJob(req, false, nil)
	if err != nil {
		return nil, err
	}
	select {
	case <-s.space:
		s.enqueue(j)
		return j, nil
	case <-ctx.Done():
		s.unregister(j, true)
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		s.unregister(j, true)
		return nil, ErrSchedulerClosed
	}
}

// Get returns the status of a known job.
func (s *Scheduler) Get(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Cancel requests cancellation of a queued or running job and returns its
// resulting status. Queued jobs fail immediately (their queue slot is
// reclaimed when a worker pops the carcass); running jobs abort from
// inside the solver hot loops.
func (s *Scheduler) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	// Finishing a queued job now instead of when a worker drains it makes
	// the status immediately observable. finish is idempotent, so the worker
	// that eventually pops the job is a no-op, and the rare race with a
	// worker that just started it only fails a solve whose context is
	// already cancelled.
	s.abandon(j)
	return j.status(), true
}

// Wait blocks until the job finishes or ctx is done and returns its final
// (or, on ctx expiry, current) status.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("engine: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-ctx.Done():
		return j.status(), ctx.Err()
	}
}

// Jobs returns the status of every retained job, oldest first.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(all))
	for i, j := range all {
		out[i] = j.status()
	}
	// Ids are zero-padded sequence numbers; comparing length first keeps
	// submission order even after the sequence outgrows the padding.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// rejectedStatus synthesizes the status of a batch item that was never
// admitted: nothing ran, so there is no job id.
func rejectedStatus(req Request, err error) JobStatus {
	st := JobStatus{
		State:     JobRejected,
		Label:     req.Label,
		Mode:      req.Mode,
		RK:        req.RK,
		Algorithm: req.Algorithm,
		Error:     err.Error(),
	}
	if st.Mode == "" {
		st.Mode = ModeRRM
	}
	return st
}

// Batch fans a list of requests through the worker pool and waits for all
// of them, returning one final status per request in order. Individual
// solver failures are reported in their item's status, not as a call error;
// the error return fires only when ctx expires or the scheduler closes, in
// which case every outstanding job of the batch is cancelled.
func (s *Scheduler) Batch(ctx context.Context, reqs []Request) ([]JobStatus, error) {
	jobs := make([]*job, 0, len(reqs))
	cancelRest := func() {
		for _, j := range jobs {
			j.cancel()
		}
	}
	for _, req := range reqs {
		j, err := s.submitWait(ctx, req)
		if err != nil {
			cancelRest()
			return nil, err
		}
		jobs = append(jobs, j)
	}
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			cancelRest()
			return nil, ctx.Err()
		}
		out[i] = j.status()
	}
	return out, nil
}

// BatchPartial is Batch with per-item accept/reject semantics: it always
// returns one status per request, never a wholesale error. Items the
// scheduler could not admit before ctx expired (or because it is draining)
// come back in state "rejected"; items admitted but unfinished when ctx
// expires are cancelled and report their cancellation. Completed items keep
// their results either way — a batch that ran out of budget still returns
// everything it finished.
func (s *Scheduler) BatchPartial(ctx context.Context, reqs []Request) []JobStatus {
	out := make([]JobStatus, len(reqs))
	jobs := make([]*job, len(reqs))
	for i, req := range reqs {
		j, err := s.submitWait(ctx, req)
		if err != nil {
			// Admission stopped (batch budget gone or scheduler draining):
			// everything not yet submitted is rejected for the same reason.
			for k := i; k < len(reqs); k++ {
				out[k] = rejectedStatus(reqs[k], err)
			}
			break
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		if j == nil {
			continue
		}
		select {
		case <-j.done:
		case <-ctx.Done():
			// Cancel this and every later outstanding item; abandon
			// force-finishes queued carcasses so the statuses below are
			// terminal, not point-in-time.
			for _, jj := range jobs[i:] {
				if jj != nil {
					s.abandon(jj)
				}
			}
			<-j.done
		}
		out[i] = j.status()
	}
	return out
}

// Stats snapshots the scheduler counters. The snapshot is taken under one
// lock, so it is internally coherent: done+failed can never exceed
// submitted, and queue_depth is exact.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedulerStats{
		Workers:    s.workers,
		Policy:     s.policy.Name(),
		QueueDepth: len(s.pending),
		QueueCap:   cap(s.space),
		Running:    s.running,
		Submitted:  s.submitted,
		Done:       s.nDone,
		Failed:     s.nFailed,
		Rejected:   s.nRejected,
		Retained:   len(s.jobs),
		Draining:   s.closed,
	}
}

// lifetime reports the settled/submitted counters for Drain's convergence
// check, coherently.
func (s *Scheduler) lifetime() (settled, submitted uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nDone + s.nFailed, s.submitted
}

// markClosed flips the scheduler into its no-new-submissions state.
func (s *Scheduler) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// shutdown cancels running jobs, waits for the workers to exit, and fails
// everything still queued with ErrSchedulerClosed. Idempotent; concurrent
// callers block until the first finishes.
func (s *Scheduler) shutdown() {
	s.shutDown.Do(func() {
		s.cancel()
		s.wg.Wait()
		for {
			select {
			case <-s.slots:
				if j := s.dequeue(); j != nil {
					s.finishJob(j, nil, ErrSchedulerClosed)
				}
			default:
				return
			}
		}
	})
}

// Close stops the workers, cancels running jobs, and fails everything still
// queued with ErrSchedulerClosed. It blocks until the workers exit.
func (s *Scheduler) Close() {
	s.markClosed()
	s.shutdown()
}

// Drain is the graceful shutdown: it stops accepting submissions, lets the
// workers finish every queued and running job, and only then closes. When
// ctx expires first the remaining jobs are cancelled Close-style and the
// context error is returned. Either way the scheduler is closed when Drain
// returns.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.markClosed()
	defer s.shutdown()
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		// Every registered submission has finished when the lifetime
		// counters meet; unregistered (never-enqueued) submissions are
		// backed out of submitted, so the comparison is exact.
		if settled, submitted := s.lifetime(); settled >= submitted {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}
